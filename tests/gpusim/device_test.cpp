#include "gpusim/device.hpp"

#include <gtest/gtest.h>

#include <array>

namespace harmonia::gpusim {
namespace {

DeviceSpec tiny_spec() {
  DeviceSpec spec = titan_v();
  spec.num_sms = 4;
  spec.global_mem_bytes = 16 << 20;
  return spec;
}

TEST(Device, LaunchRunsKernelPerWarp) {
  Device dev(tiny_spec());
  std::uint64_t ran = 0;
  const auto metrics = dev.launch(10, [&](WarpCtx& w) {
    ++ran;
    w.compute(full_mask(w.warp_size()));
  });
  EXPECT_EQ(ran, 10u);
  EXPECT_EQ(metrics.warps, 10u);
  EXPECT_EQ(metrics.steps, 10u);
  EXPECT_EQ(metrics.coherent_steps, 10u);
}

TEST(Device, WarpsRoundRobinAcrossSms) {
  Device dev(tiny_spec());
  std::array<unsigned, 8> sm_of_warp{};
  dev.launch(8, [&](WarpCtx& w) {
    sm_of_warp[w.warp_id()] = w.sm_id();
    w.compute(full_mask(32));
  });
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(sm_of_warp[i], i % 4);
}

TEST(Device, PartialMaskStepsAreIncoherent) {
  Device dev(tiny_spec());
  const auto metrics = dev.launch(1, [&](WarpCtx& w) {
    w.compute(full_mask(32));     // coherent
    w.compute(full_mask(16));     // incoherent
    w.compute(lane_bit(0), 2);    // two incoherent steps
  });
  EXPECT_EQ(metrics.steps, 4u);
  EXPECT_EQ(metrics.coherent_steps, 1u);
  EXPECT_NEAR(metrics.warp_coherence(), 0.25, 1e-12);
}

TEST(Device, GatherReadsValuesAndCounts) {
  Device dev(tiny_spec());
  auto& mem = dev.memory();
  auto data = mem.malloc<std::uint64_t>(32);
  std::vector<std::uint64_t> host(32);
  for (std::size_t i = 0; i < 32; ++i) host[i] = i * 7;
  mem.copy_to_device(data, std::span<const std::uint64_t>(host));

  std::array<std::uint64_t, 32> got{};
  const auto metrics = dev.launch(1, [&](WarpCtx& w) {
    std::array<std::uint64_t, 32> addrs{};
    for (unsigned i = 0; i < 32; ++i) addrs[i] = data.element_addr(i);
    w.gather<std::uint64_t>(full_mask(32), addrs, got);
  });
  for (unsigned i = 0; i < 32; ++i) EXPECT_EQ(got[i], i * 7u);
  EXPECT_EQ(metrics.loads, 1u);
  // 32 consecutive u64 = 256 B = 2 or 3 lines depending on alignment.
  EXPECT_GE(metrics.transactions, 2u);
  EXPECT_LE(metrics.transactions, 3u);
}

TEST(Device, DivergentLoadDetected) {
  Device dev(tiny_spec());
  auto& mem = dev.memory();
  auto data = mem.malloc<std::uint64_t>(1 << 16);
  const auto metrics = dev.launch(1, [&](WarpCtx& w) {
    std::array<std::uint64_t, 32> addrs{};
    for (unsigned i = 0; i < 32; ++i) addrs[i] = data.element_addr(i * 1000);
    w.touch(full_mask(32), addrs, 8);
  });
  EXPECT_EQ(metrics.loads, 1u);
  EXPECT_EQ(metrics.divergent_loads, 1u);
  EXPECT_EQ(metrics.transactions, 32u);
}

TEST(Device, CoalescedLoadNotDivergent) {
  Device dev(tiny_spec());
  auto& mem = dev.memory();
  auto data = mem.malloc<std::uint32_t>(32);
  const auto metrics = dev.launch(1, [&](WarpCtx& w) {
    std::array<std::uint64_t, 32> addrs{};
    for (unsigned i = 0; i < 32; ++i) addrs[i] = data.element_addr(i);
    w.touch(full_mask(32), addrs, 4);
  });
  EXPECT_EQ(metrics.divergent_loads, 0u);
}

TEST(Device, RepeatedAccessHitsCache) {
  Device dev(tiny_spec());
  auto& mem = dev.memory();
  auto data = mem.malloc<std::uint64_t>(16);
  const auto metrics = dev.launch(1, [&](WarpCtx& w) {
    std::array<std::uint64_t, 32> addrs{};
    for (unsigned i = 0; i < 16; ++i) addrs[i] = data.element_addr(i);
    w.touch(full_mask(16), addrs, 8);  // cold: DRAM
    w.touch(full_mask(16), addrs, 8);  // warm: read-only cache
  });
  EXPECT_GT(metrics.dram_transactions, 0u);
  EXPECT_GT(metrics.readonly_hits, 0u);
}

TEST(Device, ConstantSpaceUsesConstantCache) {
  Device dev(tiny_spec());
  auto& mem = dev.memory();
  auto data = mem.const_malloc<std::uint32_t>(64);
  const auto metrics = dev.launch(1, [&](WarpCtx& w) {
    std::array<std::uint64_t, 32> addrs{};
    for (unsigned i = 0; i < 32; ++i) addrs[i] = data.element_addr(i);
    w.touch(full_mask(32), addrs, 4);
    w.touch(full_mask(32), addrs, 4);
  });
  EXPECT_GT(metrics.const_hits, 0u);
  EXPECT_EQ(metrics.readonly_hits, 0u);  // constant space never uses RO cache
}

TEST(Device, FlushCachesForcesMisses) {
  Device dev(tiny_spec());
  auto& mem = dev.memory();
  auto data = mem.malloc<std::uint64_t>(16);
  std::array<std::uint64_t, 32> addrs{};
  for (unsigned i = 0; i < 16; ++i) addrs[i] = data.element_addr(i);

  dev.launch(1, [&](WarpCtx& w) { w.touch(full_mask(16), addrs, 8); });
  dev.flush_caches();
  const auto metrics = dev.launch(1, [&](WarpCtx& w) { w.touch(full_mask(16), addrs, 8); });
  EXPECT_EQ(metrics.readonly_hits, 0u);
  EXPECT_EQ(metrics.l2_hits, 0u);
  EXPECT_GT(metrics.dram_transactions, 0u);
}

TEST(Device, ScatterWritesValues) {
  Device dev(tiny_spec());
  auto& mem = dev.memory();
  auto data = mem.malloc<std::uint64_t>(8);
  dev.launch(1, [&](WarpCtx& w) {
    std::array<std::uint64_t, 32> addrs{};
    std::array<std::uint64_t, 32> vals{};
    for (unsigned i = 0; i < 8; ++i) {
      addrs[i] = data.element_addr(i);
      vals[i] = 100 + i;
    }
    w.scatter<std::uint64_t>(full_mask(8), addrs,
                             std::span<const std::uint64_t>(vals.data(), 32));
  });
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(mem.read<std::uint64_t>(data.element_addr(i)), 100u + i);
  }
}

TEST(Device, InactiveLanesUntouchedByGather) {
  Device dev(tiny_spec());
  auto& mem = dev.memory();
  auto data = mem.malloc<std::uint64_t>(4);
  mem.write(data.element_addr(0), std::uint64_t{5});
  std::array<std::uint64_t, 32> got{};
  got.fill(999);
  dev.launch(1, [&](WarpCtx& w) {
    std::array<std::uint64_t, 32> addrs{};
    addrs[0] = data.element_addr(0);
    w.gather<std::uint64_t>(lane_bit(0), addrs, got);
  });
  EXPECT_EQ(got[0], 5u);
  EXPECT_EQ(got[1], 999u);  // inactive lane untouched
}

TEST(DeviceSpecValidation, PresetsAreValid) {
  EXPECT_NO_THROW(titan_v().validate());
  EXPECT_NO_THROW(tesla_k80().validate());
}

TEST(DeviceSpecValidation, BadSpecsRejectedAtConstruction) {
  auto bad = tiny_spec();
  bad.warp_size = 0;
  EXPECT_THROW(Device{bad}, ContractViolation);

  bad = tiny_spec();
  bad.warp_size = 64;
  EXPECT_THROW(Device{bad}, ContractViolation);

  bad = tiny_spec();
  bad.num_sms = 0;
  EXPECT_THROW(Device{bad}, ContractViolation);

  bad = tiny_spec();
  bad.line_bytes = 100;  // not a power of two
  EXPECT_THROW(Device{bad}, ContractViolation);

  bad = tiny_spec();
  bad.clock_ghz = 0.0;
  EXPECT_THROW(Device{bad}, ContractViolation);
}

}  // namespace
}  // namespace harmonia::gpusim
