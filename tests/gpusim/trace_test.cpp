#include "gpusim/trace.hpp"

#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "gpusim/device.hpp"

namespace harmonia::gpusim {
namespace {

DeviceSpec tiny_spec() {
  DeviceSpec spec = titan_v();
  spec.num_sms = 2;
  spec.global_mem_bytes = 16 << 20;
  return spec;
}

TEST(Trace, DisabledRecordsNothing) {
  Device dev(tiny_spec());
  dev.launch(2, [](WarpCtx& w) { w.compute(full_mask(32)); });
  EXPECT_TRUE(dev.trace().events().empty());
}

TEST(Trace, RecordsComputeAndLoadEvents) {
  Device dev(tiny_spec());
  auto data = dev.memory().malloc<std::uint64_t>(64);
  dev.trace().enable();
  dev.launch(1, [&](WarpCtx& w) {
    w.compute(full_mask(32));
    std::array<std::uint64_t, 32> addrs{};
    for (unsigned i = 0; i < 32; ++i) addrs[i] = data.element_addr(i);
    w.touch(full_mask(32), addrs, 8);
  });
  const auto& events = dev.trace().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kCompute);
  EXPECT_EQ(events[0].mask, full_mask(32));
  EXPECT_GT(events[0].cycles, 0u);
  EXPECT_EQ(events[1].kind, TraceEventKind::kLoad);
  EXPECT_GE(events[1].transactions, 2u);  // 256 B of u64
  EXPECT_EQ(events[1].served_by, ServedBy::kDram);  // cold caches
}

TEST(Trace, SecondAccessServedByCache) {
  Device dev(tiny_spec());
  auto data = dev.memory().malloc<std::uint64_t>(16);
  std::array<std::uint64_t, 32> addrs{};
  for (unsigned i = 0; i < 16; ++i) addrs[i] = data.element_addr(i);
  dev.trace().enable();
  dev.launch(1, [&](WarpCtx& w) {
    w.touch(full_mask(16), addrs, 8);
    w.touch(full_mask(16), addrs, 8);
  });
  const auto& events = dev.trace().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].served_by, ServedBy::kDram);
  EXPECT_EQ(events[1].served_by, ServedBy::kReadOnly);
}

TEST(Trace, ConstantAccessTagged) {
  Device dev(tiny_spec());
  auto data = dev.memory().const_malloc<std::uint32_t>(8);
  std::array<std::uint64_t, 32> addrs{};
  for (unsigned i = 0; i < 8; ++i) addrs[i] = data.element_addr(i);
  dev.trace().enable();
  dev.launch(1, [&](WarpCtx& w) {
    w.touch(full_mask(8), addrs, 4);
    w.touch(full_mask(8), addrs, 4);
  });
  ASSERT_EQ(dev.trace().events().size(), 2u);
  EXPECT_EQ(dev.trace().events()[1].served_by, ServedBy::kConst);
}

TEST(Trace, CapacityBoundsAndCountsDropped) {
  Device dev(tiny_spec());
  dev.trace().enable(/*capacity=*/3);
  dev.launch(1, [](WarpCtx& w) {
    for (int i = 0; i < 10; ++i) w.compute(full_mask(32));
  });
  EXPECT_EQ(dev.trace().events().size(), 3u);
  EXPECT_EQ(dev.trace().dropped(), 7u);
}

TEST(Trace, StoreEventsTagged) {
  Device dev(tiny_spec());
  auto data = dev.memory().malloc<std::uint64_t>(8);
  dev.trace().enable();
  dev.launch(1, [&](WarpCtx& w) {
    std::array<std::uint64_t, 32> addrs{};
    std::array<std::uint64_t, 32> vals{};
    for (unsigned i = 0; i < 8; ++i) addrs[i] = data.element_addr(i);
    w.scatter<std::uint64_t>(full_mask(8), addrs,
                             std::span<const std::uint64_t>(vals.data(), 32));
  });
  ASSERT_EQ(dev.trace().events().size(), 1u);
  EXPECT_EQ(dev.trace().events()[0].kind, TraceEventKind::kStore);
}

TEST(Trace, DumpIsHumanReadable) {
  Device dev(tiny_spec());
  auto data = dev.memory().malloc<std::uint64_t>(8);
  dev.trace().enable(2);
  dev.launch(1, [&](WarpCtx& w) {
    w.compute(full_mask(32));
    std::array<std::uint64_t, 32> addrs{};
    addrs[0] = data.element_addr(0);
    w.touch(lane_bit(0), addrs, 8);
    w.compute(full_mask(16));  // dropped (capacity 2)
  });
  std::ostringstream os;
  dev.trace().dump(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("compute"), std::string::npos);
  EXPECT_NE(s.find("load"), std::string::npos);
  EXPECT_NE(s.find("dram"), std::string::npos);
  EXPECT_NE(s.find("1 events dropped"), std::string::npos);
}

TEST(Trace, ClearKeepsEnabledState) {
  Trace trace;
  trace.enable(10);
  trace.record({});
  trace.clear();
  EXPECT_TRUE(trace.enabled());
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Trace, EnumNames) {
  EXPECT_STREQ(to_string(TraceEventKind::kCompute), "compute");
  EXPECT_STREQ(to_string(TraceEventKind::kLoad), "load");
  EXPECT_STREQ(to_string(TraceEventKind::kStore), "store");
  EXPECT_STREQ(to_string(ServedBy::kConst), "const");
  EXPECT_STREQ(to_string(ServedBy::kDram), "dram");
}

}  // namespace
}  // namespace harmonia::gpusim
