#include "gpusim/memory.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/expect.hpp"

namespace harmonia::gpusim {
namespace {

TEST(Memory, RoundTripGlobal) {
  Memory mem(1 << 20, 64 << 10);
  auto p = mem.malloc<std::uint64_t>(16);
  std::vector<std::uint64_t> in(16);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = i * 3 + 1;
  mem.copy_to_device(p, std::span<const std::uint64_t>(in));
  std::vector<std::uint64_t> out(16);
  mem.copy_to_host(std::span<std::uint64_t>(out), p);
  EXPECT_EQ(in, out);
}

TEST(Memory, RoundTripConstant) {
  Memory mem(1 << 20, 64 << 10);
  auto p = mem.const_malloc<std::uint32_t>(8);
  EXPECT_TRUE(is_const_address(p.addr));
  std::vector<std::uint32_t> in{1, 2, 3, 4, 5, 6, 7, 8};
  mem.copy_to_device(p, std::span<const std::uint32_t>(in));
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(mem.read<std::uint32_t>(p.element_addr(i)), in[i]);
  }
}

TEST(Memory, NullPointerIsAddressZero) {
  Memory mem(1 << 20, 64 << 10);
  auto p = mem.malloc<std::uint64_t>(1);
  EXPECT_NE(p.addr, 0u);  // address 0 is reserved as null
  EXPECT_FALSE(p.is_null());
  EXPECT_TRUE((DevPtr<std::uint64_t>{}).is_null());
}

TEST(Memory, AllocationsAreAligned) {
  Memory mem(1 << 20, 64 << 10);
  auto a = mem.malloc<std::uint8_t>(3);
  auto b = mem.malloc<std::uint8_t>(3);
  EXPECT_EQ(a.addr % 256, 0u);
  EXPECT_EQ(b.addr % 256, 0u);
  EXPECT_NE(a.addr, b.addr);
}

TEST(Memory, GlobalOverflowThrows) {
  Memory mem(4 << 10, 64 << 10);
  EXPECT_THROW(mem.malloc<std::uint64_t>(1 << 20), ContractViolation);
}

TEST(Memory, ConstantOverflowThrows) {
  Memory mem(1 << 20, 1 << 10);
  EXPECT_THROW(mem.const_malloc<std::uint64_t>(1 << 10), ContractViolation);
}

TEST(Memory, OutOfBoundsReadThrows) {
  Memory mem(1 << 20, 64 << 10);
  std::uint64_t out;
  EXPECT_THROW(mem.read_bytes(1 << 19, &out, sizeof out), ContractViolation);
}

TEST(Memory, FreeAllResets) {
  Memory mem(1 << 20, 64 << 10);
  auto a = mem.malloc<std::uint64_t>(64);
  mem.free_all();
  auto b = mem.malloc<std::uint64_t>(64);
  EXPECT_EQ(a.addr, b.addr);  // bump allocator restarted
  EXPECT_EQ(mem.const_used(), 0u);
}

TEST(Memory, ElementAddressArithmetic) {
  DevPtr<std::uint64_t> p{1024};
  EXPECT_EQ(p.element_addr(0), 1024u);
  EXPECT_EQ(p.element_addr(3), 1024u + 24u);
  EXPECT_EQ(p.offset(2).addr, 1024u + 16u);
}

TEST(Memory, ConstAndGlobalSpacesDisjoint) {
  Memory mem(1 << 20, 64 << 10);
  auto g = mem.malloc<std::uint64_t>(4);
  auto c = mem.const_malloc<std::uint64_t>(4);
  mem.write(g.element_addr(0), std::uint64_t{111});
  mem.write(c.element_addr(0), std::uint64_t{222});
  EXPECT_EQ(mem.read<std::uint64_t>(g.element_addr(0)), 111u);
  EXPECT_EQ(mem.read<std::uint64_t>(c.element_addr(0)), 222u);
}

}  // namespace
}  // namespace harmonia::gpusim
