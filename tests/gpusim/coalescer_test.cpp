#include "gpusim/coalescer.hpp"

#include <gtest/gtest.h>

#include <array>

namespace harmonia::gpusim {
namespace {

constexpr unsigned kLine = 128;

TEST(Coalescer, FullyCoalescedWarpLoad) {
  // 32 lanes reading consecutive u32s: 128 bytes = exactly one line.
  std::array<std::uint64_t, 32> addrs{};
  for (unsigned i = 0; i < 32; ++i) addrs[i] = 4096 + i * 4;
  const auto lines = coalesce(addrs, full_mask(32), 4, kLine);
  EXPECT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 4096u / kLine);
}

TEST(Coalescer, ConsecutiveU64sNeedTwoLines) {
  std::array<std::uint64_t, 32> addrs{};
  for (unsigned i = 0; i < 32; ++i) addrs[i] = 0 + i * 8;  // 256 B
  EXPECT_EQ(coalesce(addrs, full_mask(32), 8, kLine).size(), 2u);
}

TEST(Coalescer, ScatteredAddressesOneLineEach) {
  std::array<std::uint64_t, 4> addrs{0, 10000, 20000, 30000};
  EXPECT_EQ(coalesce(addrs, full_mask(4), 8, kLine).size(), 4u);
}

TEST(Coalescer, InactiveLanesIgnored) {
  std::array<std::uint64_t, 4> addrs{0, 10000, 20000, 30000};
  const LaneMask mask = lane_bit(0) | lane_bit(2);
  EXPECT_EQ(coalesce(addrs, mask, 8, kLine).size(), 2u);
}

TEST(Coalescer, StraddlingAccessCountsBothLines) {
  std::array<std::uint64_t, 1> addrs{kLine - 4};  // 8 B crossing the boundary
  EXPECT_EQ(coalesce(addrs, full_mask(1), 8, kLine).size(), 2u);
}

TEST(Coalescer, DuplicateAddressesDeduplicate) {
  std::array<std::uint64_t, 8> addrs{};
  addrs.fill(512);  // broadcast load
  EXPECT_EQ(coalesce(addrs, full_mask(8), 8, kLine).size(), 1u);
}

TEST(Coalescer, ResultSorted) {
  std::array<std::uint64_t, 3> addrs{30000, 0, 20000};
  const auto lines = coalesce(addrs, full_mask(3), 8, kLine);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_LT(lines[0], lines[1]);
  EXPECT_LT(lines[1], lines[2]);
}

TEST(Coalescer, SameLineUnorderedStillOneTransaction) {
  // The §4.1.2 point: a partially-sorted group within one line coalesces
  // even though the addresses are not ascending.
  std::array<std::uint64_t, 4> addrs{1024 + 24, 1024, 1024 + 8, 1024 + 16};
  EXPECT_EQ(coalesce(addrs, full_mask(4), 8, kLine).size(), 1u);
}

}  // namespace
}  // namespace harmonia::gpusim
