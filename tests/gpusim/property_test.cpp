// Property-style tests of the simulator's invariants: coalescer algebra,
// LRU inclusion, metrics-merge algebra, cycle-model monotonicity.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "common/rng.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/coalescer.hpp"
#include "gpusim/device.hpp"

namespace harmonia::gpusim {
namespace {

class CoalescerProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoalescerProperties, TransactionCountBounds) {
  Xoshiro256 rng(GetParam());
  std::array<std::uint64_t, 32> addrs{};
  for (auto& a : addrs) a = rng.next() % (1 << 24);
  const LaneMask mask = static_cast<LaneMask>(rng.next());
  if (mask == 0) return;
  const unsigned bytes = 1u << rng.next_below(4);  // 1..8 B accesses
  const auto lines = coalesce(addrs, mask, bytes, 128);
  EXPECT_GE(lines.size(), 1u);
  // An aligned-or-straddling access touches at most 2 lines per lane.
  EXPECT_LE(lines.size(), 2u * active_count(mask));
}

TEST_P(CoalescerProperties, PermutationInvariant) {
  // §4.1.2's key insight: coalescing depends on the *set* of addresses,
  // not their order across lanes.
  Xoshiro256 rng(GetParam() + 100);
  std::array<std::uint64_t, 32> addrs{};
  for (auto& a : addrs) a = rng.next() % (1 << 24);
  const auto before = coalesce(addrs, full_mask(32), 8, 128).size();
  for (std::size_t i = 31; i > 0; --i) {
    std::swap(addrs[i], addrs[rng.next_below(i + 1)]);
  }
  EXPECT_EQ(coalesce(addrs, full_mask(32), 8, 128).size(), before);
}

TEST_P(CoalescerProperties, SubsetNeverNeedsMore) {
  Xoshiro256 rng(GetParam() + 200);
  std::array<std::uint64_t, 32> addrs{};
  for (auto& a : addrs) a = rng.next() % (1 << 24);
  const LaneMask full = full_mask(32);
  const LaneMask sub = static_cast<LaneMask>(rng.next()) & full;
  if (sub == 0) return;
  EXPECT_LE(coalesce(addrs, sub, 8, 128).size(), coalesce(addrs, full, 8, 128).size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescerProperties,
                         ::testing::Range<std::uint64_t>(1, 16));

class CacheProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheProperties, LruInclusion) {
  // LRU is a stack algorithm: with the same set count, a cache with more
  // ways never misses more on any trace.
  Xoshiro256 rng(GetParam());
  Cache small(64 * 128 * 2, 128, 2);  // 64 sets x 2 ways
  Cache large(64 * 128 * 8, 128, 8);  // 64 sets x 8 ways
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t line = rng.next_below(1024);
    small.access(line);
    large.access(line);
  }
  EXPECT_LE(large.misses(), small.misses());
}

TEST_P(CacheProperties, HitsPlusMissesEqualsAccesses) {
  Xoshiro256 rng(GetParam() + 50);
  Cache cache(1 << 16, 128, 4);
  constexpr int kAccesses = 5000;
  for (int i = 0; i < kAccesses; ++i) cache.access(rng.next_below(4096));
  EXPECT_EQ(cache.hits() + cache.misses(), static_cast<std::uint64_t>(kAccesses));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheProperties, ::testing::Range<std::uint64_t>(1, 9));

TEST(MetricsProperties, MergeIsAssociativeOnCounters) {
  auto mk = [](std::uint64_t seed) {
    Xoshiro256 rng(seed);
    KernelMetrics m;
    m.warps = rng.next_below(100);
    m.steps = rng.next_below(1000);
    m.coherent_steps = rng.next_below(m.steps + 1);
    m.loads = rng.next_below(500);
    m.transactions = rng.next_below(2000);
    m.dram_transactions = rng.next_below(1000);
    m.sm_compute_cycles.assign(4, rng.next_below(10000));
    m.sm_mem_cycles.assign(4, rng.next_below(10000));
    m.sm_resident_warps.assign(4, rng.next_below(64));
    return m;
  };
  auto a1 = mk(1), b = mk(2), c = mk(3);
  auto bc = b;
  bc.merge(c);
  auto left = a1;
  left.merge(bc);  // a+(b+c)
  auto right = a1;
  right.merge(b);
  right.merge(c);  // (a+b)+c
  EXPECT_EQ(left.steps, right.steps);
  EXPECT_EQ(left.transactions, right.transactions);
  EXPECT_EQ(left.sm_compute_cycles, right.sm_compute_cycles);
}

TEST(CycleModelProperties, MoreWorkNeverFaster) {
  const DeviceSpec spec = titan_v();
  KernelMetrics m;
  m.sm_compute_cycles.assign(spec.num_sms, 1000);
  m.sm_mem_cycles.assign(spec.num_sms, 50000);
  m.sm_resident_warps.assign(spec.num_sms, 8);
  m.dram_transactions = 10000;
  const double base = m.elapsed_cycles(spec);

  auto more_compute = m;
  for (auto& c : more_compute.sm_compute_cycles) c *= 10;
  EXPECT_GE(more_compute.elapsed_cycles(spec), base);

  auto more_dram = m;
  more_dram.dram_transactions *= 100;
  EXPECT_GE(more_dram.elapsed_cycles(spec), base);

  auto more_latency = m;
  for (auto& c : more_latency.sm_mem_cycles) c *= 10;
  EXPECT_GE(more_latency.elapsed_cycles(spec), base);
}

TEST(CycleModelProperties, ThroughputScalesWithClock) {
  DeviceSpec slow = titan_v();
  DeviceSpec fast = titan_v();
  fast.clock_ghz = slow.clock_ghz * 2.0;
  KernelMetrics m;
  m.sm_compute_cycles.assign(slow.num_sms, 100000);
  m.sm_mem_cycles.assign(slow.num_sms, 0);
  m.sm_resident_warps.assign(slow.num_sms, 1);
  EXPECT_NEAR(m.throughput(fast, 1000) / m.throughput(slow, 1000), 2.0, 1e-9);
}

TEST(DeviceProperties, LaunchDeterministic) {
  auto spec = titan_v();
  spec.num_sms = 4;
  spec.global_mem_bytes = 32 << 20;

  auto run = [&] {
    Device dev(spec);
    auto data = dev.memory().malloc<std::uint64_t>(1 << 12);
    return dev.launch(64, [&](WarpCtx& w) {
      std::array<std::uint64_t, 32> addrs{};
      Xoshiro256 rng(w.warp_id());
      for (unsigned i = 0; i < 32; ++i) {
        addrs[i] = data.element_addr(rng.next_below(1 << 12));
      }
      w.touch(full_mask(32), addrs, 8);
      w.compute(full_mask(32), 3);
    });
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.dram_transactions, b.dram_transactions);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_DOUBLE_EQ(a.elapsed_cycles(spec), b.elapsed_cycles(spec));
}

}  // namespace
}  // namespace harmonia::gpusim
