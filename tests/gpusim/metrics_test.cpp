#include "gpusim/metrics.hpp"

#include <gtest/gtest.h>

namespace harmonia::gpusim {
namespace {

KernelMetrics simple_metrics(unsigned sms) {
  KernelMetrics m;
  m.sm_compute_cycles.assign(sms, 0);
  m.sm_mem_cycles.assign(sms, 0);
  m.sm_resident_warps.assign(sms, 0);
  return m;
}

TEST(Metrics, CoherenceAndDivergenceRatios) {
  KernelMetrics m;
  m.steps = 10;
  m.coherent_steps = 8;
  m.loads = 4;
  m.divergent_loads = 1;
  EXPECT_DOUBLE_EQ(m.warp_coherence(), 0.8);
  EXPECT_DOUBLE_EQ(m.memory_divergence(), 0.25);
}

TEST(Metrics, EmptyRatiosAreBenign) {
  KernelMetrics m;
  EXPECT_DOUBLE_EQ(m.warp_coherence(), 1.0);
  EXPECT_DOUBLE_EQ(m.memory_divergence(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg_transactions_per_warp(), 0.0);
}

TEST(Metrics, GlobalTransactionsIsL2PlusDram) {
  KernelMetrics m;
  m.l2_hits = 7;
  m.dram_transactions = 3;
  EXPECT_EQ(m.global_transactions(), 10u);
}

TEST(Metrics, ComputeBoundSm) {
  const DeviceSpec spec = titan_v();
  auto m = simple_metrics(spec.num_sms);
  m.sm_compute_cycles[0] = 1000000;
  m.sm_mem_cycles[0] = 100;
  m.sm_resident_warps[0] = 1;
  EXPECT_NEAR(m.elapsed_cycles(spec), 1000000 + spec.launch_overhead_cycles, 1e-6);
}

TEST(Metrics, MemoryLatencyHiddenByWarps) {
  const DeviceSpec spec = titan_v();
  auto a = simple_metrics(spec.num_sms);
  a.sm_mem_cycles[0] = 1 << 20;
  a.sm_resident_warps[0] = 1;
  auto b = a;
  b.sm_resident_warps[0] = 32;
  EXPECT_GT(a.elapsed_cycles(spec), b.elapsed_cycles(spec));
}

TEST(Metrics, DramBandwidthBound) {
  const DeviceSpec spec = titan_v();
  auto m = simple_metrics(spec.num_sms);
  m.dram_transactions = 1 << 24;
  const double expected = static_cast<double>(1 << 24) * spec.dram_cycles_per_txn +
                          spec.launch_overhead_cycles;
  EXPECT_NEAR(m.elapsed_cycles(spec), expected, 1.0);
}

TEST(Metrics, WorstSmDominates) {
  const DeviceSpec spec = titan_v();
  auto m = simple_metrics(spec.num_sms);
  m.sm_compute_cycles[3] = 500;
  m.sm_compute_cycles[5] = 900;
  m.sm_resident_warps[3] = m.sm_resident_warps[5] = 1;
  EXPECT_NEAR(m.elapsed_cycles(spec), 900 + spec.launch_overhead_cycles, 1e-9);
}

TEST(Metrics, ThroughputPositive) {
  const DeviceSpec spec = titan_v();
  auto m = simple_metrics(spec.num_sms);
  m.sm_compute_cycles[0] = 1000;
  m.sm_resident_warps[0] = 1;
  EXPECT_GT(m.throughput(spec, 1000), 0.0);
}

TEST(Metrics, MergeAccumulates) {
  auto a = simple_metrics(2);
  a.warps = 1;
  a.steps = 10;
  a.transactions = 5;
  a.sm_compute_cycles[0] = 100;
  auto b = simple_metrics(2);
  b.warps = 2;
  b.steps = 20;
  b.transactions = 7;
  b.sm_compute_cycles[0] = 50;
  b.sm_compute_cycles[1] = 60;
  a.merge(b);
  EXPECT_EQ(a.warps, 3u);
  EXPECT_EQ(a.steps, 30u);
  EXPECT_EQ(a.transactions, 12u);
  EXPECT_EQ(a.sm_compute_cycles[0], 150u);
  EXPECT_EQ(a.sm_compute_cycles[1], 60u);
}

TEST(Metrics, DevicePresetsDiffer) {
  const DeviceSpec v = titan_v();
  const DeviceSpec k = tesla_k80();
  EXPECT_GT(v.num_sms, k.num_sms);
  EXPECT_GT(v.clock_ghz, k.clock_ghz);
  EXPECT_LT(v.dram_cycles_per_txn, k.dram_cycles_per_txn);
  EXPECT_EQ(v.warp_size, 32u);
  EXPECT_EQ(k.warp_size, 32u);
}

}  // namespace
}  // namespace harmonia::gpusim
