#include "gpusim/cache.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace harmonia::gpusim {
namespace {

TEST(Cache, MissThenHit) {
  Cache c(1024, 128, 2);  // 4 sets x 2 ways
  EXPECT_FALSE(c.access(10));
  EXPECT_TRUE(c.access(10));
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, LruEvictionWithinSet) {
  Cache c(2 * 128, 128, 2);  // 1 set, 2 ways: lines 0,1,2 conflict
  c.access(0);
  c.access(1);
  c.access(0);     // 0 is now MRU
  c.access(2);     // evicts 1 (LRU)
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(2));
  EXPECT_FALSE(c.contains(1));
}

TEST(Cache, SetsIsolateLines) {
  Cache c(4 * 128, 128, 1);  // 4 direct-mapped sets
  // Lines 0..3 map to distinct sets -> all retained.
  for (std::uint64_t line = 0; line < 4; ++line) c.access(line);
  for (std::uint64_t line = 0; line < 4; ++line) EXPECT_TRUE(c.contains(line));
  // Line 4 conflicts with line 0 only.
  c.access(4);
  EXPECT_FALSE(c.contains(0));
  EXPECT_TRUE(c.contains(1));
}

TEST(Cache, FlushEmptiesTags) {
  Cache c(1024, 128, 2);
  c.access(5);
  c.flush();
  EXPECT_FALSE(c.contains(5));
  EXPECT_FALSE(c.access(5));  // miss again after flush
}

TEST(Cache, CapacityHoldsWorkingSet) {
  Cache c(64 * 128, 128, 8);  // 64 lines total
  for (std::uint64_t line = 0; line < 64; ++line) c.access(line);
  c.reset_stats();
  for (std::uint64_t line = 0; line < 64; ++line) c.access(line);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_EQ(c.hits(), 64u);
}

TEST(Cache, ThrashingWorkingSetMisses) {
  Cache c(64 * 128, 128, 8);  // 8 sets x 8 ways
  // 128 lines cycled: every access misses once warm (LRU, round robin).
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t line = 0; line < 128; ++line) c.access(line);
  }
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 256u);
}

TEST(Cache, InvalidGeometryThrows) {
  EXPECT_THROW(Cache(1000, 128, 2), ContractViolation);  // not a multiple
}

TEST(Cache, ResetFlushesContentsAndZeroesCounters) {
  Cache c(1024, 128, 2);
  c.access(1);
  c.access(1);
  c.access(2);
  ASSERT_GT(c.hits(), 0u);
  ASSERT_GT(c.misses(), 0u);
  c.reset();
  // Cold again: nothing cached, nothing counted.
  EXPECT_FALSE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_FALSE(c.access(1));  // first access after reset is a miss
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, ResetStatsKeepsContents) {
  Cache c(1024, 128, 2);
  c.access(1);
  c.reset_stats();
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_TRUE(c.access(1));  // still cached
}

}  // namespace
}  // namespace harmonia::gpusim
