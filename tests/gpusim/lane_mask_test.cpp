#include "gpusim/lane_mask.hpp"

#include <gtest/gtest.h>

namespace harmonia::gpusim {
namespace {

TEST(LaneMask, FullMask) {
  EXPECT_EQ(full_mask(1), 0x1u);
  EXPECT_EQ(full_mask(4), 0xFu);
  EXPECT_EQ(full_mask(32), 0xFFFFFFFFu);
}

TEST(LaneMask, LaneBit) {
  EXPECT_EQ(lane_bit(0), 0x1u);
  EXPECT_EQ(lane_bit(5), 0x20u);
  EXPECT_EQ(lane_bit(31), 0x80000000u);
}

TEST(LaneMask, LaneActive) {
  const LaneMask m = lane_bit(3) | lane_bit(7);
  EXPECT_TRUE(lane_active(m, 3));
  EXPECT_TRUE(lane_active(m, 7));
  EXPECT_FALSE(lane_active(m, 0));
  EXPECT_FALSE(lane_active(m, 31));
}

TEST(LaneMask, ActiveCount) {
  EXPECT_EQ(active_count(0), 0u);
  EXPECT_EQ(active_count(full_mask(32)), 32u);
  EXPECT_EQ(active_count(lane_bit(1) | lane_bit(30)), 2u);
}

TEST(LaneMask, GroupMask) {
  EXPECT_EQ(group_mask(0, 4), 0xFu);
  EXPECT_EQ(group_mask(4, 4), 0xF0u);
  EXPECT_EQ(group_mask(28, 4), 0xF0000000u);
  EXPECT_EQ(group_mask(0, 32), 0xFFFFFFFFu);
}

}  // namespace
}  // namespace harmonia::gpusim
