#include "queries/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

namespace harmonia::queries {
namespace {

TEST(Workload, TreeKeysSortedDistinct) {
  const auto keys = make_tree_keys(10000, 1);
  ASSERT_EQ(keys.size(), 10000u);
  for (std::size_t i = 1; i < keys.size(); ++i) EXPECT_LT(keys[i - 1], keys[i]);
}

TEST(Workload, TreeKeysDeterministic) {
  EXPECT_EQ(make_tree_keys(1000, 7), make_tree_keys(1000, 7));
  EXPECT_NE(make_tree_keys(1000, 7), make_tree_keys(1000, 8));
}

TEST(Workload, TreeKeysSpreadOverUniverse) {
  const auto keys = make_tree_keys(1000, 2);
  // Stratified sampling: key i lies in stride i.
  const std::uint64_t stride = kReservedKey / 1000;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_GE(keys[i], i * stride);
    EXPECT_LT(keys[i], (i + 1) * stride);
  }
}

TEST(Workload, TreeKeysNeverReserved) {
  const auto keys = make_tree_keys(100000, 3);
  EXPECT_TRUE(std::none_of(keys.begin(), keys.end(),
                           [](std::uint64_t k) { return k == kReservedKey; }));
}

TEST(Workload, QueriesHitExistingKeys) {
  const auto keys = make_tree_keys(5000, 4);
  std::unordered_set<std::uint64_t> set(keys.begin(), keys.end());
  for (auto dist : {Distribution::kUniform, Distribution::kZipfian,
                    Distribution::kGaussian, Distribution::kSorted,
                    Distribution::kSequential}) {
    const auto qs = make_queries(keys, 2000, dist, 5);
    ASSERT_EQ(qs.size(), 2000u) << to_string(dist);
    for (auto q : qs) EXPECT_TRUE(set.count(q)) << to_string(dist);
  }
}

TEST(Workload, SortedDistributionAscends) {
  const auto keys = make_tree_keys(5000, 6);
  const auto qs = make_queries(keys, 1000, Distribution::kSorted, 7);
  EXPECT_TRUE(std::is_sorted(qs.begin(), qs.end()));
}

TEST(Workload, SequentialWrapsAround) {
  const auto keys = make_tree_keys(10, 8);
  const auto qs = make_queries(keys, 25, Distribution::kSequential, 9);
  for (std::size_t i = 0; i < qs.size(); ++i) EXPECT_EQ(qs[i], keys[i % 10]);
}

TEST(Workload, ZipfianIsSkewed) {
  const auto keys = make_tree_keys(10000, 10);
  const auto qs = make_queries(keys, 50000, Distribution::kZipfian, 11);
  std::unordered_set<std::uint64_t> distinct(qs.begin(), qs.end());
  // Heavy skew: far fewer distinct targets than a uniform draw would give.
  EXPECT_LT(distinct.size(), 15000u);
  EXPECT_GT(distinct.size(), 100u);
}

TEST(Workload, UniformCoversKeySpace) {
  const auto keys = make_tree_keys(1000, 12);
  const auto qs = make_queries(keys, 20000, Distribution::kUniform, 13);
  std::unordered_set<std::uint64_t> distinct(qs.begin(), qs.end());
  EXPECT_GT(distinct.size(), 900u);  // nearly every key touched
}

TEST(Workload, MissingKeysAreAbsent) {
  const auto keys = make_tree_keys(5000, 14);
  std::unordered_set<std::uint64_t> set(keys.begin(), keys.end());
  const auto missing = make_missing_keys(keys, 1000, 15);
  ASSERT_EQ(missing.size(), 1000u);
  for (auto k : missing) EXPECT_FALSE(set.count(k));
}

TEST(Workload, DistributionStringsRoundTrip) {
  for (auto dist : {Distribution::kUniform, Distribution::kZipfian,
                    Distribution::kGaussian, Distribution::kSorted,
                    Distribution::kSequential}) {
    EXPECT_EQ(distribution_from_string(to_string(dist)), dist);
  }
  EXPECT_THROW(distribution_from_string("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace harmonia::queries
