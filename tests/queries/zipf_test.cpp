#include "queries/zipf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/expect.hpp"

namespace harmonia::queries {
namespace {

TEST(Zipf, RanksInRange) {
  ZipfGenerator zipf(1000, 0.99, 1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.next(), 1000u);
}

TEST(Zipf, RankZeroIsHottest) {
  ZipfGenerator zipf(10000, 0.99, 2);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto r = zipf.next();
    if (r < counts.size()) ++counts[static_cast<std::size_t>(r)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
  EXPECT_GT(counts[0], 8000);  // rank 0 gets ~10% of draws at theta .99
}

TEST(Zipf, Deterministic) {
  ZipfGenerator a(500, 0.9, 3), b(500, 0.9, 3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Zipf, InvalidParamsThrow) {
  EXPECT_THROW(ZipfGenerator(0, 0.99, 1), ContractViolation);
  EXPECT_THROW(ZipfGenerator(10, 1.5, 1), ContractViolation);
  EXPECT_THROW(ZipfGenerator(10, 0.0, 1), ContractViolation);
}

TEST(Zipf, SmallN) {
  ZipfGenerator zipf(1, 0.5, 4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.next(), 0u);
}

}  // namespace
}  // namespace harmonia::queries
