// Statistical shape checks of the workload generators (beyond membership).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "common/stats.hpp"
#include "queries/workload.hpp"

namespace harmonia::queries {
namespace {

TEST(DistributionShape, GaussianConcentratesAroundMiddle) {
  const auto keys = make_tree_keys(10000, 1);
  const auto qs = make_queries(keys, 40000, Distribution::kGaussian, 2);
  // Map each query back to its rank and check the spread: mu = n/2,
  // sigma = n/8 by construction.
  std::unordered_map<std::uint64_t, std::size_t> rank;
  for (std::size_t i = 0; i < keys.size(); ++i) rank[keys[i]] = i;
  Summary s;
  for (auto q : qs) s.add(static_cast<double>(rank.at(q)));
  EXPECT_NEAR(s.mean(), 5000.0, 150.0);
  EXPECT_NEAR(s.stddev(), 1250.0, 150.0);
  // ~95% within 2 sigma.
  std::size_t within = 0;
  for (auto q : qs) {
    const auto r = static_cast<double>(rank.at(q));
    within += (r > 5000.0 - 2500.0 && r < 5000.0 + 2500.0);
  }
  EXPECT_GT(static_cast<double>(within) / static_cast<double>(qs.size()), 0.93);
}

TEST(DistributionShape, UniformIsFlatAcrossDeciles) {
  const auto keys = make_tree_keys(10000, 3);
  const auto qs = make_queries(keys, 100000, Distribution::kUniform, 4);
  std::unordered_map<std::uint64_t, std::size_t> rank;
  for (std::size_t i = 0; i < keys.size(); ++i) rank[keys[i]] = i;
  std::size_t deciles[10] = {};
  for (auto q : qs) ++deciles[rank.at(q) * 10 / keys.size()];
  for (auto d : deciles) {
    EXPECT_NEAR(static_cast<double>(d), 10000.0, 500.0);
  }
}

TEST(DistributionShape, ZipfianTopOnePercentDominates) {
  const auto keys = make_tree_keys(10000, 5);
  const auto qs = make_queries(keys, 50000, Distribution::kZipfian, 6);
  std::unordered_map<std::uint64_t, std::size_t> freq;
  for (auto q : qs) ++freq[q];
  std::vector<std::size_t> counts;
  for (const auto& [k, c] : freq) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  std::size_t top100 = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(100, counts.size()); ++i) {
    top100 += counts[i];
  }
  // Top 1% of keys draw far more than 1% of queries at theta 0.99.
  EXPECT_GT(static_cast<double>(top100) / static_cast<double>(qs.size()), 0.3);
}

TEST(DistributionShape, SortedIsUniformButOrdered) {
  const auto keys = make_tree_keys(5000, 7);
  const auto qs = make_queries(keys, 20000, Distribution::kSorted, 8);
  EXPECT_TRUE(std::is_sorted(qs.begin(), qs.end()));
  // Still covers the whole key space (it is a sorted *uniform* draw).
  std::unordered_map<std::uint64_t, std::size_t> rank;
  for (std::size_t i = 0; i < keys.size(); ++i) rank[keys[i]] = i;
  EXPECT_LT(rank.at(qs.front()), 50u);
  EXPECT_GT(rank.at(qs.back()), keys.size() - 50);
}

TEST(DistributionShape, SeedsProduceIndependentStreams) {
  const auto keys = make_tree_keys(5000, 9);
  const auto a = make_queries(keys, 5000, Distribution::kUniform, 10);
  const auto b = make_queries(keys, 5000, Distribution::kUniform, 11);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += (a[i] == b[i]);
  EXPECT_LT(same, 20u);  // collisions only by chance (~1/5000 per slot)
}

}  // namespace
}  // namespace harmonia::queries
