#include "queries/batch.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

#include <unordered_set>

#include "queries/workload.hpp"

namespace harmonia::queries {
namespace {

TEST(Batch, PaperMixFractions) {
  // Fig. 14 workload: 5% inserts, 95% updates.
  const auto keys = make_tree_keys(10000, 1);
  BatchSpec spec;
  spec.size = 10000;
  spec.insert_fraction = 0.05;
  spec.seed = 2;
  const auto ops = make_update_batch(keys, spec);
  ASSERT_EQ(ops.size(), 10000u);
  std::uint64_t inserts = 0, updates = 0, deletes = 0;
  for (const auto& op : ops) {
    if (op.kind == OpKind::kInsert) ++inserts;
    if (op.kind == OpKind::kUpdate) ++updates;
    if (op.kind == OpKind::kDelete) ++deletes;
  }
  EXPECT_EQ(inserts, 500u);
  EXPECT_EQ(updates, 9500u);
  EXPECT_EQ(deletes, 0u);
}

TEST(Batch, InsertKeysAreNovelAndDistinct) {
  const auto keys = make_tree_keys(5000, 3);
  std::unordered_set<std::uint64_t> existing(keys.begin(), keys.end());
  BatchSpec spec;
  spec.size = 4000;
  spec.insert_fraction = 0.25;
  spec.seed = 4;
  const auto ops = make_update_batch(keys, spec);
  std::unordered_set<std::uint64_t> inserted;
  for (const auto& op : ops) {
    if (op.kind != OpKind::kInsert) continue;
    EXPECT_FALSE(existing.count(op.key));
    EXPECT_TRUE(inserted.insert(op.key).second) << "duplicate insert key";
  }
  EXPECT_EQ(inserted.size(), 1000u);
}

TEST(Batch, UpdatesTargetExistingKeys) {
  const auto keys = make_tree_keys(2000, 5);
  std::unordered_set<std::uint64_t> existing(keys.begin(), keys.end());
  BatchSpec spec;
  spec.size = 1000;
  spec.seed = 6;
  const auto ops = make_update_batch(keys, spec);
  for (const auto& op : ops) {
    if (op.kind == OpKind::kUpdate) EXPECT_TRUE(existing.count(op.key));
  }
}

TEST(Batch, DeletesDistinctExistingKeys) {
  const auto keys = make_tree_keys(2000, 7);
  std::unordered_set<std::uint64_t> existing(keys.begin(), keys.end());
  BatchSpec spec;
  spec.size = 1000;
  spec.insert_fraction = 0.0;
  spec.delete_fraction = 0.2;
  spec.seed = 8;
  const auto ops = make_update_batch(keys, spec);
  std::unordered_set<std::uint64_t> deleted;
  for (const auto& op : ops) {
    if (op.kind != OpKind::kDelete) continue;
    EXPECT_TRUE(existing.count(op.key));
    EXPECT_TRUE(deleted.insert(op.key).second);
  }
  EXPECT_EQ(deleted.size(), 200u);
}

TEST(Batch, KindsInterleaved) {
  const auto keys = make_tree_keys(2000, 9);
  BatchSpec spec;
  spec.size = 2000;
  spec.insert_fraction = 0.5;
  spec.seed = 10;
  const auto ops = make_update_batch(keys, spec);
  // After shuffling, the first half must contain both kinds.
  bool saw_insert = false, saw_update = false;
  for (std::size_t i = 0; i < ops.size() / 2; ++i) {
    saw_insert |= ops[i].kind == OpKind::kInsert;
    saw_update |= ops[i].kind == OpKind::kUpdate;
  }
  EXPECT_TRUE(saw_insert);
  EXPECT_TRUE(saw_update);
}

TEST(Batch, InvalidFractionsThrow) {
  const auto keys = make_tree_keys(100, 11);
  BatchSpec spec;
  spec.insert_fraction = 0.8;
  spec.delete_fraction = 0.3;
  EXPECT_THROW(make_update_batch(keys, spec), ContractViolation);
}

TEST(Batch, Deterministic) {
  const auto keys = make_tree_keys(1000, 12);
  BatchSpec spec;
  spec.size = 500;
  spec.insert_fraction = 0.1;
  spec.seed = 13;
  const auto a = make_update_batch(keys, spec);
  const auto b = make_update_batch(keys, spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

}  // namespace
}  // namespace harmonia::queries
