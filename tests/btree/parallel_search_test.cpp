#include "btree/parallel_search.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

#include "queries/workload.hpp"

namespace harmonia::btree {
namespace {

TEST(CpuBatchSearch, MatchesPointSearch) {
  const auto keys = queries::make_tree_keys(3000, 1);
  const auto tree = make_tree(keys, 32);
  auto qs = queries::make_queries(keys, 1000, queries::Distribution::kUniform, 2);
  const auto missing = queries::make_missing_keys(keys, 200, 3);
  qs.insert(qs.end(), missing.begin(), missing.end());

  for (unsigned threads : {1u, 2u, 4u}) {
    const auto result = search_batch_cpu(tree, qs, threads);
    ASSERT_EQ(result.values.size(), qs.size());
    for (std::size_t i = 0; i < qs.size(); ++i) {
      const auto expect = tree.search(qs[i]);
      ASSERT_EQ(result.values[i], expect ? *expect : kNotFound)
          << "threads=" << threads << " query " << i;
    }
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_GT(result.throughput(), 0.0);
  }
}

TEST(CpuBatchSearch, RejectsZeroThreads) {
  const auto keys = queries::make_tree_keys(100, 4);
  const auto tree = make_tree(keys, 8);
  EXPECT_THROW(search_batch_cpu(tree, keys, 0), ContractViolation);
}

}  // namespace
}  // namespace harmonia::btree
