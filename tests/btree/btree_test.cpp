#include "btree/btree.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "queries/workload.hpp"

namespace harmonia::btree {
namespace {

std::vector<Entry> make_entries(std::span<const Key> keys) {
  std::vector<Entry> out;
  for (Key k : keys) out.push_back({k, value_for_key(k)});
  return out;
}

TEST(BTree, EmptyTree) {
  BTree tree(8);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_FALSE(tree.search(5).has_value());
  EXPECT_FALSE(tree.erase(5));
  EXPECT_FALSE(tree.update(5, 1));
  tree.validate();
}

TEST(BTree, SingleInsertAndSearch) {
  BTree tree(8);
  EXPECT_TRUE(tree.insert(10, 100));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.search(10).value(), 100u);
  EXPECT_FALSE(tree.search(11).has_value());
  tree.validate();
}

TEST(BTree, InsertOverwriteKeepsSize) {
  BTree tree(8);
  EXPECT_TRUE(tree.insert(10, 100));
  EXPECT_FALSE(tree.insert(10, 200));  // overwrite, not a new key
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.search(10).value(), 200u);
}

TEST(BTree, SequentialInsertGrowsHeight) {
  BTree tree(4);
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.insert(k, k * 2));
    tree.validate();
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.height(), 2u);
  for (Key k = 0; k < 100; ++k) EXPECT_EQ(tree.search(k).value(), k * 2);
}

TEST(BTree, ReverseInsert) {
  BTree tree(6);
  for (Key k = 200; k-- > 0;) ASSERT_TRUE(tree.insert(k, k + 1));
  tree.validate();
  for (Key k = 0; k < 200; ++k) EXPECT_EQ(tree.search(k).value(), k + 1);
}

TEST(BTree, UpdateExisting) {
  BTree tree(8);
  for (Key k = 0; k < 50; ++k) tree.insert(k, 0);
  EXPECT_TRUE(tree.update(25, 999));
  EXPECT_EQ(tree.search(25).value(), 999u);
  EXPECT_FALSE(tree.update(1000, 1));
}

TEST(BTree, EraseLeafSimple) {
  BTree tree(8);
  for (Key k = 0; k < 5; ++k) tree.insert(k, k);
  EXPECT_TRUE(tree.erase(2));
  EXPECT_FALSE(tree.search(2).has_value());
  EXPECT_EQ(tree.size(), 4u);
  EXPECT_FALSE(tree.erase(2));
  tree.validate();
}

TEST(BTree, EraseEverythingEmptiesTree) {
  BTree tree(4);
  for (Key k = 0; k < 64; ++k) tree.insert(k, k);
  for (Key k = 0; k < 64; ++k) {
    ASSERT_TRUE(tree.erase(k)) << k;
    tree.validate();
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0u);
}

TEST(BTree, EraseInterleavedWithValidate) {
  BTree tree(5);
  for (Key k = 0; k < 300; ++k) tree.insert(k * 7 % 300, k);
  Xoshiro256 rng(42);
  for (int i = 0; i < 150; ++i) {
    tree.erase(rng.next_below(300));
    tree.validate();
  }
}

TEST(BTree, BulkLoadMatchesSearches) {
  const auto keys = queries::make_tree_keys(5000, 1);
  const auto tree = make_tree(keys, 32);
  tree.validate();
  EXPECT_EQ(tree.size(), 5000u);
  for (std::size_t i = 0; i < keys.size(); i += 37) {
    EXPECT_EQ(tree.search(keys[i]).value(), value_for_key(keys[i]));
  }
  const auto missing = queries::make_missing_keys(keys, 100, 2);
  for (Key k : missing) EXPECT_FALSE(tree.search(k).has_value());
}

TEST(BTree, BulkLoadRejectsUnsorted) {
  BTree tree(8);
  const std::vector<Entry> bad{{5, 1}, {3, 2}};
  EXPECT_THROW(tree.bulk_load(bad), ContractViolation);
}

TEST(BTree, BulkLoadFillFactorAffectsNodeCount) {
  const auto keys = queries::make_tree_keys(10000, 3);
  const auto entries = make_entries(keys);
  BTree sparse(32), dense(32);
  sparse.bulk_load(entries, 0.5);
  dense.bulk_load(entries, 1.0);
  sparse.validate();
  dense.validate();
  const auto count_leaves = [](const BTree& t) { return t.levels().back().size(); };
  EXPECT_GT(count_leaves(sparse), count_leaves(dense));
}

TEST(BTree, BulkLoadSmallInputs) {
  for (std::size_t n : {1u, 2u, 3u, 7u, 8u, 9u}) {
    const auto keys = queries::make_tree_keys(n, n);
    const auto tree = make_tree(keys, 8);
    tree.validate();
    EXPECT_EQ(tree.size(), n);
    for (Key k : keys) EXPECT_TRUE(tree.search(k).has_value());
  }
}

TEST(BTree, RangeQueryInclusiveBounds) {
  BTree tree(8);
  for (Key k = 0; k < 100; k += 2) tree.insert(k, k * 10);
  const auto out = tree.range(10, 20);
  ASSERT_EQ(out.size(), 6u);  // 10,12,14,16,18,20
  EXPECT_EQ(out.front().key, 10u);
  EXPECT_EQ(out.back().key, 20u);
  for (const auto& e : out) EXPECT_EQ(e.value, e.key * 10);
}

TEST(BTree, RangeQueryLimit) {
  BTree tree(8);
  for (Key k = 0; k < 100; ++k) tree.insert(k, k);
  EXPECT_EQ(tree.range(0, 99, 10).size(), 10u);
}

TEST(BTree, RangeQueryCrossesLeaves) {
  const auto keys = queries::make_tree_keys(2000, 4);
  const auto tree = make_tree(keys, 8);
  const auto out = tree.range(keys[100], keys[500]);
  ASSERT_EQ(out.size(), 401u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].key, keys[100 + i]);
}

TEST(BTree, RangeEmptyWhenInverted) {
  BTree tree(8);
  tree.insert(5, 5);
  EXPECT_TRUE(tree.range(10, 1).empty());
}

TEST(BTree, LevelsBfsStructure) {
  const auto keys = queries::make_tree_keys(1000, 5);
  const auto tree = make_tree(keys, 16);
  const auto levels = tree.levels();
  ASSERT_EQ(levels.size(), tree.height());
  EXPECT_EQ(levels[0].size(), 1u);  // root
  for (std::size_t l = 0; l + 1 < levels.size(); ++l) {
    std::size_t children = 0;
    for (const Node* n : levels[l]) children += n->children.size();
    EXPECT_EQ(children, levels[l + 1].size());
  }
  for (const Node* leaf : levels.back()) EXPECT_TRUE(leaf->leaf);
}

TEST(BTree, FanoutTooSmallRejected) {
  EXPECT_THROW(BTree(3), ContractViolation);
}

TEST(BTree, MixedOpsAgainstMapOracle) {
  BTree tree(8);
  std::map<Key, Value> oracle;
  Xoshiro256 rng(99);
  for (int i = 0; i < 3000; ++i) {
    const Key k = rng.next_below(500);
    switch (rng.next_below(3)) {
      case 0:
        tree.insert(k, k + 1);
        oracle[k] = k + 1;
        break;
      case 1: {
        const bool a = tree.erase(k);
        const bool b = oracle.erase(k) > 0;
        ASSERT_EQ(a, b);
        break;
      }
      case 2: {
        const auto a = tree.search(k);
        const auto b = oracle.find(k);
        ASSERT_EQ(a.has_value(), b != oracle.end());
        if (a) ASSERT_EQ(*a, b->second);
        break;
      }
    }
  }
  tree.validate();
  EXPECT_EQ(tree.size(), oracle.size());
}

}  // namespace
}  // namespace harmonia::btree
