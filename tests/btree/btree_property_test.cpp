// Property-style sweeps: the same invariants across fanouts, sizes, and
// fill factors (parameterized gtest).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>

#include "btree/btree.hpp"
#include "common/rng.hpp"
#include "queries/workload.hpp"

namespace harmonia::btree {
namespace {

class BTreeFanoutSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BTreeFanoutSweep, RandomInsertSearchEraseInvariants) {
  const unsigned fanout = GetParam();
  BTree tree(fanout);
  std::map<Key, Value> oracle;
  Xoshiro256 rng(fanout);
  for (int i = 0; i < 1200; ++i) {
    const Key k = rng.next_below(400);
    if (rng.next_below(4) == 0) {
      EXPECT_EQ(tree.erase(k), oracle.erase(k) > 0);
    } else {
      tree.insert(k, k);
      oracle[k] = k;
    }
  }
  tree.validate();
  ASSERT_EQ(tree.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(tree.search(k).value(), v);
  }
}

TEST_P(BTreeFanoutSweep, BulkLoadThenFullScanMatches) {
  const unsigned fanout = GetParam();
  const auto keys = queries::make_tree_keys(3000, fanout);
  const auto tree = make_tree(keys, fanout);
  tree.validate();
  const auto all = tree.range(0, ~std::uint64_t{0} - 1);
  ASSERT_EQ(all.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(all[i].key, keys[i]);
    EXPECT_EQ(all[i].value, value_for_key(keys[i]));
  }
}

TEST_P(BTreeFanoutSweep, HeightLogarithmicInSize) {
  const unsigned fanout = GetParam();
  const auto keys = queries::make_tree_keys(4096, fanout + 1);
  const auto tree = make_tree(keys, fanout);
  // height <= ceil(log_{fanout/2}(n)) + 1 for any sane B+tree.
  const double denom = std::log2(static_cast<double>(fanout) / 2.0);
  const unsigned bound = static_cast<unsigned>(std::ceil(12.0 / denom)) + 2;
  EXPECT_LE(tree.height(), bound);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeFanoutSweep,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u, 128u));

class BulkLoadSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, double, std::size_t>> {};

TEST_P(BulkLoadSweep, ValidatesAndSearches) {
  const auto [fanout, fill, size] = GetParam();
  const auto keys = queries::make_tree_keys(size, 17);
  std::vector<Entry> entries;
  for (Key k : keys) entries.push_back({k, k ^ 0xABCD});
  BTree tree(fanout);
  tree.bulk_load(entries, fill);
  tree.validate();
  EXPECT_EQ(tree.size(), size);
  Xoshiro256 rng(size);
  for (int i = 0; i < 200; ++i) {
    const Key k = keys[rng.next_below(keys.size())];
    EXPECT_EQ(tree.search(k).value(), k ^ 0xABCD);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FillFactors, BulkLoadSweep,
    ::testing::Combine(::testing::Values(8u, 32u, 128u),
                       ::testing::Values(0.5, 0.69, 1.0),
                       ::testing::Values(std::size_t{100}, std::size_t{5000})));

class InsertAfterBulkLoad : public ::testing::TestWithParam<unsigned> {};

TEST_P(InsertAfterBulkLoad, SplitsPreserveInvariants) {
  const unsigned fanout = GetParam();
  const auto keys = queries::make_tree_keys(1000, 23);
  auto tree = make_tree(keys, fanout, 1.0);  // full nodes: inserts must split
  const auto fresh = queries::make_missing_keys(keys, 300, 29);
  for (Key k : fresh) {
    ASSERT_TRUE(tree.insert(k, k));
    tree.validate();
  }
  EXPECT_EQ(tree.size(), 1300u);
  for (Key k : fresh) EXPECT_EQ(tree.search(k).value(), k);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, InsertAfterBulkLoad,
                         ::testing::Values(4u, 8u, 64u));

}  // namespace
}  // namespace harmonia::btree
