// Differential fuzz of the incremental (delta) epoch pipeline through
// the full serving stack: a seeded mixed point/range/scan/update stream
// runs against an incremental-mode Server whose deliberately tiny
// overlay bound forces it to alternate between in-place patch commits
// and compaction fallbacks, and every response is checked against the
// snapshot for the epoch it reports — the same response-derived oracle
// as epoch_pipeline_test.cpp (update responses carry the 1-based epoch
// ordinal that applied them; apply_threads stays 1 so the arrival-order
// map oracle is exact). The runs cross >= 1000 patch/compaction/swap
// boundaries, both epoch kinds must actually occur, the patch/compaction
// report split must reconcile (check_invariants fires inside run()), and
// the same seed must replay to byte-identical responses.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/expect.hpp"
#include "queries/workload.hpp"
#include "serve/options.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"

namespace harmonia::serve {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

struct ServerFixture {
  explicit ServerFixture(std::uint64_t tree_keys = 1 << 12, unsigned fanout = 16)
      : keys(queries::make_tree_keys(tree_keys, 1)), index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          return HarmoniaIndex::build(dev, entries, {.fanout = fanout});
        }()) {}

  gpusim::Device dev{test_spec()};
  std::vector<Key> keys;
  HarmoniaIndex index;
};

/// Mirrors BatchUpdater semantics on a std::map (as in server_test.cpp).
void apply_to_oracle(std::map<Key, Value>& oracle, const Request& r) {
  switch (r.op) {
    case queries::OpKind::kUpdate:
      if (auto it = oracle.find(r.key); it != oracle.end()) it->second = r.value;
      break;
    case queries::OpKind::kInsert:
      oracle[r.key] = r.value;
      break;
    case queries::OpKind::kDelete:
      oracle.erase(r.key);
      break;
  }
}

/// Reconstructs the per-epoch snapshots the run served from: update
/// responses report the 1-based epoch ordinal that applied them; within
/// an epoch, updates apply in arrival (stream) order.
std::vector<std::map<Key, Value>> snapshots_from_responses(
    const std::vector<Key>& keys, const std::vector<Request>& stream,
    const ServerReport& rep) {
  std::vector<unsigned> epoch_of(stream.size(), 0);
  for (const Response& resp : rep.responses) {
    if (resp.kind == RequestKind::kUpdate) epoch_of[resp.id] = resp.epoch;
  }
  std::vector<std::map<Key, Value>> snapshots;
  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  snapshots.push_back(oracle);
  for (unsigned e = 1; e <= rep.epochs; ++e) {
    for (const Request& r : stream) {
      if (r.kind == RequestKind::kUpdate && epoch_of[r.id] == e)
        apply_to_oracle(oracle, r);
    }
    snapshots.push_back(oracle);
  }
  return snapshots;
}

/// Checks every response against the snapshot for the epoch it reports.
void check_against_snapshots(const std::vector<Request>& stream,
                             const ServerReport& rep,
                             const std::vector<std::map<Key, Value>>& snapshots,
                             std::size_t max_range_results) {
  for (const auto& resp : rep.responses) {
    ASSERT_LT(resp.epoch, snapshots.size());
    const auto& oracle = snapshots[resp.epoch];
    const Request& req = stream[resp.id];
    switch (resp.kind) {
      case RequestKind::kPoint: {
        const auto it = oracle.find(req.key);
        const Value want = it != oracle.end() ? it->second : kNotFound;
        ASSERT_EQ(resp.value, want)
            << "request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case RequestKind::kRange: {
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && it->first <= req.hi &&
             want.size() < max_range_results;
             ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "range request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case RequestKind::kScan: {
        std::size_t limit = req.scan_n ? req.scan_n : 1;
        if (limit > max_range_results) limit = max_range_results;
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && want.size() < limit; ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "scan request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case RequestKind::kUpdate:
        EXPECT_GE(resp.completion, resp.arrival);
        EXPECT_GE(resp.epoch, 1u);
        break;
    }
  }
}

ServeOptions delta_config(std::uint64_t max_buffered, std::size_t overlay_cap) {
  ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.max_wait = 100e-6;
  cfg.batch.queue_capacity = 1 << 15;  // no drops: every request oracle-checked
  cfg.batch.max_range_results = 16;
  cfg.epoch.max_buffered = max_buffered;
  cfg.epoch.max_wait = 50e-6;
  // Single-threaded apply: the striped multi-worker apply may order two
  // same-batch ops on one key either way, which the arrival-order map
  // oracle cannot model.
  cfg.epoch.apply_threads = 1;
  cfg.epoch.mode = EpochMode::kIncremental;
  cfg.epoch.overlay_capacity = overlay_cap;
  return cfg;
}

// Acceptance: >= 1000 epoch boundaries through the incremental pipeline
// — in-place patch commits interleaved with overlay-exhaustion
// compactions — and every point/range/scan answer still matches the
// snapshot for the epoch it reports. Queries served between a staged
// patch and its commit must see the pre-patch device image; a torn or
// early-visible patch would show up as an oracle mismatch here.
TEST(DeltaServingFuzz, DifferentialOracleAcrossThousandEpochBoundaries) {
  ServerFixture f;

  OpenLoopSpec spec;
  spec.arrivals_per_second = 5e6;
  spec.count = 100000;
  spec.update_fraction = 0.35;
  spec.range_fraction = 0.05;
  spec.range_span = 8;
  spec.scan_fraction = 0.05;
  spec.scan_n = 12;
  spec.seed = 1337;
  const auto stream = make_open_loop(f.keys, spec);

  ServeOptions cfg = delta_config(/*max_buffered=*/6, /*overlay_cap=*/24);
  // Epoch commits land on batch boundaries, so boundary density bounds
  // the epoch rate: small batches, a free modeled apply, and a fast
  // link pack >= 1000 epochs into the stream (as in the swap stress).
  cfg.batch.max_batch = 32;
  cfg.epoch.seconds_per_op = 0.0;
  cfg.epoch.seconds_per_patch_op = 0.0;
  cfg.link.gigabytes_per_second = 100.0;
  cfg.link.latency_seconds = 1e-6;
  Server server(f.index, cfg);
  const auto rep = server.run(stream);

  ASSERT_EQ(rep.dropped, 0u);
  ASSERT_EQ(rep.responses.size(), stream.size());
  ASSERT_GE(rep.epochs, 1000u)
      << "the stream must cross >= 1000 patch/compaction/swap boundaries";
  // The tiny overlay must have forced both commit paths.
  EXPECT_GT(rep.patch_epochs, 0u);
  EXPECT_GT(rep.compaction_epochs, 0u);
  EXPECT_EQ(rep.patch_epochs + rep.compaction_epochs, rep.epochs);

  const auto snapshots = snapshots_from_responses(f.keys, stream, rep);
  ASSERT_EQ(snapshots.size(), rep.epochs + 1);
  ASSERT_NO_FATAL_FAILURE(check_against_snapshots(stream, rep, snapshots,
                                                  cfg.batch.max_range_results));

  // After the final drain the live index equals the last snapshot (the
  // host search consults the overlay, so entries still parked there —
  // the drain may commit as a patch — are covered too) and the
  // committed tree still satisfies every structural invariant.
  const auto& final_oracle = snapshots.back();
  f.index.tree().validate();
  EXPECT_LE(f.index.overlay_live_count() + f.index.overlay_tombstone_count(),
            cfg.epoch.overlay_capacity);
  for (const auto& [k, v] : final_oracle) {
    ASSERT_EQ(f.index.search_host(k).value_or(kNotFound), v);
  }
}

// Acceptance: the incremental pipeline is deterministic — the same seed
// and config replay to byte-identical response streams and identical
// patch/compaction splits (the virtual clock admits no hidden state).
TEST(DeltaServingFuzz, DeterministicReplay) {
  OpenLoopSpec spec;
  spec.arrivals_per_second = 5e6;
  spec.count = 6000;
  spec.update_fraction = 0.3;
  spec.range_fraction = 0.05;
  spec.seed = 99;

  auto run_once = [&](ServerReport& out) {
    ServerFixture f;
    const auto stream = make_open_loop(f.keys, spec);
    const ServeOptions cfg = delta_config(/*max_buffered=*/16, /*overlay_cap=*/32);
    Server server(f.index, cfg);
    out = server.run(stream);
  };

  ServerReport a, b;
  run_once(a);
  run_once(b);
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    const Response& ra = a.responses[i];
    const Response& rb = b.responses[i];
    ASSERT_EQ(ra.id, rb.id);
    ASSERT_EQ(ra.epoch, rb.epoch);
    ASSERT_EQ(ra.value, rb.value);
    ASSERT_EQ(ra.range_values, rb.range_values);
    ASSERT_DOUBLE_EQ(ra.completion, rb.completion);
  }
  EXPECT_EQ(a.patch_epochs, b.patch_epochs);
  EXPECT_EQ(a.compaction_epochs, b.compaction_epochs);
  EXPECT_DOUBLE_EQ(a.epoch_patch_upload_seconds, b.epoch_patch_upload_seconds);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

// Acceptance: an update-heavy incremental run pays dramatically less
// upload than the same stream through the full-image overlap pipeline —
// the serving-level expression of the patch_bytes << image_bytes
// contract (the E13 sweep quantifies the crossover; this just pins the
// direction at test scale).
TEST(DeltaServingFuzz, PatchUploadsUndercutFullImageUploads) {
  OpenLoopSpec spec;
  spec.arrivals_per_second = 5e6;
  spec.count = 20000;
  spec.update_fraction = 0.5;
  spec.seed = 7;

  auto run_mode = [&](EpochMode mode) {
    // A tree big enough that a full-image upload dwarfs a patch burst
    // (the same reason E13's crossover gate runs at --size=19).
    ServerFixture f(1 << 16);
    const auto stream = make_open_loop(f.keys, spec);
    ServeOptions cfg = delta_config(/*max_buffered=*/64, /*overlay_cap=*/1024);
    cfg.epoch.mode = mode;
    Server server(f.index, cfg);
    return server.run(stream);
  };

  const auto overlap = run_mode(EpochMode::kOverlap);
  const auto delta = run_mode(EpochMode::kIncremental);
  ASSERT_GT(overlap.epochs, 10u);
  ASSERT_GT(delta.patch_epochs, 0u);
  // Patch epochs move dirty leaves + overlay entries, not whole images:
  // per epoch, a patch upload must undercut a full-image upload by 10x.
  const double patch_per_epoch = delta.epoch_patch_upload_seconds /
                                 static_cast<double>(delta.patch_epochs);
  const double image_per_epoch = overlap.epoch_upload_seconds /
                                 static_cast<double>(overlap.epochs);
  EXPECT_LT(patch_per_epoch, image_per_epoch * 0.1);
}

}  // namespace
}  // namespace harmonia::serve
