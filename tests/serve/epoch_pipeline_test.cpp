// System tests of the double-buffered overlap epoch pipeline
// (docs/serving.md#epoch-pipeline): queries served through a background
// build + upload + atomic swap must still match a per-epoch snapshot
// oracle, epoch versions must be monotone in completion order, the
// report must attribute build/upload/swap-wait/stall separately per
// mode, thousands of back-to-back swaps must survive a multi-threaded
// apply (the TSan target), and ServeOptions::validate must reject every
// inconsistent combination before any serving state exists.
//
// Unlike the quiesce oracle in server_test.cpp (fixed max_buffered
// blocks), the overlap oracle derives epoch membership from the update
// *responses*: while an epoch is in flight the buffer keeps growing, so
// a later epoch can apply more than max_buffered updates. Each update
// response reports the epoch that applied it; replaying the stream's
// updates grouped by that ordinal reconstructs exactly the snapshots
// queries were served from.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/expect.hpp"
#include "queries/workload.hpp"
#include "serve/options.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"

namespace harmonia::serve {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

struct ServerFixture {
  explicit ServerFixture(std::uint64_t tree_keys = 1 << 12, unsigned fanout = 16)
      : keys(queries::make_tree_keys(tree_keys, 1)), index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          return HarmoniaIndex::build(dev, entries, {.fanout = fanout});
        }()) {}

  gpusim::Device dev{test_spec()};
  std::vector<Key> keys;
  HarmoniaIndex index;
};

/// Mirrors BatchUpdater semantics on a std::map (as in server_test.cpp).
void apply_to_oracle(std::map<Key, Value>& oracle, const Request& r) {
  switch (r.op) {
    case queries::OpKind::kUpdate:
      if (auto it = oracle.find(r.key); it != oracle.end()) it->second = r.value;
      break;
    case queries::OpKind::kInsert:
      oracle[r.key] = r.value;
      break;
    case queries::OpKind::kDelete:
      oracle.erase(r.key);
      break;
  }
}

/// Reconstructs the per-epoch snapshots an overlap run served from:
/// update responses report the 1-based epoch ordinal that applied them;
/// within an epoch, updates apply in arrival (stream) order.
std::vector<std::map<Key, Value>> snapshots_from_responses(
    const std::vector<Key>& keys, const std::vector<Request>& stream,
    const ServerReport& rep) {
  std::vector<unsigned> epoch_of(stream.size(), 0);
  for (const Response& resp : rep.responses) {
    if (resp.kind == RequestKind::kUpdate) epoch_of[resp.id] = resp.epoch;
  }
  std::vector<std::map<Key, Value>> snapshots;
  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  snapshots.push_back(oracle);
  for (unsigned e = 1; e <= rep.epochs; ++e) {
    for (const Request& r : stream) {
      if (r.kind == RequestKind::kUpdate && epoch_of[r.id] == e)
        apply_to_oracle(oracle, r);
    }
    snapshots.push_back(oracle);
  }
  return snapshots;
}

// Acceptance: with the double-buffered pipeline swapping images mid
// stream, every point/range answer still matches the snapshot for the
// epoch it reports — build/upload overlap never leaks a torn image.
TEST(EpochPipeline, OverlapDifferentialOracleAcrossEpochs) {
  ServerFixture f;

  OpenLoopSpec spec;
  spec.arrivals_per_second = 5e6;
  spec.count = 8000;
  spec.update_fraction = 0.25;
  spec.range_fraction = 0.10;
  spec.range_span = 8;
  spec.seed = 42;
  const auto stream = make_open_loop(f.keys, spec);

  ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.max_wait = 100e-6;
  cfg.batch.queue_capacity = 8192;  // no drops: every request needs an oracle check
  cfg.batch.max_range_results = 16;
  cfg.epoch.max_buffered = 400;
  cfg.epoch.mode = EpochMode::kOverlap;

  Server server(f.index, cfg);
  const auto rep = server.run(stream);

  ASSERT_EQ(rep.dropped, 0u);
  ASSERT_EQ(rep.responses.size(), stream.size());
  ASSERT_GE(rep.epochs, 3u) << "workload must span >= 3 swapped epochs";

  const auto snapshots = snapshots_from_responses(f.keys, stream, rep);
  ASSERT_EQ(snapshots.size(), rep.epochs + 1);

  std::uint64_t points = 0, ranges = 0;
  for (const auto& resp : rep.responses) {
    ASSERT_LT(resp.epoch, snapshots.size());
    const auto& oracle = snapshots[resp.epoch];
    switch (resp.kind) {
      case RequestKind::kPoint: {
        ++points;
        const Request& req = stream[resp.id];
        const auto it = oracle.find(req.key);
        const Value want = it != oracle.end() ? it->second : kNotFound;
        ASSERT_EQ(resp.value, want)
            << "request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case RequestKind::kRange: {
        ++ranges;
        const Request& req = stream[resp.id];
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && it->first <= req.hi &&
             want.size() < cfg.batch.max_range_results;
             ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "range request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case RequestKind::kScan: {
        const Request& req = stream[resp.id];
        std::size_t limit = req.scan_n ? req.scan_n : 1;
        if (limit > cfg.batch.max_range_results)
          limit = cfg.batch.max_range_results;
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && want.size() < limit; ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "scan request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case RequestKind::kUpdate:
        EXPECT_GE(resp.completion, resp.arrival);
        EXPECT_GE(resp.epoch, 1u);
        break;
    }
  }
  EXPECT_GT(points, 3000u);
  EXPECT_GT(ranges, 400u);

  // After the run, the live index equals the final snapshot: the last
  // swap (or final drain) installed every buffered update.
  const auto& final_oracle = snapshots.back();
  f.index.tree().validate();
  ASSERT_EQ(f.index.tree().num_keys(), final_oracle.size());
  for (const auto& [k, v] : final_oracle) {
    ASSERT_EQ(f.index.search_host(k).value_or(kNotFound), v);
  }
}

// Acceptance: the report splits epoch cost into build | upload | swap
// wait | stall, and the split matches the mode's contract — quiesce
// stalls the device and never waits on a swap; overlap swaps and only
// stalls in the final close-out drain (strictly less than quiesce).
TEST(EpochPipeline, ReportAttributesStallAndSwapPerMode) {
  OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 6000;
  spec.update_fraction = 0.2;
  spec.seed = 9;

  auto run_mode = [&](EpochMode mode) {
    ServerFixture f;
    const auto stream = make_open_loop(f.keys, spec);
    ServeOptions cfg;
    cfg.batch.max_batch = 256;
    cfg.epoch.max_buffered = 200;
    cfg.epoch.mode = mode;
    Server server(f.index, cfg);
    return server.run(stream);
  };

  const auto quiesce = run_mode(EpochMode::kQuiesce);
  const auto overlap = run_mode(EpochMode::kOverlap);

  ASSERT_GE(quiesce.epochs, 3u);
  ASSERT_GE(overlap.epochs, 3u);

  // Both modes pay the CPU build and the PCIe upload.
  EXPECT_GT(quiesce.epoch_build_seconds, 0.0);
  EXPECT_GT(quiesce.epoch_upload_seconds, 0.0);
  EXPECT_GT(overlap.epoch_build_seconds, 0.0);
  EXPECT_GT(overlap.epoch_upload_seconds, 0.0);

  // Quiesce: the device eats build+upload as serving stall; there is no
  // staged image to wait on.
  EXPECT_DOUBLE_EQ(quiesce.epoch_swap_wait_seconds, 0.0);
  EXPECT_GT(quiesce.epoch_stall_seconds, 0.0);
  EXPECT_NEAR(quiesce.epoch_stall_seconds,
              quiesce.epoch_build_seconds + quiesce.epoch_upload_seconds, 1e-9);

  // Overlap: swaps are free on the device; only the final drain (which
  // quiesces for leftovers) may stall, so overlap stalls strictly less.
  EXPECT_GE(overlap.epoch_swap_wait_seconds, 0.0);
  EXPECT_LT(overlap.epoch_stall_seconds, quiesce.epoch_stall_seconds);
  EXPECT_LT(overlap.busy_seconds, quiesce.busy_seconds);
}

// A stream with no updates must be bit-identical across modes: the
// pipeline only exists at epoch triggers, and there are none.
TEST(EpochPipeline, ZeroUpdateStreamIdenticalAcrossModes) {
  OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 4000;
  spec.update_fraction = 0.0;
  spec.range_fraction = 0.05;
  spec.seed = 17;

  auto run_mode = [&](EpochMode mode) {
    ServerFixture f;
    const auto stream = make_open_loop(f.keys, spec);
    ServeOptions cfg;
    cfg.batch.max_batch = 128;
    cfg.epoch.mode = mode;
    Server server(f.index, cfg);
    return server.run(stream);
  };

  const auto a = run_mode(EpochMode::kQuiesce);
  const auto b = run_mode(EpochMode::kOverlap);

  EXPECT_EQ(a.epochs, 0u);
  EXPECT_EQ(b.epochs, 0u);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.batches, b.batches);
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].id, b.responses[i].id);
    EXPECT_DOUBLE_EQ(a.responses[i].completion, b.responses[i].completion);
    EXPECT_EQ(a.responses[i].value, b.responses[i].value);
  }
}

// TSan target: thousands of back-to-back staged epochs, each building on
// a shadow tree with a multi-threaded Algorithm-1 apply while the serving
// loop keeps dispatching. Properties: reported epoch versions are
// monotone in completion order (a later completion never sees an older
// image), and the final tree equals the all-updates-applied oracle
// regardless of how the swaps grouped the buffer. A fast link + a free
// modeled apply shrink each epoch to a few microseconds so the run
// really crosses ~2000 swaps in a fraction of a second.
TEST(EpochPipeline, ThousandsOfBackToBackSwapsStayMonotonic) {
  ServerFixture f;

  OpenLoopSpec spec;
  spec.arrivals_per_second = 5e6;
  spec.count = 60000;
  spec.update_fraction = 0.5;
  spec.seed = 23;
  const auto stream = make_open_loop(f.keys, spec);

  ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.queue_capacity = 1 << 16;
  cfg.epoch.max_buffered = 8;  // a swap every few batches
  cfg.epoch.apply_threads = 2;
  cfg.epoch.seconds_per_op = 0.0;
  cfg.epoch.mode = EpochMode::kOverlap;
  cfg.link.gigabytes_per_second = 100.0;
  cfg.link.latency_seconds = 1e-6;

  Server server(f.index, cfg);
  const auto rep = server.run(stream);

  ASSERT_EQ(rep.dropped, 0u);
  EXPECT_GE(rep.epochs, 1500u) << "stress must cross thousands of swaps";

  // Monotone epochs: order completions; when virtual time strictly
  // advances, the reported epoch may only grow.
  std::vector<const Response*> by_completion;
  by_completion.reserve(rep.responses.size());
  for (const auto& resp : rep.responses) by_completion.push_back(&resp);
  std::stable_sort(by_completion.begin(), by_completion.end(),
                   [](const Response* a, const Response* b) {
                     return a->completion < b->completion;
                   });
  double last_t = -1.0;
  unsigned max_epoch_at_t = 0;
  for (const Response* resp : by_completion) {
    if (resp->completion > last_t) {
      ASSERT_GE(resp->epoch, max_epoch_at_t)
          << "epoch went backwards at t=" << resp->completion;
      last_t = resp->completion;
    }
    max_epoch_at_t = std::max(max_epoch_at_t, resp->epoch);
    ASSERT_LE(resp->epoch, rep.epochs);
  }

  f.index.tree().validate();

  // Final state: epoch grouping must not change what ends up applied.
  // Checked on a single-threaded replay of the same stream — the striped
  // multi-worker apply may order two same-batch ops on one key either
  // way (a pre-existing BatchUpdater semantic the arrival-order map
  // oracle cannot model); one worker applies them in arrival order.
  std::map<Key, Value> oracle;
  for (Key k : f.keys) oracle[k] = btree::value_for_key(k);
  for (const Request& r : stream) {
    if (r.kind == RequestKind::kUpdate) apply_to_oracle(oracle, r);
  }
  ServerFixture f1;
  ServeOptions cfg1 = cfg;
  cfg1.epoch.apply_threads = 1;
  Server serial(f1.index, cfg1);
  const auto rep1 = serial.run(stream);
  EXPECT_GE(rep1.epochs, 1500u);
  f1.index.tree().validate();
  ASSERT_EQ(f1.index.tree().num_keys(), oracle.size());
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(f1.index.search_host(k).value_or(kNotFound), v);
  }
}

// The overlap pipeline must stay a pure replay even with a threaded
// apply: the virtual clock, not thread scheduling, orders every event.
TEST(EpochPipeline, DeterministicReplayWithThreadedApply) {
  OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 3000;
  spec.update_fraction = 0.2;
  spec.seed = 5;

  auto run_once = [&] {
    ServerFixture f;
    const auto stream = make_open_loop(f.keys, spec);
    ServeOptions cfg;
    cfg.batch.max_batch = 128;
    cfg.batch.max_wait = 80e-6;
    cfg.epoch.max_buffered = 100;
    cfg.epoch.apply_threads = 2;
    cfg.epoch.mode = EpochMode::kOverlap;
    Server server(f.index, cfg);
    return server.run(stream);
  };

  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].id, b.responses[i].id);
    EXPECT_DOUBLE_EQ(a.responses[i].completion, b.responses[i].completion);
    EXPECT_EQ(a.responses[i].epoch, b.responses[i].epoch);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_DOUBLE_EQ(a.epoch_swap_wait_seconds, b.epoch_swap_wait_seconds);
}

// ServeOptions::validate is the single gate every entry point passes
// through; each inconsistent combination must throw before any serving
// state is built.
TEST(ServeOptionsValidate, RejectsInconsistentCombinations) {
  {
    ServeOptions opts;
    EXPECT_NO_THROW(opts.validate(1));
    EXPECT_NO_THROW(opts.validate(4));
  }
  {
    ServeOptions opts;
    opts.batch.queue_capacity = 100;
    opts.batch.max_batch = 200;  // trigger can never fire
    EXPECT_THROW(opts.validate(1), ContractViolation);
  }
  {
    ServeOptions opts;
    opts.batch.max_batch = 0;
    EXPECT_THROW(opts.validate(1), ContractViolation);
  }
  {
    ServeOptions opts;
    opts.epoch.max_buffered = 0;
    EXPECT_THROW(opts.validate(1), ContractViolation);
  }
  {
    ServeOptions opts;
    opts.epoch.apply_threads = 0;
    EXPECT_THROW(opts.validate(1), ContractViolation);
  }
  {
    ServeOptions opts;
    opts.link.gigabytes_per_second = 0.0;
    EXPECT_THROW(opts.validate(1), ContractViolation);
  }
  {
    ServeOptions opts;
    opts.mitigation.retry.max_attempts = 0;
    EXPECT_THROW(opts.validate(1), ContractViolation);
  }
  {
    ServeOptions opts;
    opts.mitigation.hedge.enabled = true;
    opts.mitigation.hedge.multiplier = 1.0;  // hedge would fire instantly
    EXPECT_THROW(opts.validate(1), ContractViolation);
  }
  {
    // A fault event must target an existing shard.
    ServeOptions opts;
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kDispatchFailure;
    e.at = 1e-3;
    e.shard = 2;
    opts.faults.events.push_back(e);
    EXPECT_THROW(opts.validate(2), ContractViolation);
    EXPECT_NO_THROW(opts.validate(3));
  }
  {
    // Shard loss needs somewhere to fail over to.
    ServeOptions opts;
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kShardLost;
    e.at = 1e-3;
    e.shard = 0;
    e.duration = 1e-3;
    opts.faults.events.push_back(e);
    EXPECT_THROW(opts.validate(1), ContractViolation);
    EXPECT_NO_THROW(opts.validate(2));
  }
}

// The CLI entry point rejects a bad --epoch-mode with the same exception
// the option structs use (tools translate it to exit code 2).
TEST(ServeOptionsValidate, FromCliRejectsUnknownEpochMode) {
  Cli cli;
  ServeOptions::add_flags(cli);
  const char* argv[] = {"prog", "--epoch-mode=bogus"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(ServeOptions::from_cli(cli), ContractViolation);

  Cli ok;
  ServeOptions::add_flags(ok);
  const char* argv2[] = {"prog", "--epoch-mode=overlap", "--apply-threads=2"};
  ASSERT_TRUE(ok.parse(3, argv2));
  const auto opts = ServeOptions::from_cli(ok);
  EXPECT_EQ(opts.epoch.mode, EpochMode::kOverlap);
  EXPECT_EQ(opts.epoch.apply_threads, 2u);
  EXPECT_NO_THROW(opts.validate(1));
}

}  // namespace
}  // namespace harmonia::serve
