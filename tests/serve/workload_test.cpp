// Tests of the serving workload generators: Poisson statistics, kind
// mix, determinism, and closed-loop bookkeeping.
#include <gtest/gtest.h>

#include <cmath>

#include "queries/workload.hpp"
#include "serve/workload.hpp"

namespace harmonia::serve {
namespace {

TEST(OpenLoopWorkload, PoissonInterarrivalStatistics) {
  const auto keys = queries::make_tree_keys(4096, 1);
  OpenLoopSpec spec;
  spec.arrivals_per_second = 1e6;
  spec.count = 50000;
  spec.seed = 3;
  const auto stream = make_open_loop(keys, spec);
  ASSERT_EQ(stream.size(), spec.count);

  double sum = 0.0, prev = 0.0;
  for (const auto& r : stream) {
    ASSERT_GE(r.arrival, prev);  // sorted
    sum += r.arrival - prev;
    prev = r.arrival;
  }
  const double mean = sum / static_cast<double>(spec.count);
  EXPECT_NEAR(mean, 1e-6, 0.03e-6);  // 1/rate within 3%

  // Exponential interarrivals: P(X > mean) = 1/e ~ 0.368.
  std::uint64_t over_mean = 0;
  prev = 0.0;
  for (const auto& r : stream) {
    over_mean += (r.arrival - prev > mean);
    prev = r.arrival;
  }
  const double frac = static_cast<double>(over_mean) / static_cast<double>(spec.count);
  EXPECT_NEAR(frac, std::exp(-1.0), 0.02);
}

TEST(OpenLoopWorkload, KindMixAndTargets) {
  const auto keys = queries::make_tree_keys(4096, 1);
  OpenLoopSpec spec;
  spec.arrivals_per_second = 1e6;
  spec.count = 20000;
  spec.update_fraction = 0.2;
  spec.range_fraction = 0.1;
  spec.range_span = 8;
  spec.seed = 4;
  const auto stream = make_open_loop(keys, spec);

  std::uint64_t updates = 0, ranges = 0, points = 0;
  for (const auto& r : stream) {
    switch (r.kind) {
      case RequestKind::kUpdate: ++updates; break;
      case RequestKind::kRange:
        ++ranges;
        EXPECT_LE(r.key, r.hi);
        break;
      case RequestKind::kPoint:
        ++points;
        // Point targets hit existing keys.
        EXPECT_TRUE(std::binary_search(keys.begin(), keys.end(), r.key));
        break;
    }
    EXPECT_EQ(r.id, static_cast<std::uint64_t>(&r - stream.data()));
  }
  EXPECT_NEAR(static_cast<double>(updates) / 20000.0, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(ranges) / 20000.0, 0.1, 0.02);
  EXPECT_EQ(updates + ranges + points, 20000u);
}

TEST(OpenLoopWorkload, DeterministicInSpec) {
  const auto keys = queries::make_tree_keys(1024, 2);
  OpenLoopSpec spec;
  spec.arrivals_per_second = 2e6;
  spec.count = 5000;
  spec.update_fraction = 0.3;
  spec.seed = 9;
  const auto a = make_open_loop(keys, spec);
  const auto b = make_open_loop(keys, spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind));
  }
}

TEST(ClosedLoopSource, RespectsClientPopulationAndTotal) {
  const auto keys = queries::make_tree_keys(1024, 2);
  ClosedLoopSpec spec;
  spec.clients = 4;
  spec.think_seconds = 10e-6;
  spec.total_requests = 10;
  spec.seed = 5;
  ClosedLoopSource source(keys, spec);

  // Initially one scheduled request per client.
  std::uint64_t outstanding = 0;
  std::vector<Request> in_flight;
  while (source.peek() && outstanding < 4) {
    in_flight.push_back(source.pop());
    ++outstanding;
  }
  EXPECT_EQ(outstanding, 4u);
  EXPECT_EQ(source.peek(), nullptr);  // nothing until a completion

  // Completing one request schedules exactly one follow-up, after think.
  Response resp;
  resp.id = in_flight[0].id;
  resp.completion = 1e-3;
  source.on_complete(resp);
  ASSERT_NE(source.peek(), nullptr);
  EXPECT_DOUBLE_EQ(source.peek()->arrival, 1e-3 + 10e-6);

  // Issue count caps at total_requests across all feedback.
  for (std::uint64_t i = 0; source.peek(); ++i) {
    const Request r = source.pop();
    Response done;
    done.id = r.id;
    done.completion = 2e-3 + static_cast<double>(i) * 1e-4;
    source.on_complete(done);
  }
  EXPECT_EQ(source.issued(), 10u);
}

}  // namespace
}  // namespace harmonia::serve
