// System tests of the serving event loop: the serving path must return
// exactly what the offline index would (differentially, across update
// epochs), the deadline trigger must bound tail queueing delay, and
// overload must shed load instead of growing the queue.
#include <gtest/gtest.h>

#include <map>

#include "queries/workload.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"

namespace harmonia::serve {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

struct ServerFixture {
  explicit ServerFixture(std::uint64_t tree_keys = 1 << 12, unsigned fanout = 16)
      : keys(queries::make_tree_keys(tree_keys, 1)), index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          return HarmoniaIndex::build(dev, entries, {.fanout = fanout});
        }()) {}

  gpusim::Device dev{test_spec()};
  std::vector<Key> keys;
  HarmoniaIndex index;
};

/// Mirrors BatchUpdater semantics on a std::map (phase_workflow style).
void apply_to_oracle(std::map<Key, Value>& oracle, const Request& r) {
  switch (r.op) {
    case queries::OpKind::kUpdate:
      if (auto it = oracle.find(r.key); it != oracle.end()) it->second = r.value;
      break;
    case queries::OpKind::kInsert:
      oracle[r.key] = r.value;
      break;
    case queries::OpKind::kDelete:
      oracle.erase(r.key);
      break;
  }
}

// Acceptance: the serving path returns, for every admitted request, the
// answer the offline index would give for the epoch it was served under —
// across >= 3 interleaved query/update epochs (point and range lanes).
TEST(Server, DifferentialOracleAcrossEpochs) {
  ServerFixture f;

  OpenLoopSpec spec;
  spec.arrivals_per_second = 5e6;
  spec.count = 6000;
  spec.update_fraction = 0.25;
  spec.range_fraction = 0.10;
  spec.range_span = 8;
  spec.seed = 42;
  const auto stream = make_open_loop(f.keys, spec);

  ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.max_wait = 100e-6;
  cfg.batch.queue_capacity = 8192;  // no drops: every request needs an oracle check
  cfg.batch.max_range_results = 16;
  cfg.epoch.max_buffered = 400;

  // Snapshot the oracle after every epoch's worth of updates, replaying
  // the stream in arrival order exactly as the epoch updater batches it.
  std::vector<std::map<Key, Value>> snapshots;
  {
    std::map<Key, Value> oracle;
    for (Key k : f.keys) oracle[k] = btree::value_for_key(k);
    snapshots.push_back(oracle);
    std::size_t buffered = 0;
    for (const Request& r : stream) {
      if (r.kind != RequestKind::kUpdate) continue;
      apply_to_oracle(oracle, r);
      if (++buffered == cfg.epoch.max_buffered) {
        snapshots.push_back(oracle);
        buffered = 0;
      }
    }
    if (buffered > 0) snapshots.push_back(oracle);  // final drain epoch
  }
  ASSERT_GE(snapshots.size(), 4u) << "workload must span >= 3 update epochs";

  Server server(f.index, cfg);
  const auto rep = server.run(stream);

  ASSERT_EQ(rep.dropped, 0u);
  ASSERT_EQ(rep.responses.size(), stream.size());
  EXPECT_GE(rep.epochs, 3u);
  ASSERT_EQ(rep.epochs + 1, snapshots.size());

  std::uint64_t points = 0, ranges = 0;
  for (const auto& resp : rep.responses) {
    ASSERT_LT(resp.epoch, snapshots.size());
    const auto& oracle = snapshots[resp.epoch];
    switch (resp.kind) {
      case RequestKind::kPoint: {
        ++points;
        const Request& req = stream[resp.id];
        const auto it = oracle.find(req.key);
        const Value want = it != oracle.end() ? it->second : kNotFound;
        ASSERT_EQ(resp.value, want)
            << "request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case RequestKind::kRange: {
        ++ranges;
        const Request& req = stream[resp.id];
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && it->first <= req.hi &&
             want.size() < cfg.batch.max_range_results;
             ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "range request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case RequestKind::kScan: {
        const Request& req = stream[resp.id];
        std::size_t limit = req.scan_n ? req.scan_n : 1;
        if (limit > cfg.batch.max_range_results)
          limit = cfg.batch.max_range_results;
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && want.size() < limit; ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "scan request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case RequestKind::kUpdate:
        EXPECT_GE(resp.completion, resp.arrival);
        EXPECT_GE(resp.epoch, 1u);
        break;
    }
  }
  EXPECT_GT(points, 3000u);
  EXPECT_GT(ranges, 400u);

  // After the run, the index itself must equal the final snapshot.
  const auto& final_oracle = snapshots.back();
  f.index.tree().validate();
  ASSERT_EQ(f.index.tree().num_keys(), final_oracle.size());
  for (const auto& [k, v] : final_oracle) {
    ASSERT_EQ(f.index.search_host(k).value_or(kNotFound), v);
  }
}

// Acceptance: the deadline trigger bounds p99 queueing delay; widening
// the deadline shifts the whole latency distribution up.
TEST(Server, DeadlineBoundsTailQueueingDelay) {
  auto run_with_wait = [](double max_wait) {
    ServerFixture f;
    OpenLoopSpec spec;
    spec.arrivals_per_second = 2e6;  // well under capacity: waiting is
    spec.count = 8000;               // deadline-dominated, not contention
    spec.seed = 7;
    const auto stream = make_open_loop(f.keys, spec);

    ServeOptions cfg;
    cfg.batch.max_batch = 4096;  // size trigger out of the way
    cfg.batch.max_wait = max_wait;
    Server server(f.index, cfg);
    return server.run(stream);
  };

  const auto tight = run_with_wait(50e-6);
  const auto loose = run_with_wait(400e-6);

  // p99 queueing delay stays within deadline + one batch's service time.
  const double service_allowance = 50e-6;
  EXPECT_LE(tight.queue_delay.percentile(99), 50e-6 + service_allowance);
  EXPECT_LE(loose.queue_delay.percentile(99), 400e-6 + service_allowance);
  // The frontier: longer deadline -> bigger batches, higher tail latency.
  EXPECT_GT(loose.batch_size.mean(), tight.batch_size.mean());
  EXPECT_GT(loose.latency.percentile(99), tight.latency.percentile(99));
  EXPECT_EQ(tight.dropped, 0u);
  EXPECT_EQ(loose.dropped, 0u);
}

// Acceptance: under overload the bounded queue rejects; the backlog (and
// hence queueing delay) stays bounded instead of growing with the stream.
TEST(Server, OverloadShedsLoadInsteadOfGrowingQueue) {
  ServerFixture f;
  OpenLoopSpec spec;
  spec.arrivals_per_second = 500e6;  // far beyond device capacity
  spec.count = 20000;
  spec.seed = 11;
  const auto stream = make_open_loop(f.keys, spec);

  ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.max_wait = 50e-6;
  cfg.batch.queue_capacity = 1024;
  Server server(f.index, cfg);
  const auto rep = server.run(stream);

  EXPECT_GT(rep.dropped, 0u);
  EXPECT_EQ(rep.admitted + rep.dropped, rep.arrivals);
  EXPECT_EQ(rep.responses.size(), stream.size());  // every request answered
  EXPECT_EQ(rep.completed + rep.dropped, rep.arrivals);
  // The sampled backlog never exceeds the bound.
  EXPECT_LE(rep.queue_depth.max(), static_cast<double>(cfg.batch.queue_capacity));

  // Doubling the length of the overload must not move the worst queueing
  // delay: it is a function of the queue bound, not of how long the
  // overload lasts. (Without backpressure it would roughly double.)
  OpenLoopSpec longer = spec;
  longer.count = 2 * spec.count;
  const auto stream2 = make_open_loop(f.keys, longer);
  ServerFixture f2;
  Server server2(f2.index, cfg);
  const auto rep2 = server2.run(stream2);
  EXPECT_GT(rep2.dropped, rep.dropped);  // shedding scales with the stream
  EXPECT_LE(rep2.queue_delay.max(), rep.queue_delay.max() * 1.25);
}

TEST(Server, ClosedLoopNeverOverflowsClientPopulation) {
  ServerFixture f;
  ClosedLoopSpec spec;
  spec.clients = 32;
  spec.think_seconds = 10e-6;
  spec.total_requests = 2000;
  spec.seed = 3;
  ClosedLoopSource source(f.keys, spec);

  ServeOptions cfg;
  cfg.batch.max_batch = 64;
  cfg.batch.max_wait = 30e-6;
  Server server(f.index, cfg);
  const auto rep = server.run(source);

  EXPECT_EQ(source.issued(), 2000u);
  EXPECT_EQ(rep.completed, 2000u);
  EXPECT_EQ(rep.dropped, 0u);
  // At most `clients` requests can ever wait.
  EXPECT_LE(rep.queue_depth.max(), 32.0);
  // Every response's latency includes its wait + service, never negative.
  EXPECT_GE(rep.latency.min(), 0.0);
}

// Serving must be a pure replay: same stream, same config -> identical
// virtual-clock trace.
TEST(Server, DeterministicReplay) {
  OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 3000;
  spec.update_fraction = 0.1;
  spec.seed = 5;

  auto run_once = [&] {
    ServerFixture f;
    const auto stream = make_open_loop(f.keys, spec);
    ServeOptions cfg;
    cfg.batch.max_batch = 128;
    cfg.batch.max_wait = 80e-6;
    cfg.epoch.max_buffered = 100;
    Server server(f.index, cfg);
    return server.run(stream);
  };

  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].id, b.responses[i].id);
    EXPECT_DOUBLE_EQ(a.responses[i].completion, b.responses[i].completion);
    EXPECT_EQ(a.responses[i].value, b.responses[i].value);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.epochs, b.epochs);
}

}  // namespace
}  // namespace harmonia::serve
