// Unit tests for the serving building blocks: bounded admission queue,
// deadline/size triggers, dispatch timing, and the epoch updater.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "queries/workload.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/epoch_updater.hpp"

namespace harmonia::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

struct ServeFixture {
  gpusim::Device dev{test_spec()};
  std::vector<Key> keys = queries::make_tree_keys(1 << 13, 1);
  HarmoniaIndex index = [&] {
    std::vector<btree::Entry> entries;
    for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
    return HarmoniaIndex::build(dev, entries, {.fanout = 16});
  }();
  TransferModel link;
};

Request point_at(std::uint64_t id, double t, Key key) {
  Request r;
  r.id = id;
  r.kind = RequestKind::kPoint;
  r.arrival = t;
  r.key = key;
  return r;
}

TEST(RequestQueue, BackpressureRejectsAtCapacity) {
  RequestQueue q(3);
  EXPECT_TRUE(q.try_push(point_at(0, 0.0, 1)));
  EXPECT_TRUE(q.try_push(point_at(1, 1.0, 2)));
  EXPECT_TRUE(q.try_push(point_at(2, 2.0, 3)));
  EXPECT_FALSE(q.try_push(point_at(3, 3.0, 4)));
  EXPECT_EQ(q.admitted(), 3u);
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.oldest_arrival(), 0.0);
  EXPECT_EQ(q.pop().id, 0u);  // FIFO
  EXPECT_TRUE(q.try_push(point_at(4, 4.0, 5)));  // capacity freed
}

TEST(BatchScheduler, DeadlineFollowsOldestRequest) {
  ServeFixture f;
  BatchConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait = 100e-6;
  cfg.queue_capacity = 64;
  BatchScheduler s(f.index, f.link, cfg);

  EXPECT_EQ(s.next_deadline(), kInf);
  ASSERT_TRUE(s.admit(point_at(0, 3e-6, f.keys[0])));
  ASSERT_TRUE(s.admit(point_at(1, 9e-6, f.keys[1])));
  EXPECT_DOUBLE_EQ(s.next_deadline(), 3e-6 + 100e-6);
  EXPECT_FALSE(s.size_ready());

  for (std::uint64_t i = 2; i < 8; ++i) {
    ASSERT_TRUE(s.admit(point_at(i, 10e-6, f.keys[i])));
  }
  EXPECT_TRUE(s.size_ready());  // reached max_batch
}

TEST(BatchScheduler, DispatchMatchesDirectSearchBitIdentical) {
  ServeFixture f;
  BatchConfig cfg;
  cfg.max_batch = 64;
  BatchScheduler s(f.index, f.link, cfg);

  const auto targets = queries::make_queries(f.keys, 64, queries::Distribution::kUniform, 9);
  for (std::uint64_t i = 0; i < targets.size(); ++i) {
    ASSERT_TRUE(s.admit(point_at(i, 1e-6 * static_cast<double>(i), targets[i])));
  }
  ASSERT_TRUE(s.size_ready());
  const auto d = s.dispatch_ready(64e-6, 0.0, 0);
  ASSERT_EQ(d.batch_size, 64u);
  ASSERT_EQ(d.responses.size(), 64u);

  f.dev.flush_caches();
  const auto direct = f.index.search(targets, cfg.pipeline.query_options);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(d.responses[i].value, direct.values[i]) << "query " << i;
    EXPECT_EQ(d.responses[i].id, i);
  }
  EXPECT_TRUE(s.empty());
}

TEST(BatchScheduler, DispatchWaitsForBusyDevice) {
  ServeFixture f;
  BatchConfig cfg;
  cfg.max_batch = 4;
  BatchScheduler s(f.index, f.link, cfg);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(s.admit(point_at(i, 0.0, f.keys[i])));
  }
  const double busy_until = 5e-3;
  const auto d = s.dispatch_ready(1e-6, busy_until, 2);
  EXPECT_DOUBLE_EQ(d.close, 1e-6);
  EXPECT_DOUBLE_EQ(d.start, busy_until);  // device was the constraint
  EXPECT_GT(d.finish, d.start);
  for (const auto& r : d.responses) {
    EXPECT_EQ(r.epoch, 2u);
    EXPECT_DOUBLE_EQ(r.dispatch, busy_until);
    EXPECT_DOUBLE_EQ(r.completion, d.finish);
    EXPECT_GE(r.queue_delay(), busy_until);
  }
}

TEST(BatchScheduler, RangeLaneMatchesHostOracle) {
  ServeFixture f;
  BatchConfig cfg;
  cfg.max_batch = 8;
  cfg.max_range_results = 16;
  BatchScheduler s(f.index, f.link, cfg);

  std::vector<std::pair<Key, Key>> ranges;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::size_t at = i * 700;
    Request r;
    r.id = i;
    r.kind = RequestKind::kRange;
    r.arrival = 1e-6 * static_cast<double>(i);
    r.key = f.keys[at];
    r.hi = f.keys[at + 10];
    ranges.emplace_back(r.key, r.hi);
    ASSERT_TRUE(s.admit(r));
  }
  ASSERT_TRUE(s.size_ready());
  const auto d = s.dispatch_ready(1e-5, 0.0, 0);
  ASSERT_EQ(d.responses.size(), 8u);
  EXPECT_EQ(d.kind, RequestKind::kRange);
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const auto want = f.index.range_host(ranges[i].first, ranges[i].second, 16);
    ASSERT_EQ(d.responses[i].range_values.size(), want.size()) << "range " << i;
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(d.responses[i].range_values[j], want[j].value);
    }
  }
}

TEST(BatchScheduler, ScanLaneMatchesHostOracle) {
  ServeFixture f;
  BatchConfig cfg;
  cfg.max_batch = 8;
  cfg.max_range_results = 24;
  BatchScheduler s(f.index, f.link, cfg);

  // Mixed caps, including 0 (clamps up to 1) and 500 (clamps down to the
  // max_range_results budget); lo alternates exact keys and gaps.
  const std::uint32_t asked[] = {0, 1, 5, 24, 500, 16, 3, 100};
  std::vector<Key> los;
  for (std::uint64_t i = 0; i < 8; ++i) {
    Request r;
    r.id = i;
    r.kind = RequestKind::kScan;
    r.arrival = 1e-6 * static_cast<double>(i);
    r.key = f.keys[i * 900] + (i % 2);
    r.scan_n = asked[i];
    los.push_back(r.key);
    ASSERT_TRUE(s.admit(r));
  }
  ASSERT_TRUE(s.size_ready());
  const auto d = s.dispatch_ready(1e-5, 0.0, 0);
  ASSERT_EQ(d.responses.size(), 8u);
  EXPECT_EQ(d.kind, RequestKind::kScan);
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t limit =
        std::min<std::size_t>(std::max<std::uint32_t>(asked[i], 1),
                              cfg.max_range_results);
    const auto want = f.index.scan_host(los[i], limit);
    ASSERT_EQ(d.responses[i].range_values.size(), want.size()) << "scan " << i;
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(d.responses[i].range_values[j], want[j].value);
    }
  }
}

TEST(EpochUpdater, AppliesBufferAndChargesResync) {
  ServeFixture f;
  EpochConfig cfg;
  cfg.max_buffered = 4;
  cfg.seconds_per_op = 1e-6;
  EpochUpdater u(f.index, f.link, cfg);

  EXPECT_EQ(u.next_deadline(), kInf);  // size-only by default
  for (std::uint64_t i = 0; i < 4; ++i) {
    Request r;
    r.id = 100 + i;
    r.kind = RequestKind::kUpdate;
    r.arrival = 1e-6 * static_cast<double>(i);
    r.op = queries::OpKind::kUpdate;
    r.key = f.keys[i];
    r.value = 7000 + i;
    u.buffer(r);
  }
  EXPECT_TRUE(u.size_ready());

  const auto e = u.apply(10e-6, 2e-6);
  EXPECT_EQ(e.epoch, 1u);
  EXPECT_EQ(u.epochs(), 1u);
  EXPECT_EQ(u.buffered(), 0u);
  EXPECT_EQ(e.stats.total_ops(), 4u);
  EXPECT_DOUBLE_EQ(e.start, 10e-6);  // device was free earlier
  EXPECT_DOUBLE_EQ(e.apply_seconds, 4e-6);
  EXPECT_DOUBLE_EQ(e.resync_seconds, image_resync_seconds(f.index.tree(), f.link));
  EXPECT_GT(e.resync_seconds, 0.0);
  EXPECT_DOUBLE_EQ(e.finish, e.start + e.apply_seconds + e.resync_seconds);

  // The updates are visible to subsequent searches.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(f.index.search_host(f.keys[i]).value_or(kNotFound), 7000 + i);
  }
  for (const auto& resp : e.responses) {
    EXPECT_EQ(resp.epoch, 1u);
    EXPECT_DOUBLE_EQ(resp.completion, e.finish);
  }
}

}  // namespace
}  // namespace harmonia::serve
