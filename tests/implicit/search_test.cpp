#include "implicit/search.hpp"

#include <gtest/gtest.h>

#include "queries/workload.hpp"

namespace harmonia::implicit {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

std::vector<btree::Entry> entries_for(const std::vector<Key>& keys) {
  std::vector<btree::Entry> out;
  for (Key k : keys) out.push_back({k, btree::value_for_key(k)});
  return out;
}

struct ImplicitFixture {
  gpusim::Device dev{test_spec()};
  std::vector<Key> keys = queries::make_tree_keys(2500, 1);
  ImplicitTree tree = ImplicitTree::build(entries_for(keys), 16);
  ImplicitDeviceImage img = ImplicitDeviceImage::upload(dev, tree);

  std::vector<Value> run(std::span<const Key> qs, unsigned gs = 0,
                         ImplicitSearchStats* stats_out = nullptr) {
    auto d_q = dev.memory().malloc<Key>(qs.size());
    dev.memory().copy_to_device(d_q, qs);
    auto d_out = dev.memory().malloc<Value>(qs.size());
    const auto stats = implicit_search_batch(dev, img, d_q, qs.size(), d_out, gs);
    if (stats_out != nullptr) *stats_out = stats;
    std::vector<Value> out(qs.size());
    dev.memory().copy_to_host(std::span<Value>(out), d_out);
    return out;
  }
};

TEST(ImplicitSearch, HitsMatchHost) {
  ImplicitFixture f;
  const auto qs = queries::make_queries(f.keys, 600, queries::Distribution::kUniform, 2);
  const auto out = f.run(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(out[i], f.tree.search(qs[i]).value());
  }
}

TEST(ImplicitSearch, MissesReturnSentinel) {
  ImplicitFixture f;
  const auto missing = queries::make_missing_keys(f.keys, 150, 3);
  for (Value v : f.run(missing)) ASSERT_EQ(v, kNotFound);
}

TEST(ImplicitSearch, GroupSizeSweepAgrees) {
  ImplicitFixture f;
  const auto qs = queries::make_queries(f.keys, 256, queries::Distribution::kUniform, 4);
  const auto baseline = f.run(qs);
  for (unsigned gs : {1u, 2u, 4u, 8u, 16u, 32u}) {
    ASSERT_EQ(f.run(qs, gs), baseline) << "group size " << gs;
  }
}

TEST(ImplicitSearch, NoChildLoadsIssued) {
  // Implicit traversal's advantage: per-level memory traffic is the key
  // chunk only — the child is pure arithmetic. Loads per warp must be
  // below the Harmonia kernel's (which adds a prefix-sum load per level).
  ImplicitFixture f;
  const auto qs = queries::make_queries(f.keys, 512, queries::Distribution::kUniform, 5);
  ImplicitSearchStats stats;
  f.run(qs, 0, &stats);
  // query load + <= chunks per level key loads + value + store:
  // height * chunks + 3 is a hard upper bound per warp.
  const std::uint64_t chunks = (f.tree.keys_per_node() + 31) / 32;
  EXPECT_LE(stats.metrics.loads, stats.warps * (f.tree.height() * chunks + 3));
}

TEST(ImplicitSearch, OddBatchSizes) {
  ImplicitFixture f;
  for (std::uint64_t n : {1u, 33u, 100u}) {
    const auto qs = queries::make_queries(f.keys, n, queries::Distribution::kUniform, n);
    const auto out = f.run(qs);
    for (std::size_t i = 0; i < qs.size(); ++i) {
      ASSERT_EQ(out[i], f.tree.search(qs[i]).value());
    }
  }
}

TEST(ImplicitSearch, KeysFoundAtEveryLevel) {
  // Internal-node hits terminate early: pick the root's keys explicitly.
  ImplicitFixture f;
  const auto root_keys = f.tree.node_keys(0);
  std::vector<Key> qs(root_keys.begin(), root_keys.end());
  const auto out = f.run(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(out[i], f.tree.search(qs[i]).value());
    ASSERT_NE(out[i], kNotFound);
  }
}

}  // namespace
}  // namespace harmonia::implicit
