#include "implicit/implicit_tree.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "queries/workload.hpp"

namespace harmonia::implicit {
namespace {

std::vector<btree::Entry> entries_for(const std::vector<Key>& keys) {
  std::vector<btree::Entry> out;
  for (Key k : keys) out.push_back({k, btree::value_for_key(k)});
  return out;
}

TEST(ImplicitTree, BuildAndSearchAllKeys) {
  const auto keys = queries::make_tree_keys(3000, 1);
  const auto tree = ImplicitTree::build(entries_for(keys), 16);
  tree.validate();
  EXPECT_EQ(tree.num_keys(), keys.size());
  for (Key k : keys) {
    ASSERT_EQ(tree.search(k).value(), btree::value_for_key(k));
  }
}

TEST(ImplicitTree, MissesReturnNothing) {
  const auto keys = queries::make_tree_keys(1000, 2);
  const auto tree = ImplicitTree::build(entries_for(keys), 8);
  for (Key k : queries::make_missing_keys(keys, 300, 3)) {
    ASSERT_FALSE(tree.search(k).has_value());
  }
  EXPECT_FALSE(tree.search(kPadKey).has_value());
}

TEST(ImplicitTree, NoChildStorageAtAll) {
  // The organization's defining property: memory = keys + values, nothing
  // else. A 1000-key fanout-64 tree stores exactly num_nodes*(63) slots.
  const auto keys = queries::make_tree_keys(1000, 4);
  const auto tree = ImplicitTree::build(entries_for(keys), 64);
  EXPECT_EQ(tree.keys().size(), static_cast<std::size_t>(tree.num_nodes()) * 63);
  EXPECT_EQ(tree.num_nodes(), (1000 + 62) / 63);
}

TEST(ImplicitTree, ChildIndexArithmetic) {
  const auto keys = queries::make_tree_keys(500, 5);
  const auto tree = ImplicitTree::build(entries_for(keys), 8);
  EXPECT_EQ(tree.child(0, 0), 1u);
  EXPECT_EQ(tree.child(0, 7), 8u);
  EXPECT_EQ(tree.child(3, 2), 3u * 8 + 3);
}

TEST(ImplicitTree, SingleNodeTree) {
  const auto keys = queries::make_tree_keys(5, 6);
  const auto tree = ImplicitTree::build(entries_for(keys), 8);
  tree.validate();
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  for (Key k : keys) EXPECT_TRUE(tree.search(k).has_value());
}

TEST(ImplicitTree, HeightIsLogarithmic) {
  const auto keys = queries::make_tree_keys(1 << 15, 7);
  const auto tree = ImplicitTree::build(entries_for(keys), 64);
  EXPECT_LE(tree.height(), 3u);  // 63 + 63*64 + 63*64^2 >> 2^15
}

TEST(ImplicitTree, RangeMatchesSortedOrder) {
  const auto keys = queries::make_tree_keys(2000, 8);
  const auto tree = ImplicitTree::build(entries_for(keys), 16);
  const auto out = tree.range(keys[100], keys[200]);
  ASSERT_EQ(out.size(), 101u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key, keys[100 + i]);
    EXPECT_EQ(out[i].value, btree::value_for_key(keys[100 + i]));
  }
}

TEST(ImplicitTree, RangeWithLimitAndEmpty) {
  const auto keys = queries::make_tree_keys(1000, 9);
  const auto tree = ImplicitTree::build(entries_for(keys), 8);
  EXPECT_EQ(tree.range(0, ~std::uint64_t{0} - 1, 13).size(), 13u);
  EXPECT_TRUE(tree.range(5, 1).empty());
  const auto missing = queries::make_missing_keys(keys, 1, 10);
  EXPECT_TRUE(tree.range(missing[0], missing[0]).empty());
}

TEST(ImplicitTree, RebuildWithUpserts) {
  const auto keys = queries::make_tree_keys(1500, 11);
  auto tree = ImplicitTree::build(entries_for(keys), 16);
  const auto fresh = queries::make_missing_keys(keys, 100, 12);
  std::vector<btree::Entry> upserts;
  for (Key k : fresh) upserts.push_back({k, k * 3});
  upserts.push_back({keys[7], 777});  // overwrite an existing key

  const auto rebuilt = tree.rebuild_with(upserts, {});
  rebuilt.validate();
  EXPECT_EQ(rebuilt.num_keys(), keys.size() + fresh.size());
  for (Key k : fresh) ASSERT_EQ(rebuilt.search(k).value(), k * 3);
  EXPECT_EQ(rebuilt.search(keys[7]).value(), 777u);
  EXPECT_EQ(rebuilt.search(keys[8]), tree.search(keys[8]));
}

TEST(ImplicitTree, RebuildWithRemovals) {
  const auto keys = queries::make_tree_keys(800, 13);
  auto tree = ImplicitTree::build(entries_for(keys), 8);
  std::vector<Key> removed(keys.begin(), keys.begin() + 100);
  const auto rebuilt = tree.rebuild_with({}, removed);
  rebuilt.validate();
  EXPECT_EQ(rebuilt.num_keys(), keys.size() - 100);
  for (Key k : removed) EXPECT_FALSE(rebuilt.search(k).has_value());
  EXPECT_TRUE(rebuilt.search(keys[100]).has_value());
}

TEST(ImplicitTree, BuildRejectsBadInput) {
  EXPECT_THROW(ImplicitTree::build({}, 8), ContractViolation);
  std::vector<btree::Entry> unsorted{{5, 1}, {3, 1}};
  EXPECT_THROW(ImplicitTree::build(unsorted, 8), ContractViolation);
  std::vector<btree::Entry> reserved{{kPadKey, 1}};
  EXPECT_THROW(ImplicitTree::build(reserved, 8), ContractViolation);
}

class ImplicitFanoutSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ImplicitFanoutSweep, DifferentialAgainstBTree) {
  const unsigned fanout = GetParam();
  const auto keys = queries::make_tree_keys(1700, fanout);
  const auto bt = btree::make_tree(keys, fanout);
  const auto tree = ImplicitTree::build(entries_for(keys), fanout);
  tree.validate();
  Xoshiro256 rng(fanout);
  for (int i = 0; i < 400; ++i) {
    const Key k = rng.next();
    ASSERT_EQ(tree.search(k), bt.search(k)) << "key " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, ImplicitFanoutSweep,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u, 128u));

}  // namespace
}  // namespace harmonia::implicit
