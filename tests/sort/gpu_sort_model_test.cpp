#include "sort/gpu_sort_model.hpp"

#include <gtest/gtest.h>

namespace harmonia::sort {
namespace {

TEST(PsaBits, PaperExample) {
  // §4.1.2: B=64, T=2^23, 128 B line holding K=16 keys -> N = 19.
  EXPECT_EQ(psa_bits(64, 1ULL << 23, 16), 19u);
}

TEST(PsaBits, ScalesWithTreeSize) {
  EXPECT_EQ(psa_bits(64, 1ULL << 24, 16), 20u);
  EXPECT_EQ(psa_bits(64, 1ULL << 25, 16), 21u);
  EXPECT_EQ(psa_bits(64, 1ULL << 26, 16), 22u);
}

TEST(PsaBits, TinyTreeNeedsNoSort) {
  EXPECT_EQ(psa_bits(64, 8, 16), 0u);   // line covers the whole range
  EXPECT_EQ(psa_bits(64, 16, 16), 0u);  // exactly one line of keys
}

TEST(PsaBits, ClampsToKeyBits) {
  EXPECT_LE(psa_bits(16, 1ULL << 40, 1), 16u);
}

TEST(GpuSortModel, ZeroWorkIsFree) {
  const auto spec = gpusim::titan_v();
  EXPECT_DOUBLE_EQ(gpu_radix_sort_cycles(spec, 0, 19), 0.0);
  EXPECT_DOUBLE_EQ(gpu_radix_sort_cycles(spec, 1000, 0), 0.0);
}

TEST(GpuSortModel, CostProportionalToBits) {
  // §4.1.2: "the execution time is proportional to the sorted bits".
  const auto spec = gpusim::titan_v();
  const std::uint64_t n = 1 << 20;
  const double c8 = gpu_radix_sort_cycles(spec, n, 8);
  const double c16 = gpu_radix_sort_cycles(spec, n, 16);
  const double c64 = gpu_radix_sort_cycles(spec, n, 64);
  EXPECT_NEAR(c16 / c8, 2.0, 0.01);
  EXPECT_NEAR(c64 / c8, 8.0, 0.01);
}

TEST(GpuSortModel, PartialSortCheaperFraction) {
  // The paper reports the 19-bit sort at ~35% of the full 64-bit sort.
  const auto spec = gpusim::titan_v();
  const std::uint64_t n = 1 << 22;
  const double partial = gpu_radix_sort_cycles(spec, n, 19);
  const double full = gpu_radix_sort_cycles(spec, n, 64);
  EXPECT_NEAR(partial / full, 3.0 / 8.0, 0.02);  // 3 of 8 digit passes
}

TEST(GpuSortModel, CostScalesWithN) {
  const auto spec = gpusim::titan_v();
  const double c1 = gpu_radix_sort_cycles(spec, 1 << 20, 64);
  const double c2 = gpu_radix_sort_cycles(spec, 1 << 21, 64);
  EXPECT_GT(c2, c1 * 1.8);
  EXPECT_LT(c2, c1 * 2.2);
}

TEST(GpuSortModel, PayloadCostsMore) {
  const auto spec = gpusim::titan_v();
  EXPECT_GT(gpu_radix_sort_cycles(spec, 1 << 20, 64, true),
            gpu_radix_sort_cycles(spec, 1 << 20, 64, false));
}

TEST(GpuSortModel, SecondsConsistentWithClock) {
  const auto spec = gpusim::titan_v();
  const double cycles = gpu_radix_sort_cycles(spec, 1 << 20, 32);
  EXPECT_NEAR(gpu_radix_sort_seconds(spec, 1 << 20, 32),
              cycles / (spec.clock_ghz * 1e9), 1e-15);
}

}  // namespace
}  // namespace harmonia::sort
