// Algebraic properties of the bit-window radix sort PSA relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "sort/radix_sort.hpp"

namespace harmonia::sort {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  return keys;
}

class RadixProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RadixProperties, PreservesMultiset) {
  auto keys = random_keys(4000, GetParam());
  std::map<std::uint64_t, int> before;
  for (auto k : keys) ++before[k];
  radix_sort_bits(keys, 40, 24);
  std::map<std::uint64_t, int> after;
  for (auto k : keys) ++after[k];
  EXPECT_EQ(before, after);
}

TEST_P(RadixProperties, Idempotent) {
  auto keys = random_keys(2000, GetParam() + 30);
  radix_sort_bits(keys, 48, 16);
  const auto once = keys;
  radix_sort_bits(keys, 48, 16);
  EXPECT_EQ(keys, once);
}

TEST_P(RadixProperties, WindowCompositionEqualsFullSort) {
  // LSD stability: sorting the low window then the high window is the
  // full sort — the fact that lets PSA sort *only* the top N bits and
  // still compose with any pre-existing low-bit order.
  auto a = random_keys(3000, GetParam() + 60);
  auto b = a;
  radix_sort_bits(a, 0, 32);
  radix_sort_bits(a, 32, 32);
  radix_sort(b);
  EXPECT_EQ(a, b);
}

TEST_P(RadixProperties, AgreesWithStableSortOnWindow) {
  auto keys = random_keys(1500, GetParam() + 90);
  auto expect = keys;
  const unsigned lo = 13, width = 21;
  const std::uint64_t mask = ((1ULL << width) - 1) << lo;
  std::stable_sort(expect.begin(), expect.end(),
                   [&](std::uint64_t x, std::uint64_t y) {
                     return (x & mask) < (y & mask);
                   });
  radix_sort_bits(keys, lo, width);
  EXPECT_EQ(keys, expect);
}

TEST_P(RadixProperties, PairsPermutationIsConsistent) {
  auto keys = random_keys(2000, GetParam() + 120);
  const auto original = keys;
  std::vector<std::uint64_t> perm(keys.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  radix_sort_pairs_bits(keys, perm, 45, 19);
  // The payload is exactly the permutation that produced the key order.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(keys[i], original[perm[i]]);
  }
  // And it is a bijection.
  std::vector<bool> seen(perm.size(), false);
  for (auto p : perm) {
    ASSERT_LT(p, perm.size());
    ASSERT_FALSE(seen[p]);
    seen[p] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadixProperties, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace harmonia::sort
