#include "sort/radix_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace harmonia::sort {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  return keys;
}

TEST(RadixSort, FullSortMatchesStdSort) {
  auto keys = random_keys(10000, 1);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  radix_sort(keys);
  EXPECT_EQ(keys, expected);
}

TEST(RadixSort, EmptyAndSingleton) {
  std::vector<std::uint64_t> empty;
  radix_sort(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<std::uint64_t> one{42};
  radix_sort(one);
  EXPECT_EQ(one[0], 42u);
}

TEST(RadixSort, AlreadySorted) {
  std::vector<std::uint64_t> keys(1000);
  std::iota(keys.begin(), keys.end(), 0);
  auto expected = keys;
  radix_sort(keys);
  EXPECT_EQ(keys, expected);
}

TEST(RadixSort, AllEqual) {
  std::vector<std::uint64_t> keys(100, 7);
  radix_sort(keys);
  EXPECT_TRUE(std::all_of(keys.begin(), keys.end(), [](auto k) { return k == 7; }));
}

TEST(RadixSortBits, ZeroBitsIsNoOp) {
  auto keys = random_keys(100, 2);
  auto original = keys;
  radix_sort_bits(keys, 32, 0);
  EXPECT_EQ(keys, original);
}

TEST(RadixSortBits, TopBitsOrderIsGroupwise) {
  // Sorting only the top 8 bits: the 8-bit prefixes must ascend, while
  // ties keep arrival order (stability).
  auto keys = random_keys(5000, 3);
  radix_sort_bits(keys, 56, 8);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LE(keys[i - 1] >> 56, keys[i] >> 56);
  }
}

TEST(RadixSortBits, StabilityOnTies) {
  // Keys share the top byte; low bits encode arrival order.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 100; ++i) keys.push_back((0xAAULL << 56) | i);
  std::vector<std::uint64_t> shuffled = keys;  // in order already
  radix_sort_bits(shuffled, 56, 8);
  EXPECT_EQ(shuffled, keys);  // stable: untouched within the tie group
}

TEST(RadixSortBits, MidWindowSort) {
  auto keys = random_keys(3000, 4);
  radix_sort_bits(keys, 16, 16);  // bits [16, 32)
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LE((keys[i - 1] >> 16) & 0xFFFF, (keys[i] >> 16) & 0xFFFF);
  }
}

TEST(RadixSortBits, NonMultipleOfEightBits) {
  auto keys = random_keys(3000, 5);
  radix_sort_bits(keys, 45, 19);  // Equation 2's N=19 case
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LE(keys[i - 1] >> 45, keys[i] >> 45);
  }
}

TEST(RadixSortBits, WindowOverflowThrows) {
  std::vector<std::uint64_t> keys{1, 2};
  EXPECT_THROW(radix_sort_bits(keys, 60, 8), ContractViolation);
}

TEST(RadixSortPairs, PayloadFollowsKeys) {
  auto keys = random_keys(2000, 6);
  std::vector<std::uint64_t> payload(keys.size());
  std::iota(payload.begin(), payload.end(), 0);
  auto original = keys;
  radix_sort_pairs_bits(keys, payload, 0, 64);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], original[payload[i]]);
  }
}

TEST(RadixSortPairs, MismatchedPayloadThrows) {
  std::vector<std::uint64_t> keys{1, 2, 3};
  std::vector<std::uint64_t> payload{1};
  EXPECT_THROW(radix_sort_pairs_bits(keys, payload, 0, 8), ContractViolation);
}

TEST(RadixPasses, CeilDivision) {
  EXPECT_EQ(radix_passes(0), 0u);
  EXPECT_EQ(radix_passes(1), 1u);
  EXPECT_EQ(radix_passes(8), 1u);
  EXPECT_EQ(radix_passes(9), 2u);
  EXPECT_EQ(radix_passes(19), 3u);
  EXPECT_EQ(radix_passes(64), 8u);
}

}  // namespace
}  // namespace harmonia::sort
