// Property tests for ShardPlan: partitions are disjoint, cover the full
// key domain, every key routes to exactly one shard, and sample-balanced
// (re)planning preserves coverage while bounding shard-size skew.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "queries/workload.hpp"
#include "shard/plan.hpp"

namespace harmonia::shard {
namespace {

constexpr Key kKeyMax = std::numeric_limits<Key>::max();

/// Exhaustive routing oracle: the number of shard ranges containing `key`.
unsigned shards_containing(const ShardPlan& plan, Key key) {
  unsigned n = 0;
  for (unsigned s = 0; s < plan.num_shards(); ++s) {
    if (plan.lo(s) <= key && key <= plan.hi(s)) ++n;
  }
  return n;
}

std::vector<Key> probe_keys(const ShardPlan& plan, std::uint64_t seed) {
  std::vector<Key> probes{0, 1, kKeyMax - 1, kKeyMax};
  for (unsigned s = 0; s < plan.num_shards(); ++s) {
    const Key lo = plan.lo(s), hi = plan.hi(s);
    probes.push_back(lo);
    probes.push_back(hi);
    if (lo > 0) probes.push_back(lo - 1);
    if (hi < kKeyMax) probes.push_back(hi + 1);
    probes.push_back(lo + (hi - lo) / 2);
  }
  Xoshiro256 rng(seed);
  for (int i = 0; i < 256; ++i) probes.push_back(rng.next());
  return probes;
}

void check_partition_invariants(const ShardPlan& plan, std::uint64_t seed) {
  ASSERT_NO_THROW(plan.validate());
  // Coverage at the edges and contiguity between neighbours: ranges are
  // disjoint and jointly cover [0, 2^64-1].
  EXPECT_EQ(plan.lo(0), 0u);
  EXPECT_EQ(plan.hi(plan.num_shards() - 1), kKeyMax);
  for (unsigned s = 0; s + 1 < plan.num_shards(); ++s) {
    ASSERT_LE(plan.lo(s), plan.hi(s));
    EXPECT_EQ(plan.hi(s) + 1, plan.lo(s + 1));
  }
  // Every key routes to exactly one shard, and shard_of agrees with the
  // interval scan.
  for (Key key : probe_keys(plan, seed)) {
    ASSERT_EQ(shards_containing(plan, key), 1u) << "key " << key;
    const unsigned s = plan.shard_of(key);
    ASSERT_LT(s, plan.num_shards());
    EXPECT_GE(key, plan.lo(s));
    EXPECT_LE(key, plan.hi(s));
  }
}

TEST(ShardPlan, EqualWidthPartitionInvariants) {
  for (unsigned n : {1u, 2u, 3u, 4u, 7u, 8u, 13u, 64u}) {
    SCOPED_TRACE(n);
    check_partition_invariants(ShardPlan::equal_width(n), n);
  }
}

TEST(ShardPlan, EqualWidthSlicesAreEven) {
  const auto plan = ShardPlan::equal_width(8);
  const Key width0 = plan.hi(0) - plan.lo(0);
  for (unsigned s = 0; s + 1 < 8; ++s) {
    EXPECT_EQ(plan.hi(s) - plan.lo(s), width0);
  }
}

TEST(ShardPlan, SampleBalancedPartitionInvariants) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto keys = queries::make_tree_keys(1 << 12, seed);
    for (unsigned n : {1u, 2u, 4u, 5u, 8u}) {
      SCOPED_TRACE(testing::Message() << "seed " << seed << " shards " << n);
      check_partition_invariants(ShardPlan::sample_balanced(keys, n), seed);
    }
  }
}

TEST(ShardPlan, SampleBalancedBoundsSkew) {
  // Quantile cuts put n/N +- 1 sample keys in every shard; allow a
  // generous 10% + 2 slack so the property, not the RNG, is what's pinned.
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    const auto keys = queries::make_tree_keys(1 << 12, seed);
    for (unsigned n : {2u, 4u, 8u}) {
      const auto plan = ShardPlan::sample_balanced(keys, n);
      std::vector<std::uint64_t> count(n, 0);
      for (Key k : keys) ++count[plan.shard_of(k)];
      const auto [mn, mx] = std::minmax_element(count.begin(), count.end());
      const double ideal = static_cast<double>(keys.size()) / n;
      EXPECT_LE(*mx - *mn, ideal * 0.1 + 2.0)
          << "seed " << seed << " shards " << n << ": min " << *mn << " max "
          << *mx;
    }
  }
}

TEST(ShardPlan, SampleBalancedBeatsEqualWidthOnSkewedKeys) {
  // All keys crammed into the bottom 1/256 of the domain: equal-width
  // piles everything into shard 0; balanced replanning spreads it.
  std::vector<Key> keys;
  Xoshiro256 rng(7);
  for (int i = 0; i < 4096; ++i) keys.push_back(rng.next() >> 8);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  const auto width = ShardPlan::equal_width(4);
  const auto balanced = ShardPlan::sample_balanced(keys, 4);
  auto skew = [&](const ShardPlan& plan) {
    std::vector<std::uint64_t> count(plan.num_shards(), 0);
    for (Key k : keys) ++count[plan.shard_of(k)];
    const auto [mn, mx] = std::minmax_element(count.begin(), count.end());
    return *mx - *mn;
  };
  EXPECT_EQ(skew(width), keys.size());  // everything lands in one slice
  EXPECT_LE(skew(balanced), keys.size() / 10);
  check_partition_invariants(balanced, 7);
}

TEST(ShardPlan, ReplanningPreservesCoverage) {
  // Simulate growth: plan, mutate the key population, replan. Both plans
  // must stay full partitions, and every surviving key must route into a
  // shard whose range contains it (trivially true for a valid partition,
  // pinned here as the replan contract).
  auto keys = queries::make_tree_keys(2048, 3);
  const auto before = ShardPlan::sample_balanced(keys, 6);
  check_partition_invariants(before, 3);

  keys.erase(keys.begin(), keys.begin() + 700);  // drop the low range
  Xoshiro256 rng(11);
  for (int i = 0; i < 500; ++i) keys.push_back(rng.next());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  const auto after = ShardPlan::sample_balanced(keys, 6);
  check_partition_invariants(after, 4);
  std::vector<std::uint64_t> count(after.num_shards(), 0);
  for (Key k : keys) ++count[after.shard_of(k)];
  const auto [mn, mx] = std::minmax_element(count.begin(), count.end());
  EXPECT_LE(*mx - *mn, static_cast<double>(keys.size()) / 6 * 0.1 + 2.0);
}

TEST(ShardPlan, DegenerateSamplesStillPartition) {
  // Too few / heavily duplicated samples: quantile cuts collide and must
  // be nudged apart, never dropped.
  const std::vector<Key> tiny{5};
  check_partition_invariants(ShardPlan::sample_balanced(tiny, 4), 1);

  const std::vector<Key> dup(100, 42);
  const auto plan = ShardPlan::sample_balanced(dup, 8);
  check_partition_invariants(plan, 2);
  EXPECT_EQ(plan.num_shards(), 8u);

  check_partition_invariants(ShardPlan::sample_balanced({}, 3), 5);
}

TEST(ShardPlan, DuplicatedSamplesRebalanceInsteadOfCascading) {
  // Regression: a heavy duplicate run used to collide every later
  // quantile cut, and the +1-per-collision bump cascaded into width-1
  // shards ([8,8], [9,9], ...) owning ranges with no sample keys at all.
  // The rebalanced planner must split the residual samples evenly.
  std::vector<Key> keys(900, 7);  // 90% of the sample is one key
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) keys.push_back(1000 + (rng.next() >> 16));
  std::sort(keys.begin(), keys.end());

  const auto plan = ShardPlan::sample_balanced(keys, 8);
  check_partition_invariants(plan, 6);
  std::vector<std::uint64_t> count(plan.num_shards(), 0);
  for (Key k : keys) ++count[plan.shard_of(k)];
  // The first quantile cut lands on the duplicate itself, so one shard
  // owns the whole run; every shard after it must own a fair share of
  // the 100 residual samples — in particular, none may be empty.
  const unsigned dup_shard = plan.shard_of(7);
  for (unsigned s = dup_shard + 1; s < plan.num_shards(); ++s) {
    EXPECT_GE(count[s], 5u) << "shard " << s << " starved of sample keys";
    EXPECT_LE(count[s], 30u) << "shard " << s << " over-packed";
  }

  // All-duplicates: the residual key space is split evenly, not packed
  // into width-1 slices right above the duplicate.
  const std::vector<Key> dup(64, 42);
  const auto plan2 = ShardPlan::sample_balanced(dup, 4);
  check_partition_invariants(plan2, 9);
  for (unsigned s = 2; s < plan2.num_shards(); ++s) {
    EXPECT_GT(plan2.hi(s) - plan2.lo(s), kKeyMax / 16)
        << "shard " << s << " squeezed into a near-empty slice";
  }
}

TEST(ShardPlan, FromBoundsRejectsNonPartitions) {
  EXPECT_THROW(ShardPlan::from_bounds({}), ContractViolation);
  EXPECT_THROW(ShardPlan::from_bounds({1, 10}), ContractViolation);  // gap at 0
  EXPECT_THROW(ShardPlan::from_bounds({0, 10, 10}),
               ContractViolation);  // overlap
  EXPECT_THROW(ShardPlan::from_bounds({0, 10, 5}),
               ContractViolation);  // disorder
  EXPECT_NO_THROW(ShardPlan::from_bounds({0, 10, 20}));
}

}  // namespace
}  // namespace harmonia::shard
