// System tests of the staggered per-shard swap path (overlap epoch mode
// on the sharded backend, docs/sharding.md): shards commit a staged
// epoch one at a time, so straddling range queries must be fenced or
// parked across the mixed-version window — every reassembled answer
// must still match one whole-epoch snapshot, never a mix of two. Also
// pins: per-response epochs monotone in completion order, the fence
// under a high swap frequency (the TSan stress), the pre-swap CRC32
// audit catching staged-image corruption without ever serving it, and
// the whole path running polymorphically through serve::Backend.
//
// Epoch membership comes from the update responses (an inflight epoch
// lets the buffer outgrow max_buffered, so fixed-size blocks would
// reconstruct the wrong snapshots — see tests/serve/epoch_pipeline_test.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/expect.hpp"
#include "queries/workload.hpp"
#include "serve/workload.hpp"
#include "shard/sharded_server.hpp"

namespace harmonia::shard {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

ShardedOptions test_options(unsigned fanout) {
  ShardedOptions options;
  options.index.fanout = fanout;
  options.device = test_spec();
  options.device_global_bytes = 256 << 20;
  return options;
}

struct ShardedFixture {
  explicit ShardedFixture(unsigned shards, std::uint64_t tree_keys = 1 << 12,
                          unsigned fanout = 16)
      : keys(queries::make_tree_keys(tree_keys, 1)),
        index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          return ShardedIndex(entries, ShardPlan::sample_balanced(keys, shards),
                              test_options(fanout));
        }()) {}

  std::vector<Key> keys;
  ShardedIndex index;
};

/// Mirrors BatchUpdater semantics on a std::map (as in server_test.cpp).
void apply_to_oracle(std::map<Key, Value>& oracle, const serve::Request& r) {
  switch (r.op) {
    case queries::OpKind::kUpdate:
      if (auto it = oracle.find(r.key); it != oracle.end()) it->second = r.value;
      break;
    case queries::OpKind::kInsert:
      oracle[r.key] = r.value;
      break;
    case queries::OpKind::kDelete:
      oracle.erase(r.key);
      break;
  }
}

/// Rebuilds the snapshots an overlap run served from: group the stream's
/// updates by the epoch ordinal their response reports, apply groups in
/// epoch order (arrival order within a group).
std::vector<std::map<Key, Value>> snapshots_from_responses(
    const std::vector<Key>& keys, const std::vector<serve::Request>& stream,
    const serve::ServerReport& rep) {
  std::vector<unsigned> epoch_of(stream.size(), 0);
  for (const serve::Response& resp : rep.responses) {
    if (resp.kind == serve::RequestKind::kUpdate) epoch_of[resp.id] = resp.epoch;
  }
  std::vector<std::map<Key, Value>> snapshots;
  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  snapshots.push_back(oracle);
  for (unsigned e = 1; e <= rep.epochs; ++e) {
    for (const serve::Request& r : stream) {
      if (r.kind == serve::RequestKind::kUpdate && epoch_of[r.id] == e)
        apply_to_oracle(oracle, r);
    }
    snapshots.push_back(oracle);
  }
  return snapshots;
}

/// Epoch versions must be monotone per shard in completion order: once
/// a shard serves epoch N, no strictly-later completion from that shard
/// may report < N. (Global monotonicity cannot hold under staggered
/// swaps — shard A legitimately serves N+1 while shard B still serves
/// N; that window is exactly what the version fence + parking protect.)
/// Straddlers are skipped here: their cross-shard consistency is pinned
/// by the merge's same-epoch assertion and the snapshot oracles.
void check_epochs_monotonic_per_shard(
    const ShardPlan& plan, const std::vector<serve::Request>& stream,
    const serve::ServerReport& rep, unsigned num_shards) {
  struct Item {
    double t;
    unsigned epoch;
    unsigned shard;
  };
  std::vector<Item> items;
  for (const auto& resp : rep.responses) {
    if (resp.dropped) continue;
    ASSERT_LE(resp.epoch, rep.epochs);
    const serve::Request& req = stream[resp.id];
    unsigned s = 0;
    if (resp.kind == serve::RequestKind::kPoint) {
      s = plan.shard_of(req.key);
    } else if (resp.kind == serve::RequestKind::kRange) {
      const unsigned s0 = plan.shard_of(req.key);
      if (s0 != plan.shard_of(req.hi)) continue;  // straddler
      s = s0;
    } else {
      continue;  // updates complete at the last swap, owned by no shard
    }
    items.push_back({resp.completion, resp.epoch, s});
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.t < b.t; });
  std::vector<double> last_t(num_shards, -1.0);
  std::vector<unsigned> max_epoch(num_shards, 0);
  for (const Item& it : items) {
    if (it.t > last_t[it.shard]) {
      ASSERT_GE(it.epoch, max_epoch[it.shard])
          << "shard " << it.shard << " epoch went backwards at t=" << it.t;
      last_t[it.shard] = it.t;
    }
    max_epoch[it.shard] = std::max(max_epoch[it.shard], it.epoch);
  }
}

/// Checks every response against the snapshot for the epoch it reports.
/// A straddling range reassembled across a staggered swap could only
/// match a snapshot if the fence really kept its shards on one version
/// (the merge's internal same-epoch assertion is the second tripwire).
void check_against_snapshots(
    const std::vector<serve::Request>& stream, const serve::ServerReport& rep,
    const std::vector<std::map<Key, Value>>& snapshots,
    std::size_t max_range_results) {
  for (const auto& resp : rep.responses) {
    ASSERT_LT(resp.epoch, snapshots.size());
    const auto& oracle = snapshots[resp.epoch];
    const serve::Request& req = stream[resp.id];
    switch (resp.kind) {
      case serve::RequestKind::kPoint: {
        const auto it = oracle.find(req.key);
        const Value want = it != oracle.end() ? it->second : kNotFound;
        ASSERT_EQ(resp.value, want)
            << "request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kRange: {
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && it->first <= req.hi &&
             want.size() < max_range_results;
             ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "range request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kScan: {
        std::size_t limit = req.scan_n ? req.scan_n : 1;
        if (limit > max_range_results) limit = max_range_results;
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && want.size() < limit; ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "scan request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kUpdate:
        EXPECT_GE(resp.completion, resp.arrival);
        EXPECT_GE(resp.epoch, 1u);
        break;
    }
  }
}

// Acceptance: staggered per-shard swaps with straddling ranges in
// flight — every reassembled answer matches one whole-epoch snapshot.
TEST(ShardSwap, StaggeredSwapsNeverMixSnapshots) {
  ShardedFixture f(4);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 5e6;
  spec.count = 8000;
  spec.update_fraction = 0.25;
  spec.range_fraction = 0.15;
  spec.range_span = 64;  // wide enough to straddle partition boundaries
  spec.seed = 42;
  const auto stream = serve::make_open_loop(f.keys, spec);

  serve::ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.max_wait = 100e-6;
  cfg.batch.queue_capacity = 8192;  // no drops: every request oracle-checked
  cfg.batch.max_range_results = 16;
  cfg.epoch.max_buffered = 400;
  // Single-threaded apply: the striped multi-worker apply may order two
  // same-batch ops on one key either way, which the arrival-order map
  // oracle cannot model (threads are exercised by the fence stress).
  cfg.epoch.apply_threads = 1;
  cfg.epoch.mode = serve::EpochMode::kOverlap;

  ShardedServer server(f.index, cfg);
  // Run through the unified interface: the whole test drives exactly
  // what a tool holding a serve::Backend& would.
  serve::Backend& backend = server;
  const auto rep = backend.run(stream);

  ASSERT_EQ(rep.dropped, 0u);
  ASSERT_EQ(rep.responses.size(), stream.size());
  ASSERT_GE(rep.epochs, 3u);
  EXPECT_GT(rep.split_ranges, 0u);  // straddling fan-outs really happened
  // Overlap never runs the quiesce barrier.
  EXPECT_DOUBLE_EQ(rep.barrier_wait_seconds, 0.0);

  const auto snapshots = snapshots_from_responses(f.keys, stream, rep);
  ASSERT_EQ(snapshots.size(), rep.epochs + 1);
  check_against_snapshots(stream, rep, snapshots, cfg.batch.max_range_results);

  // Every shard served work, and the final index equals the last snapshot.
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_GT(rep.shard_batches[s], 0u) << "shard " << s;
  }
  const auto& final_oracle = snapshots.back();
  EXPECT_EQ(f.index.num_keys(), final_oracle.size());
  for (const auto& [k, v] : final_oracle) {
    ASSERT_EQ(f.index.search_host(k).value_or(kNotFound), v);
  }
}

// Acceptance: epoch versions are monotone in completion order — once any
// response reports epoch N, no later completion reports < N. With
// staggered swaps this is exactly the version-fence contract: responses
// dispatched against the old image complete before the fence lets newer
// ones through.
TEST(ShardSwap, EpochVersionsMonotonicInCompletionOrder) {
  ShardedFixture f(3);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 5e6;
  spec.count = 6000;
  spec.update_fraction = 0.3;
  spec.range_fraction = 0.10;
  spec.range_span = 64;
  spec.seed = 7;
  const auto stream = serve::make_open_loop(f.keys, spec);

  serve::ServeOptions cfg;
  cfg.batch.max_batch = 128;
  cfg.batch.queue_capacity = 1 << 14;
  cfg.epoch.max_buffered = 100;
  cfg.epoch.mode = serve::EpochMode::kOverlap;

  ShardedServer server(f.index, cfg);
  const auto rep = server.run(stream);
  ASSERT_GE(rep.epochs, 5u);
  check_epochs_monotonic_per_shard(f.index.plan(), stream, rep, 3);
}

// TSan stress: a small epoch buffer, a fast link, and a free modeled
// apply drive hundreds of staggered swap windows under a heavy update +
// straddling range mix, each window fencing in-flight fan-outs and
// parking fresh straddlers, with a threaded shadow apply per shard (the
// real-thread TSan surface). Assertions stick to thread-schedule-
// independent properties — monotone epochs, fan-out and accounting
// tallies — because the striped apply may order two same-batch ops on
// one key either way; the merge's internal same-epoch assertion is
// still live on every straddler, so a fence slip aborts the run.
TEST(ShardSwap, HighFrequencySwapFenceStress) {
  ShardedFixture f(2);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 5e6;
  spec.count = 12000;
  spec.update_fraction = 0.35;
  spec.range_fraction = 0.30;
  spec.range_span = 2048;  // ~half a shard span: most ranges straddle
  spec.seed = 11;
  const auto stream = serve::make_open_loop(f.keys, spec);

  serve::ServeOptions cfg;
  cfg.batch.max_batch = 128;
  cfg.batch.max_wait = 60e-6;
  cfg.batch.queue_capacity = 1 << 15;
  cfg.batch.max_range_results = 12;
  cfg.epoch.max_buffered = 32;  // a swap window every few batches
  cfg.epoch.apply_threads = 2;
  cfg.epoch.seconds_per_op = 0.0;
  cfg.epoch.mode = serve::EpochMode::kOverlap;
  cfg.link.gigabytes_per_second = 100.0;
  cfg.link.latency_seconds = 1e-6;

  ShardedServer server(f.index, cfg);
  const auto rep = server.run(stream);

  ASSERT_EQ(rep.dropped, 0u);
  EXPECT_GE(rep.epochs, 30u);
  EXPECT_GT(rep.split_ranges, 1000u);
  check_epochs_monotonic_per_shard(f.index.plan(), stream, rep, 2);

  // Every update request was answered by some epoch, none lost across
  // the swap windows.
  std::uint64_t update_reqs = 0;
  for (const auto& r : stream)
    if (r.kind == serve::RequestKind::kUpdate) ++update_reqs;
  EXPECT_EQ(rep.update_requests, update_reqs);
  f.index.shard(0)->tree().validate();
  f.index.shard(1)->tree().validate();
}

// Corruption faults against the *staged* image: the pre-swap CRC32
// audit must catch the armed corruption, charge a re-upload, and swap
// the clean image — the live image keeps serving, answers stay correct,
// and nothing sheds.
TEST(ShardSwap, PreSwapAuditCatchesStagedCorruption) {
  ShardedFixture f(2);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 6000;
  spec.update_fraction = 0.25;
  spec.range_fraction = 0.10;
  spec.range_span = 64;
  spec.seed = 13;
  const auto stream = serve::make_open_loop(f.keys, spec);

  serve::ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.queue_capacity = 1 << 14;
  cfg.epoch.max_buffered = 200;
  cfg.epoch.mode = serve::EpochMode::kOverlap;
  for (const double at : {1e-4, 4e-4, 8e-4}) {
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kResyncCorruption;
    e.at = at;
    e.shard = at < 5e-4 ? 0u : 1u;
    e.bytes = 3;
    cfg.faults.events.push_back(e);
  }
  cfg.validate(f.index.num_shards());

  ShardedServer server(f.index, cfg);
  const auto rep = server.run(stream);

  ASSERT_EQ(rep.dropped, 0u);
  ASSERT_GE(rep.epochs, 3u);
  // Injected -> detected -> mitigated, all on the staged image.
  EXPECT_EQ(rep.faults.corruptions, 3u);
  EXPECT_GT(rep.faults.audits, 0u);
  EXPECT_EQ(rep.faults.checksum_mismatches, 3u);
  EXPECT_EQ(rep.faults.reimages, 3u);
  EXPECT_EQ(rep.shed, 0u);  // the live image never stopped serving

  // Correctness survives the corrupted uploads: the audit swapped only
  // clean images.
  const auto snapshots = snapshots_from_responses(f.keys, stream, rep);
  check_against_snapshots(stream, rep, snapshots, cfg.batch.max_range_results);
}

// Staggered swaps must replay deterministically — fences, parking, and
// threaded shadow applies included.
TEST(ShardSwap, DeterministicReplay) {
  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 4000;
  spec.update_fraction = 0.25;
  spec.range_fraction = 0.20;
  spec.range_span = 1024;
  spec.seed = 5;

  auto run_once = [&] {
    ShardedFixture f(3);
    const auto stream = serve::make_open_loop(f.keys, spec);
    serve::ServeOptions cfg;
    cfg.batch.max_batch = 128;
    cfg.batch.queue_capacity = 1 << 14;
    cfg.epoch.max_buffered = 80;
    cfg.epoch.apply_threads = 2;
    cfg.epoch.mode = serve::EpochMode::kOverlap;
    ShardedServer server(f.index, cfg);
    return server.run(stream);
  };

  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].id, b.responses[i].id);
    EXPECT_DOUBLE_EQ(a.responses[i].completion, b.responses[i].completion);
    EXPECT_EQ(a.responses[i].epoch, b.responses[i].epoch);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.split_ranges, b.split_ranges);
  EXPECT_DOUBLE_EQ(a.epoch_swap_wait_seconds, b.epoch_swap_wait_seconds);
}

}  // namespace
}  // namespace harmonia::shard
