// Hot-range splitting and live resharding: a skewed stream must trigger
// a migration that moves half the hot shard's keys to its colder
// neighbor, the plan flip must happen at a swap boundary without losing
// or corrupting a single response, and the whole thing must replay
// deterministically. Extends tests/shard/shard_server_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/expect.hpp"
#include "queries/workload.hpp"
#include "serve/workload.hpp"
#include "shard/sharded_server.hpp"

namespace harmonia::shard {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

ShardedOptions test_options(unsigned fanout) {
  ShardedOptions options;
  options.index.fanout = fanout;
  options.device = test_spec();
  options.device_global_bytes = 256 << 20;
  return options;
}

struct ShardedFixture {
  explicit ShardedFixture(unsigned shards, std::uint64_t tree_keys = 1 << 12,
                          unsigned fanout = 16)
      : keys(queries::make_tree_keys(tree_keys, 1)),
        index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          return ShardedIndex(entries, ShardPlan::sample_balanced(keys, shards),
                              test_options(fanout));
        }()) {}

  std::vector<Key> keys;
  ShardedIndex index;
};

void apply_to_oracle(std::map<Key, Value>& oracle, const serve::Request& r) {
  switch (r.op) {
    case queries::OpKind::kUpdate:
      if (auto it = oracle.find(r.key); it != oracle.end()) it->second = r.value;
      break;
    case queries::OpKind::kInsert:
      oracle[r.key] = r.value;
      break;
    case queries::OpKind::kDelete:
      oracle.erase(r.key);
      break;
  }
}

std::vector<std::map<Key, Value>> make_snapshots(
    const std::vector<Key>& keys, const std::vector<serve::Request>& stream,
    std::size_t max_buffered) {
  std::vector<std::map<Key, Value>> snapshots;
  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  snapshots.push_back(oracle);
  std::size_t buffered = 0;
  for (const serve::Request& r : stream) {
    if (r.kind != serve::RequestKind::kUpdate) continue;
    apply_to_oracle(oracle, r);
    if (++buffered == max_buffered) {
      snapshots.push_back(oracle);
      buffered = 0;
    }
  }
  if (buffered > 0) snapshots.push_back(oracle);
  return snapshots;
}

void check_answered_against_oracle(
    const serve::ServerReport& rep, const std::vector<serve::Request>& stream,
    const std::vector<std::map<Key, Value>>& snapshots,
    std::size_t max_range_results) {
  ASSERT_EQ(rep.responses.size(), stream.size());
  for (const auto& resp : rep.responses) {
    if (resp.dropped) continue;
    ASSERT_LT(resp.epoch, snapshots.size());
    const auto& oracle = snapshots[resp.epoch];
    const serve::Request& req = stream[resp.id];
    switch (resp.kind) {
      case serve::RequestKind::kPoint: {
        const auto it = oracle.find(req.key);
        const Value want = it != oracle.end() ? it->second : kNotFound;
        ASSERT_EQ(resp.value, want)
            << "request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kRange: {
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && it->first <= req.hi &&
             want.size() < max_range_results;
             ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "range request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kScan: {
        std::size_t limit = req.scan_n ? req.scan_n : 1;
        if (limit > max_range_results) limit = max_range_results;
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && want.size() < limit; ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "scan request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kUpdate:
        EXPECT_GE(resp.completion, resp.arrival);
        break;
    }
  }
}

serve::ServeOptions reshard_config() {
  serve::ServeOptions cfg;
  cfg.batch.max_batch = 128;
  cfg.batch.max_wait = 80e-6;
  cfg.batch.queue_capacity = 1 << 14;
  cfg.batch.max_range_results = 16;
  cfg.epoch.max_buffered = 400;
  cfg.reshard.split_hot = true;
  cfg.reshard.detect_every = 200e-6;
  cfg.reshard.hot_factor = 1.3;
  cfg.reshard.min_window_queries = 64;
  return cfg;
}

// A zipfian stream concentrates load on the low-key shard; detection
// must trigger a split, the plan must flip exactly once per committed
// migration, key conservation must hold across the boundary move, and
// every answered response must still match a whole-epoch snapshot.
TEST(Reshard, HotShardSplitsAndStaysOracleExact) {
  ShardedFixture f(4);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 6e6;
  spec.count = 16000;
  spec.update_fraction = 0.05;
  spec.range_fraction = 0.05;
  spec.dist = queries::Distribution::kZipfian;
  spec.seed = 17;
  const auto stream = serve::make_open_loop(f.keys, spec);

  const auto cfg = reshard_config();
  const auto snapshots = make_snapshots(f.keys, stream, cfg.epoch.max_buffered);
  const std::uint64_t keys_before = f.index.num_keys();

  ShardedServer server(f.index, cfg);
  const auto rep = server.run(stream);

  ASSERT_GE(rep.migrations, 1u);
  EXPECT_EQ(rep.plan_version, 1u + rep.migrations);
  EXPECT_GT(rep.migrated_keys, 0u);
  EXPECT_GT(rep.migration_build_seconds, 0.0);
  EXPECT_GT(rep.migration_upload_seconds, 0.0);

  // Conservation: a split moves keys between shards, never creates or
  // destroys them (modulo the stream's own inserts/deletes, which the
  // oracle check below accounts for).
  std::uint64_t keys_after = 0;
  for (unsigned s = 0; s < 4; ++s) {
    ASSERT_NE(f.index.shard(s), nullptr);
    keys_after += f.index.shard(s)->tree().num_keys();
  }
  EXPECT_EQ(keys_after, f.index.num_keys());
  (void)keys_before;  // the oracle reconciles stream-driven size drift

  EXPECT_EQ(rep.admitted + rep.dropped, rep.arrivals);
  check_answered_against_oracle(rep, stream, snapshots,
                                cfg.batch.max_range_results);

  // Post-flip routing agrees with the moved boundary: every key answers
  // identically via the sharded host path and the per-shard trees.
  for (unsigned s = 0; s < 4; ++s) {
    const auto span =
        f.index.shard(s)->tree().range(f.index.plan().lo(s), f.index.plan().hi(s));
    EXPECT_EQ(span.size(), f.index.shard(s)->tree().num_keys()) << "shard " << s;
  }
}

// max_migrations = 0 is a hard off-switch even with detection enabled.
TEST(Reshard, MaxMigrationsZeroDisablesSplits) {
  ShardedFixture f(4);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 6e6;
  spec.count = 8000;
  spec.dist = queries::Distribution::kZipfian;
  spec.seed = 17;
  const auto stream = serve::make_open_loop(f.keys, spec);

  auto cfg = reshard_config();
  cfg.reshard.max_migrations = 0;

  ShardedServer server(f.index, cfg);
  const auto rep = server.run(stream);

  EXPECT_EQ(rep.migrations, 0u);
  EXPECT_EQ(rep.plan_version, 1u);
  EXPECT_EQ(rep.migrated_keys, 0u);
}

// A uniform stream never crosses the hotness threshold: detection runs
// but no shard is 1.3x hotter than the mean, so the plan never moves.
TEST(Reshard, UniformLoadNeverTriggersASplit) {
  ShardedFixture f(4);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 6e6;
  spec.count = 8000;
  spec.seed = 19;
  const auto stream = serve::make_open_loop(f.keys, spec);

  ShardedServer server(f.index, reshard_config());
  const auto rep = server.run(stream);

  EXPECT_EQ(rep.migrations, 0u);
  EXPECT_EQ(rep.plan_version, 1u);
}

// Resharding composes with replica groups: the same skewed stream over
// K=2 groups still splits, still answers oracle-exact, and the per-
// replica batch grid still sums to the global batch count.
TEST(Reshard, SplitComposesWithReplicaGroups) {
  ShardedFixture f(4);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 6e6;
  spec.count = 16000;
  spec.update_fraction = 0.05;
  spec.dist = queries::Distribution::kZipfian;
  spec.seed = 23;
  const auto stream = serve::make_open_loop(f.keys, spec);

  auto cfg = reshard_config();
  cfg.replicas = 2;

  const auto snapshots = make_snapshots(f.keys, stream, cfg.epoch.max_buffered);
  ShardedServer server(f.index, cfg);
  const auto rep = server.run(stream);

  ASSERT_GE(rep.migrations, 1u);
  EXPECT_EQ(rep.plan_version, 1u + rep.migrations);
  std::uint64_t grid = 0;
  for (const std::uint64_t b : rep.replica_batches) grid += b;
  EXPECT_EQ(grid, rep.batches);
  check_answered_against_oracle(rep, stream, snapshots,
                                cfg.batch.max_range_results);
}

// Determinism gate: two identical skewed runs split at the same instant
// and replay to identical responses, plan versions, and makespans.
TEST(Reshard, SplitReplaysDeterministically) {
  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 6e6;
  spec.count = 12000;
  spec.update_fraction = 0.05;
  spec.dist = queries::Distribution::kZipfian;
  spec.seed = 17;

  auto run_once = [&] {
    ShardedFixture f(4);
    const auto stream = serve::make_open_loop(f.keys, spec);
    ShardedServer server(f.index, reshard_config());
    return server.run(stream);
  };

  const auto a = run_once();
  const auto b = run_once();

  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.plan_version, b.plan_version);
  EXPECT_EQ(a.migrated_keys, b.migrated_keys);
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].value, b.responses[i].value);
    EXPECT_DOUBLE_EQ(a.responses[i].completion, b.responses[i].completion);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace harmonia::shard
