// Differential fuzz of incremental (delta) epochs on the sharded
// backend: a seeded mixed stream with straddling ranges and scans runs
// against a ShardedServer in kIncremental mode whose tiny per-shard
// overlay bound forces each shard to alternate between in-place patch
// commits and fold-compaction fallbacks — independently, behind the
// shared version fence. Every response is checked against the snapshot
// for the epoch it reports (the response-derived oracle from
// shard_swap_test.cpp), so a patch that became visible before its
// shard's fence cleared, or a straddler reassembled across a
// patch/compaction boundary, fails as an oracle mismatch. The runs
// cross >= 1000 per-shard commit boundaries (epochs x shards), both
// epoch kinds must occur, and the same seed must replay byte-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/expect.hpp"
#include "queries/workload.hpp"
#include "serve/workload.hpp"
#include "shard/sharded_server.hpp"

namespace harmonia::shard {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

ShardedOptions test_options(unsigned fanout) {
  ShardedOptions options;
  options.index.fanout = fanout;
  options.device = test_spec();
  options.device_global_bytes = 256 << 20;
  return options;
}

struct ShardedFixture {
  explicit ShardedFixture(unsigned shards, std::uint64_t tree_keys = 1 << 12,
                          unsigned fanout = 16)
      : keys(queries::make_tree_keys(tree_keys, 1)),
        index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          return ShardedIndex(entries, ShardPlan::sample_balanced(keys, shards),
                              test_options(fanout));
        }()) {}

  std::vector<Key> keys;
  ShardedIndex index;
};

/// Mirrors BatchUpdater semantics on a std::map (as in server_test.cpp).
void apply_to_oracle(std::map<Key, Value>& oracle, const serve::Request& r) {
  switch (r.op) {
    case queries::OpKind::kUpdate:
      if (auto it = oracle.find(r.key); it != oracle.end()) it->second = r.value;
      break;
    case queries::OpKind::kInsert:
      oracle[r.key] = r.value;
      break;
    case queries::OpKind::kDelete:
      oracle.erase(r.key);
      break;
  }
}

/// Rebuilds the snapshots the run served from: group the stream's
/// updates by the epoch ordinal their response reports, apply groups in
/// epoch order (arrival order within a group).
std::vector<std::map<Key, Value>> snapshots_from_responses(
    const std::vector<Key>& keys, const std::vector<serve::Request>& stream,
    const serve::ServerReport& rep) {
  std::vector<unsigned> epoch_of(stream.size(), 0);
  for (const serve::Response& resp : rep.responses) {
    if (resp.kind == serve::RequestKind::kUpdate) epoch_of[resp.id] = resp.epoch;
  }
  std::vector<std::map<Key, Value>> snapshots;
  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  snapshots.push_back(oracle);
  for (unsigned e = 1; e <= rep.epochs; ++e) {
    for (const serve::Request& r : stream) {
      if (r.kind == serve::RequestKind::kUpdate && epoch_of[r.id] == e)
        apply_to_oracle(oracle, r);
    }
    snapshots.push_back(oracle);
  }
  return snapshots;
}

/// Checks every response against the snapshot for the epoch it reports.
void check_against_snapshots(
    const std::vector<serve::Request>& stream, const serve::ServerReport& rep,
    const std::vector<std::map<Key, Value>>& snapshots,
    std::size_t max_range_results) {
  for (const auto& resp : rep.responses) {
    ASSERT_LT(resp.epoch, snapshots.size());
    const auto& oracle = snapshots[resp.epoch];
    const serve::Request& req = stream[resp.id];
    switch (resp.kind) {
      case serve::RequestKind::kPoint: {
        const auto it = oracle.find(req.key);
        const Value want = it != oracle.end() ? it->second : kNotFound;
        ASSERT_EQ(resp.value, want)
            << "request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kRange: {
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && it->first <= req.hi &&
             want.size() < max_range_results;
             ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "range request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kScan: {
        std::size_t limit = req.scan_n ? req.scan_n : 1;
        if (limit > max_range_results) limit = max_range_results;
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && want.size() < limit; ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "scan request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kUpdate:
        EXPECT_GE(resp.completion, resp.arrival);
        EXPECT_GE(resp.epoch, 1u);
        break;
    }
  }
}

serve::ServeOptions delta_config(std::uint64_t max_buffered,
                                 std::size_t overlay_cap) {
  serve::ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.max_wait = 100e-6;
  cfg.batch.queue_capacity = 1 << 15;  // no drops: every request oracle-checked
  cfg.batch.max_range_results = 16;
  cfg.epoch.max_buffered = max_buffered;
  cfg.epoch.max_wait = 50e-6;
  // Single-threaded apply: the striped multi-worker apply may order two
  // same-batch ops on one key either way, which the arrival-order map
  // oracle cannot model.
  cfg.epoch.apply_threads = 1;
  cfg.epoch.mode = serve::EpochMode::kIncremental;
  cfg.epoch.overlay_capacity = overlay_cap;
  return cfg;
}

// Acceptance: >= 1000 per-shard patch/compaction/swap boundaries
// (epochs x shards) with straddling ranges and scans in flight — every
// reassembled answer matches one whole-epoch snapshot, each shard's
// overlay folds independently, and both commit paths really ran.
TEST(DeltaShardFuzz, DifferentialOracleAcrossThousandShardBoundaries) {
  ShardedFixture f(3);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 5e6;
  spec.count = 52000;
  spec.update_fraction = 0.35;
  spec.range_fraction = 0.08;
  spec.range_span = 64;  // wide enough to straddle partition boundaries
  spec.scan_fraction = 0.05;
  spec.scan_n = 12;
  spec.seed = 4242;
  const auto stream = serve::make_open_loop(f.keys, spec);

  serve::ServeOptions cfg =
      delta_config(/*max_buffered=*/12, /*overlay_cap=*/24);
  // Per-shard commits land on batch boundaries behind the fence, so
  // boundary density bounds the epoch rate: small batches, a free
  // modeled apply, and a fast link pack >= 1000 per-shard boundaries
  // into the stream (as in the swap-fence stress).
  cfg.batch.max_batch = 64;
  cfg.epoch.seconds_per_op = 0.0;
  cfg.epoch.seconds_per_patch_op = 0.0;
  cfg.link.gigabytes_per_second = 100.0;
  cfg.link.latency_seconds = 1e-6;
  ShardedServer server(f.index, cfg);
  // Run through the unified interface, exactly what a tool holding a
  // serve::Backend& would drive.
  serve::Backend& backend = server;
  const auto rep = backend.run(stream);

  ASSERT_EQ(rep.dropped, 0u);
  ASSERT_EQ(rep.responses.size(), stream.size());
  ASSERT_GE(rep.epochs * f.index.num_shards(), 1000u)
      << "the stream must cross >= 1000 per-shard commit boundaries";
  EXPECT_GT(rep.split_ranges, 0u);  // straddling fan-outs really happened
  // The tiny per-shard overlays must have forced both commit paths.
  EXPECT_GT(rep.patch_epochs, 0u);
  EXPECT_GT(rep.compaction_epochs, 0u);
  EXPECT_EQ(rep.patch_epochs + rep.compaction_epochs, rep.epochs);

  const auto snapshots = snapshots_from_responses(f.keys, stream, rep);
  ASSERT_EQ(snapshots.size(), rep.epochs + 1);
  check_against_snapshots(stream, rep, snapshots, cfg.batch.max_range_results);

  // Every shard served work; after the final drain the live index
  // equals the last snapshot (the host search consults per-shard
  // overlays, so entries still parked there are covered too), every
  // shard tree validates, and no overlay exceeds its bound.
  const auto& final_oracle = snapshots.back();
  for (unsigned s = 0; s < f.index.num_shards(); ++s) {
    EXPECT_GT(rep.shard_batches[s], 0u) << "shard " << s;
    f.index.shard(s)->tree().validate();
    EXPECT_LE(f.index.shard(s)->overlay_live_count() +
                  f.index.shard(s)->overlay_tombstone_count(),
              cfg.epoch.overlay_capacity)
        << "shard " << s;
  }
  for (const auto& [k, v] : final_oracle) {
    ASSERT_EQ(f.index.search_host(k).value_or(kNotFound), v);
  }
}

// Acceptance: sharded incremental epochs replay deterministically —
// per-shard patch-or-compact decisions, fences, and parking included.
TEST(DeltaShardFuzz, DeterministicReplay) {
  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 6000;
  spec.update_fraction = 0.3;
  spec.range_fraction = 0.15;
  spec.range_span = 1024;
  spec.seed = 17;

  auto run_once = [&] {
    ShardedFixture f(3);
    const auto stream = serve::make_open_loop(f.keys, spec);
    const serve::ServeOptions cfg =
        delta_config(/*max_buffered=*/64, /*overlay_cap=*/32);
    ShardedServer server(f.index, cfg);
    return server.run(stream);
  };

  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].id, b.responses[i].id);
    EXPECT_DOUBLE_EQ(a.responses[i].completion, b.responses[i].completion);
    EXPECT_EQ(a.responses[i].epoch, b.responses[i].epoch);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.patch_epochs, b.patch_epochs);
  EXPECT_EQ(a.compaction_epochs, b.compaction_epochs);
  EXPECT_DOUBLE_EQ(a.epoch_patch_upload_seconds, b.epoch_patch_upload_seconds);
}

}  // namespace
}  // namespace harmonia::shard
