// System tests of the sharded serving path: every response must match a
// per-epoch snapshot oracle (no response is ever served from a
// half-updated cross-shard epoch), straddling ranges must reassemble
// correctly, overload must shed instead of growing any shard's queue,
// and the whole multi-device simulation must replay deterministically.
// Extends the snapshot pattern of tests/serve/server_test.cpp.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/expect.hpp"
#include "queries/workload.hpp"
#include "serve/workload.hpp"
#include "shard/sharded_server.hpp"

namespace harmonia::shard {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

ShardedOptions test_options(unsigned fanout) {
  ShardedOptions options;
  options.index.fanout = fanout;
  options.device = test_spec();
  options.device_global_bytes = 256 << 20;
  return options;
}

struct ShardedFixture {
  explicit ShardedFixture(unsigned shards, std::uint64_t tree_keys = 1 << 12,
                          unsigned fanout = 16)
      : keys(queries::make_tree_keys(tree_keys, 1)),
        index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          return ShardedIndex(entries, ShardPlan::sample_balanced(keys, shards),
                              test_options(fanout));
        }()) {}

  std::vector<Key> keys;
  ShardedIndex index;
};

/// Mirrors BatchUpdater semantics on a std::map (as in server_test.cpp).
void apply_to_oracle(std::map<Key, Value>& oracle, const serve::Request& r) {
  switch (r.op) {
    case queries::OpKind::kUpdate:
      if (auto it = oracle.find(r.key); it != oracle.end()) it->second = r.value;
      break;
    case queries::OpKind::kInsert:
      oracle[r.key] = r.value;
      break;
    case queries::OpKind::kDelete:
      oracle.erase(r.key);
      break;
  }
}

/// Replays the stream's updates in arrival order, snapshotting the map
/// exactly where the epoch updater closes an epoch (size trigger + final
/// drain). snapshots[e] is the tree a query with response epoch e saw.
std::vector<std::map<Key, Value>> make_snapshots(
    const std::vector<Key>& keys, const std::vector<serve::Request>& stream,
    std::size_t max_buffered) {
  std::vector<std::map<Key, Value>> snapshots;
  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  snapshots.push_back(oracle);
  std::size_t buffered = 0;
  for (const serve::Request& r : stream) {
    if (r.kind != serve::RequestKind::kUpdate) continue;
    apply_to_oracle(oracle, r);
    if (++buffered == max_buffered) {
      snapshots.push_back(oracle);
      buffered = 0;
    }
  }
  if (buffered > 0) snapshots.push_back(oracle);
  return snapshots;
}

/// Runs the sharded server over `stream` and checks every response
/// against the snapshot for the epoch it reports — the atomicity pin: a
/// response served from a half-updated cross-shard state could not match
/// any whole-epoch snapshot. The report lands in *out (gtest ASSERT
/// requires a void function).
void run_and_check_oracle(ShardedFixture& f,
                          const std::vector<serve::Request>& stream,
                          const serve::ServeOptions& cfg,
                          serve::ServerReport* out) {
  const auto snapshots = make_snapshots(f.keys, stream, cfg.epoch.max_buffered);

  ShardedServer server(f.index, cfg);
  const auto& rep = *out = server.run(stream);

  EXPECT_EQ(rep.dropped, 0u);
  EXPECT_EQ(rep.responses.size(), stream.size());
  EXPECT_EQ(rep.epochs + 1, snapshots.size());

  for (const auto& resp : rep.responses) {
    ASSERT_LT(resp.epoch, snapshots.size());
    const auto& oracle = snapshots[resp.epoch];
    const serve::Request& req = stream[resp.id];
    switch (resp.kind) {
      case serve::RequestKind::kPoint: {
        const auto it = oracle.find(req.key);
        const Value want = it != oracle.end() ? it->second : kNotFound;
        ASSERT_EQ(resp.value, want)
            << "request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kRange: {
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && it->first <= req.hi &&
             want.size() < cfg.batch.max_range_results;
             ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "range request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kScan: {
        std::size_t limit = req.scan_n ? req.scan_n : 1;
        if (limit > cfg.batch.max_range_results)
          limit = cfg.batch.max_range_results;
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && want.size() < limit; ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "scan request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kUpdate:
        EXPECT_GE(resp.completion, resp.arrival);
        EXPECT_GE(resp.epoch, 1u);
        break;
    }
  }

  // After the run, the sharded index equals the final snapshot.
  const auto& final_oracle = snapshots.back();
  EXPECT_EQ(f.index.num_keys(), final_oracle.size());
  for (const auto& [k, v] : final_oracle) {
    ASSERT_EQ(f.index.search_host(k).value_or(kNotFound), v);
  }
}

// Acceptance: >= 3 cross-shard update epochs with multi-threaded applies
// interleaved with point and straddling range queries — every admitted
// request answered exactly as a whole-epoch snapshot would.
TEST(ShardedServer, DifferentialOracleAcrossEpochs) {
  ShardedFixture f(4);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 5e6;
  spec.count = 6000;
  spec.update_fraction = 0.25;
  spec.range_fraction = 0.10;
  spec.range_span = 64;  // wide enough to straddle partition boundaries
  spec.seed = 42;
  const auto stream = serve::make_open_loop(f.keys, spec);

  serve::ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.max_wait = 100e-6;
  cfg.batch.queue_capacity = 8192;  // no drops: every request oracle-checked
  cfg.batch.max_range_results = 16;
  cfg.epoch.max_buffered = 400;
  cfg.epoch.apply_threads = 2;

  serve::ServerReport rep;
  run_and_check_oracle(f, stream, cfg, &rep);
  EXPECT_GE(rep.epochs, 3u);
  EXPECT_GT(rep.split_ranges, 0u);  // boundary-straddling fan-outs happened
  EXPECT_GE(rep.barrier_wait_seconds, 0.0);
  // Balanced partition + uniform stream: every shard served real work.
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_GT(rep.shard_batches[s], 0u) << "shard " << s;
    EXPECT_GT(rep.shard_queries[s], 0u) << "shard " << s;
  }
}

// Stress: frequent epochs (small buffer) x many wide ranges, so nearly
// every fan-out brackets one or more barriers. Any shard resuming early
// or late would surface as a part-vs-snapshot mismatch (or trip the
// internal same-epoch assertion inside the merge).
TEST(ShardedServer, EpochBarrierKeepsFanOutsAtomic) {
  for (const unsigned shards : {2u, 5u}) {
    SCOPED_TRACE(testing::Message() << shards << " shards");
    ShardedFixture f(shards);

    serve::OpenLoopSpec spec;
    spec.arrivals_per_second = 4e6;
    spec.count = 5000;
    spec.update_fraction = 0.30;
    spec.range_fraction = 0.30;
    spec.range_span = 1024;  // ~a quarter of each shard's key span
    spec.seed = 9;
    const auto stream = serve::make_open_loop(f.keys, spec);

    serve::ServeOptions cfg;
    cfg.batch.max_batch = 128;
    cfg.batch.max_wait = 80e-6;
    cfg.batch.queue_capacity = 1 << 14;
    cfg.batch.max_range_results = 12;
    cfg.epoch.max_buffered = 150;  // many epochs
    cfg.epoch.apply_threads = 3;

    serve::ServerReport rep;
    run_and_check_oracle(f, stream, cfg, &rep);
    EXPECT_GE(rep.epochs, 8u);
    if (shards > 1) {
      EXPECT_GT(rep.split_ranges, 100u);
      EXPECT_GT(rep.barrier_wait_seconds, 0.0);
    }
  }
}

// Under overload every shard's bounded queues reject rather than grow;
// the aggregate backlog stays bounded by the per-shard capacities.
TEST(ShardedServer, OverloadShedsLoadInsteadOfGrowingQueues) {
  ShardedFixture f(4);
  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 500e6;  // far beyond aggregate capacity
  spec.count = 20000;
  spec.range_fraction = 0.05;
  spec.range_span = 64;
  spec.seed = 11;
  const auto stream = serve::make_open_loop(f.keys, spec);

  serve::ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.max_wait = 50e-6;
  cfg.batch.queue_capacity = 512;
  ShardedServer server(f.index, cfg);
  const auto rep = server.run(stream);

  EXPECT_GT(rep.dropped, 0u);
  EXPECT_EQ(rep.admitted + rep.dropped, rep.arrivals);
  EXPECT_EQ(rep.responses.size(), stream.size());  // every request answered
  // Total depth across 4 shards x 2 lanes never exceeds the bounds.
  EXPECT_LE(rep.queue_depth.max(),
            static_cast<double>(4 * 2 * cfg.batch.queue_capacity));
}

TEST(ShardedServer, ClosedLoopNeverOverflowsClientPopulation) {
  ShardedFixture f(3);
  serve::ClosedLoopSpec spec;
  spec.clients = 32;
  spec.think_seconds = 10e-6;
  spec.total_requests = 2000;
  spec.seed = 3;
  serve::ClosedLoopSource source(f.keys, spec);

  serve::ServeOptions cfg;
  cfg.batch.max_batch = 64;
  cfg.batch.max_wait = 30e-6;
  ShardedServer server(f.index, cfg);
  const auto rep = server.run(source);

  EXPECT_EQ(source.issued(), 2000u);
  EXPECT_EQ(rep.completed, 2000u);
  EXPECT_EQ(rep.dropped, 0u);
  EXPECT_LE(rep.queue_depth.max(), 32.0);
  EXPECT_GE(rep.latency.min(), 0.0);
}

// Sharded serving must be a pure replay: same stream, same partition,
// same config -> identical virtual-clock trace across all devices.
TEST(ShardedServer, DeterministicReplay) {
  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 3000;
  spec.update_fraction = 0.1;
  spec.range_fraction = 0.1;
  spec.range_span = 128;
  spec.seed = 5;

  auto run_once = [&] {
    ShardedFixture f(4);
    const auto stream = serve::make_open_loop(f.keys, spec);
    serve::ServeOptions cfg;
    cfg.batch.max_batch = 128;
    cfg.batch.max_wait = 80e-6;
    cfg.epoch.max_buffered = 100;
    ShardedServer server(f.index, cfg);
    return server.run(stream);
  };

  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].id, b.responses[i].id);
    EXPECT_DOUBLE_EQ(a.responses[i].completion, b.responses[i].completion);
    EXPECT_EQ(a.responses[i].value, b.responses[i].value);
    EXPECT_EQ(a.responses[i].range_values, b.responses[i].range_values);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.split_ranges, b.split_ranges);
  EXPECT_DOUBLE_EQ(a.barrier_wait_seconds, b.barrier_wait_seconds);
}

// Regression: per-shard admission counters must tally each request
// exactly once at its routing point. Aggregating the schedulers' own
// admitted()/rejected() double-counts straddling fan-outs and misses
// all-or-nothing probe drops; these vectors must instead sum to the
// stream-level counters even when both effects are in play.
TEST(ShardedServer, PerShardCountersSumOnceToStreamTotals) {
  ShardedFixture f(4);
  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 100e6;  // overload: probe drops happen
  spec.count = 12000;
  spec.update_fraction = 0.10;
  spec.range_fraction = 0.20;  // wide ranges: fan-outs happen
  spec.range_span = 512;
  spec.seed = 17;
  const auto stream = serve::make_open_loop(f.keys, spec);

  serve::ServeOptions cfg;
  cfg.batch.max_batch = 128;
  cfg.batch.max_wait = 50e-6;
  cfg.batch.queue_capacity = 512;
  cfg.epoch.max_buffered = 400;
  ShardedServer server(f.index, cfg);
  const auto rep = server.run(stream);

  ASSERT_GT(rep.dropped, 0u);       // both failure modes exercised
  ASSERT_GT(rep.split_ranges, 0u);
  EXPECT_EQ(rep.responses.size(), stream.size());
  EXPECT_EQ(rep.admitted + rep.dropped, rep.arrivals);

  std::uint64_t updates = 0;
  for (const auto& r : stream) updates += r.kind == serve::RequestKind::kUpdate;

  ASSERT_EQ(rep.shard_admitted.size(), 4u);
  ASSERT_EQ(rep.shard_dropped.size(), 4u);
  std::uint64_t admitted = 0, dropped = 0, batches = 0;
  for (unsigned s = 0; s < 4; ++s) {
    admitted += rep.shard_admitted[s];
    dropped += rep.shard_dropped[s];
    batches += rep.shard_batches[s];
  }
  // Updates buffer for the epoch path, so they appear in the stream
  // totals but in no shard's admission tally.
  EXPECT_EQ(admitted + updates, rep.admitted);
  EXPECT_EQ(dropped, rep.dropped);
  EXPECT_EQ(batches, rep.batches);
}

// Seed matrix: a shard dies while cross-shard epochs are in flight. The
// all-or-nothing barrier must hold anyway — every answered response
// (device path, degraded CPU path, or a merge mixing both) matches one
// whole-epoch snapshot, for every (seed, lost shard) combination.
TEST(ShardedServer, LostShardDuringEpochsKeepsBarrierAtomic) {
  for (const std::uint64_t seed : {1u, 7u, 13u}) {
    const unsigned lost_shard = seed % 4;
    SCOPED_TRACE(testing::Message()
                 << "seed " << seed << ", losing shard " << lost_shard);
    ShardedFixture f(4);

    serve::OpenLoopSpec spec;
    spec.arrivals_per_second = 4e6;
    spec.count = 5000;
    spec.update_fraction = 0.25;
    spec.range_fraction = 0.20;
    spec.range_span = 512;  // straddling fan-outs bracket the outage
    spec.seed = seed;
    const auto stream = serve::make_open_loop(f.keys, spec);

    serve::ServeOptions cfg;
    cfg.batch.max_batch = 128;
    cfg.batch.max_wait = 80e-6;
    cfg.batch.queue_capacity = 1 << 14;
    cfg.batch.max_range_results = 12;
    cfg.epoch.max_buffered = 150;  // many epochs around the outage
    cfg.faults = fault::FaultPlan::parse(
        "lose@0.0004:shard=" + std::to_string(lost_shard) + ",repair=0.0004");

    const auto snapshots =
        make_snapshots(f.keys, stream, cfg.epoch.max_buffered);
    ShardedServer server(f.index, cfg);
    const auto rep = server.run(stream);

    ASSERT_EQ(rep.faults.shards_lost, 1u);
    ASSERT_EQ(rep.faults.shards_restored, 1u);
    EXPECT_GE(rep.epochs, 8u);
    ASSERT_EQ(rep.epochs + 1, snapshots.size());
    ASSERT_EQ(rep.responses.size(), stream.size());

    for (const auto& resp : rep.responses) {
      if (resp.dropped) continue;  // fault shedding is exempt, answers are not
      ASSERT_LT(resp.epoch, snapshots.size());
      const auto& oracle = snapshots[resp.epoch];
      const serve::Request& req = stream[resp.id];
      switch (resp.kind) {
        case serve::RequestKind::kPoint: {
          const auto it = oracle.find(req.key);
          ASSERT_EQ(resp.value, it != oracle.end() ? it->second : kNotFound)
              << "request " << resp.id << " epoch " << resp.epoch;
          break;
        }
        case serve::RequestKind::kRange: {
          std::vector<Value> want;
          for (auto it = oracle.lower_bound(req.key);
               it != oracle.end() && it->first <= req.hi &&
               want.size() < cfg.batch.max_range_results;
               ++it) {
            want.push_back(it->second);
          }
          ASSERT_EQ(resp.range_values, want)
              << "range request " << resp.id << " epoch " << resp.epoch;
          break;
        }
        case serve::RequestKind::kScan: {
          std::size_t limit = req.scan_n ? req.scan_n : 1;
          if (limit > cfg.batch.max_range_results)
            limit = cfg.batch.max_range_results;
          std::vector<Value> want;
          for (auto it = oracle.lower_bound(req.key);
               it != oracle.end() && want.size() < limit; ++it) {
            want.push_back(it->second);
          }
          ASSERT_EQ(resp.range_values, want)
              << "scan request " << resp.id << " epoch " << resp.epoch;
          break;
        }
        case serve::RequestKind::kUpdate:
          EXPECT_GE(resp.epoch, 1u);
          break;
      }
    }

    // Updates routed at the fenced shard still landed: the index equals
    // the final snapshot after the outage.
    const auto& final_oracle = snapshots.back();
    EXPECT_EQ(f.index.num_keys(), final_oracle.size());
    for (const auto& [k, v] : final_oracle) {
      ASSERT_EQ(f.index.search_host(k).value_or(kNotFound), v);
    }
  }
}

// The serving path refuses an index with a deviceless (empty) shard:
// lazily creating devices mid-run would tear cross-shard reads.
TEST(ShardedServer, RejectsEmptyShards) {
  const auto keys = queries::make_tree_keys(1 << 10, 1);
  std::vector<btree::Entry> entries;
  for (Key k : keys) {
    if (k < (~Key{0} >> 2)) entries.push_back({k, btree::value_for_key(k)});
  }
  ASSERT_FALSE(entries.empty());
  // Equal-width over keys confined to the bottom quarter: upper shards
  // hold nothing.
  ShardedIndex index(entries, ShardPlan::equal_width(4), test_options(16));
  ASSERT_EQ(index.shard(3), nullptr);
  serve::ServeOptions cfg;
  EXPECT_THROW(ShardedServer(index, cfg), ContractViolation);
}

}  // namespace
}  // namespace harmonia::shard
