// Differential tests of first-class online scans ([lo, n): the first n
// values with key >= lo). The device-side scan — single-device
// scan_device and the sharded fan-out that splits a scan's coverage
// across partition boundaries and merges pieces in shard order — must be
// byte-identical to the CPU scan oracle, including scans launched from
// partition boundaries, scans overrunning the whole key population, and
// scans served online across the overlap pipeline's staggered epoch
// swaps (where every reassembled answer must match one whole-epoch
// snapshot, never a mix of two).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "queries/workload.hpp"
#include "serve/workload.hpp"
#include "shard/sharded_server.hpp"

namespace harmonia::shard {
namespace {

gpusim::DeviceSpec small_device() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

ShardedOptions small_options(unsigned fanout = 16) {
  ShardedOptions options;
  options.index.fanout = fanout;
  options.device = small_device();
  options.device_global_bytes = 256 << 20;
  return options;
}

struct Fixture {
  explicit Fixture(unsigned shards, std::uint64_t num_keys = 1 << 12,
                   std::uint64_t seed = 1)
      : keys(queries::make_tree_keys(num_keys, seed)),
        entries([&] {
          std::vector<btree::Entry> e;
          e.reserve(keys.size());
          for (Key k : keys) e.push_back({k, btree::value_for_key(k)});
          return e;
        }()),
        single_device(small_device()),
        single([&] {
          return HarmoniaIndex::build(single_device, entries, {.fanout = 16});
        }()),
        sharded(entries, ShardPlan::sample_balanced(keys, shards),
                small_options()) {}

  std::vector<Key> keys;
  std::vector<btree::Entry> entries;
  gpusim::Device single_device;
  HarmoniaIndex single;
  ShardedIndex sharded;
};

/// Scan starting points that stress the partition: exact keys, gaps,
/// every shard boundary (and its neighbours), and points past the last
/// key. Paired with counts from 1 up to several shard-spans.
void make_probe_scans(const Fixture& f, std::vector<Key>& los,
                      std::vector<std::uint32_t>& ns) {
  Xoshiro256 rng(99);
  const std::uint32_t counts[] = {1, 3, 16, 64, 300, 1500, 5000};
  for (int i = 0; i < 256; ++i) {
    const Key base = f.keys[rng.next_below(f.keys.size())];
    los.push_back(i % 2 == 0 ? base : base + 1);  // exact key / gap
    ns.push_back(counts[rng.next_below(std::size(counts))]);
  }
  const ShardPlan& plan = f.sharded.plan();
  for (unsigned s = 0; s < plan.num_shards(); ++s) {
    for (const Key lo : {plan.lo(s), plan.lo(s) > 0 ? plan.lo(s) - 1 : 0}) {
      los.push_back(lo);
      ns.push_back(300);  // reaches past the boundary from either side
    }
  }
  los.push_back(f.keys.back());      // tail: 1 result
  ns.push_back(64);
  los.push_back(f.keys.back() + 1);  // past every key: empty
  ns.push_back(64);
}

// Acceptance: the sharded fan-out scan and the single-device scan are
// both byte-identical to the CPU oracle, boundary scans included.
TEST(ShardScan, DeviceScanMatchesHostOracleAcrossShards) {
  for (const unsigned shards : {1u, 3u, 4u}) {
    SCOPED_TRACE(testing::Message() << shards << " shard(s)");
    Fixture f(shards);
    std::vector<Key> los;
    std::vector<std::uint32_t> ns;
    make_probe_scans(f, los, ns);

    const auto sharded = f.sharded.scan(los, ns);
    const auto single = f.single.scan_device(los, ns);
    ASSERT_EQ(sharded.values.size(), los.size());
    ASSERT_EQ(single.values.size(), los.size());

    std::uint64_t total = 0;
    for (std::size_t q = 0; q < los.size(); ++q) {
      const auto oracle = f.sharded.scan_host(los[q], ns[q]);
      std::vector<Value> want;
      want.reserve(oracle.size());
      for (const auto& e : oracle) want.push_back(e.value);
      ASSERT_EQ(sharded.values[q], want) << "scan " << q << " lo=" << los[q]
                                         << " n=" << ns[q];
      ASSERT_EQ(single.values[q], want) << "scan " << q;
      total += want.size();
    }
    EXPECT_EQ(sharded.total_results, total);
    EXPECT_EQ(single.total_results, total);
    if (shards > 1) {
      EXPECT_GT(sharded.straddling, 0u);
    }
    EXPECT_GT(sharded.total_seconds, 0.0);
  }
}

// scan_end_shard really bounds a scan's coverage: the host tail of the
// first shard plus the whole key counts of the shards after it reach n
// (or the span ends at the last shard).
TEST(ShardScan, ScanEndShardCoversRequestedCount) {
  Fixture f(4);
  const ShardPlan& plan = f.sharded.plan();
  Xoshiro256 rng(5);
  for (int i = 0; i < 200; ++i) {
    const Key lo = f.keys[rng.next_below(f.keys.size())] + rng.next_below(2);
    const auto n = static_cast<std::uint32_t>(1 + rng.next_below(4000));
    const unsigned s0 = plan.shard_of(lo);
    const unsigned s1 = f.sharded.scan_end_shard(lo, n);
    ASSERT_GE(s1, s0);
    // Keys available on [s0, s1] from lo onward.
    std::uint64_t have = f.sharded.range_host(lo, plan.hi(s0), n).size();
    for (unsigned s = s0 + 1; s <= s1; ++s) have += f.sharded.shard_key_count(s);
    if (s1 + 1 < plan.num_shards()) {
      ASSERT_GE(have, n) << "lo=" << lo << " n=" << n;
      // Minimal: when the span extended past its first shard, dropping
      // the last shard must lose coverage (a single-shard span has no
      // proper prefix to test).
      if (s1 > s0) {
        std::uint64_t without = f.sharded.range_host(lo, plan.hi(s0), n).size();
        for (unsigned s = s0 + 1; s < s1; ++s)
          without += f.sharded.shard_key_count(s);
        ASSERT_LT(without, n) << "lo=" << lo << " n=" << n;
      }
    }
    // The oracle never returns more than the span can hold.
    ASSERT_LE(f.sharded.scan_host(lo, n).size(), n);
  }
}

/// Mirrors BatchUpdater semantics on a std::map (as in shard_swap_test).
void apply_to_oracle(std::map<Key, Value>& oracle, const serve::Request& r) {
  switch (r.op) {
    case queries::OpKind::kUpdate:
      if (auto it = oracle.find(r.key); it != oracle.end()) it->second = r.value;
      break;
    case queries::OpKind::kInsert:
      oracle[r.key] = r.value;
      break;
    case queries::OpKind::kDelete:
      oracle.erase(r.key);
      break;
  }
}

std::vector<std::map<Key, Value>> snapshots_from_responses(
    const std::vector<Key>& keys, const std::vector<serve::Request>& stream,
    const serve::ServerReport& rep) {
  std::vector<unsigned> epoch_of(stream.size(), 0);
  for (const serve::Response& resp : rep.responses) {
    if (resp.kind == serve::RequestKind::kUpdate) epoch_of[resp.id] = resp.epoch;
  }
  std::vector<std::map<Key, Value>> snapshots;
  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  snapshots.push_back(oracle);
  for (unsigned e = 1; e <= rep.epochs; ++e) {
    for (const serve::Request& r : stream) {
      if (r.kind == serve::RequestKind::kUpdate && epoch_of[r.id] == e)
        apply_to_oracle(oracle, r);
    }
    snapshots.push_back(oracle);
  }
  return snapshots;
}

/// First min(n, cap) oracle values with key >= lo — what a served scan
/// must return for the epoch snapshot its response reports.
std::vector<Value> oracle_scan(const std::map<Key, Value>& oracle, Key lo,
                               std::uint32_t n, std::uint32_t cap) {
  std::vector<Value> want;
  const std::uint32_t limit = std::min(std::max<std::uint32_t>(n, 1), cap);
  for (auto it = oracle.lower_bound(lo); it != oracle.end() && want.size() < limit;
       ++it) {
    want.push_back(it->second);
  }
  return want;
}

// Acceptance: online scans served through the sharded backend across the
// overlap pipeline's staggered swaps — shard-straddling fan-outs, the
// version fence, and parked straddlers included — every scan response is
// byte-identical to the CPU oracle at one whole-epoch snapshot.
TEST(ShardScan, OnlineScansMatchSnapshotOracleAcrossOverlapSwaps) {
  Fixture f(4);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 5e6;
  spec.count = 8000;
  spec.update_fraction = 0.25;
  spec.scan_fraction = 0.20;
  spec.scan_n = 96;  // ~a tenth of a shard: boundary starts straddle
  spec.seed = 42;
  const auto stream = serve::make_open_loop(f.keys, spec);

  serve::ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.max_wait = 100e-6;
  cfg.batch.queue_capacity = 8192;  // no drops: every scan oracle-checked
  cfg.batch.max_range_results = 96;
  cfg.epoch.max_buffered = 400;
  cfg.epoch.apply_threads = 1;  // arrival-order map oracle (see swap test)
  cfg.epoch.mode = serve::EpochMode::kOverlap;

  ShardedServer server(f.sharded, cfg);
  serve::Backend& backend = server;
  const auto rep = backend.run(stream);

  ASSERT_EQ(rep.dropped, 0u);
  ASSERT_EQ(rep.responses.size(), stream.size());
  ASSERT_GE(rep.epochs, 3u);
  EXPECT_GT(rep.split_scans, 0u);  // straddling scan fan-outs really happened
  rep.check_invariants();

  const auto snapshots = snapshots_from_responses(f.keys, stream, rep);
  ASSERT_EQ(snapshots.size(), rep.epochs + 1);
  std::uint64_t scans = 0;
  for (const auto& resp : rep.responses) {
    if (resp.kind != serve::RequestKind::kScan) continue;
    ASSERT_LT(resp.epoch, snapshots.size());
    const serve::Request& req = stream[resp.id];
    const auto want = oracle_scan(snapshots[resp.epoch], req.key, req.scan_n,
                                  cfg.batch.max_range_results);
    ASSERT_EQ(resp.range_values, want)
        << "scan " << resp.id << " lo=" << req.key << " epoch " << resp.epoch;
    ++scans;
  }
  EXPECT_GT(scans, 1000u);

  // Determinism: an identical fresh fixture + stream replays to
  // byte-identical scan results and completion times.
  Fixture g(4);
  const auto stream2 = serve::make_open_loop(g.keys, spec);
  ShardedServer server_b(g.sharded, cfg);
  const auto rep_b = server_b.run(stream2);
  ASSERT_EQ(rep.responses.size(), rep_b.responses.size());
  for (std::size_t i = 0; i < rep.responses.size(); ++i) {
    EXPECT_EQ(rep.responses[i].range_values, rep_b.responses[i].range_values);
    EXPECT_DOUBLE_EQ(rep.responses[i].completion, rep_b.responses[i].completion);
  }
}

// Scans through the quiesce-mode single-snapshot path (epochs drain every
// queue, so no fence is involved): same oracle contract, and the scan
// cap clamps to max_range_results.
TEST(ShardScan, QuiesceScansClampToMaxRangeResults) {
  Fixture f(2);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 4000;
  spec.scan_fraction = 0.30;
  spec.scan_n = 500;  // far above the cap: every scan clamps
  spec.seed = 9;
  const auto stream = serve::make_open_loop(f.keys, spec);

  serve::ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.queue_capacity = 8192;
  cfg.batch.max_range_results = 48;

  ShardedServer server(f.sharded, cfg);
  const auto rep = server.run(stream);
  ASSERT_EQ(rep.dropped, 0u);
  rep.check_invariants();

  std::map<Key, Value> oracle;
  for (Key k : f.keys) oracle[k] = btree::value_for_key(k);
  std::uint64_t full = 0;
  for (const auto& resp : rep.responses) {
    if (resp.kind != serve::RequestKind::kScan) continue;
    const serve::Request& req = stream[resp.id];
    const auto want =
        oracle_scan(oracle, req.key, req.scan_n, cfg.batch.max_range_results);
    ASSERT_LE(resp.range_values.size(), cfg.batch.max_range_results);
    ASSERT_EQ(resp.range_values, want) << "scan " << resp.id;
    if (resp.range_values.size() == cfg.batch.max_range_results) ++full;
  }
  EXPECT_GT(full, 0u);  // the clamp really bit
}

}  // namespace
}  // namespace harmonia::shard
