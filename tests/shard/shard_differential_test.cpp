// Differential fuzzing of the sharded execution layer: sharded search and
// range over 1-8 shards, both partition modes, sweeping seeds x fanouts x
// query distributions, must agree exactly with a single-device Harmonia
// index and the CPU btree oracle — including keys sitting exactly on
// partition boundaries and ranges straddling them.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "btree/btree.hpp"
#include "common/rng.hpp"
#include "queries/workload.hpp"
#include "shard/sharded_index.hpp"

namespace harmonia::shard {
namespace {

gpusim::DeviceSpec small_device() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

ShardedOptions small_options(unsigned fanout) {
  ShardedOptions options;
  options.index.fanout = fanout;
  options.device = small_device();
  options.device_global_bytes = 256 << 20;
  return options;
}

struct Fixture {
  Fixture(std::uint64_t num_keys, unsigned fanout, std::uint64_t seed,
          ShardPlan shard_plan)
      : keys(queries::make_tree_keys(num_keys, seed)),
        entries([&] {
          std::vector<btree::Entry> e;
          e.reserve(keys.size());
          for (Key k : keys) e.push_back({k, btree::value_for_key(k)});
          return e;
        }()),
        oracle(fanout),
        single_device(small_device()),
        single([&] {
          return HarmoniaIndex::build(single_device, entries, {.fanout = fanout});
        }()),
        sharded(entries, std::move(shard_plan), small_options(fanout)) {
    oracle.bulk_load(entries);
  }

  std::vector<Key> keys;
  std::vector<btree::Entry> entries;
  btree::BTree oracle;
  gpusim::Device single_device;
  HarmoniaIndex single;
  ShardedIndex sharded;
};

/// Queries that stress the partition: every shard's exact bounds, keys
/// adjacent to every boundary, plus hits and misses from `dist`.
std::vector<Key> make_probe_batch(const Fixture& f, queries::Distribution dist,
                                  std::uint64_t seed) {
  std::vector<Key> batch = queries::make_queries(f.keys, 512, dist, seed);
  const auto missing = queries::make_missing_keys(f.keys, 64, seed + 1);
  batch.insert(batch.end(), missing.begin(), missing.end());
  const ShardPlan& plan = f.sharded.plan();
  for (unsigned s = 0; s < plan.num_shards(); ++s) {
    batch.push_back(plan.lo(s));
    if (plan.lo(s) > 0) batch.push_back(plan.lo(s) - 1);
    // The last shard's hi is 2^64-1 == kReservedKey, the device-image pad
    // key, which query generators never produce — probe up to hi-1 there.
    if (plan.hi(s) < ~Key{0}) {
      batch.push_back(plan.hi(s));
      batch.push_back(plan.hi(s) + 1);
    } else {
      batch.push_back(plan.hi(s) - 1);
    }
  }
  return batch;
}

void check_search_agreement(Fixture& f, queries::Distribution dist,
                            std::uint64_t seed) {
  const auto batch = make_probe_batch(f, dist, seed);
  const auto sharded = f.sharded.search(batch);
  const auto single = f.single.search(batch);
  ASSERT_EQ(sharded.values.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Value want = f.oracle.search(batch[i]).value_or(kNotFound);
    ASSERT_EQ(sharded.values[i], want) << "query " << i << " key " << batch[i];
    ASSERT_EQ(sharded.values[i], single.values[i])
        << "sharded vs single-device divergence at query " << i;
  }
  // Routing conservation: every query landed in exactly one shard.
  std::uint64_t routed = 0;
  for (std::uint64_t n : sharded.per_shard) routed += n;
  EXPECT_EQ(routed, batch.size());
}

void check_range_agreement(Fixture& f, std::uint64_t seed, unsigned max_results) {
  const ShardPlan& plan = f.sharded.plan();
  std::vector<Key> los, his;
  // Ranges centered on every partition boundary (guaranteed straddling
  // when the boundary is interior), plus random spans of varying width.
  // Keep his below kReservedKey (2^64-1): that key is the device-image
  // pad and never a real query target.
  const Key hi_cap = ~Key{0} - 1;
  for (unsigned s = 0; s + 1 < plan.num_shards(); ++s) {
    const Key b = plan.lo(s + 1);
    const Key width = (plan.hi(s) - plan.lo(s)) / 4;
    los.push_back(b - std::min(b, width));
    his.push_back(b + std::min(hi_cap - b, width));
  }
  Xoshiro256 rng(seed);
  for (int i = 0; i < 48; ++i) {
    const Key lo = f.keys[rng.next_below(f.keys.size())];
    // Wide enough that some spans cross several shards.
    const Key span = rng.next() >> (2 + rng.next_below(12));
    los.push_back(lo);
    his.push_back(lo + std::min(hi_cap - lo, span));
  }
  // Degenerate single-key ranges on boundary keys.
  for (unsigned s = 0; s + 1 < plan.num_shards(); ++s) {
    los.push_back(plan.lo(s + 1));
    his.push_back(plan.lo(s + 1));
  }

  const auto sharded = f.sharded.range(los, his, max_results);
  const auto single = f.single.range_device(los, his, max_results);
  ASSERT_EQ(sharded.values.size(), los.size());
  for (std::size_t i = 0; i < los.size(); ++i) {
    std::vector<Value> want;
    for (const auto& e : f.oracle.range(los[i], his[i], max_results))
      want.push_back(e.value);
    ASSERT_EQ(sharded.values[i], want)
        << "range " << i << " [" << los[i] << ", " << his[i] << "]";
    ASSERT_EQ(sharded.values[i], single.values[i])
        << "sharded vs single-device range divergence at " << i;
  }
  if (plan.num_shards() > 1) {
    EXPECT_GT(sharded.straddling, 0u);
  }
}

TEST(ShardDifferential, SearchAgreesAcrossShardCountsAndModes) {
  for (const unsigned shards : {1u, 2u, 3u, 5u, 8u}) {
    for (const bool balanced : {false, true}) {
      SCOPED_TRACE(testing::Message()
                   << (balanced ? "balanced" : "width") << " x" << shards);
      const std::uint64_t seed = 11 + shards;
      const auto keys = queries::make_tree_keys(1 << 10, seed);
      Fixture f(1 << 10, 16, seed,
                balanced ? ShardPlan::sample_balanced(keys, shards)
                         : ShardPlan::equal_width(shards));
      check_search_agreement(f, queries::Distribution::kUniform, seed + 1);
    }
  }
}

TEST(ShardDifferential, SearchAgreesAcrossFanoutsSeedsDistributions) {
  for (const unsigned fanout : {8u, 64u}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      for (const auto dist : {queries::Distribution::kUniform,
                              queries::Distribution::kZipfian,
                              queries::Distribution::kSorted}) {
        SCOPED_TRACE(testing::Message() << "fanout " << fanout << " seed "
                                        << seed << " dist "
                                        << queries::to_string(dist));
        const auto keys = queries::make_tree_keys(1500, seed);
        Fixture f(1500, fanout, seed, ShardPlan::sample_balanced(keys, 4));
        check_search_agreement(f, dist, seed * 31);
      }
    }
  }
}

TEST(ShardDifferential, RangeAgreesIncludingStraddlingBoundaries) {
  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    for (const bool balanced : {false, true}) {
      SCOPED_TRACE(testing::Message()
                   << (balanced ? "balanced" : "width") << " x" << shards);
      const std::uint64_t seed = 23 + shards;
      const auto keys = queries::make_tree_keys(1 << 10, seed);
      Fixture f(1 << 10, 16, seed,
                balanced ? ShardPlan::sample_balanced(keys, shards)
                         : ShardPlan::equal_width(shards));
      check_range_agreement(f, seed + 5, 16);
    }
  }
}

TEST(ShardDifferential, RangeTruncationMatchesSingleDevice) {
  // A span covering the whole domain must truncate identically whether
  // the results come from one device or are merged across all shards.
  const std::uint64_t seed = 77;
  const auto keys = queries::make_tree_keys(2000, seed);
  Fixture f(2000, 16, seed, ShardPlan::sample_balanced(keys, 5));
  std::vector<Key> los{0, keys[100]};
  std::vector<Key> his{~Key{0} - 1, keys[1900]};
  for (const unsigned cap : {1u, 7u, 64u}) {
    const auto sharded = f.sharded.range(los, his, cap);
    const auto single = f.single.range_device(los, his, cap);
    for (std::size_t i = 0; i < los.size(); ++i) {
      ASSERT_EQ(sharded.values[i].size(), std::min<std::size_t>(cap, 2000u));
      ASSERT_EQ(sharded.values[i], single.values[i]) << "cap " << cap;
    }
  }
}

TEST(ShardDifferential, TruncationExactlyAtShardCut) {
  // The nastiest truncation case: a straddling range whose result cap
  // lands *exactly* on a partition boundary, so one side of the cut
  // contributes precisely `limit` results and the other must contribute
  // none (and, one key later, exactly one). Off-by-one in the fan-out
  // merge shows up only here — interior caps are covered above.
  const std::uint64_t seed = 91;
  const auto keys = queries::make_tree_keys(1 << 11, seed);
  Fixture f(1 << 11, 16, seed, ShardPlan::sample_balanced(keys, 4));
  const ShardPlan& plan = f.sharded.plan();

  std::vector<Key> sorted = f.keys;
  std::sort(sorted.begin(), sorted.end());

  for (unsigned s = 0; s + 1 < plan.num_shards(); ++s) {
    const Key boundary = plan.lo(s + 1);  // first key owned by shard s+1
    // The last `m` keys of shard s, in ascending order.
    const auto cut = std::lower_bound(sorted.begin(), sorted.end(), boundary);
    const auto left = static_cast<std::size_t>(cut - sorted.begin());
    const auto right = sorted.size() - left;
    for (const std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
      if (left < m || right == 0) continue;
      const Key lo = sorted[left - m];        // span holds exactly m keys
      const Key hi = *cut;                    // ... plus 1 across the cut
      ASSERT_EQ(plan.shard_of(lo), s);
      ASSERT_EQ(plan.shard_of(hi), s + 1);
      SCOPED_TRACE(testing::Message() << "boundary " << s << "/" << s + 1
                                      << " m=" << m);
      std::vector<Key> los{lo, lo, lo};
      std::vector<Key> his{hi, hi, hi};
      // Caps of exactly m (truncate precisely at the cut: shard s+1 must
      // contribute nothing), m-1 (truncate before it), m+1 (exactly one
      // result crosses it).
      for (std::size_t q = 0; q < los.size(); ++q) {
        const auto cap = static_cast<unsigned>(m - 1 + q);
        if (cap == 0) continue;
        const std::vector<Key> one_lo{los[q]}, one_hi{his[q]};
        const auto sharded = f.sharded.range(one_lo, one_hi, cap);
        const auto single = f.single.range_device(one_lo, one_hi, cap);
        std::vector<Value> want;
        for (const auto& e : f.oracle.range(lo, hi, cap)) want.push_back(e.value);
        ASSERT_EQ(want.size(), std::min<std::size_t>(cap, m + 1));
        ASSERT_EQ(sharded.values[0], want) << "cap " << cap;
        ASSERT_EQ(sharded.values[0], single.values[0]) << "cap " << cap;
        EXPECT_EQ(sharded.straddling, 1u);
      }
    }
  }
}

TEST(ShardDifferential, UpdatesKeepShardsConsistentWithOracle) {
  // Mixed update batches applied to the sharded index vs the btree
  // oracle; searches must agree after every round, across boundaries.
  const std::uint64_t seed = 41;
  const auto keys = queries::make_tree_keys(1 << 10, seed);
  Fixture f(1 << 10, 16, seed, ShardPlan::sample_balanced(keys, 4));

  std::vector<Key> population = f.keys;
  for (int round = 0; round < 3; ++round) {
    queries::BatchSpec spec;
    spec.size = 400;
    spec.insert_fraction = 0.3;
    spec.delete_fraction = 0.1;
    spec.seed = seed + static_cast<std::uint64_t>(round);
    const auto ops = queries::make_update_batch(population, spec);
    f.sharded.update_batch(ops, 2);
    for (const auto& op : ops) {
      switch (op.kind) {
        case queries::OpKind::kUpdate:
          f.oracle.update(op.key, op.value);
          break;
        case queries::OpKind::kInsert:
          f.oracle.insert(op.key, op.value);
          break;
        case queries::OpKind::kDelete:
          f.oracle.erase(op.key);
          break;
      }
    }
    population.clear();
    for (const auto& e : f.oracle.range(0, ~Key{0})) population.push_back(e.key);

    // Differential probe after the round (device path, all shards).
    std::vector<Key> batch = queries::make_queries(
        population, 256, queries::Distribution::kUniform, seed + 100);
    for (const auto& op : ops) batch.push_back(op.key);
    const auto got = f.sharded.search(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(got.values[i], f.oracle.search(batch[i]).value_or(kNotFound))
          << "round " << round << " key " << batch[i];
    }
  }
}

}  // namespace
}  // namespace harmonia::shard
