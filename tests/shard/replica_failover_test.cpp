// Replica groups through the sharded serving path: losing one replica of
// a K-way group must keep the shard serving from the survivors with zero
// CPU-oracle degraded queries, the rejoining replica must catch up from
// the group's update-log tail, a loss on the *last* healthy replica must
// fall back to the whole-shard fence, and every replicated run must stay
// oracle-exact and deterministic. Extends tests/fault/fault_shard_test.cpp.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "common/expect.hpp"
#include "queries/workload.hpp"
#include "serve/workload.hpp"
#include "shard/sharded_server.hpp"

namespace harmonia::shard {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

ShardedOptions test_options(unsigned fanout) {
  ShardedOptions options;
  options.index.fanout = fanout;
  options.device = test_spec();
  options.device_global_bytes = 256 << 20;
  return options;
}

struct ShardedFixture {
  explicit ShardedFixture(unsigned shards, std::uint64_t tree_keys = 1 << 12,
                          unsigned fanout = 16)
      : keys(queries::make_tree_keys(tree_keys, 1)),
        index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          return ShardedIndex(entries, ShardPlan::sample_balanced(keys, shards),
                              test_options(fanout));
        }()) {}

  std::vector<Key> keys;
  ShardedIndex index;
};

void apply_to_oracle(std::map<Key, Value>& oracle, const serve::Request& r) {
  switch (r.op) {
    case queries::OpKind::kUpdate:
      if (auto it = oracle.find(r.key); it != oracle.end()) it->second = r.value;
      break;
    case queries::OpKind::kInsert:
      oracle[r.key] = r.value;
      break;
    case queries::OpKind::kDelete:
      oracle.erase(r.key);
      break;
  }
}

std::vector<std::map<Key, Value>> make_snapshots(
    const std::vector<Key>& keys, const std::vector<serve::Request>& stream,
    std::size_t max_buffered) {
  std::vector<std::map<Key, Value>> snapshots;
  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  snapshots.push_back(oracle);
  std::size_t buffered = 0;
  for (const serve::Request& r : stream) {
    if (r.kind != serve::RequestKind::kUpdate) continue;
    apply_to_oracle(oracle, r);
    if (++buffered == max_buffered) {
      snapshots.push_back(oracle);
      buffered = 0;
    }
  }
  if (buffered > 0) snapshots.push_back(oracle);
  return snapshots;
}

void check_answered_against_oracle(
    const serve::ServerReport& rep, const std::vector<serve::Request>& stream,
    const std::vector<std::map<Key, Value>>& snapshots,
    std::size_t max_range_results) {
  ASSERT_EQ(rep.responses.size(), stream.size());
  for (const auto& resp : rep.responses) {
    if (resp.dropped) continue;
    ASSERT_LT(resp.epoch, snapshots.size());
    const auto& oracle = snapshots[resp.epoch];
    const serve::Request& req = stream[resp.id];
    switch (resp.kind) {
      case serve::RequestKind::kPoint: {
        const auto it = oracle.find(req.key);
        const Value want = it != oracle.end() ? it->second : kNotFound;
        ASSERT_EQ(resp.value, want)
            << "request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kRange: {
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && it->first <= req.hi &&
             want.size() < max_range_results;
             ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "range request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kScan: {
        std::size_t limit = req.scan_n ? req.scan_n : 1;
        if (limit > max_range_results) limit = max_range_results;
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && want.size() < limit; ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "scan request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kUpdate:
        EXPECT_GE(resp.completion, resp.arrival);
        break;
    }
  }
}

serve::ServeOptions replicated_config(unsigned replicas) {
  serve::ServeOptions cfg;
  cfg.batch.max_batch = 128;
  cfg.batch.max_wait = 80e-6;
  cfg.batch.queue_capacity = 1 << 14;
  cfg.batch.max_range_results = 16;
  cfg.epoch.max_buffered = 300;
  cfg.replicas = replicas;
  return cfg;
}

// The headline contract: one replica of a K=3 group dies mid-stream and
// the shard keeps serving from the survivors — no fence, no CPU-oracle
// degraded queries, no fault shedding — then the replica rejoins by
// replaying the group's update-log tail.
TEST(ReplicaFailover, LostReplicaServesFromSurvivorsZeroDegraded) {
  ShardedFixture f(4);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 6000;
  spec.update_fraction = 0.20;
  spec.range_fraction = 0.10;
  spec.range_span = 64;
  spec.seed = 13;
  const auto stream = serve::make_open_loop(f.keys, spec);

  auto cfg = replicated_config(3);
  cfg.faults =
      fault::FaultPlan::parse("replica-lost@0.0004:shard=1,replica=0,repair=0.0006");

  const auto snapshots = make_snapshots(f.keys, stream, cfg.epoch.max_buffered);
  ShardedServer server(f.index, cfg);
  const auto rep = server.run(stream);

  // The loss was absorbed inside the group: outcome tallies say replica,
  // never whole-shard, and the degraded CPU path never fired.
  EXPECT_EQ(rep.faults.replicas_lost, 1u);
  EXPECT_EQ(rep.faults.replicas_rejoined, 1u);
  EXPECT_EQ(rep.faults.shards_lost, 0u);
  EXPECT_EQ(rep.faults.degraded_points, 0u);
  EXPECT_EQ(rep.faults.degraded_ranges, 0u);
  EXPECT_EQ(rep.faults.degraded_shed, 0u);
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_EQ(rep.faults.fenced_seconds, 0.0);

  // Per-replica dispatch accounting holds: each shard's K slots sum to
  // its batch count, and the whole grid sums to the global total.
  ASSERT_EQ(rep.replica_batches.size(), std::size_t{4} * 3);
  std::uint64_t grid = 0;
  for (unsigned s = 0; s < 4; ++s) {
    std::uint64_t group = 0;
    for (unsigned r = 0; r < 3; ++r) group += rep.replica_batches[s * 3 + r];
    EXPECT_EQ(group, rep.shard_batches[s]) << "shard " << s;
    grid += group;
  }
  EXPECT_EQ(grid, rep.batches);

  check_answered_against_oracle(rep, stream, snapshots,
                                cfg.batch.max_range_results);
}

// A whole-shard `lose` event aimed at a replicated group is absorbed the
// same way: one slot goes down, the survivors serve, and the outcome
// tally reclassifies the loss from shard to replica.
TEST(ReplicaFailover, WholeShardLoseAbsorbedByGroup) {
  ShardedFixture f(4);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 5000;
  spec.update_fraction = 0.15;
  spec.seed = 29;
  const auto stream = serve::make_open_loop(f.keys, spec);

  auto cfg = replicated_config(2);
  cfg.faults = fault::FaultPlan::parse("lose@0.0004:shard=2,repair=0.0005");

  const auto snapshots = make_snapshots(f.keys, stream, cfg.epoch.max_buffered);
  ShardedServer server(f.index, cfg);
  const auto rep = server.run(stream);

  EXPECT_EQ(rep.faults.shards_lost, 0u);
  EXPECT_EQ(rep.faults.replicas_lost, 1u);
  EXPECT_EQ(rep.faults.replicas_rejoined, 1u);
  EXPECT_EQ(rep.faults.degraded_points, 0u);
  EXPECT_EQ(rep.shed, 0u);
  check_answered_against_oracle(rep, stream, snapshots,
                                cfg.batch.max_range_results);
}

// Losing the *last* healthy replica is a whole-shard outage: the second
// replica-lost event lands while the first slot is still down, so the
// shard fences and serves degraded until the timed restore — and the
// outcome tallies say one absorbed replica loss plus one shard loss.
TEST(ReplicaFailover, LastHealthyReplicaLossFencesShard) {
  ShardedFixture f(4);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 6000;
  spec.update_fraction = 0.15;
  spec.seed = 31;
  const auto stream = serve::make_open_loop(f.keys, spec);

  auto cfg = replicated_config(2);
  cfg.faults = fault::FaultPlan::parse(
      "replica-lost@0.0003:shard=1,replica=0,repair=0.0009;"
      "replica-lost@0.0005:shard=1,replica=1,repair=0.0004");

  const auto snapshots = make_snapshots(f.keys, stream, cfg.epoch.max_buffered);
  ShardedServer server(f.index, cfg);
  const auto rep = server.run(stream);

  EXPECT_EQ(rep.faults.replicas_lost, 1u);
  EXPECT_EQ(rep.faults.shards_lost, 1u);
  EXPECT_EQ(rep.faults.shards_restored, 1u);
  EXPECT_GT(rep.faults.degraded_points, 0u);
  EXPECT_GT(rep.faults.fenced_seconds, 0.0);
  check_answered_against_oracle(rep, stream, snapshots,
                                cfg.batch.max_range_results);
}

// Log-shipped catch-up: epochs swap while one replica is down, so the
// rejoin must replay those epochs' ops (catchup_ops > 0) and book the
// modeled replay + transfer time before the slot serves again.
TEST(ReplicaFailover, RejoinReplaysUpdateLogTail) {
  ShardedFixture f(2);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 12000;
  spec.update_fraction = 0.30;
  spec.seed = 37;
  const auto stream = serve::make_open_loop(f.keys, spec);

  auto cfg = replicated_config(3);
  cfg.epoch.max_buffered = 200;  // several epochs inside the outage window
  cfg.faults =
      fault::FaultPlan::parse("replica-lost@0.0003:shard=0,replica=1,repair=0.002");

  const auto snapshots = make_snapshots(f.keys, stream, cfg.epoch.max_buffered);
  ShardedServer server(f.index, cfg);
  const auto rep = server.run(stream);

  EXPECT_EQ(rep.faults.replicas_lost, 1u);
  EXPECT_EQ(rep.faults.replicas_rejoined, 1u);
  EXPECT_GT(rep.faults.catchup_ops, 0u);
  EXPECT_GT(rep.faults.catchup_seconds, 0.0);
  EXPECT_EQ(rep.faults.degraded_points, 0u);
  check_answered_against_oracle(rep, stream, snapshots,
                                cfg.batch.max_range_results);
}

// Replication is invisible to results: a fault-free K=3 run answers every
// request with exactly the same values as the unreplicated K=1 run over
// the same stream (extra replicas only add dispatch slots, never change
// what any query sees).
TEST(ReplicaFailover, ReplicationDoesNotChangeAnswers) {
  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 5000;
  spec.update_fraction = 0.20;
  spec.range_fraction = 0.05;
  spec.seed = 41;

  auto run_with = [&](unsigned replicas) {
    ShardedFixture f(4);
    const auto stream = serve::make_open_loop(f.keys, spec);
    ShardedServer server(f.index, replicated_config(replicas));
    return server.run(stream);
  };

  const auto base = run_with(1);
  const auto replicated = run_with(3);

  // Extra replicas can reorder completions (overlapping sub-batches), so
  // match responses by request id, not emission order.
  ASSERT_EQ(base.responses.size(), replicated.responses.size());
  std::map<std::uint64_t, const serve::Response*> by_id;
  for (const auto& r : replicated.responses) by_id[r.id] = &r;
  for (const auto& a : base.responses) {
    const auto it = by_id.find(a.id);
    ASSERT_NE(it, by_id.end());
    const auto& b = *it->second;
    EXPECT_EQ(a.value, b.value) << "request " << a.id;
    EXPECT_EQ(a.range_values, b.range_values) << "request " << a.id;
    EXPECT_EQ(a.dropped, b.dropped) << "request " << a.id;
  }
  EXPECT_EQ(base.completed, replicated.completed);
}

// Determinism gate: the same replicated run with the same fault plan
// replays to identical responses and identical fault tallies.
TEST(ReplicaFailover, ReplicatedFailoverReplaysDeterministically) {
  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 6000;
  spec.update_fraction = 0.20;
  spec.seed = 43;

  auto run_once = [&] {
    ShardedFixture f(4);
    const auto stream = serve::make_open_loop(f.keys, spec);
    auto cfg = replicated_config(3);
    cfg.faults = fault::FaultPlan::parse(
        "replica-lost@0.0004:shard=1,replica=2,repair=0.0006;"
        "slow@0.0002:shard=3,factor=4,duration=0.0003");
    ShardedServer server(f.index, cfg);
    return server.run(stream);
  };

  const auto a = run_once();
  const auto b = run_once();

  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].value, b.responses[i].value);
    EXPECT_DOUBLE_EQ(a.responses[i].completion, b.responses[i].completion);
  }
  EXPECT_EQ(a.faults.replicas_lost, b.faults.replicas_lost);
  EXPECT_EQ(a.faults.replicas_rejoined, b.faults.replicas_rejoined);
  EXPECT_EQ(a.faults.catchup_ops, b.faults.catchup_ops);
  EXPECT_DOUBLE_EQ(a.faults.catchup_seconds, b.faults.catchup_seconds);
  EXPECT_EQ(a.replica_batches, b.replica_batches);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace harmonia::shard
