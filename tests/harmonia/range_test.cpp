#include "harmonia/range.hpp"

#include <gtest/gtest.h>

#include "btree/btree.hpp"
#include "common/rng.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 4;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

struct RangeFixture {
  gpusim::Device dev{test_spec()};
  std::vector<Key> keys = queries::make_tree_keys(3000, 1);
  HarmoniaTree tree = HarmoniaTree::from_btree(btree::make_tree(keys, 16));
  HarmoniaDeviceImage img = HarmoniaDeviceImage::upload(dev, tree);

  struct Out {
    std::vector<std::uint32_t> counts;
    std::vector<Value> values;
    RangeStats stats;
  };

  Out run(const std::vector<Key>& los, const std::vector<Key>& his,
          unsigned max_results = 64) {
    auto d_lo = dev.memory().malloc<Key>(los.size());
    auto d_hi = dev.memory().malloc<Key>(his.size());
    dev.memory().copy_to_device(d_lo, std::span<const Key>(los));
    dev.memory().copy_to_device(d_hi, std::span<const Key>(his));
    auto d_vals = dev.memory().malloc<Value>(los.size() * max_results);
    auto d_counts = dev.memory().malloc<std::uint32_t>(los.size());
    RangeConfig cfg;
    cfg.max_results = max_results;
    Out out;
    out.stats = range_batch(dev, img, d_lo, d_hi, los.size(), d_vals, d_counts, cfg);
    out.counts.resize(los.size());
    out.values.resize(los.size() * max_results);
    dev.memory().copy_to_host(std::span<std::uint32_t>(out.counts), d_counts);
    dev.memory().copy_to_host(std::span<Value>(out.values), d_vals);
    return out;
  }
};

TEST(RangeKernel, MatchesHostRange) {
  RangeFixture f;
  Xoshiro256 rng(2);
  std::vector<Key> los, his;
  for (int i = 0; i < 20; ++i) {
    std::size_t a = rng.next_below(f.keys.size());
    std::size_t b = std::min(a + 1 + rng.next_below(40), f.keys.size() - 1);
    los.push_back(f.keys[a]);
    his.push_back(f.keys[b]);
  }
  const auto out = f.run(los, his);
  for (std::size_t q = 0; q < los.size(); ++q) {
    const auto expect = f.tree.range(los[q], his[q], 64);
    ASSERT_EQ(out.counts[q], expect.size()) << "query " << q;
    for (std::size_t j = 0; j < expect.size(); ++j) {
      ASSERT_EQ(out.values[q * 64 + j], expect[j].value);
    }
  }
}

TEST(RangeKernel, EmptyRange) {
  RangeFixture f;
  // lo and hi in a gap between keys: no results.
  const auto missing = queries::make_missing_keys(f.keys, 1, 3);
  const auto out = f.run({missing[0]}, {missing[0]});
  EXPECT_EQ(out.counts[0], 0u);
}

TEST(RangeKernel, SingleKeyRange) {
  RangeFixture f;
  const Key k = f.keys[1234];
  const auto out = f.run({k}, {k});
  ASSERT_EQ(out.counts[0], 1u);
  EXPECT_EQ(out.values[0], f.tree.search(k).value());
}

TEST(RangeKernel, MaxResultsCaps) {
  RangeFixture f;
  const auto out = f.run({f.keys.front()}, {f.keys.back()}, 16);
  EXPECT_EQ(out.counts[0], 16u);
  const auto expect = f.tree.range(f.keys.front(), f.keys.back(), 16);
  for (std::size_t j = 0; j < 16; ++j) ASSERT_EQ(out.values[j], expect[j].value);
}

TEST(RangeKernel, RangeToEndOfTree) {
  RangeFixture f;
  const Key lo = f.keys[f.keys.size() - 5];
  const auto out = f.run({lo}, {~std::uint64_t{0} - 1});
  EXPECT_EQ(out.counts[0], 5u);
}

TEST(RangeKernel, LeafScanIsCoalesced) {
  // §3.2.1: "Since the key region is a consecutive array, range queries
  // can achieve high performance" — the scan phase must not be memory
  // divergent.
  RangeFixture f;
  f.dev.flush_caches();
  const auto out = f.run({f.keys[100]}, {f.keys[160]});
  ASSERT_EQ(out.counts[0], 61u);
  
  // Each warp-wide 64-bit scan step needs 2-3 line transactions; scattered
  // point loads would need up to 32. Coalescing keeps the ratio small.
  EXPECT_LT(static_cast<double>(out.stats.metrics.transactions) /
                static_cast<double>(out.stats.metrics.loads),
            4.0);
}

}  // namespace
}  // namespace harmonia
