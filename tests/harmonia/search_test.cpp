#include "harmonia/search.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

#include <algorithm>

#include "btree/btree.hpp"
#include "common/rng.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

struct Fixture {
  gpusim::Device dev{test_spec()};
  std::vector<Key> keys;
  HarmoniaTree tree{make_tree(2000, 16)};
  HarmoniaDeviceImage img;

  HarmoniaTree make_tree(std::uint64_t n, unsigned fanout) {
    keys = queries::make_tree_keys(n, 1);
    return HarmoniaTree::from_btree(btree::make_tree(keys, fanout));
  }

  Fixture() { img = HarmoniaDeviceImage::upload(dev, tree); }

  std::vector<Value> run(std::span<const Key> qs, const SearchConfig& cfg = {},
                         SearchStats* stats_out = nullptr) {
    auto d_q = dev.memory().malloc<Key>(qs.size());
    dev.memory().copy_to_device(d_q, qs);
    auto d_out = dev.memory().malloc<Value>(qs.size());
    const auto stats = search_batch(dev, img, d_q, qs.size(), d_out, cfg);
    if (stats_out != nullptr) *stats_out = stats;
    std::vector<Value> out(qs.size());
    dev.memory().copy_to_host(std::span<Value>(out), d_out);
    return out;
  }
};

TEST(Search, HitsMatchHostSearch) {
  Fixture f;
  const auto qs = queries::make_queries(f.keys, 500, queries::Distribution::kUniform, 2);
  const auto out = f.run(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(out[i], f.tree.search(qs[i]).value()) << "query " << i;
  }
}

TEST(Search, MissesReturnSentinel) {
  Fixture f;
  const auto missing = queries::make_missing_keys(f.keys, 200, 3);
  const auto out = f.run(missing);
  for (Value v : out) ASSERT_EQ(v, kNotFound);
}

TEST(Search, MixedHitsAndMisses) {
  Fixture f;
  std::vector<Key> qs;
  for (int i = 0; i < 100; ++i) {
    qs.push_back(f.keys[static_cast<std::size_t>(i) * 7 % f.keys.size()]);
  }
  const auto missing = queries::make_missing_keys(f.keys, 100, 4);
  qs.insert(qs.end(), missing.begin(), missing.end());
  const auto out = f.run(qs);
  for (std::size_t i = 0; i < 100; ++i) ASSERT_NE(out[i], kNotFound);
  for (std::size_t i = 100; i < 200; ++i) ASSERT_EQ(out[i], kNotFound);
}

TEST(Search, SingleQuery) {
  Fixture f;
  const std::vector<Key> qs{f.keys[42]};
  const auto out = f.run(qs);
  EXPECT_EQ(out[0], f.tree.search(f.keys[42]).value());
}

TEST(Search, NonMultipleOfWarpBatch) {
  Fixture f;
  const auto qs = queries::make_queries(f.keys, 333, queries::Distribution::kUniform, 5);
  const auto out = f.run(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(out[i], f.tree.search(qs[i]).value());
  }
}

TEST(Search, GroupSizeSweepGivesSameAnswers) {
  Fixture f;
  const auto qs = queries::make_queries(f.keys, 256, queries::Distribution::kUniform, 6);
  const auto baseline = f.run(qs);
  for (unsigned gs : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SearchConfig cfg;
    cfg.group_size = gs;
    const auto out = f.run(qs, cfg);
    ASSERT_EQ(out, baseline) << "group size " << gs;
  }
}

TEST(Search, EarlyExitOffSameAnswers) {
  Fixture f;
  const auto qs = queries::make_queries(f.keys, 256, queries::Distribution::kUniform, 7);
  SearchConfig with, without;
  without.early_exit = false;
  EXPECT_EQ(f.run(qs, with), f.run(qs, without));
}

TEST(Search, EarlyExitReducesSteps) {
  Fixture f;
  const auto qs = queries::make_queries(f.keys, 1024, queries::Distribution::kUniform, 8);
  SearchConfig narrow;
  narrow.group_size = 4;  // 15 keys/node -> 4 chunks: early exit matters
  SearchStats with_stats, without_stats;
  narrow.early_exit = true;
  f.run(qs, narrow, &with_stats);
  narrow.early_exit = false;
  f.run(qs, narrow, &without_stats);
  EXPECT_LT(with_stats.chunk_steps, without_stats.chunk_steps);
}

TEST(Search, NarrowGroupsPackMoreQueriesPerWarp) {
  Fixture f;
  const auto qs = queries::make_queries(f.keys, 1024, queries::Distribution::kUniform, 9);
  SearchStats wide, narrow;
  SearchConfig cfg;
  cfg.group_size = 16;
  f.run(qs, cfg, &wide);
  cfg.group_size = 4;
  f.run(qs, cfg, &narrow);
  EXPECT_EQ(wide.warps, 1024u / 2);
  EXPECT_EQ(narrow.warps, 1024u / 8);
}

TEST(Search, SortedQueriesCoalesceBetter) {
  // The PSA premise (§4.1): sorted adjacent queries share traversal paths,
  // so per-warp transactions drop.
  Fixture f;
  auto qs = queries::make_queries(f.keys, 4096, queries::Distribution::kUniform, 10);
  SearchStats random_stats, sorted_stats;
  f.dev.flush_caches();
  f.run(qs, {}, &random_stats);
  std::sort(qs.begin(), qs.end());
  f.dev.flush_caches();
  f.run(qs, {}, &sorted_stats);
  EXPECT_LT(sorted_stats.metrics.transactions, random_stats.metrics.transactions);
  EXPECT_LE(sorted_stats.metrics.memory_divergence(),
            random_stats.metrics.memory_divergence());
}

TEST(Search, ResolveGroupSize) {
  const auto spec = test_spec();
  EXPECT_EQ(resolve_group_size(spec, 64, 0), 32u);   // capped at warp
  EXPECT_EQ(resolve_group_size(spec, 8, 0), 8u);     // fanout-based
  EXPECT_EQ(resolve_group_size(spec, 16, 4), 4u);    // explicit
  EXPECT_THROW(resolve_group_size(spec, 16, 3), ContractViolation);   // not pow2
  EXPECT_THROW(resolve_group_size(spec, 16, 64), ContractViolation);  // > warp
}

TEST(Search, MetricsAreAccumulated) {
  Fixture f;
  const auto qs = queries::make_queries(f.keys, 512, queries::Distribution::kUniform, 11);
  SearchStats stats;
  f.run(qs, {}, &stats);
  EXPECT_EQ(stats.queries, 512u);
  EXPECT_GT(stats.metrics.loads, 0u);
  EXPECT_GT(stats.metrics.transactions, 0u);
  EXPECT_GT(stats.metrics.steps, 0u);
  EXPECT_GT(stats.metrics.elapsed_cycles(f.dev.spec()), 0.0);
  EXPECT_GT(stats.metrics.throughput(f.dev.spec(), stats.queries), 0.0);
}

class SearchFanoutSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SearchFanoutSweep, CorrectAcrossFanouts) {
  const unsigned fanout = GetParam();
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(1200, fanout);
  const auto tree = HarmoniaTree::from_btree(btree::make_tree(keys, fanout));
  const auto img = HarmoniaDeviceImage::upload(dev, tree);
  const auto qs = queries::make_queries(keys, 300, queries::Distribution::kUniform, 12);

  auto d_q = dev.memory().malloc<Key>(qs.size());
  dev.memory().copy_to_device(d_q, std::span<const Key>(qs));
  auto d_out = dev.memory().malloc<Value>(qs.size());
  search_batch(dev, img, d_q, qs.size(), d_out, {});
  std::vector<Value> out(qs.size());
  dev.memory().copy_to_host(std::span<Value>(out), d_out);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(out[i], tree.search(qs[i]).value());
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, SearchFanoutSweep,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

}  // namespace
}  // namespace harmonia
