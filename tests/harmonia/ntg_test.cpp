#include "harmonia/ntg.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

#include <algorithm>

#include "btree/btree.hpp"
#include "harmonia/psa.hpp"
#include "harmonia/search.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

HarmoniaTree make(std::uint64_t n, unsigned fanout, std::uint64_t seed = 1) {
  const auto keys = queries::make_tree_keys(n, seed);
  return HarmoniaTree::from_btree(btree::make_tree(keys, fanout));
}

std::vector<Key> sample_queries(const HarmoniaTree& tree, std::uint64_t n,
                                std::uint64_t seed) {
  // NTG profiles the post-PSA stream: partially sort the sample.
  const auto keys = queries::make_tree_keys(tree.num_keys(), seed);
  auto qs = queries::make_queries(keys, n, queries::Distribution::kUniform, seed + 1);
  auto plan = psa_prepare(qs, tree.num_keys(), gpusim::titan_v(), PsaMode::kPartial);
  return plan.queries;
}

TEST(Ntg, StepsDecreaseWithWiderGroups) {
  const auto tree = make(5000, 64);
  const auto qs = sample_queries(tree, 1000, 1);
  const auto spec = gpusim::titan_v();
  double prev = 0.0;
  for (unsigned gs : {32u, 16u, 8u, 4u, 2u, 1u}) {
    const double s = profile_avg_max_steps(tree, qs, spec, gs);
    EXPECT_GE(s, prev) << "narrower groups cannot need fewer steps (gs=" << gs << ")";
    prev = s;
  }
}

TEST(Ntg, WideGroupNeedsOneStepPerLevelFanout8) {
  // fanout 8 => 7 keys; a 8-lane group covers the node in one chunk, so
  // every level costs exactly one step.
  const auto tree = make(2000, 8);
  const auto qs = sample_queries(tree, 512, 2);
  EXPECT_DOUBLE_EQ(profile_avg_max_steps(tree, qs, gpusim::titan_v(), 8), 1.0);
}

TEST(Ntg, ChoiceIsPowerOfTwoWithinRange) {
  for (unsigned fanout : {8u, 16u, 32u, 64u, 128u}) {
    const auto tree = make(4000, fanout, fanout);
    const auto qs = sample_queries(tree, 1000, fanout);
    const auto choice = choose_group_size(tree, qs, gpusim::titan_v());
    EXPECT_GE(choice.group_size, 1u);
    EXPECT_LE(choice.group_size, 32u);
    EXPECT_EQ(choice.group_size & (choice.group_size - 1), 0u);
  }
}

TEST(Ntg, NarrowsForLargeFanout) {
  // §4.2: for large fanouts most comparisons are useless, so the model
  // must narrow below the fanout-based width.
  const auto tree = make(8000, 64);
  const auto qs = sample_queries(tree, 1000, 3);
  const auto choice = choose_group_size(tree, qs, gpusim::titan_v());
  EXPECT_LT(choice.group_size, 32u);
}

TEST(Ntg, CandidatesOrderedWidestFirst) {
  const auto tree = make(3000, 64);
  const auto qs = sample_queries(tree, 500, 4);
  const auto choice = choose_group_size(tree, qs, gpusim::titan_v());
  ASSERT_GE(choice.candidates.size(), 2u);
  for (std::size_t i = 1; i < choice.candidates.size(); ++i) {
    EXPECT_EQ(choice.candidates[i].group_size, choice.candidates[i - 1].group_size / 2);
  }
  EXPECT_DOUBLE_EQ(choice.candidates.front().predicted_speedup, 1.0);
}

TEST(Ntg, ChosenSizeHasBestPredictedSpeedupAmongAccepted) {
  const auto tree = make(6000, 128);
  const auto qs = sample_queries(tree, 1000, 5);
  const auto choice = choose_group_size(tree, qs, gpusim::titan_v());
  // The chosen size's candidate must predict at least the widest group's
  // throughput.
  const auto it = std::find_if(choice.candidates.begin(), choice.candidates.end(),
                               [&](const NtgCandidate& c) {
                                 return c.group_size == choice.group_size;
                               });
  ASSERT_NE(it, choice.candidates.end());
  EXPECT_GE(it->predicted_speedup, 1.0);
}

TEST(Ntg, ModelValidatedAgainstSimulatedKernel) {
  // The paper: "the NTG size of this model is basically consistent with
  // the NTG size of the best performance". Check the model's choice is
  // within one halving of the simulator's empirical best.
  // Use enough queries that every group size keeps all SMs at full
  // occupancy — the regime Equation 3 assumes (memory latency hidden).
  const auto tree = make(1 << 16, 64);
  const auto qs = sample_queries(tree, 1 << 15, 6);
  const auto spec = gpusim::titan_v();
  const auto choice = choose_group_size(tree, qs, spec);

  gpusim::Device dev([] {
    auto s = gpusim::titan_v();
    s.global_mem_bytes = 256 << 20;
    return s;
  }());
  const auto img = HarmoniaDeviceImage::upload(dev, tree);
  auto d_q = dev.memory().malloc<Key>(qs.size());
  dev.memory().copy_to_device(d_q, std::span<const Key>(qs));
  auto d_out = dev.memory().malloc<Value>(qs.size());

  double best_tp = 0.0;
  unsigned best_gs = 0;
  for (unsigned gs : {32u, 16u, 8u, 4u, 2u, 1u}) {
    SearchConfig cfg;
    cfg.group_size = gs;
    dev.flush_caches();
    const auto stats = search_batch(dev, img, d_q, qs.size(), d_out, cfg);
    const double tp = stats.metrics.throughput(dev.spec(), qs.size());
    if (tp > best_tp) {
      best_tp = tp;
      best_gs = gs;
    }
  }
  // "Basically consistent": within a factor of 4 (two halvings) of the
  // empirical optimum, and strictly better than the fanout-based width.
  const double ratio = static_cast<double>(choice.group_size) / best_gs;
  EXPECT_GE(ratio, 0.25);
  EXPECT_LE(ratio, 4.0);
}

TEST(Ntg, RejectsBadGroupSize) {
  const auto tree = make(100, 8);
  const auto qs = sample_queries(tree, 64, 7);
  EXPECT_THROW(profile_avg_max_steps(tree, qs, gpusim::titan_v(), 3), ContractViolation);
  EXPECT_THROW(profile_avg_max_steps(tree, qs, gpusim::titan_v(), 64), ContractViolation);
}

}  // namespace
}  // namespace harmonia
