// Golden accounting: on a crafted 2-level fanout-8 tree with one warp of
// 4 queries, the search kernel must issue exactly the accesses and steps
// the SIMT algorithm prescribes. This pins the accounting semantics every
// figure harness depends on (a silent extra gather would skew Figures
// 2/11/12/13 at once).
#include <gtest/gtest.h>

#include "btree/btree.hpp"
#include "harmonia/search.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 2;
  spec.global_mem_bytes = 64 << 20;
  return spec;
}

struct Golden {
  gpusim::Device dev{test_spec()};
  std::vector<Key> keys = queries::make_tree_keys(20, 1);
  HarmoniaTree tree = HarmoniaTree::from_btree(btree::make_tree(keys, 8, 0.69));
  HarmoniaDeviceImage img = HarmoniaDeviceImage::upload(dev, tree);

  SearchStats run(const std::vector<Key>& qs, const SearchConfig& cfg) {
    auto d_q = dev.memory().malloc<Key>(qs.size());
    dev.memory().copy_to_device(d_q, std::span<const Key>(qs));
    auto d_out = dev.memory().malloc<Value>(qs.size());
    return search_batch(dev, img, d_q, qs.size(), d_out, cfg);
  }
};

TEST(SearchAccounting, ExactAccessCountsOneWarp) {
  Golden g;
  ASSERT_EQ(g.tree.height(), 2u);
  // 4 hit-queries in one warp (fanout-based groups: GS=8, 4 queries/warp).
  const std::vector<Key> qs{g.keys[1], g.keys[6], g.keys[11], g.keys[16]};
  SearchConfig cfg;  // defaults: fanout-based group, early exit
  const auto stats = g.run(qs, cfg);

  EXPECT_EQ(stats.warps, 1u);
  // Warp-wide accesses, in order: query load, level-0 key chunk,
  // prefix-sum load, leaf key chunk, value fetch, result store.
  EXPECT_EQ(stats.metrics.loads, 6u);
  // SIMT steps: broadcast, level-0 comparison chunk, child-index
  // arithmetic, leaf comparison chunk. (kpn=7 < GS=8: one chunk/level.)
  EXPECT_EQ(stats.metrics.steps, 4u);
  EXPECT_EQ(stats.chunk_steps, 2u);
  // No mask ever covers all 32 lanes (7 active lanes per 8-wide group).
  EXPECT_EQ(stats.metrics.coherent_steps, 0u);
}

TEST(SearchAccounting, MissSkipsValueFetch) {
  Golden g;
  const auto missing = queries::make_missing_keys(g.keys, 4, 2);
  SearchConfig cfg;
  const auto stats = g.run(missing, cfg);
  // Same sequence minus the value gather: 5 warp-wide accesses.
  EXPECT_EQ(stats.metrics.loads, 5u);
}

TEST(SearchAccounting, QueryLoadToggleDropsExactlyOneAccess) {
  Golden g;
  const std::vector<Key> qs{g.keys[1], g.keys[6], g.keys[11], g.keys[16]};
  SearchConfig with, without;
  without.account_query_load = false;
  const auto a = g.run(qs, with);
  g.dev.flush_caches();
  const auto b = g.run(qs, without);
  EXPECT_EQ(a.metrics.loads, b.metrics.loads + 1);
  EXPECT_EQ(a.metrics.steps, b.metrics.steps);
}

TEST(SearchAccounting, TransactionsScaleWithDivergentWarps) {
  Golden g;
  // Two warps' worth of queries, each warp hitting 4 distinct leaves:
  // leaf-level chunks cannot coalesce across groups.
  std::vector<Key> qs{g.keys[0], g.keys[5],  g.keys[10], g.keys[15],
                      g.keys[2], g.keys[7],  g.keys[12], g.keys[17]};
  SearchConfig cfg;
  const auto stats = g.run(qs, cfg);
  EXPECT_EQ(stats.warps, 2u);
  EXPECT_EQ(stats.metrics.loads, 12u);  // 6 per warp
  // Leaf chunk of each warp touches >= 2 distinct leaf nodes.
  EXPECT_GT(stats.metrics.divergent_loads, 0u);
}

TEST(SearchAccounting, NarrowGroupsMultiplyChunkSteps) {
  Golden g;
  const std::vector<Key> qs{g.keys[1], g.keys[6], g.keys[11], g.keys[16],
                            g.keys[3], g.keys[8], g.keys[13], g.keys[18]};
  SearchConfig narrow;
  narrow.group_size = 2;  // kpn=7 -> up to 4 chunks per level
  narrow.early_exit = false;
  const auto stats = g.run(qs, narrow);
  EXPECT_EQ(stats.warps, 1u);  // 16 queries/warp capacity, 8 queries used
  // Without early exit every level scans ceil(7/2) = 4 chunks.
  EXPECT_EQ(stats.chunk_steps, 2u * 4u);
}

}  // namespace
}  // namespace harmonia
