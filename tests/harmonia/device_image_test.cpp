#include "harmonia/device_image.hpp"

#include <gtest/gtest.h>

#include "btree/btree.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 4;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

HarmoniaTree make(std::uint64_t n, unsigned fanout) {
  const auto keys = queries::make_tree_keys(n, n);
  return HarmoniaTree::from_btree(btree::make_tree(keys, fanout));
}

TEST(DeviceImage, UploadRoundTripsKeyRegion) {
  gpusim::Device dev(test_spec());
  const auto tree = make(2000, 16);
  const auto img = HarmoniaDeviceImage::upload(dev, tree);
  EXPECT_EQ(img.num_nodes, tree.num_nodes());
  EXPECT_EQ(img.first_leaf, tree.first_leaf_index());
  EXPECT_EQ(img.height, tree.height());
  for (std::uint32_t n = 0; n < tree.num_nodes(); n += 13) {
    for (unsigned s = 0; s < tree.keys_per_node(); ++s) {
      ASSERT_EQ(dev.memory().read<Key>(img.node_key_addr(n, s)), tree.node_keys(n)[s]);
    }
  }
}

TEST(DeviceImage, TopLevelsInConstantMemory) {
  gpusim::Device dev(test_spec());
  const auto tree = make(5000, 8);
  const auto img = HarmoniaDeviceImage::upload(dev, tree);
  ASSERT_GT(img.ps_const_count, 0u);
  // The root's prefix-sum entry routes to the constant space.
  EXPECT_TRUE(gpusim::is_const_address(img.ps_addr(0)));
  // Prefix-sum values agree between the two copies.
  for (std::uint32_t n = 0; n < img.ps_const_count; ++n) {
    ASSERT_EQ(dev.memory().read<std::uint32_t>(img.ps_const.element_addr(n)),
              dev.memory().read<std::uint32_t>(img.ps_global.element_addr(n)));
  }
}

TEST(DeviceImage, ConstPlacementRespectsBudget) {
  gpusim::Device dev(test_spec());
  const auto tree = make(20000, 8);  // many nodes
  const auto img = HarmoniaDeviceImage::upload(dev, tree, /*const_budget_bytes=*/1 << 10);
  EXPECT_LE(img.ps_const_count * sizeof(std::uint32_t), 1u << 10);
  EXPECT_LT(img.ps_const_count, tree.num_nodes());
  // Deep nodes route to global memory.
  EXPECT_FALSE(gpusim::is_const_address(img.ps_addr(tree.num_nodes() - 1)));
}

TEST(DeviceImage, WholeTreeFitsConstWhenSmall) {
  gpusim::Device dev(test_spec());
  const auto tree = make(100, 8);
  const auto img = HarmoniaDeviceImage::upload(dev, tree);
  EXPECT_EQ(img.ps_const_count, tree.num_nodes());
}

TEST(DeviceImage, ValueRegionUploaded) {
  gpusim::Device dev(test_spec());
  const auto tree = make(1000, 16);
  const auto img = HarmoniaDeviceImage::upload(dev, tree);
  const std::uint32_t leaf = tree.first_leaf_index();
  for (unsigned s = 0; s < tree.node_key_count(leaf); ++s) {
    ASSERT_EQ(dev.memory().read<Value>(img.value_addr(leaf, s)),
              tree.value_region()[tree.value_slot(leaf, s)]);
  }
}

TEST(DeviceImage, ZeroBudgetPutsEverythingGlobal) {
  gpusim::Device dev(test_spec());
  const auto tree = make(1000, 8);
  // A budget below one level's size keeps the prefix-sum array global;
  // ps_addr must still work for every node.
  const auto img = HarmoniaDeviceImage::upload(dev, tree, 2);
  EXPECT_EQ(img.ps_const_count, 0u);
  for (std::uint32_t n = 0; n < tree.num_nodes(); n += 97) {
    ASSERT_EQ(dev.memory().read<std::uint32_t>(img.ps_addr(n)), tree.prefix_sum()[n]);
  }
}

}  // namespace
}  // namespace harmonia
