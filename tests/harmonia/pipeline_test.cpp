#include "harmonia/pipeline.hpp"

#include <gtest/gtest.h>

#include "queries/workload.hpp"

namespace harmonia {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

struct PipelineFixture {
  gpusim::Device dev{test_spec()};
  std::vector<Key> keys = queries::make_tree_keys(1 << 14, 1);
  HarmoniaIndex index = [&] {
    std::vector<btree::Entry> entries;
    for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
    return HarmoniaIndex::build(dev, entries, {.fanout = 16});
  }();
};

TEST(Pipeline, ResultsMatchSingleBatch) {
  PipelineFixture f;
  const auto qs = queries::make_queries(f.keys, 5000, queries::Distribution::kUniform, 2);
  const auto single = f.index.search(qs);

  TransferModel link;
  PipelineOptions opts;
  opts.chunk_size = 700;  // deliberately not a divisor of 5000
  const auto piped = pipelined_search(f.index, qs, link, opts);
  EXPECT_EQ(piped.values, single.values);
  EXPECT_EQ(piped.chunks, (5000 + 699) / 700);
}

TEST(Pipeline, OverlapNeverSlowerThanSerial) {
  PipelineFixture f;
  const auto qs = queries::make_queries(f.keys, 8192, queries::Distribution::kUniform, 3);
  TransferModel link;
  PipelineOptions serial, overlapped;
  serial.chunk_size = overlapped.chunk_size = 1024;
  serial.overlap = false;
  overlapped.overlap = true;
  const auto s = pipelined_search(f.index, qs, link, serial);
  f.dev.flush_caches();
  const auto o = pipelined_search(f.index, qs, link, overlapped);
  EXPECT_LE(o.total_seconds, s.total_seconds * 1.001);
  EXPECT_GE(o.throughput, s.throughput * 0.999);
}

TEST(Pipeline, OverlapBoundedByBottleneckStage) {
  PipelineFixture f;
  const auto qs = queries::make_queries(f.keys, 8192, queries::Distribution::kUniform, 4);
  TransferModel link;
  PipelineOptions opts;
  opts.chunk_size = 1024;
  const auto r = pipelined_search(f.index, qs, link, opts);
  const double slowest = std::max(
      {r.upload_seconds, r.sort_seconds + r.kernel_seconds, r.download_seconds});
  EXPECT_GE(r.total_seconds, slowest);  // can't beat the bottleneck
  EXPECT_LE(r.total_seconds,            // fill/drain bounded by total work
            r.upload_seconds + r.sort_seconds + r.kernel_seconds +
                r.download_seconds);
  EXPECT_STRNE(r.bottleneck, "");
}

TEST(Pipeline, SlowLinkMakesTransferTheBottleneck) {
  PipelineFixture f;
  const auto qs = queries::make_queries(f.keys, 8192, queries::Distribution::kUniform, 5);
  TransferModel slow;
  slow.gigabytes_per_second = 0.001;  // pathological link
  slow.latency_seconds = 0.0;
  PipelineOptions opts;
  opts.chunk_size = 1024;
  const auto r = pipelined_search(f.index, qs, slow, opts);
  EXPECT_STREQ(r.bottleneck, "upload");  // queries are as big as results
  EXPECT_GT(r.upload_seconds, r.kernel_seconds);
}

TEST(Pipeline, SingleChunkFallsBackToSerial) {
  PipelineFixture f;
  const auto qs = queries::make_queries(f.keys, 100, queries::Distribution::kUniform, 6);
  TransferModel link;
  PipelineOptions opts;
  opts.chunk_size = 1 << 20;
  const auto r = pipelined_search(f.index, qs, link, opts);
  EXPECT_EQ(r.chunks, 1u);
  EXPECT_STREQ(r.bottleneck, "serial");
}

TEST(Pipeline, DispatchChunkMatchesSearchAndPipelineSums) {
  PipelineFixture f;
  const auto qs = queries::make_queries(f.keys, 1500, queries::Distribution::kUniform, 7);
  TransferModel link;
  QueryOptions qopts;

  std::vector<Value> out(qs.size());
  const auto t = dispatch_chunk(f.index, qs, link, qopts, out);
  f.dev.flush_caches();
  const auto direct = f.index.search(qs, qopts);
  EXPECT_EQ(out, direct.values);
  EXPECT_DOUBLE_EQ(t.sort_seconds, direct.sort_seconds);
  EXPECT_DOUBLE_EQ(t.kernel_seconds, direct.kernel_seconds);
  EXPECT_DOUBLE_EQ(t.upload_seconds, link.seconds(qs.size() * sizeof(Key)));
  EXPECT_DOUBLE_EQ(t.download_seconds, link.seconds(qs.size() * sizeof(Value)));
  EXPECT_DOUBLE_EQ(t.serial_seconds(),
                   t.upload_seconds + t.compute_seconds() + t.download_seconds);

  // A single-chunk pipelined_search is exactly one dispatch_chunk.
  f.dev.flush_caches();
  PipelineOptions opts;
  opts.chunk_size = qs.size();
  const auto piped = pipelined_search(f.index, qs, link, opts);
  EXPECT_EQ(piped.values, out);
  EXPECT_DOUBLE_EQ(piped.upload_seconds, t.upload_seconds);
  EXPECT_DOUBLE_EQ(piped.download_seconds, t.download_seconds);
}

TEST(Pipeline, ImageResyncSecondsMatchesRegions) {
  PipelineFixture f;
  TransferModel link;
  const auto& tree = f.index.tree();
  const double want = link.seconds(tree.key_region().size() * sizeof(Key)) +
                      link.seconds(tree.prefix_sum().size() * sizeof(std::uint32_t)) +
                      link.seconds(tree.value_region().size() * sizeof(Value));
  EXPECT_DOUBLE_EQ(image_resync_seconds(tree, link), want);
  EXPECT_GT(image_resync_seconds(tree, link), 3 * link.latency_seconds);
}

TEST(Pipeline, TransferModelMath) {
  TransferModel link;
  link.gigabytes_per_second = 10.0;
  link.latency_seconds = 1e-6;
  EXPECT_NEAR(link.seconds(10'000'000'000ULL), 1.0 + 1e-6, 1e-9);
  EXPECT_NEAR(link.seconds(0), 1e-6, 1e-12);
}

}  // namespace
}  // namespace harmonia
