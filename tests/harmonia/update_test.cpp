#include "harmonia/update.hpp"

#include <gtest/gtest.h>

#include <map>

#include "btree/btree.hpp"
#include "common/rng.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

using queries::OpKind;
using queries::UpdateOp;

struct UpdateFixture {
  std::vector<Key> keys;
  std::map<Key, Value> oracle;
  BatchUpdater updater;

  explicit UpdateFixture(std::uint64_t n = 2000, unsigned fanout = 8,
                         double fill = 0.69, std::uint64_t seed = 1)
      : keys(queries::make_tree_keys(n, seed)),
        updater(HarmoniaTree::from_btree(btree::make_tree(keys, fanout, fill))) {
    for (Key k : keys) oracle[k] = btree::value_for_key(k);
  }

  void apply_to_oracle(const std::vector<UpdateOp>& ops) {
    for (const auto& op : ops) {
      switch (op.kind) {
        case OpKind::kUpdate:
          if (auto it = oracle.find(op.key); it != oracle.end()) it->second = op.value;
          break;
        case OpKind::kInsert:
          oracle[op.key] = op.value;
          break;
        case OpKind::kDelete:
          oracle.erase(op.key);
          break;
      }
    }
  }

  void check_consistent() {
    const auto& tree = updater.tree();
    tree.validate();
    ASSERT_EQ(tree.num_keys(), oracle.size());
    for (const auto& [k, v] : oracle) {
      const auto got = tree.search(k);
      ASSERT_TRUE(got.has_value()) << "missing key " << k;
      ASSERT_EQ(*got, v) << "wrong value for " << k;
    }
  }
};

TEST(BatchUpdater, PureUpdatesInPlace) {
  UpdateFixture f;
  std::vector<UpdateOp> ops;
  Xoshiro256 rng(2);
  for (int i = 0; i < 500; ++i) {
    const Key k = f.keys[rng.next_below(f.keys.size())];
    ops.push_back({OpKind::kUpdate, k, rng.next()});
  }
  f.apply_to_oracle(ops);
  const auto stats = f.updater.apply(ops);
  EXPECT_EQ(stats.updates, 500u);
  EXPECT_EQ(stats.fine_path_ops, 500u);
  EXPECT_EQ(stats.coarse_path_ops, 0u);
  EXPECT_FALSE(stats.rebuilt);
  EXPECT_EQ(stats.failed, 0u);
  f.check_consistent();
}

TEST(BatchUpdater, UpdateMissingKeyFails) {
  UpdateFixture f;
  const auto missing = queries::make_missing_keys(f.keys, 10, 3);
  std::vector<UpdateOp> ops;
  for (Key k : missing) ops.push_back({OpKind::kUpdate, k, 1});
  const auto stats = f.updater.apply(ops);
  EXPECT_EQ(stats.failed, 10u);
  f.check_consistent();
}

TEST(BatchUpdater, InsertsWithoutSplitStayFine) {
  UpdateFixture f(2000, 8, 0.5, 4);  // half-full leaves: room to insert
  const auto fresh = queries::make_missing_keys(f.keys, 50, 5);
  std::vector<UpdateOp> ops;
  for (Key k : fresh) ops.push_back({OpKind::kInsert, k, k});
  f.apply_to_oracle(ops);
  const auto stats = f.updater.apply(ops);
  EXPECT_EQ(stats.inserts, 50u);
  EXPECT_GT(stats.fine_path_ops, 0u);
  f.check_consistent();
}

TEST(BatchUpdater, InsertsIntoFullLeavesSplit) {
  UpdateFixture f(2000, 8, 1.0, 6);  // full leaves: every insert splits
  const auto fresh = queries::make_missing_keys(f.keys, 100, 7);
  std::vector<UpdateOp> ops;
  for (Key k : fresh) ops.push_back({OpKind::kInsert, k, k * 2});
  f.apply_to_oracle(ops);
  const auto stats = f.updater.apply(ops);
  EXPECT_EQ(stats.coarse_path_ops, 100u);
  EXPECT_TRUE(stats.rebuilt);
  EXPECT_GT(stats.aux_nodes, 0u);
  EXPECT_GT(stats.moved_slots, 0u);
  f.check_consistent();
}

TEST(BatchUpdater, MixedPaperBatch) {
  // Fig. 14 mix: 5% inserts, 95% updates.
  UpdateFixture f(5000, 16, 0.9, 8);
  queries::BatchSpec spec;
  spec.size = 2000;
  spec.insert_fraction = 0.05;
  spec.seed = 9;
  const auto ops = queries::make_update_batch(f.keys, spec);
  f.apply_to_oracle(ops);
  const auto stats = f.updater.apply(ops);
  EXPECT_EQ(stats.total_ops(), 2000u);
  EXPECT_EQ(stats.failed, 0u);
  f.check_consistent();
}

TEST(BatchUpdater, DeletesInPlace) {
  UpdateFixture f(2000, 16, 0.69, 10);
  std::vector<UpdateOp> ops;
  // Delete every 10th key: leaves keep >1 key, so the fine path suffices.
  for (std::size_t i = 0; i < f.keys.size(); i += 10) {
    ops.push_back({OpKind::kDelete, f.keys[i], 0});
  }
  f.apply_to_oracle(ops);
  const auto stats = f.updater.apply(ops);
  EXPECT_EQ(stats.deletes, ops.size());
  EXPECT_EQ(stats.failed, 0u);
  f.check_consistent();
}

TEST(BatchUpdater, DeleteWholeLeafTakesCoarsePath) {
  UpdateFixture f(500, 8, 0.69, 11);
  // Delete an entire leaf's keys: the last one is a merge.
  const auto& tree = f.updater.tree();
  const std::uint32_t leaf = tree.first_leaf_index();
  const auto victims = tree.leaf_entries(leaf);
  ASSERT_GT(victims.size(), 1u);
  std::vector<UpdateOp> ops;
  for (const auto& e : victims) ops.push_back({OpKind::kDelete, e.key, 0});
  f.apply_to_oracle(ops);
  const auto stats = f.updater.apply(ops);
  EXPECT_GT(stats.coarse_path_ops, 0u);
  EXPECT_TRUE(stats.rebuilt);
  EXPECT_EQ(stats.failed, 0u);
  f.check_consistent();
}

TEST(BatchUpdater, InsertThenUpdateSameBatchUsesAux) {
  UpdateFixture f(1000, 8, 1.0, 12);
  const auto fresh = queries::make_missing_keys(f.keys, 5, 13);
  std::vector<UpdateOp> ops;
  for (Key k : fresh) ops.push_back({OpKind::kInsert, k, 1});
  // Updates to keys that now live in aux nodes.
  for (Key k : fresh) ops.push_back({OpKind::kUpdate, k, 42});
  f.apply_to_oracle(ops);
  const auto stats = f.updater.apply(ops);
  EXPECT_EQ(stats.failed, 0u);
  f.check_consistent();
  for (Key k : fresh) EXPECT_EQ(f.updater.tree().search(k).value(), 42u);
}

TEST(BatchUpdater, SequentialBatchesCompose) {
  UpdateFixture f(3000, 16, 0.8, 14);
  Xoshiro256 rng(15);
  for (int batch = 0; batch < 5; ++batch) {
    queries::BatchSpec spec;
    spec.size = 500;
    spec.insert_fraction = 0.2;
    spec.delete_fraction = 0.1;
    spec.seed = static_cast<std::uint64_t>(batch) + 100;
    // Build the batch against the updater's *current* key set.
    std::vector<Key> current;
    for (const auto& [k, v] : f.oracle) current.push_back(k);
    const auto ops = queries::make_update_batch(current, spec);
    f.apply_to_oracle(ops);
    f.updater.apply(ops);
    f.check_consistent();
  }
}

TEST(BatchUpdater, MultithreadedMatchesOracle) {
  // Batch < half the key set so updates sample without replacement and
  // the outcome is thread-schedule independent.
  UpdateFixture f(8000, 16, 0.9, 16);
  queries::BatchSpec spec;
  spec.size = 3000;
  spec.insert_fraction = 0.1;
  spec.seed = 17;
  const auto ops = queries::make_update_batch(f.keys, spec);
  f.apply_to_oracle(ops);
  const auto stats = f.updater.apply(ops, /*threads=*/4);
  EXPECT_EQ(stats.total_ops(), 3000u);
  f.check_consistent();
}

TEST(BatchUpdater, MultithreadedDisjointUpdatesKeepAllValues) {
  // Every op touches a distinct key, so the result is schedule-independent
  // even with many threads hammering the two-grained locks.
  UpdateFixture f(4000, 8, 1.0, 18);
  std::vector<UpdateOp> ops;
  for (std::size_t i = 0; i < f.keys.size(); i += 2) {
    ops.push_back({OpKind::kUpdate, f.keys[i], f.keys[i] ^ 0xF00D});
  }
  f.apply_to_oracle(ops);
  f.updater.apply(ops, 8);
  f.check_consistent();
}

TEST(BatchUpdater, StatsTimingsPopulated) {
  UpdateFixture f;
  std::vector<UpdateOp> ops{{OpKind::kUpdate, f.keys[0], 1}};
  const auto stats = f.updater.apply(ops);
  EXPECT_GE(stats.apply_seconds, 0.0);
  EXPECT_GE(stats.rebuild_seconds, 0.0);
  EXPECT_GT(stats.ops_per_second(), 0.0);
}

}  // namespace
}  // namespace harmonia
