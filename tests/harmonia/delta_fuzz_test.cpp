// Differential fuzz harness for the incremental update path
// (docs/serving.md#epoch-pipeline): seeded random insert/update/delete
// batches drive patch_update/commit_patch with natural exhaustion
// compactions, while a std::map oracle tracks the logical contents.
// Device search/range/scan kernels and the host-side oracles are checked
// against the map across >= 1000 patch/compaction boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "btree/btree.hpp"
#include "common/rng.hpp"
#include "harmonia/index.hpp"
#include "queries/batch.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

using queries::OpKind;
using queries::UpdateOp;

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

std::vector<btree::Entry> entries_for(const std::vector<Key>& keys) {
  std::vector<btree::Entry> out;
  for (Key k : keys) out.push_back({k, btree::value_for_key(k)});
  return out;
}

/// Applies `ops` to the oracle with patch_update's semantics: update
/// only touches present keys, insert upserts, delete removes if present.
void apply_oracle(std::map<Key, Value>& oracle, std::span<const UpdateOp> ops) {
  for (const auto& op : ops) {
    switch (op.kind) {
      case OpKind::kUpdate: {
        auto it = oracle.find(op.key);
        if (it != oracle.end()) it->second = op.value;
        break;
      }
      case OpKind::kInsert:
        oracle[op.key] = op.value;
        break;
      case OpKind::kDelete:
        oracle.erase(op.key);
        break;
    }
  }
}

UpdateOp random_op(Xoshiro256& rng, Key key_span) {
  const Key k = 1 + rng.next_below(key_span);
  const Value v = 1 + (rng.next() >> 1);  // never collides with kNotFound
  const double r = rng.next_double();
  if (r < 0.45) return {OpKind::kInsert, k, v};
  if (r < 0.70) return {OpKind::kUpdate, k, v};
  return {OpKind::kDelete, k, 0};
}

/// Random sample of keys: half drawn from the oracle (hits), half from
/// the raw key span (mostly misses).
std::vector<Key> sample_keys(Xoshiro256& rng, const std::map<Key, Value>& oracle,
                             Key key_span, std::size_t n) {
  std::vector<Key> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 0 && !oracle.empty()) {
      auto it = oracle.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.next_below(oracle.size())));
      out.push_back(it->first);
    } else {
      out.push_back(1 + rng.next_below(key_span));
    }
  }
  return out;
}

/// Device-vs-oracle check: a point-lookup batch, one range query, and
/// one online scan per call.
void verify_device(HarmoniaIndex& index, const std::map<Key, Value>& oracle,
                   Xoshiro256& rng, Key key_span) {
  // Point lookups.
  const auto qs = sample_keys(rng, oracle, key_span, 48);
  const auto result = index.search(qs);
  ASSERT_EQ(result.values.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto it = oracle.find(qs[i]);
    const Value want = it == oracle.end() ? kNotFound : it->second;
    ASSERT_EQ(result.values[i], want) << "search key " << qs[i];
  }

  // One range query against the oracle slice (truncated to max_results).
  const unsigned max_results = 64;
  const Key lo = 1 + rng.next_below(key_span);
  const Key hi = lo + key_span / 40;
  const auto ranged = index.range_device({&lo, 1}, {&hi, 1}, max_results);
  std::vector<Value> want;
  for (auto it = oracle.lower_bound(lo); it != oracle.end() && it->first <= hi; ++it) {
    if (want.size() == max_results) break;
    want.push_back(it->second);
  }
  ASSERT_EQ(ranged.values[0], want) << "range [" << lo << ", " << hi << "]";

  // One online scan: first n values with key >= lo.
  const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.next_below(24));
  const auto scanned = index.scan_device({&lo, 1}, {&n, 1});
  std::vector<Value> swant;
  for (auto it = oracle.lower_bound(lo); it != oracle.end() && swant.size() < n; ++it) {
    swant.push_back(it->second);
  }
  ASSERT_EQ(scanned.values[0], swant) << "scan lo " << lo << " n " << n;
}

void verify_host(const HarmoniaIndex& index, const std::map<Key, Value>& oracle,
                 Xoshiro256& rng, Key key_span) {
  for (Key k : sample_keys(rng, oracle, key_span, 8)) {
    const auto got = index.search_host(k);
    const auto it = oracle.find(k);
    if (it == oracle.end()) {
      ASSERT_FALSE(got.has_value()) << "host key " << k;
    } else {
      ASSERT_TRUE(got.has_value()) << "host key " << k;
      ASSERT_EQ(*got, it->second) << "host key " << k;
    }
  }
}

/// The serving layer's compaction fallback, inlined: fold the overlay
/// plus the unabsorbed tail into a staged batch and commit it.
void compact(HarmoniaIndex& index, std::span<const UpdateOp> rest) {
  auto fold = index.overlay_as_ops();
  fold.insert(fold.end(), rest.begin(), rest.end());
  index.discard_patch();
  auto staged = index.stage_update(fold);
  index.commit_staged(std::move(staged));
}

TEST(DeltaFuzz, DifferentialSingleDevice) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(3000, 11);
  IndexOptions opts;
  opts.fanout = 16;
  opts.fill_factor = 0.7;
  opts.overlay_capacity = 24;
  auto index = HarmoniaIndex::build(dev, entries_for(keys), opts);

  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  const Key key_span = keys.back() + keys.back() / 10;

  Xoshiro256 rng(2026);
  int patch_epochs = 0;
  int compaction_epochs = 0;

  for (int round = 0; round < 1100; ++round) {
    std::vector<UpdateOp> batch;
    for (int i = 0; i < 8; ++i) batch.push_back(random_op(rng, key_span));

    const auto pr = index.patch_update(batch);
    apply_oracle(oracle, std::span(batch).first(pr.absorbed));
    if (pr.exhausted) {
      ASSERT_LT(pr.absorbed, batch.size());
      const auto rest = std::span(batch).subspan(pr.absorbed);
      compact(index, rest);
      apply_oracle(oracle, rest);
      ++compaction_epochs;
      ASSERT_EQ(index.overlay_size(), 0u);
    } else {
      ASSERT_EQ(pr.absorbed, batch.size());
      index.commit_patch();
      ++patch_epochs;
    }
    ASSERT_LE(index.overlay_size(), opts.overlay_capacity);
    ASSERT_FALSE(index.patch_pending());

    verify_host(index, oracle, rng, key_span);
    if (round % 16 == 0) {
      ASSERT_NO_FATAL_FAILURE(verify_device(index, oracle, rng, key_span));
      index.tree().validate();
    }
    // Periodically exercise the full-batch path too: update_batch must
    // fold a live overlay before applying (replayed keys stay visible).
    if (round % 250 == 249) {
      std::vector<UpdateOp> big;
      for (int i = 0; i < 32; ++i) big.push_back(random_op(rng, key_span));
      index.update_batch(big);
      apply_oracle(oracle, big);
      ASSERT_EQ(index.overlay_size(), 0u);
      ASSERT_NO_FATAL_FAILURE(verify_device(index, oracle, rng, key_span));
    }
  }

  EXPECT_GE(patch_epochs + compaction_epochs, 1000);
  EXPECT_GT(patch_epochs, 0) << "fuzz never took the patch path";
  EXPECT_GT(compaction_epochs, 0) << "fuzz never exhausted into a compaction";

  // Final exhaustive sweep: every oracle key on the device, a full-range
  // host scan, and tree invariants.
  index.tree().validate();
  std::vector<Key> all;
  for (const auto& [k, v] : oracle) all.push_back(k);
  const auto result = index.search(all);
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(result.values[i], v) << "final sweep key " << k;
    ++i;
  }
  const auto scan = index.range_host(0, kPadKey - 1);
  ASSERT_EQ(scan.size(), oracle.size());
  i = 0;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(scan[i].key, k);
    ASSERT_EQ(scan[i].value, v);
    ++i;
  }
}

// A zero-capacity overlay degenerates gracefully: value updates and
// gap-absorbed inserts still patch in place, and every structural op the
// gaps cannot take exhausts immediately (compaction epoch).
TEST(DeltaFuzz, ZeroCapacityOverlayFallsBackToCompaction) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(600, 5);
  IndexOptions opts;
  opts.fanout = 16;
  opts.fill_factor = 1.0;  // no gaps either: inserts must exhaust
  auto index = HarmoniaIndex::build(dev, entries_for(keys), opts);

  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);

  // A fresh key cannot land anywhere: full leaves, no overlay.
  const UpdateOp ins{OpKind::kInsert, keys.back() + 1, 7};
  auto pr = index.patch_update({&ins, 1});
  EXPECT_TRUE(pr.exhausted);
  EXPECT_EQ(pr.absorbed, 0u);
  compact(index, {&ins, 1});
  apply_oracle(oracle, {&ins, 1});

  // Value updates still take the in-place path.
  const UpdateOp upd{OpKind::kUpdate, keys.front(), 9};
  pr = index.patch_update({&upd, 1});
  EXPECT_FALSE(pr.exhausted);
  EXPECT_EQ(pr.absorbed, 1u);
  index.commit_patch();
  apply_oracle(oracle, {&upd, 1});

  Xoshiro256 rng(3);
  ASSERT_NO_FATAL_FAILURE(verify_device(index, oracle, rng, keys.back() + 10));
}

// Tombstone/resurrection torture: delete-reinsert-delete cycles over a
// small hot set stress the overlay's shadowing rules (a re-inserted key
// must not resurrect a stale base copy after a later delete).
TEST(DeltaFuzz, TombstoneResurrectionCycles) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(800, 9);
  IndexOptions opts;
  opts.fanout = 16;
  opts.fill_factor = 1.0;  // full leaves: deletes of singleton keys overlay
  opts.overlay_capacity = 16;
  auto index = HarmoniaIndex::build(dev, entries_for(keys), opts);

  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);

  Xoshiro256 rng(17);
  std::vector<Key> hot(keys.begin(), keys.begin() + 8);
  int boundaries = 0;
  for (int round = 0; round < 300; ++round) {
    std::vector<UpdateOp> batch;
    for (int i = 0; i < 4; ++i) {
      const Key k = hot[rng.next_below(hot.size())];
      const double r = rng.next_double();
      if (r < 0.5) {
        batch.push_back({OpKind::kDelete, k, 0});
      } else {
        batch.push_back({OpKind::kInsert, k, 1 + (rng.next() >> 1)});
      }
    }
    const auto pr = index.patch_update(batch);
    apply_oracle(oracle, std::span(batch).first(pr.absorbed));
    if (pr.exhausted) {
      const auto rest = std::span(batch).subspan(pr.absorbed);
      compact(index, rest);
      apply_oracle(oracle, rest);
    } else {
      index.commit_patch();
    }
    ++boundaries;
    verify_host(index, oracle, rng, keys.back());
    if (round % 10 == 0) {
      ASSERT_NO_FATAL_FAILURE(verify_device(index, oracle, rng, keys.back()));
    }
  }
  ASSERT_GE(boundaries, 300);
}

}  // namespace
}  // namespace harmonia
