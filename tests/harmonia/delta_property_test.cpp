// Property tests for the incremental update path's invariants
// (docs/serving.md#epoch-pipeline):
//  - the key region stays sorted-with-gaps after every patch,
//  - prefix sums / PSA traversal stay consistent (patches never change
//    the structure, so the committed child region keeps working),
//  - the overlay never exceeds its bound,
//  - a compaction epoch's image is bit-identical to a direct batch apply
//    of the same logical contents,
//  - commit_patch leaves the device byte-identical to the host mirror.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <type_traits>
#include <vector>

#include "btree/btree.hpp"
#include "common/rng.hpp"
#include "harmonia/index.hpp"
#include "queries/batch.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

using queries::OpKind;
using queries::UpdateOp;

// commit_staged installs a staged update at a serving batch boundary; a
// throwing move there would leave the image half-swapped.
static_assert(std::is_nothrow_move_constructible_v<HarmoniaIndex::StagedUpdate>);
static_assert(std::is_nothrow_move_assignable_v<HarmoniaIndex::StagedUpdate>);

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

std::vector<btree::Entry> entries_for(const std::vector<Key>& keys) {
  std::vector<btree::Entry> out;
  for (Key k : keys) out.push_back({k, btree::value_for_key(k)});
  return out;
}

void apply_oracle(std::map<Key, Value>& oracle, std::span<const UpdateOp> ops) {
  for (const auto& op : ops) {
    switch (op.kind) {
      case OpKind::kUpdate: {
        auto it = oracle.find(op.key);
        if (it != oracle.end()) it->second = op.value;
        break;
      }
      case OpKind::kInsert:
        oracle[op.key] = op.value;
        break;
      case OpKind::kDelete:
        oracle.erase(op.key);
        break;
    }
  }
}

UpdateOp random_op(Xoshiro256& rng, Key key_span) {
  const Key k = 1 + rng.next_below(key_span);
  const Value v = 1 + (rng.next() >> 1);
  const double r = rng.next_double();
  if (r < 0.45) return {OpKind::kInsert, k, v};
  if (r < 0.70) return {OpKind::kUpdate, k, v};
  return {OpKind::kDelete, k, 0};
}

/// Sorted-with-gaps: within the leaf level, real keys (pads excluded)
/// must be strictly increasing across the whole consecutive key region.
void expect_sorted_with_gaps(const HarmoniaTree& t) {
  const unsigned kpn = t.keys_per_node();
  const auto region = t.key_region();
  Key prev = 0;
  bool have_prev = false;
  for (std::uint32_t leaf = t.first_leaf_index(); leaf < t.num_nodes(); ++leaf) {
    bool saw_pad = false;
    for (unsigned s = 0; s < kpn; ++s) {
      const Key k = region[static_cast<std::size_t>(leaf) * kpn + s];
      if (k == kPadKey) {
        saw_pad = true;
        continue;
      }
      // Pads only trail real keys inside a node (the gap sits at the end).
      ASSERT_FALSE(saw_pad) << "real key after pad in leaf " << leaf;
      if (have_prev) {
        ASSERT_LT(prev, k) << "leaf " << leaf << " slot " << s;
      }
      prev = k;
      have_prev = true;
    }
  }
}

/// Reads the device's key/value/prefix-sum regions (and overlay arrays)
/// back and compares them to the host mirror byte for byte.
void expect_device_matches_host(HarmoniaIndex& index) {
  auto& mem = index.device().memory();
  const auto& t = index.tree();
  const auto& img = index.image();

  std::vector<Key> dkeys(t.key_region().size());
  mem.copy_to_host(std::span<Key>(dkeys), img.key_region);
  ASSERT_TRUE(std::equal(dkeys.begin(), dkeys.end(), t.key_region().begin()))
      << "device key region diverged from host";

  std::vector<Value> dvals(t.value_region().size());
  mem.copy_to_host(std::span<Value>(dvals), img.value_region);
  ASSERT_TRUE(std::equal(dvals.begin(), dvals.end(), t.value_region().begin()))
      << "device value region diverged from host";

  std::vector<std::uint32_t> dps(t.prefix_sum().size());
  mem.copy_to_host(std::span<std::uint32_t>(dps), img.ps_global);
  ASSERT_TRUE(std::equal(dps.begin(), dps.end(), t.prefix_sum().begin()))
      << "device prefix-sum region diverged from host";

  // Overlay arrays: reconstruct the mirror through overlay_as_ops (live
  // entries carry values; tombstones read back with the flag set).
  ASSERT_EQ(img.overlay.count, index.overlay_size());
  if (img.overlay.count > 0) {
    const auto ops = index.overlay_as_ops();
    ASSERT_EQ(ops.size(), img.overlay.count);
    for (std::uint32_t i = 0; i < img.overlay.count; ++i) {
      const Key k = mem.read<Key>(img.overlay.key_addr(i));
      const auto tomb = mem.read<std::uint8_t>(img.overlay.tombstone_addr(i));
      ASSERT_EQ(k, ops[i].key) << "overlay slot " << i;
      ASSERT_EQ(tomb != 0, ops[i].kind == OpKind::kDelete) << "overlay slot " << i;
      if (!tomb) {
        ASSERT_EQ(mem.read<Value>(img.overlay.value_addr(i)), ops[i].value)
            << "overlay slot " << i;
      }
    }
  }
}

TEST(DeltaProperty, SortedWithGapsAndPsaConsistentAfterEveryPatch) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(2000, 21);
  IndexOptions opts;
  opts.fanout = 16;
  opts.fill_factor = 0.65;
  opts.overlay_capacity = 16;
  auto index = HarmoniaIndex::build(dev, entries_for(keys), opts);

  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  const Key key_span = keys.back() + keys.back() / 10;

  Xoshiro256 rng(77);
  for (int round = 0; round < 200; ++round) {
    std::vector<UpdateOp> batch;
    for (int i = 0; i < 6; ++i) batch.push_back(random_op(rng, key_span));
    const auto pr = index.patch_update(batch);
    apply_oracle(oracle, std::span(batch).first(pr.absorbed));
    if (pr.exhausted) {
      const auto rest = std::span(batch).subspan(pr.absorbed);
      auto fold = index.overlay_as_ops();
      fold.insert(fold.end(), rest.begin(), rest.end());
      index.discard_patch();
      auto staged = index.stage_update(fold);
      index.commit_staged(std::move(staged));
      apply_oracle(oracle, rest);
    } else {
      index.commit_patch();
    }

    // Invariants after every boundary: full tree validation, the gap
    // discipline, and (cheap spot check) the prefix-sum traversal still
    // routes every probe to the right leaf — find_leaf + search_host must
    // agree with the oracle even for keys living only in the overlay.
    index.tree().validate();
    ASSERT_NO_FATAL_FAILURE(expect_sorted_with_gaps(index.tree()));
    for (int i = 0; i < 6; ++i) {
      const Key k = 1 + rng.next_below(key_span);
      const auto got = index.search_host(k);
      const auto it = oracle.find(k);
      if (it == oracle.end()) {
        ASSERT_FALSE(got.has_value()) << "key " << k;
      } else {
        ASSERT_EQ(got.value_or(kNotFound), it->second) << "key " << k;
      }
    }
  }
}

TEST(DeltaProperty, OverlayNeverExceedsBound) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(500, 31);
  IndexOptions opts;
  opts.fanout = 16;
  opts.fill_factor = 1.0;  // no gaps: every fresh insert must overlay
  opts.overlay_capacity = 4;
  auto index = HarmoniaIndex::build(dev, entries_for(keys), opts);

  // Fresh keys beyond the bound: the first `capacity` absorb, the rest
  // exhaust; the overlay never exceeds the bound and unabsorbed ops
  // leave no trace. Targets stay in the first half of the key space so
  // every one maps to a full interior leaf (the tail leaf keeps natural
  // gaps even at fill 1.0).
  const auto missing = queries::make_missing_keys(keys, 200, 7);
  std::vector<UpdateOp> batch;
  for (Key k : missing) {
    if (k >= keys[keys.size() / 2]) continue;
    batch.push_back({OpKind::kInsert, k, 100});
    if (batch.size() == 10) break;
  }
  ASSERT_EQ(batch.size(), 10u);
  const auto pr = index.patch_update(batch);
  EXPECT_TRUE(pr.exhausted);
  EXPECT_EQ(pr.absorbed, opts.overlay_capacity);
  EXPECT_EQ(index.overlay_size(), opts.overlay_capacity);
  for (std::size_t i = pr.absorbed; i < batch.size(); ++i) {
    EXPECT_FALSE(index.search_host(batch[i].key).has_value())
        << "unabsorbed op leaked into the index: " << batch[i].key;
  }
  index.commit_patch();
  EXPECT_LE(index.overlay_size(), index.overlay_capacity());

  // Raising the bound reallocates the device arrays and admits more.
  index.set_overlay_capacity(8);
  const auto pr2 = index.patch_update(std::span(batch).subspan(pr.absorbed));
  EXPECT_EQ(pr2.absorbed, 4u);
  EXPECT_TRUE(pr2.exhausted);  // 8 total: slots 5..8 absorb, 9 and 10 exhaust
  EXPECT_EQ(index.overlay_size(), 8u);
  index.commit_patch();
}

TEST(DeltaProperty, CompactionImageBitIdenticalToDirectApply) {
  gpusim::Device dev_a(test_spec());
  gpusim::Device dev_b(test_spec());
  const auto keys = queries::make_tree_keys(1500, 41);
  IndexOptions opts;
  opts.fanout = 16;
  opts.fill_factor = 0.7;
  opts.overlay_capacity = 8;
  auto a = HarmoniaIndex::build(dev_a, entries_for(keys), opts);

  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  const Key key_span = keys.back() + keys.back() / 10;

  // Drive A through patch rounds until a batch exhausts.
  Xoshiro256 rng(55);
  std::vector<UpdateOp> batch;
  HarmoniaIndex::PatchResult pr;
  for (;;) {
    batch.clear();
    for (int i = 0; i < 8; ++i) batch.push_back(random_op(rng, key_span));
    pr = a.patch_update(batch);
    apply_oracle(oracle, std::span(batch).first(pr.absorbed));
    if (pr.exhausted) break;
    a.commit_patch();
  }

  // At the exhaustion point: B wraps a copy of A's patched host tree and
  // applies the same fold batch directly (no overlay, no staging). The
  // compacted image must be bit-identical — stage_update/commit_staged
  // adds nothing beyond BatchUpdater::apply on the same inputs.
  const auto rest = std::span(batch).subspan(pr.absorbed);
  auto fold = a.overlay_as_ops();
  fold.insert(fold.end(), rest.begin(), rest.end());
  HarmoniaIndex b(dev_b, HarmoniaTree(a.tree()), opts);
  b.update_batch(fold);

  a.discard_patch();
  auto staged = a.stage_update(fold);
  a.commit_staged(std::move(staged));
  apply_oracle(oracle, rest);

  ASSERT_EQ(a.tree().num_keys(), b.tree().num_keys());
  ASSERT_TRUE(std::equal(a.tree().key_region().begin(), a.tree().key_region().end(),
                         b.tree().key_region().begin(), b.tree().key_region().end()))
      << "compacted key region differs from direct apply";
  ASSERT_TRUE(std::equal(a.tree().value_region().begin(), a.tree().value_region().end(),
                         b.tree().value_region().begin(), b.tree().value_region().end()))
      << "compacted value region differs from direct apply";
  ASSERT_TRUE(std::equal(a.tree().prefix_sum().begin(), a.tree().prefix_sum().end(),
                         b.tree().prefix_sum().begin(), b.tree().prefix_sum().end()))
      << "compacted prefix-sum region differs from direct apply";

  // And the logical contents match the oracle exactly.
  ASSERT_EQ(a.overlay_size(), 0u);
  const auto scan = a.range_host(0, kPadKey - 1);
  ASSERT_EQ(scan.size(), oracle.size());
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(scan[i].key, k);
    ASSERT_EQ(scan[i].value, v);
    ++i;
  }
}

TEST(DeltaProperty, CommitPatchLeavesDeviceByteIdenticalToHost) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(1200, 61);
  IndexOptions opts;
  opts.fanout = 16;
  opts.fill_factor = 0.7;
  opts.overlay_capacity = 12;
  auto index = HarmoniaIndex::build(dev, entries_for(keys), opts);

  const Key key_span = keys.back() + keys.back() / 10;
  Xoshiro256 rng(91);
  std::uint64_t total_patch_bytes = 0;
  for (int round = 0; round < 40; ++round) {
    std::vector<UpdateOp> batch;
    for (int i = 0; i < 6; ++i) batch.push_back(random_op(rng, key_span));
    const auto pr = index.patch_update(batch);
    if (pr.exhausted) {
      const auto rest = std::span(batch).subspan(pr.absorbed);
      auto fold = index.overlay_as_ops();
      fold.insert(fold.end(), rest.begin(), rest.end());
      index.discard_patch();
      auto staged = index.stage_update(fold);
      index.commit_staged(std::move(staged));
    } else {
      // The byte estimate is what the serving layer charges the link:
      // strictly less than a full image upload, monotone in dirt.
      const std::uint64_t full_bytes =
          index.tree().key_region().size_bytes() +
          index.tree().value_region().size_bytes() +
          index.tree().prefix_sum().size() * sizeof(std::uint32_t);
      EXPECT_LT(pr.patch_bytes, full_bytes);
      // A batch whose absorbed ops all failed (missing-key updates or
      // deletes) legitimately queues nothing.
      if (index.patch_pending()) {
        EXPECT_GT(pr.patch_bytes, 0u);
      }
      total_patch_bytes += pr.patch_bytes;
      index.commit_patch();
    }
    ASSERT_NO_FATAL_FAILURE(expect_device_matches_host(index));
  }
  EXPECT_GT(total_patch_bytes, 0u);

  // resync_device (the fault-repair path) must preserve the overlay.
  const auto before = index.overlay_as_ops();
  index.resync_device();
  const auto after = index.overlay_as_ops();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].key, after[i].key);
    EXPECT_EQ(before[i].value, after[i].value);
  }
  ASSERT_NO_FATAL_FAILURE(expect_device_matches_host(index));
}

}  // namespace
}  // namespace harmonia
