#include "harmonia/psa.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

std::vector<Key> random_batch(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Key> out(n);
  for (auto& k : out) k = rng.next() >> 1;  // avoid kPadKey
  return out;
}

TEST(Psa, NoneKeepsArrivalOrder) {
  const auto batch = random_batch(1000, 1);
  const auto plan = psa_prepare(batch, 1 << 20, gpusim::titan_v(), PsaMode::kNone);
  EXPECT_EQ(plan.queries, batch);
  EXPECT_EQ(plan.sorted_bits, 0u);
  EXPECT_DOUBLE_EQ(plan.sort_cycles, 0.0);
  for (std::size_t i = 0; i < batch.size(); ++i) EXPECT_EQ(plan.permutation[i], i);
}

TEST(Psa, FullSortsCompletely) {
  const auto batch = random_batch(2000, 2);
  const auto plan = psa_prepare(batch, 1 << 20, gpusim::titan_v(), PsaMode::kFull);
  EXPECT_EQ(plan.sorted_bits, 64u);
  EXPECT_TRUE(std::is_sorted(plan.queries.begin(), plan.queries.end()));
  EXPECT_GT(plan.sort_cycles, 0.0);
}

TEST(Psa, PartialUsesEquation2Bits) {
  const auto batch = random_batch(1000, 3);
  const auto plan = psa_prepare(batch, 1ULL << 23, gpusim::titan_v(), PsaMode::kPartial);
  EXPECT_EQ(plan.sorted_bits, 19u);  // §4.1.2 example
  // Sorted on the top 19 bits: prefixes ascend.
  for (std::size_t i = 1; i < plan.queries.size(); ++i) {
    EXPECT_LE(plan.queries[i - 1] >> 45, plan.queries[i] >> 45);
  }
}

TEST(Psa, PartialCheaperThanFull) {
  const auto batch = random_batch(4096, 4);
  const auto spec = gpusim::titan_v();
  const auto partial = psa_prepare(batch, 1ULL << 23, spec, PsaMode::kPartial);
  const auto full = psa_prepare(batch, 1ULL << 23, spec, PsaMode::kFull);
  EXPECT_LT(partial.sort_cycles, full.sort_cycles);
  // ~35% of the full sort (3 of 8 passes).
  EXPECT_NEAR(partial.sort_cycles / full.sort_cycles, 0.375, 0.05);
}

TEST(Psa, OverrideBitsRespected) {
  const auto batch = random_batch(500, 5);
  const auto plan =
      psa_prepare(batch, 1ULL << 23, gpusim::titan_v(), PsaMode::kPartial, 8);
  EXPECT_EQ(plan.sorted_bits, 8u);
  for (std::size_t i = 1; i < plan.queries.size(); ++i) {
    EXPECT_LE(plan.queries[i - 1] >> 56, plan.queries[i] >> 56);
  }
}

TEST(Psa, OverrideBitsEdgeCases) {
  const auto batch = random_batch(300, 9);
  const auto spec = gpusim::titan_v();
  // 0 = no override: the Equation-2 bit count applies.
  const auto eq2 = psa_prepare(batch, 1ULL << 23, spec, PsaMode::kPartial, 0);
  EXPECT_EQ(eq2.sorted_bits, 19u);
  // 64 = the whole key: equivalent to a full sort.
  const auto full = psa_prepare(batch, 1ULL << 23, spec, PsaMode::kPartial, 64);
  EXPECT_EQ(full.sorted_bits, 64u);
  EXPECT_TRUE(std::is_sorted(full.queries.begin(), full.queries.end()));
  std::vector<Value> restored(batch.size());
  psa_restore(full, full.queries, restored);
  EXPECT_EQ(restored, batch);
}

TEST(Psa, OverrideBitsBeyondKeyWidthThrows) {
  // Regression: 65 underflowed lo_bit = 64 - sorted_bits, and the
  // unsigned wrap slipped past radix_sort_pairs_bits' own window check —
  // an out-of-range shift instead of a diagnosable error.
  const auto batch = random_batch(64, 10);
  const auto spec = gpusim::titan_v();
  EXPECT_THROW(psa_prepare(batch, 1ULL << 23, spec, PsaMode::kPartial, 65),
               ContractViolation);
  EXPECT_THROW(psa_prepare(batch, 1ULL << 23, spec, PsaMode::kPartial, 1000),
               ContractViolation);
  // The check guards every mode, including ones that ignore the override.
  EXPECT_THROW(psa_prepare(batch, 1ULL << 23, spec, PsaMode::kNone, 65),
               ContractViolation);
}

TEST(Psa, RestoreInvertsPermutation) {
  const auto batch = random_batch(777, 6);
  const auto plan = psa_prepare(batch, 1ULL << 20, gpusim::titan_v(), PsaMode::kFull);
  // Results in issue order = the sorted queries themselves; restoring must
  // give each arrival slot its own query back.
  std::vector<Value> restored(batch.size());
  psa_restore(plan, plan.queries, restored);
  EXPECT_EQ(restored, batch);
}

TEST(Psa, PermutationIsBijective) {
  const auto batch = random_batch(1234, 7);
  const auto plan = psa_prepare(batch, 1ULL << 23, gpusim::titan_v(), PsaMode::kPartial);
  std::vector<bool> seen(batch.size(), false);
  for (auto p : plan.permutation) {
    ASSERT_LT(p, batch.size());
    ASSERT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Psa, TinyTreeSkipsSorting) {
  const auto batch = random_batch(100, 8);
  const auto plan = psa_prepare(batch, 8, gpusim::titan_v(), PsaMode::kPartial);
  EXPECT_EQ(plan.sorted_bits, 0u);
  EXPECT_EQ(plan.queries, batch);
}

TEST(Psa, RestoreRejectsSizeMismatch) {
  const auto batch = random_batch(10, 9);
  const auto plan = psa_prepare(batch, 1 << 20, gpusim::titan_v(), PsaMode::kNone);
  std::vector<Value> wrong(5);
  std::vector<Value> out(10);
  EXPECT_THROW(psa_restore(plan, wrong, out), ContractViolation);
}

}  // namespace
}  // namespace harmonia
