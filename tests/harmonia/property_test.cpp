// Cross-cutting property tests of the Harmonia core: range/search
// consistency, PSA algebra, serialization stability, pipeline-chunking
// invariance.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "btree/btree.hpp"
#include "common/rng.hpp"
#include "harmonia/pipeline.hpp"
#include "harmonia/psa.hpp"
#include "harmonia/tree.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

class TreeProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeProperties, RangeEqualsFilteredScan) {
  Xoshiro256 rng(GetParam());
  const unsigned fanout = 1u << (2 + rng.next_below(5));
  const std::uint64_t size = 100 + rng.next_below(3000);
  const auto keys = queries::make_tree_keys(size, GetParam() + 7);
  const auto tree = HarmoniaTree::from_btree(btree::make_tree(keys, fanout));

  for (int i = 0; i < 10; ++i) {
    // Bounds deliberately include non-existent keys.
    std::uint64_t lo = rng.next() >> 1;
    std::uint64_t hi = rng.next() >> 1;
    if (lo > hi) std::swap(lo, hi);
    const auto got = tree.range(lo, hi);
    std::vector<btree::Entry> expect;
    for (Key k : keys) {
      if (k >= lo && k <= hi) expect.push_back({k, btree::value_for_key(k)});
    }
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      ASSERT_EQ(got[j].key, expect[j].key);
      ASSERT_EQ(got[j].value, expect[j].value);
    }
  }
}

TEST_P(TreeProperties, SaveLoadIsIdentity) {
  Xoshiro256 rng(GetParam() * 13);
  const unsigned fanout = 1u << (2 + rng.next_below(5));
  const std::uint64_t size = 50 + rng.next_below(2000);
  const auto keys = queries::make_tree_keys(size, GetParam() + 11);
  const auto tree = HarmoniaTree::from_btree(btree::make_tree(keys, fanout));

  std::stringstream buf;
  tree.save(buf);
  const auto loaded = HarmoniaTree::load(buf);
  // Byte-identical round trip: saving again produces the same image.
  std::stringstream buf2;
  loaded.save(buf2);
  EXPECT_EQ(buf.str(), buf2.str());
}

TEST_P(TreeProperties, FindLeafIsMonotonic) {
  // Ascending keys map to non-decreasing leaf indices — the property that
  // makes PSA produce coalesced leaf access.
  Xoshiro256 rng(GetParam() * 29);
  const auto keys = queries::make_tree_keys(2000, GetParam() + 17);
  const auto tree = HarmoniaTree::from_btree(btree::make_tree(keys, 16));
  std::vector<Key> probes;
  for (int i = 0; i < 200; ++i) probes.push_back(rng.next() >> 1);
  std::sort(probes.begin(), probes.end());
  std::uint32_t prev = 0;
  for (Key p : probes) {
    const std::uint32_t leaf = tree.find_leaf(p);
    EXPECT_GE(leaf, prev);
    prev = leaf;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeProperties, ::testing::Range<std::uint64_t>(1, 11));

class PsaProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsaProperties, SortingSortedInputIsIdentity) {
  Xoshiro256 rng(GetParam());
  std::vector<Key> batch(500);
  for (auto& k : batch) k = rng.next() >> 1;
  std::sort(batch.begin(), batch.end());
  const auto plan = psa_prepare(batch, 1ULL << 23, gpusim::titan_v(), PsaMode::kPartial);
  EXPECT_EQ(plan.queries, batch);
}

TEST_P(PsaProperties, PartialIsCoarseningOfFull) {
  // The partial order never disagrees with the full order on the sorted
  // bits: full-sorted output, viewed through the top-N-bit lens, equals
  // the partial sort's bucket sequence.
  Xoshiro256 rng(GetParam() + 40);
  std::vector<Key> batch(800);
  for (auto& k : batch) k = rng.next() >> 1;
  const auto partial =
      psa_prepare(batch, 1ULL << 23, gpusim::titan_v(), PsaMode::kPartial);
  const auto full = psa_prepare(batch, 1ULL << 23, gpusim::titan_v(), PsaMode::kFull);
  const unsigned shift = 64 - partial.sorted_bits;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(partial.queries[i] >> shift, full.queries[i] >> shift);
  }
}

TEST_P(PsaProperties, RestoreAfterAnyModeIsExact) {
  Xoshiro256 rng(GetParam() + 80);
  std::vector<Key> batch(300);
  for (auto& k : batch) k = rng.next() >> 1;
  for (PsaMode mode : {PsaMode::kNone, PsaMode::kFull, PsaMode::kPartial}) {
    const auto plan = psa_prepare(batch, 1ULL << 20, gpusim::titan_v(), mode);
    // Simulate a kernel that returns query^1 per issue-order slot.
    std::vector<Value> issue(batch.size());
    for (std::size_t i = 0; i < issue.size(); ++i) issue[i] = plan.queries[i] ^ 1;
    std::vector<Value> restored(batch.size());
    psa_restore(plan, issue, restored);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(restored[i], batch[i] ^ 1) << "mode " << static_cast<int>(mode);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsaProperties, ::testing::Range<std::uint64_t>(1, 9));

TEST(PipelineProperties, ChunkSizeDoesNotChangeResults) {
  gpusim::DeviceSpec spec = gpusim::titan_v();
  spec.num_sms = 4;
  spec.global_mem_bytes = 256 << 20;
  gpusim::Device dev(spec);
  const auto keys = queries::make_tree_keys(1 << 13, 3);
  std::vector<btree::Entry> entries;
  for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
  auto index = HarmoniaIndex::build(dev, entries, {.fanout = 16});
  const auto qs = queries::make_queries(keys, 3000, queries::Distribution::kUniform, 4);

  TransferModel link;
  std::vector<Value> reference;
  for (std::uint64_t chunk : {128u, 1000u, 4096u}) {
    PipelineOptions opts;
    opts.chunk_size = chunk;
    const auto r = pipelined_search(index, qs, link, opts);
    if (reference.empty()) {
      reference = r.values;
    } else {
      ASSERT_EQ(r.values, reference) << "chunk " << chunk;
    }
  }
}

}  // namespace
}  // namespace harmonia
