#include "harmonia/tree.hpp"

#include <gtest/gtest.h>

#include "btree/btree.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

HarmoniaTree small_tree(std::uint64_t n, unsigned fanout, double fill = 0.69,
                        std::uint64_t seed = 1) {
  const auto keys = queries::make_tree_keys(n, seed);
  const auto bt = btree::make_tree(keys, fanout, fill);
  return HarmoniaTree::from_btree(bt);
}

TEST(HarmoniaTree, PaperFigure4PrefixSum) {
  // Build a two-level tree and check the prefix-sum property of §3.1:
  // prefix_sum[i] is node i's first-child BFS index; the root's is 1.
  const auto tree = small_tree(200, 8);
  tree.validate();
  ASSERT_GE(tree.height(), 2u);
  const auto ps = tree.prefix_sum();
  EXPECT_EQ(ps[0], 1u);
  // Child counts come from adjacent differences (the paper's rule).
  for (std::uint32_t n = 0; n < tree.num_nodes(); ++n) {
    if (tree.is_leaf(n)) {
      EXPECT_EQ(tree.child_count(n), 0u);
    } else {
      EXPECT_EQ(tree.child_count(n), tree.node_key_count(n) + 1);
    }
  }
  // Sentinel: one past the last node.
  EXPECT_EQ(ps[tree.num_nodes()], tree.num_nodes());
}

TEST(HarmoniaTree, Equation1ChildIndex) {
  // child_idx = PrefixSum[node_idx] + i - 1 for the i-th child (1-based).
  const auto tree = small_tree(500, 8);
  const auto ps = tree.prefix_sum();
  // Visiting the root's 2nd child (i=2) must give index ps[0] + 1.
  EXPECT_EQ(ps[0] + 2 - 1, ps[0] + 1);
  // And that child's own children follow the same rule recursively.
  const std::uint32_t c = ps[0];
  if (!tree.is_leaf(c)) {
    EXPECT_GT(ps[c], c);
    EXPECT_LE(ps[c] + tree.child_count(c), tree.num_nodes());
  }
}

TEST(HarmoniaTree, SearchMatchesBTree) {
  const auto keys = queries::make_tree_keys(3000, 2);
  const auto bt = btree::make_tree(keys, 16);
  const auto tree = HarmoniaTree::from_btree(bt);
  tree.validate();
  EXPECT_EQ(tree.num_keys(), bt.size());
  EXPECT_EQ(tree.height(), bt.height());
  for (Key k : keys) {
    ASSERT_EQ(tree.search(k), bt.search(k));
  }
  for (Key k : queries::make_missing_keys(keys, 500, 3)) {
    ASSERT_FALSE(tree.search(k).has_value());
    ASSERT_FALSE(bt.search(k).has_value());
  }
}

TEST(HarmoniaTree, SingleLeafTree) {
  const auto tree = small_tree(5, 8);
  tree.validate();
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.first_leaf_index(), 0u);
  EXPECT_EQ(tree.prefix_sum()[0], 1u);  // == num_nodes: leaf, no children
}

TEST(HarmoniaTree, KeyRegionIsBreadthFirst) {
  const auto keys = queries::make_tree_keys(2000, 4);
  const auto bt = btree::make_tree(keys, 16);
  const auto tree = HarmoniaTree::from_btree(bt);
  const auto levels = bt.levels();
  std::uint32_t bfs = 0;
  for (const auto& level : levels) {
    for (const btree::Node* node : level) {
      const auto slots = tree.node_keys(bfs);
      for (std::size_t s = 0; s < node->keys.size(); ++s) {
        ASSERT_EQ(slots[s], node->keys[s]);
      }
      for (std::size_t s = node->keys.size(); s < slots.size(); ++s) {
        ASSERT_EQ(slots[s], kPadKey);
      }
      ++bfs;
    }
  }
  EXPECT_EQ(bfs, tree.num_nodes());
}

TEST(HarmoniaTree, PrefixSumArrayIsSmall) {
  // §3.1: "for a 64-fanout 4-level B+tree, the size of its prefix-sum
  // array at most is only about 16KB" — ours stores u32 entries, so a
  // 64-fanout tree over 2^17 keys stays in a few KiB.
  const auto tree = small_tree(1 << 17, 64);
  const std::uint64_t ps_bytes = tree.prefix_sum().size() * sizeof(std::uint32_t);
  EXPECT_LT(ps_bytes, 64u << 10);
  // The key region, by contrast, is orders of magnitude larger.
  EXPECT_GT(tree.key_region().size() * sizeof(Key), ps_bytes * 50);
}

TEST(HarmoniaTree, RangeMatchesBTree) {
  const auto keys = queries::make_tree_keys(4000, 5);
  const auto bt = btree::make_tree(keys, 32);
  const auto tree = HarmoniaTree::from_btree(bt);
  Xoshiro256 rng(6);
  for (int i = 0; i < 50; ++i) {
    std::uint64_t a = keys[rng.next_below(keys.size())];
    std::uint64_t b = keys[rng.next_below(keys.size())];
    if (a > b) std::swap(a, b);
    const auto expect = bt.range(a, b);
    const auto got = tree.range(a, b);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      ASSERT_EQ(got[j].key, expect[j].key);
      ASSERT_EQ(got[j].value, expect[j].value);
    }
  }
}

TEST(HarmoniaTree, RangeWithLimit) {
  const auto tree = small_tree(1000, 16);
  const auto out = tree.range(0, ~std::uint64_t{0} - 1, 17);
  EXPECT_EQ(out.size(), 17u);
}

TEST(HarmoniaTree, FromLeavesRoundTrip) {
  const auto keys = queries::make_tree_keys(2500, 7);
  const auto bt = btree::make_tree(keys, 16);
  const auto orig = HarmoniaTree::from_btree(bt);
  // Decompose into leaves and rebuild.
  std::vector<std::vector<btree::Entry>> leaves;
  for (std::uint32_t l = orig.first_leaf_index(); l < orig.num_nodes(); ++l) {
    leaves.push_back(orig.leaf_entries(l));
  }
  const auto rebuilt = HarmoniaTree::from_leaves(std::move(leaves), 16);
  rebuilt.validate();
  EXPECT_EQ(rebuilt.num_keys(), orig.num_keys());
  for (Key k : keys) ASSERT_EQ(rebuilt.search(k), orig.search(k));
}

TEST(HarmoniaTree, FromLeavesSingleLeaf) {
  std::vector<std::vector<btree::Entry>> leaves{{{1, 10}, {2, 20}, {3, 30}}};
  const auto tree = HarmoniaTree::from_leaves(std::move(leaves), 8);
  tree.validate();
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.search(2).value(), 20u);
  EXPECT_FALSE(tree.search(4).has_value());
}

TEST(HarmoniaTree, FromLeavesRejectsBadInput) {
  EXPECT_THROW(HarmoniaTree::from_leaves({}, 8), ContractViolation);
  std::vector<std::vector<btree::Entry>> empty_leaf{{}};
  EXPECT_THROW(HarmoniaTree::from_leaves(std::move(empty_leaf), 8), ContractViolation);
  std::vector<std::vector<btree::Entry>> unsorted{{{5, 1}}, {{2, 1}}};
  EXPECT_THROW(HarmoniaTree::from_leaves(std::move(unsorted), 8), ContractViolation);
}

TEST(HarmoniaTree, LeafInplaceUpdate) {
  auto tree = small_tree(300, 8);
  const auto keys = queries::make_tree_keys(300, 1);
  const Key k = keys[123];
  const std::uint32_t leaf = tree.find_leaf(k);
  EXPECT_TRUE(tree.leaf_update_inplace(leaf, k, 777));
  EXPECT_EQ(tree.search(k).value(), 777u);
  EXPECT_FALSE(tree.leaf_update_inplace(leaf, k + 1, 1));  // absent (gap key)
  tree.validate();
}

TEST(HarmoniaTree, LeafInplaceInsertAndErase) {
  auto tree = small_tree(300, 8, 0.5, 9);
  const auto keys = queries::make_tree_keys(300, 9);
  const auto missing = queries::make_missing_keys(keys, 1, 10);
  const Key k = missing[0];
  const std::uint32_t leaf = tree.find_leaf(k);
  const auto before = tree.num_keys();
  ASSERT_TRUE(tree.leaf_insert_inplace(leaf, k, 555));
  EXPECT_EQ(tree.num_keys(), before + 1);
  EXPECT_EQ(tree.search(k).value(), 555u);
  tree.validate();

  ASSERT_TRUE(tree.leaf_erase_inplace(leaf, k));
  EXPECT_EQ(tree.num_keys(), before);
  EXPECT_FALSE(tree.search(k).has_value());
  tree.validate();
}

TEST(HarmoniaTree, LeafInplaceInsertFullReturnsFalse) {
  auto tree = small_tree(300, 8, 1.0, 11);  // fill 1.0: all leaves full
  const auto keys = queries::make_tree_keys(300, 11);
  const auto missing = queries::make_missing_keys(keys, 1, 12);
  const std::uint32_t leaf = tree.find_leaf(missing[0]);
  EXPECT_FALSE(tree.leaf_insert_inplace(leaf, missing[0], 1));
}

TEST(HarmoniaTree, SearchRejectsReservedKey) {
  const auto tree = small_tree(100, 8);
  EXPECT_FALSE(tree.search(kPadKey).has_value());
}

class HarmoniaFanoutSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(HarmoniaFanoutSweep, SearchAllKeysAllFanouts) {
  const unsigned fanout = GetParam();
  const auto keys = queries::make_tree_keys(1500, fanout);
  const auto bt = btree::make_tree(keys, fanout);
  const auto tree = HarmoniaTree::from_btree(bt);
  tree.validate();
  for (Key k : keys) ASSERT_EQ(tree.search(k).value(), btree::value_for_key(k));
}

INSTANTIATE_TEST_SUITE_P(Fanouts, HarmoniaFanoutSweep,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u, 128u));

}  // namespace
}  // namespace harmonia
