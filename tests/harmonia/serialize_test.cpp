#include <gtest/gtest.h>

#include <sstream>

#include "btree/btree.hpp"
#include "common/expect.hpp"
#include "harmonia/tree.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

HarmoniaTree sample_tree(std::uint64_t n = 2000, unsigned fanout = 16) {
  const auto keys = queries::make_tree_keys(n, 1);
  return HarmoniaTree::from_btree(btree::make_tree(keys, fanout));
}

TEST(Serialize, RoundTripPreservesEverything) {
  const auto tree = sample_tree();
  std::stringstream buf;
  tree.save(buf);
  const auto loaded = HarmoniaTree::load(buf);
  loaded.validate();
  EXPECT_EQ(loaded.fanout(), tree.fanout());
  EXPECT_EQ(loaded.num_nodes(), tree.num_nodes());
  EXPECT_EQ(loaded.num_keys(), tree.num_keys());
  EXPECT_EQ(loaded.height(), tree.height());
  ASSERT_EQ(loaded.key_region().size(), tree.key_region().size());
  for (std::size_t i = 0; i < tree.key_region().size(); ++i) {
    ASSERT_EQ(loaded.key_region()[i], tree.key_region()[i]);
  }
  for (std::size_t i = 0; i < tree.prefix_sum().size(); ++i) {
    ASSERT_EQ(loaded.prefix_sum()[i], tree.prefix_sum()[i]);
  }
}

TEST(Serialize, LoadedTreeSearchesCorrectly) {
  const auto keys = queries::make_tree_keys(3000, 2);
  const auto tree = HarmoniaTree::from_btree(btree::make_tree(keys, 32));
  std::stringstream buf;
  tree.save(buf);
  const auto loaded = HarmoniaTree::load(buf);
  for (std::size_t i = 0; i < keys.size(); i += 17) {
    ASSERT_EQ(loaded.search(keys[i]), tree.search(keys[i]));
  }
}

TEST(Serialize, DetectsBitFlip) {
  const auto tree = sample_tree();
  std::stringstream buf;
  tree.save(buf);
  std::string bytes = buf.str();
  bytes[bytes.size() / 2] ^= 0x40;  // corrupt the middle of a region
  std::stringstream corrupted(bytes);
  EXPECT_THROW(HarmoniaTree::load(corrupted), ContractViolation);
}

TEST(Serialize, DetectsTruncation) {
  const auto tree = sample_tree();
  std::stringstream buf;
  tree.save(buf);
  std::string bytes = buf.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(HarmoniaTree::load(truncated), ContractViolation);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream junk("definitely not a harmonia image at all, sorry");
  EXPECT_THROW(HarmoniaTree::load(junk), ContractViolation);
}

TEST(Serialize, SingleLeafTree) {
  const auto tree = sample_tree(5, 8);
  std::stringstream buf;
  tree.save(buf);
  const auto loaded = HarmoniaTree::load(buf);
  EXPECT_EQ(loaded.num_keys(), 5u);
  EXPECT_EQ(loaded.height(), 1u);
}

}  // namespace
}  // namespace harmonia
