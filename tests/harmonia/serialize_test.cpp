#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "btree/btree.hpp"
#include "common/expect.hpp"
#include "harmonia/tree.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

HarmoniaTree sample_tree(std::uint64_t n = 2000, unsigned fanout = 16) {
  const auto keys = queries::make_tree_keys(n, 1);
  return HarmoniaTree::from_btree(btree::make_tree(keys, fanout));
}

std::string image_bytes(const HarmoniaTree& tree,
                        const TreeSnapshotExtras& extras = {}) {
  std::stringstream buf;
  tree.save(buf, extras);
  return buf.str();
}

/// FNV-1a 64 over `data`, matching the image trailer (re-implemented
/// here so the v1-compat test can seal a hand-built v1 image).
std::uint64_t fnv64(const std::string& data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

TEST(Serialize, RoundTripPreservesEverything) {
  const auto tree = sample_tree();
  std::stringstream buf;
  tree.save(buf);
  const auto loaded = HarmoniaTree::load(buf);
  loaded.validate();
  EXPECT_EQ(loaded.fanout(), tree.fanout());
  EXPECT_EQ(loaded.num_nodes(), tree.num_nodes());
  EXPECT_EQ(loaded.num_keys(), tree.num_keys());
  EXPECT_EQ(loaded.height(), tree.height());
  ASSERT_EQ(loaded.key_region().size(), tree.key_region().size());
  for (std::size_t i = 0; i < tree.key_region().size(); ++i) {
    ASSERT_EQ(loaded.key_region()[i], tree.key_region()[i]);
  }
  for (std::size_t i = 0; i < tree.prefix_sum().size(); ++i) {
    ASSERT_EQ(loaded.prefix_sum()[i], tree.prefix_sum()[i]);
  }
}

TEST(Serialize, LoadedTreeSearchesCorrectly) {
  const auto keys = queries::make_tree_keys(3000, 2);
  const auto tree = HarmoniaTree::from_btree(btree::make_tree(keys, 32));
  std::stringstream buf;
  tree.save(buf);
  const auto loaded = HarmoniaTree::load(buf);
  for (std::size_t i = 0; i < keys.size(); i += 17) {
    ASSERT_EQ(loaded.search(keys[i]), tree.search(keys[i]));
  }
}

TEST(Serialize, DetectsBitFlip) {
  const auto tree = sample_tree();
  std::stringstream buf;
  tree.save(buf);
  std::string bytes = buf.str();
  bytes[bytes.size() / 2] ^= 0x40;  // corrupt the middle of a region
  std::stringstream corrupted(bytes);
  EXPECT_THROW(HarmoniaTree::load(corrupted), ContractViolation);
}

TEST(Serialize, DetectsTruncation) {
  const auto tree = sample_tree();
  std::stringstream buf;
  tree.save(buf);
  std::string bytes = buf.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(HarmoniaTree::load(truncated), ContractViolation);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream junk("definitely not a harmonia image at all, sorry");
  EXPECT_THROW(HarmoniaTree::load(junk), ContractViolation);
}

TEST(Serialize, SingleLeafTree) {
  const auto tree = sample_tree(5, 8);
  std::stringstream buf;
  tree.save(buf);
  const auto loaded = HarmoniaTree::load(buf);
  EXPECT_EQ(loaded.num_keys(), 5u);
  EXPECT_EQ(loaded.height(), 1u);
}

// Exhaustive torn-write model: a crash can cut the image at any byte.
// Every strict prefix must throw — across every field boundary (magic,
// version, header counts, each region's length word and payload, the
// extras section, the checksum trailer), load never returns a tree
// built from a partial image.
TEST(Serialize, TruncationAtEveryByteThrows) {
  TreeSnapshotExtras extras;
  extras.fill_factor = 0.8;
  extras.overlay = {{3, 7, 0}, {9, 0, 1}};
  const std::string bytes = image_bytes(sample_tree(40, 8), extras);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream truncated(bytes.substr(0, len));
    EXPECT_THROW(HarmoniaTree::load(truncated), ContractViolation)
        << "prefix of " << len << "/" << bytes.size() << " bytes loaded";
  }
  std::stringstream whole(bytes);
  EXPECT_NO_THROW(HarmoniaTree::load(whole));
}

// Exhaustive corruption model: a flip anywhere — header, counts, region
// payloads, extras, or the trailer itself — must throw. Count-field
// flips must fail via the header bounds or expected-length checks, not
// a runaway allocation.
TEST(Serialize, BitFlipAtEveryByteThrows) {
  TreeSnapshotExtras extras;
  extras.fill_factor = 0.8;
  extras.overlay = {{3, 7, 0}, {9, 0, 1}};
  const std::string bytes = image_bytes(sample_tree(40, 8), extras);
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x10);
    std::stringstream corrupted(flipped);
    EXPECT_THROW(HarmoniaTree::load(corrupted), ContractViolation)
        << "flip at byte " << pos << " loaded";
  }
}

TEST(Serialize, FailedLoadNeverTouchesExtrasOut) {
  // load only writes through the extras out-param after the checksum
  // verifies: a caller's defaults survive every failed load.
  const std::string bytes = image_bytes(sample_tree(40, 8));
  std::string torn = bytes.substr(0, bytes.size() - 3);
  TreeSnapshotExtras extras;
  extras.fill_factor = 0.123;
  extras.overlay = {{42, 42, 0}};
  std::stringstream is(torn);
  EXPECT_THROW(HarmoniaTree::load(is, &extras), ContractViolation);
  EXPECT_DOUBLE_EQ(extras.fill_factor, 0.123);
  ASSERT_EQ(extras.overlay.size(), 1u);
  EXPECT_EQ(extras.overlay[0].key, 42u);
}

TEST(Serialize, ExtrasRoundTrip) {
  const auto tree = sample_tree(200, 8);
  TreeSnapshotExtras extras;
  extras.fill_factor = 0.75;
  extras.overlay = {{2, 11, 0}, {5, 0, 1}, {8, 33, 0}};
  std::stringstream buf;
  tree.save(buf, extras);
  TreeSnapshotExtras out;
  const auto loaded = HarmoniaTree::load(buf, &out);
  loaded.validate();
  EXPECT_DOUBLE_EQ(out.fill_factor, 0.75);
  ASSERT_EQ(out.overlay.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.overlay[i].key, extras.overlay[i].key);
    EXPECT_EQ(out.overlay[i].value, extras.overlay[i].value);
    EXPECT_EQ(out.overlay[i].tombstone, extras.overlay[i].tombstone);
  }
}

TEST(Serialize, V1ImageLoadsWithDefaultExtras) {
  // A v1 image is the v2 layout minus the extras section, sealed with
  // its own checksum. Build one from a v2 image: strip extras (16 bytes
  // for fill + empty-overlay count) and the trailer, set version = 1,
  // reseal. v1 archives written before the extras section must keep
  // loading forever.
  const auto tree = sample_tree(120, 8);
  const std::string v2 = image_bytes(tree);
  ASSERT_GT(v2.size(), 24u);
  std::string v1 = v2.substr(0, v2.size() - 24);  // drop extras + trailer
  const std::uint32_t version = 1;
  std::memcpy(v1.data() + 4, &version, sizeof version);  // after the magic
  const std::uint64_t h = fnv64(v1);
  v1.append(reinterpret_cast<const char*>(&h), sizeof h);

  TreeSnapshotExtras extras;
  std::stringstream is(v1);
  const auto loaded = HarmoniaTree::load(is, &extras);
  loaded.validate();
  EXPECT_EQ(loaded.num_keys(), tree.num_keys());
  EXPECT_DOUBLE_EQ(extras.fill_factor, 0.69);  // v1 default
  EXPECT_TRUE(extras.overlay.empty());
}

TEST(Serialize, RejectsMalformedExtras) {
  const auto tree = sample_tree(60, 8);
  {
    TreeSnapshotExtras bad;
    bad.fill_factor = 1.5;  // outside (0, 1]
    std::stringstream buf;
    tree.save(buf, bad);
    EXPECT_THROW(HarmoniaTree::load(buf), ContractViolation);
  }
  {
    TreeSnapshotExtras bad;
    bad.overlay = {{9, 1, 0}, {4, 1, 0}};  // keys not ascending
    std::stringstream buf;
    tree.save(buf, bad);
    EXPECT_THROW(HarmoniaTree::load(buf), ContractViolation);
  }
  {
    TreeSnapshotExtras bad;
    bad.overlay = {{4, 1, 2}};  // tombstone flag out of range
    std::stringstream buf;
    tree.save(buf, bad);
    EXPECT_THROW(HarmoniaTree::load(buf), ContractViolation);
  }
  {
    TreeSnapshotExtras bad;
    bad.overlay = {{kPadKey, 1, 0}};  // pad key can never be overlaid
    std::stringstream buf;
    tree.save(buf, bad);
    EXPECT_THROW(HarmoniaTree::load(buf), ContractViolation);
  }
}

}  // namespace
}  // namespace harmonia
