#include "harmonia/index.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/expect.hpp"

#include "queries/workload.hpp"

namespace harmonia {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

std::vector<btree::Entry> entries_for(const std::vector<Key>& keys) {
  std::vector<btree::Entry> out;
  for (Key k : keys) out.push_back({k, btree::value_for_key(k)});
  return out;
}

TEST(HarmoniaIndex, BuildAndSearchAllPsaModes) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(3000, 1);
  auto index = HarmoniaIndex::build(dev, entries_for(keys), {.fanout = 16});
  const auto qs = queries::make_queries(keys, 1000, queries::Distribution::kUniform, 2);

  for (PsaMode mode : {PsaMode::kNone, PsaMode::kFull, PsaMode::kPartial}) {
    QueryOptions qopts;
    qopts.psa = mode;
    const auto result = index.search(qs, qopts);
    ASSERT_EQ(result.values.size(), qs.size());
    for (std::size_t i = 0; i < qs.size(); ++i) {
      ASSERT_EQ(result.values[i], btree::value_for_key(qs[i]))
          << "mode " << static_cast<int>(mode) << " query " << i;
    }
  }
}

TEST(HarmoniaIndex, ResultsInArrivalOrderDespiteSorting) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(2000, 3);
  auto index = HarmoniaIndex::build(dev, entries_for(keys), {.fanout = 16});
  // Reverse-sorted arrival order: PSA reorders internally, results must
  // come back in arrival order.
  std::vector<Key> qs(keys.rbegin(), keys.rbegin() + 500);
  const auto result = index.search(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(result.values[i], btree::value_for_key(qs[i]));
  }
}

TEST(HarmoniaIndex, MissesGetSentinel) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(1000, 4);
  auto index = HarmoniaIndex::build(dev, entries_for(keys), {.fanout = 16});
  const auto missing = queries::make_missing_keys(keys, 100, 5);
  const auto result = index.search(missing);
  for (Value v : result.values) EXPECT_EQ(v, kNotFound);
}

TEST(HarmoniaIndex, NtgSelectsNarrowGroupForLargeFanout) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(8000, 6);
  auto index = HarmoniaIndex::build(dev, entries_for(keys), {.fanout = 64});
  const auto qs = queries::make_queries(keys, 2000, queries::Distribution::kUniform, 7);
  const auto result = index.search(qs);
  EXPECT_LT(result.group_size_used, 32u);  // narrowed below fanout-based
  EXPECT_GE(result.group_size_used, 1u);
}

TEST(HarmoniaIndex, ExplicitGroupSizeRespected) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(1000, 8);
  auto index = HarmoniaIndex::build(dev, entries_for(keys), {.fanout = 16});
  QueryOptions qopts;
  qopts.auto_ntg = false;
  qopts.group_size = 8;
  const auto result = index.search(queries::make_queries(keys, 100, queries::Distribution::kUniform, 9), qopts);
  EXPECT_EQ(result.group_size_used, 8u);
}

TEST(HarmoniaIndex, TimingFieldsPopulated) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(2000, 10);
  auto index = HarmoniaIndex::build(dev, entries_for(keys), {.fanout = 16});
  const auto qs = queries::make_queries(keys, 512, queries::Distribution::kUniform, 11);
  const auto result = index.search(qs);
  EXPECT_GT(result.kernel_seconds, 0.0);
  EXPECT_GT(result.sort_seconds, 0.0);  // partial PSA sorts by default here
  EXPECT_GT(result.throughput(), 0.0);
  EXPECT_GT(result.sorted_bits, 0u);
}

TEST(HarmoniaIndex, QueryUpdateQueryPhases) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(3000, 12);
  auto index = HarmoniaIndex::build(dev, entries_for(keys), {.fanout = 16});

  // Phase 1: query.
  auto qs = queries::make_queries(keys, 300, queries::Distribution::kUniform, 13);
  auto r1 = index.search(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(r1.values[i], btree::value_for_key(qs[i]));
  }

  // Phase 2: batch update (inserts force splits + device re-sync).
  queries::BatchSpec spec;
  spec.size = 1000;
  spec.insert_fraction = 0.3;
  spec.seed = 14;
  const auto ops = queries::make_update_batch(keys, spec);
  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  for (const auto& op : ops) {
    if (op.kind == queries::OpKind::kInsert || op.kind == queries::OpKind::kUpdate) {
      oracle[op.key] = op.value;
    }
  }
  const auto stats = index.update_batch(ops, 2);
  EXPECT_EQ(stats.total_ops(), 1000u);
  EXPECT_GT(index.last_sync_seconds(), 0.0);
  index.tree().validate();

  // Phase 3: query again — device image must reflect the updates.
  std::vector<Key> qs2;
  for (const auto& op : ops) qs2.push_back(op.key);
  const auto r2 = index.search(qs2);
  for (std::size_t i = 0; i < qs2.size(); ++i) {
    ASSERT_EQ(r2.values[i], oracle.at(qs2[i])) << "key " << qs2[i];
  }
}

TEST(HarmoniaIndex, HostRangeMatchesTree) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(2000, 15);
  auto index = HarmoniaIndex::build(dev, entries_for(keys), {.fanout = 32});
  const auto out = index.range_host(keys[10], keys[60]);
  ASSERT_EQ(out.size(), 51u);
  EXPECT_EQ(out.front().key, keys[10]);
  EXPECT_EQ(out.back().key, keys[60]);
}

TEST(HarmoniaIndex, RangeDeviceMatchesHost) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(3000, 18);
  auto index = HarmoniaIndex::build(dev, entries_for(keys), {.fanout = 16});

  std::vector<Key> los, his;
  for (std::size_t i = 0; i < 20; ++i) {
    los.push_back(keys[i * 100]);
    his.push_back(keys[i * 100 + 30]);
  }
  const auto result = index.range_device(los, his);
  ASSERT_EQ(result.values.size(), los.size());
  for (std::size_t q = 0; q < los.size(); ++q) {
    const auto expect = index.range_host(los[q], his[q], 64);
    ASSERT_EQ(result.values[q].size(), expect.size()) << "query " << q;
    for (std::size_t j = 0; j < expect.size(); ++j) {
      ASSERT_EQ(result.values[q][j], expect[j].value);
    }
  }
  EXPECT_EQ(result.total_results, 20u * 31u);
  EXPECT_GT(result.kernel_seconds, 0.0);
}

TEST(HarmoniaIndex, RangeDeviceCapsResults) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(1000, 19);
  auto index = HarmoniaIndex::build(dev, entries_for(keys), {.fanout = 16});
  const std::vector<Key> los{keys.front()};
  const std::vector<Key> his{keys.back()};
  const auto result = index.range_device(los, his, 8);
  ASSERT_EQ(result.values[0].size(), 8u);
}

TEST(HarmoniaIndex, RangeDeviceRejectsMismatchedBounds) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(100, 20);
  auto index = HarmoniaIndex::build(dev, entries_for(keys), {.fanout = 8});
  const std::vector<Key> los{1, 2};
  const std::vector<Key> his{3};
  EXPECT_THROW(index.range_device(los, his), ContractViolation);
}

TEST(HarmoniaIndex, PsaOverrideBits) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(4000, 16);
  auto index = HarmoniaIndex::build(dev, entries_for(keys), {.fanout = 16});
  QueryOptions qopts;
  qopts.psa_override_bits = 12;
  const auto result =
      index.search(queries::make_queries(keys, 200, queries::Distribution::kUniform, 17), qopts);
  EXPECT_EQ(result.sorted_bits, 12u);
}

}  // namespace
}  // namespace harmonia
