#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/expect.hpp"

namespace harmonia::obs {
namespace {

TEST(Counter, IncrementsAndBulkAdds) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAccumulate) {
  Gauge g;
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(0.25);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST(LatencyHistogram, BucketsByHalfOpenEdgeIntervals) {
  LatencyHistogram h({1.0, 2.0, 4.0, 8.0});
  ASSERT_EQ(h.bucket_count(), 3u);
  h.observe(1.0);  // [1, 2)
  h.observe(1.9);
  h.observe(2.0);  // [2, 4)
  h.observe(7.9);  // [4, 8)
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.9 + 2.0 + 7.9);
}

TEST(LatencyHistogram, ExplicitUnderOverflow) {
  // The whole point of the redesign: out-of-range samples must never be
  // absorbed into the edge buckets.
  LatencyHistogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // under
  h.observe(4.0);   // hi edge is exclusive: over
  h.observe(100.0); // over
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(h.bucket(1), 0u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 3u);  // count/sum still cover every sample
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
}

TEST(LatencyHistogram, RejectsBadEdges) {
  EXPECT_THROW(LatencyHistogram({}), ContractViolation);
  EXPECT_THROW(LatencyHistogram({1.0}), ContractViolation);
  EXPECT_THROW(LatencyHistogram({1.0, 1.0}), ContractViolation);
  EXPECT_THROW(LatencyHistogram({2.0, 1.0}), ContractViolation);
}

TEST(LatencyHistogram, ExponentialEdges) {
  const auto edges = LatencyHistogram::exponential_edges(1e-6, 1.0, 12);
  ASSERT_EQ(edges.size(), 13u);
  EXPECT_DOUBLE_EQ(edges.front(), 1e-6);
  EXPECT_DOUBLE_EQ(edges.back(), 1.0);
  for (std::size_t i = 1; i < edges.size(); ++i) EXPECT_LT(edges[i - 1], edges[i]);
  // Geometric spacing: each bucket spans the same ratio.
  const double r0 = edges[1] / edges[0];
  for (std::size_t i = 2; i < edges.size(); ++i)
    EXPECT_NEAR(edges[i] / edges[i - 1], r0, 1e-9);
}

TEST(MetricsRegistry, HandlesAreStableAcrossRegistrations) {
  MetricsRegistry m;
  Counter& a = m.counter("x_total");
  a.inc(3);
  // Re-registering the same name returns the same instrument; creating
  // many other metrics must not move it.
  for (int i = 0; i < 100; ++i) m.counter("other_" + std::to_string(i));
  Counter& b = m.counter("x_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  LatencyHistogram& h1 = m.histogram("h_seconds", {1.0, 2.0});
  LatencyHistogram& h2 = m.histogram("h_seconds", {5.0, 6.0, 7.0});  // ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bucket_count(), 1u);
}

TEST(MetricsRegistry, KindConflictThrows) {
  MetricsRegistry m;
  m.counter("x");
  EXPECT_THROW(m.gauge("x"), ContractViolation);
  EXPECT_THROW(m.histogram("x", {1.0, 2.0}), ContractViolation);
  m.gauge("g");
  EXPECT_THROW(m.counter("g"), ContractViolation);
}

TEST(MetricsRegistry, PrometheusTextFormat) {
  MetricsRegistry m;
  m.counter("serve_admitted_total{kind=\"point\"}").inc(7);
  m.counter("serve_admitted_total{kind=\"range\"}").inc(2);
  m.gauge("serve_makespan_seconds").set(0.5);
  LatencyHistogram& h = m.histogram("lat_seconds", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  h.observe(9.0);

  const std::string text = m.prometheus_text();
  EXPECT_EQ(text,
            "# TYPE lat_seconds histogram\n"
            "lat_seconds_bucket{le=\"2\"} 2\n"   // underflow + [1,2)
            "lat_seconds_bucket{le=\"4\"} 3\n"
            "lat_seconds_bucket{le=\"+Inf\"} 4\n"
            "lat_seconds_underflow_total 1\n"
            "lat_seconds_overflow_total 1\n"
            "lat_seconds_sum 14\n"
            "lat_seconds_count 4\n"
            "# TYPE serve_admitted_total counter\n"
            "serve_admitted_total{kind=\"point\"} 7\n"
            "serve_admitted_total{kind=\"range\"} 2\n"
            "# TYPE serve_makespan_seconds gauge\n"
            "serve_makespan_seconds 0.5\n");
  // Determinism: a second render is byte-identical.
  EXPECT_EQ(text, m.prometheus_text());
}

TEST(MetricsRegistry, LabelledHistogramSplicesLeLabel) {
  MetricsRegistry m;
  m.histogram("h_seconds{shard=\"3\"}", {1.0, 2.0}).observe(1.5);
  const std::string text = m.prometheus_text();
  EXPECT_NE(text.find("h_seconds_bucket{shard=\"3\",le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("h_seconds_bucket{shard=\"3\",le=\"+Inf\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistry, ConcurrentHotPathIsExact) {
  // The hot path (cached handles, relaxed atomics) must lose no counts
  // under contention; TSan covers the registry's cold path too.
  MetricsRegistry m;
  Counter& c = m.counter("hits_total");
  LatencyHistogram& h = m.histogram("lat_seconds", {0.0, 1.0, 2.0, 3.0, 4.0});
  constexpr int kThreads = 4;
  constexpr int kPer = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        c.inc();
        h.observe(static_cast<double>((t + i) % 4));
        if (i % 1000 == 0) m.counter("hits_total");  // cold path under fire
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPer);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPer);
  std::uint64_t in_buckets = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) in_buckets += h.bucket(i);
  EXPECT_EQ(in_buckets + h.underflow() + h.overflow(), h.count());
}

}  // namespace
}  // namespace harmonia::obs
