#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace harmonia::obs {
namespace {

TraceRecorder make_sample() {
  TraceRecorder t;
  t.stamp(7, Stage::kQueueEnter, 1e-6, 0);
  t.stamp(7, Stage::kBatchForm, 2e-6, 0);
  t.stamp(7, Stage::kDispatch, 2.5e-6, 0, "attempts=2");
  t.annotate(3e-6, 1, "fault slowdown factor=4");
  t.stamp(8, Stage::kQueueEnter, 3.5e-6, TraceRecorder::kNoShard, "update");
  t.stamp(7, Stage::kReply, 4e-6, 0);
  return t;
}

TEST(TraceRecorder, RecordsInOrder) {
  const TraceRecorder t = make_sample();
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t.events()[0].stage, Stage::kQueueEnter);
  EXPECT_EQ(t.events()[3].request_id, TraceRecorder::kNoRequest);
  EXPECT_EQ(t.events()[3].stage, Stage::kAnnotation);
  EXPECT_EQ(t.events()[5].stage, Stage::kReply);
}

TEST(TraceRecorder, ForRequestFiltersById) {
  const TraceRecorder t = make_sample();
  const auto seven = t.for_request(7);
  ASSERT_EQ(seven.size(), 4u);
  EXPECT_EQ(seven.front().stage, Stage::kQueueEnter);
  EXPECT_EQ(seven.back().stage, Stage::kReply);
  EXPECT_EQ(t.for_request(8).size(), 1u);
  EXPECT_TRUE(t.for_request(12345).empty());
}

TEST(TraceRecorder, CsvFormat) {
  const TraceRecorder t = make_sample();
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "request_id,stage,at_seconds,shard,note\n"
            "7,queue_enter,1e-06,0,\n"
            "7,batch_form,2e-06,0,\n"
            "7,dispatch,2.5e-06,0,attempts=2\n"
            "-,annotation,3e-06,1,fault slowdown factor=4\n"
            "8,queue_enter,3.5e-06,-,update\n"
            "7,reply,4e-06,0,\n");
}

TEST(TraceRecorder, JsonFormatAndEscaping) {
  TraceRecorder t;
  t.annotate(0.5, 2, "note with \"quotes\" and \\slash");
  std::ostringstream os;
  t.write_json(os);
  EXPECT_EQ(os.str(),
            "[\n"
            "  {\"stage\": \"annotation\", \"at\": 0.5, \"shard\": 2, "
            "\"note\": \"note with \\\"quotes\\\" and \\\\slash\"}\n"
            "]\n");
}

TEST(TraceRecorder, DumpsAreDeterministic) {
  // The CI gate diffs two same-seed runs byte for byte; the recorder's
  // own serialization must be a pure function of the event sequence.
  const TraceRecorder a = make_sample();
  const TraceRecorder b = make_sample();
  std::ostringstream csv_a, csv_b, json_a, json_b;
  a.write_csv(csv_a);
  b.write_csv(csv_b);
  a.write_json(json_a);
  b.write_json(json_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_EQ(json_a.str(), json_b.str());
}

TEST(TraceRecorder, ClearEmptiesTheBuffer) {
  TraceRecorder t = make_sample();
  EXPECT_FALSE(t.empty());
  t.clear();
  EXPECT_TRUE(t.empty());
  std::ostringstream os;
  t.write_json(os);
  EXPECT_EQ(os.str(), "[\n]\n");
}

}  // namespace
}  // namespace harmonia::obs
