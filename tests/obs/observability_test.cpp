// End-to-end observability over the serving stack: attaching a registry
// and trace recorder must not change a single response, the exported
// counters must agree with the run report, the report invariants must
// hold over random fault plans (the property test the accounting bugs
// motivated), and two same-seed observed runs must dump byte-identical
// metrics and traces (the in-code twin of the CI determinism gate).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "queries/workload.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "shard/sharded_server.hpp"

namespace harmonia {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

struct SingleFixture {
  explicit SingleFixture(std::uint64_t tree_keys = 1 << 12)
      : keys(queries::make_tree_keys(tree_keys, 1)), index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          return HarmoniaIndex::build(dev, entries, {.fanout = 16});
        }()) {}

  gpusim::Device dev{test_spec()};
  std::vector<Key> keys;
  HarmoniaIndex index;
};

struct ShardedFixture {
  explicit ShardedFixture(unsigned shards, std::uint64_t tree_keys = 1 << 12)
      : keys(queries::make_tree_keys(tree_keys, 1)), index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          shard::ShardedOptions options;
          options.index.fanout = 16;
          options.device = test_spec();
          options.device_global_bytes = 256 << 20;
          return shard::ShardedIndex(
              entries, shard::ShardPlan::sample_balanced(keys, shards), options);
        }()) {}

  std::vector<Key> keys;
  shard::ShardedIndex index;
};

std::vector<serve::Request> test_stream(const std::vector<Key>& keys,
                                        std::uint64_t seed,
                                        std::uint64_t count = 4000) {
  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = count;
  spec.update_fraction = 0.15;
  spec.range_fraction = 0.10;
  spec.range_span = 64;
  spec.seed = seed;
  return serve::make_open_loop(keys, spec);
}

serve::ServeOptions server_config() {
  serve::ServeOptions cfg;
  cfg.batch.max_batch = 128;
  cfg.batch.max_wait = 80e-6;
  cfg.batch.queue_capacity = 512;  // small enough to exercise rejections
  cfg.epoch.max_buffered = 250;
  return cfg;
}

fault::FaultPlan random_plan(unsigned shards, std::uint64_t seed,
                             bool with_losses = false) {
  fault::FaultPlan::RandomSpec rspec;
  rspec.horizon = 1.2e-3;
  rspec.events_per_second = 4000;
  rspec.num_shards = shards;
  // Random back-to-back losses on one shard would (correctly) trip the
  // no-relost-while-fenced contract; losses are exercised separately.
  if (!with_losses)
    rspec.weights[static_cast<int>(fault::FaultKind::kShardLost)] = 0.0;
  return fault::FaultPlan::random(rspec, seed);
}

void expect_same_responses(const serve::ServerReport& a,
                           const serve::ServerReport& b) {
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    ASSERT_EQ(a.responses[i].id, b.responses[i].id) << "response " << i;
    ASSERT_EQ(a.responses[i].value, b.responses[i].value) << "response " << i;
    ASSERT_EQ(a.responses[i].dropped, b.responses[i].dropped) << "response " << i;
    ASSERT_DOUBLE_EQ(a.responses[i].completion, b.responses[i].completion)
        << "response " << i;
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

// Attaching the observer must be invisible to the simulation: every
// response, drop decision, and virtual timestamp identical to a run with
// no observer — on the single-device and the sharded path, under faults.
TEST(Observability, ObserverDoesNotPerturbSingleDeviceRun) {
  auto run = [](bool observed) {
    SingleFixture f;
    serve::ServeOptions cfg = server_config();
    cfg.faults = fault::FaultPlan::random(
        [] {
          fault::FaultPlan::RandomSpec r;
          r.horizon = 1.0e-3;
          r.events_per_second = 3000;
          r.weights[static_cast<int>(fault::FaultKind::kShardLost)] = 0.0;
          return r;
        }(),
        5);
    obs::MetricsRegistry metrics;
    obs::TraceRecorder trace;
    if (observed) cfg.obs = {&metrics, &trace};
    serve::Server server(f.index, cfg);
    auto report = server.run(test_stream(f.keys, 9));
    if (observed) {
      EXPECT_GT(metrics.prometheus_text().size(), 0u);
      EXPECT_FALSE(trace.empty());
    }
    return report;
  };
  expect_same_responses(run(false), run(true));
}

TEST(Observability, ObserverDoesNotPerturbShardedRun) {
  auto run = [](bool observed) {
    ShardedFixture f(4);
    serve::ServeOptions cfg;
    cfg.batch.max_batch = 128;
    cfg.batch.max_wait = 80e-6;
    cfg.batch.queue_capacity = 512;
    cfg.epoch.max_buffered = 250;
    cfg.faults = random_plan(4, 17);
    obs::MetricsRegistry metrics;
    obs::TraceRecorder trace;
    if (observed) cfg.obs = {&metrics, &trace};
    shard::ShardedServer server(f.index, cfg);
    return server.run(test_stream(f.keys, 21));
  };
  expect_same_responses(run(false), run(true));
}

// The exported counters are the report, renamed: cross-check every pair
// that must agree. This is the metric-level half of the accounting
// identity the report builders assert internally.
TEST(Observability, MetricsAgreeWithReport) {
  ShardedFixture f(4);
  serve::ServeOptions cfg;
  cfg.batch.max_batch = 128;
  cfg.batch.max_wait = 80e-6;
  cfg.batch.queue_capacity = 256;  // force some rejections
  cfg.epoch.max_buffered = 250;
  cfg.faults = random_plan(4, 17);
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  cfg.obs = {&metrics, &trace};
  shard::ShardedServer server(f.index, cfg);
  const auto report = server.run(test_stream(f.keys, 21, 6000));

  EXPECT_EQ(metrics.counter("serve_epochs_total").value(), report.epochs);
  EXPECT_EQ(metrics.counter("shard_split_ranges_total").value(),
            report.split_ranges);
  EXPECT_EQ(metrics.counter("fault_slowdown_windows_total").value(),
            report.faults.slowdown_windows);
  EXPECT_EQ(metrics.counter("fault_dispatch_failures_total").value(),
            report.faults.dispatch_failures);
  EXPECT_EQ(metrics.counter("fault_corruptions_total").value(),
            report.faults.corruptions);
  EXPECT_EQ(metrics.counter("fault_checksum_mismatches_total").value(),
            report.faults.checksum_mismatches);
  EXPECT_DOUBLE_EQ(metrics.gauge("serve_makespan_seconds").value(),
                   report.makespan);
  EXPECT_DOUBLE_EQ(metrics.gauge("serve_busy_seconds").value(),
                   report.busy_seconds);

  // Per-shard scheduler admissions sum to the schedulers' view of the
  // stream (every sub-request, unlike report.shard_admitted — see the
  // serve::ServerReport field comment for why these two differ).
  std::uint64_t sched_admitted = 0;
  std::uint64_t sched_batches = 0;
  for (unsigned s = 0; s < 4; ++s) {
    for (const char* kind : {"point", "range"}) {
      const std::string labels = std::string{"{kind=\""} + kind + "\",shard=\"" +
                                 std::to_string(s) + "\"}";
      sched_admitted += metrics.counter("serve_admitted_total" + labels).value();
      sched_batches += metrics.counter("serve_batches_total" + labels).value();
    }
  }
  EXPECT_GT(sched_admitted, 0u);
  EXPECT_EQ(sched_batches, report.batches);

  // Every admitted query was stamped queue-enter and every arrival got
  // exactly one reply stamp.
  std::uint64_t replies = 0;
  for (const auto& e : trace.events())
    if (e.stage == obs::Stage::kReply) ++replies;
  EXPECT_EQ(replies, report.arrivals);
}

// The property test the accounting bugs motivated: for a sweep of seeds
// and shard counts, under random fault plans, the counter identities
// (arrivals == admitted + dropped; admitted == completed + shed +
// update_requests; one response per arrival; per-shard sums) must hold.
// check_invariants() runs inside run() and throws on violation — the
// explicit calls below also guard against it being silently skipped.
TEST(Observability, InvariantsHoldOverRandomFaultPlans) {
  for (const unsigned shards : {1u, 3u}) {
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
      SCOPED_TRACE(testing::Message() << shards << " shard(s), seed " << seed);
      ShardedFixture f(shards);
      serve::ServeOptions cfg;
      cfg.batch.max_batch = 128;
      cfg.batch.max_wait = 80e-6;
      cfg.batch.queue_capacity = 256;
      cfg.epoch.max_buffered = 200;
      cfg.faults = random_plan(shards, seed * 13 + 1);
      obs::MetricsRegistry metrics;
      cfg.obs = {&metrics, nullptr};
      shard::ShardedServer server(f.index, cfg);
      const auto report = server.run(test_stream(f.keys, seed * 7 + 3));
      ASSERT_NO_THROW(report.check_invariants());
      EXPECT_GT(report.arrivals, 0u);
      EXPECT_EQ(report.arrivals, report.admitted + report.dropped);
      EXPECT_EQ(report.admitted,
                report.completed + report.shed + report.update_requests);
    }
  }
  // Single-device Server under its own random plans.
  for (const std::uint64_t seed : {11u, 12u}) {
    SCOPED_TRACE(testing::Message() << "single device, seed " << seed);
    SingleFixture f;
    serve::ServeOptions cfg = server_config();
    cfg.faults = random_plan(1, seed);
    serve::Server server(f.index, cfg);
    const auto report = server.run(test_stream(f.keys, seed));
    ASSERT_NO_THROW(report.check_invariants());
    EXPECT_EQ(report.arrivals, report.admitted + report.dropped);
  }
}

TEST(Observability, ViolatedInvariantThrowsWithDiagnostic) {
  serve::ServerReport report;
  report.arrivals = 10;
  report.admitted = 9;
  report.dropped = 0;  // 9 + 0 != 10
  EXPECT_THROW(report.check_invariants(), ContractViolation);
  report.dropped = 1;
  report.completed = 9;
  report.responses.resize(10);
  // The per-class ledgers must reconcile with the totals too.
  report.class_arrivals[0] = 10;
  report.class_admitted[0] = 9;
  report.class_dropped[0] = 1;
  report.class_completed[0] = 9;
  EXPECT_THROW(report.check_invariants(), ContractViolation);  // no latencies
  for (int i = 0; i < 9; ++i) {
    report.latency.add(1e-6 * (i + 1));
    report.class_latency[0].add(1e-6 * (i + 1));
  }
  EXPECT_NO_THROW(report.check_invariants());
  report.shed = 1;  // completed + shed + update_requests > admitted
  EXPECT_THROW(report.check_invariants(), ContractViolation);
}

TEST(Observability, ShardedInvariantCatchesBrokenPerShardSums) {
  serve::ServerReport report;
  report.arrivals = 4;
  report.admitted = 4;
  report.completed = 4;
  report.responses.resize(4);
  report.class_arrivals[0] = 4;
  report.class_admitted[0] = 4;
  report.class_completed[0] = 4;
  for (int i = 0; i < 4; ++i) {
    report.latency.add(1e-6 * (i + 1));
    report.class_latency[0].add(1e-6 * (i + 1));
  }
  report.shard_admitted = {2, 1};  // sums to 3, not 4
  report.shard_dropped = {0, 0};
  report.shard_batches = {0, 0};
  EXPECT_THROW(report.check_invariants(), ContractViolation);
  report.shard_admitted = {2, 2};
  report.batches = 1;  // per-shard batches sum to 0, not 1
  EXPECT_THROW(report.check_invariants(), ContractViolation);
  report.shard_batches = {1, 0};
  EXPECT_NO_THROW(report.check_invariants());
}

// Two same-seed observed runs must dump byte-identical Prometheus text
// and trace CSV/JSON — what the CI metrics-determinism gate enforces on
// the full binary, pinned here at library level.
TEST(Observability, SameSeedRunsDumpByteIdenticalObservations) {
  auto dump_once = [] {
    ShardedFixture f(4);
    serve::ServeOptions cfg;
    cfg.batch.max_batch = 128;
    cfg.batch.max_wait = 80e-6;
    cfg.batch.queue_capacity = 512;
    cfg.epoch.max_buffered = 250;
    cfg.faults = random_plan(4, 17);
    obs::MetricsRegistry metrics;
    obs::TraceRecorder trace;
    cfg.obs = {&metrics, &trace};
    shard::ShardedServer server(f.index, cfg);
    server.run(test_stream(f.keys, 21));
    std::ostringstream csv, json;
    trace.write_csv(csv);
    trace.write_json(json);
    return std::tuple{metrics.prometheus_text(), csv.str(), json.str()};
  };
  const auto a = dump_once();
  const auto b = dump_once();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_GT(std::get<1>(a).size(), 100u);
}

// Fault events must land in the trace as annotations interleaved on the
// virtual timeline, and a straddling range must leave scatter stamps on
// every involved shard plus one gather-merge stamp.
TEST(Observability, TraceCapturesFaultsAndFanOut) {
  ShardedFixture f(4);
  serve::ServeOptions cfg;
  cfg.batch.max_batch = 128;
  cfg.batch.max_wait = 80e-6;
  cfg.epoch.max_buffered = 250;
  cfg.faults = random_plan(4, 17);
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  cfg.obs = {&metrics, &trace};
  shard::ShardedServer server(f.index, cfg);
  const auto report = server.run(test_stream(f.keys, 21));

  std::uint64_t annotations = 0, scatters = 0, merges = 0;
  for (const auto& e : trace.events()) {
    if (e.stage == obs::Stage::kAnnotation) ++annotations;
    if (e.stage == obs::Stage::kShardScatter) ++scatters;
    if (e.stage == obs::Stage::kGatherMerge) ++merges;
  }
  EXPECT_GT(annotations, 0u) << "random plan injected nothing traceable";
  ASSERT_GT(report.split_ranges, 0u) << "stream produced no straddling range";
  EXPECT_EQ(merges, report.split_ranges);
  EXPECT_GE(scatters, 2 * report.split_ranges);  // >= 2 shards per split
}

}  // namespace
}  // namespace harmonia
