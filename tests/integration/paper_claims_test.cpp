// Directional checks of the paper's headline claims, at test scale:
// the *orderings* of Figures 11-13 (who wins, which metric drops) must
// hold on the simulator before the full benches sweep them.
#include <gtest/gtest.h>

#include "harmonia/index.hpp"
#include "hbtree/index.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.global_mem_bytes = 1ULL << 30;
  // Scale the cache hierarchy down with the test-scale tree so the memory
  // pressure matches the paper's (tree region >> L2); see EXPERIMENTS.md.
  spec.l2_bytes = 512 << 10;
  spec.readonly_cache_bytes_per_sm = 16 << 10;
  return spec;
}

std::vector<btree::Entry> entries_for(const std::vector<Key>& keys) {
  std::vector<btree::Entry> out;
  for (Key k : keys) out.push_back({k, btree::value_for_key(k)});
  return out;
}

struct Workbench {
  std::vector<Key> keys = queries::make_tree_keys(1 << 18, 1);
  std::vector<Key> qs =
      queries::make_queries(keys, 1 << 16, queries::Distribution::kUniform, 2);
  gpusim::Device dev_h{test_spec()};
  gpusim::Device dev_b{test_spec()};
  HarmoniaIndex harmonia_idx = HarmoniaIndex::build(dev_h, entries_for(keys), {.fanout = 64});
  hbtree::HBTreeIndex hb_idx = hbtree::HBTreeIndex::build(dev_b, entries_for(keys), 64);
};

TEST(PaperClaims, Fig12GlobalTransactionsDropVsHBTree) {
  Workbench s;
  QueryOptions plain;
  plain.psa = PsaMode::kNone;
  plain.auto_ntg = false;
  const auto hr = s.harmonia_idx.search(s.qs, plain);
  const auto br = s.hb_idx.search(s.qs);
  // Harmonia's prefix-sum region lives in constant memory / small caches:
  // far fewer transactions reach the L2/DRAM path than HB+'s pointer chase
  // over 1 KB node records (paper: 22%).
  EXPECT_LT(hr.search.metrics.global_transactions(),
            br.search.metrics.global_transactions());
  EXPECT_GE(hr.search.metrics.warp_coherence(), br.search.metrics.warp_coherence());
}

TEST(PaperClaims, Fig12PsaReducesMemoryDivergenceAndRaisesCoherence) {
  Workbench s;
  QueryOptions no_psa, with_psa;
  no_psa.psa = PsaMode::kNone;
  no_psa.auto_ntg = false;
  with_psa.psa = PsaMode::kPartial;
  with_psa.auto_ntg = false;
  // Narrowed groups pack several queries per warp: PSA's within-warp
  // coalescing and cross-warp locality both become visible.
  no_psa.group_size = 8;
  with_psa.group_size = 8;
  s.dev_h.flush_caches();
  const auto plain = s.harmonia_idx.search(s.qs, no_psa);
  s.dev_h.flush_caches();
  const auto sorted = s.harmonia_idx.search(s.qs, with_psa);
  EXPECT_LT(sorted.search.metrics.memory_divergence(),
            plain.search.metrics.memory_divergence());
  EXPECT_LT(sorted.search.metrics.dram_transactions,
            plain.search.metrics.dram_transactions);
  EXPECT_GE(sorted.search.metrics.warp_coherence(),
            plain.search.metrics.warp_coherence());
}

TEST(PaperClaims, Fig13AblationOrdering) {
  // HB+ < Harmonia tree < +PSA < +PSA+NTG in end-to-end throughput.
  Workbench s;
  const double hb = s.hb_idx.search(s.qs).throughput();

  QueryOptions tree_only;
  tree_only.psa = PsaMode::kNone;
  tree_only.auto_ntg = false;
  s.dev_h.flush_caches();
  const double harmonia_tree = s.harmonia_idx.search(s.qs, tree_only).throughput();

  QueryOptions with_psa = tree_only;
  with_psa.psa = PsaMode::kPartial;
  s.dev_h.flush_caches();
  const double psa = s.harmonia_idx.search(s.qs, with_psa).throughput();

  QueryOptions full = with_psa;
  full.auto_ntg = true;
  s.dev_h.flush_caches();
  const double ntg = s.harmonia_idx.search(s.qs, full).throughput();

  EXPECT_GT(harmonia_tree, hb);
  EXPECT_GT(psa, harmonia_tree);
  EXPECT_GE(ntg, psa * 0.95);  // NTG must not regress materially
}

TEST(PaperClaims, Fig11HarmoniaBeatsHBTreeAcrossSizes) {
  for (std::uint64_t size : {1u << 16, 1u << 18}) {
    const auto keys = queries::make_tree_keys(size, size);
    const auto qs =
        queries::make_queries(keys, 1 << 15, queries::Distribution::kUniform, 3);
    gpusim::Device dev_h(test_spec()), dev_b(test_spec());
    auto h = HarmoniaIndex::build(dev_h, entries_for(keys), {.fanout = 64});
    auto b = hbtree::HBTreeIndex::build(dev_b, entries_for(keys), 64);
    const double ht = h.search(qs).throughput();
    const double bt = b.search(qs).throughput();
    EXPECT_GT(ht, bt) << "tree size " << size;
  }
}

TEST(PaperClaims, Fig8FullSortKernelFasterButTotalCanLose) {
  // §4.1.1: complete sorting speeds the kernel but its overhead eats the
  // gain; PSA keeps most of the kernel win at ~35% of the sort cost.
  Workbench s;
  QueryOptions none, full, partial;
  none.psa = PsaMode::kNone;
  none.auto_ntg = false;
  full.psa = PsaMode::kFull;
  full.auto_ntg = false;
  partial.psa = PsaMode::kPartial;
  partial.auto_ntg = false;

  s.dev_h.flush_caches();
  const auto r_none = s.harmonia_idx.search(s.qs, none);
  s.dev_h.flush_caches();
  const auto r_full = s.harmonia_idx.search(s.qs, full);
  s.dev_h.flush_caches();
  const auto r_partial = s.harmonia_idx.search(s.qs, partial);

  EXPECT_LT(r_full.kernel_seconds, r_none.kernel_seconds);
  EXPECT_LT(r_partial.kernel_seconds, r_none.kernel_seconds);
  EXPECT_LT(r_partial.sort_seconds, r_full.sort_seconds * 0.5);
  EXPECT_LT(r_partial.total_seconds(), r_full.total_seconds());
}

TEST(PaperClaims, Fig10MostQueriesResolveInFrontHalf) {
  // §4.2 / Figure 10: ~80% of queries find their child within the front
  // half of the node's key slots.
  const auto keys = queries::make_tree_keys(1 << 15, 7);
  const auto bt = btree::make_tree(keys, 64);
  const auto tree = HarmoniaTree::from_btree(bt);
  const auto qs = queries::make_queries(keys, 20000, queries::Distribution::kUniform, 8);

  std::uint64_t front_half = 0, total = 0;
  for (Key q : qs) {
    std::uint32_t node = 0;
    for (unsigned level = 0; level + 1 < tree.height(); ++level) {
      const auto slots = tree.node_keys(node);
      const auto it = std::upper_bound(slots.begin(), slots.end(), q);
      const auto boundary = static_cast<unsigned>(it - slots.begin());
      if (boundary < tree.keys_per_node() / 2) ++front_half;
      ++total;
      node = tree.prefix_sum()[node] + boundary;
    }
  }
  EXPECT_GT(static_cast<double>(front_half) / static_cast<double>(total), 0.5);
}

}  // namespace
}  // namespace harmonia
