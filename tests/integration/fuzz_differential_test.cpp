// Differential fuzzing: random configurations (fanout, fill, tree size,
// distribution, group size, PSA mode) run the device kernels against the
// host oracles. Any divergence between the four implementations of search
// (CPU B+tree, Harmonia host, Harmonia device kernel, HB+ device kernel)
// is a bug.
#include <gtest/gtest.h>

#include "btree/btree.hpp"
#include "common/rng.hpp"
#include "harmonia/index.hpp"
#include "hbtree/index.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

gpusim::DeviceSpec fuzz_spec(Xoshiro256& rng) {
  auto spec = gpusim::titan_v();
  spec.num_sms = 1 + static_cast<unsigned>(rng.next_below(16));
  spec.global_mem_bytes = 512 << 20;
  // Shrink caches sometimes to exercise eviction paths.
  if (rng.next_below(2) == 0) {
    spec.l2_bytes = 128 << 10;
    spec.readonly_cache_bytes_per_sm = 4 << 10;
  }
  return spec;
}

class FuzzDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDifferential, AllImplementationsAgree) {
  Xoshiro256 rng(GetParam());

  const unsigned fanout = 1u << (2 + rng.next_below(6));         // 4..128
  const double fill = 0.4 + rng.next_double() * 0.6;             // 0.4..1.0
  const std::uint64_t size = 64 + rng.next_below(6000);          // 64..~6k keys
  const std::uint64_t nq = 32 + rng.next_below(800);
  const auto dist = static_cast<queries::Distribution>(rng.next_below(5));

  const auto keys = queries::make_tree_keys(size, GetParam() + 1);
  std::vector<btree::Entry> entries;
  for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});

  const auto bt = btree::make_tree(keys, fanout, fill);
  bt.validate();

  gpusim::Device dev_h(fuzz_spec(rng));
  HarmoniaIndex::Options opts;
  opts.fanout = fanout;
  opts.fill_factor = fill;
  // Sometimes starve the constant budget to force the global ps path.
  if (rng.next_below(3) == 0) opts.const_budget_bytes = rng.next_below(256);
  auto h_idx = HarmoniaIndex::build(dev_h, entries, opts);
  h_idx.tree().validate();

  gpusim::Device dev_b(fuzz_spec(rng));
  auto hb_idx = hbtree::HBTreeIndex::build(dev_b, entries, fanout, fill);

  // Mix hits with misses.
  auto qs = queries::make_queries(keys, nq, dist, GetParam() + 2);
  const auto missing = queries::make_missing_keys(keys, nq / 4 + 1, GetParam() + 3);
  qs.insert(qs.end(), missing.begin(), missing.end());

  QueryOptions qopts;
  qopts.psa = static_cast<PsaMode>(rng.next_below(3));
  qopts.auto_ntg = rng.next_below(2) == 0;
  if (!qopts.auto_ntg) {
    qopts.group_size = 1u << rng.next_below(6);  // 1..32
  }
  qopts.early_exit = rng.next_below(4) != 0;

  const auto hr = h_idx.search(qs, qopts);
  const auto br = hb_idx.search(qs);

  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto oracle = bt.search(qs[i]);
    const Value want = oracle ? *oracle : kNotFound;
    ASSERT_EQ(h_idx.search_host(qs[i]).value_or(kNotFound), want)
        << "harmonia host diverged at query " << i;
    ASSERT_EQ(hr.values[i], want) << "harmonia kernel diverged at query " << i
                                  << " (gs=" << hr.group_size_used << ")";
    ASSERT_EQ(br.values[i], want) << "hb+ kernel diverged at query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<std::uint64_t>(1, 25));

class FuzzUpdates : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzUpdates, BatchesMatchMapOracle) {
  Xoshiro256 rng(GetParam() * 977);
  const unsigned fanout = 1u << (2 + rng.next_below(5));  // 4..64
  const double fill = 0.5 + rng.next_double() * 0.5;
  const std::uint64_t size = 256 + rng.next_below(4000);

  const auto keys = queries::make_tree_keys(size, GetParam() + 10);
  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);

  const auto bt = btree::make_tree(keys, fanout, fill);
  BatchUpdater updater(HarmoniaTree::from_btree(bt));

  std::vector<Key> current = keys;
  for (int round = 0; round < 4; ++round) {
    queries::BatchSpec spec;
    // Keep updates below half the key set so distinct-key sampling holds
    // and the outcome stays thread-schedule independent (see batch.cpp).
    spec.size = 16 + rng.next_below(current.size() / 8 + 1);
    spec.insert_fraction = rng.next_double() * 0.4;
    spec.delete_fraction = rng.next_double() * 0.2;
    spec.seed = GetParam() * 31 + static_cast<std::uint64_t>(round);
    const auto ops = queries::make_update_batch(current, spec);

    for (const auto& op : ops) {
      switch (op.kind) {
        case queries::OpKind::kUpdate: {
          auto it = oracle.find(op.key);
          if (it != oracle.end()) it->second = op.value;
          break;
        }
        case queries::OpKind::kInsert:
          oracle[op.key] = op.value;
          break;
        case queries::OpKind::kDelete:
          oracle.erase(op.key);
          break;
      }
    }

    const unsigned threads = 1 + static_cast<unsigned>(rng.next_below(4));
    updater.apply(ops, threads);
    updater.tree().validate();
    ASSERT_EQ(updater.tree().num_keys(), oracle.size()) << "round " << round;

    for (const auto& [k, v] : oracle) {
      const auto got = updater.tree().search(k);
      ASSERT_TRUE(got.has_value()) << "round " << round << " key " << k;
      ASSERT_EQ(*got, v) << "round " << round << " key " << k;
    }

    current.clear();
    for (const auto& [k, v] : oracle) current.push_back(k);
    ASSERT_FALSE(current.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzUpdates, ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace harmonia
