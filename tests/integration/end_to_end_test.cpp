// Cross-structure integration: Harmonia and HB+Tree built from the same
// data must agree with each other and with the CPU B+tree, through query
// and update phases.
#include <gtest/gtest.h>

#include <map>

#include "harmonia/index.hpp"
#include "hbtree/index.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

std::vector<btree::Entry> entries_for(const std::vector<Key>& keys) {
  std::vector<btree::Entry> out;
  for (Key k : keys) out.push_back({k, btree::value_for_key(k)});
  return out;
}

TEST(EndToEnd, ThreeStructuresAgreeOnQueries) {
  const auto keys = queries::make_tree_keys(4000, 1);
  const auto entries = entries_for(keys);

  gpusim::Device dev_h(test_spec()), dev_b(test_spec());
  auto harmonia_idx = HarmoniaIndex::build(dev_h, entries, {.fanout = 32});
  auto hb_idx = hbtree::HBTreeIndex::build(dev_b, entries, 32);
  const auto bt = btree::make_tree(keys, 32);

  auto qs = queries::make_queries(keys, 1000, queries::Distribution::kUniform, 2);
  const auto missing = queries::make_missing_keys(keys, 200, 3);
  qs.insert(qs.end(), missing.begin(), missing.end());

  const auto hr = harmonia_idx.search(qs);
  const auto br = hb_idx.search(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto expect = bt.search(qs[i]);
    const Value want = expect ? *expect : kNotFound;
    ASSERT_EQ(hr.values[i], want) << "harmonia disagrees at " << i;
    ASSERT_EQ(br.values[i], want) << "hb+ disagrees at " << i;
  }
}

TEST(EndToEnd, UpdatePhasesKeepStructuresInAgreement) {
  const auto keys = queries::make_tree_keys(3000, 4);
  const auto entries = entries_for(keys);

  gpusim::Device dev_h(test_spec()), dev_b(test_spec());
  auto harmonia_idx = HarmoniaIndex::build(dev_h, entries, {.fanout = 16});
  auto hb_idx = hbtree::HBTreeIndex::build(dev_b, entries, 16);

  std::vector<Key> current = keys;
  for (int round = 0; round < 3; ++round) {
    queries::BatchSpec spec;
    spec.size = 800;
    spec.insert_fraction = 0.15;
    spec.delete_fraction = 0.05;
    spec.seed = static_cast<std::uint64_t>(round) + 10;
    const auto ops = queries::make_update_batch(current, spec);

    harmonia_idx.update_batch(ops, 2);
    hb_idx.update_batch(ops);
    harmonia_idx.tree().validate();
    hb_idx.tree().validate();
    ASSERT_EQ(harmonia_idx.tree().num_keys(), hb_idx.tree().size());

    // Query both over every touched key.
    std::vector<Key> qs;
    for (const auto& op : ops) qs.push_back(op.key);
    const auto hr = harmonia_idx.search(qs);
    const auto br = hb_idx.search(qs);
    for (std::size_t i = 0; i < qs.size(); ++i) {
      ASSERT_EQ(hr.values[i], br.values[i]) << "round " << round << " key " << qs[i];
    }

    // Refresh the key set for the next round from the host tree.
    const auto all = harmonia_idx.range_host(0, ~std::uint64_t{0} - 1);
    current.clear();
    for (const auto& e : all) current.push_back(e.key);
  }
}

TEST(EndToEnd, RangeAndPointQueriesConsistent) {
  const auto keys = queries::make_tree_keys(2000, 5);
  gpusim::Device dev(test_spec());
  auto index = HarmoniaIndex::build(dev, entries_for(keys), {.fanout = 16});
  const auto span = index.range_host(keys[50], keys[149]);
  ASSERT_EQ(span.size(), 100u);
  std::vector<Key> qs;
  for (const auto& e : span) qs.push_back(e.key);
  const auto result = index.search(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(result.values[i], span[i].value);
  }
}

}  // namespace
}  // namespace harmonia
