// Long-horizon systems test: the paper's phase-based usage model (§3.2)
// run for many alternating query/update phases against a strict oracle,
// with structural validation and device-image consistency after every
// phase. This is the OLAP example as a test.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "harmonia/index.hpp"
#include "queries/workload.hpp"

namespace harmonia {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

TEST(PhaseWorkflow, TenPhasesStayConsistent) {
  gpusim::Device dev(test_spec());
  const auto initial = queries::make_tree_keys(6000, 1);
  std::map<Key, Value> oracle;
  std::vector<btree::Entry> entries;
  for (Key k : initial) {
    const Value v = btree::value_for_key(k);
    oracle[k] = v;
    entries.push_back({k, v});
  }
  auto index = HarmoniaIndex::build(dev, entries, {.fanout = 16, .fill_factor = 0.8});

  Xoshiro256 rng(2);
  for (int phase = 0; phase < 10; ++phase) {
    std::vector<Key> current;
    current.reserve(oracle.size());
    for (const auto& [k, v] : oracle) current.push_back(k);

    if (phase % 2 == 0) {
      // Query phase: hits + misses, rotating distribution and PSA mode.
      auto qs = queries::make_queries(
          current, 800, static_cast<queries::Distribution>(phase / 2 % 4),
          static_cast<std::uint64_t>(phase) + 10);
      const auto missing =
          queries::make_missing_keys(current, 200, static_cast<std::uint64_t>(phase) + 50);
      qs.insert(qs.end(), missing.begin(), missing.end());

      QueryOptions qopts;
      qopts.psa = static_cast<PsaMode>(phase / 2 % 3);
      const auto r = index.search(qs, qopts);
      for (std::size_t i = 0; i < qs.size(); ++i) {
        const auto it = oracle.find(qs[i]);
        const Value want = it != oracle.end() ? it->second : kNotFound;
        ASSERT_EQ(r.values[i], want) << "phase " << phase << " query " << i;
      }
    } else {
      // Update phase: mixed batch, multiple threads.
      queries::BatchSpec spec;
      spec.size = 64 + rng.next_below(current.size() / 8);
      spec.insert_fraction = 0.1 + rng.next_double() * 0.2;
      spec.delete_fraction = rng.next_double() * 0.1;
      spec.seed = static_cast<std::uint64_t>(phase) * 7 + 3;
      const auto ops = queries::make_update_batch(current, spec);
      for (const auto& op : ops) {
        switch (op.kind) {
          case queries::OpKind::kUpdate:
            if (auto it = oracle.find(op.key); it != oracle.end()) it->second = op.value;
            break;
          case queries::OpKind::kInsert:
            oracle[op.key] = op.value;
            break;
          case queries::OpKind::kDelete:
            oracle.erase(op.key);
            break;
        }
      }
      const auto stats = index.update_batch(ops, 3);
      ASSERT_EQ(stats.total_ops(), ops.size());
      index.tree().validate();
      ASSERT_EQ(index.tree().num_keys(), oracle.size()) << "phase " << phase;
    }
  }

  // Final sweep: every oracle key answers, over the device kernel.
  std::vector<Key> all;
  std::vector<Value> want;
  for (const auto& [k, v] : oracle) {
    all.push_back(k);
    want.push_back(v);
  }
  const auto r = index.search(all);
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(r.values[i], want[i]) << "final sweep key " << all[i];
  }
  // And the full host range scan agrees with the oracle's order.
  const auto scan = index.range_host(0, ~std::uint64_t{0} - 1);
  ASSERT_EQ(scan.size(), oracle.size());
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(scan[i].key, k);
    ASSERT_EQ(scan[i].value, v);
    ++i;
  }
}

}  // namespace
}  // namespace harmonia
