// Faults through the sharded path: losing a device mid-run must fence
// the shard into correct (oracle-exact) degraded serving until a timed
// restore, hedged re-dispatch must recover scatter/gather stragglers
// without changing a single value, and any seeded random plan must
// replay to a byte-identical FaultReport CSV.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/expect.hpp"
#include "fault/checksum.hpp"
#include "queries/workload.hpp"
#include "serve/workload.hpp"
#include "shard/sharded_server.hpp"

namespace harmonia::shard {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

ShardedOptions test_options(unsigned fanout) {
  ShardedOptions options;
  options.index.fanout = fanout;
  options.device = test_spec();
  options.device_global_bytes = 256 << 20;
  return options;
}

struct ShardedFixture {
  explicit ShardedFixture(unsigned shards, std::uint64_t tree_keys = 1 << 12,
                          unsigned fanout = 16)
      : keys(queries::make_tree_keys(tree_keys, 1)),
        index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          return ShardedIndex(entries, ShardPlan::sample_balanced(keys, shards),
                              test_options(fanout));
        }()) {}

  std::vector<Key> keys;
  ShardedIndex index;
};

void apply_to_oracle(std::map<Key, Value>& oracle, const serve::Request& r) {
  switch (r.op) {
    case queries::OpKind::kUpdate:
      if (auto it = oracle.find(r.key); it != oracle.end()) it->second = r.value;
      break;
    case queries::OpKind::kInsert:
      oracle[r.key] = r.value;
      break;
    case queries::OpKind::kDelete:
      oracle.erase(r.key);
      break;
  }
}

std::vector<std::map<Key, Value>> make_snapshots(
    const std::vector<Key>& keys, const std::vector<serve::Request>& stream,
    std::size_t max_buffered) {
  std::vector<std::map<Key, Value>> snapshots;
  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  snapshots.push_back(oracle);
  std::size_t buffered = 0;
  for (const serve::Request& r : stream) {
    if (r.kind != serve::RequestKind::kUpdate) continue;
    apply_to_oracle(oracle, r);
    if (++buffered == max_buffered) {
      snapshots.push_back(oracle);
      buffered = 0;
    }
  }
  if (buffered > 0) snapshots.push_back(oracle);
  return snapshots;
}

/// Oracle check under faults: dropped responses (queue rejection or
/// fault shedding) are exempt, but every *answered* response — device or
/// degraded CPU path — must match a whole-epoch snapshot exactly. A
/// single corrupted or torn answer fails here.
void check_answered_against_oracle(
    const serve::ServerReport& rep, const std::vector<serve::Request>& stream,
    const std::vector<std::map<Key, Value>>& snapshots,
    std::size_t max_range_results) {
  ASSERT_EQ(rep.responses.size(), stream.size());
  for (const auto& resp : rep.responses) {
    if (resp.dropped) continue;
    ASSERT_LT(resp.epoch, snapshots.size());
    const auto& oracle = snapshots[resp.epoch];
    const serve::Request& req = stream[resp.id];
    switch (resp.kind) {
      case serve::RequestKind::kPoint: {
        const auto it = oracle.find(req.key);
        const Value want = it != oracle.end() ? it->second : kNotFound;
        ASSERT_EQ(resp.value, want)
            << "request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kRange: {
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && it->first <= req.hi &&
             want.size() < max_range_results;
             ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "range request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kScan: {
        std::size_t limit = req.scan_n ? req.scan_n : 1;
        if (limit > max_range_results) limit = max_range_results;
        std::vector<Value> want;
        for (auto it = oracle.lower_bound(req.key);
             it != oracle.end() && want.size() < limit; ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(resp.range_values, want)
            << "scan request " << resp.id << " epoch " << resp.epoch;
        break;
      }
      case serve::RequestKind::kUpdate:
        EXPECT_GE(resp.completion, resp.arrival);
        break;
    }
  }
}

// A shard dies mid-stream: its range is served degraded from the host
// tree (still epoch-exact), the replacement re-images on schedule, and
// the shard rejoins with a verified device image.
TEST(FaultShard, LostShardServesDegradedThenRestores) {
  ShardedFixture f(4);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 6000;
  spec.update_fraction = 0.20;
  spec.range_fraction = 0.10;
  spec.range_span = 64;
  spec.seed = 13;
  const auto stream = serve::make_open_loop(f.keys, spec);

  serve::ServeOptions cfg;
  cfg.batch.max_batch = 128;
  cfg.batch.max_wait = 80e-6;
  cfg.batch.queue_capacity = 1 << 14;
  cfg.batch.max_range_results = 16;
  cfg.epoch.max_buffered = 300;
  // The loss lands inside the arrival window; the repair completes
  // before the stream ends so the shard serves from the device again.
  cfg.faults = fault::FaultPlan::parse("lose@0.0004:shard=1,repair=0.0006");

  const auto snapshots = make_snapshots(f.keys, stream, cfg.epoch.max_buffered);
  ShardedServer server(f.index, cfg);
  const auto rep = server.run(stream);

  EXPECT_EQ(rep.faults.shards_lost, 1u);
  EXPECT_EQ(rep.faults.shards_restored, 1u);
  EXPECT_GT(rep.faults.degraded_points, 0u);
  EXPECT_GT(rep.faults.degraded_seconds, 0.0);
  EXPECT_GE(rep.faults.fenced_seconds, 0.0006);
  EXPECT_GE(rep.faults.reimages, 1u);
  EXPECT_EQ(rep.shed, rep.faults.degraded_shed);

  EXPECT_EQ(rep.admitted + rep.dropped, rep.arrivals);
  EXPECT_EQ(rep.epochs + 1, snapshots.size());
  check_answered_against_oracle(rep, stream, snapshots,
                                cfg.batch.max_range_results);

  // The restored shard's image passed its audit and is still clean.
  ASSERT_NE(f.index.shard(1), nullptr);
  EXPECT_TRUE(fault::verify_image(*f.index.shard(1)));

  // The index converged to the final snapshot despite the outage.
  const auto& final_oracle = snapshots.back();
  EXPECT_EQ(f.index.num_keys(), final_oracle.size());
  for (const auto& [k, v] : final_oracle) {
    ASSERT_EQ(f.index.search_host(k).value_or(kNotFound), v);
  }
}

// Hedged re-dispatch in the scatter/gather path: one shard's link runs
// far past the hedge threshold, so its sub-batch is re-issued and the
// clean re-issue wins — wall time shrinks, values do not change.
TEST(FaultShard, HedgingRecoversAStragglerShard) {
  const auto plan = fault::FaultPlan::parse("slow@0:shard=1,factor=25,duration=10");
  fault::MitigationConfig hedge_on;       // hedging enabled by default
  fault::MitigationConfig hedge_off;
  hedge_off.hedge.enabled = false;

  // Each variant searches a fresh fixture: repeated searches on one index
  // warm the simulated caches, which would contaminate timing compares.
  auto search_with = [&](fault::FaultInjector* injector,
                         fault::FaultReport* out_report = nullptr) {
    ShardedFixture f(4);
    std::vector<Key> batch;
    for (std::size_t i = 0; i < f.keys.size(); i += 2) batch.push_back(f.keys[i]);
    auto result = f.index.search(batch, injector, 0.0);
    if (injector && out_report) *out_report = injector->report();
    return result;
  };

  const auto clean = search_with(nullptr);

  fault::FaultInjector off(plan, hedge_off, 4);
  const auto slow = search_with(&off);
  EXPECT_EQ(slow.hedges_issued, 0u);
  EXPECT_GT(slow.total_seconds, clean.total_seconds);
  EXPECT_EQ(slow.bottleneck_shard, 1u);

  fault::FaultInjector on(plan, hedge_on, 4);
  fault::FaultReport on_report;
  const auto hedged = search_with(&on, &on_report);
  EXPECT_GE(hedged.hedges_issued, 1u);
  EXPECT_GE(hedged.hedges_won, 1u);
  EXPECT_EQ(on_report.hedges_issued, hedged.hedges_issued);
  EXPECT_EQ(on_report.hedges_won, hedged.hedges_won);
  EXPECT_LT(hedged.total_seconds, slow.total_seconds);

  // Hedging is a timing mitigation only: every value is unchanged, and a
  // null injector is bit-identical to the plain overload.
  ASSERT_EQ(hedged.values.size(), clean.values.size());
  EXPECT_EQ(hedged.values, clean.values);
  EXPECT_EQ(slow.values, clean.values);
  ShardedFixture f(4);
  std::vector<Key> batch;
  for (std::size_t i = 0; i < f.keys.size(); i += 2) batch.push_back(f.keys[i]);
  const auto plain = f.index.search(batch);
  const auto via_null = search_with(nullptr);
  EXPECT_EQ(via_null.values, plain.values);
  EXPECT_DOUBLE_EQ(via_null.total_seconds, plain.total_seconds);
}

// The CI replay gate in code: the same seeded random plan over the same
// stream must reproduce byte-identical FaultReport CSV rows and
// identical responses.
TEST(FaultShard, SeededRandomPlanReplaysByteIdentically) {
  fault::FaultPlan::RandomSpec rspec;
  rspec.horizon = 1.2e-3;
  rspec.events_per_second = 4000;
  rspec.num_shards = 4;
  // Shard losses are exercised above; random back-to-back losses on one
  // shard would (correctly) trip the no-relost-while-fenced contract.
  rspec.weights[static_cast<int>(fault::FaultKind::kShardLost)] = 0.0;

  auto run_once = [&] {
    ShardedFixture f(4);
    serve::OpenLoopSpec spec;
    spec.arrivals_per_second = 4e6;
    spec.count = 4000;
    spec.update_fraction = 0.15;
    spec.range_fraction = 0.10;
    spec.range_span = 64;
    spec.seed = 21;
    const auto stream = serve::make_open_loop(f.keys, spec);

    serve::ServeOptions cfg;
    cfg.batch.max_batch = 128;
    cfg.batch.max_wait = 80e-6;
    cfg.epoch.max_buffered = 250;
    cfg.faults = fault::FaultPlan::random(rspec, 17);
    ShardedServer server(f.index, cfg);
    return server.run(stream);
  };

  const auto a = run_once();
  const auto b = run_once();
  EXPECT_NE(a.faults, fault::FaultReport{}) << "plan injected nothing";
  EXPECT_EQ(a.faults.csv_row(), b.faults.csv_row());
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].id, b.responses[i].id);
    EXPECT_DOUBLE_EQ(a.responses[i].completion, b.responses[i].completion);
    EXPECT_EQ(a.responses[i].value, b.responses[i].value);
    EXPECT_EQ(a.responses[i].dropped, b.responses[i].dropped);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace harmonia::shard
