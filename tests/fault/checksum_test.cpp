// CRC32 image audit: known-answer vectors, chaining, and detection of
// single-byte damage in every region of a device image.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "btree/btree.hpp"
#include "fault/checksum.hpp"
#include "queries/workload.hpp"

namespace harmonia::fault {
namespace {

TEST(Crc32, KnownAnswerVector) {
  // The standard CRC-32/ISO-HDLC check value.
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(s, 0), 0u);
}

TEST(Crc32, ChainsIncrementally) {
  const char* s = "the quick brown fox";
  const std::size_t n = std::strlen(s);
  const auto whole = crc32(s, n);
  const auto chained = crc32(s + 5, n - 5, crc32(s, 5));
  EXPECT_EQ(chained, whole);
  EXPECT_NE(crc32(s, n - 1), whole);
}

struct ImageFixture {
  ImageFixture() : keys(queries::make_tree_keys(1 << 10, 1)), index([&] {
    std::vector<btree::Entry> entries;
    for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
    return HarmoniaIndex::build(dev, entries, {.fanout = 16});
  }()) {}

  gpusim::Device dev{[] {
    auto spec = gpusim::titan_v();
    spec.num_sms = 8;
    spec.global_mem_bytes = 256 << 20;
    return spec;
  }()};
  std::vector<Key> keys;
  HarmoniaIndex index;
};

TEST(ImageChecksums, CleanImageVerifies) {
  ImageFixture f;
  EXPECT_TRUE(verify_image(f.index));
  EXPECT_EQ(host_checksums(f.index.tree()), device_checksums(f.index));
}

TEST(ImageChecksums, DetectsDamageInEveryRegion) {
  ImageFixture f;
  auto& mem = f.index.device().memory();
  const auto& img = f.index.image();

  const std::uint64_t addrs[] = {
      img.key_region.addr + 17,
      img.ps_addr(0),  // routed: lands in the constant segment
      img.ps_addr(static_cast<std::uint32_t>(f.index.tree().prefix_sum().size() - 1)),
      img.value_region.addr + 3,
  };
  for (const std::uint64_t addr : addrs) {
    std::uint8_t byte = 0;
    mem.read_bytes(addr, &byte, 1);
    const std::uint8_t original = byte;
    byte ^= 0x5a;
    mem.write_bytes(addr, &byte, 1);
    EXPECT_FALSE(verify_image(f.index)) << "flip at " << addr << " undetected";
    mem.write_bytes(addr, &original, 1);
    EXPECT_TRUE(verify_image(f.index));
  }
}

TEST(ImageChecksums, ResyncRepairsDamage) {
  ImageFixture f;
  auto& mem = f.index.device().memory();
  std::uint8_t byte = 0;
  mem.read_bytes(f.index.image().key_region.addr, &byte, 1);
  byte ^= 0xff;
  mem.write_bytes(f.index.image().key_region.addr, &byte, 1);
  ASSERT_FALSE(verify_image(f.index));

  f.index.resync_device();
  EXPECT_TRUE(verify_image(f.index));
}

}  // namespace
}  // namespace harmonia::fault
