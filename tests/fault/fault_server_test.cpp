// Faults through the single-device serving path: an armed-but-idle plan
// must not perturb a single bit, slowdowns stretch the clock without
// touching answers, retries absorb transient dispatch failures (and shed
// once the budget is gone), and resync corruption is caught by the CRC
// audit and repaired before any response can read it.
#include <gtest/gtest.h>

#include <map>

#include "common/expect.hpp"
#include "fault/checksum.hpp"
#include "queries/workload.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"

namespace harmonia::serve {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

struct ServerFixture {
  explicit ServerFixture(std::uint64_t tree_keys = 1 << 12, unsigned fanout = 16)
      : keys(queries::make_tree_keys(tree_keys, 1)), index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          return HarmoniaIndex::build(dev, entries, {.fanout = fanout});
        }()) {}

  gpusim::Device dev{test_spec()};
  std::vector<Key> keys;
  HarmoniaIndex index;
};

std::vector<Request> query_stream(const ServerFixture& f, std::uint64_t count,
                                  std::uint64_t seed) {
  OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = count;
  spec.seed = seed;
  return make_open_loop(f.keys, spec);
}

ServeOptions base_config() {
  ServeOptions cfg;
  cfg.batch.max_batch = 128;
  cfg.batch.max_wait = 80e-6;
  cfg.batch.queue_capacity = 8192;
  return cfg;
}

/// Every non-dropped point response must carry the built tree's value.
void expect_points_match_tree(const ServerReport& rep,
                              std::span<const Request> stream,
                              const HarmoniaIndex& index) {
  for (const auto& resp : rep.responses) {
    if (resp.dropped || resp.kind != RequestKind::kPoint) continue;
    const auto want = index.search_host(stream[resp.id].key).value_or(kNotFound);
    ASSERT_EQ(resp.value, want) << "request " << resp.id;
  }
}

// An armed injector whose events all lie past the end of the stream must
// take the exact pre-fault arithmetic path: factor 1.0 contributes +0.0.
TEST(FaultServer, ArmedButIdlePlanIsBitIdentical) {
  auto run_with = [](const std::string& spec) {
    ServerFixture f;
    const auto stream = query_stream(f, 3000, 42);
    ServeOptions cfg = base_config();
    if (!spec.empty()) cfg.faults = fault::FaultPlan::parse(spec);
    Server server(f.index, cfg);
    return server.run(stream);
  };

  const auto clean = run_with("");
  const auto armed = run_with(
      "slow@100:shard=0,factor=8,duration=1;"
      "fail@100:shard=0,count=2;"
      "corrupt@100:shard=0,bytes=4");

  ASSERT_EQ(clean.responses.size(), armed.responses.size());
  for (std::size_t i = 0; i < clean.responses.size(); ++i) {
    EXPECT_EQ(clean.responses[i].id, armed.responses[i].id);
    EXPECT_DOUBLE_EQ(clean.responses[i].completion,
                     armed.responses[i].completion);
    EXPECT_EQ(clean.responses[i].value, armed.responses[i].value);
  }
  EXPECT_DOUBLE_EQ(clean.makespan, armed.makespan);
  EXPECT_EQ(armed.faults, fault::FaultReport{});  // nothing ever fired
}

TEST(FaultServer, SlowdownStretchesTheClockNotTheAnswers) {
  auto run_with = [](const std::string& spec) {
    ServerFixture f;
    const auto stream = query_stream(f, 3000, 42);
    ServeOptions cfg = base_config();
    if (!spec.empty()) cfg.faults = fault::FaultPlan::parse(spec);
    Server server(f.index, cfg);
    auto rep = server.run(stream);
    expect_points_match_tree(rep, stream, f.index);
    return rep;
  };

  const auto clean = run_with("");
  const auto slowed = run_with("slow@0:shard=0,factor=8,duration=10");

  EXPECT_EQ(slowed.faults.slowdown_windows, 1u);
  EXPECT_GT(slowed.makespan, clean.makespan);
  EXPECT_GT(slowed.latency.mean(), clean.latency.mean());
  EXPECT_EQ(slowed.shed, 0u);
  EXPECT_EQ(slowed.dropped, clean.dropped);
}

TEST(FaultServer, TransientFailuresAreRetriedWithinBudget) {
  ServerFixture f;
  const auto stream = query_stream(f, 2000, 7);
  ServeOptions cfg = base_config();
  cfg.faults = fault::FaultPlan::parse("fail@0:shard=0,count=2");
  Server server(f.index, cfg);
  const auto rep = server.run(stream);

  EXPECT_EQ(rep.faults.dispatch_failures, 2u);
  EXPECT_EQ(rep.faults.retries, 2u);  // each failure absorbed by one retry
  EXPECT_EQ(rep.faults.retry_shed_batches, 0u);
  EXPECT_GT(rep.faults.backoff_seconds, 0.0);
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_EQ(rep.responses.size(), stream.size());
  expect_points_match_tree(rep, stream, f.index);
}

TEST(FaultServer, ExhaustedRetryBudgetShedsTheBatchVisibly) {
  ServerFixture f;
  const auto stream = query_stream(f, 2000, 7);
  ServeOptions cfg = base_config();
  // More consecutive failures than any retry budget: some batch dies.
  cfg.faults = fault::FaultPlan::parse("fail@0:shard=0,count=64");
  cfg.mitigation.retry.max_attempts = 3;
  Server server(f.index, cfg);
  const auto rep = server.run(stream);

  EXPECT_GT(rep.faults.retry_shed_batches, 0u);
  EXPECT_GT(rep.shed, 0u);
  EXPECT_EQ(rep.shed, rep.faults.retry_shed_requests);
  // Shedding is not queue rejection: admission accounting still balances.
  EXPECT_EQ(rep.admitted + rep.dropped, rep.arrivals);
  EXPECT_EQ(rep.responses.size(), stream.size());
  std::uint64_t dropped_responses = 0;
  for (const auto& resp : rep.responses) dropped_responses += resp.dropped;
  EXPECT_EQ(dropped_responses, rep.shed + rep.dropped);
  expect_points_match_tree(rep, stream, f.index);  // survivors stay correct
}

// Corruption lands on the device image during an epoch resync; the CRC
// audit must flag it and the re-image must repair it before queries of the
// next epoch read the image — so every answer still matches the oracle.
TEST(FaultServer, ResyncCorruptionIsDetectedAndRepaired) {
  ServerFixture f;
  OpenLoopSpec spec;
  spec.arrivals_per_second = 4e6;
  spec.count = 4000;
  spec.update_fraction = 0.25;
  spec.seed = 9;
  const auto stream = make_open_loop(f.keys, spec);

  ServeOptions cfg = base_config();
  cfg.epoch.max_buffered = 300;
  cfg.faults = fault::FaultPlan::parse("corrupt@0:shard=0,bytes=16");

  // Snapshot oracle per epoch, exactly as the updater batches the stream.
  std::vector<std::map<Key, Value>> snapshots;
  {
    std::map<Key, Value> oracle;
    for (Key k : f.keys) oracle[k] = btree::value_for_key(k);
    snapshots.push_back(oracle);
    std::size_t buffered = 0;
    for (const Request& r : stream) {
      if (r.kind != RequestKind::kUpdate) continue;
      switch (r.op) {
        case queries::OpKind::kUpdate:
          if (auto it = oracle.find(r.key); it != oracle.end())
            it->second = r.value;
          break;
        case queries::OpKind::kInsert:
          oracle[r.key] = r.value;
          break;
        case queries::OpKind::kDelete:
          oracle.erase(r.key);
          break;
      }
      if (++buffered == cfg.epoch.max_buffered) {
        snapshots.push_back(oracle);
        buffered = 0;
      }
    }
    if (buffered > 0) snapshots.push_back(oracle);
  }

  Server server(f.index, cfg);
  const auto rep = server.run(stream);

  EXPECT_EQ(rep.faults.corruptions, 1u);
  EXPECT_GE(rep.faults.audits, 1u);
  EXPECT_EQ(rep.faults.checksum_mismatches, 1u);
  EXPECT_GE(rep.faults.reimages, 1u);
  EXPECT_GT(rep.faults.reimage_seconds, 0.0);
  EXPECT_TRUE(fault::verify_image(f.index)) << "image left damaged after run";

  ASSERT_EQ(rep.dropped, 0u);
  ASSERT_EQ(rep.responses.size(), stream.size());
  for (const auto& resp : rep.responses) {
    if (resp.kind != RequestKind::kPoint) continue;
    ASSERT_LT(resp.epoch, snapshots.size());
    const auto& oracle = snapshots[resp.epoch];
    const auto it = oracle.find(stream[resp.id].key);
    const Value want = it != oracle.end() ? it->second : kNotFound;
    ASSERT_EQ(resp.value, want) << "request " << resp.id;
  }
}

TEST(FaultServer, RejectsShardLostOnSingleDevice) {
  ServerFixture f;
  ServeOptions cfg = base_config();
  cfg.faults = fault::FaultPlan::parse("lose@0:shard=0,repair=0.001");
  EXPECT_THROW(Server(f.index, cfg), ContractViolation);
}

}  // namespace
}  // namespace harmonia::serve
