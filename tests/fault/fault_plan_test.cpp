// FaultPlan: the --faults spec grammar, canonical round-trips, schedule
// validation, and seeded random plans (deterministic by construction).
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "fault/fault_plan.hpp"

namespace harmonia::fault {
namespace {

TEST(FaultPlan, ParsesEveryKindWithArguments) {
  const auto plan = FaultPlan::parse(
      "slow@0.001:shard=1,factor=4,duration=0.002;"
      "fail@0:shard=0,count=3;"
      "corrupt@0.004:shard=2,bytes=8;"
      "lose@0.003:shard=1,repair=0.0005");
  ASSERT_EQ(plan.events.size(), 4u);

  EXPECT_EQ(plan.events[0].kind, FaultKind::kDispatchFailure);  // at=0 sorts first
  EXPECT_EQ(plan.events[0].shard, 0u);
  EXPECT_EQ(plan.events[0].count, 3u);

  EXPECT_EQ(plan.events[1].kind, FaultKind::kTransferSlowdown);
  EXPECT_DOUBLE_EQ(plan.events[1].at, 0.001);
  EXPECT_DOUBLE_EQ(plan.events[1].factor, 4.0);
  EXPECT_DOUBLE_EQ(plan.events[1].duration, 0.002);

  EXPECT_EQ(plan.events[2].kind, FaultKind::kShardLost);
  EXPECT_EQ(plan.events[2].shard, 1u);
  EXPECT_DOUBLE_EQ(plan.events[2].duration, 0.0005);  // repair aliases duration

  EXPECT_EQ(plan.events[3].kind, FaultKind::kResyncCorruption);
  EXPECT_EQ(plan.events[3].bytes, 8u);
}

TEST(FaultPlan, ToStringRoundTrips) {
  const std::string spec =
      "fail@0:shard=0,count=3;"
      "slow@0.001:shard=1,factor=4,duration=0.002;"
      "lose@0.003:shard=1,repair=0.0005;"
      "corrupt@0.004:shard=2,bytes=8";
  const auto plan = FaultPlan::parse(spec);
  const auto reparsed = FaultPlan::parse(plan.to_string());
  ASSERT_EQ(reparsed.events.size(), plan.events.size());
  EXPECT_EQ(reparsed.to_string(), plan.to_string());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(reparsed.events[i].kind, plan.events[i].kind);
    EXPECT_DOUBLE_EQ(reparsed.events[i].at, plan.events[i].at);
    EXPECT_EQ(reparsed.events[i].shard, plan.events[i].shard);
    EXPECT_DOUBLE_EQ(reparsed.events[i].duration, plan.events[i].duration);
    EXPECT_DOUBLE_EQ(reparsed.events[i].factor, plan.events[i].factor);
    EXPECT_EQ(reparsed.events[i].count, plan.events[i].count);
    EXPECT_EQ(reparsed.events[i].bytes, plan.events[i].bytes);
  }
}

TEST(FaultPlan, RejectsBadSpecs) {
  EXPECT_THROW(FaultPlan::parse("explode@0"), ContractViolation);  // unknown kind
  EXPECT_THROW(FaultPlan::parse("slow"), ContractViolation);       // missing @time
  EXPECT_THROW(FaultPlan::parse("slow@abc"), ContractViolation);   // bad number
  EXPECT_THROW(FaultPlan::parse("slow@0:factor"), ContractViolation);  // no value
  EXPECT_THROW(FaultPlan::parse("slow@0:warp=3"), ContractViolation);  // bad key
  EXPECT_THROW(FaultPlan::parse("slow@0:factor=0.5,duration=1"),
               ContractViolation);  // slowdown must slow down
  EXPECT_THROW(FaultPlan::parse("fail@-1:count=1"), ContractViolation);
}

TEST(FaultPlan, ValidateRequiresSortedSchedule) {
  FaultPlan plan;
  plan.events.push_back({FaultKind::kDispatchFailure, 2.0, 0, 0.0, 1.0, 1, 1});
  plan.events.push_back({FaultKind::kDispatchFailure, 1.0, 0, 0.0, 1.0, 1, 1});
  EXPECT_THROW(plan.validate(), ContractViolation);
}

TEST(FaultPlan, RandomIsDeterministicInSeed) {
  FaultPlan::RandomSpec spec;
  spec.horizon = 5e-3;
  spec.events_per_second = 2000;
  spec.num_shards = 4;
  const auto a = FaultPlan::random(spec, 7);
  const auto b = FaultPlan::random(spec, 7);
  const auto c = FaultPlan::random(spec, 8);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_NE(a.to_string(), c.to_string());
  a.validate();
  for (const FaultEvent& e : a.events) {
    EXPECT_LT(e.at, spec.horizon);
    EXPECT_LT(e.shard, spec.num_shards);
  }
}

TEST(FaultPlan, RandomHonorsDisabledKinds) {
  FaultPlan::RandomSpec spec;
  spec.horizon = 20e-3;
  spec.events_per_second = 3000;
  spec.num_shards = 2;
  spec.weights[static_cast<int>(FaultKind::kShardLost)] = 0.0;
  spec.weights[static_cast<int>(FaultKind::kResyncCorruption)] = 0.0;
  const auto plan = FaultPlan::random(spec, 3);
  ASSERT_FALSE(plan.empty());
  for (const FaultEvent& e : plan.events) {
    EXPECT_NE(e.kind, FaultKind::kShardLost);
    EXPECT_NE(e.kind, FaultKind::kResyncCorruption);
  }
}

}  // namespace
}  // namespace harmonia::fault
