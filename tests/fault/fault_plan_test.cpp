// FaultPlan: the --faults spec grammar, canonical round-trips, schedule
// validation, and seeded random plans (deterministic by construction).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/expect.hpp"
#include "fault/fault_plan.hpp"

namespace harmonia::fault {
namespace {

TEST(FaultPlan, ParsesEveryKindWithArguments) {
  const auto plan = FaultPlan::parse(
      "slow@0.001:shard=1,factor=4,duration=0.002;"
      "fail@0:shard=0,count=3;"
      "corrupt@0.004:shard=2,bytes=8;"
      "lose@0.003:shard=1,repair=0.0005");
  ASSERT_EQ(plan.events.size(), 4u);

  EXPECT_EQ(plan.events[0].kind, FaultKind::kDispatchFailure);  // at=0 sorts first
  EXPECT_EQ(plan.events[0].shard, 0u);
  EXPECT_EQ(plan.events[0].count, 3u);

  EXPECT_EQ(plan.events[1].kind, FaultKind::kTransferSlowdown);
  EXPECT_DOUBLE_EQ(plan.events[1].at, 0.001);
  EXPECT_DOUBLE_EQ(plan.events[1].factor, 4.0);
  EXPECT_DOUBLE_EQ(plan.events[1].duration, 0.002);

  EXPECT_EQ(plan.events[2].kind, FaultKind::kShardLost);
  EXPECT_EQ(plan.events[2].shard, 1u);
  EXPECT_DOUBLE_EQ(plan.events[2].duration, 0.0005);  // repair aliases duration

  EXPECT_EQ(plan.events[3].kind, FaultKind::kResyncCorruption);
  EXPECT_EQ(plan.events[3].bytes, 8u);
}

TEST(FaultPlan, ToStringRoundTrips) {
  const std::string spec =
      "fail@0:shard=0,count=3;"
      "slow@0.001:shard=1,factor=4,duration=0.002;"
      "lose@0.003:shard=1,repair=0.0005;"
      "corrupt@0.004:shard=2,bytes=8";
  const auto plan = FaultPlan::parse(spec);
  const auto reparsed = FaultPlan::parse(plan.to_string());
  ASSERT_EQ(reparsed.events.size(), plan.events.size());
  EXPECT_EQ(reparsed.to_string(), plan.to_string());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(reparsed.events[i].kind, plan.events[i].kind);
    EXPECT_DOUBLE_EQ(reparsed.events[i].at, plan.events[i].at);
    EXPECT_EQ(reparsed.events[i].shard, plan.events[i].shard);
    EXPECT_DOUBLE_EQ(reparsed.events[i].duration, plan.events[i].duration);
    EXPECT_DOUBLE_EQ(reparsed.events[i].factor, plan.events[i].factor);
    EXPECT_EQ(reparsed.events[i].count, plan.events[i].count);
    EXPECT_EQ(reparsed.events[i].bytes, plan.events[i].bytes);
  }
}

TEST(FaultPlan, RejectsBadSpecs) {
  EXPECT_THROW(FaultPlan::parse("explode@0"), ContractViolation);  // unknown kind
  EXPECT_THROW(FaultPlan::parse("slow"), ContractViolation);       // missing @time
  EXPECT_THROW(FaultPlan::parse("slow@abc"), ContractViolation);   // bad number
  EXPECT_THROW(FaultPlan::parse("slow@0:factor"), ContractViolation);  // no value
  EXPECT_THROW(FaultPlan::parse("slow@0:warp=3"), ContractViolation);  // bad key
  EXPECT_THROW(FaultPlan::parse("slow@0:factor=0.5,duration=1"),
               ContractViolation);  // slowdown must slow down
  EXPECT_THROW(FaultPlan::parse("fail@-1:count=1"), ContractViolation);
}

TEST(FaultPlan, ValidateRequiresSortedSchedule) {
  FaultPlan plan;
  plan.events.push_back({FaultKind::kDispatchFailure, 2.0, 0, 0, 0.0, 1.0, 1, 1});
  plan.events.push_back({FaultKind::kDispatchFailure, 1.0, 0, 0, 0.0, 1.0, 1, 1});
  EXPECT_THROW(plan.validate(), ContractViolation);
}

TEST(FaultPlan, RandomIsDeterministicInSeed) {
  FaultPlan::RandomSpec spec;
  spec.horizon = 5e-3;
  spec.events_per_second = 2000;
  spec.num_shards = 4;
  const auto a = FaultPlan::random(spec, 7);
  const auto b = FaultPlan::random(spec, 7);
  const auto c = FaultPlan::random(spec, 8);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_NE(a.to_string(), c.to_string());
  a.validate();
  for (const FaultEvent& e : a.events) {
    EXPECT_LT(e.at, spec.horizon);
    EXPECT_LT(e.shard, spec.num_shards);
  }
}

// Every enum value must print a real mnemonic: the "?" fallback firing
// means someone added a FaultKind without teaching to_string (and the
// spec grammar) about it.
TEST(FaultPlan, ToStringCoversEveryKind) {
  std::set<std::string> names;
  for (unsigned k = 0; k < kNumFaultKinds; ++k) {
    const std::string name = to_string(static_cast<FaultKind>(k));
    EXPECT_NE(name, "?") << "FaultKind " << k << " has no mnemonic";
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  // Mnemonics are the spec grammar's keywords — they must be distinct.
  EXPECT_EQ(names.size(), kNumFaultKinds);
  // Each mnemonic parses back to its own kind (grammar round-trip).
  for (unsigned k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    FaultEvent e;
    e.kind = kind;
    e.at = 0.001;
    e.duration = 0.001;
    FaultPlan plan;
    plan.events.push_back(e);
    const auto reparsed = FaultPlan::parse(plan.to_string());
    ASSERT_EQ(reparsed.events.size(), 1u) << to_string(kind);
    EXPECT_EQ(reparsed.events[0].kind, kind);
  }
}

// validate() diagnostics must name the offending event's index and
// field, so a 40-event generated plan is debuggable from the exception
// message alone.
TEST(FaultPlan, ValidateNamesEventIndexAndField) {
  const auto message_of = [](const FaultPlan& plan) -> std::string {
    try {
      plan.validate();
    } catch (const ContractViolation& e) {
      return e.what();
    }
    return {};
  };

  FaultPlan bad_factor;
  bad_factor.events.push_back({FaultKind::kTransferSlowdown, 0.0, 0, 0, 1e-3, 1.0, 1, 1});
  bad_factor.events.push_back({FaultKind::kTransferSlowdown, 1.0, 0, 0, 1e-3, 0.5, 1, 1});
  std::string msg = message_of(bad_factor);
  EXPECT_NE(msg.find("#1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'factor'"), std::string::npos) << msg;

  FaultPlan bad_count;
  bad_count.events.push_back({FaultKind::kDispatchFailure, 0.0, 0, 0, 0.0, 1.0, 0, 1});
  msg = message_of(bad_count);
  EXPECT_NE(msg.find("#0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'count'"), std::string::npos) << msg;

  FaultPlan bad_at;
  bad_at.events.push_back({FaultKind::kResyncCorruption, -2.0, 0, 0, 0.0, 1.0, 1, 4});
  msg = message_of(bad_at);
  EXPECT_NE(msg.find("#0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'at'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("corrupt"), std::string::npos) << msg;

  FaultPlan unsorted;
  unsorted.events.push_back({FaultKind::kDispatchFailure, 2.0, 0, 0, 0.0, 1.0, 1, 1});
  unsorted.events.push_back({FaultKind::kShardLost, 1.0, 0, 0, 1e-3, 1.0, 1, 1});
  msg = message_of(unsorted);
  EXPECT_NE(msg.find("#1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("sorted"), std::string::npos) << msg;
}

TEST(FaultPlan, RestartParsesAndRoundTrips) {
  const auto plan =
      FaultPlan::parse("restart@0.005:shard=1,down=0.002,torn=64");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kProcessRestart);
  EXPECT_DOUBLE_EQ(plan.events[0].at, 0.005);
  EXPECT_EQ(plan.events[0].shard, 1u);
  EXPECT_DOUBLE_EQ(plan.events[0].duration, 0.002);  // down aliases duration
  EXPECT_EQ(plan.events[0].bytes, 64u);              // torn aliases bytes
  const auto reparsed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(reparsed.to_string(), plan.to_string());

  // A clean-cut instant restart is legal: down=0, torn=0.
  const auto clean = FaultPlan::parse("restart@0.001:down=0,torn=0");
  EXPECT_EQ(clean.events[0].bytes, 0u);
  EXPECT_DOUBLE_EQ(clean.events[0].duration, 0.0);
  clean.validate();
}

TEST(FaultPlan, ReplicaLostParsesAndRoundTrips) {
  const auto plan =
      FaultPlan::parse("replica-lost@0.002:shard=1,replica=2,repair=0.0004");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kReplicaLost);
  EXPECT_DOUBLE_EQ(plan.events[0].at, 0.002);
  EXPECT_EQ(plan.events[0].shard, 1u);
  EXPECT_EQ(plan.events[0].replica, 2u);
  EXPECT_DOUBLE_EQ(plan.events[0].duration, 0.0004);  // repair aliases duration
  const auto reparsed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(reparsed.to_string(), plan.to_string());
  EXPECT_EQ(reparsed.events[0].replica, plan.events[0].replica);

  // repair is mandatory: a replica that never rejoins is a config error.
  EXPECT_THROW(FaultPlan::parse("replica-lost@0.002:shard=1,replica=0"),
               ContractViolation);
}

TEST(FaultPlan, RandomCanEmitRestarts) {
  FaultPlan::RandomSpec spec;
  spec.horizon = 20e-3;
  spec.events_per_second = 2000;
  spec.num_shards = 2;
  for (double& w : spec.weights) w = 0.0;
  spec.weights[static_cast<int>(FaultKind::kProcessRestart)] = 1.0;
  const auto plan = FaultPlan::random(spec, 5);
  ASSERT_FALSE(plan.empty());
  for (const FaultEvent& e : plan.events) {
    EXPECT_EQ(e.kind, FaultKind::kProcessRestart);
    EXPECT_DOUBLE_EQ(e.duration, spec.restart_down_seconds);
    EXPECT_EQ(e.bytes, spec.restart_torn_bytes);
  }
}

TEST(FaultPlan, RandomHonorsDisabledKinds) {
  FaultPlan::RandomSpec spec;
  spec.horizon = 20e-3;
  spec.events_per_second = 3000;
  spec.num_shards = 2;
  spec.weights[static_cast<int>(FaultKind::kShardLost)] = 0.0;
  spec.weights[static_cast<int>(FaultKind::kResyncCorruption)] = 0.0;
  const auto plan = FaultPlan::random(spec, 3);
  ASSERT_FALSE(plan.empty());
  for (const FaultEvent& e : plan.events) {
    EXPECT_NE(e.kind, FaultKind::kShardLost);
    EXPECT_NE(e.kind, FaultKind::kResyncCorruption);
  }
}

}  // namespace
}  // namespace harmonia::fault
