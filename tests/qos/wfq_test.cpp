// Unit tests of the weighted-fair virtual-time accounting: serving the
// smallest-vtime class converges every class's share to weight/sum — the
// property the batch scheduler's lane selection inherits.
#include <gtest/gtest.h>

#include <algorithm>

#include "qos/wfq.hpp"

namespace harmonia::qos {
namespace {

Priority argmin_vtime(const WeightedFair& w) {
  Priority best = Priority::kGold;
  for (std::size_t c = 1; c < kNumClasses; ++c) {
    if (w.vtime(priority_at(c)) < w.vtime(best)) best = priority_at(c);
  }
  return best;
}

TEST(WeightedFair, VtimeIsServiceOverWeight) {
  WeightedFair w({8.0, 3.0, 1.0});
  w.charge(Priority::kGold, 16.0);
  w.charge(Priority::kSilver, 3.0);
  EXPECT_DOUBLE_EQ(w.vtime(Priority::kGold), 2.0);
  EXPECT_DOUBLE_EQ(w.vtime(Priority::kSilver), 1.0);
  EXPECT_DOUBLE_EQ(w.vtime(Priority::kBronze), 0.0);
}

TEST(WeightedFair, SmallestVtimeServiceConvergesToWeightedShares) {
  const std::array<double, kNumClasses> weights = {8.0, 3.0, 1.0};
  WeightedFair w(weights);
  // Saturated window: always dispatch one unit to the owed class.
  const int rounds = 12000;
  std::array<int, kNumClasses> served{};
  for (int i = 0; i < rounds; ++i) {
    const Priority c = argmin_vtime(w);
    w.charge(c, 1.0);
    ++served[index(c)];
  }
  const double total_weight = 12.0;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const double want = rounds * weights[c] / total_weight;
    EXPECT_NEAR(served[c], want, rounds * 0.01)
        << "class " << c << " share off by >1%";
  }
}

TEST(WeightedFair, UnevenBatchSizesStillConverge) {
  // Charges arrive in batch-sized lumps (the scheduler charges per
  // dispatched batch, not per request) — shares must still converge.
  const std::array<double, kNumClasses> weights = {4.0, 2.0, 1.0};
  WeightedFair w(weights);
  const double batch[kNumClasses] = {32.0, 7.0, 13.0};
  std::array<double, kNumClasses> served{};
  for (int i = 0; i < 20000; ++i) {
    const Priority c = argmin_vtime(w);
    w.charge(c, batch[index(c)]);
    served[index(c)] += batch[index(c)];
  }
  const double total = served[0] + served[1] + served[2];
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    EXPECT_NEAR(served[c] / total, weights[c] / 7.0, 0.02) << "class " << c;
  }
}

TEST(WeightedFair, EqualWeightsRoundRobin) {
  WeightedFair w({1.0, 1.0, 1.0});
  std::array<int, kNumClasses> served{};
  for (int i = 0; i < 9; ++i) {
    const Priority c = argmin_vtime(w);
    w.charge(c, 1.0);
    ++served[index(c)];
  }
  EXPECT_EQ(served[0], 3);
  EXPECT_EQ(served[1], 3);
  EXPECT_EQ(served[2], 3);
}

}  // namespace
}  // namespace harmonia::qos
