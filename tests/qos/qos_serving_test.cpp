// System tests of the QoS front-end on the single-device serving path:
// per-tenant throttling at the admission edge, weighted-fair batch
// formation under saturation, overload eviction shedding the lowest
// class first, and the per-class report ledger reconciling with the
// aggregate counters on every run.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "queries/workload.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"

namespace harmonia::serve {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

struct ServerFixture {
  explicit ServerFixture(std::uint64_t tree_keys = 1 << 12, unsigned fanout = 16)
      : keys(queries::make_tree_keys(tree_keys, 1)), index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          return HarmoniaIndex::build(dev, entries, {.fanout = fanout});
        }()) {}

  gpusim::Device dev{test_spec()};
  std::vector<Key> keys;
  HarmoniaIndex index;
};

qos::QosConfig three_class_qos() {
  qos::QosConfig q;
  q.enabled = true;
  q.classes[0] = {8.0, 1.0};
  q.classes[1] = {3.0, 2.0};
  q.classes[2] = {1.0, 4.0};
  return q;
}

/// Every identity the per-class ledger must satisfy against the
/// aggregate counters (check_invariants enforces the same set; asserting
/// them here keeps the failure local and readable).
void expect_class_ledger_reconciles(const ServerReport& rep) {
  std::uint64_t arrivals = 0, admitted = 0, dropped = 0, throttled = 0;
  std::uint64_t completed = 0, shed = 0, updates = 0;
  for (std::size_t c = 0; c < qos::kNumClasses; ++c) {
    arrivals += rep.class_arrivals[c];
    admitted += rep.class_admitted[c];
    dropped += rep.class_dropped[c];
    throttled += rep.class_throttled[c];
    completed += rep.class_completed[c];
    shed += rep.class_shed[c];
    updates += rep.class_update_requests[c];
    EXPECT_EQ(rep.class_arrivals[c],
              rep.class_admitted[c] + rep.class_dropped[c])
        << "class " << c;
    EXPECT_EQ(rep.class_admitted[c], rep.class_completed[c] +
                                         rep.class_shed[c] +
                                         rep.class_update_requests[c])
        << "class " << c;
    EXPECT_LE(rep.class_throttled[c], rep.class_dropped[c]) << "class " << c;
    EXPECT_EQ(rep.class_latency[c].count(), rep.class_completed[c])
        << "class " << c;
  }
  EXPECT_EQ(arrivals, rep.arrivals);
  EXPECT_EQ(admitted, rep.admitted);
  EXPECT_EQ(dropped, rep.dropped);
  EXPECT_EQ(throttled, rep.throttled);
  EXPECT_EQ(completed, rep.completed);
  EXPECT_EQ(shed, rep.shed);
  EXPECT_EQ(updates, rep.update_requests);
  rep.check_invariants();
}

// Per-tenant token buckets at queue entry: an over-rate tenant is
// throttled (dropped before the queue), other tenants are untouched,
// and every throttle is tallied both per class and in aggregate.
TEST(QosServing, TokenBucketThrottlesPerTenant) {
  ServerFixture f;

  OpenLoopSpec spec;
  spec.arrivals_per_second = 2e6;
  spec.count = 6000;
  spec.tenants = 3;  // one per class, ~2100 arrivals each at ~0.7 Mq/s
  spec.seed = 3;
  const auto stream = make_open_loop(f.keys, spec);

  ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.queue_capacity = 8192;
  cfg.qos = three_class_qos();
  cfg.qos.tenant_rate = 3e5;  // under each tenant's ~0.7 Mq/s share
  cfg.qos.tenant_burst = 16.0;

  Server server(f.index, cfg);
  const auto rep = server.run(stream);

  EXPECT_GT(rep.throttled, 0u);
  // Throttles are drops, not sheds: the request never entered a queue.
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_EQ(rep.dropped, rep.throttled);
  // Every class hosts one over-rate tenant here, so each gets throttled.
  for (std::size_t c = 0; c < qos::kNumClasses; ++c) {
    EXPECT_GT(rep.class_throttled[c], 0u) << "class " << c;
    EXPECT_EQ(rep.class_throttled[c], rep.class_dropped[c]) << "class " << c;
  }
  // Throttled requests were answered (dropped responses), not lost.
  EXPECT_EQ(rep.responses.size(), stream.size());
  expect_class_ledger_reconciles(rep);

  // The same stream without throttling admits everything.
  ServeOptions open = cfg;
  open.qos.tenant_rate = 0.0;
  ServerFixture f2;
  Server server2(f2.index, open);
  const auto rep2 = server2.run(make_open_loop(f2.keys, spec));
  EXPECT_EQ(rep2.throttled, 0u);
  EXPECT_EQ(rep2.dropped, 0u);
  expect_class_ledger_reconciles(rep2);
}

// Overload eviction: when the admission budget fills, the newest request
// of the lowest queued class is shed first — bronze absorbs the entire
// overload while gold completes everything, undropped.
TEST(QosServing, OverloadShedsLowestClassFirst) {
  ServerFixture f;

  OpenLoopSpec spec;
  spec.arrivals_per_second = 20e6;  // far past a single device's capacity
  spec.count = 9000;
  spec.tenants = 3;
  spec.seed = 11;
  const auto stream = make_open_loop(f.keys, spec);

  ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.max_wait = 100e-6;
  cfg.batch.queue_capacity = 512;  // small budget: evictions must happen
  cfg.qos = three_class_qos();

  Server server(f.index, cfg);
  const auto rep = server.run(stream);

  ASSERT_GT(rep.shed + rep.dropped, 0u) << "not an overload";
  // Gold is untouchable while lower classes remain to evict.
  EXPECT_EQ(rep.class_shed[0], 0u);
  EXPECT_EQ(rep.class_dropped[0], 0u);
  EXPECT_EQ(rep.class_completed[0], rep.class_arrivals[0]);
  // Bronze pays: it sheds strictly more than silver.
  EXPECT_GT(rep.class_shed[2], 0u);
  EXPECT_GE(rep.class_shed[2], rep.class_shed[1]);
  EXPECT_EQ(rep.responses.size(), stream.size());
  expect_class_ledger_reconciles(rep);
}

// Weighted-fair formation under saturation: gold's stretched-deadline
// advantage and 8x dispatch weight must show up as a strictly better
// latency profile than bronze on the same saturated stream.
TEST(QosServing, WeightedFairFavoursGoldUnderSaturation) {
  ServerFixture f;

  OpenLoopSpec spec;
  spec.arrivals_per_second = 6e6;
  spec.count = 9000;
  spec.tenants = 3;
  spec.seed = 17;
  const auto stream = make_open_loop(f.keys, spec);

  ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.max_wait = 100e-6;
  cfg.batch.queue_capacity = 4096;
  cfg.qos = three_class_qos();

  Server server(f.index, cfg);
  const auto rep = server.run(stream);

  ASSERT_GT(rep.class_latency[0].count(), 100u);
  ASSERT_GT(rep.class_latency[2].count(), 100u);
  EXPECT_LT(rep.class_latency[0].percentile(50),
            rep.class_latency[2].percentile(50));
  EXPECT_LT(rep.class_latency[0].percentile(99),
            rep.class_latency[2].percentile(99));
  expect_class_ledger_reconciles(rep);
}

// A disabled QoS config on a tenanted stream still keeps the per-class
// ledger: arrivals land in their class buckets and reconcile, while the
// scheduler itself stays single-lane legacy (no evictions, no stretch).
TEST(QosServing, DisabledQosStillKeepsClassLedger) {
  ServerFixture f;

  OpenLoopSpec spec;
  spec.arrivals_per_second = 2e6;
  spec.count = 4000;
  spec.update_fraction = 0.1;
  spec.tenants = 6;
  spec.seed = 23;
  const auto stream = make_open_loop(f.keys, spec);

  ServeOptions cfg;
  cfg.batch.max_batch = 256;
  cfg.batch.queue_capacity = 8192;
  cfg.epoch.max_buffered = 200;
  ASSERT_FALSE(cfg.qos.enabled);

  Server server(f.index, cfg);
  const auto rep = server.run(stream);
  EXPECT_GT(rep.class_arrivals[1], 0u);  // tenants really spanned classes
  EXPECT_GT(rep.class_arrivals[2], 0u);
  EXPECT_GT(rep.update_requests, 0u);  // update responses keep their class
  expect_class_ledger_reconciles(rep);
}

// Deterministic replay with the full QoS surface on: lanes, buckets,
// evictions, and per-class tallies all replay bit-identically.
TEST(QosServing, DeterministicReplayWithQosOn) {
  OpenLoopSpec spec;
  spec.arrivals_per_second = 12e6;
  spec.count = 5000;
  spec.scan_fraction = 0.1;
  spec.tenants = 5;
  spec.seed = 29;

  auto run_once = [&] {
    ServerFixture f;
    ServeOptions cfg;
    cfg.batch.max_batch = 128;
    cfg.batch.queue_capacity = 512;
    cfg.qos = three_class_qos();
    cfg.qos.tenant_rate = 2e6;
    Server server(f.index, cfg);
    return server.run(make_open_loop(f.keys, spec));
  };

  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].id, b.responses[i].id);
    EXPECT_EQ(a.responses[i].dropped, b.responses[i].dropped);
    EXPECT_DOUBLE_EQ(a.responses[i].completion, b.responses[i].completion);
  }
  EXPECT_EQ(a.throttled, b.throttled);
  for (std::size_t c = 0; c < qos::kNumClasses; ++c) {
    EXPECT_EQ(a.class_shed[c], b.class_shed[c]);
    EXPECT_EQ(a.class_completed[c], b.class_completed[c]);
  }
  EXPECT_GT(a.shed + a.dropped, 0u);  // the replayed run really evicted
  expect_class_ledger_reconciles(a);
}

}  // namespace
}  // namespace harmonia::serve
