// Unit tests of QosConfig validation, the priority-class helpers, and
// the per-tenant AdmissionController (lazy bucket creation, rate
// isolation between tenants, and the throttled tally).
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "qos/admission.hpp"

namespace harmonia::qos {
namespace {

TEST(Priority, NamesRoundTrip) {
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const Priority p = priority_at(c);
    EXPECT_EQ(priority_from_string(to_string(p)), p);
  }
  EXPECT_STREQ(to_string(Priority::kGold), "gold");
  EXPECT_STREQ(to_string(Priority::kSilver), "silver");
  EXPECT_STREQ(to_string(Priority::kBronze), "bronze");
  EXPECT_THROW(priority_from_string("platinum"), ContractViolation);
}

TEST(Priority, TenantClassMappingCoversEveryClass) {
  EXPECT_EQ(class_of_tenant(0), Priority::kGold);
  EXPECT_EQ(class_of_tenant(1), Priority::kSilver);
  EXPECT_EQ(class_of_tenant(2), Priority::kBronze);
  EXPECT_EQ(class_of_tenant(3), Priority::kGold);  // wraps
}

TEST(QosConfig, DefaultIsInertAndValid) {
  QosConfig cfg;
  EXPECT_FALSE(cfg.enabled);
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_FALSE(AdmissionController(cfg).throttling());
}

TEST(QosConfig, ValidationRejectsBadPolicies) {
  QosConfig cfg;
  cfg.enabled = true;
  EXPECT_NO_THROW(cfg.validate());  // defaults: all weights/factors 1
  cfg.classes[1].weight = 0.0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.classes[1].weight = 3.0;
  cfg.classes[2].deadline_factor = -1.0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.classes[2].deadline_factor = 4.0;
  cfg.tenant_rate = 100.0;
  cfg.tenant_burst = 0.0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.tenant_burst = 8.0;
  EXPECT_NO_THROW(cfg.validate());
}

QosConfig throttled_config(double rate, double burst) {
  QosConfig cfg;
  cfg.enabled = true;
  cfg.tenant_rate = rate;
  cfg.tenant_burst = burst;
  return cfg;
}

TEST(AdmissionController, ThrottlingRequiresEnabledAndRate) {
  EXPECT_FALSE(AdmissionController(QosConfig{}).throttling());
  QosConfig off = throttled_config(100.0, 4.0);
  off.enabled = false;
  EXPECT_FALSE(AdmissionController(off).throttling());
  EXPECT_TRUE(AdmissionController(throttled_config(100.0, 4.0)).throttling());
}

TEST(AdmissionController, BucketsAreLazyAndPerTenant) {
  AdmissionController ctl(throttled_config(1000.0, 2.0));
  EXPECT_EQ(ctl.tenants_seen(), 0u);
  // Tenant 7's first arrival creates its bucket full at that instant.
  EXPECT_TRUE(ctl.admit(7, 0.010));
  EXPECT_TRUE(ctl.admit(7, 0.010));
  EXPECT_FALSE(ctl.admit(7, 0.010));  // burst of 2 spent
  // A different tenant at the same instant has its own untouched bucket.
  EXPECT_TRUE(ctl.admit(3, 0.010));
  EXPECT_EQ(ctl.tenants_seen(), 2u);
  EXPECT_EQ(ctl.throttled(), 1u);
}

TEST(AdmissionController, RefillRestoresAdmissionAtTenantRate) {
  AdmissionController ctl(throttled_config(1000.0, 1.0));
  EXPECT_TRUE(ctl.admit(0, 0.0));
  EXPECT_FALSE(ctl.admit(0, 0.0005));  // half a token
  EXPECT_TRUE(ctl.admit(0, 0.001));    // one full token at 1 ms
  EXPECT_EQ(ctl.throttled(), 1u);
}

TEST(AdmissionController, SteadyOverRateTenantAdmitsAtBucketRate) {
  // A tenant arriving at 4x its rate keeps roughly rate/arrival_rate of
  // its traffic (after the initial burst drains).
  AdmissionController ctl(throttled_config(1000.0, 1.0));
  int admitted = 0;
  const int arrivals = 4000;
  for (int i = 0; i < arrivals; ++i) {
    if (ctl.admit(0, i * 0.00025)) ++admitted;  // 4000/s vs rate 1000/s
  }
  EXPECT_NEAR(admitted, arrivals / 4, 8);
  EXPECT_EQ(ctl.throttled(), static_cast<std::uint64_t>(arrivals - admitted));
}

}  // namespace
}  // namespace harmonia::qos
