// Unit tests of the virtual-clock token bucket: continuous refill up to
// burst, all-or-nothing takes, and pure-function determinism (the
// property the metrics-determinism CI gate leans on).
#include <gtest/gtest.h>

#include "qos/token_bucket.hpp"

namespace harmonia::qos {
namespace {

TEST(TokenBucket, StartsFullAndDrainsByWholeTakes) {
  TokenBucket b(/*rate=*/100.0, /*burst=*/4.0);
  EXPECT_DOUBLE_EQ(b.tokens_at(0.0), 4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(b.try_take(0.0));
  EXPECT_FALSE(b.try_take(0.0));  // empty: the 5th take at t=0 fails
  // A failed take consumed nothing.
  EXPECT_NEAR(b.tokens_at(0.0), 0.0, 1e-9);
}

TEST(TokenBucket, RefillsContinuouslyAtRate) {
  TokenBucket b(100.0, 4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(b.try_take(0.0));
  // 100 tokens/s: half a token at 5 ms — still short of one.
  EXPECT_FALSE(b.try_take(0.005));
  // One full token at 10 ms (epsilon-tolerant compare inside).
  EXPECT_TRUE(b.try_take(0.010));
  EXPECT_FALSE(b.try_take(0.010));
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket b(1000.0, 2.0);
  EXPECT_TRUE(b.try_take(0.0, 2.0));
  // An hour of refill still holds only `burst` tokens.
  EXPECT_DOUBLE_EQ(b.tokens_at(3600.0), 2.0);
  EXPECT_TRUE(b.try_take(3600.0, 2.0));
  EXPECT_FALSE(b.try_take(3600.0, 1.0));
}

TEST(TokenBucket, OversizedTakeFailsWithoutConsuming) {
  TokenBucket b(10.0, 3.0);
  EXPECT_FALSE(b.try_take(0.0, 5.0));  // above burst: can never succeed
  EXPECT_TRUE(b.try_take(0.0, 3.0));   // the full burst is still there
}

TEST(TokenBucket, StartAnchorShiftsTheClock) {
  // A bucket created at t=5 is full at t=5 — creation lazily at a
  // tenant's first arrival must not grant pre-arrival refill.
  TokenBucket b(1.0, 1.0, /*start=*/5.0);
  EXPECT_TRUE(b.try_take(5.0));
  EXPECT_FALSE(b.try_take(5.5));
  EXPECT_TRUE(b.try_take(6.0));
}

TEST(TokenBucket, PreviewAgreesWithTakeAtTheBoundary) {
  // Regression: try_take accepted with an epsilon that the balance
  // preview lacked, so an admission preview at the exact refill boundary
  // could say "no" while the take a call later said "yes". can_take and
  // try_take now share one kEpsilon; sweep instants straddling the
  // boundary (including ones where refill rounding leaves the balance a
  // few ulps shy of a whole token) and require exact agreement.
  const double rate = 3.0, burst = 2.0;
  for (const double dt :
       {0.1, 1.0 / 3.0, 0.333333333333333, 0.3333333333333335, 0.5, 2.0 / 3.0,
        0.9999999999999999 / 3.0, 1.0000000000000002 / 3.0}) {
    TokenBucket b(rate, burst);
    ASSERT_TRUE(b.try_take(0.0, burst));  // drain at t=0
    const bool preview = b.can_take(dt, 1.0);
    const bool taken = b.try_take(dt, 1.0);
    EXPECT_EQ(preview, taken) << "dt " << dt;
    // And the preview after the take reflects the consumed balance
    // (skip instants that refilled two whole tokens).
    if (taken && dt < 0.6) EXPECT_FALSE(b.can_take(dt, 1.0)) << "dt " << dt;
  }
  // Exactly at the boundary the epsilon admits the take both ways.
  TokenBucket b(rate, burst);
  ASSERT_TRUE(b.try_take(0.0, burst));
  EXPECT_TRUE(b.can_take(1.0 / 3.0, 1.0));
  EXPECT_TRUE(b.try_take(1.0 / 3.0, 1.0));
}

TEST(TokenBucket, DeterministicReplay) {
  const double times[] = {0.0, 0.001, 0.0015, 0.002, 0.01, 0.0100001, 0.5};
  auto run = [&] {
    TokenBucket b(500.0, 3.0);
    std::vector<bool> out;
    for (double t : times) out.push_back(b.try_take(t));
    return out;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace harmonia::qos
