// Unit tests of the virtual-clock token bucket: continuous refill up to
// burst, all-or-nothing takes, and pure-function determinism (the
// property the metrics-determinism CI gate leans on).
#include <gtest/gtest.h>

#include "qos/token_bucket.hpp"

namespace harmonia::qos {
namespace {

TEST(TokenBucket, StartsFullAndDrainsByWholeTakes) {
  TokenBucket b(/*rate=*/100.0, /*burst=*/4.0);
  EXPECT_DOUBLE_EQ(b.tokens_at(0.0), 4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(b.try_take(0.0));
  EXPECT_FALSE(b.try_take(0.0));  // empty: the 5th take at t=0 fails
  // A failed take consumed nothing.
  EXPECT_NEAR(b.tokens_at(0.0), 0.0, 1e-9);
}

TEST(TokenBucket, RefillsContinuouslyAtRate) {
  TokenBucket b(100.0, 4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(b.try_take(0.0));
  // 100 tokens/s: half a token at 5 ms — still short of one.
  EXPECT_FALSE(b.try_take(0.005));
  // One full token at 10 ms (epsilon-tolerant compare inside).
  EXPECT_TRUE(b.try_take(0.010));
  EXPECT_FALSE(b.try_take(0.010));
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket b(1000.0, 2.0);
  EXPECT_TRUE(b.try_take(0.0, 2.0));
  // An hour of refill still holds only `burst` tokens.
  EXPECT_DOUBLE_EQ(b.tokens_at(3600.0), 2.0);
  EXPECT_TRUE(b.try_take(3600.0, 2.0));
  EXPECT_FALSE(b.try_take(3600.0, 1.0));
}

TEST(TokenBucket, OversizedTakeFailsWithoutConsuming) {
  TokenBucket b(10.0, 3.0);
  EXPECT_FALSE(b.try_take(0.0, 5.0));  // above burst: can never succeed
  EXPECT_TRUE(b.try_take(0.0, 3.0));   // the full burst is still there
}

TEST(TokenBucket, StartAnchorShiftsTheClock) {
  // A bucket created at t=5 is full at t=5 — creation lazily at a
  // tenant's first arrival must not grant pre-arrival refill.
  TokenBucket b(1.0, 1.0, /*start=*/5.0);
  EXPECT_TRUE(b.try_take(5.0));
  EXPECT_FALSE(b.try_take(5.5));
  EXPECT_TRUE(b.try_take(6.0));
}

TEST(TokenBucket, DeterministicReplay) {
  const double times[] = {0.0, 0.001, 0.0015, 0.002, 0.01, 0.0100001, 0.5};
  auto run = [&] {
    TokenBucket b(500.0, 3.0);
    std::vector<bool> out;
    for (double t : times) out.push_back(b.try_take(t));
    return out;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace harmonia::qos
