#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/expect.hpp"

namespace harmonia {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t({"tree size", "throughput"});
  t.add("2^23", 3.6);
  t.add("2^24", 3.4);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("tree size"), std::string::npos);
  EXPECT_NE(s.find("throughput"), std::string::npos);
  EXPECT_NE(s.find("2^23"), std::string::npos);
  EXPECT_NE(s.find("3.600"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, FormatsIntegersWithoutDecimals) {
  EXPECT_EQ(Table::format_cell(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::format_cell(-7), "-7");
}

TEST(Table, FormatsExtremeDoublesInScientific) {
  const std::string big = Table::format_cell(3.6e9);
  EXPECT_NE(big.find('e'), std::string::npos);
  EXPECT_EQ(Table::format_cell(0.0), "0.000");
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"x"});
  t.add("short");
  t.add("a-much-longer-cell");
  std::ostringstream os;
  t.print(os);
  std::string line;
  std::istringstream is(os.str());
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TableCsv, BasicRoundTrip) {
  Table t({"a", "b"});
  t.add("x", 1.5);
  t.add("y", 2.0);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1.500\ny,2.000\n");
}

TEST(TableCsv, QuotesSpecialCells) {
  Table t({"name"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(TableCsv, AccessorsExposeData) {
  Table t({"h1", "h2"});
  t.add("a", "b");
  ASSERT_EQ(t.headers().size(), 2u);
  EXPECT_EQ(t.headers()[0], "h1");
  ASSERT_EQ(t.data().size(), 1u);
  EXPECT_EQ(t.data()[0][1], "b");
}

}  // namespace
}  // namespace harmonia
