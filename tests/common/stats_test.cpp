#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/expect.hpp"

namespace harmonia {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_NEAR(s.stddev(), 1.5811388, 1e-6);
}

TEST(Summary, SingleSampleStddevZero) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
}

TEST(Summary, PercentileAfterMoreAdds) {
  Summary s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.0);
  s.add(5.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
  EXPECT_THROW(s.percentile(50), ContractViolation);
}

TEST(Summary, ConcurrentPercentileReadsAreRaceFree) {
  // Regression: percentile() used to lazily sort a mutable cache inside
  // the const method, so two report threads reading the same Summary
  // raced on the sort (caught by TSan in CI). It now sorts an owned
  // copy; concurrent reads must be clean and all agree.
  Summary s;
  for (int i = 0; i < 10000; ++i) s.add(static_cast<double>(i));
  const Summary& cs = s;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (cs.percentile(50) != 4999.5) mismatches.fetch_add(1);
        if (cs.percentile(100) != 9999.0) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Summary, AddAllSpan) {
  Summary s;
  const double xs[] = {1.0, 2.0, 3.0};
  s.add_all(xs);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Histogram, BucketsAndFractions) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.9, 9.5}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);  // 0.5, 1.5
  EXPECT_EQ(h.bucket(1), 2u);  // 2.5, 2.9
  EXPECT_EQ(h.bucket(4), 1u);  // 9.5
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
}

TEST(Histogram, OutOfRangeCountsSeparately) {
  // Regression: out-of-range samples used to clamp into the first/last
  // buckets, silently corrupting both tails. They must land in the
  // explicit underflow/overflow counts and leave every bucket untouched.
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(100.0);
  h.add(10.0);  // hi is exclusive: an overflow, not the last bucket
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(h.bucket(1), 0u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, InRangeUnaffectedByOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.9, 9.5}) h.add(x);
  h.add(-1.0);
  h.add(11.0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 7u);
  // fraction() is over every sample seen, in-range or not.
  EXPECT_DOUBLE_EQ(h.fraction(0), 2.0 / 7.0);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), ContractViolation);
  EXPECT_THROW(Histogram(10.0, 0.0, 4), ContractViolation);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

}  // namespace
}  // namespace harmonia
