#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace harmonia {
namespace {

Cli make_cli() {
  Cli cli;
  cli.flag("tree-size", "number of keys", "1048576")
      .flag("dist", "query distribution", "uniform")
      .flag("full", "run paper-scale sizes", "false")
      .flag("fill", "leaf fill factor", "0.69");
  return cli;
}

TEST(Cli, ParsesEqualsForm) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "--tree-size=4096", "--dist=zipfian"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_uint("tree-size", 0), 4096u);
  EXPECT_EQ(cli.get_string("dist", ""), "zipfian");
}

TEST(Cli, ParsesSpaceForm) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "--tree-size", "123"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("tree-size", 0), 123);
}

TEST(Cli, BareFlagIsTrue) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "--full"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("full", false));
}

TEST(Cli, FallbacksWhenAbsent) {
  auto cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_uint("tree-size", 77), 77u);
  EXPECT_FALSE(cli.get_bool("full", false));
  EXPECT_DOUBLE_EQ(cli.get_double("fill", 0.5), 0.5);
  EXPECT_FALSE(cli.has("dist"));
}

TEST(Cli, UnknownFlagFailsParse) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "--no-such-flag=1"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, DoubleParsing) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "--fill=0.5"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("fill", 0.0), 0.5);
}

TEST(Cli, BadBoolThrows) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "--full=maybe"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(cli.get_bool("full", false), std::invalid_argument);
}

TEST(Cli, FlagNamesListsEveryDeclaration) {
  auto cli = make_cli();
  const auto names = cli.flag_names();
  EXPECT_EQ(names.size(), 4u);
  EXPECT_NE(std::find(names.begin(), names.end(), "tree-size"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "fill"), names.end());
}

TEST(Cli, QueriedTracksConsumedFlags) {
  auto cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_TRUE(cli.queried().empty());
  (void)cli.get_uint("tree-size", 0);
  (void)cli.get_bool("full", false);
  EXPECT_EQ(cli.queried().size(), 2u);
  EXPECT_TRUE(cli.queried().count("tree-size"));
  EXPECT_TRUE(cli.queried().count("full"));
  EXPECT_FALSE(cli.queried().count("dist"));
  (void)cli.has("dist");  // presence checks count as consumption too
  EXPECT_TRUE(cli.queried().count("dist"));
}

}  // namespace
}  // namespace harmonia
