#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/expect.hpp"

namespace harmonia {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 0 (from the published splitmix64 code).
  SplitMix64 rng(0);
  EXPECT_EQ(rng.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(rng.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(rng.next(), 0x06c45d188009454fULL);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, NextBelowStaysInBounds) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowOneIsAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, NextBelowRejectsZeroBound) {
  Xoshiro256 rng(5);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, BoundedValuesRoughlyUniform) {
  Xoshiro256 rng(13);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Xoshiro256, ProducesManyDistinctValues) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace harmonia
