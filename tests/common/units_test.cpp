#include "common/units.hpp"

#include <gtest/gtest.h>

namespace harmonia {
namespace {

TEST(Units, SiPrefixScalesByThousands) {
  EXPECT_EQ(si_prefix(3.6e9), "3.60 G");
  EXPECT_EQ(si_prefix(1500.0), "1.50 K");
  EXPECT_EQ(si_prefix(12.0), "12.00 ");
}

TEST(Units, SiPrefixNegative) {
  EXPECT_EQ(si_prefix(-2500.0), "-2.50 K");
}

TEST(Units, BytesHumanPowersOfTwo) {
  EXPECT_EQ(bytes_human(16384), "16.0 KiB");
  EXPECT_EQ(bytes_human(512), "512 B");
  EXPECT_EQ(bytes_human(3ULL << 30), "3.0 GiB");
}

TEST(Units, ThroughputHuman) {
  EXPECT_EQ(throughput_human(3.6e9), "3.60 Gq/s");
}

}  // namespace
}  // namespace harmonia
