#include "hbtree/layout.hpp"

#include <gtest/gtest.h>

#include "queries/workload.hpp"

namespace harmonia::hbtree {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 4;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

TEST(HBTreeHost, SearchMatchesBTree) {
  const auto keys = queries::make_tree_keys(3000, 1);
  const auto bt = btree::make_tree(keys, 16);
  const auto host = HBTreeHost::from_btree(bt);
  EXPECT_EQ(host.height(), bt.height());
  for (Key k : keys) ASSERT_EQ(host.search(k), bt.search(k));
  for (Key k : queries::make_missing_keys(keys, 300, 2)) {
    ASSERT_FALSE(host.search(k).has_value());
  }
}

TEST(HBTreeHost, ChildRefsAreBfsIndices) {
  const auto keys = queries::make_tree_keys(1000, 8);
  const auto bt = btree::make_tree(keys, 8);
  const auto host = HBTreeHost::from_btree(bt);
  // Root (node 0) children start at BFS index 1 and are consecutive.
  ASSERT_FALSE(host.is_leaf(0));
  const auto children = host.node_children(0);
  std::uint32_t expected = 1;
  for (std::uint32_t c : children) {
    if (c == kNoChild) break;
    EXPECT_EQ(c, expected++);
  }
}

TEST(HBTreeHost, LeavesHaveNoChildren) {
  const auto keys = queries::make_tree_keys(500, 8);
  const auto host = HBTreeHost::from_btree(btree::make_tree(keys, 8));
  for (std::uint32_t n = host.first_leaf_index(); n < host.num_nodes(); ++n) {
    for (std::uint32_t c : host.node_children(n)) EXPECT_EQ(c, kNoChild);
  }
}

TEST(HBTreeImage, NodeRecordsRoundTrip) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(1200, 3);
  const auto host = HBTreeHost::from_btree(btree::make_tree(keys, 16));
  const auto img = HBTreeDeviceImage::upload(dev, host);
  EXPECT_EQ(img.num_nodes, host.num_nodes());
  for (std::uint32_t n = 0; n < host.num_nodes(); n += 7) {
    for (unsigned s = 0; s < host.keys_per_node(); ++s) {
      ASSERT_EQ(dev.memory().read<Key>(img.node_key_addr(n, s)), host.node_keys(n)[s]);
    }
    for (unsigned c = 0; c < img.fanout; ++c) {
      ASSERT_EQ(dev.memory().read<std::uint32_t>(img.child_ref_addr(n, c)),
                host.node_children(n)[c]);
    }
  }
}

TEST(HBTreeImage, NodeRecordsAreLarge) {
  // §3.1: "the size of a node is about 1KB for a 64-fanout tree" — the
  // baseline's per-node footprint dwarfs Harmonia's prefix-sum entry.
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(5000, 4);
  const auto host = HBTreeHost::from_btree(btree::make_tree(keys, 64));
  const auto img = HBTreeDeviceImage::upload(dev, host);
  EXPECT_GE(img.node_stride, 63 * 8 + 64 * 4);
  EXPECT_LE(img.node_stride, 1024u);
}

TEST(HBTreeImage, NothingInConstantMemory) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(500, 5);
  const auto host = HBTreeHost::from_btree(btree::make_tree(keys, 8));
  HBTreeDeviceImage::upload(dev, host);
  EXPECT_EQ(dev.memory().const_used(), 0u);
}

}  // namespace
}  // namespace harmonia::hbtree
