#include "hbtree/search.hpp"

#include <gtest/gtest.h>

#include "queries/workload.hpp"

namespace harmonia::hbtree {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

struct HBFixture {
  gpusim::Device dev{test_spec()};
  std::vector<Key> keys = queries::make_tree_keys(2500, 1);
  HBTreeHost host = HBTreeHost::from_btree(btree::make_tree(keys, 16));
  HBTreeDeviceImage img = HBTreeDeviceImage::upload(dev, host);

  std::vector<Value> run(std::span<const Key> qs, HBSearchStats* stats_out = nullptr) {
    auto d_q = dev.memory().malloc<Key>(qs.size());
    dev.memory().copy_to_device(d_q, qs);
    auto d_out = dev.memory().malloc<Value>(qs.size());
    const auto stats = hb_search_batch(dev, img, d_q, qs.size(), d_out);
    if (stats_out != nullptr) *stats_out = stats;
    std::vector<Value> out(qs.size());
    dev.memory().copy_to_host(std::span<Value>(out), d_out);
    return out;
  }
};

TEST(HBSearch, HitsMatchHost) {
  HBFixture f;
  const auto qs = queries::make_queries(f.keys, 600, queries::Distribution::kUniform, 2);
  const auto out = f.run(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(out[i], f.host.search(qs[i]).value());
  }
}

TEST(HBSearch, MissesReturnSentinel) {
  HBFixture f;
  const auto missing = queries::make_missing_keys(f.keys, 128, 3);
  for (Value v : f.run(missing)) ASSERT_EQ(v, kNotFound);
}

TEST(HBSearch, OddBatchSizes) {
  HBFixture f;
  for (std::uint64_t n : {1u, 2u, 31u, 33u, 257u}) {
    const auto qs = queries::make_queries(f.keys, n, queries::Distribution::kUniform, n);
    const auto out = f.run(qs);
    for (std::size_t i = 0; i < qs.size(); ++i) {
      ASSERT_EQ(out[i], f.host.search(qs[i]).value());
    }
  }
}

TEST(HBSearch, ChildRefLoadsHappenEveryLevel) {
  HBFixture f;
  const auto qs = queries::make_queries(f.keys, 512, queries::Distribution::kUniform, 4);
  HBSearchStats stats;
  f.run(qs, &stats);
  // Loads per warp >= query load + per internal level (keys + child ref) +
  // leaf keys + value + out store. The kernel cannot skip the indirection.
  const std::uint64_t internal_levels = f.host.height() - 1;
  EXPECT_GE(stats.metrics.loads,
            stats.warps * (1 + internal_levels * 2));
}

TEST(HBSearch, NoConstantCacheTraffic) {
  HBFixture f;
  const auto qs = queries::make_queries(f.keys, 256, queries::Distribution::kUniform, 5);
  HBSearchStats stats;
  f.run(qs, &stats);
  EXPECT_EQ(stats.metrics.const_hits, 0u);
}

class HBFanoutSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(HBFanoutSweep, CorrectAcrossFanouts) {
  const unsigned fanout = GetParam();
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(1500, fanout);
  const auto host = HBTreeHost::from_btree(btree::make_tree(keys, fanout));
  const auto img = HBTreeDeviceImage::upload(dev, host);
  const auto qs = queries::make_queries(keys, 400, queries::Distribution::kUniform, 6);
  auto d_q = dev.memory().malloc<Key>(qs.size());
  dev.memory().copy_to_device(d_q, std::span<const Key>(qs));
  auto d_out = dev.memory().malloc<Value>(qs.size());
  hb_search_batch(dev, img, d_q, qs.size(), d_out);
  std::vector<Value> out(qs.size());
  dev.memory().copy_to_host(std::span<Value>(out), d_out);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(out[i], host.search(qs[i]).value());
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, HBFanoutSweep,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

}  // namespace
}  // namespace harmonia::hbtree
