#include "hbtree/index.hpp"

#include <gtest/gtest.h>

#include <map>

#include "queries/workload.hpp"

namespace harmonia::hbtree {
namespace {

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

std::vector<btree::Entry> entries_for(const std::vector<Key>& keys) {
  std::vector<btree::Entry> out;
  for (Key k : keys) out.push_back({k, btree::value_for_key(k)});
  return out;
}

TEST(HBTreeIndex, BuildAndSearch) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(2000, 1);
  auto index = HBTreeIndex::build(dev, entries_for(keys), 16);
  const auto qs = queries::make_queries(keys, 500, queries::Distribution::kUniform, 2);
  const auto result = index.search(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(result.values[i], btree::value_for_key(qs[i]));
  }
  EXPECT_GT(result.kernel_seconds, 0.0);
  EXPECT_GT(result.throughput(), 0.0);
}

TEST(HBTreeIndex, UpdateBatchThenSearch) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(3000, 3);
  auto index = HBTreeIndex::build(dev, entries_for(keys), 16);

  queries::BatchSpec spec;
  spec.size = 1000;
  spec.insert_fraction = 0.2;
  spec.seed = 4;
  const auto ops = queries::make_update_batch(keys, spec);
  std::map<Key, Value> oracle;
  for (Key k : keys) oracle[k] = btree::value_for_key(k);
  for (const auto& op : ops) oracle[op.key] = op.value;

  const auto stats = index.update_batch(ops);
  EXPECT_EQ(stats.total_ops(), 1000u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.apply_seconds + stats.sync_seconds, 0.0);
  index.tree().validate();

  std::vector<Key> qs2;
  for (const auto& op : ops) qs2.push_back(op.key);
  const auto r2 = index.search(qs2);
  for (std::size_t i = 0; i < qs2.size(); ++i) {
    ASSERT_EQ(r2.values[i], oracle.at(qs2[i]));
  }
}

TEST(HBTreeIndex, DeleteBatch) {
  gpusim::Device dev(test_spec());
  const auto keys = queries::make_tree_keys(1000, 5);
  auto index = HBTreeIndex::build(dev, entries_for(keys), 8);
  std::vector<queries::UpdateOp> ops;
  for (std::size_t i = 0; i < keys.size(); i += 3) {
    ops.push_back({queries::OpKind::kDelete, keys[i], 0});
  }
  const auto stats = index.update_batch(ops);
  EXPECT_EQ(stats.deletes, ops.size());
  index.tree().validate();
  std::vector<Key> deleted;
  for (const auto& op : ops) deleted.push_back(op.key);
  const auto result = index.search(deleted);
  for (Value v : result.values) EXPECT_EQ(v, kNotFound);
}

}  // namespace
}  // namespace harmonia::hbtree
