// SnapshotStore + Manifest: the newest-valid fallback chain. A torn or
// bit-flipped image must never load; a torn manifest must fall back to
// the directory scan; load_newest must walk past damaged epochs and
// land on the newest image that decodes cleanly.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "btree/btree.hpp"
#include "harmonia/tree.hpp"
#include "persist/snapshot_store.hpp"
#include "queries/workload.hpp"

namespace harmonia::persist {
namespace {

HarmoniaTree sample_tree(std::uint64_t n, std::uint64_t seed) {
  const auto keys = queries::make_tree_keys(n, seed);
  return HarmoniaTree::from_btree(btree::make_tree(keys, 8));
}

void write_file(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

class SnapshotStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "harmonia_snapshot_store_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(SnapshotStoreTest, ManifestEncodeParseRoundTrip) {
  Manifest m;
  m.shard = 3;
  m.snapshots = {17, 9, 4};
  write_file(dir_ / "MANIFEST", Manifest::encode(m));
  const auto parsed = Manifest::parse_file(dir_ / "MANIFEST");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->shard, 3u);
  EXPECT_EQ(parsed->snapshots, (std::vector<std::uint64_t>{17, 9, 4}));
}

TEST_F(SnapshotStoreTest, ManifestMissingIsNullopt) {
  EXPECT_FALSE(Manifest::parse_file(dir_ / "MANIFEST").has_value());
}

// Every strict prefix of a manifest — the on-disk state a crash mid-
// rewrite leaves behind — must fail to parse, never yield a stale or
// partial snapshot list.
TEST_F(SnapshotStoreTest, ManifestTornAtEveryByteIsNullopt) {
  Manifest m;
  m.shard = 1;
  m.snapshots = {12, 8};
  const std::string bytes = Manifest::encode(m);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_file(dir_ / "MANIFEST", bytes.substr(0, len));
    EXPECT_FALSE(Manifest::parse_file(dir_ / "MANIFEST").has_value())
        << "prefix of " << len << " bytes parsed";
  }
}

TEST_F(SnapshotStoreTest, ManifestBitFlipAtEveryByteIsNullopt) {
  Manifest m;
  m.shard = 0;
  m.snapshots = {5};
  const std::string bytes = Manifest::encode(m);
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x08);
    write_file(dir_ / "MANIFEST", flipped);
    EXPECT_FALSE(Manifest::parse_file(dir_ / "MANIFEST").has_value())
        << "flip at byte " << pos << " parsed";
  }
}

TEST_F(SnapshotStoreTest, ListPrefersManifestOrder) {
  SnapshotStore store(dir_);
  store.write(4, sample_tree(50, 1), {});
  store.write(9, sample_tree(50, 2), {});
  store.write_manifest(0, {9, 4});
  bool fallback = true;
  const auto epochs = store.list(&fallback);
  EXPECT_FALSE(fallback);
  EXPECT_EQ(epochs, (std::vector<std::uint64_t>{9, 4}));
}

TEST_F(SnapshotStoreTest, ListFallsBackToDirectoryScanOnTornManifest) {
  SnapshotStore store(dir_);
  store.write(4, sample_tree(50, 1), {});
  store.write(9, sample_tree(50, 2), {});
  write_file(store.manifest_path(), "harmonia-shard-manifest v1\nsha");  // torn
  bool fallback = false;
  const auto epochs = store.list(&fallback);
  EXPECT_TRUE(fallback);
  EXPECT_EQ(epochs, (std::vector<std::uint64_t>{9, 4}));
}

TEST_F(SnapshotStoreTest, LoadNewestRoundTripsTreeAndExtras) {
  const auto tree = sample_tree(120, 3);
  TreeSnapshotExtras extras;
  extras.fill_factor = 0.77;
  extras.overlay = {{5, 99, 0}, {11, 0, 1}};
  SnapshotStore store(dir_);
  store.write(6, tree, extras);
  store.write_manifest(2, {6});

  const auto loaded = store.load_newest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 6u);
  EXPECT_EQ(loaded->discarded, 0u);
  EXPECT_FALSE(loaded->manifest_fallback);
  EXPECT_GT(loaded->bytes, 0u);
  EXPECT_DOUBLE_EQ(loaded->extras.fill_factor, 0.77);
  ASSERT_EQ(loaded->extras.overlay.size(), 2u);
  EXPECT_EQ(loaded->extras.overlay[0].key, 5u);
  EXPECT_EQ(loaded->extras.overlay[0].value, 99u);
  EXPECT_EQ(loaded->extras.overlay[1].tombstone, 1);
  EXPECT_EQ(loaded->tree.num_keys(), tree.num_keys());
  loaded->tree.validate();
}

TEST_F(SnapshotStoreTest, LoadNewestWalksPastTornImage) {
  SnapshotStore store(dir_);
  store.write(3, sample_tree(80, 1), {});
  store.write(7, sample_tree(90, 2), {});
  store.write_manifest(0, {7, 3});
  // Tear the newest image mid-write.
  const std::string bytes = read_file(store.path_for(7));
  write_file(store.path_for(7), bytes.substr(0, bytes.size() / 3));

  const auto loaded = store.load_newest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 3u);
  EXPECT_EQ(loaded->discarded, 1u);
  EXPECT_EQ(loaded->tree.num_keys(), 80u);
}

TEST_F(SnapshotStoreTest, LoadNewestWalksPastMissingManifestEntry) {
  // Manifest names an epoch whose image never finished (crash between
  // manifest write and a later prune, or a deleted file): skip it.
  SnapshotStore store(dir_);
  store.write(2, sample_tree(60, 1), {});
  store.write_manifest(0, {8, 2});
  const auto loaded = store.load_newest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 2u);
  EXPECT_EQ(loaded->discarded, 1u);
}

TEST_F(SnapshotStoreTest, AllImagesTornIsNullopt) {
  SnapshotStore store(dir_);
  store.write(1, sample_tree(60, 1), {});
  store.write(2, sample_tree(60, 2), {});
  store.write_manifest(0, {2, 1});
  for (const std::uint64_t e : {std::uint64_t{1}, std::uint64_t{2}}) {
    const std::string bytes = read_file(store.path_for(e));
    write_file(store.path_for(e), bytes.substr(0, bytes.size() - 5));
  }
  EXPECT_FALSE(store.load_newest().has_value());
}

TEST_F(SnapshotStoreTest, EmptyDirectoryIsNullopt) {
  SnapshotStore store(dir_);
  EXPECT_FALSE(store.load_newest().has_value());
  EXPECT_TRUE(store.list().empty());
}

TEST_F(SnapshotStoreTest, PruneKeepsNewestByDirectoryScan) {
  SnapshotStore store(dir_);
  for (std::uint64_t e = 1; e <= 5; ++e) store.write(e, sample_tree(40, e), {});
  store.prune(2);
  EXPECT_FALSE(std::filesystem::exists(store.path_for(1)));
  EXPECT_FALSE(std::filesystem::exists(store.path_for(2)));
  EXPECT_FALSE(std::filesystem::exists(store.path_for(3)));
  EXPECT_TRUE(std::filesystem::exists(store.path_for(4)));
  EXPECT_TRUE(std::filesystem::exists(store.path_for(5)));
  store.prune(0);
  EXPECT_FALSE(std::filesystem::exists(store.path_for(4)));
  EXPECT_FALSE(std::filesystem::exists(store.path_for(5)));
}

TEST_F(SnapshotStoreTest, PruneRewritesManifestBeforeDeleting) {
  // Regression: prune used to delete image files and leave the manifest
  // naming them — a crash between the two left recovery preferring a
  // manifest that pins deleted snapshots. Pruning must first shrink the
  // manifest to the survivors.
  SnapshotStore store(dir_);
  for (std::uint64_t e = 1; e <= 5; ++e) store.write(e, sample_tree(40, e), {});
  store.write_manifest(3, {5, 4, 3, 2, 1});
  store.prune(2);
  const auto m = Manifest::parse_file(store.manifest_path());
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->shard, 3u);  // prune preserves the manifest's shard id
  EXPECT_EQ(m->snapshots, (std::vector<std::uint64_t>{5, 4}));
  // Every epoch the manifest names still exists on disk.
  for (const std::uint64_t e : m->snapshots) {
    EXPECT_TRUE(std::filesystem::exists(store.path_for(e))) << "epoch " << e;
  }
  // A prune that deletes nothing leaves the manifest untouched.
  const std::string before = read_file(store.manifest_path());
  store.prune(2);
  EXPECT_EQ(read_file(store.manifest_path()), before);
}

TEST_F(SnapshotStoreTest, CrashMidPruneNeverPinsDeletedSnapshot) {
  // Walk every intermediate on-disk state of prune(keep=2)'s write
  // sequence — manifest rewrite, then one deletion at a time — and
  // require recovery (load_newest) to land on the newest surviving
  // image at each point. This is exactly the set of states a crash at
  // any instant mid-prune can leave behind.
  for (int steps = 0; steps <= 4; ++steps) {
    SCOPED_TRACE(::testing::Message() << "crash after step " << steps);
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    SnapshotStore store(dir_);
    for (std::uint64_t e = 1; e <= 5; ++e)
      store.write(e, sample_tree(40 + e, e), {});
    store.write_manifest(0, {5, 4, 3, 2, 1});

    // Replay prune's sequence, stopping after `steps` mutations.
    int done = 0;
    if (done++ < steps) store.write_manifest(0, {5, 4});
    for (const std::uint64_t victim : {3u, 2u, 1u}) {
      if (done++ < steps) std::filesystem::remove(store.path_for(victim));
    }

    const auto m = Manifest::parse_file(store.manifest_path());
    ASSERT_TRUE(m.has_value());
    for (const std::uint64_t e : m->snapshots) {
      EXPECT_TRUE(std::filesystem::exists(store.path_for(e)))
          << "manifest pins deleted epoch " << e;
    }
    const auto loaded = store.load_newest();
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->epoch, 5u);
    EXPECT_EQ(loaded->discarded, 0u);
    EXPECT_FALSE(loaded->manifest_fallback);
  }
}

TEST_F(SnapshotStoreTest, ForeignFilesAreIgnored) {
  SnapshotStore store(dir_);
  store.write(3, sample_tree(40, 1), {});
  write_file(dir_ / "update.log", "not a snapshot");
  write_file(dir_ / "snap-junk.img", "not a snapshot either");
  const auto epochs = store.list();
  EXPECT_EQ(epochs, (std::vector<std::uint64_t>{3}));
  store.prune(1);  // must not trip over the foreign names
  EXPECT_TRUE(std::filesystem::exists(dir_ / "update.log"));
}

}  // namespace
}  // namespace harmonia::persist
