// Differential crash-recovery fuzz (docs/fault_tolerance.md#restart):
// a seeded serving history runs through the real durability write path
// (ShardDurability: write-ahead log + cadence/compaction snapshots on
// the virtual clock) with a crash armed at a swept instant and a torn
// final write. Recovery (RecoveryManager) then cold-starts a fresh
// index from the crashed directory, and the test checks it against an
// oracle that mirrors the durable-write sequence: the recovered state
// must be bit-identical to the logical state after the last epoch whose
// log record survived intact — every key, every value, every tombstone.
//
// The sweep covers > 1000 distinct seeded crash points: crashes before
// an epoch's log append, between the append and the snapshot (torn
// mid-log-append), after the snapshot (torn manifest), plus variants
// that additionally tear the newest snapshot image (crash during a
// background image write), with clean-cut (torn=0) and torn variants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "btree/btree.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "harmonia/index.hpp"
#include "harmonia/pipeline.hpp"
#include "persist/durability.hpp"
#include "persist/recovery.hpp"
#include "queries/batch.hpp"
#include "queries/workload.hpp"

namespace harmonia::persist {
namespace {

using queries::OpKind;
using queries::UpdateOp;

constexpr int kEpochs = 8;

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 4;
  spec.global_mem_bytes = 256 << 20;
  return spec;
}

std::vector<btree::Entry> entries_for(const std::vector<Key>& keys) {
  std::vector<btree::Entry> out;
  for (Key k : keys) out.push_back({k, btree::value_for_key(k)});
  return out;
}

/// Oracle semantics of one op (same as the serving/patch paths): update
/// touches present keys only, insert upserts, delete removes.
void apply_oracle(std::map<Key, Value>& oracle, std::span<const UpdateOp> ops) {
  for (const auto& op : ops) {
    switch (op.kind) {
      case OpKind::kUpdate: {
        auto it = oracle.find(op.key);
        if (it != oracle.end()) it->second = op.value;
        break;
      }
      case OpKind::kInsert:
        oracle[op.key] = op.value;
        break;
      case OpKind::kDelete:
        oracle.erase(op.key);
        break;
    }
  }
}

UpdateOp random_op(Xoshiro256& rng, Key key_span) {
  const Key k = 1 + rng.next_below(key_span);
  const Value v = 1 + (rng.next() >> 1);
  const double r = rng.next_double();
  if (r < 0.45) return {OpKind::kInsert, k, v};
  if (r < 0.70) return {OpKind::kUpdate, k, v};
  return {OpKind::kDelete, k, 0};
}

/// A seed's serving history, shared by all of its crash variants: the
/// base keys, the per-epoch batches, and the oracle state after each
/// epoch (model_after[e] = logical contents once epoch e committed).
struct Scenario {
  std::vector<Key> keys;
  IndexOptions opts;
  std::vector<std::vector<UpdateOp>> batches;  // batches[e-1] = epoch e
  std::vector<std::map<Key, Value>> model_after;
  std::vector<Key> touched;  // every key the sweep must probe
};

Scenario make_scenario(std::uint64_t seed) {
  Scenario sc;
  const std::uint64_t n = 256 + (seed % 4) * 128;
  sc.keys = queries::make_tree_keys(n, seed + 1);
  sc.opts.fanout = seed % 2 == 0 ? 8 : 16;
  sc.opts.fill_factor = 0.8;
  sc.opts.overlay_capacity = 12;

  Xoshiro256 rng(seed * 1000003 + 17);
  const Key key_span = sc.keys.back() + sc.keys.back() / 8;
  std::map<Key, Value> model;
  for (Key k : sc.keys) model[k] = btree::value_for_key(k);
  sc.model_after.push_back(model);  // model_after[0] = initial state

  std::set<Key> touched(sc.keys.begin(), sc.keys.end());
  for (int e = 1; e <= kEpochs; ++e) {
    std::vector<UpdateOp> batch;
    const std::size_t ops = 8 + rng.next_below(7);
    for (std::size_t i = 0; i < ops; ++i) batch.push_back(random_op(rng, key_span));
    for (const auto& op : batch) touched.insert(op.key);
    apply_oracle(model, batch);
    sc.model_after.push_back(model);
    sc.batches.push_back(std::move(batch));
  }
  sc.touched.assign(touched.begin(), touched.end());
  return sc;
}

/// Mirror of ShardDurability's durable-write sequence: which writes hit
/// disk before the crash, in order. kImage is never last (the manifest
/// rides the same instant), so only log records and manifests tear.
struct MirrorWrite {
  enum Kind { kLog, kImage, kManifest } kind;
  std::uint64_t epoch;
};

struct Expected {
  bool from_snapshot = false;
  std::uint64_t snapshot_epoch = 0;  // s*
  std::uint64_t recovered_epoch = 0;  // k* = max(s*, last intact log epoch)
};

struct RunStats {
  int from_snapshot = 0;
  int rebuilt = 0;
  int log_torn = 0;
  int manifest_fallback = 0;
  int snapshots_discarded = 0;
  int overlay_folded = 0;
};

void run_one(const Scenario& sc, std::uint64_t seed, double crash,
             std::uint64_t torn, bool tear_image,
             const std::filesystem::path& dir, RunStats& stats) {
  SCOPED_TRACE(::testing::Message() << "seed " << seed << " crash " << crash
                                    << " torn " << torn << " tear_image "
                                    << tear_image);
  const auto entries = entries_for(sc.keys);

  DurabilityConfig cfg;
  cfg.dir = dir.string();
  cfg.snapshot_every = 2 + seed % 3;
  cfg.retain = 2;

  // --- The crashed generation: serve kEpochs through the real write
  // path, with the crash armed. The ctor wipes stale state from the
  // previous variant's run (fresh-start semantics).
  DurabilityDomain domain(cfg, 1);
  domain.set_crash_time(crash);
  ShardDurability* dur = domain.shard(0);

  gpusim::Device dev(test_spec());
  btree::BTree builder(sc.opts.fanout);
  builder.bulk_load(entries, sc.opts.fill_factor);
  HarmoniaIndex index(dev, HarmoniaTree::from_btree(builder), sc.opts);

  std::vector<MirrorWrite> writes;
  std::uint64_t m_since = 0;
  std::vector<std::uint64_t> m_retained;  // newest first, mirrors disk
  for (int e = 1; e <= kEpochs; ++e) {
    const auto& batch = sc.batches[static_cast<std::size_t>(e - 1)];
    const double t_log = e;         // WAL append at the trigger instant
    const double t_snap = e + 0.5;  // snapshot after the epoch commits

    dur->log_batch(static_cast<std::uint64_t>(e), batch, t_log);
    if (t_log < crash) {
      writes.push_back({MirrorWrite::kLog, static_cast<std::uint64_t>(e)});
      ++m_since;
    }

    // Apply through the delta path so snapshots carry live overlays;
    // exhaustion falls back to a fold-compaction, which forces a
    // snapshot exactly like the serving layer does.
    const auto pr = index.patch_update(batch);
    const bool compacted = pr.exhausted;
    if (compacted) {
      auto fold = index.overlay_as_ops();
      const auto rest = std::span(batch).subspan(pr.absorbed);
      fold.insert(fold.end(), rest.begin(), rest.end());
      index.discard_patch();
      index.commit_staged(index.stage_update(fold));
    } else {
      index.commit_patch();
    }

    dur->maybe_snapshot(static_cast<std::uint64_t>(e), index, compacted, t_snap);
    const bool due = cfg.snapshot_every > 0 && m_since >= cfg.snapshot_every;
    if ((compacted || due) && !(m_since == 0 && !m_retained.empty()) &&
        t_snap < crash) {
      writes.push_back({MirrorWrite::kImage, static_cast<std::uint64_t>(e)});
      writes.push_back({MirrorWrite::kManifest, static_cast<std::uint64_t>(e)});
      m_since = 0;
      m_retained.insert(m_retained.begin(), static_cast<std::uint64_t>(e));
      if (m_retained.size() > cfg.retain) m_retained.resize(cfg.retain);
    }
  }

  // --- Seal the crash and mirror its effect.
  domain.apply_crash(0, torn);
  std::set<std::uint64_t> valid_log;
  for (const auto& w : writes) {
    if (w.kind == MirrorWrite::kLog) valid_log.insert(w.epoch);
  }
  std::set<std::uint64_t> invalid_images;
  if (torn > 0 && !writes.empty()) {
    const MirrorWrite& last = writes.back();
    ASSERT_NE(last.kind, MirrorWrite::kImage)
        << "manifest rides the image's instant, an image is never last";
    if (last.kind == MirrorWrite::kLog) valid_log.erase(last.epoch);
    // A torn manifest only costs the manifest (directory-scan fallback).
  }
  SnapshotStore store(cfg.shard_dir(0));
  // Prune coverage: whatever instant the crash hit — including between a
  // snapshot's manifest rewrite and its prune deletions — a manifest that
  // parses may only name images still on disk. (prune writes the
  // survivor manifest before deleting, so no crash point can violate
  // this.)
  if (const auto m = Manifest::parse_file(store.manifest_path())) {
    for (const std::uint64_t e : m->snapshots) {
      ASSERT_TRUE(std::filesystem::exists(store.path_for(e)))
          << "manifest pins pruned epoch " << e;
    }
  }
  if (tear_image && !m_retained.empty()) {
    // Crash during a background image write: the newest image is torn.
    const std::uint64_t victim = m_retained.front();
    const auto path = store.path_for(victim);
    ASSERT_TRUE(std::filesystem::exists(path));
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size / 2);
    invalid_images.insert(victim);
  }

  Expected want;
  for (const std::uint64_t e : m_retained) {
    if (invalid_images.count(e) == 0) {
      want.from_snapshot = true;
      want.snapshot_epoch = e;
      break;
    }
  }
  want.recovered_epoch = want.snapshot_epoch;
  if (!valid_log.empty())
    want.recovered_epoch = std::max(want.recovered_epoch, *valid_log.rbegin());
  const auto& oracle = sc.model_after[want.recovered_epoch];

  // --- Cold-start a fresh stack from the crashed directory.
  RecoveryManager rm(cfg);
  RecoveryManager::Materials mat = rm.load_shard(0);
  gpusim::Device dev2(test_spec());
  std::unique_ptr<HarmoniaIndex> index2;
  if (mat.snapshot.has_value()) {
    IndexOptions ropts = sc.opts;
    ropts.fill_factor = mat.snapshot->extras.fill_factor;
    index2 = std::make_unique<HarmoniaIndex>(dev2, std::move(mat.snapshot->tree),
                                             ropts);
  } else {
    btree::BTree rebuild(sc.opts.fanout);
    rebuild.bulk_load(entries, sc.opts.fill_factor);
    index2 = std::make_unique<HarmoniaIndex>(dev2, HarmoniaTree::from_btree(rebuild),
                                             sc.opts);
  }
  const RecoveryReport rep =
      rm.finish(std::move(mat), *index2, TransferModel{}, sc.keys.size());

  // --- Differential checks: report vs the mirror, state vs the oracle.
  ASSERT_EQ(rep.from_snapshot, want.from_snapshot);
  ASSERT_EQ(rep.rebuilt, !want.from_snapshot);
  ASSERT_EQ(rep.snapshot_epoch, want.snapshot_epoch);
  ASSERT_EQ(rep.recovered_epoch, want.recovered_epoch);
  ASSERT_GT(rep.modeled_seconds, 0.0);

  index2->tree().validate();
  for (const Key k : sc.touched) {
    const auto got = index2->search_host(k);
    const auto it = oracle.find(k);
    if (it == oracle.end()) {
      ASSERT_FALSE(got.has_value()) << "key " << k << " resurrected";
    } else {
      ASSERT_TRUE(got.has_value()) << "key " << k << " lost";
      ASSERT_EQ(*got, it->second) << "key " << k << " wrong value";
    }
  }

  stats.from_snapshot += rep.from_snapshot ? 1 : 0;
  stats.rebuilt += rep.rebuilt ? 1 : 0;
  stats.log_torn += rep.log_torn_tail ? 1 : 0;
  stats.manifest_fallback += rep.manifest_fallback ? 1 : 0;
  stats.snapshots_discarded += rep.snapshots_discarded > 0 ? 1 : 0;
  stats.overlay_folded += rep.overlay_replayed > 0 ? 1 : 0;
}

/// Device-level sweep on a handful of recovered stacks: the uploaded
/// image answers exactly like the host oracle (run_one checks the host
/// truth everywhere; this pins the device image too).
void device_sweep(const Scenario& sc, std::uint64_t recovered_epoch,
                  HarmoniaIndex& index) {
  const auto& oracle = sc.model_after[recovered_epoch];
  std::vector<Key> qs;
  std::vector<Value> want;
  for (const auto& [k, v] : oracle) {
    qs.push_back(k);
    want.push_back(v);
  }
  const auto result = index.search(qs);
  ASSERT_EQ(result.values.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(result.values[i], want[i]) << "device sweep key " << qs[i];
  }
}

TEST(RecoveryFuzz, DifferentialCrashSweep) {
  const auto dir =
      std::filesystem::temp_directory_path() / "harmonia_recovery_fuzz";
  std::filesystem::remove_all(dir);

  // (torn bytes, tear newest image) variants per crash instant. Batches
  // hold >= 8 ops (137+ byte records), so a torn log write only ever
  // damages the final record — mirroring apply_tear's contract.
  const struct {
    std::uint64_t torn;
    bool tear_image;
  } kVariants[] = {{0, false}, {5, false}, {64, false}, {0, true}};

  int crash_points = 0;
  RunStats stats;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Scenario sc = make_scenario(seed);
    for (int e = 1; e <= kEpochs; ++e) {
      // Before the epoch's log append; between append and snapshot
      // (mid-log-append tear); after the snapshot (manifest tear).
      for (const double crash : {e - 0.25, e + 0.25, e + 0.75}) {
        for (const auto& v : kVariants) {
          ASSERT_NO_FATAL_FAILURE(
              run_one(sc, seed, crash, v.torn, v.tear_image, dir, stats));
          ++crash_points;
        }
      }
    }
  }
  std::filesystem::remove_all(dir);

  EXPECT_GE(crash_points, 1000) << "acceptance floor: >= 1000 seeded crash points";
  // The sweep must actually visit every recovery regime, or the oracle
  // equality above proves less than it claims.
  EXPECT_GT(stats.from_snapshot, 0);
  EXPECT_GT(stats.rebuilt, 0);
  EXPECT_GT(stats.log_torn, 0) << "no mid-log-append tear was exercised";
  EXPECT_GT(stats.manifest_fallback, 0) << "no torn manifest was exercised";
  EXPECT_GT(stats.snapshots_discarded, 0) << "no torn image was exercised";
  EXPECT_GT(stats.overlay_folded, 0) << "no snapshot carried a live overlay";
}

TEST(RecoveryFuzz, DeviceImageMatchesOracleAfterRecovery) {
  const auto dir =
      std::filesystem::temp_directory_path() / "harmonia_recovery_fuzz_dev";
  std::filesystem::remove_all(dir);

  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Scenario sc = make_scenario(seed);
    const auto entries = entries_for(sc.keys);
    const double crash = 4.75 + static_cast<double>(seed);

    DurabilityConfig cfg;
    cfg.dir = dir.string();
    cfg.snapshot_every = 2;
    cfg.retain = 2;
    DurabilityDomain domain(cfg, 1);
    domain.set_crash_time(crash);

    gpusim::Device dev(test_spec());
    btree::BTree builder(sc.opts.fanout);
    builder.bulk_load(entries, sc.opts.fill_factor);
    HarmoniaIndex index(dev, HarmoniaTree::from_btree(builder), sc.opts);
    for (int e = 1; e <= kEpochs; ++e) {
      const auto& batch = sc.batches[static_cast<std::size_t>(e - 1)];
      domain.shard(0)->log_batch(static_cast<std::uint64_t>(e), batch, e);
      index.commit_staged(index.stage_update(batch));
      domain.shard(0)->maybe_snapshot(static_cast<std::uint64_t>(e), index,
                                      /*force=*/false, e + 0.5);
    }
    domain.apply_crash(0, 32);

    RecoveryManager rm(cfg);
    RecoveryManager::Materials mat = rm.load_shard(0);
    gpusim::Device dev2(test_spec());
    std::unique_ptr<HarmoniaIndex> index2;
    if (mat.snapshot.has_value()) {
      IndexOptions ropts = sc.opts;
      ropts.fill_factor = mat.snapshot->extras.fill_factor;
      index2 = std::make_unique<HarmoniaIndex>(
          dev2, std::move(mat.snapshot->tree), ropts);
    } else {
      btree::BTree rebuild(sc.opts.fanout);
      rebuild.bulk_load(entries, sc.opts.fill_factor);
      index2 = std::make_unique<HarmoniaIndex>(
          dev2, HarmoniaTree::from_btree(rebuild), sc.opts);
    }
    const RecoveryReport rep =
        rm.finish(std::move(mat), *index2, TransferModel{}, sc.keys.size());
    ASSERT_NO_FATAL_FAILURE(device_sweep(sc, rep.recovered_epoch, *index2))
        << "seed " << seed;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace harmonia::persist
