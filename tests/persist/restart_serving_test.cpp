// run_with_restarts: kProcessRestart faults tear the whole serving
// stack down mid-run, recovery cold-starts the next generation from the
// crashed directory, and the harness stitches the generations into one
// timeline. These tests pin the cycle accounting (crash / down /
// recovery / resume / TTFR), per-shard recovery independence, request
// conservation across generations, and bit-identical replays.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "queries/workload.hpp"
#include "serve/options.hpp"
#include "serve/workload.hpp"
#include "shard/backend_factory.hpp"
#include "shard/restart_harness.hpp"

namespace harmonia::shard {
namespace {

TopologySpec small_topo(unsigned shards = 1) {
  TopologySpec topo;
  topo.log2_keys = 10;
  topo.fanout = 16;
  topo.shards = shards;
  topo.seed = 3;
  return topo;
}

serve::ServeOptions serving_options(const std::string& dir) {
  serve::ServeOptions opts;
  opts.epoch.max_buffered = 64;
  opts.persist.dir = dir;
  opts.persist.snapshot_every = 2;
  opts.persist.retain = 2;
  return opts;
}

std::vector<serve::Request> update_heavy_stream(const TopologySpec& topo,
                                                std::uint64_t count = 4096) {
  const auto keys = queries::make_tree_keys(1ULL << topo.log2_keys, topo.seed);
  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 2e5;
  spec.count = count;
  spec.update_fraction = 0.3;
  spec.seed = 11;
  return serve::make_open_loop(keys, spec);
}

class RestartServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "harmonia_restart_serving";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(RestartServingTest, RequiresPersistence) {
  const auto topo = small_topo();
  serve::ServeOptions opts;  // no persist.dir
  opts.faults = fault::FaultPlan::parse("restart@0.004:down=0.001,torn=32");
  const auto stream = update_heavy_stream(topo, 256);
  EXPECT_THROW(run_with_restarts(topo, opts, stream), ContractViolation);
}

TEST_F(RestartServingTest, RequiresARestartEvent) {
  const auto topo = small_topo();
  auto opts = serving_options(dir_.string());
  const auto stream = update_heavy_stream(topo, 256);
  EXPECT_THROW(run_with_restarts(topo, opts, stream), ContractViolation);
}

TEST_F(RestartServingTest, BackendRejectsRestartEvents) {
  // A backend can never honor a restart (a server cannot restart
  // itself); only the harness may consume them.
  serve::ServeOptions opts = serving_options(dir_.string());
  opts.faults = fault::FaultPlan::parse("restart@0.004:down=0.001,torn=32");
  EXPECT_THROW(opts.validate(1), ContractViolation);
}

TEST_F(RestartServingTest, SingleRestartRecoversAndReplies) {
  const auto topo = small_topo();
  auto opts = serving_options(dir_.string());
  opts.faults = fault::FaultPlan::parse("restart@0.004:down=0.001,torn=32");
  const auto stream = update_heavy_stream(topo);

  const RestartReport report = run_with_restarts(topo, opts, stream);
  ASSERT_EQ(report.segments.size(), 2u);
  ASSERT_EQ(report.cycles.size(), 1u);

  const RestartCycle& cycle = report.cycles[0];
  EXPECT_DOUBLE_EQ(cycle.crash_time, 0.004);
  EXPECT_DOUBLE_EQ(cycle.down_seconds, 0.001);
  ASSERT_EQ(cycle.recoveries.size(), 1u);
  EXPECT_GT(cycle.recovery_seconds, 0.0);
  EXPECT_DOUBLE_EQ(cycle.resume_time,
                   cycle.crash_time + cycle.down_seconds + cycle.recovery_seconds);

  // TTFR: the first reply of the recovered generation comes after the
  // whole down + recovery window (arrivals queued at the front door).
  ASSERT_TRUE(std::isfinite(cycle.first_reply));
  EXPECT_GE(cycle.first_reply, cycle.resume_time);
  EXPECT_GT(cycle.ttfr_seconds(), cycle.down_seconds + cycle.recovery_seconds);

  // The crashed generation durably logged its epochs; the recovered one
  // replayed from the crash's disk rather than rebuilding blind.
  EXPECT_GT(report.segments[0].log_batches, 0u);
  const persist::RecoveryReport& rec = cycle.recoveries[0];
  EXPECT_TRUE(rec.from_snapshot || rec.batches_replayed > 0 || rec.rebuilt);
  EXPECT_GT(rec.modeled_seconds, 0.0);

  // Request conservation: every arrival lands in exactly one generation.
  std::uint64_t arrivals = 0;
  for (const auto& seg : report.segments) arrivals += seg.arrivals;
  EXPECT_EQ(arrivals, stream.size());
  for (const auto& seg : report.segments) {
    EXPECT_EQ(seg.arrivals, seg.admitted + seg.dropped);
    EXPECT_EQ(seg.responses.size(), seg.arrivals);
  }
  // No response of the recovered generation predates the resume instant.
  for (const auto& resp : report.segments[1].responses) {
    if (!resp.dropped) {
      EXPECT_GE(resp.completion, cycle.resume_time);
    }
  }
}

TEST_F(RestartServingTest, MultiRestartChainRecoversEachGeneration) {
  const auto topo = small_topo();
  auto opts = serving_options(dir_.string());
  opts.faults = fault::FaultPlan::parse(
      "restart@0.004:down=0.0005,torn=48;restart@0.009:down=0.0005,torn=0");
  const auto stream = update_heavy_stream(topo);

  const RestartReport report = run_with_restarts(topo, opts, stream);
  ASSERT_EQ(report.segments.size(), 3u);
  ASSERT_EQ(report.cycles.size(), 2u);
  EXPECT_LT(report.cycles[0].crash_time, report.cycles[1].crash_time);
  EXPECT_LT(report.cycles[0].first_reply, report.cycles[1].first_reply);
  for (const RestartCycle& cycle : report.cycles) {
    ASSERT_EQ(cycle.recoveries.size(), 1u);
    EXPECT_GT(cycle.ttfr_seconds(), 0.0);
  }
  // The second recovery starts from the first recovery's checkpoint (or
  // a snapshot the middle generation wrote) — never a blind rebuild.
  EXPECT_TRUE(report.cycles[1].recoveries[0].from_snapshot);

  std::uint64_t arrivals = 0;
  for (const auto& seg : report.segments) arrivals += seg.arrivals;
  EXPECT_EQ(arrivals, stream.size());
}

TEST_F(RestartServingTest, ShardedShardsRecoverIndependently) {
  const auto topo = small_topo(/*shards=*/2);
  auto opts = serving_options(dir_.string());
  opts.faults = fault::FaultPlan::parse("restart@0.004:shard=1,down=0.001,torn=64");
  const auto stream = update_heavy_stream(topo);

  const RestartReport report = run_with_restarts(topo, opts, stream);
  ASSERT_EQ(report.segments.size(), 2u);
  ASSERT_EQ(report.cycles.size(), 1u);
  const RestartCycle& cycle = report.cycles[0];
  // One recovery report per shard, each from its own directory.
  ASSERT_EQ(cycle.recoveries.size(), 2u);
  EXPECT_EQ(cycle.recoveries[0].shard, 0u);
  EXPECT_EQ(cycle.recoveries[1].shard, 1u);
  // The harness takes the slowest shard as the recovery wall.
  double slowest = 0.0;
  for (const auto& rec : cycle.recoveries)
    slowest = std::max(slowest, rec.modeled_seconds);
  EXPECT_DOUBLE_EQ(cycle.recovery_seconds, slowest);
  EXPECT_GE(cycle.first_reply, cycle.resume_time);
}

// The nastiest crash instant: exactly the epoch-swap boundary. In
// quiesce mode the swap fires the moment the max_buffered-th update
// arrives, so a restart scheduled at precisely that arrival races the
// swap at the same virtual instant (faults cut ahead of same-instant
// work). Conservation must still hold, recovery must replay a
// consistent prefix, and the recovered generation must reply in finite
// time — no request double-counted, lost, or stuck behind a half-swap.
TEST_F(RestartServingTest, RestartExactlyOnEpochSwapBoundary) {
  const auto topo = small_topo();
  auto opts = serving_options(dir_.string());
  const auto stream = update_heavy_stream(topo);

  // The swap instant, read straight off the stream: the arrival that
  // fills the epoch buffer to max_buffered is when the quiesce epoch
  // applies (serve::Server::next_epoch_time returns `now` once
  // size_ready). No probe run needed — arrivals are deterministic.
  std::size_t updates = 0;
  double swap_at = -1.0;
  for (const auto& r : stream) {
    if (r.kind != serve::RequestKind::kUpdate) continue;
    if (++updates == opts.epoch.max_buffered) {
      swap_at = r.arrival;
      break;
    }
  }
  ASSERT_GT(swap_at, 0.0) << "stream too short to fill an epoch";

  char spec[96];
  std::snprintf(spec, sizeof spec, "restart@%.17g:down=0.001,torn=32", swap_at);
  opts.faults = fault::FaultPlan::parse(spec);
  ASSERT_DOUBLE_EQ(opts.faults.events[0].at, swap_at);

  const RestartReport report = run_with_restarts(topo, opts, stream);
  ASSERT_EQ(report.segments.size(), 2u);
  ASSERT_EQ(report.cycles.size(), 1u);
  const RestartCycle& cycle = report.cycles[0];
  EXPECT_DOUBLE_EQ(cycle.crash_time, swap_at);

  // Finite TTFR: the recovered generation actually replied.
  ASSERT_TRUE(std::isfinite(cycle.first_reply));
  EXPECT_GE(cycle.first_reply, cycle.resume_time);
  EXPECT_GT(cycle.ttfr_seconds(), 0.0);

  // Conservation across the boundary crash: every arrival lands in
  // exactly one generation, and each generation accounts for its own.
  std::uint64_t arrivals = 0;
  for (const auto& seg : report.segments) {
    EXPECT_EQ(seg.arrivals, seg.admitted + seg.dropped);
    EXPECT_EQ(seg.responses.size(), seg.arrivals);
    arrivals += seg.arrivals;
  }
  EXPECT_EQ(arrivals, stream.size());

  // Recovery saw a consistent prefix: snapshot and/or log replay, never
  // a torn half-epoch (the recovery layer would throw on one).
  const persist::RecoveryReport& rec = cycle.recoveries[0];
  EXPECT_TRUE(rec.from_snapshot || rec.batches_replayed > 0 || rec.rebuilt);

  // Boundary crashes replay deterministically too.
  auto opts_b = serving_options((dir_ / "replay").string());
  opts_b.faults = fault::FaultPlan::parse(spec);
  const RestartReport again = run_with_restarts(topo, opts_b, stream);
  ASSERT_EQ(again.segments.size(), report.segments.size());
  for (std::size_t i = 0; i < report.segments.size(); ++i) {
    EXPECT_EQ(again.segments[i].completed, report.segments[i].completed);
    EXPECT_EQ(again.segments[i].epochs, report.segments[i].epochs);
  }
  EXPECT_DOUBLE_EQ(again.cycles[0].ttfr_seconds(), cycle.ttfr_seconds());
}

TEST_F(RestartServingTest, ReplayIsBitIdentical) {
  const auto topo = small_topo();
  const auto stream = update_heavy_stream(topo);

  const auto run_once = [&](const std::filesystem::path& dir) {
    auto opts = serving_options(dir.string());
    opts.faults = fault::FaultPlan::parse("restart@0.004:down=0.001,torn=32");
    return run_with_restarts(topo, opts, stream);
  };
  const auto a = run_once(dir_ / "a");
  const auto b = run_once(dir_ / "b");

  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].completed, b.segments[i].completed);
    EXPECT_EQ(a.segments[i].epochs, b.segments[i].epochs);
    EXPECT_EQ(a.segments[i].log_batches, b.segments[i].log_batches);
    EXPECT_EQ(a.segments[i].snapshots_written, b.segments[i].snapshots_written);
  }
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  for (std::size_t i = 0; i < a.cycles.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cycles[i].ttfr_seconds(), b.cycles[i].ttfr_seconds());
    ASSERT_EQ(a.cycles[i].recoveries.size(), b.cycles[i].recoveries.size());
    for (std::size_t s = 0; s < a.cycles[i].recoveries.size(); ++s) {
      EXPECT_EQ(a.cycles[i].recoveries[s].csv_row(),
                b.cycles[i].recoveries[s].csv_row());
    }
  }
}

}  // namespace
}  // namespace harmonia::shard
