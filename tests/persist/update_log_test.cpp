// UpdateLog: record layout, append/replay round-trips, and — the part
// recovery leans on — torn-tail behaviour. A log truncated at *every*
// possible byte length must replay exactly its fully-intact record
// prefix, and a bit flip anywhere must stop replay before the damaged
// record, never corrupt a decoded batch.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fault/checksum.hpp"
#include "persist/update_log.hpp"
#include "queries/batch.hpp"

namespace harmonia::persist {
namespace {

using queries::OpKind;
using queries::UpdateOp;

constexpr std::size_t kRecordHeaderBytes = 20;  // magic+crc+epoch+count
constexpr std::size_t kOpBytes = 17;            // kind+key+value, packed

class UpdateLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "harmonia_update_log_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "update.log";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void write_bytes(const std::string& bytes) {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
  std::filesystem::path path_;
};

std::vector<UpdateOp> sample_ops(std::uint64_t salt, std::size_t n) {
  std::vector<UpdateOp> ops;
  for (std::size_t i = 0; i < n; ++i) {
    const auto kind = static_cast<OpKind>(i % 3);
    ops.push_back({kind, 100 * salt + i, salt * 7 + i});
  }
  return ops;
}

/// Three-record log plus the batches it encodes, for prefix checks.
struct SampleLog {
  std::string bytes;
  std::vector<LogBatch> batches;
  std::vector<std::size_t> boundaries;  // byte offset after each record
};

SampleLog sample_log() {
  SampleLog out;
  std::size_t off = 0;
  for (std::uint64_t e = 1; e <= 3; ++e) {
    const auto ops = sample_ops(e, 2 + e);
    out.bytes += UpdateLog::encode(e, ops);
    out.batches.push_back({e, ops});
    off = out.bytes.size();
    out.boundaries.push_back(off);
  }
  return out;
}

void expect_batches_equal(const std::vector<LogBatch>& got,
                          const std::vector<LogBatch>& want, std::size_t upto) {
  ASSERT_LE(upto, want.size());
  ASSERT_EQ(got.size(), upto);
  for (std::size_t b = 0; b < upto; ++b) {
    EXPECT_EQ(got[b].epoch, want[b].epoch);
    ASSERT_EQ(got[b].ops.size(), want[b].ops.size());
    for (std::size_t i = 0; i < want[b].ops.size(); ++i) {
      EXPECT_EQ(got[b].ops[i].kind, want[b].ops[i].kind);
      EXPECT_EQ(got[b].ops[i].key, want[b].ops[i].key);
      EXPECT_EQ(got[b].ops[i].value, want[b].ops[i].value);
    }
  }
}

TEST_F(UpdateLogTest, EncodeIsPackedAndSized) {
  const auto ops = sample_ops(1, 5);
  const std::string rec = UpdateLog::encode(9, ops);
  EXPECT_EQ(rec.size(), kRecordHeaderBytes + 5 * kOpBytes);
  // Little-endian "HLOG" magic leads the record.
  EXPECT_EQ(static_cast<unsigned char>(rec[0]), 0x47);  // 'G'
  EXPECT_EQ(static_cast<unsigned char>(rec[1]), 0x4F);  // 'O'
  EXPECT_EQ(static_cast<unsigned char>(rec[2]), 0x4C);  // 'L'
  EXPECT_EQ(static_cast<unsigned char>(rec[3]), 0x48);  // 'H'
}

TEST_F(UpdateLogTest, AppendReplayRoundTrip) {
  const auto sample = sample_log();
  UpdateLog log(path_);
  for (const auto& b : sample.batches) log.append(b.epoch, b.ops);

  const auto replay = UpdateLog::replay(path_);
  expect_batches_equal(replay.batches, sample.batches, sample.batches.size());
  EXPECT_EQ(replay.ops, 3u + 4u + 5u);
  EXPECT_EQ(replay.valid_bytes, sample.bytes.size());
  EXPECT_EQ(replay.total_bytes, sample.bytes.size());
  EXPECT_FALSE(replay.torn_tail);
}

TEST_F(UpdateLogTest, ReplayTailSkipsAppliedEpochs) {
  const auto sample = sample_log();
  UpdateLog log(path_);
  for (const auto& b : sample.batches) log.append(b.epoch, b.ops);

  // A replica that last applied epoch 1 catches up on epochs 2 and 3.
  const auto tail = UpdateLog::replay_tail(path_, 1);
  ASSERT_EQ(tail.batches.size(), 2u);
  EXPECT_EQ(tail.batches[0].epoch, 2u);
  EXPECT_EQ(tail.batches[1].epoch, 3u);
  EXPECT_EQ(tail.ops, 4u + 5u);
  // File-shape fields still describe the whole log, not the tail.
  EXPECT_EQ(tail.valid_bytes, sample.bytes.size());
  EXPECT_EQ(tail.total_bytes, sample.bytes.size());
  EXPECT_FALSE(tail.torn_tail);

  // Fully caught up = empty tail; after_epoch=0 = everything.
  EXPECT_TRUE(UpdateLog::replay_tail(path_, 3).batches.empty());
  EXPECT_EQ(UpdateLog::replay_tail(path_, 3).ops, 0u);
  expect_batches_equal(UpdateLog::replay_tail(path_, 0).batches, sample.batches,
                       sample.batches.size());

  // The published framing constants match the encoder (the replica
  // catch-up path costs log shipping with them).
  EXPECT_EQ(UpdateLog::kRecordFixedBytes, kRecordHeaderBytes);
  EXPECT_EQ(UpdateLog::kOpBytes, kOpBytes);
}

TEST_F(UpdateLogTest, MissingFileIsEmptyReplay) {
  const auto replay = UpdateLog::replay(dir_ / "never-written.log");
  EXPECT_TRUE(replay.batches.empty());
  EXPECT_EQ(replay.valid_bytes, 0u);
  EXPECT_EQ(replay.total_bytes, 0u);
  EXPECT_FALSE(replay.torn_tail);
}

TEST_F(UpdateLogTest, EmptyOpsRecordRoundTrips) {
  UpdateLog log(path_);
  log.append(1, {});
  log.append(2, sample_ops(2, 1));
  const auto replay = UpdateLog::replay(path_);
  ASSERT_EQ(replay.batches.size(), 2u);
  EXPECT_TRUE(replay.batches[0].ops.empty());
  EXPECT_EQ(replay.batches[1].epoch, 2u);
}

// The central crash property: for every possible truncation length, the
// replay returns exactly the records that are fully on disk, flags the
// torn tail, and reports the valid prefix that truncate() would keep.
TEST_F(UpdateLogTest, TruncationAtEveryByteKeepsIntactPrefix) {
  const auto sample = sample_log();
  for (std::size_t len = 0; len <= sample.bytes.size(); ++len) {
    write_bytes(sample.bytes.substr(0, len));
    const auto replay = UpdateLog::replay(path_);

    std::size_t complete = 0;
    std::size_t prefix_bytes = 0;
    while (complete < sample.boundaries.size() &&
           sample.boundaries[complete] <= len) {
      prefix_bytes = sample.boundaries[complete];
      ++complete;
    }
    ASSERT_NO_FATAL_FAILURE(
        expect_batches_equal(replay.batches, sample.batches, complete))
        << "truncated to " << len << " bytes";
    EXPECT_EQ(replay.valid_bytes, prefix_bytes) << "len " << len;
    EXPECT_EQ(replay.total_bytes, len) << "len " << len;
    EXPECT_EQ(replay.torn_tail, len != prefix_bytes) << "len " << len;
  }
}

// A flip anywhere in record r must stop replay at or before r: the crc
// (or magic/epoch check) rejects the record, everything earlier decodes
// untouched, and replay never throws or fabricates ops.
TEST_F(UpdateLogTest, BitFlipAtEveryByteStopsBeforeDamage) {
  const auto sample = sample_log();
  for (std::size_t pos = 0; pos < sample.bytes.size(); ++pos) {
    std::string bytes = sample.bytes;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x20);
    write_bytes(bytes);
    const auto replay = UpdateLog::replay(path_);

    // Record index the flipped byte falls in.
    std::size_t damaged = 0;
    while (sample.boundaries[damaged] <= pos) ++damaged;
    EXPECT_LE(replay.batches.size(), damaged) << "flip at " << pos;
    EXPECT_TRUE(replay.torn_tail) << "flip at " << pos;
    ASSERT_NO_FATAL_FAILURE(
        expect_batches_equal(replay.batches, sample.batches, replay.batches.size()))
        << "flip at " << pos;
  }
}

TEST_F(UpdateLogTest, TruncateRepairsTornTail) {
  const auto sample = sample_log();
  // Chop into the middle of the last record.
  write_bytes(sample.bytes.substr(0, sample.bytes.size() - 7));
  auto replay = UpdateLog::replay(path_);
  ASSERT_TRUE(replay.torn_tail);
  ASSERT_EQ(replay.batches.size(), 2u);

  UpdateLog::truncate(path_, replay.valid_bytes);
  replay = UpdateLog::replay(path_);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.batches.size(), 2u);
  EXPECT_EQ(replay.valid_bytes, replay.total_bytes);
}

TEST_F(UpdateLogTest, NonIncreasingEpochStopsReplay) {
  // Stale records from an older generation must not replay twice: the
  // epoch sequence is strictly increasing, so a repeat (or decrease)
  // ends the valid prefix.
  std::string bytes = UpdateLog::encode(4, sample_ops(1, 2));
  const std::size_t first = bytes.size();
  bytes += UpdateLog::encode(4, sample_ops(2, 2));
  bytes += UpdateLog::encode(5, sample_ops(3, 2));
  write_bytes(bytes);
  const auto replay = UpdateLog::replay(path_);
  ASSERT_EQ(replay.batches.size(), 1u);
  EXPECT_EQ(replay.batches[0].epoch, 4u);
  EXPECT_EQ(replay.valid_bytes, first);
  EXPECT_TRUE(replay.torn_tail);
}

TEST_F(UpdateLogTest, BadOpKindStopsReplay) {
  // A record whose body decodes but holds an unknown op kind is treated
  // as torn even when its crc matches (a same-version decoder must never
  // hand recovery an op it cannot apply).
  std::string good = UpdateLog::encode(1, sample_ops(1, 2));
  std::string bad = UpdateLog::encode(2, sample_ops(2, 2));
  // Kind byte of op 0 lives right after the fixed header; patch it and
  // recompute nothing — instead patch both kind and crc is fiddly, so
  // build the record manually from a patched body.
  const std::size_t kind_off = kRecordHeaderBytes;
  bad[kind_off] = 7;  // not a valid OpKind
  // Fix the crc so only the kind check can reject it.
  {
    const std::string body = bad.substr(8);
    const auto crc = fault::crc32(body.data(), body.size());
    bad[4] = static_cast<char>(crc & 0xff);
    bad[5] = static_cast<char>((crc >> 8) & 0xff);
    bad[6] = static_cast<char>((crc >> 16) & 0xff);
    bad[7] = static_cast<char>((crc >> 24) & 0xff);
  }
  write_bytes(good + bad);
  const auto replay = UpdateLog::replay(path_);
  ASSERT_EQ(replay.batches.size(), 1u);
  EXPECT_EQ(replay.batches[0].epoch, 1u);
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.valid_bytes, good.size());
}

TEST_F(UpdateLogTest, HugeCountFieldFailsFastNotAllocates) {
  // A corrupted count field must end the prefix, not drive a giant read.
  std::string rec = UpdateLog::encode(1, sample_ops(1, 1));
  rec[16] = static_cast<char>(0xff);  // count low byte
  rec[17] = static_cast<char>(0xff);
  rec[18] = static_cast<char>(0xff);
  rec[19] = static_cast<char>(0x7f);
  write_bytes(rec);
  const auto replay = UpdateLog::replay(path_);
  EXPECT_TRUE(replay.batches.empty());
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.valid_bytes, 0u);
}

}  // namespace
}  // namespace harmonia::persist
