// Unit + integration tests of the closed-loop autotuner (src/tune/) and
// the runtime-Tunables contract it drives through serve::Backend.
//
// The unit half feeds the controller hand-rolled metric windows and
// checks the control-loop guard rails one by one: warmup, bounded step,
// keep-on-gain, one-step rollback, p99 band, SLO veto, cooldown, and
// bit-identical decision replay. The integration half runs a real
// Server under a saturating stream and asserts the API redesign's
// observable contract: tune decisions land in the metrics counters and
// the trace, and the image/PSA knobs never change off an epoch-swap
// boundary (a scripted controller samples effective_query_knobs()
// between its own ticks to prove the latch).
#include "tune/autotuner.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "queries/workload.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"

namespace harmonia::tune {
namespace {

// ---------------------------------------------------------------- unit

/// Drives an Autotuner through scripted metric windows: each step feeds
/// `n` completions at a fixed latency, then ticks the controller.
struct Loop {
  explicit Loop(const AutotunerConfig& cfg)
      : tuner(cfg, metrics),
        completed(metrics.counter("serve_class_completed_total{class=\"gold\"}")),
        latency(metrics.histogram(
            "serve_class_latency_seconds{class=\"gold\"}",
            obs::LatencyHistogram::exponential_edges(1e-7, 1.0, 28))) {}

  serve::TuneDecision step(double now, std::uint64_t n, double lat_seconds,
                           std::uint64_t drops = 0) {
    completed.inc(n);
    for (std::uint64_t i = 0; i < n; ++i) latency.observe(lat_seconds);
    if (drops > 0)
      metrics.counter("serve_class_dropped_total{class=\"gold\"}").inc(drops);
    return tuner.tick(now, current);
  }

  obs::MetricsRegistry metrics;
  Autotuner tuner;
  obs::Counter& completed;
  obs::LatencyHistogram& latency;
  serve::Tunables current{.max_batch = 256, .max_wait = 50e-6};
};

AutotunerConfig fast_config() {
  AutotunerConfig cfg;
  cfg.tick_every = 1e-3;
  cfg.cooldown_ticks = 0;
  return cfg;
}

TEST(AutotunerTest, WarmupThenOneBoundedStep) {
  Loop loop(fast_config());

  // Tick 1 is warmup: it only establishes the baseline window.
  auto d = loop.step(1e-3, 1000, 50e-6);
  EXPECT_EQ(d.action, serve::TuneAction::kNone);
  EXPECT_EQ(loop.tuner.moves(), 0u);

  // Tick 2 proposes exactly one knob moved exactly one step.
  d = loop.step(2e-3, 1000, 50e-6);
  ASSERT_EQ(d.action, serve::TuneAction::kApply);
  EXPECT_EQ(d.target.max_batch, 512u) << "one doubling, not a jump";
  EXPECT_DOUBLE_EQ(d.target.max_wait, loop.current.max_wait);
  EXPECT_EQ(d.target.apply_threads, loop.current.apply_threads);
  EXPECT_EQ(d.target.group_size, loop.current.group_size);
  EXPECT_EQ(d.target.sort_bits, loop.current.sort_bits);
  EXPECT_NE(d.note.find("max_batch"), std::string::npos);
}

TEST(AutotunerTest, KeptMoveKeepsClimbingTheSameKnob) {
  Loop loop(fast_config());
  loop.step(1e-3, 1000, 50e-6);                       // warmup
  auto d = loop.step(2e-3, 1000, 50e-6);              // propose 256 -> 512
  ASSERT_EQ(d.action, serve::TuneAction::kApply);
  loop.current = d.target;

  // The trial window doubles throughput: the move is kept (silent tick).
  d = loop.step(3e-3, 2000, 50e-6);
  EXPECT_EQ(d.action, serve::TuneAction::kNone);
  EXPECT_EQ(loop.tuner.rollbacks(), 0u);

  // The next proposal climbs the SAME knob further instead of touring.
  d = loop.step(4e-3, 2000, 50e-6);
  ASSERT_EQ(d.action, serve::TuneAction::kApply);
  EXPECT_EQ(d.target.max_batch, 1024u);
}

TEST(AutotunerTest, NoGainRollsBackToExactPreTrialSnapshot) {
  Loop loop(fast_config());
  loop.step(1e-3, 1000, 50e-6);
  auto d = loop.step(2e-3, 1000, 50e-6);
  ASSERT_EQ(d.action, serve::TuneAction::kApply);
  const serve::Tunables before = loop.current;
  loop.current = d.target;

  // Same throughput in the trial window -> no gain -> one-step rollback.
  d = loop.step(3e-3, 1000, 50e-6);
  ASSERT_EQ(d.action, serve::TuneAction::kRollback);
  EXPECT_TRUE(d.target == before) << "rollback must restore the exact "
                                  << "pre-trial snapshot";
  EXPECT_NE(d.note.find("no gain"), std::string::npos);
  EXPECT_EQ(loop.tuner.rollbacks(), 1u);
}

TEST(AutotunerTest, P99RegressionOutsideBandRollsBack) {
  Loop loop(fast_config());
  loop.step(1e-3, 1000, 50e-6);
  auto d = loop.step(2e-3, 1000, 50e-6);
  ASSERT_EQ(d.action, serve::TuneAction::kApply);
  const serve::Tunables before = loop.current;
  loop.current = d.target;

  // Throughput improves 50% but p99 quadruples with zero drops: the
  // latency guard rail wins.
  d = loop.step(3e-3, 1500, 200e-6);
  ASSERT_EQ(d.action, serve::TuneAction::kRollback);
  EXPECT_TRUE(d.target == before);
  EXPECT_NE(d.note.find("p99 out of band"), std::string::npos);
}

TEST(AutotunerTest, DropsWaiveTheP99BandWhileSaturated) {
  Loop loop(fast_config());
  loop.step(1e-3, 1000, 50e-6);
  auto d = loop.step(2e-3, 1000, 50e-6);
  ASSERT_EQ(d.action, serve::TuneAction::kApply);
  loop.current = d.target;

  // Same regressed p99, but the window also dropped requests: the stream
  // is saturated, so completing 50% more is kept regardless of latency.
  d = loop.step(3e-3, 1500, 200e-6, /*drops=*/400);
  EXPECT_EQ(d.action, serve::TuneAction::kNone);
  EXPECT_EQ(loop.tuner.rollbacks(), 0u);
}

TEST(AutotunerTest, SloVetoBlocksTrialsEntirely) {
  AutotunerConfig cfg = fast_config();
  cfg.slo_p99 = 100e-6;
  Loop loop(cfg);
  loop.step(1e-3, 1000, 300e-6);  // warmup, already past the SLO

  auto d = loop.step(2e-3, 1000, 300e-6);
  ASSERT_EQ(d.action, serve::TuneAction::kVeto);
  EXPECT_EQ(loop.tuner.moves(), 0u) << "a vetoed tick must not experiment";
  EXPECT_EQ(loop.tuner.vetoes(), 1u);
  EXPECT_NE(d.note.find("slo"), std::string::npos);
}

TEST(AutotunerTest, CooldownSpacesTrials) {
  AutotunerConfig cfg = fast_config();
  cfg.cooldown_ticks = 2;
  Loop loop(cfg);
  loop.step(1e-3, 1000, 50e-6);                       // warmup
  auto d = loop.step(2e-3, 1000, 50e-6);              // trial 1 proposed
  ASSERT_EQ(d.action, serve::TuneAction::kApply);
  loop.current = d.target;
  d = loop.step(3e-3, 1000, 50e-6);                   // judged: rollback
  ASSERT_EQ(d.action, serve::TuneAction::kRollback);
  loop.current = d.target;

  // Two quiet cooldown ticks before the next experiment.
  EXPECT_EQ(loop.step(4e-3, 1000, 50e-6).action, serve::TuneAction::kNone);
  EXPECT_EQ(loop.step(5e-3, 1000, 50e-6).action, serve::TuneAction::kNone);
  EXPECT_EQ(loop.step(6e-3, 1000, 50e-6).action, serve::TuneAction::kApply);
}

TEST(AutotunerTest, IdenticalInputsReplayIdenticalDecisions) {
  // The controller reads only its config and the metric windows, so two
  // instances fed the same script must produce byte-identical decisions
  // (the determinism the CI replay gate relies on).
  const std::vector<std::tuple<std::uint64_t, double, std::uint64_t>> script = {
      {1000, 50e-6, 0}, {1000, 50e-6, 0},  {2000, 50e-6, 0},
      {2000, 60e-6, 0}, {1500, 200e-6, 0}, {1500, 200e-6, 300},
      {800, 40e-6, 0},  {2500, 45e-6, 0},  {2500, 45e-6, 0},
  };
  auto run = [&] {
    Loop loop(fast_config());
    std::vector<std::string> decisions;
    double now = 0.0;
    for (const auto& [n, lat, drops] : script) {
      now += 1e-3;
      const auto d = loop.tuner.next_tick();
      const auto dec = loop.step(now, n, lat, drops);
      if (dec.action == serve::TuneAction::kApply ||
          dec.action == serve::TuneAction::kRollback) {
        loop.current = dec.target;
      }
      decisions.push_back(std::to_string(d) + "|" +
                          serve::to_string(dec.action) + "|" +
                          serve::to_string(dec.target) + "|" + dec.note);
    }
    return decisions;
  };
  EXPECT_EQ(run(), run());
}

TEST(AutotunerTest, ProfileFeedbackSeedsImageKnobs) {
  Loop loop(fast_config());
  loop.tuner.observe_profile(0.0, /*group_size=*/8, /*sort_bits=*/12);
  loop.step(1e-3, 1000, 50e-6);  // warmup

  // Walk proposals until the group-size knob comes up: it must re-seed
  // to the profiled value, not step blindly.
  bool saw_group = false, saw_bits = false;
  for (int i = 2; i < 20 && !(saw_group && saw_bits); ++i) {
    const auto d = loop.step(i * 1e-3, 1000, 50e-6);
    if (d.action != serve::TuneAction::kApply) continue;
    if (d.target.group_size != loop.current.group_size) {
      EXPECT_EQ(d.target.group_size, 8u);
      saw_group = true;
    }
    if (d.target.sort_bits != loop.current.sort_bits) {
      EXPECT_EQ(d.target.sort_bits, 12u);
      saw_bits = true;
    }
    loop.current = d.target;  // keep everything: feed rising throughput
    loop.completed.inc(0);
  }
  EXPECT_TRUE(saw_group);
  EXPECT_TRUE(saw_bits);
}

// --------------------------------------------------------- integration

gpusim::DeviceSpec test_spec() {
  auto spec = gpusim::titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 512 << 20;
  return spec;
}

struct ServerFixture {
  explicit ServerFixture(std::uint64_t tree_keys = 1 << 12)
      : keys(queries::make_tree_keys(tree_keys, 1)), index([&] {
          std::vector<btree::Entry> entries;
          for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
          return HarmoniaIndex::build(dev, entries, {.fanout = 16});
        }()) {}

  gpusim::Device dev{test_spec()};
  std::vector<Key> keys;
  HarmoniaIndex index;
};

serve::OpenLoopSpec saturating_spec(std::uint64_t count) {
  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = 30e6;
  spec.count = count;
  spec.update_fraction = 0.05;
  spec.seed = 7;
  return spec;
}

TEST(AutotunerServingTest, DecisionsLandInMetricsAndTrace) {
  ServerFixture f;
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;

  AutotunerConfig cfg;
  cfg.tick_every = 50e-6;
  cfg.cooldown_ticks = 0;
  Autotuner tuner(cfg, metrics);

  serve::ServeOptions opts;
  opts.batch.max_batch = 128;
  opts.batch.max_wait = 50e-6;
  opts.batch.queue_capacity = 4096;
  opts.epoch.max_buffered = 512;
  opts.epoch.mode = serve::EpochMode::kOverlap;
  opts.obs = {&metrics, &trace};
  opts.tuner = &tuner;

  serve::Server server(f.index, opts);
  const auto rep = server.run(make_open_loop(f.keys, saturating_spec(30000)));
  rep.check_invariants();

  // The tuner escaped the deliberately tiny starting batch.
  EXPECT_GT(server.tunables().max_batch, 128u);
  ASSERT_GT(tuner.moves(), 0u);

  // Every decision is double-booked: counters and trace annotations.
  const std::uint64_t applied =
      metrics.counter("serve_tune_applied_total").value();
  const std::uint64_t rolled =
      metrics.counter("serve_tune_rolled_back_total").value();
  EXPECT_EQ(applied, tuner.moves());
  EXPECT_EQ(rolled, tuner.rollbacks());
  std::uint64_t traced_applied = 0, traced_rolled = 0;
  for (const auto& e : trace.events()) {
    if (e.note.rfind("tune applied", 0) == 0) ++traced_applied;
    if (e.note.rfind("tune rolled-back", 0) == 0) ++traced_rolled;
  }
  EXPECT_EQ(traced_applied, applied);
  EXPECT_EQ(traced_rolled, rolled);
}

/// A scripted controller that applies one group-size change mid-run and
/// then samples the backend's live dispatch knobs at every tick, plus at
/// every swap boundary via observe_profile (the backend calls it right
/// after installing any latched snapshot).
class LatchProbe : public serve::TuneController {
 public:
  LatchProbe(double tick_every, double apply_after)
      : tick_every_(tick_every), apply_after_(apply_after) {}

  void attach(const serve::Backend* backend) { backend_ = backend; }

  double next_tick() const override { return next_; }

  serve::TuneDecision tick(double now, const serve::Tunables& current) override {
    while (next_ <= now) next_ += tick_every_;
    tick_samples_.push_back({now, backend_->effective_query_knobs().first});
    serve::TuneDecision d;
    if (apply_at_ < 0.0 && now >= apply_after_) {
      apply_at_ = now;
      d.action = serve::TuneAction::kApply;
      d.target = current;
      d.target.group_size = 16;
      d.note = "probe group_size -> 16";
    }
    return d;
  }

  void observe_profile(double now, unsigned, unsigned) override {
    boundary_samples_.push_back({now, backend_->effective_query_knobs().first});
  }

  double tick_every_;
  double apply_after_;
  double next_ = 0.0;
  double apply_at_ = -1.0;
  const serve::Backend* backend_ = nullptr;
  std::vector<std::pair<double, unsigned>> tick_samples_;
  std::vector<std::pair<double, unsigned>> boundary_samples_;
};

// Acceptance: apply_tunables never changes the image/PSA knobs off an
// epoch-swap boundary. Epoch builds are stretched so the scripted apply
// provably lands while a staged epoch is in flight, then the probe's own
// ticks observe the old group size until the swap installs the latch.
TEST(AutotunerServingTest, ImageKnobsOnlyChangeAtSwapBoundaries) {
  ServerFixture f;

  serve::ServeOptions opts;
  opts.batch.max_batch = 256;
  opts.batch.max_wait = 50e-6;
  opts.batch.queue_capacity = 8192;
  opts.epoch.mode = serve::EpochMode::kOverlap;
  opts.epoch.max_buffered = 64;
  opts.epoch.seconds_per_op = 2e-5;  // ~1.3ms builds: epochs stay inflight

  LatchProbe probe(/*tick_every=*/50e-6, /*apply_after=*/1e-3);
  opts.tuner = &probe;

  serve::Server server(f.index, opts);
  probe.attach(&server);

  serve::OpenLoopSpec spec = saturating_spec(40000);
  spec.arrivals_per_second = 10e6;
  spec.update_fraction = 0.10;  // steady update flow keeps epochs staged
  const auto rep = server.run(make_open_loop(f.keys, spec));
  rep.check_invariants();

  ASSERT_GE(probe.apply_at_, 0.0) << "the probe never got to apply";
  EXPECT_EQ(server.tunables().group_size, 16u);
  EXPECT_EQ(server.effective_query_knobs().first, 16u)
      << "the latched snapshot must eventually install";

  // The first boundary at/after the apply is where the knob may first
  // change; every probe tick strictly before it must still see the old
  // value, no matter that tunables() already reports the new one.
  double first_boundary = -1.0;
  for (const auto& [at, group] : probe.boundary_samples_) {
    if (at >= probe.apply_at_) {
      first_boundary = at;
      break;
    }
  }
  ASSERT_GE(first_boundary, 0.0) << "no swap boundary after the apply";

  bool saw_latched_window = false;
  for (const auto& [at, group] : probe.tick_samples_) {
    if (at <= probe.apply_at_ || at >= first_boundary) continue;
    EXPECT_EQ(group, 0u) << "image knob changed off a swap boundary at t="
                         << at;
    saw_latched_window = true;
  }
  EXPECT_TRUE(saw_latched_window)
      << "no tick landed between apply and swap: the latch was not "
      << "exercised — stretch the epoch build or speed up the ticks";

  // And at every boundary on/after the install, dispatches use the new
  // value (observe_profile runs right after the latch installs).
  for (const auto& [at, group] : probe.boundary_samples_) {
    if (at >= first_boundary) EXPECT_EQ(group, 16u);
  }
}

}  // namespace
}  // namespace harmonia::tune
