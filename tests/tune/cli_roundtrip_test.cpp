// Property test for the add_flags()/from_cli() contract: every flag a
// config struct registers must be consumed by its from_cli(), and a
// parse with no arguments must reproduce the struct's defaults. A flag
// that parses but is never read is dead config — the CLI silently
// accepts it and the run silently ignores it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "serve/options.hpp"
#include "tune/autotuner.hpp"

namespace harmonia {
namespace {

/// Asserts every declared flag landed in the consumption ledger.
void expect_all_consumed(const Cli& cli) {
  for (const std::string& name : cli.flag_names()) {
    EXPECT_TRUE(cli.queried().count(name) > 0)
        << "--" << name << " is declared by add_flags but never read by "
        << "from_cli: dead config";
  }
}

TEST(CliRoundTripTest, ServeOptionsConsumesEveryDeclaredFlag) {
  Cli cli;
  serve::ServeOptions::add_flags(cli);
  const char* argv[] = {"test"};
  ASSERT_TRUE(cli.parse(1, argv));
  (void)serve::ServeOptions::from_cli(cli);
  expect_all_consumed(cli);
}

TEST(CliRoundTripTest, AutotunerConfigConsumesEveryDeclaredFlag) {
  Cli cli;
  tune::AutotunerConfig::add_flags(cli);
  const char* argv[] = {"test"};
  ASSERT_TRUE(cli.parse(1, argv));
  (void)tune::AutotunerConfig::from_cli(cli);
  expect_all_consumed(cli);
}

TEST(CliRoundTripTest, ServeOptionsDefaultsSurviveTheRoundTrip) {
  Cli cli;
  serve::ServeOptions::add_flags(cli);
  const char* argv[] = {"test"};
  ASSERT_TRUE(cli.parse(1, argv));
  const serve::ServeOptions parsed = serve::ServeOptions::from_cli(cli);
  const serve::ServeOptions defaults;

  EXPECT_EQ(parsed.batch.max_batch, defaults.batch.max_batch);
  EXPECT_DOUBLE_EQ(parsed.batch.max_wait, defaults.batch.max_wait);
  EXPECT_EQ(parsed.batch.queue_capacity, defaults.batch.queue_capacity);
  EXPECT_EQ(parsed.epoch.max_buffered, defaults.epoch.max_buffered);
  EXPECT_EQ(parsed.epoch.mode, defaults.epoch.mode);
  EXPECT_EQ(parsed.epoch.apply_threads, defaults.epoch.apply_threads);
  EXPECT_EQ(parsed.batch.pipeline.query_options.group_size,
            defaults.batch.pipeline.query_options.group_size);
  EXPECT_EQ(parsed.batch.pipeline.query_options.psa_override_bits,
            defaults.batch.pipeline.query_options.psa_override_bits);
  EXPECT_EQ(parsed.replicas, defaults.replicas);
  EXPECT_EQ(parsed.qos.enabled, defaults.qos.enabled);
  EXPECT_EQ(parsed.persist.dir, defaults.persist.dir);
  EXPECT_EQ(parsed.persist.recover, defaults.persist.recover);
  // The tunable snapshot derived from both must agree too.
  EXPECT_TRUE(serve::Tunables::from(parsed) == serve::Tunables::from(defaults));
}

TEST(CliRoundTripTest, AutotunerDefaultsSurviveTheRoundTrip) {
  Cli cli;
  tune::AutotunerConfig::add_flags(cli);
  const char* argv[] = {"test"};
  ASSERT_TRUE(cli.parse(1, argv));
  const tune::AutotunerConfig parsed = tune::AutotunerConfig::from_cli(cli);
  const tune::AutotunerConfig defaults;

  EXPECT_DOUBLE_EQ(parsed.tick_every, defaults.tick_every);
  EXPECT_EQ(parsed.cooldown_ticks, defaults.cooldown_ticks);
  EXPECT_DOUBLE_EQ(parsed.p99_band, defaults.p99_band);
  EXPECT_DOUBLE_EQ(parsed.slo_p99, defaults.slo_p99);
  EXPECT_DOUBLE_EQ(parsed.min_improvement, defaults.min_improvement);
  EXPECT_EQ(parsed.min_batch, defaults.min_batch);
  EXPECT_EQ(parsed.max_batch, defaults.max_batch);
  EXPECT_DOUBLE_EQ(parsed.min_wait, defaults.min_wait);
  EXPECT_DOUBLE_EQ(parsed.max_wait, defaults.max_wait);
  EXPECT_EQ(parsed.max_apply_threads, defaults.max_apply_threads);
}

TEST(CliRoundTripTest, TunablesFlagsReachTheTunablesSnapshot) {
  Cli cli;
  serve::ServeOptions::add_flags(cli);
  const char* argv[] = {"test", "--max-batch=512", "--max-wait-us=40",
                        "--apply-threads=3", "--group-size=8",
                        "--sort-bits=12"};
  ASSERT_TRUE(cli.parse(6, argv));
  const serve::Tunables t =
      serve::Tunables::from(serve::ServeOptions::from_cli(cli));
  EXPECT_EQ(t.max_batch, 512u);
  EXPECT_DOUBLE_EQ(t.max_wait, 40e-6);
  EXPECT_EQ(t.apply_threads, 3u);
  EXPECT_EQ(t.group_size, 8u);
  EXPECT_EQ(t.sort_bits, 12u);
}

}  // namespace
}  // namespace harmonia
