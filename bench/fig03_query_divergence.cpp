// Figure 3: query divergence — the number of key comparisons different
// queries need at each tree level fluctuates widely (min / avg / max over
// 100 queries; average close to 4 for the fanout-8 tree).
//
// The comparison count at a node is the sequential-scan cost of finding
// the child: (first slot whose key > target) + 1, capped at the node's
// key count.
#include "bench_common.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("tree-size", "keys in the height-4 fanout-8 tree", "1500")
      .flag("queries", "queries to sample (paper: 100)", "100")
      .flag("fanout", "tree fanout", "8")
      .flag("seed", "workload seed", "1");
  if (!cli.parse(argc, argv)) return 1;

  const std::uint64_t tree_size = cli.get_uint("tree-size", 1500);
  const std::uint64_t n = cli.get_uint("queries", 100);
  const auto fanout = static_cast<unsigned>(cli.get_uint("fanout", 8));
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("Query divergence: per-level comparison counts",
                   "Figure 3 (100 uniform queries, height-4 fanout-8 tree)");

  const auto keys = queries::make_tree_keys(tree_size, seed);
  const auto tree = HarmoniaTree::from_btree(btree::make_tree(keys, fanout));
  const auto qs = queries::make_queries(keys, n, queries::Distribution::kUniform, seed + 1);

  std::vector<Summary> per_level(tree.height());
  for (Key q : qs) {
    std::uint32_t node = 0;
    for (unsigned level = 0; level < tree.height(); ++level) {
      const auto slots = tree.node_keys(node);
      const auto it = std::upper_bound(slots.begin(), slots.end(), q);
      const auto boundary = static_cast<unsigned>(it - slots.begin());
      const unsigned comparisons = std::min(boundary + 1, tree.node_key_count(node));
      per_level[level].add(comparisons);
      if (level + 1 < tree.height()) node = tree.prefix_sum()[node] + boundary;
    }
  }

  Table table({"tree level", "min", "avg", "max"});
  for (unsigned level = 0; level < tree.height(); ++level) {
    table.add(level + 1, per_level[level].min(), per_level[level].mean(),
              per_level[level].max());
  }
  table.print(std::cout);

  std::cout << "\npaper: large min-max fluctuation at every level, average ~4\n";
  return 0;
}
