// Extension: architecture sensitivity. The paper evaluates on a TITAN V
// and validates NTG on a Tesla K80; this harness sweeps the simulated
// SM count (does Harmonia keep scaling?) and compares the two presets
// end-to-end, separating the compute-bound from the DRAM-bound regime.
#include "bench_common.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "20")
      .flag("queries", "log2 query batch", "17")
      .flag("fanout", "tree fanout", "64")
      .flag("seed", "workload seed", "1")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  if (!cli.parse(argc, argv)) return 1;
  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 20));
  const std::uint64_t n = 1ULL << cli.get_uint("queries", 17);
  const auto fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("Device scaling: SM count sweep + presets",
                   "extension (architecture sensitivity of Figure 11)");

  const auto keys = queries::make_tree_keys(1ULL << lg, seed);
  const auto entries = hb::entries_for(keys);
  const auto qs =
      queries::make_queries(keys, n, queries::Distribution::kUniform, seed + 1);

  Table table({"device", "SMs", "Harmonia (Gq/s)", "dram txns", "bound by"});

  auto run = [&](gpusim::DeviceSpec spec) {
    spec.global_mem_bytes = 4ULL << 30;
    gpusim::Device dev(spec);
    auto index = HarmoniaIndex::build(dev, entries, {.fanout = fanout});
    const auto r = index.search(qs);
    // Which roofline term dominated? Compare DRAM time to the worst SM.
    const double dram_cycles =
        static_cast<double>(r.search.metrics.dram_transactions) *
        spec.dram_cycles_per_txn;
    const double total = r.search.metrics.elapsed_cycles(spec);
    const char* bound = dram_cycles >= total * 0.5 ? "DRAM bandwidth" : "SM time";
    table.add(spec.name, spec.num_sms, r.throughput() / 1e9,
              r.search.metrics.dram_transactions, bound);
  };

  for (unsigned sms : {10u, 20u, 40u, 80u}) {
    auto spec = gpusim::titan_v();
    spec.num_sms = sms;
    spec.name = "TITAN V @" + std::to_string(sms) + "SM";
    run(spec);
  }
  run(gpusim::tesla_k80());

  hb::emit(cli, table);
  std::cout << "\nexpected: throughput grows with SMs until DRAM bandwidth"
            << " becomes the roofline; the K80 preset lands far below Volta\n";
  return 0;
}
