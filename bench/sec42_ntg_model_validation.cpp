// §4.2 model validation: for each fanout and device preset, compare the
// NTG model's chosen thread-group size against an exhaustive sweep of the
// simulated kernel ("the NTG size of this model is basically consistent
// with the NTG size of the best performance"; e.g. GS=2 at fanout 64 and
// GS=4 at fanout 128 on the K80).
#include "bench_common.hpp"

#include "harmonia/ntg.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "18")
      .flag("queries", "log2 query batch", "16")
      .flag("seed", "workload seed", "1");
  if (!cli.parse(argc, argv)) return 1;
  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 18));
  const std::uint64_t n = 1ULL << cli.get_uint("queries", 16);
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("NTG model vs exhaustive sweep",
                   "§4.2 (Equations 3/4 + static profiling, TITAN V and K80)");

  Table table({"device", "fanout", "model GS", "best GS (sweep)",
               "model tp (Gq/s)", "best tp (Gq/s)", "model/best (%)"});

  for (const auto& spec : {gpusim::titan_v(), gpusim::tesla_k80()}) {
    for (unsigned fanout : {8u, 16u, 32u, 64u, 128u}) {
      const auto keys = queries::make_tree_keys(1ULL << lg, seed);
      const auto tree = HarmoniaTree::from_btree(btree::make_tree(keys, fanout));
      auto qs = queries::make_queries(keys, n, queries::Distribution::kUniform, seed + 1);
      // NTG assumes the PSA-sorted stream (§4.2).
      auto plan = psa_prepare(qs, tree.num_keys(), spec, PsaMode::kPartial);

      const auto sample =
          std::span<const Key>(plan.queries.data(), std::min<std::size_t>(1000, n));
      const auto choice = choose_group_size(tree, sample, spec);

      auto dev_spec = spec;
      dev_spec.global_mem_bytes = 4ULL << 30;
      gpusim::Device dev(dev_spec);
      const auto img = HarmoniaDeviceImage::upload(dev, tree);
      auto d_q = dev.memory().malloc<Key>(plan.queries.size());
      dev.memory().copy_to_device(d_q, std::span<const Key>(plan.queries));
      auto d_out = dev.memory().malloc<Value>(plan.queries.size());

      const unsigned widest = resolve_group_size(spec, fanout, 0);
      double best_tp = 0.0, model_tp = 0.0;
      unsigned best_gs = widest;
      for (unsigned gs = widest; gs >= 1; gs /= 2) {
        SearchConfig scfg;
        scfg.group_size = gs;
        dev.flush_caches();
        const auto stats = search_batch(dev, img, d_q, plan.queries.size(), d_out, scfg);
        const double tp = stats.metrics.throughput(spec, plan.queries.size());
        if (tp > best_tp) {
          best_tp = tp;
          best_gs = gs;
        }
        if (gs == choice.group_size) model_tp = tp;
        if (gs == 1) break;
      }

      table.add(spec.name, fanout, choice.group_size, best_gs, model_tp / 1e9,
                best_tp / 1e9, 100.0 * model_tp / best_tp);
    }
  }
  table.print(std::cout);
  std::cout << "\npaper: model choice matches the empirically best NTG size"
            << " (K80: GS=2 @ fanout 64, GS=4 @ fanout 128)\n";
  return 0;
}
