// Extension: multi-device scaling. The paper's evaluation is single-GPU;
// this harness range-partitions the tree across 1-8 simulated devices
// (src/shard/) and measures aggregate search throughput — equal-width vs
// sample-balanced partitions, uniform vs zipfian queries — to show where
// sharding scales and where partition skew caps it. --check exits
// non-zero unless uniform throughput grows monotonically from 1 to 4
// devices (the scaling claim CI pins).
#include <map>

#include "bench_common.hpp"
#include "shard/sharded_index.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

namespace {

std::vector<std::string> parse_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "20")
      .flag("queries", "log2 query batch", "17")
      .flag("fanout", "tree fanout", "64")
      .flag("seed", "workload seed", "1")
      .flag("shards", "comma list of device counts", "1,2,4,8")
      .flag("dists", "comma list of query distributions", "uniform,zipfian")
      .flag("mode", "partition mode: width, balanced, or both", "both")
      .flag("check", "fail unless uniform throughput scales 1->4", "false")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  hb::add_metrics_flag(cli);
  if (!cli.parse(argc, argv)) return 1;
  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 20));
  const std::uint64_t n = 1ULL << cli.get_uint("queries", 17);
  const auto fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  const std::uint64_t seed = cli.get_uint("seed", 1);
  const bool check = cli.get_bool("check", false);

  std::vector<unsigned> shard_counts;
  for (const auto& s : parse_list(cli.get_string("shards", "1,2,4,8")))
    shard_counts.push_back(static_cast<unsigned>(std::stoul(s)));
  const auto dists = parse_list(cli.get_string("dists", "uniform,zipfian"));
  const std::string mode_flag = cli.get_string("mode", "both");
  std::vector<std::string> modes;
  if (mode_flag == "both")
    modes = {"width", "balanced"};
  else
    modes = {mode_flag};
  for (const auto& m : modes) {
    if (m != "width" && m != "balanced") {
      std::cerr << "unknown --mode: " << m << " (width|balanced|both)\n";
      return 1;
    }
  }

  hb::print_header("Shard scaling: devices x partition mode x distribution",
                   "extension (multi-device, beyond the paper's single GPU)");

  const auto keys = queries::make_tree_keys(1ULL << lg, seed);
  const auto entries = hb::entries_for(keys);
  const bool observe = !cli.get_string("metrics-out", "").empty();
  obs::MetricsRegistry metrics;

  Table table({"dist", "mode", "shards", "min keys", "max keys", "Gq/s",
               "speedup", "bottleneck"});

  // (dist, mode) -> throughput at the smallest shard count (speedup base).
  std::map<std::pair<std::string, std::string>, double> base;
  // mode -> throughput per shard count on uniform queries (for --check).
  std::map<std::string, std::map<unsigned, double>> uniform_curve;

  for (const auto& dist_name : dists) {
    const auto dist = queries::distribution_from_string(dist_name);
    const auto qs = queries::make_queries(keys, n, dist, seed + 1);
    for (const auto& mode : modes) {
      for (const unsigned num_shards : shard_counts) {
        const auto plan = mode == "balanced"
                              ? shard::ShardPlan::sample_balanced(keys, num_shards)
                              : shard::ShardPlan::equal_width(num_shards);
        shard::ShardedOptions options;
        options.index.fanout = fanout;
        options.device = hb::bench_spec(2ULL << 30);
        shard::ShardedIndex index(entries, plan, options);
        if (observe) index.set_observer({.metrics = &metrics});

        const auto r = index.search(qs);
        std::uint64_t min_keys = ~std::uint64_t{0}, max_keys = 0;
        for (unsigned s = 0; s < num_shards; ++s) {
          min_keys = std::min(min_keys, index.shard_key_count(s));
          max_keys = std::max(max_keys, index.shard_key_count(s));
        }
        const auto key = std::make_pair(dist_name, mode);
        if (!base.count(key)) base[key] = r.throughput();
        if (dist == queries::Distribution::kUniform)
          uniform_curve[mode][num_shards] = r.throughput();
        table.add(dist_name, mode, num_shards, min_keys, max_keys,
                  r.throughput() / 1e9, r.throughput() / base[key],
                  r.bottleneck_shard);
      }
    }
  }

  hb::emit(cli, table);
  hb::maybe_dump_metrics(cli, metrics);
  std::cout << "\nexpected: balanced partitions scale with devices on both"
            << " distributions; equal-width scaling collapses once skew"
            << " concentrates the batch on one shard\n";

  if (check) {
    // The acceptance gate: uniform-query throughput must grow
    // monotonically from 1 through 4 devices in every partition mode run.
    for (const auto& [mode, curve] : uniform_curve) {
      double prev = 0.0;
      unsigned prev_n = 0;
      for (const auto& [num_shards, gqs] : curve) {
        if (num_shards > 4) break;
        if (gqs < prev) {
          std::cerr << "FAIL: uniform/" << mode << " throughput not monotone: "
                    << prev_n << " shards -> " << prev / 1e9 << " Gq/s, "
                    << num_shards << " shards -> " << gqs / 1e9 << " Gq/s\n";
          return 1;
        }
        prev = gqs;
        prev_n = num_shards;
      }
    }
    std::cout << "check passed: uniform throughput monotone 1->4 devices\n";
  }
  return 0;
}
