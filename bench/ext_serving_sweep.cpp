// Extension E10: the latency/throughput batching frontier of the online
// serving layer (src/serve/).
//
// The paper measures pre-aggregated batches; an online server must *form*
// batches from a live stream, trading queueing delay for batch size. This
// harness replays Poisson arrivals at several rates against a grid of
// max_wait deadlines: raising max_wait lets batches grow (amortizing
// per-transfer latency and kernel launch overhead -> higher service
// rate), while tail latency absorbs the longer wait. The CSV reports both
// sides of the frontier.
#include "bench_common.hpp"

#include "serve/workload.hpp"
#include "shard/backend_factory.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "18")
      .flag("requests", "requests per run", "20000")
      .flag("rates", "comma list of arrival rates (Mq/s)", "5,20")
      .flag("waits", "comma list of max_wait deadlines (us)", "20,50,100,200,500")
      .flag("max-batch", "batch size trigger", "8192")
      .flag("queue-cap", "admission queue capacity", "16384")
      .flag("fanout", "tree fanout", "64")
      .flag("pcie", "link bandwidth in GB/s", "12.0")
      .flag("seed", "workload seed", "1")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  hb::add_metrics_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 18));
  const std::uint64_t requests = cli.get_uint("requests", 20000);
  if (cli.get_uint("queue-cap", 16384) < cli.get_uint("max-batch", 8192)) {
    std::cerr << "error: --queue-cap must be >= --max-batch\n";
    return 1;
  }
  const auto rates = hb::parse_log_list(cli.get_string("rates", "5,20"));
  const auto waits = hb::parse_log_list(cli.get_string("waits", "20,50,100,200,500"));

  hb::print_header("Serving sweep: arrival rate x batching deadline",
                   "extension E10 (online dynamic batching frontier)");

  shard::TopologySpec topo;
  topo.log2_keys = lg;
  topo.fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  topo.seed = cli.get_uint("seed", 1);
  topo.device = hb::bench_spec();
  const bool observe = !cli.get_string("metrics-out", "").empty();
  obs::MetricsRegistry metrics;

  Table table({"rate (Mq/s)", "max_wait (us)", "batches", "mean batch",
               "p50 (us)", "p95 (us)", "p99 (us)", "dropped",
               "achieved (Mq/s)", "service rate (Mq/s)"});

  for (unsigned rate_mqs : rates) {
    for (unsigned wait_us : waits) {
      serve::ServeOptions cfg;
      cfg.batch.max_batch = cli.get_uint("max-batch", 8192);
      cfg.batch.max_wait = wait_us * 1e-6;
      cfg.batch.queue_capacity = cli.get_uint("queue-cap", 16384);
      cfg.link.gigabytes_per_second = cli.get_double("pcie", 12.0);
      if (observe) cfg.obs.metrics = &metrics;

      // Fresh stack (device + index) per cell: cache state must not leak
      // across configurations.
      shard::ServingStack stack(topo, cfg);

      serve::OpenLoopSpec spec;
      spec.arrivals_per_second = rate_mqs * 1e6;
      spec.count = requests;
      spec.seed = cli.get_uint("seed", 1) + 7;
      const auto stream = serve::make_open_loop(stack.keys(), spec);

      const auto rep = stack.backend().run(stream);

      table.add(rate_mqs, wait_us, rep.batches, rep.batch_size.mean(),
                rep.latency.percentile(50) * 1e6, rep.latency.percentile(95) * 1e6,
                rep.latency.percentile(99) * 1e6, rep.dropped,
                rep.query_throughput() / 1e6, rep.service_rate() / 1e6);
    }
  }
  hb::emit(cli, table);
  hb::maybe_dump_metrics(cli, metrics);
  std::cout << "\nexpected: within a rate, larger max_wait -> larger batches and"
            << " higher service rate, but higher p99 latency; overloaded rates"
            << " shed load (dropped > 0) instead of growing the queue\n";
  return 0;
}
