// Figure 8: sorted (full sort) and partially-sorted (PS) query time,
// normalized to the unsorted original, split into sort time + search
// time, across tree sizes.
//
// Paper shape: full sorting cuts kernel time ~22% but the sort overhead
// (~25%+) makes the total ~7% *slower*; PSA keeps the kernel win at ~35%
// of the sort cost, for ~10% total improvement.
#include "bench_common.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  hb::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto cfg = hb::read_common(cli);

  hb::print_header("PSA trade-off: sort time vs search time",
                   "Figure 8 (normalized to unsorted search time)");

  Table table({"log(tree size)", "variant", "sort time", "search time", "total",
               "normalized total"});

  for (unsigned lg : cfg.size_logs) {
    const std::uint64_t size = 1ULL << lg;
    const auto keys = queries::make_tree_keys(size, cfg.seed);
    gpusim::Device dev(hb::bench_spec());
    auto index = HarmoniaIndex::build(dev, hb::entries_for(keys),
                                      {.fanout = cfg.fanout, .fill_factor = cfg.fill});
    const auto qs = queries::make_queries(keys, cfg.num_queries, cfg.dist, cfg.seed + 1);

    struct Variant {
      const char* name;
      PsaMode mode;
    };
    double base_total = 0.0;
    for (const Variant v : {Variant{"Original", PsaMode::kNone},
                            Variant{"Sorted", PsaMode::kFull},
                            Variant{"PS", PsaMode::kPartial}}) {
      QueryOptions qopts;
      qopts.psa = v.mode;
      qopts.auto_ntg = false;  // isolate PSA, as the figure does
      dev.flush_caches();
      const auto r = index.search(qs, qopts);
      const double total = r.total_seconds();
      if (v.mode == PsaMode::kNone) base_total = total;
      table.add(lg, v.name, r.sort_seconds, r.kernel_seconds, total,
                total / base_total);
    }
  }
  hb::emit(cli, table);
  std::cout << "\npaper: Sorted ~1.07x of Original total (kernel -22%, sort +25%);"
            << " PS ~0.9x of Original total\n";
  return 0;
}
