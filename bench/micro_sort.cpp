// Microbenchmarks of the radix sort used by PSA: cost scales with the
// number of sorted bits (the property Equation 2 exploits).
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "sort/radix_sort.hpp"

namespace {

using namespace harmonia;

std::vector<std::uint64_t> random_keys(std::size_t n) {
  Xoshiro256 rng(7);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  return keys;
}

void BM_RadixSortBits(benchmark::State& state) {
  const auto base = random_keys(1 << 16);
  const auto bits = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    auto keys = base;
    sort::radix_sort_bits(keys, 64 - bits, bits);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_RadixSortBits)->Arg(8)->Arg(19)->Arg(32)->Arg(64);

void BM_RadixSortPairs(benchmark::State& state) {
  const auto base = random_keys(1 << 16);
  std::vector<std::uint64_t> payload_base(base.size());
  std::iota(payload_base.begin(), payload_base.end(), 0);
  for (auto _ : state) {
    auto keys = base;
    auto payload = payload_base;
    sort::radix_sort_pairs_bits(keys, payload, 45, 19);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_RadixSortPairs);

}  // namespace

BENCHMARK_MAIN();
