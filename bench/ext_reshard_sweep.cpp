// Extension E16: zipfian split-and-migrate sweep — what live resharding
// and replica groups buy under skew.
//
// Four scenarios over the same zipfian arrival stream:
//
//   steady      split off, K=1 — the skewed baseline (hot shard caps it)
//   split       hot-range splitting on — a mid-run migration halves the
//               hot shard into its colder neighbor at a swap boundary
//   k3          K=3 replica groups, no faults — replication overhead row
//   failover    K=3 plus a replica-lost fault on the hot shard — the
//               survivors serve, the replica rejoins from the log tail
//
// --check enforces the two acceptance gates from the issue: the split
// run's p99 must stay within 2x the steady-state p99 (the flip parks
// straddlers, it never stalls the world), and the failover run must
// absorb the loss with *zero* CPU-oracle degraded queries.
#include "bench_common.hpp"

#include "fault/fault_plan.hpp"
#include "serve/workload.hpp"
#include "shard/backend_factory.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "18")
      .flag("requests", "requests per run", "40000")
      .flag("rate", "arrival rate (Mq/s)", "6")
      .flag("shards", "number of shards", "4")
      .flag("replicas", "replica group size K for the replicated rows", "3")
      .flag("updates", "update fraction of the stream", "0.05")
      .flag("hot-factor", "split threshold vs fleet-mean window load", "1.3")
      .flag("min-window", "min routed queries per detection window", "64")
      .flag("detect-every-us", "detection cadence (us)", "200")
      .flag("fanout", "tree fanout", "64")
      .flag("seed", "workload seed", "1")
      .flag("check", "fail unless the split + failover gates hold", "false")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  hb::add_metrics_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 18));
  const std::uint64_t requests = cli.get_uint("requests", 40000);
  const double rate = cli.get_double("rate", 6) * 1e6;
  const unsigned shards = static_cast<unsigned>(cli.get_uint("shards", 4));
  const unsigned replicas = static_cast<unsigned>(cli.get_uint("replicas", 3));
  const std::uint64_t seed = cli.get_uint("seed", 1);
  const bool check = cli.get_bool("check", false);
  const double horizon = static_cast<double>(requests) / rate;

  hb::print_header("Reshard sweep: hot-range splitting x replica groups",
                   "extension E16 (live resharding under zipfian skew)");

  const bool observe = !cli.get_string("metrics-out", "").empty();
  obs::MetricsRegistry metrics;

  shard::TopologySpec topo;
  topo.log2_keys = lg;
  topo.fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  topo.shards = shards;
  topo.seed = seed;
  topo.device = hb::bench_spec();

  Table table({"scenario", "K", "migrations", "plan ver", "moved keys",
               "p50 (us)", "p99 (us)", "degraded", "shed", "repl lost",
               "rejoined", "catchup ops", "achieved (Mq/s)"});

  struct Row {
    serve::ServerReport rep;
  };
  std::vector<std::pair<std::string, Row>> rows;

  const struct Scenario {
    const char* name;
    bool split;
    unsigned k;
    bool fault;
  } scenarios[] = {
      {"steady", false, 1, false},
      {"split", true, 1, false},
      {"k3", false, replicas, false},
      {"failover", false, replicas, true},
  };

  for (const Scenario& sc : scenarios) {
    serve::ServeOptions cfg;
    cfg.replicas = sc.k;
    cfg.reshard.split_hot = sc.split;
    cfg.reshard.hot_factor = cli.get_double("hot-factor", 1.3);
    cfg.reshard.min_window_queries = cli.get_uint("min-window", 64);
    cfg.reshard.detect_every = cli.get_double("detect-every-us", 200) * 1e-6;
    if (sc.fault) {
      // Lose one replica of the hot (low-key) shard a quarter in; it
      // rejoins after another quarter and catches up from the log tail.
      char spec[96];
      std::snprintf(spec, sizeof spec,
                    "replica-lost@%.9g:shard=0,replica=0,repair=%.9g",
                    0.25 * horizon, 0.25 * horizon);
      cfg.faults = fault::FaultPlan::parse(spec);
    }
    if (observe && sc.split) cfg.obs.metrics = &metrics;

    shard::ServingStack stack(topo, cfg);

    serve::OpenLoopSpec spec;
    spec.arrivals_per_second = rate;
    spec.count = requests;
    spec.update_fraction = cli.get_double("updates", 0.05);
    spec.dist = queries::Distribution::kZipfian;
    spec.seed = seed + 7;
    const auto stream = serve::make_open_loop(stack.keys(), spec);

    const auto rep = stack.backend().run(stream);
    const auto& fr = rep.faults;
    table.add(sc.name, sc.k, rep.migrations, rep.plan_version,
              rep.migrated_keys, rep.latency.percentile(50) * 1e6,
              rep.latency.percentile(99) * 1e6,
              fr.degraded_points + fr.degraded_ranges + fr.degraded_shed,
              rep.shed, fr.replicas_lost, fr.replicas_rejoined, fr.catchup_ops,
              rep.query_throughput() / 1e6);
    rows.emplace_back(sc.name, Row{rep});
  }

  hb::emit(cli, table);
  hb::maybe_dump_metrics(cli, metrics);
  std::cout << "\nexpected: the split row commits >= 1 migration with p99 within"
            << " 2x of steady (the flip only parks straddlers); the failover"
            << " row absorbs the replica loss with zero degraded queries\n";

  if (check) {
    const auto find = [&](const char* name) -> const serve::ServerReport& {
      for (const auto& [n, r] : rows)
        if (n == name) return r.rep;
      std::cerr << "FAIL: missing scenario " << name << "\n";
      std::exit(1);
    };
    const auto& steady = find("steady");
    const auto& split = find("split");
    const auto& failover = find("failover");

    if (split.migrations < 1) {
      std::cerr << "FAIL: split run committed no migration (hot shard never"
                << " crossed the threshold)\n";
      return 1;
    }
    if (split.plan_version != 1 + split.migrations) {
      std::cerr << "FAIL: plan_version " << split.plan_version << " != 1 + "
                << split.migrations << " migrations\n";
      return 1;
    }
    const double p99_steady = steady.latency.percentile(99);
    const double p99_split = split.latency.percentile(99);
    if (p99_split > 2.0 * p99_steady) {
      std::cerr << "FAIL: p99 through the split " << p99_split * 1e6
                << " us > 2x steady-state " << p99_steady * 1e6 << " us\n";
      return 1;
    }
    const auto& fr = failover.faults;
    if (fr.replicas_lost < 1 || fr.replicas_rejoined < 1) {
      std::cerr << "FAIL: failover run lost " << fr.replicas_lost
                << " / rejoined " << fr.replicas_rejoined
                << " replicas (want >= 1 each)\n";
      return 1;
    }
    if (fr.degraded_points + fr.degraded_ranges + fr.degraded_shed != 0) {
      std::cerr << "FAIL: failover run served degraded ("
                << fr.degraded_points << " pt, " << fr.degraded_ranges
                << " rg, " << fr.degraded_shed << " shed) — the survivors"
                << " should have absorbed the loss\n";
      return 1;
    }
    std::cout << "check passed: split p99 " << p99_split * 1e6 << " us <= 2x "
              << p99_steady * 1e6 << " us steady; failover absorbed with zero"
              << " degraded\n";
  }
  return 0;
}
