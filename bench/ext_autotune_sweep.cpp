// Extension E17: does the closed-loop autotuner (src/tune/,
// docs/serving.md#autotuner) actually track a shifting workload?
//
// One phase-shifting open-loop stream — a uniform point phase, then a
// zipfian phase, then an update-heavy phase — replays against (a) a grid
// of static (max_batch, max_wait) configurations and (b) one autotuned
// run that starts from the first grid cell and adapts online. Responses
// are attributed to phases by arrival time, so every run scores the same
// arrivals; the per-phase completed count (equivalently throughput — the
// denominators match) is the score.
//
// With --check the binary enforces the acceptance gate itself: in every
// phase the tuned run must complete at least --gate (default 0.9) of
// what the best static configuration for THAT phase completed, the tuner
// must actually move, and every report passes check_invariants(). The
// whole run is virtual-clock deterministic, so the gate is replayable.
#include "bench_common.hpp"

#include <algorithm>
#include <array>

#include "serve/workload.hpp"
#include "shard/backend_factory.hpp"
#include "tune/autotuner.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

namespace {

struct PhaseSpec {
  const char* name;
  queries::Distribution dist;
  double update_fraction;
};

constexpr std::array<PhaseSpec, 3> kPhases{{
    {"uniform", queries::Distribution::kUniform, 0.0},
    {"zipf", queries::Distribution::kZipfian, 0.0},
    {"update-heavy", queries::Distribution::kUniform, 0.30},
}};

/// "256,1024" -> {256, 1024}.
std::vector<std::uint64_t> parse_uint_list(const std::string& csv) {
  std::vector<std::uint64_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoull(item));
  }
  return out;
}

/// The three phases concatenated into one arrival-sorted stream. Each
/// phase contributes `per_phase` requests at `rate`; `edges` gets the
/// phase-end instants used to attribute responses back to phases.
std::vector<serve::Request> make_phased_stream(const std::vector<Key>& keys,
                                               double rate,
                                               std::uint64_t per_phase,
                                               std::uint64_t seed,
                                               std::vector<double>& edges) {
  std::vector<serve::Request> all;
  edges.clear();
  double offset = 0.0;
  std::uint64_t id_base = 0;
  for (std::size_t p = 0; p < kPhases.size(); ++p) {
    serve::OpenLoopSpec spec;
    spec.arrivals_per_second = rate;
    spec.count = per_phase;
    spec.update_fraction = kPhases[p].update_fraction;
    spec.dist = kPhases[p].dist;
    spec.seed = seed + 13 * p;
    auto seg = serve::make_open_loop(keys, spec);
    for (serve::Request& r : seg) {
      r.arrival += offset;
      r.id += id_base;
      all.push_back(r);
    }
    // Next phase starts at the nominal phase length or after this
    // phase's last arrival, whichever is later (keeps arrivals sorted).
    offset += static_cast<double>(per_phase) / rate;
    if (!all.empty()) offset = std::max(offset, all.back().arrival);
    edges.push_back(offset);
    id_base += per_phase;
  }
  return all;
}

std::size_t phase_of(double arrival, const std::vector<double>& edges) {
  for (std::size_t p = 0; p + 1 < edges.size(); ++p) {
    if (arrival < edges[p]) return p;
  }
  return edges.size() - 1;
}

struct PhaseScore {
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;
  std::vector<double> latencies;

  double percentile(double p) const {
    if (latencies.empty()) return 0.0;
    std::vector<double> v = latencies;
    std::sort(v.begin(), v.end());
    const std::size_t i = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(i, v.size() - 1)];
  }
};

/// Buckets a run's responses into per-phase scores by arrival time.
std::vector<PhaseScore> score_phases(const serve::ServerReport& rep,
                                     const std::vector<double>& edges) {
  std::vector<PhaseScore> scores(kPhases.size());
  for (const serve::Response& r : rep.responses) {
    PhaseScore& s = scores[phase_of(r.arrival, edges)];
    if (r.dropped) {
      ++s.dropped;
    } else {
      ++s.completed;
      s.latencies.push_back(r.latency());
    }
  }
  return scores;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "15")
      .flag("per-phase", "requests per phase", "60000")
      .flag("rate-mqs", "Poisson arrival rate (Mq/s); saturating rates are "
                        "the point — drops separate the configs", "30.0")
      .flag("grid-batches", "comma list of static max_batch configs",
            "256,1024,4096")
      .flag("grid-waits-us", "comma list of static max_wait configs (us)",
            "50,200")
      .flag("queue-cap", "admission queue capacity (per request kind)",
            "4096")
      .flag("epoch-updates", "updates buffered per epoch", "1024")
      .flag("fanout", "tree fanout", "64")
      .flag("seed", "workload seed", "1")
      .flag("gate", "fraction of the per-phase best-static completions the "
                    "tuned run must reach under --check", "0.9")
      .flag("check", "fail unless the tuned run tracks within --gate of the "
                     "best static config in every phase", "false")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  hb::add_metrics_flag(cli);
  tune::AutotunerConfig::add_flags(cli);
  if (!cli.parse(argc, argv)) return 1;

  const double rate = cli.get_double("rate-mqs", 8.0) * 1e6;
  const std::uint64_t per_phase = cli.get_uint("per-phase", 8000);
  const auto batches = parse_uint_list(cli.get_string("grid-batches", ""));
  const auto waits = parse_uint_list(cli.get_string("grid-waits-us", ""));
  const bool check = cli.get_bool("check", false);
  const double gate = cli.get_double("gate", 0.9);

  hb::print_header("autotune sweep: static grid vs closed-loop tuner",
                   "extension E17 (online autotuner, src/tune/)");

  shard::TopologySpec topo;
  topo.log2_keys = cli.get_uint("size", 15);
  topo.fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  topo.shards = 1;
  topo.seed = cli.get_uint("seed", 1);
  topo.device = hb::bench_spec();

  auto base_config = [&] {
    serve::ServeOptions cfg;
    cfg.batch.queue_capacity = cli.get_uint("queue-cap", 16384);
    cfg.epoch.max_buffered = cli.get_uint("epoch-updates", 1024);
    cfg.epoch.mode = serve::EpochMode::kOverlap;
    return cfg;
  };

  // The stream is a function of the tree keys, which every stack rebuilds
  // identically — generate it once from a throwaway stack.
  std::vector<double> edges;
  std::vector<serve::Request> stream;
  {
    shard::ServingStack probe(topo, base_config());
    stream = make_phased_stream(probe.keys(), rate, per_phase,
                                cli.get_uint("seed", 1) + 7, edges);
  }

  Table table({"config", "phase", "completed", "dropped", "p50 (us)",
               "p99 (us)", "Mq/s"});
  const double phase_secs = static_cast<double>(per_phase) / rate;

  auto add_rows = [&](const std::string& name,
                      const std::vector<PhaseScore>& scores) {
    for (std::size_t p = 0; p < kPhases.size(); ++p) {
      const PhaseScore& s = scores[p];
      table.add(name, kPhases[p].name, s.completed, s.dropped,
                s.percentile(50) * 1e6, s.percentile(99) * 1e6,
                static_cast<double>(s.completed) / phase_secs / 1e6);
    }
  };

  // --- The static grid: one full 3-phase run per (max_batch, max_wait).
  std::array<std::uint64_t, kPhases.size()> best{};
  for (const std::uint64_t b : batches) {
    for (const std::uint64_t w : waits) {
      serve::ServeOptions cfg = base_config();
      cfg.batch.max_batch = b;
      cfg.batch.max_wait = static_cast<double>(w) * 1e-6;
      shard::ServingStack stack(topo, cfg);
      const auto rep = stack.backend().run(stream);
      rep.check_invariants();
      const auto scores = score_phases(rep, edges);
      for (std::size_t p = 0; p < kPhases.size(); ++p)
        best[p] = std::max(best[p], scores[p].completed);
      add_rows("b" + std::to_string(b) + "/w" + std::to_string(w) + "us",
               scores);
    }
  }

  // --- The tuned run: starts from the first grid cell and adapts.
  obs::MetricsRegistry metrics;
  tune::AutotunerConfig tcfg = tune::AutotunerConfig::from_cli(cli);
  tune::Autotuner tuner(tcfg, metrics);
  serve::ServeOptions cfg = base_config();
  cfg.batch.max_batch = batches.front();
  cfg.batch.max_wait = static_cast<double>(waits.front()) * 1e-6;
  cfg.obs.metrics = &metrics;
  cfg.tuner = &tuner;
  shard::ServingStack stack(topo, cfg);
  const auto rep = stack.backend().run(stream);
  rep.check_invariants();
  const auto tuned = score_phases(rep, edges);
  add_rows("tuned", tuned);

  hb::emit(cli, table);
  hb::maybe_dump_metrics(cli, metrics);
  std::cout << "\nautotuner: " << tuner.moves() << " moves tried, "
            << tuner.rollbacks() << " rollbacks, " << tuner.vetoes()
            << " vetoes | final " << serve::to_string(stack.backend().tunables())
            << "\nexpected: the tuned run tracks the best static cell in each"
            << " phase (no single static config wins all three)\n";

  bool gate_ok = true;
  if (check) {
    if (tuner.moves() == 0) {
      std::cerr << "CHECK FAILED: the tuner never moved\n";
      gate_ok = false;
    }
    for (std::size_t p = 0; p < kPhases.size(); ++p) {
      const double need = gate * static_cast<double>(best[p]);
      if (static_cast<double>(tuned[p].completed) < need) {
        std::cerr << "CHECK FAILED: phase " << kPhases[p].name << " tuned "
                  << tuned[p].completed << " completions < " << gate
                  << " x best static " << best[p] << "\n";
        gate_ok = false;
      }
    }
  }
  return check && !gate_ok ? 1 : 0;
}
