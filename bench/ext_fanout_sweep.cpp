// Extension: fanout sensitivity. The paper fixes fanout per experiment
// ("the tree fanout is typically a large number such as 64 or 128",
// footnote 2); this sweep shows how Harmonia's advantage over HB+Tree and
// the NTG choice vary with fanout.
#include "bench_common.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "19")
      .flag("queries", "log2 query batch", "16")
      .flag("seed", "workload seed", "1")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  if (!cli.parse(argc, argv)) return 1;
  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 19));
  const std::uint64_t n = 1ULL << cli.get_uint("queries", 16);
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("Fanout sweep: Harmonia vs HB+Tree",
                   "extension of Figures 11/13 across fanouts 8..128");

  Table table({"fanout", "height", "HB+ (Gq/s)", "Harmonia (Gq/s)", "speedup",
               "NTG group size"});

  for (unsigned fanout : {8u, 16u, 32u, 64u, 128u}) {
    const auto keys = queries::make_tree_keys(1ULL << lg, seed);
    const auto entries = hb::entries_for(keys);
    const auto qs =
        queries::make_queries(keys, n, queries::Distribution::kUniform, seed + 1);

    gpusim::Device dev_b(hb::bench_spec());
    auto hb_idx = hbtree::HBTreeIndex::build(dev_b, entries, fanout);
    const double hb_tp = hb_idx.search(qs).throughput();

    gpusim::Device dev_h(hb::bench_spec());
    auto h_idx = HarmoniaIndex::build(dev_h, entries, {.fanout = fanout});
    const auto r = h_idx.search(qs);

    table.add(fanout, h_idx.tree().height(), hb_tp / 1e9, r.throughput() / 1e9,
              r.throughput() / hb_tp, r.group_size_used);
  }
  hb::emit(cli, table);
  return 0;
}
