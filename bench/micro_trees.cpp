// Microbenchmarks of the tree structures' host-side operations: CPU
// B+tree ops, Harmonia serialization and host search, batch-update apply.
#include <benchmark/benchmark.h>

#include "btree/btree.hpp"
#include "common/rng.hpp"
#include "harmonia/tree.hpp"
#include "harmonia/update.hpp"
#include "queries/batch.hpp"
#include "queries/workload.hpp"

namespace {

using namespace harmonia;

std::vector<btree::Entry> entries_for(const std::vector<Key>& keys) {
  std::vector<btree::Entry> out;
  out.reserve(keys.size());
  for (Key k : keys) out.push_back({k, btree::value_for_key(k)});
  return out;
}

void BM_BTreeBulkLoad(benchmark::State& state) {
  const auto keys = queries::make_tree_keys(1ULL << static_cast<unsigned>(state.range(0)), 1);
  const auto entries = entries_for(keys);
  for (auto _ : state) {
    btree::BTree tree(64);
    tree.bulk_load(entries);
    benchmark::DoNotOptimize(tree.height());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_BTreeBulkLoad)->Arg(14)->Arg(17);

void BM_BTreeInsertRandom(benchmark::State& state) {
  Xoshiro256 rng(2);
  btree::BTree tree(64);
  for (auto _ : state) {
    tree.insert(rng.next(), 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsertRandom);

void BM_BTreeSearch(benchmark::State& state) {
  const auto keys = queries::make_tree_keys(1 << 17, 3);
  const auto tree = btree::make_tree(keys, 64);
  Xoshiro256 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.search(keys[rng.next_below(keys.size())]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeSearch);

void BM_HarmoniaFromBTree(benchmark::State& state) {
  const auto keys = queries::make_tree_keys(1 << 16, 5);
  const auto bt = btree::make_tree(keys, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HarmoniaTree::from_btree(bt).num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_HarmoniaFromBTree);

void BM_HarmoniaHostSearch(benchmark::State& state) {
  const auto keys = queries::make_tree_keys(1 << 17, 6);
  const auto tree = HarmoniaTree::from_btree(btree::make_tree(keys, 64));
  Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.search(keys[rng.next_below(keys.size())]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HarmoniaHostSearch);

void BM_BatchUpdateApply(benchmark::State& state) {
  const auto keys = queries::make_tree_keys(1 << 15, 8);
  queries::BatchSpec spec;
  spec.size = 1 << 12;
  spec.insert_fraction = 0.05;
  spec.seed = 9;
  const auto ops = queries::make_update_batch(keys, spec);
  for (auto _ : state) {
    state.PauseTiming();
    BatchUpdater updater(HarmoniaTree::from_btree(btree::make_tree(keys, 64)));
    state.ResumeTiming();
    benchmark::DoNotOptimize(updater.apply(ops).total_ops());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(ops.size()));
}
BENCHMARK(BM_BatchUpdateApply);

}  // namespace

BENCHMARK_MAIN();
