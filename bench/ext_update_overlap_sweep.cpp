// Extension E13: what the double-buffered epoch pipeline buys under an
// update-heavy stream (docs/serving.md#epoch-pipeline).
//
// The same Poisson request stream (a grid of update fractions) replays
// against all three epoch modes. Quiesce holds every device through each
// epoch's CPU build and PCIe upload, so queries arriving during an epoch
// eat the whole stall in their tail latency. Overlap builds and uploads
// image N+1 in the background while queries keep flowing against image
// N, then swaps at a batch boundary — the stall column collapses to zero
// and the tail tightens, at the price of a (tiny) swap wait. Delta
// (incremental) goes further: each epoch patches the committed image in
// place through the key-region gaps and the device overlay, so both the
// build (cheap patch ops instead of an Algorithm-1 shadow build) and the
// upload (dirty leaves instead of a full image) collapse; only epochs
// that exhaust their gaps/overlay fall back to a full compaction. The
// per-stage columns (build | upload | swap wait | stall) plus the delta
// split (patch/compaction epochs and their build/upload shares) come
// straight from the report's attribution fields, so the delta is
// auditable row by row. With --check the binary enforces the acceptance
// gates itself: overlap p99 must not exceed quiesce p99 once updates
// reach 10% of the stream, and at >=50% updates delta's per-epoch
// build+upload must undercut overlap's by at least 10x.
#include "bench_common.hpp"

#include "serve/workload.hpp"
#include "shard/backend_factory.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

namespace {

/// "0,0.05,0.2" -> {0.0, 0.05, 0.2}.
std::vector<double> parse_fraction_list(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stod(item));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "18")
      .flag("requests", "requests per run", "20000")
      .flag("rate", "arrival rate (Mq/s)", "5")
      .flag("updates", "comma list of update fractions", "0,0.05,0.1,0.2,0.5")
      .flag("shards", "simulated devices (1 = single-device server)", "1")
      .flag("max-batch", "batch size trigger", "4096")
      .flag("queue-cap", "admission queue capacity", "16384")
      .flag("epoch-updates", "updates buffered per epoch", "512")
      .flag("overlay-cap", "delta-mode device overlay bound (per shard)", "1024")
      .flag("fanout", "tree fanout", "64")
      .flag("pcie", "link bandwidth in GB/s", "12.0")
      .flag("seed", "workload seed", "1")
      .flag("check", "fail unless overlap p99 <= quiesce p99 at >=10% updates "
                     "and delta per-epoch build+upload <= overlap/10 at >=50%",
            "false")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  hb::add_metrics_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  const std::uint64_t requests = cli.get_uint("requests", 20000);
  const double rate = cli.get_double("rate", 5) * 1e6;
  const auto fractions = parse_fraction_list(cli.get_string("updates", "0,0.05,0.1,0.2"));
  const bool check = cli.get_bool("check", false);

  hb::print_header("Update-overlap sweep: update fraction x epoch mode",
                   "extension E13 (double-buffered epoch pipeline)");

  shard::TopologySpec topo;
  topo.log2_keys = cli.get_uint("size", 18);
  topo.fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  topo.shards = static_cast<unsigned>(cli.get_uint("shards", 1));
  topo.seed = cli.get_uint("seed", 1);
  topo.device = hb::bench_spec();
  const bool observe = !cli.get_string("metrics-out", "").empty();
  obs::MetricsRegistry metrics;

  Table table({"updates", "mode", "epochs", "completed", "p50 (us)", "p99 (us)",
               "build (ms)", "upload (ms)", "swap wait (ms)", "stall (ms)",
               "patch ep", "compact ep", "patch build (ms)", "patch upload (ms)",
               "achieved (Mq/s)"});

  bool gate_ok = true;
  for (const double frac : fractions) {
    double quiesce_p99 = 0.0;
    double overlap_per_epoch = 0.0;
    for (const serve::EpochMode mode :
         {serve::EpochMode::kQuiesce, serve::EpochMode::kOverlap,
          serve::EpochMode::kIncremental}) {
      serve::ServeOptions cfg;
      cfg.batch.max_batch = cli.get_uint("max-batch", 4096);
      cfg.batch.queue_capacity = cli.get_uint("queue-cap", 16384);
      cfg.epoch.max_buffered = cli.get_uint("epoch-updates", 512);
      cfg.epoch.mode = mode;
      cfg.epoch.overlay_capacity = cli.get_uint("overlay-cap", 1024);
      cfg.link.gigabytes_per_second = cli.get_double("pcie", 12.0);
      // Only the overlap rows feed the registry: the quiesce and delta
      // rows rerun the same stream and would double-count epochs in the
      // sweep totals.
      if (observe && mode == serve::EpochMode::kOverlap)
        cfg.obs.metrics = &metrics;

      // Fresh stack per cell: every mode must start from the same tree.
      shard::ServingStack stack(topo, cfg);

      serve::OpenLoopSpec spec;
      spec.arrivals_per_second = rate;
      spec.count = requests;
      spec.update_fraction = frac;
      spec.seed = cli.get_uint("seed", 1) + 7;
      const auto stream = serve::make_open_loop(stack.keys(), spec);

      const auto rep = stack.backend().run(stream);
      const bool is_overlap = mode == serve::EpochMode::kOverlap;
      const bool is_delta = mode == serve::EpochMode::kIncremental;
      const double p99 = rep.latency.percentile(99);
      const double per_epoch =
          rep.epochs > 0 ? (rep.epoch_build_seconds + rep.epoch_upload_seconds) /
                               static_cast<double>(rep.epochs)
                         : 0.0;
      if (mode == serve::EpochMode::kQuiesce) quiesce_p99 = p99;
      if (is_overlap) overlap_per_epoch = per_epoch;
      if (check && is_overlap && frac >= 0.1 && p99 > quiesce_p99) {
        std::cerr << "CHECK FAILED: overlap p99 " << p99 * 1e6
                  << " us > quiesce p99 " << quiesce_p99 * 1e6
                  << " us at update fraction " << frac << "\n";
        gate_ok = false;
      }
      // The incremental crossover gate: once updates dominate, patching
      // in place must beat rebuilding full images by an order of
      // magnitude on the per-epoch build+upload cost.
      if (check && is_delta && frac >= 0.5 && rep.epochs > 0 &&
          per_epoch * 10.0 > overlap_per_epoch) {
        std::cerr << "CHECK FAILED: delta per-epoch build+upload "
                  << per_epoch * 1e3 << " ms not 10x under overlap's "
                  << overlap_per_epoch * 1e3 << " ms at update fraction "
                  << frac << "\n";
        gate_ok = false;
      }

      table.add(frac,
                is_overlap ? "overlap" : (is_delta ? "delta" : "quiesce"),
                rep.epochs, rep.completed, rep.latency.percentile(50) * 1e6,
                p99 * 1e6, rep.epoch_build_seconds * 1e3,
                rep.epoch_upload_seconds * 1e3,
                rep.epoch_swap_wait_seconds * 1e3, rep.epoch_stall_seconds * 1e3,
                rep.patch_epochs, rep.compaction_epochs,
                rep.epoch_patch_build_seconds * 1e3,
                rep.epoch_patch_upload_seconds * 1e3,
                rep.query_throughput() / 1e6);
    }
  }
  hb::emit(cli, table);
  hb::maybe_dump_metrics(cli, metrics);
  std::cout << "\nexpected: near-identical rows at 0% updates; as the update"
            << " fraction grows, quiesce accumulates serving stall and its"
            << " p99 inflates, overlap keeps stall at zero for a small swap"
            << " wait, and delta collapses build+upload to the patch columns"
            << " (compact ep counts its overlay-exhaustion fallbacks)\n";
  if (check && !gate_ok) return 1;
  return 0;
}
