// §4.1.2 bit-sweep: sorting only N = 19 bits (Equation 2, for a 2^23-key
// tree) achieves the coalescing of a complete sort at ~35% of its cost.
//
// We sweep the number of sorted bits and report (a) average memory
// transactions per warp in the search kernel and (b) the sort cost
// normalized to the complete sort — the two curves whose crossover the
// paper uses to justify Equation 2.
#include "bench_common.hpp"

#include <algorithm>
#include <vector>

#include "sort/gpu_sort_model.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size (paper: 23)", "20")
      .flag("queries", "log2 query batch", "17")
      .flag("fanout", "tree fanout", "64")
      .flag("seed", "workload seed", "1")
      .flag("full", "paper-scale tree (2^23)", "false");
  if (!cli.parse(argc, argv)) return 1;

  const bool full = cli.get_bool("full", false);
  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", full ? 23 : 20));
  const std::uint64_t n = 1ULL << cli.get_uint("queries", full ? 20 : 17);
  const auto fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("Partial-sort bit sweep",
                   "§4.1.2 (Equation 2: N = log2(T) - log2(K))");

  const std::uint64_t size = 1ULL << lg;
  const auto keys = queries::make_tree_keys(size, seed);
  gpusim::Device dev(hb::bench_spec());
  auto index = HarmoniaIndex::build(dev, hb::entries_for(keys), {.fanout = fanout});
  const auto qs =
      queries::make_queries(keys, n, queries::Distribution::kUniform, seed + 1);

  const unsigned eq2 =
      sort::psa_bits(64, size, dev.spec().line_bytes / sizeof(Key));
  const double full_sort_cycles =
      sort::gpu_radix_sort_cycles(dev.spec(), n, 64, true);

  Table table({"sorted bits", "avg mem-transactions/warp", "sort cost (vs full)",
               "note"});
  std::vector<unsigned> sweep;
  for (unsigned bits : {0u, 4u, 8u, 12u, 16u, eq2, 24u, 32u, 64u}) {
    if (std::find(sweep.begin(), sweep.end(), bits) == sweep.end()) sweep.push_back(bits);
  }
  std::sort(sweep.begin(), sweep.end());
  for (unsigned bits : sweep) {
    QueryOptions qopts;
    qopts.psa = bits == 0 ? PsaMode::kNone : PsaMode::kPartial;
    qopts.psa_override_bits = bits;
    qopts.auto_ntg = false;
    // Narrowed groups pack 4 queries per warp, the configuration whose
    // coalescing the bit count actually affects (§4.1 + §4.2 compose).
    qopts.group_size = 8;
    dev.flush_caches();
    const auto r = index.search(qs, qopts);
    const double sort_frac = r.sort_cycles / full_sort_cycles;
    table.add(bits, r.search.metrics.avg_transactions_per_warp(), sort_frac,
              bits == eq2 ? "<- Equation 2" : "");
  }
  table.print(std::cout);
  std::cout << "\nEquation 2 for this tree: N = " << eq2
            << " bits (paper: 19 bits for T = 2^23, ~35% of full sort cost)\n";
  return 0;
}
