// Ablation of §3.1's constant-memory placement: the same Harmonia tree
// with the prefix-sum child region's top levels (a) in constant memory
// (the paper's design), (b) entirely in global memory, and (c) with
// varying constant budgets. Shows where the "store the top level in
// constant memory" decision pays.
#include "bench_common.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "20")
      .flag("queries", "log2 query batch", "17")
      .flag("fanout", "tree fanout", "64")
      .flag("seed", "workload seed", "1")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  if (!cli.parse(argc, argv)) return 1;
  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 20));
  const std::uint64_t n = 1ULL << cli.get_uint("queries", 17);
  const auto fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("Constant-memory placement ablation",
                   "§3.1 design choice (top prefix-sum levels -> constant memory)");

  const auto keys = queries::make_tree_keys(1ULL << lg, seed);
  const auto entries = hb::entries_for(keys);
  const auto qs =
      queries::make_queries(keys, n, queries::Distribution::kUniform, seed + 1);

  Table table({"RO cache/SM", "const budget", "ps entries in const", "const hits",
               "global txns", "throughput (Gq/s)"});

  // The constant placement matters exactly when the read-only cache is
  // under pressure from the streaming key region: sweep both dimensions.
  for (std::uint64_t ro_bytes : {std::uint64_t{128} << 10, std::uint64_t{8} << 10}) {
    for (std::uint64_t budget : {std::uint64_t{0}, std::uint64_t{1} << 10,
                                 std::uint64_t{8} << 10, std::uint64_t{60} << 10}) {
      auto spec = hb::bench_spec();
      spec.readonly_cache_bytes_per_sm = ro_bytes;
      gpusim::Device dev(spec);
      HarmoniaIndex::Options opts;
      opts.fanout = fanout;
      opts.const_budget_bytes = budget;
      auto index = HarmoniaIndex::build(dev, entries, opts);
      QueryOptions qopts;  // full pipeline
      const auto r = index.search(qs, qopts);
      table.add(bytes_human(ro_bytes), bytes_human(budget),
                index.image().ps_const_count, r.search.metrics.const_hits,
                r.search.metrics.global_transactions(), r.throughput() / 1e9);
    }
  }
  hb::emit(cli, table);
  std::cout
      << "\nfinding: throughput is insensitive to the placement — the prefix-sum\n"
         "array is so small (~4 B/node vs HB+'s ~256 B of child refs/node) that\n"
         "it stays cache-resident wherever it lives. The §3.1 win comes from the\n"
         "*compression* (compare Figure 12's global-transaction drop vs HB+);\n"
         "constant memory is a guarantee against pathological eviction, not a\n"
         "steady-state speedup in this model.\n";
  return 0;
}
