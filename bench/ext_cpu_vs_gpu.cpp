// Extension: the introduction's motivation quantified — batched lookups
// on the host CPU (real wall-clock, pointer-based B+tree) vs the
// simulated GPU running Harmonia. Apples-to-oranges by construction (one
// is measured silicon, the other a model), so the point is the order of
// magnitude, not the exact ratio.
#include "bench_common.hpp"

#include <thread>

#include "btree/parallel_search.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "20")
      .flag("queries", "log2 query batch", "17")
      .flag("fanout", "tree fanout", "64")
      .flag("seed", "workload seed", "1")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  if (!cli.parse(argc, argv)) return 1;
  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 20));
  const std::uint64_t n = 1ULL << cli.get_uint("queries", 17);
  const auto fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("CPU B+tree vs simulated-GPU Harmonia",
                   "the Introduction's motivation (throughput gap)");

  const auto keys = queries::make_tree_keys(1ULL << lg, seed);
  const auto entries = hb::entries_for(keys);
  const auto qs =
      queries::make_queries(keys, n, queries::Distribution::kUniform, seed + 1);

  btree::BTree cpu_tree(fanout);
  cpu_tree.bulk_load(entries);

  Table table({"engine", "threads", "throughput (Mq/s)", "note"});

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned threads : {1u, hw}) {
    const auto r = btree::search_batch_cpu(cpu_tree, qs, threads);
    table.add("CPU B+tree (measured)", threads, r.throughput() / 1e6, "wall clock");
    if (hw == 1) break;
  }

  gpusim::Device dev(hb::bench_spec());
  auto index = HarmoniaIndex::build(dev, entries, {.fanout = fanout});
  const auto r = index.search(qs);
  table.add("Harmonia on TITAN V (simulated)", dev.spec().num_sms * 64,
            r.throughput() / 1e6, "cycle model");

  hb::emit(cli, table);
  std::cout << "\npaper context: single CPU cores search a few Mq/s; the GPU's"
            << " thousands of resident lanes reach Gq/s\n";
  return 0;
}
