// Extension: the implicit B+tree as a third comparator — the organization
// §2.2 rejects. Queries need no child loads at all, but every update
// batch restructures the whole tree. This harness quantifies both sides:
// query throughput (implicit vs Harmonia vs HB+) and the cost of an
// update batch (full rebuild vs Algorithm 1's in-place + deferred
// movement).
#include "bench_common.hpp"

#include "common/timer.hpp"
#include "implicit/search.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "20")
      .flag("queries", "log2 query batch", "16")
      .flag("batch", "log2 update batch", "14")
      .flag("fanout", "tree fanout", "64")
      .flag("seed", "workload seed", "1")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  if (!cli.parse(argc, argv)) return 1;
  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 20));
  const std::uint64_t nq = 1ULL << cli.get_uint("queries", 16);
  const std::uint64_t batch = 1ULL << cli.get_uint("batch", 14);
  const auto fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("Implicit B+tree baseline",
                   "§2.2 (regular vs implicit organization trade-off)");

  const auto keys = queries::make_tree_keys(1ULL << lg, seed);
  const auto entries = hb::entries_for(keys);
  const auto qs =
      queries::make_queries(keys, nq, queries::Distribution::kUniform, seed + 1);

  // --- Query side ---
  Table qtable({"structure", "throughput (Gq/s)", "global txns", "loads/warp"});

  gpusim::Device dev_b(hb::bench_spec());
  auto hb_idx = hbtree::HBTreeIndex::build(dev_b, entries, fanout);
  {
    const auto r = hb_idx.search(qs);
    qtable.add("HB+tree", r.throughput() / 1e9, r.search.metrics.global_transactions(),
               static_cast<double>(r.search.metrics.loads) /
                   static_cast<double>(r.search.warps));
  }

  gpusim::Device dev_h(hb::bench_spec());
  auto h_idx = HarmoniaIndex::build(dev_h, entries, {.fanout = fanout});
  {
    // Structure-only row: no PSA (the implicit run below is also unsorted)
    // so the comparison isolates the *organization*.
    QueryOptions tree_only;
    tree_only.psa = PsaMode::kNone;
    tree_only.auto_ntg = false;
    const auto r0 = h_idx.search(qs, tree_only);
    qtable.add("Harmonia tree (no PSA/NTG)", r0.throughput() / 1e9,
               r0.search.metrics.global_transactions(),
               static_cast<double>(r0.search.metrics.loads) /
                   static_cast<double>(r0.search.warps));
    dev_h.flush_caches();
    const auto r = h_idx.search(qs);
    qtable.add("Harmonia (full, incl. sort)", r.throughput() / 1e9,
               r.search.metrics.global_transactions(),
               static_cast<double>(r.search.metrics.loads) /
                   static_cast<double>(r.search.warps));
  }

  gpusim::Device dev_i(hb::bench_spec());
  auto imp = implicit::ImplicitTree::build(entries, fanout);
  const auto imp_img = implicit::ImplicitDeviceImage::upload(dev_i, imp);
  {
    auto d_q = dev_i.memory().malloc<Key>(nq);
    dev_i.memory().copy_to_device(d_q, std::span<const Key>(qs));
    auto d_out = dev_i.memory().malloc<Value>(nq);
    const auto stats = implicit::implicit_search_batch(dev_i, imp_img, d_q, nq, d_out);
    qtable.add("Implicit B+tree (no PSA)", stats.metrics.throughput(dev_i.spec(), nq) / 1e9,
               stats.metrics.global_transactions(),
               static_cast<double>(stats.metrics.loads) /
                   static_cast<double>(stats.warps));
  }
  std::cout << "query side:\n";
  hb::emit(cli, qtable);

  // --- Update side ---
  queries::BatchSpec spec;
  spec.size = batch;
  spec.insert_fraction = 0.05;
  spec.seed = seed + 2;
  const auto ops = queries::make_update_batch(keys, spec);

  Table utable({"structure", "update throughput (Mops/s)", "note"});

  {
    const auto stats = h_idx.update_batch(ops, 4);
    const double tp = static_cast<double>(stats.total_ops()) /
                      (stats.apply_seconds + stats.rebuild_seconds +
                       h_idx.last_sync_seconds());
    utable.add("Harmonia (Algorithm 1)", tp / 1e6, "in-place + deferred movement");
  }
  {
    // Implicit: apply the batch by rebuilding the entire tree (§2.2:
    // "it has to restructure the entire tree ... very time consuming").
    std::vector<btree::Entry> upserts;
    for (const auto& op : ops) {
      if (op.kind != queries::OpKind::kDelete) upserts.push_back({op.key, op.value});
    }
    WallTimer timer;
    auto rebuilt = imp.rebuild_with(upserts, {});
    dev_i.memory().free_all();
    implicit::ImplicitDeviceImage::upload(dev_i, rebuilt);
    const double secs = timer.elapsed_seconds();
    utable.add("Implicit (full rebuild)",
               static_cast<double>(ops.size()) / secs / 1e6,
               "whole tree restructured per batch");
  }
  std::cout << "\nupdate side:\n";
  utable.print(std::cout);
  std::cout << "\nexpected: implicit queries are competitive (no child loads),"
            << " but updates pay a full-tree rebuild\n";
  return 0;
}
