// Figure 11: overall query throughput (billion queries/second), Harmonia
// (full pipeline: tree + PSA + NTG) vs HB+Tree, across tree sizes.
//
// Paper: Harmonia reaches up to 3.6 Gq/s on a TITAN V, ~3.4x HB+Tree.
#include "bench_common.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  hb::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto cfg = hb::read_common(cli);

  hb::print_header("Overall query throughput: Harmonia vs HB+Tree",
                   "Figure 11 (uniform queries, billion queries/second)");

  Table table({"log(tree size)", "HB+ (Gq/s)", "Harmonia (Gq/s)", "speedup"});
  double best = 0.0;

  for (unsigned lg : cfg.size_logs) {
    const std::uint64_t size = 1ULL << lg;
    const auto keys = queries::make_tree_keys(size, cfg.seed);
    const auto entries = hb::entries_for(keys);
    const auto qs = queries::make_queries(keys, cfg.num_queries, cfg.dist, cfg.seed + 1);

    gpusim::Device dev_b(hb::bench_spec());
    auto hb_idx = hbtree::HBTreeIndex::build(dev_b, entries, cfg.fanout, cfg.fill);
    const double hb_tp = hb_idx.search(qs).throughput();

    gpusim::Device dev_h(hb::bench_spec());
    auto h_idx = HarmoniaIndex::build(dev_h, entries,
                                      {.fanout = cfg.fanout, .fill_factor = cfg.fill});
    const double h_tp = h_idx.search(qs).throughput();

    best = std::max(best, h_tp);
    table.add(lg, hb_tp / 1e9, h_tp / 1e9, h_tp / hb_tp);
  }
  hb::emit(cli, table);
  std::cout << "\npeak Harmonia throughput: " << throughput_human(best)
            << "  (paper: up to 3.6 Gq/s, ~3.4x HB+Tree)\n";
  return 0;
}
