// Microbenchmarks of the GPU-simulator primitives (host cost of the
// simulation itself, not simulated GPU time): coalescer, cache probes,
// warp gathers, kernel launch.
#include <benchmark/benchmark.h>

#include <array>

#include "common/rng.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/coalescer.hpp"
#include "gpusim/device.hpp"

namespace {

using namespace harmonia;
using namespace harmonia::gpusim;

void BM_CoalesceSequential(benchmark::State& state) {
  std::array<std::uint64_t, 32> addrs{};
  for (unsigned i = 0; i < 32; ++i) addrs[i] = 4096 + i * 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coalesce(addrs, full_mask(32), 8, 128));
  }
}
BENCHMARK(BM_CoalesceSequential);

void BM_CoalesceScattered(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::array<std::uint64_t, 32> addrs{};
  for (auto& a : addrs) a = rng.next() % (1 << 28);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coalesce(addrs, full_mask(32), 8, 128));
  }
}
BENCHMARK(BM_CoalesceScattered);

void BM_CacheAccessHit(benchmark::State& state) {
  Cache cache(1 << 20, 128, 8);
  for (std::uint64_t line = 0; line < 64; ++line) cache.access(line);
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(line));
    line = (line + 1) % 64;
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheAccessMissStream(benchmark::State& state) {
  Cache cache(1 << 20, 128, 8);
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(line));
    line += 9973;  // always a fresh line
  }
}
BENCHMARK(BM_CacheAccessMissStream);

void BM_WarpGather(benchmark::State& state) {
  auto spec = titan_v();
  spec.num_sms = 4;
  spec.global_mem_bytes = 64 << 20;
  Device dev(spec);
  auto data = dev.memory().malloc<std::uint64_t>(1 << 20);
  const auto span_size = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t offset = 0;
  for (auto _ : state) {
    dev.launch(1, [&](WarpCtx& w) {
      std::array<std::uint64_t, 32> addrs{};
      std::array<std::uint64_t, 32> out{};
      for (unsigned i = 0; i < 32; ++i) {
        addrs[i] = data.element_addr((offset + i * span_size) % (1 << 20));
      }
      w.gather<std::uint64_t>(full_mask(32), addrs, out);
      benchmark::DoNotOptimize(out);
    });
    offset += 13;
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_WarpGather)->Arg(1)->Arg(64);

void BM_KernelLaunch(benchmark::State& state) {
  auto spec = titan_v();
  spec.num_sms = 8;
  spec.global_mem_bytes = 16 << 20;
  Device dev(spec);
  const auto warps = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const auto metrics = dev.launch(warps, [](WarpCtx& w) { w.compute(full_mask(32)); });
    benchmark::DoNotOptimize(metrics);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(warps));
}
BENCHMARK(BM_KernelLaunch)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
