// Figure 13: impact of each design choice — HB+Tree baseline, Harmonia
// tree structure alone (~1.4x), +PSA (~2x), +PSA+NTG (~3.4x) — across
// tree sizes.
#include "bench_common.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  hb::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto cfg = hb::read_common(cli);

  hb::print_header("Impact of different design choices",
                   "Figure 13 (throughput in Gq/s; speedup vs HB+Tree)");

  Table table({"log(tree size)", "variant", "throughput (Gq/s)", "speedup vs HB+"});

  for (unsigned lg : cfg.size_logs) {
    const std::uint64_t size = 1ULL << lg;
    const auto keys = queries::make_tree_keys(size, cfg.seed);
    const auto entries = hb::entries_for(keys);
    const auto qs = queries::make_queries(keys, cfg.num_queries, cfg.dist, cfg.seed + 1);

    gpusim::Device dev_b(hb::bench_spec());
    auto hb_idx = hbtree::HBTreeIndex::build(dev_b, entries, cfg.fanout, cfg.fill);
    const double hb_tp = hb_idx.search(qs).throughput();
    table.add(lg, "HB+tree", hb_tp / 1e9, 1.0);

    gpusim::Device dev_h(hb::bench_spec());
    auto h_idx = HarmoniaIndex::build(dev_h, entries,
                                      {.fanout = cfg.fanout, .fill_factor = cfg.fill});

    struct Variant {
      const char* name;
      PsaMode psa;
      bool ntg;
    };
    for (const Variant v :
         {Variant{"Harmonia tree", PsaMode::kNone, false},
          Variant{"Harmonia tree + PSA", PsaMode::kPartial, false},
          Variant{"Harmonia tree + PSA + NTG", PsaMode::kPartial, true}}) {
      QueryOptions qopts;
      qopts.psa = v.psa;
      qopts.auto_ntg = v.ntg;
      dev_h.flush_caches();
      const double tp = h_idx.search(qs, qopts).throughput();
      table.add(lg, v.name, tp / 1e9, tp / hb_tp);
    }
  }
  hb::emit(cli, table);
  std::cout << "\npaper: Harmonia tree ~1.4x, +PSA ~2x, +PSA+NTG ~3.4x vs HB+\n";
  return 0;
}
