// Extension of Figure 14: sweep the batch's insert (and delete) fraction.
// Pure updates never touch the tree structure (all fine-path, no
// movement); more inserts mean more auxiliary nodes and a bigger deferred
// movement — Harmonia's cost relative to HB+Tree should grow with the
// structural-change fraction.
#include "bench_common.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "19")
      .flag("batch", "log2 batch size", "18")
      .flag("fanout", "tree fanout", "64")
      .flag("fill", "bulk-load fill factor", "0.9")
      .flag("threads", "Harmonia updater threads", "4")
      .flag("seed", "workload seed", "1")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  if (!cli.parse(argc, argv)) return 1;
  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 19));
  const std::uint64_t batch = 1ULL << cli.get_uint("batch", 18);
  const auto fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  const double fill = cli.get_double("fill", 0.9);
  const auto threads = static_cast<unsigned>(cli.get_uint("threads", 4));
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("Update mix sweep",
                   "extension of Figure 14 (insert/delete fraction)");

  Table table({"inserts (%)", "deletes (%)", "HB+ (Mops/s)", "Harmonia (Mops/s)",
               "Harmonia/HB+ (%)", "coarse-path ops", "moved slots"});

  struct Mix {
    double inserts;
    double deletes;
  };
  for (const Mix mix : {Mix{0.0, 0.0}, Mix{0.05, 0.0}, Mix{0.2, 0.0},
                        Mix{0.2, 0.1}, Mix{0.4, 0.1}}) {
    const auto keys = queries::make_tree_keys(1ULL << lg, seed);
    const auto entries = hb::entries_for(keys);

    queries::BatchSpec spec;
    spec.size = batch;
    spec.insert_fraction = mix.inserts;
    spec.delete_fraction = mix.deletes;
    spec.seed = seed + 3;
    const auto ops = queries::make_update_batch(keys, spec);

    gpusim::Device dev_b(hb::bench_spec());
    auto hb_idx = hbtree::HBTreeIndex::build(dev_b, entries, fanout, fill);
    const double hb_tp = hb_idx.update_batch(ops).ops_per_second();

    gpusim::Device dev_h(hb::bench_spec());
    auto h_idx =
        HarmoniaIndex::build(dev_h, entries, {.fanout = fanout, .fill_factor = fill});
    const auto stats = h_idx.update_batch(ops, threads);
    const double h_tp =
        static_cast<double>(stats.total_ops()) /
        (stats.apply_seconds + stats.rebuild_seconds + h_idx.last_sync_seconds());

    table.add(mix.inserts * 100.0, mix.deletes * 100.0, hb_tp / 1e6, h_tp / 1e6,
              100.0 * h_tp / hb_tp, stats.coarse_path_ops, stats.moved_slots);
  }
  hb::emit(cli, table);
  return 0;
}
