// Extension: range-query throughput on the device kernel. §3.2.1 claims
// "range queries can achieve high performance" because the key region's
// leaf level is one consecutive sorted array; this sweep measures ranges/s
// and scanned results/s as the range width grows.
#include "bench_common.hpp"

#include "common/rng.hpp"
#include "harmonia/range.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "19")
      .flag("ranges", "range queries per width", "2048")
      .flag("fanout", "tree fanout", "64")
      .flag("seed", "workload seed", "1")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  if (!cli.parse(argc, argv)) return 1;
  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 19));
  const std::uint64_t nq = cli.get_uint("ranges", 2048);
  const auto fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("Range query throughput (device kernel)",
                   "§3.2.1 (consecutive key region -> coalesced leaf scans)");

  const auto keys = queries::make_tree_keys(1ULL << lg, seed);
  gpusim::Device dev(hb::bench_spec());
  auto index = HarmoniaIndex::build(dev, hb::entries_for(keys), {.fanout = fanout});

  Table table({"range width (keys)", "ranges/s (M)", "results/s (M)",
               "txns per load", "dram txns"});

  for (std::uint64_t width : {8u, 32u, 128u, 512u}) {
    Xoshiro256 rng(seed + width);
    std::vector<Key> los(nq), his(nq);
    for (std::uint64_t q = 0; q < nq; ++q) {
      const std::uint64_t a = rng.next_below(keys.size() - width - 1);
      los[q] = keys[a];
      his[q] = keys[a + width - 1];
    }

    auto& mem = dev.memory();
    auto d_lo = mem.malloc<Key>(nq);
    auto d_hi = mem.malloc<Key>(nq);
    mem.copy_to_device(d_lo, std::span<const Key>(los));
    mem.copy_to_device(d_hi, std::span<const Key>(his));
    const auto max_results = static_cast<unsigned>(width);
    auto d_vals = mem.malloc<Value>(nq * max_results);
    auto d_counts = mem.malloc<std::uint32_t>(nq);

    RangeConfig cfg;
    cfg.max_results = max_results;
    dev.flush_caches();
    const auto stats =
        range_batch(dev, index.image(), d_lo, d_hi, nq, d_vals, d_counts, cfg);
    const double secs = stats.metrics.elapsed_seconds(dev.spec());

    table.add(width, static_cast<double>(nq) / secs / 1e6,
              static_cast<double>(stats.results) / secs / 1e6,
              static_cast<double>(stats.metrics.transactions) /
                  static_cast<double>(stats.metrics.loads),
              stats.metrics.dram_transactions);
  }
  hb::emit(cli, table);
  std::cout << "\nexpected: results/s grows with range width (scan cost"
            << " amortizes the traversal), txns/load stays ~2-3\n";
  return 0;
}
