// Extension E12: serving under injected faults — what mitigation buys.
//
// Seeded random fault schedules (FaultPlan::random) at increasing event
// rates replay against the sharded serving stack twice per rate: once
// with the full mitigation suite (bounded retry, straggler hedging,
// CPU-oracle degraded serving) and once with every mitigation disabled
// (one dispatch attempt, no hedging, zero degraded backlog). Both runs
// see the *same* fault schedule, so the delta in shed/completed/latency
// is exactly the value of mitigation. Answers are never wrong in either
// mode — the stack sheds visibly instead of serving corrupted data —
// so the interesting columns are availability and tail latency.
#include "bench_common.hpp"

#include "fault/fault_plan.hpp"
#include "serve/workload.hpp"
#include "shard/backend_factory.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

namespace {

/// Drops shard-lost events that would re-lose a shard while it is still
/// fenced from an earlier loss (the serving contract forbids that; a
/// random schedule can draw it).
fault::FaultPlan drop_overlapping_losses(fault::FaultPlan plan,
                                         unsigned num_shards) {
  std::vector<double> fenced_until(num_shards, -1.0);
  fault::FaultPlan out;
  for (const fault::FaultEvent& e : plan.events) {
    if (e.kind == fault::FaultKind::kShardLost) {
      if (e.at <= fenced_until[e.shard]) continue;
      fenced_until[e.shard] = e.at + e.duration;
    }
    out.events.push_back(e);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "18")
      .flag("requests", "requests per run", "20000")
      .flag("rate", "arrival rate (Mq/s)", "5")
      .flag("fault-rates", "comma list of fault events per virtual second", "0,500,2000,8000")
      .flag("shards", "number of shards", "4")
      .flag("updates", "update fraction of the stream", "0.1")
      .flag("epoch-mode", "epoch pipeline: quiesce | overlap", "quiesce")
      .flag("fanout", "tree fanout", "64")
      .flag("pcie", "link bandwidth in GB/s", "12.0")
      .flag("seed", "workload + fault-schedule seed", "1")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  hb::add_metrics_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 18));
  const std::uint64_t requests = cli.get_uint("requests", 20000);
  const double rate = cli.get_double("rate", 5) * 1e6;
  const unsigned shards = static_cast<unsigned>(cli.get_uint("shards", 4));
  const auto fault_rates = hb::parse_log_list(cli.get_string("fault-rates", "0,500,2000,8000"));
  const std::uint64_t seed = cli.get_uint("seed", 1);
  const bool overlap = cli.get_string("epoch-mode", "quiesce") == "overlap";

  hb::print_header("Fault sweep: fault rate x mitigation on/off",
                   "extension E12 (robustness of the serving stack)");

  const bool observe = !cli.get_string("metrics-out", "").empty();
  // Only the mitigated runs feed the registry: the off-rows rerun the same
  // schedule and would double-count every fault event in the sweep totals.
  obs::MetricsRegistry metrics;

  shard::TopologySpec topo;
  topo.log2_keys = lg;
  topo.fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  topo.shards = shards;
  topo.seed = seed;
  topo.device = hb::bench_spec();

  Table table({"faults/s", "mitigation", "injected", "retries", "hedges won",
               "degraded", "shed", "dropped", "completed", "p99 (us)",
               "achieved (Mq/s)"});

  for (unsigned fault_rate : fault_rates) {
    // One schedule per rate, shared by both mitigation modes.
    fault::FaultPlan::RandomSpec rspec;
    rspec.horizon = static_cast<double>(requests) / rate;
    rspec.events_per_second = fault_rate;
    rspec.num_shards = shards;
    const auto plan = drop_overlapping_losses(
        fault_rate == 0 ? fault::FaultPlan{}
                        : fault::FaultPlan::random(rspec, seed + 13),
        shards);

    for (const bool mitigate : {true, false}) {
      serve::ServeOptions cfg;
      cfg.link.gigabytes_per_second = cli.get_double("pcie", 12.0);
      cfg.epoch.mode =
          overlap ? serve::EpochMode::kOverlap : serve::EpochMode::kQuiesce;
      cfg.faults = plan;
      if (!mitigate) {
        cfg.mitigation.retry.max_attempts = 1;   // first failure sheds
        cfg.mitigation.hedge.enabled = false;    // stragglers run out
        cfg.mitigation.degraded.max_backlog = 0; // fenced range sheds
      }
      if (observe && mitigate) cfg.obs.metrics = &metrics;

      shard::ServingStack stack(topo, cfg);

      serve::OpenLoopSpec spec;
      spec.arrivals_per_second = rate;
      spec.count = requests;
      spec.update_fraction = cli.get_double("updates", 0.1);
      spec.seed = seed + 7;
      const auto stream = serve::make_open_loop(stack.keys(), spec);

      const auto rep = stack.backend().run(stream);
      const auto& fr = rep.faults;

      table.add(fault_rate, mitigate ? "on" : "off",
                fr.slowdown_windows + fr.dispatch_failures + fr.corruptions +
                    fr.shards_lost,
                fr.retries, fr.hedges_won,
                fr.degraded_points + fr.degraded_ranges, rep.shed, rep.dropped,
                rep.completed, rep.latency.percentile(99) * 1e6,
                rep.query_throughput() / 1e6);
    }
  }
  hb::emit(cli, table);
  hb::maybe_dump_metrics(cli, metrics);
  std::cout << "\nexpected: at every fault rate, mitigation on completes more"
            << " requests and sheds fewer than mitigation off under the same"
            << " fault schedule; at rate 0 the two rows are identical\n";
  return 0;
}
