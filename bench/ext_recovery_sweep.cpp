// Extension E15: crash-recovery cost — snapshot+log cold start vs the
// no-durability alternative (bulk rebuild from source data).
//
// Per tree size, a serving history runs through the real durability
// write path (write-ahead log + cadence snapshots on the virtual
// clock), a crash is sealed mid-history with a torn final write, and
// RecoveryManager cold-starts a fresh index from the crashed
// directory. The recovered state re-validates structurally; the table
// compares the recovery's modeled cold-start seconds (disk reads +
// replay CPU + image upload) against modeled_rebuild_seconds (bulk
// rebuild of every key + full image upload).
//
// The durability pitch is the ratio: reading back ~16 bytes/key at
// disk bandwidth and replaying a short log tail must beat re-running
// the O(N) bulk build. --check=true enforces the E15 acceptance gate:
// at the largest size the cold start is >= 5x faster than the rebuild
// and actually started from a snapshot (a gate that silently passed
// via the rebuild fallback would compare the rebuild to itself).
#include "bench_common.hpp"

#include <filesystem>
#include <map>
#include <memory>

#include "common/rng.hpp"
#include "persist/durability.hpp"
#include "persist/recovery.hpp"
#include "queries/batch.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

namespace {

using queries::OpKind;
using queries::UpdateOp;

/// One epoch's update batch: mostly value updates on live keys, with
/// enough inserts/deletes that replay exercises every op kind.
std::vector<UpdateOp> make_batch(Xoshiro256& rng, const std::vector<Key>& keys,
                                 std::size_t ops) {
  std::vector<UpdateOp> batch;
  batch.reserve(ops);
  const Key span = keys.back() + keys.back() / 8;
  for (std::size_t i = 0; i < ops; ++i) {
    const double r = rng.next_double();
    if (r < 0.6) {
      const Key k = keys[rng.next_below(keys.size())];
      batch.push_back({OpKind::kUpdate, k, 1 + (rng.next() >> 1)});
    } else if (r < 0.85) {
      batch.push_back({OpKind::kInsert, 1 + rng.next_below(span), 1 + (rng.next() >> 1)});
    } else {
      batch.push_back({OpKind::kDelete, 1 + rng.next_below(span), 0});
    }
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("sizes", "comma list of log2 tree sizes", "16,18,20")
      .flag("fanout", "tree fanout", "64")
      .flag("fill", "bulk-load fill factor", "0.69")
      .flag("epochs", "update epochs served before the crash window", "12")
      .flag("ops", "update ops per epoch", "512")
      .flag("snapshot-every", "logged epochs between cadence snapshots", "4")
      .flag("retain", "snapshots retained per shard", "2")
      .flag("torn", "bytes torn off the last durable write at the crash", "32")
      .flag("disk", "modeled sequential disk read bandwidth in GB/s", "2.0")
      .flag("pcie", "link bandwidth in GB/s", "12.0")
      .flag("seed", "history seed", "1")
      .flag("check", "enforce the E15 acceptance gate (exit 1 on failure)", "false")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  if (!cli.parse(argc, argv)) return 1;

  const auto sizes = hb::parse_log_list(cli.get_string("sizes", "16,18,20"));
  const unsigned fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  const double fill = cli.get_double("fill", 0.69);
  const int epochs = static_cast<int>(cli.get_uint("epochs", 12));
  const std::size_t ops_per_epoch = cli.get_uint("ops", 512);
  const std::uint64_t torn = cli.get_uint("torn", 32);
  const std::uint64_t seed = cli.get_uint("seed", 1);
  const bool check = cli.get_bool("check", false);

  TransferModel link;
  link.gigabytes_per_second = cli.get_double("pcie", 12.0);

  hb::print_header("Recovery sweep: snapshot+log cold start vs bulk rebuild",
                   "extension E15 (durability; docs/fault_tolerance.md#restart)");

  const auto dir = std::filesystem::temp_directory_path() / "harmonia_ext_recovery";
  std::filesystem::remove_all(dir);

  Table table({"size", "keys", "base", "snap epoch", "replayed ops",
               "snap (MB)", "log (KB)", "recover (ms)", "rebuild (ms)",
               "speedup"});

  bool gate_ok = true;
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const unsigned lg = sizes[s];
    const std::uint64_t n = 1ULL << lg;
    const auto keys = queries::make_tree_keys(n, seed);
    const auto entries = hb::entries_for(keys);

    persist::DurabilityConfig cfg;
    cfg.dir = (dir / ("size-" + std::to_string(lg))).string();
    cfg.snapshot_every = cli.get_uint("snapshot-every", 4);
    cfg.retain = cli.get_uint("retain", 2);
    cfg.timing.disk_gigabytes_per_second = cli.get_double("disk", 2.0);

    // The crash lands between the final epoch's log append and its
    // snapshot point: recovery starts from the last cadence snapshot
    // and replays the logged tail — the "snapshot+log" cold start the
    // sweep is named for (a torn final record truncates away).
    const double crash = epochs + 0.25;
    persist::DurabilityDomain domain(cfg, 1);
    domain.set_crash_time(crash);

    IndexOptions opts;
    opts.fanout = fanout;
    opts.fill_factor = fill;

    gpusim::Device dev(hb::bench_spec());
    btree::BTree builder(fanout);
    builder.bulk_load(entries, fill);
    HarmoniaIndex index(dev, HarmoniaTree::from_btree(builder), opts);

    Xoshiro256 rng(seed * 9176 + lg);
    for (int e = 1; e <= epochs; ++e) {
      const auto batch = make_batch(rng, keys, ops_per_epoch);
      domain.shard(0)->log_batch(static_cast<std::uint64_t>(e), batch,
                                 static_cast<double>(e));
      index.commit_staged(index.stage_update(batch));
      domain.shard(0)->maybe_snapshot(static_cast<std::uint64_t>(e), index,
                                      /*force=*/false, e + 0.5);
    }
    domain.apply_crash(0, torn);

    // Cold-start a fresh stack from the crashed directory.
    persist::RecoveryManager rm(cfg);
    persist::RecoveryManager::Materials mat = rm.load_shard(0);
    gpusim::Device dev2(hb::bench_spec());
    std::unique_ptr<HarmoniaIndex> recovered;
    if (mat.snapshot.has_value()) {
      IndexOptions ropts = opts;
      ropts.fill_factor = mat.snapshot->extras.fill_factor;
      recovered = std::make_unique<HarmoniaIndex>(
          dev2, std::move(mat.snapshot->tree), ropts);
    } else {
      btree::BTree rebuild(fanout);
      rebuild.bulk_load(entries, fill);
      recovered = std::make_unique<HarmoniaIndex>(
          dev2, HarmoniaTree::from_btree(rebuild), opts);
    }
    const persist::RecoveryReport rep =
        rm.finish(std::move(mat), *recovered, link, n);
    recovered->tree().validate();

    const double rebuild_s = persist::RecoveryManager::modeled_rebuild_seconds(
        n, recovered->tree(), cfg.timing, link);
    const double speedup = rebuild_s / rep.modeled_seconds;

    table.add(lg, n, rep.from_snapshot ? "snapshot" : "rebuild",
              rep.snapshot_epoch, rep.ops_replayed,
              static_cast<double>(rep.snapshot_bytes) / 1e6,
              static_cast<double>(rep.log_bytes) / 1e3,
              rep.modeled_seconds * 1e3, rebuild_s * 1e3, speedup);

    if (s + 1 == sizes.size()) {
      if (!rep.from_snapshot) {
        std::cerr << "CHECK FAILED: largest size (2^" << lg
                  << ") fell back to a bulk rebuild — the speedup would"
                  << " compare the rebuild to itself\n";
        gate_ok = false;
      }
      if (speedup < 5.0) {
        std::cerr << "CHECK FAILED: largest size (2^" << lg
                  << ") cold start is only " << speedup
                  << "x faster than the bulk rebuild (gate: >= 5x)\n";
        gate_ok = false;
      }
    }
  }
  hb::emit(cli, table);
  std::filesystem::remove_all(dir);

  std::cout << "\nexpected: every size cold-starts from a snapshot and"
            << " replays only the logged tail; the speedup over the bulk"
            << " rebuild grows with tree size and clears 5x at the top\n";
  if (check && !gate_ok) return 1;
  return 0;
}
