// Figure 2: average memory transactions per warp for a height-4 fanout-8
// B+tree with 4 queries per warp — worst 3.25, uniform queries ~3.16
// (97% of worst), best 1.0.
//
// The figure counts, per tree level, how many distinct node accesses the
// warp's 4 queries issue (accesses to the same node coalesce into one
// transaction): worst = (1 + 4 + 4 + 4) / 4 levels = 3.25, best = fully
// shared path = 1.0. We traverse the Harmonia key region host-side and
// count exactly that.
#include "bench_common.hpp"

#include <algorithm>
#include <set>

namespace hb = harmonia::bench;
using namespace harmonia;

namespace {

/// Average per-level distinct-node transactions over all 4-query warps.
double transactions_per_warp(const HarmoniaTree& tree, const std::vector<Key>& qs) {
  constexpr unsigned kQueriesPerWarp = 4;
  std::uint64_t transactions = 0;
  std::uint64_t warp_levels = 0;
  std::vector<std::uint32_t> node(kQueriesPerWarp);
  for (std::size_t base = 0; base + kQueriesPerWarp <= qs.size(); base += kQueriesPerWarp) {
    std::fill(node.begin(), node.end(), 0);
    for (unsigned level = 0; level < tree.height(); ++level) {
      std::set<std::uint32_t> distinct(node.begin(), node.end());
      transactions += distinct.size();
      ++warp_levels;
      if (level + 1 == tree.height()) break;
      for (unsigned j = 0; j < kQueriesPerWarp; ++j) {
        const auto keys = tree.node_keys(node[j]);
        const auto it = std::upper_bound(keys.begin(), keys.end(), qs[base + j]);
        node[j] = tree.prefix_sum()[node[j]] +
                  static_cast<std::uint32_t>(it - keys.begin());
      }
    }
  }
  // The figure's y-axis: transactions averaged over warps and levels.
  return static_cast<double>(transactions) / static_cast<double>(warp_levels);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("tree-size", "keys in the height-4 fanout-8 tree", "1500")
      .flag("warps", "number of 4-query warps to measure", "8192")
      .flag("seed", "workload seed", "1");
  if (!cli.parse(argc, argv)) return 1;

  const std::uint64_t tree_size = cli.get_uint("tree-size", 1500);
  const std::uint64_t warps = cli.get_uint("warps", 8192);
  const std::uint64_t seed = cli.get_uint("seed", 1);
  const std::uint64_t n = warps * 4;

  hb::print_header("Average memory transactions per warp",
                   "Figure 2 (height-4, fanout-8, 4 queries/warp, uniform)");

  const auto keys = queries::make_tree_keys(tree_size, seed);
  const auto tree = HarmoniaTree::from_btree(btree::make_tree(keys, 8));
  std::cout << "tree: " << tree.height() << " levels, " << tree.num_nodes()
            << " nodes\n\n";

  // Worst case: each warp's queries land in 4 distinct subtrees.
  std::vector<Key> worst(n);
  const std::uint64_t quarter = keys.size() / 4;
  for (std::uint64_t w = 0; w < warps; ++w) {
    for (unsigned j = 0; j < 4; ++j) {
      worst[w * 4 + j] = keys[(j * quarter + w * 131) % keys.size()];
    }
  }

  const auto random_qs =
      queries::make_queries(keys, n, queries::Distribution::kUniform, seed + 1);

  // Best case: all 4 queries of a warp share the whole path.
  std::vector<Key> best(n);
  for (std::uint64_t w = 0; w < warps; ++w) {
    const Key k = keys[(w * 977) % keys.size()];
    for (unsigned j = 0; j < 4; ++j) best[w * 4 + j] = k;
  }

  const double t_worst = transactions_per_warp(tree, worst);
  const double t_random = transactions_per_warp(tree, random_qs);
  const double t_best = transactions_per_warp(tree, best);

  Table table({"case", "avg mem-transactions/warp", "% of worst"});
  table.add("Worst", t_worst, 100.0);
  table.add("Queries (uniform)", t_random, 100.0 * t_random / t_worst);
  table.add("Best", t_best, 100.0 * t_best / t_worst);
  table.print(std::cout);

  std::cout << "\npaper: worst 3.25, queries 3.16 (97% of worst), best 1.0\n";
  return 0;
}
