// Extension: query batch size sensitivity. Harmonia's pipeline has two
// fixed costs per batch — the kernel launch and the PSA sort passes — so
// throughput climbs with batch size until DRAM bandwidth saturates. This
// locates the knee (the paper uses 100M-query batches, far past it).
#include "bench_common.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "20")
      .flag("fanout", "tree fanout", "64")
      .flag("seed", "workload seed", "1")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  if (!cli.parse(argc, argv)) return 1;
  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 20));
  const auto fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("Query batch size sweep",
                   "extension: fixed-cost amortization (launch + PSA sort)");

  const auto keys = queries::make_tree_keys(1ULL << lg, seed);
  gpusim::Device dev(hb::bench_spec());
  auto index = HarmoniaIndex::build(dev, hb::entries_for(keys), {.fanout = fanout});

  Table table({"log2(batch)", "throughput (Gq/s)", "kernel us", "sort us",
               "sort share (%)"});

  for (unsigned blg : {12u, 14u, 16u, 18u, 20u}) {
    const std::uint64_t n = 1ULL << blg;
    const auto qs =
        queries::make_queries(keys, n, queries::Distribution::kUniform, seed + blg);
    dev.flush_caches();
    const auto r = index.search(qs);
    table.add(blg, r.throughput() / 1e9, r.kernel_seconds * 1e6,
              r.sort_seconds * 1e6,
              100.0 * r.sort_seconds / r.total_seconds());
  }
  hb::emit(cli, table);
  return 0;
}
