# Pins the CSV schema of a bench harness: downstream scripts (and the
# EXPERIMENTS.md tables) parse these columns by name, so a header change
# must be a deliberate, test-visible act. One parameterized script
# serves every harness — the expected header lives at the add_test call
# site next to the run that produces the file.
#
# Usage: cmake -DCSV=<path> -DEXPECTED=<header line> [-DNAME=<label>]
#              -P check_csv_schema.cmake
if(NOT DEFINED CSV)
  message(FATAL_ERROR "pass -DCSV=<path to csv>")
endif()
if(NOT DEFINED EXPECTED)
  message(FATAL_ERROR "pass -DEXPECTED=<expected header line>")
endif()
if(NOT DEFINED NAME)
  set(NAME "csv")
endif()
if(NOT EXISTS "${CSV}")
  message(FATAL_ERROR "csv not written: ${CSV}")
endif()

file(STRINGS "${CSV}" lines)
list(LENGTH lines num_lines)
if(num_lines LESS 2)
  message(FATAL_ERROR "csv has no data rows: ${CSV}")
endif()

list(GET lines 0 header)
if(NOT header STREQUAL EXPECTED)
  message(FATAL_ERROR "csv schema changed:\n  expected: ${EXPECTED}\n  got:      ${header}")
endif()

# Every data row has exactly as many fields as the header.
string(REPLACE "," ";" header_fields "${header}")
list(LENGTH header_fields num_cols)
math(EXPR last "${num_lines} - 1")
foreach(i RANGE 1 ${last})
  list(GET lines ${i} row)
  string(REPLACE "," ";" row_fields "${row}")
  list(LENGTH row_fields row_cols)
  if(NOT row_cols EQUAL num_cols)
    message(FATAL_ERROR "row ${i} has ${row_cols} fields, header has ${num_cols}: ${row}")
  endif()
endforeach()
message(STATUS "${NAME} csv schema ok: ${num_lines} lines, ${num_cols} columns")
