// Extension E14: what the multi-tenant QoS front-end buys under overload
// (docs/serving.md#multi-tenant-qos).
//
// The same mixed point/scan Poisson stream — three tenants, one per
// priority class — replays at a grid of arrival rates spanning the
// uncontended regime and a >= 2x-capacity overload. With QoS on, batch
// formation is weighted-fair across class lanes and the admission
// budget's overload evictions land on the lowest queued class first, so
// the gold tenant's tail should barely move while bronze absorbs the
// entire shed. The per-class columns come straight from the report's
// class ledger, so the isolation claim is auditable row by row. With
// --check the binary enforces the acceptance gate itself: at the highest
// rate the stream must actually shed, every shed request must be bronze,
// gold must see no drops at all, and gold's p99 must stay within 2x its
// uncontended p99.
#include "bench_common.hpp"

#include "qos/priority.hpp"
#include "serve/workload.hpp"
#include "shard/backend_factory.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

namespace {

/// "1,4" -> {1.0, 4.0}.
std::vector<double> parse_rate_list(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stod(item));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "18")
      .flag("requests", "requests per run", "10000")
      .flag("rates", "comma list of arrival rates (Mq/s); first row is the "
                     "uncontended baseline, the last should overload", "1,8")
      .flag("scan-frac", "online-scan fraction of the stream", "0.15")
      .flag("scan-n", "results each scan asks for", "16")
      .flag("shards", "simulated devices (1 = single-device server)", "1")
      .flag("max-batch", "batch size trigger", "512")
      .flag("queue-cap", "admission queue capacity (per request kind)", "1024")
      .flag("gold-weight", "gold dispatch weight (silver 3, bronze 1)", "8")
      .flag("fanout", "tree fanout", "64")
      .flag("seed", "workload seed", "1")
      .flag("check", "fail unless gold p99 stays within 2x its uncontended "
                     "p99 at the top rate with every shed request bronze",
            "false")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  hb::add_metrics_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  const std::uint64_t requests = cli.get_uint("requests", 10000);
  const auto rates = parse_rate_list(cli.get_string("rates", "1,8"));
  const bool check = cli.get_bool("check", false);

  hb::print_header("QoS sweep: arrival rate x priority class",
                   "extension E14 (multi-tenant QoS front-end)");

  shard::TopologySpec topo;
  topo.log2_keys = cli.get_uint("size", 18);
  topo.fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  topo.shards = static_cast<unsigned>(cli.get_uint("shards", 1));
  topo.seed = cli.get_uint("seed", 1);
  topo.device = hb::bench_spec();
  const bool observe = !cli.get_string("metrics-out", "").empty();
  obs::MetricsRegistry metrics;

  Table table({"rate (Mq/s)", "class", "arrivals", "completed", "shed",
               "dropped", "p50 (us)", "p99 (us)", "achieved (Mq/s)"});

  bool gate_ok = true;
  double gold_p99_base = 0.0;
  for (std::size_t r = 0; r < rates.size(); ++r) {
    serve::ServeOptions cfg;
    cfg.batch.max_batch = cli.get_uint("max-batch", 512);
    cfg.batch.queue_capacity = cli.get_uint("queue-cap", 1024);
    cfg.qos.enabled = true;
    cfg.qos.classes[0] = {cli.get_double("gold-weight", 8), 1.0};
    cfg.qos.classes[1] = {3.0, 2.0};
    cfg.qos.classes[2] = {1.0, 4.0};
    // The gate isolates the scheduler's weighted-fair + eviction policy;
    // per-tenant throttling stays off so every drop is the scheduler's.
    cfg.qos.tenant_rate = 0.0;
    // Only the last (overload) row feeds the registry: earlier rows rerun
    // the same stream and would double-count in the sweep totals.
    if (observe && r + 1 == rates.size()) cfg.obs.metrics = &metrics;

    // Fresh stack per cell: every rate must start from the same tree.
    shard::ServingStack stack(topo, cfg);

    serve::OpenLoopSpec spec;
    spec.arrivals_per_second = rates[r] * 1e6;
    spec.count = requests;
    spec.scan_fraction = cli.get_double("scan-frac", 0.15);
    spec.scan_n = static_cast<std::uint32_t>(cli.get_uint("scan-n", 16));
    spec.tenants = 3;  // one tenant per class (tenant t -> class t % 3)
    spec.seed = cli.get_uint("seed", 1) + 7;
    const auto stream = serve::make_open_loop(stack.keys(), spec);

    const auto rep = stack.backend().run(stream);
    rep.check_invariants();

    const double gold_p99 = rep.class_latency[0].empty()
                                ? 0.0
                                : rep.class_latency[0].percentile(99);
    if (r == 0) gold_p99_base = gold_p99;
    const bool top = r + 1 == rates.size();
    if (check && top && rates.size() > 1) {
      if (rep.shed == 0) {
        std::cerr << "CHECK FAILED: the top rate (" << rates[r]
                  << " Mq/s) shed nothing — not an overload\n";
        gate_ok = false;
      }
      if (rep.class_shed[0] != 0 || rep.class_shed[1] != 0) {
        std::cerr << "CHECK FAILED: shed landed above bronze (gold "
                  << rep.class_shed[0] << ", silver " << rep.class_shed[1]
                  << ")\n";
        gate_ok = false;
      }
      if (rep.class_dropped[0] != 0) {
        std::cerr << "CHECK FAILED: gold saw " << rep.class_dropped[0]
                  << " drops under overload\n";
        gate_ok = false;
      }
      if (gold_p99 > 2.0 * gold_p99_base) {
        std::cerr << "CHECK FAILED: gold p99 " << gold_p99 * 1e6
                  << " us exceeds 2x its uncontended p99 "
                  << gold_p99_base * 1e6 << " us\n";
        gate_ok = false;
      }
    }

    for (std::size_t c = 0; c < qos::kNumClasses; ++c) {
      const auto& lat = rep.class_latency[c];
      table.add(rates[r], qos::to_string(qos::priority_at(c)),
                rep.class_arrivals[c], rep.class_completed[c],
                rep.class_shed[c], rep.class_dropped[c],
                lat.empty() ? 0.0 : lat.percentile(50) * 1e6,
                lat.empty() ? 0.0 : lat.percentile(99) * 1e6,
                rep.query_throughput() / 1e6);
    }
  }
  hb::emit(cli, table);
  hb::maybe_dump_metrics(cli, metrics);
  std::cout << "\nexpected: at the uncontended rate the three classes serve"
            << " near-identically; past capacity bronze (weight 1, stretched"
            << " deadline) absorbs the entire shed and its tail balloons,"
            << " silver degrades gently, and gold's p99 barely moves\n";
  if (check && !gate_ok) return 1;
  return 0;
}
