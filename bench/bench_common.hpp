// Shared plumbing for the figure/table reproduction harnesses.
//
// Every harness prints the same rows/series its paper figure reports
// (EXPERIMENTS.md maps each binary to its figure). Default sizes are
// scaled down from the paper's 2^23-2^26 keys / 100M queries so a run
// finishes in seconds on the simulator; pass --full for paper sizes.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "btree/btree.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "gpusim/device.hpp"
#include "harmonia/index.hpp"
#include "hbtree/index.hpp"
#include "obs/metrics.hpp"
#include "queries/workload.hpp"

namespace harmonia::bench {

inline std::vector<btree::Entry> entries_for(const std::vector<Key>& keys) {
  std::vector<btree::Entry> out;
  out.reserve(keys.size());
  for (Key k : keys) out.push_back({k, btree::value_for_key(k)});
  return out;
}

/// "18,19,20" -> {18, 19, 20}.
inline std::vector<unsigned> parse_log_list(const std::string& csv) {
  std::vector<unsigned> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<unsigned>(std::stoul(item)));
  }
  return out;
}

/// Registers the flags shared by most harnesses.
inline void add_common_flags(Cli& cli) {
  cli.flag("sizes", "comma list of log2 tree sizes", "18,19,20,21")
      .flag("queries", "log2 of the query batch size", "17")
      .flag("fanout", "tree fanout", "64")
      .flag("fill", "bulk-load fill factor", "0.69")
      .flag("dist", "query distribution", "uniform")
      .flag("seed", "workload seed", "1")
      .flag("full", "run the paper-scale sizes (2^23..2^26 keys)", "false")
      .flag("csv", "also write the table as CSV to this path", "(off)");
}

/// Prints the table, and mirrors it to --csv=<path> if given.
inline void emit(const Cli& cli, const Table& table) {
  table.print(std::cout);
  const std::string path = cli.get_string("csv", "");
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open csv output: " << path << "\n";
    return;
  }
  table.print_csv(out);
  std::cout << "(csv written to " << path << ")\n";
}

/// Registers --metrics-out for harnesses that thread an obs::Observer
/// through the serving stack. One registry spans the whole sweep, so the
/// dump holds totals aggregated across every cell (the per-cell numbers
/// stay in the table; see docs/observability.md).
inline void add_metrics_flag(Cli& cli) {
  cli.flag("metrics-out",
           "write a sweep-wide Prometheus-style metrics dump to this path", "(off)");
}

/// Writes the registry to --metrics-out=<path> if given.
inline void maybe_dump_metrics(const Cli& cli, const obs::MetricsRegistry& metrics) {
  const std::string path = cli.get_string("metrics-out", "");
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open metrics output: " << path << "\n";
    return;
  }
  out << metrics.prometheus_text();
  std::cout << "(metrics written to " << path << ")\n";
}

struct CommonConfig {
  std::vector<unsigned> size_logs;
  std::uint64_t num_queries = 1 << 17;
  unsigned fanout = 64;
  double fill = 0.69;
  queries::Distribution dist = queries::Distribution::kUniform;
  std::uint64_t seed = 1;
  bool full = false;
};

inline CommonConfig read_common(const Cli& cli) {
  CommonConfig cfg;
  cfg.full = cli.get_bool("full", false);
  cfg.size_logs = parse_log_list(cli.get_string("sizes", cfg.full ? "23,24,25,26"
                                                                  : "18,19,20,21"));
  if (cfg.full && !cli.has("sizes")) cfg.size_logs = {23, 24, 25, 26};
  cfg.num_queries = 1ULL << cli.get_uint("queries", cfg.full ? 20 : 17);
  cfg.fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  cfg.fill = cli.get_double("fill", 0.69);
  cfg.dist = queries::distribution_from_string(cli.get_string("dist", "uniform"));
  cfg.seed = cli.get_uint("seed", 1);
  return cfg;
}

/// A TITAN V whose global segment is trimmed to what the benches need
/// (keeps host memory in check when several devices coexist).
inline gpusim::DeviceSpec bench_spec(std::uint64_t global_bytes = 8ULL << 30) {
  auto spec = gpusim::titan_v();
  spec.global_mem_bytes = global_bytes;
  return spec;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n== " << title << " ==\n"
            << "reproduces: " << paper_ref << "\n\n";
}

}  // namespace harmonia::bench
