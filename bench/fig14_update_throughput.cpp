// Figure 14: batch update throughput (million ops/second), Harmonia's
// CPU-side Algorithm 1 + deferred movement vs HB+Tree's CPU batch update,
// for a 5% insert / 95% update mix (paper batch: 4096K ops).
#include "bench_common.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  hb::add_common_flags(cli);
  cli.flag("batch", "log2 of the update batch size (0 = half the tree size, "
                    "matching the paper's 4096K batch on a 2^23-key tree)", "0")
      .flag("inserts", "insert fraction of the batch", "0.05")
      .flag("threads", "updater threads (Harmonia)", "4");
  if (!cli.parse(argc, argv)) return 1;
  auto cfg = hb::read_common(cli);
  // Batch updates hit leaves bulk-loaded at ~90% occupancy: repeated
  // update phases fill leaves over time, and this is the regime where
  // inserts actually split (the cost Figure 14 measures).
  if (!cli.has("fill")) cfg.fill = 0.9;
  const std::uint64_t batch_log = cli.get_uint("batch", 0);
  const double inserts = cli.get_double("inserts", 0.05);
  const auto threads = static_cast<unsigned>(cli.get_uint("threads", 4));

  hb::print_header("Batch update throughput: Harmonia vs HB+Tree",
                   "Figure 14 (5% inserts / 95% updates)");

  Table table({"log(tree size)", "HB+ (Mops/s)", "Harmonia (Mops/s)",
               "Harmonia/HB+ (%)", "aux nodes", "moved slots"});

  for (unsigned lg : cfg.size_logs) {
    const std::uint64_t size = 1ULL << lg;
    const auto keys = queries::make_tree_keys(size, cfg.seed);
    const auto entries = hb::entries_for(keys);

    queries::BatchSpec spec;
    spec.size = batch_log != 0 ? (1ULL << batch_log) : size / 2;
    spec.insert_fraction = inserts;
    spec.seed = cfg.seed + 2;
    const auto ops = queries::make_update_batch(keys, spec);

    gpusim::Device dev_b(hb::bench_spec());
    auto hb_idx = hbtree::HBTreeIndex::build(dev_b, entries, cfg.fanout, cfg.fill);
    const auto hb_stats = hb_idx.update_batch(ops);
    const double hb_tp = hb_stats.ops_per_second();

    gpusim::Device dev_h(hb::bench_spec());
    auto h_idx = HarmoniaIndex::build(dev_h, entries,
                                      {.fanout = cfg.fanout, .fill_factor = cfg.fill});
    const auto h_stats = h_idx.update_batch(ops, threads);
    const double h_tp =
        static_cast<double>(h_stats.total_ops()) /
        (h_stats.apply_seconds + h_stats.rebuild_seconds + h_idx.last_sync_seconds());

    table.add(lg, hb_tp / 1e6, h_tp / 1e6, 100.0 * h_tp / hb_tp,
              h_stats.aux_nodes, h_stats.moved_slots);
  }
  hb::emit(cli, table);
  std::cout << "\npaper: Harmonia achieves ~70% of HB+Tree's update throughput\n";
  return 0;
}
