// Extension: end-to-end pipeline with PCIe transfers. The paper's Gq/s
// figures are kernel-side; a deployed index also ships queries up and
// results down. Chunked double buffering (the HB+ paper's remedy, cited
// in §6) hides most of the transfer cost — this harness sweeps chunk
// sizes and compares serial vs overlapped schedules.
#include "bench_common.hpp"

#include "harmonia/pipeline.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "20")
      .flag("queries", "log2 total query batch", "19")
      .flag("fanout", "tree fanout", "64")
      .flag("pcie", "link bandwidth in GB/s", "12.0")
      .flag("seed", "workload seed", "1")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  if (!cli.parse(argc, argv)) return 1;
  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 20));
  const std::uint64_t n = 1ULL << cli.get_uint("queries", 19);
  const auto fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  const double pcie = cli.get_double("pcie", 12.0);
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("PCIe pipeline: serial vs double-buffered",
                   "extension (end-to-end throughput incl. transfers)");

  const auto keys = queries::make_tree_keys(1ULL << lg, seed);
  gpusim::Device dev(hb::bench_spec());
  auto index = HarmoniaIndex::build(dev, hb::entries_for(keys), {.fanout = fanout});
  const auto qs =
      queries::make_queries(keys, n, queries::Distribution::kUniform, seed + 1);

  TransferModel link;
  link.gigabytes_per_second = pcie;

  Table table({"log2(chunk)", "schedule", "total ms", "throughput (Gq/s)",
               "bottleneck"});

  // Kernel-only reference (what Figure 11 reports).
  {
    dev.flush_caches();
    const auto r = index.search(qs);
    table.add("-", "kernel only (Fig 11 view)", r.total_seconds() * 1e3,
              r.throughput() / 1e9, "-");
  }

  for (unsigned clg : {14u, 16u, 18u}) {
    for (bool overlap : {false, true}) {
      PipelineOptions opts;
      opts.chunk_size = 1ULL << clg;
      opts.overlap = overlap;
      dev.flush_caches();
      const auto r = pipelined_search(index, qs, link, opts);
      table.add(clg, overlap ? "overlapped" : "serial", r.total_seconds * 1e3,
                r.throughput / 1e9, r.bottleneck);
    }
  }
  hb::emit(cli, table);
  std::cout << "\nexpected: overlapping hides the smaller of transfer/compute;"
            << " tiny chunks pay per-transfer latency and per-launch overhead\n";
  return 0;
}
