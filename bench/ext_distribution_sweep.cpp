// Extension: query-distribution sensitivity. The paper evaluates uniform
// queries (§5.1, "the most commonly used distributions in prior B+tree
// evaluations"); this sweep adds zipfian / gaussian / sorted streams and
// shows how PSA's benefit changes when the arrival order already has
// locality.
#include "bench_common.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "20")
      .flag("queries", "log2 query batch", "17")
      .flag("fanout", "tree fanout", "64")
      .flag("seed", "workload seed", "1")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  if (!cli.parse(argc, argv)) return 1;
  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 20));
  const std::uint64_t n = 1ULL << cli.get_uint("queries", 17);
  const auto fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("Query distribution sweep",
                   "extension of Figure 11 beyond uniform queries");

  const auto keys = queries::make_tree_keys(1ULL << lg, seed);
  const auto entries = hb::entries_for(keys);

  gpusim::Device dev_b(hb::bench_spec());
  auto hb_idx = hbtree::HBTreeIndex::build(dev_b, entries, fanout);
  gpusim::Device dev_h(hb::bench_spec());
  auto h_idx = HarmoniaIndex::build(dev_h, entries, {.fanout = fanout});

  Table table({"distribution", "HB+ (Gq/s)", "Harmonia no-PSA (Gq/s)",
               "Harmonia full (Gq/s)", "speedup vs HB+"});

  for (auto dist : {queries::Distribution::kUniform, queries::Distribution::kZipfian,
                    queries::Distribution::kGaussian, queries::Distribution::kSorted}) {
    const auto qs = queries::make_queries(keys, n, dist, seed + 2);

    const double hb_tp = hb_idx.search(qs).throughput();

    QueryOptions no_psa;
    no_psa.psa = PsaMode::kNone;
    dev_h.flush_caches();
    const double h_plain = h_idx.search(qs, no_psa).throughput();

    dev_h.flush_caches();
    const double h_full = h_idx.search(qs).throughput();

    table.add(queries::to_string(dist), hb_tp / 1e9, h_plain / 1e9, h_full / 1e9,
              h_full / hb_tp);
  }
  hb::emit(cli, table);
  std::cout << "\nexpected: sorted arrivals get PSA's locality for free; skewed"
            << " (zipfian) streams cache better everywhere\n";
  return 0;
}
