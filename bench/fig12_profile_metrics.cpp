// Figure 12: profile counters of the full Harmonia pipeline normalized to
// HB+Tree — global memory transactions (paper: 22%), memory divergence
// (66%), warp coherence (113%).
//
// These are the simulator's first-class counters (gpusim::KernelMetrics),
// the analogue of the paper's nvprof metrics.
#include "bench_common.hpp"

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  hb::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  auto cfg = hb::read_common(cli);
  if (!cli.has("sizes")) cfg.size_logs = {cfg.full ? 23u : 20u};

  hb::print_header("Profile metrics normalized to HB+Tree",
                   "Figure 12 (global mem transactions / memory divergence / "
                   "warp coherence)");

  for (unsigned lg : cfg.size_logs) {
    const std::uint64_t size = 1ULL << lg;
    const auto keys = queries::make_tree_keys(size, cfg.seed);
    const auto entries = hb::entries_for(keys);
    const auto qs = queries::make_queries(keys, cfg.num_queries, cfg.dist, cfg.seed + 1);

    gpusim::Device dev_b(hb::bench_spec());
    auto hb_idx = hbtree::HBTreeIndex::build(dev_b, entries, cfg.fanout, cfg.fill);
    const auto hb_res = hb_idx.search(qs);

    gpusim::Device dev_h(hb::bench_spec());
    auto h_idx = HarmoniaIndex::build(dev_h, entries,
                                      {.fanout = cfg.fanout, .fill_factor = cfg.fill});
    const auto h_res = h_idx.search(qs);

    const auto& hm = h_res.search.metrics;
    const auto& bm = hb_res.search.metrics;

    Table table({"metric", "HB+", "Harmonia", "Harmonia/HB+ (%)", "paper (%)"});
    table.add("global mem-transactions", bm.global_transactions(),
              hm.global_transactions(),
              100.0 * static_cast<double>(hm.global_transactions()) /
                  static_cast<double>(bm.global_transactions()),
              22.0);
    table.add("memory divergence", bm.memory_divergence(), hm.memory_divergence(),
              100.0 * hm.memory_divergence() / bm.memory_divergence(), 66.0);
    table.add("warp coherence", bm.warp_coherence(), hm.warp_coherence(),
              100.0 * hm.warp_coherence() / bm.warp_coherence(), 113.0);
    std::cout << "log(tree size) = " << lg << "\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
