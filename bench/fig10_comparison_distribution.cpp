// Figure 10: the proportion of queries whose child search resolves within
// each quarter of the node's key slots, for fanouts 8-128 — about 80% of
// queries finish in the front half (the motivation for NTG).
#include "bench_common.hpp"

#include <algorithm>

namespace hb = harmonia::bench;
using namespace harmonia;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("size", "log2 tree size", "17")
      .flag("queries", "queries to sample", "20000")
      .flag("fill", "bulk-load fill factor", "0.69")
      .flag("seed", "workload seed", "1")
      .flag("csv", "also write the table as CSV to this path", "(off)");
  if (!cli.parse(argc, argv)) return 1;

  const unsigned lg = static_cast<unsigned>(cli.get_uint("size", 17));
  const std::uint64_t n = cli.get_uint("queries", 20000);
  const double fill = cli.get_double("fill", 0.69);
  const std::uint64_t seed = cli.get_uint("seed", 1);

  hb::print_header("Proportion of queries resolving in each node quarter",
                   "Figure 10 (fanouts 8..128)");

  Table table({"fanout", "1/4 (%)", "2/4 (%)", "3/4 (%)", "4/4 (%)", "front half (%)"});

  for (unsigned fanout : {8u, 16u, 32u, 64u, 128u}) {
    const auto keys = queries::make_tree_keys(1ULL << lg, seed);
    const auto tree =
        HarmoniaTree::from_btree(btree::make_tree(keys, fanout, fill));
    const auto qs =
        queries::make_queries(keys, n, queries::Distribution::kUniform, seed + 1);

    std::uint64_t quarter_hits[4] = {0, 0, 0, 0};
    std::uint64_t total = 0;
    const unsigned kpn = tree.keys_per_node();
    for (Key q : qs) {
      std::uint32_t node = 0;
      for (unsigned level = 0; level < tree.height(); ++level) {
        const auto slots = tree.node_keys(node);
        const auto it = std::upper_bound(slots.begin(), slots.end(), q);
        const auto boundary = static_cast<unsigned>(it - slots.begin());
        const unsigned quarter = std::min(boundary * 4 / kpn, 3u);
        ++quarter_hits[quarter];
        ++total;
        if (level + 1 < tree.height()) node = tree.prefix_sum()[node] + boundary;
      }
    }

    const auto pct = [&](int q) {
      return 100.0 * static_cast<double>(quarter_hits[q]) / static_cast<double>(total);
    };
    table.add(fanout, pct(0), pct(1), pct(2), pct(3), pct(0) + pct(1));
  }
  hb::emit(cli, table);
  std::cout << "\npaper: ~80% of queries resolve within the front half for all"
            << " fanouts\n";
  return 0;
}
