// Persistence: build once, save to disk, reload in a "new process", and
// serve queries from the reloaded image — the restart story a database
// or file-system index needs. The on-disk format is versioned and
// checksummed; load() validates structure before use.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/timer.hpp"
#include "harmonia/index.hpp"
#include "queries/workload.hpp"

using namespace harmonia;

int main() {
  const auto path = std::filesystem::temp_directory_path() / "harmonia_index.bin";

  // --- "First process": build and persist. ---
  const auto keys = queries::make_tree_keys(1 << 19, 21);
  std::vector<btree::Entry> entries;
  for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});

  {
    btree::BTree builder(64);
    builder.bulk_load(entries);
    const auto tree = HarmoniaTree::from_btree(builder);
    WallTimer timer;
    std::ofstream out(path, std::ios::binary);
    tree.save(out);
    out.close();
    std::printf("saved   : %llu keys -> %s (%.1f MiB in %.1f ms)\n",
                static_cast<unsigned long long>(tree.num_keys()), path.c_str(),
                static_cast<double>(std::filesystem::file_size(path)) / (1 << 20),
                timer.elapsed_seconds() * 1e3);
  }

  // --- "Second process": reload, upload to the GPU, serve queries. ---
  WallTimer timer;
  std::ifstream in(path, std::ios::binary);
  auto tree = HarmoniaTree::load(in);  // checksum-verified + validated
  std::printf("loaded  : height %u, %u nodes in %.1f ms\n", tree.height(),
              tree.num_nodes(), timer.elapsed_seconds() * 1e3);

  gpusim::Device device(gpusim::titan_v());
  HarmoniaIndex index(device, std::move(tree));

  const auto qs =
      queries::make_queries(keys, 1 << 15, queries::Distribution::kUniform, 22);
  const auto result = index.search(qs);
  std::size_t hits = 0;
  for (Value v : result.values) hits += (v != kNotFound);
  std::printf("queried : %zu/%zu hits at %.2f Gq/s (simulated)\n", hits, qs.size(),
              result.throughput() / 1e9);

  std::filesystem::remove(path);
  return hits == qs.size() ? 0 : 1;
}
