// Web-indexing scenario: prefix/range scans over an ordered index
// (§3.2.1: "Since the key region is a consecutive array, range queries
// can achieve high performance").
//
// Keys model 64-bit lexicographic URL fingerprints; each "crawl shard"
// asks for all documents in a fingerprint range. Ranges run on the
// device kernel via HarmoniaIndex::range_device (one warp per range) and
// every result is cross-checked against the host-side scan.
#include <cstdio>

#include "common/rng.hpp"
#include "harmonia/index.hpp"
#include "queries/workload.hpp"

using namespace harmonia;

int main() {
  constexpr std::uint64_t kTreeSize = 1 << 19;
  constexpr std::uint64_t kRangeQueries = 1 << 10;
  constexpr unsigned kMaxResults = 128;

  gpusim::Device device(gpusim::titan_v());
  const auto keys = queries::make_tree_keys(kTreeSize, 3);
  std::vector<btree::Entry> entries;
  for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
  auto index = HarmoniaIndex::build(device, entries, {.fanout = 64});

  std::printf("web index: %llu URL fingerprints, fanout 64, height %u\n",
              static_cast<unsigned long long>(kTreeSize), index.tree().height());

  // Build range queries: each shard scans ~16-80 consecutive fingerprints.
  Xoshiro256 rng(9);
  std::vector<Key> los(kRangeQueries), his(kRangeQueries);
  for (std::uint64_t q = 0; q < kRangeQueries; ++q) {
    const std::uint64_t a = rng.next_below(keys.size() - 80);
    const std::uint64_t width = 16 + rng.next_below(64);
    los[q] = keys[a];
    his[q] = keys[a + width];
  }

  const auto result = index.range_device(los, his, kMaxResults);

  // Cross-check against the host-side range scan.
  std::uint64_t mismatches = 0;
  for (std::uint64_t q = 0; q < kRangeQueries; ++q) {
    const auto expect = index.range_host(los[q], his[q], kMaxResults);
    if (expect.size() != result.values[q].size()) {
      ++mismatches;
      continue;
    }
    for (std::size_t j = 0; j < expect.size(); ++j) {
      if (expect[j].value != result.values[q][j]) {
        ++mismatches;
        break;
      }
    }
  }

  std::printf("ranges      : %llu queries, %llu results, %llu host mismatches\n",
              static_cast<unsigned long long>(kRangeQueries),
              static_cast<unsigned long long>(result.total_results),
              static_cast<unsigned long long>(mismatches));
  std::printf("device scan : %.2f M ranges/s, %.2f M results/s (simulated)\n",
              static_cast<double>(kRangeQueries) / result.kernel_seconds / 1e6,
              static_cast<double>(result.total_results) / result.kernel_seconds / 1e6);
  std::printf("coalescing  : %.2f transactions per warp load "
              "(leaf level is a consecutive array)\n",
              static_cast<double>(result.metrics.transactions) /
                  static_cast<double>(result.metrics.loads));
  return mismatches == 0 ? 0 : 1;
}
