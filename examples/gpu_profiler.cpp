// nvprof-style profiling session: run the same query batch through the
// HB+Tree baseline and each Harmonia configuration, and dump the
// simulator's architectural counters (the Figure 12 metrics, per
// configuration) — a worked example of using gpusim::KernelMetrics to
// understand *why* a layout is fast.
#include <iostream>

#include "common/table.hpp"
#include "harmonia/index.hpp"
#include "hbtree/index.hpp"
#include "queries/workload.hpp"

using namespace harmonia;

namespace {

void report(Table& table, const std::string& name, const gpusim::KernelMetrics& m,
            double seconds, std::uint64_t queries) {
  table.add(name, m.global_transactions(), m.memory_divergence(), m.warp_coherence(),
            m.const_hits, m.readonly_hits + m.l2_hits,
            static_cast<double>(queries) / seconds / 1e9);
}

}  // namespace

int main() {
  const auto keys = queries::make_tree_keys(1 << 19, 1);
  std::vector<btree::Entry> entries;
  for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
  const auto qs =
      queries::make_queries(keys, 1 << 16, queries::Distribution::kUniform, 2);

  std::cout << "profiling " << qs.size() << " uniform queries over a 2^19-key,"
            << " fanout-64 tree (simulated TITAN V)\n";

  Table table({"configuration", "global txns", "mem divergence", "warp coherence",
               "const hits", "cache hits", "Gq/s"});

  {
    gpusim::Device dev(gpusim::titan_v());
    auto hb = hbtree::HBTreeIndex::build(dev, entries, 64);
    const auto r = hb.search(qs);
    report(table, "HB+Tree (baseline)", r.search.metrics, r.kernel_seconds, qs.size());
  }

  gpusim::Device dev(gpusim::titan_v());
  auto index = HarmoniaIndex::build(dev, entries, {.fanout = 64});

  struct Config {
    const char* name;
    PsaMode psa;
    bool ntg;
  };
  for (const Config c : {Config{"Harmonia tree", PsaMode::kNone, false},
                         Config{"Harmonia + PSA", PsaMode::kPartial, false},
                         Config{"Harmonia + PSA + NTG", PsaMode::kPartial, true}}) {
    QueryOptions qopts;
    qopts.psa = c.psa;
    qopts.auto_ntg = c.ntg;
    dev.flush_caches();
    const auto r = index.search(qs, qopts);
    report(table, c.name, r.search.metrics, r.total_seconds(), qs.size());
  }

  table.print(std::cout);
  std::cout << "\nreading the counters:\n"
            << "  - global txns drop when the prefix-sum region replaces child\n"
            << "    pointers (constant memory absorbs the top levels);\n"
            << "  - PSA cuts memory divergence: sorted neighbours share lines;\n"
            << "  - NTG trades a little coherence for far fewer wasted lanes.\n";
  return 0;
}
