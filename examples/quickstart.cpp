// Quickstart: build a Harmonia index on a simulated GPU, run a query
// batch, apply a batch of updates, query again.
//
//   $ ./quickstart
//
// The public API used here is the whole story: gpusim::Device is the
// simulated TITAN V, HarmoniaIndex wires the paper's tree layout, PSA,
// NTG, and batch updates together.
#include <cstdio>
#include <iostream>

#include "harmonia/index.hpp"
#include "queries/workload.hpp"

using namespace harmonia;

int main() {
  // 1. A simulated TITAN V (the paper's evaluation device).
  gpusim::Device device(gpusim::titan_v());

  // 2. One million key-value pairs, bulk-loaded into a fanout-64 tree.
  const auto keys = queries::make_tree_keys(1 << 20, /*seed=*/42);
  std::vector<btree::Entry> entries;
  entries.reserve(keys.size());
  for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
  auto index = HarmoniaIndex::build(device, entries, {.fanout = 64});

  std::cout << "built index: " << index.tree().num_keys() << " keys, height "
            << index.tree().height() << ", " << index.tree().num_nodes()
            << " nodes\n"
            << "prefix-sum child region: "
            << index.tree().prefix_sum().size() * sizeof(std::uint32_t)
            << " bytes (" << index.image().ps_const_count
            << " entries in constant memory)\n\n";

  // 3. Query phase: a batch of uniform lookups. PSA + NTG are on by
  //    default; the result reports what they chose.
  const auto batch =
      queries::make_queries(keys, 1 << 16, queries::Distribution::kUniform, 7);
  auto result = index.search(batch);

  std::size_t hits = 0;
  for (Value v : result.values) hits += (v != kNotFound);
  std::printf("query phase : %zu/%zu hits\n", hits, result.values.size());
  std::printf("  PSA sorted %u bits, NTG chose %u-lane groups\n",
              result.sorted_bits, result.group_size_used);
  std::printf("  simulated throughput: %.2f Gq/s (kernel %.2f us + sort %.2f us)\n\n",
              result.throughput() / 1e9, result.kernel_seconds * 1e6,
              result.sort_seconds * 1e6);

  // 4. Update phase: 5%% inserts / 95%% updates on the CPU (Algorithm 1),
  //    then the device image re-syncs automatically.
  queries::BatchSpec spec;
  spec.size = 1 << 14;
  spec.insert_fraction = 0.05;
  spec.seed = 11;
  const auto ops = queries::make_update_batch(keys, spec);
  const auto stats = index.update_batch(ops, /*threads=*/4);
  std::printf("update phase: %llu ops (%llu fine-path, %llu coarse-path), "
              "%.1f Mops/s, %llu aux nodes\n",
              static_cast<unsigned long long>(stats.total_ops()),
              static_cast<unsigned long long>(stats.fine_path_ops),
              static_cast<unsigned long long>(stats.coarse_path_ops),
              stats.ops_per_second() / 1e6,
              static_cast<unsigned long long>(stats.aux_nodes));

  // 5. Query the updated keys — the device image reflects the batch.
  std::vector<Key> updated;
  for (const auto& op : ops) updated.push_back(op.key);
  result = index.search(updated);
  hits = 0;
  for (Value v : result.values) hits += (v != kNotFound);
  std::printf("re-query    : %zu/%zu of the batch's keys found\n\n", hits,
              updated.size());

  // 6. Range query over the consecutive leaf level (host-side).
  const auto span = index.range_host(keys[1000], keys[1050]);
  std::printf("range query : [%llu, %llu] -> %zu entries\n",
              static_cast<unsigned long long>(keys[1000]),
              static_cast<unsigned long long>(keys[1050]), span.size());
  return 0;
}
