// OLAP-style scenario (§3.2 motivation): lookup-intensive phases with a
// high read/write ratio (the paper cites TPC-H at ~35:1), executed as the
// paper prescribes — GPU query phases alternating with CPU batch-update
// phases.
//
// The workload models a decision-support system: most phases are large
// scan/lookup batches over a skewed (zipfian) key popularity, punctuated
// by nightly-ETL-style update batches.
#include <cstdio>

#include "common/stats.hpp"
#include "harmonia/index.hpp"
#include "queries/workload.hpp"

using namespace harmonia;

int main() {
  constexpr std::uint64_t kTreeSize = 1 << 20;
  constexpr std::uint64_t kQueriesPerPhase = 1 << 16;
  constexpr std::uint64_t kUpdatesPerPhase = (kQueriesPerPhase * 2) / 35;  // ~35:1 r/w
  constexpr int kPhases = 8;

  gpusim::Device device(gpusim::titan_v());
  auto keys = queries::make_tree_keys(kTreeSize, 1);
  std::vector<btree::Entry> entries;
  for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});
  auto index = HarmoniaIndex::build(device, entries, {.fanout = 64});

  std::printf("OLAP index: %llu keys, read/write ratio ~35:1, %d phases\n\n",
              static_cast<unsigned long long>(kTreeSize), kPhases);
  std::printf("%-6s %-9s %-14s %-14s %-12s\n", "phase", "kind", "ops", "throughput",
              "notes");

  Summary query_tp;
  Summary update_tp;
  for (int phase = 0; phase < kPhases; ++phase) {
    const auto seed = static_cast<std::uint64_t>(phase) * 31 + 5;
    if (phase % 2 == 0) {
      // Analytics phase: zipfian point lookups (hot products dominate).
      const auto qs = queries::make_queries(keys, kQueriesPerPhase,
                                            queries::Distribution::kZipfian, seed);
      const auto r = index.search(qs);
      std::size_t hits = 0;
      for (Value v : r.values) hits += (v != kNotFound);
      query_tp.add(r.throughput());
      std::printf("%-6d %-9s %-14zu %8.2f Gq/s  %zu hits, GS=%u, %u sorted bits\n",
                  phase, "query", qs.size(), r.throughput() / 1e9, hits,
                  r.group_size_used, r.sorted_bits);
    } else {
      // ETL phase: batched updates with a few fresh inserts.
      queries::BatchSpec spec;
      spec.size = kUpdatesPerPhase;
      spec.insert_fraction = 0.05;
      spec.seed = seed;
      const auto ops = queries::make_update_batch(keys, spec);
      const auto stats = index.update_batch(ops, 4);
      update_tp.add(stats.ops_per_second());
      std::printf("%-6d %-9s %-14llu %8.2f Mops/s %llu coarse-path, %s\n", phase,
                  "update", static_cast<unsigned long long>(stats.total_ops()),
                  stats.ops_per_second() / 1e6,
                  static_cast<unsigned long long>(stats.coarse_path_ops),
                  stats.rebuilt ? "rebuilt" : "in-place only");
      // Refresh the known key set after inserts.
      const auto all = index.range_host(0, ~std::uint64_t{0} - 1);
      keys.clear();
      for (const auto& e : all) keys.push_back(e.key);
    }
  }

  std::printf("\nsummary: query phases avg %.2f Gq/s, update phases avg %.2f Mops/s\n",
              query_tp.mean() / 1e9, update_tp.mean() / 1e6);
  std::printf("final tree: %llu keys, height %u (validated)\n",
              static_cast<unsigned long long>(index.tree().num_keys()),
              index.tree().height());
  index.tree().validate();
  return 0;
}
