// harmonia_server_sim — drive the online serving layer (src/serve/) with
// open-loop (Poisson) or closed-loop workloads on the virtual clock.
//
//   harmonia_server_sim open   --size=18 --rate-mqs=10 --requests=50000
//                              --updates=0.05 --ranges=0.02 --max-wait-us=100
//   harmonia_server_sim closed --size=18 --clients=256 --think-us=20 --requests=20000
//
// The topology is just a flag: --shards=1 serves from one device,
// --shards=N range-shards the key space over N devices — either way the
// run goes through the same serve::Backend (shard/backend_factory.hpp),
// and --epoch-mode picks quiesce, the double-buffered overlap pipeline,
// or delta (in-place patches with a compaction fallback).
//
// Prints the aggregate report: admission/drop counts, batch-size and
// latency distributions (p50/p95/p99), update epochs with per-stage cost
// attribution, achieved throughput, and device-busy service rate.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/expect.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "persist/recovery.hpp"
#include "qos/priority.hpp"
#include "queries/workload.hpp"
#include "serve/options.hpp"
#include "serve/workload.hpp"
#include "shard/backend_factory.hpp"
#include "shard/restart_harness.hpp"
#include "tune/autotuner.hpp"

using namespace harmonia;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: harmonia_server_sim <open|closed> [flags]\n"
               "run a mode with --help for its flags\n");
  return 2;
}

void add_server_flags(Cli& cli) {
  cli.flag("size", "log2 tree size", "18")
      .flag("fanout", "tree fanout", "64")
      .flag("shards", "simulated devices (range-sharded serving)", "1")
      .flag("seed", "workload seed", "1")
      .flag("fault-csv", "write the FaultReport as CSV to this path", "")
      .flag("recovery-csv", "write per-shard RecoveryReports as CSV to this path", "")
      .flag("metrics", "print a Prometheus-style metrics dump to stdout", "false")
      .flag("metrics-out", "write the Prometheus-style metrics dump to this path", "")
      .flag("trace-out", "write the request-lifecycle trace to this path "
                         "(CSV, or JSON when the path ends in .json)", "")
      .flag("autotune", "enable the closed-loop online autotuner (src/tune/)",
            "false");
  serve::ServeOptions::add_flags(cli);
  tune::AutotunerConfig::add_flags(cli);
}

/// The tool-owned observability sinks (docs/observability.md). The serving
/// stack only borrows the registry/recorder for the run; each sink is
/// enabled only when its flag asks for it, so an unobserved run carries a
/// null Observer and stays bit-identical to pre-observability behaviour.
struct ObsSink {
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  bool metrics_stdout = false;
  std::string metrics_path;
  std::string trace_path;

  explicit ObsSink(const Cli& cli)
      : metrics_stdout(cli.get_bool("metrics", false)),
        metrics_path(cli.get_string("metrics-out", "")),
        trace_path(cli.get_string("trace-out", "")) {}

  obs::Observer observer() {
    obs::Observer o;
    if (metrics_stdout || !metrics_path.empty()) o.metrics = &metrics;
    if (!trace_path.empty()) o.trace = &trace;
    return o;
  }

  void write_text(const std::string& path, const std::string& what,
                  const auto& emit) const {
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    emit(f);
    if (!f.good()) {
      std::fprintf(stderr, "error: short write of %s to %s\n", what.c_str(),
                   path.c_str());
      std::exit(1);
    }
  }

  void dump() const {
    if (metrics_stdout) {
      std::printf("\n%s", metrics.prometheus_text().c_str());
    }
    if (!metrics_path.empty()) {
      write_text(metrics_path, "metrics",
                 [&](std::ostream& os) { os << metrics.prometheus_text(); });
    }
    if (!trace_path.empty()) {
      const bool json = trace_path.size() >= 5 &&
                        trace_path.compare(trace_path.size() - 5, 5, ".json") == 0;
      write_text(trace_path, "trace", [&](std::ostream& os) {
        json ? trace.write_json(os) : trace.write_csv(os);
      });
    }
  }
};

/// Wires the closed-loop controller when --autotune asks for it: the
/// tuner reads the run's metrics registry (forced on — the controller is
/// a registry consumer), and the backend applies its decisions at safe
/// points.
std::optional<tune::Autotuner> maybe_autotune(const Cli& cli, ObsSink& sink,
                                              serve::ServeOptions& cfg) {
  std::optional<tune::Autotuner> tuner;
  if (cli.get_bool("autotune", false)) {
    cfg.obs.metrics = &sink.metrics;
    tuner.emplace(tune::AutotunerConfig::from_cli(cli), sink.metrics);
    cfg.tuner = &*tuner;
  }
  return tuner;
}

void print_tune_summary(const std::optional<tune::Autotuner>& tuner,
                        const serve::Backend* backend) {
  if (!tuner.has_value()) return;
  std::printf("autotuner       : %llu moves tried, %llu rollbacks, "
              "%llu vetoes\n",
              static_cast<unsigned long long>(tuner->moves()),
              static_cast<unsigned long long>(tuner->rollbacks()),
              static_cast<unsigned long long>(tuner->vetoes()));
  if (backend != nullptr) {
    std::printf("final tunables  : %s\n",
                serve::to_string(backend->tunables()).c_str());
  }
}

shard::TopologySpec topology(const Cli& cli) {
  const std::uint64_t n = cli.get_uint("shards", 1);
  if (n < 1 || n > shard::ShardPlan::kMaxShards) {
    std::fprintf(stderr, "error: --shards must lie in [1, %u], got %llu\n",
                 shard::ShardPlan::kMaxShards, static_cast<unsigned long long>(n));
    std::exit(2);
  }
  shard::TopologySpec topo;
  topo.log2_keys = cli.get_uint("size", 18);
  topo.fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  topo.shards = static_cast<unsigned>(n);
  topo.seed = cli.get_uint("seed", 1);
  return topo;
}

void print_report(const serve::ServerReport& rep) {
  std::printf("arrivals        : %llu (admitted %llu, dropped %llu)\n",
              static_cast<unsigned long long>(rep.arrivals),
              static_cast<unsigned long long>(rep.admitted),
              static_cast<unsigned long long>(rep.dropped));
  std::printf("queries served  : %llu in %llu batches (mean batch %.1f, max %.0f)\n",
              static_cast<unsigned long long>(rep.completed),
              static_cast<unsigned long long>(rep.batches),
              rep.batch_size.empty() ? 0.0 : rep.batch_size.mean(),
              rep.batch_size.empty() ? 0.0 : rep.batch_size.max());
  std::printf("update epochs   : %llu (%llu ops applied, %llu failed)\n",
              static_cast<unsigned long long>(rep.epochs),
              static_cast<unsigned long long>(rep.updates_applied),
              static_cast<unsigned long long>(rep.updates_failed));
  if (rep.epochs > 0) {
    std::printf("epoch pipeline  : build %.3f ms | upload %.3f ms | "
                "swap wait %.3f ms | serving stall %.3f ms\n",
                rep.epoch_build_seconds * 1e3, rep.epoch_upload_seconds * 1e3,
                rep.epoch_swap_wait_seconds * 1e3, rep.epoch_stall_seconds * 1e3);
    // Incremental mode splits epochs into in-place patches and full-image
    // compactions; elsewhere every epoch books as a compaction.
    if (rep.patch_epochs > 0) {
      std::printf("  patch         : %llu epochs | build %.3f ms | upload %.3f ms\n",
                  static_cast<unsigned long long>(rep.patch_epochs),
                  rep.epoch_patch_build_seconds * 1e3,
                  rep.epoch_patch_upload_seconds * 1e3);
      std::printf("  compaction    : %llu epochs | build %.3f ms | upload %.3f ms\n",
                  static_cast<unsigned long long>(rep.compaction_epochs),
                  rep.epoch_compaction_build_seconds * 1e3,
                  rep.epoch_compaction_upload_seconds * 1e3);
    }
  }
  if (!rep.latency.empty()) {
    std::printf("latency         : p50 %.1f us | p95 %.1f us | p99 %.1f us | max %.1f us\n",
                rep.latency.percentile(50) * 1e6, rep.latency.percentile(95) * 1e6,
                rep.latency.percentile(99) * 1e6, rep.latency.max() * 1e6);
    std::printf("queueing delay  : p50 %.1f us | p99 %.1f us\n",
                rep.queue_delay.percentile(50) * 1e6,
                rep.queue_delay.percentile(99) * 1e6);
  }
  if (!rep.queue_depth.empty()) {
    std::printf("queue depth     : mean %.1f | max %.0f\n", rep.queue_depth.mean(),
                rep.queue_depth.max());
  }
  std::printf("makespan        : %.3f ms (virtual)\n", rep.makespan * 1e3);
  std::printf("throughput      : %s achieved | %s while busy\n",
              throughput_human(rep.query_throughput()).c_str(),
              throughput_human(rep.service_rate()).c_str());
  // Multi-tenant QoS: the per-class ledger, printed once any class beyond
  // the default sees traffic or the admission edge throttles a tenant.
  if (rep.class_arrivals[1] + rep.class_arrivals[2] > 0 || rep.throttled > 0) {
    std::printf("throttled       : %llu dropped at the per-tenant admission edge\n",
                static_cast<unsigned long long>(rep.throttled));
    for (std::size_t c = 0; c < qos::kNumClasses; ++c) {
      const auto& lat = rep.class_latency[c];
      std::printf("class %-6s    : %llu arrivals | %llu done | %llu shed | "
                  "%llu dropped (%llu throttled) | p50 %.1f us | p99 %.1f us\n",
                  qos::to_string(qos::priority_at(c)),
                  static_cast<unsigned long long>(rep.class_arrivals[c]),
                  static_cast<unsigned long long>(rep.class_completed[c]),
                  static_cast<unsigned long long>(rep.class_shed[c]),
                  static_cast<unsigned long long>(rep.class_dropped[c]),
                  static_cast<unsigned long long>(rep.class_throttled[c]),
                  lat.empty() ? 0.0 : lat.percentile(50) * 1e6,
                  lat.empty() ? 0.0 : lat.percentile(99) * 1e6);
    }
  }
  // Sharded topology: the per-shard section of the same report. With
  // replica groups (K > 1) each shard line also breaks its batches down
  // by replica slot.
  const std::size_t replicas = rep.shard_batches.empty()
                                   ? 0
                                   : rep.replica_batches.size() / rep.shard_batches.size();
  for (std::size_t s = 0; s < rep.shard_batches.size(); ++s) {
    std::printf("shard %-2llu        : %llu batches, %llu queries",
                static_cast<unsigned long long>(s),
                static_cast<unsigned long long>(rep.shard_batches[s]),
                static_cast<unsigned long long>(rep.shard_queries[s]));
    if (replicas > 1) {
      std::printf(" [");
      for (std::size_t r = 0; r < replicas; ++r) {
        std::printf("%s%llu", r == 0 ? "" : " ",
                    static_cast<unsigned long long>(rep.replica_batches[s * replicas + r]));
      }
      std::printf("]");
    }
    std::printf("\n");
  }
  if (!rep.shard_batches.empty()) {
    std::printf("range fan-outs  : %llu ranges, %llu scans split across shards\n",
                static_cast<unsigned long long>(rep.split_ranges),
                static_cast<unsigned long long>(rep.split_scans));
    std::printf("barrier wait    : %.3f ms device idle at epoch barriers\n",
                rep.barrier_wait_seconds * 1e3);
    if (rep.migrations > 0) {
      std::printf("resharding      : %llu migrations, %llu keys moved, plan v%u "
                  "(build %.3f ms, upload %.3f ms)\n",
                  static_cast<unsigned long long>(rep.migrations),
                  static_cast<unsigned long long>(rep.migrated_keys),
                  rep.plan_version, rep.migration_build_seconds * 1e3,
                  rep.migration_upload_seconds * 1e3);
    }
  }
  if (rep.faults != fault::FaultReport{}) {
    const fault::FaultReport& f = rep.faults;
    std::printf("faults injected : %llu slowdown windows, %llu dispatch failures, "
                "%llu corruptions, %llu shards lost\n",
                static_cast<unsigned long long>(f.slowdown_windows),
                static_cast<unsigned long long>(f.dispatch_failures),
                static_cast<unsigned long long>(f.corruptions),
                static_cast<unsigned long long>(f.shards_lost));
    std::printf("detection       : %llu audits, %llu checksum mismatches\n",
                static_cast<unsigned long long>(f.audits),
                static_cast<unsigned long long>(f.checksum_mismatches));
    std::printf("mitigation      : %llu retries, %llu reimages, %llu hedges "
                "(%llu won), %llu/%llu/%llu degraded pt/rg/shed\n",
                static_cast<unsigned long long>(f.retries),
                static_cast<unsigned long long>(f.reimages),
                static_cast<unsigned long long>(f.hedges_issued),
                static_cast<unsigned long long>(f.hedges_won),
                static_cast<unsigned long long>(f.degraded_points),
                static_cast<unsigned long long>(f.degraded_ranges),
                static_cast<unsigned long long>(f.degraded_shed));
    std::printf("queries shed    : %llu (fenced %.3f ms, backoff %.3f ms)\n",
                static_cast<unsigned long long>(rep.shed), f.fenced_seconds * 1e3,
                f.backoff_seconds * 1e3);
    if (f.replicas_lost + f.replicas_rejoined > 0) {
      std::printf("replica groups  : %llu lost (absorbed), %llu rejoined | "
                  "catch-up %llu ops, %.3f ms\n",
                  static_cast<unsigned long long>(f.replicas_lost),
                  static_cast<unsigned long long>(f.replicas_rejoined),
                  static_cast<unsigned long long>(f.catchup_ops),
                  f.catchup_seconds * 1e3);
    }
  }
}

void print_recoveries(const std::vector<persist::RecoveryReport>& recs) {
  for (const auto& r : recs) {
    std::printf("recovery shard %-2u: %s epoch %llu%s%s | replayed %llu overlay "
                "+ %llu log ops (%llu batches)%s | %llu + %llu bytes | "
                "modeled %.3f ms\n",
                r.shard, r.rebuilt ? "rebuilt to" : "snapshot at",
                static_cast<unsigned long long>(r.snapshot_epoch),
                r.snapshots_discarded > 0 ? " (discarded newer)" : "",
                r.manifest_fallback ? " (manifest torn, dir scan)" : "",
                static_cast<unsigned long long>(r.overlay_replayed),
                static_cast<unsigned long long>(r.ops_replayed),
                static_cast<unsigned long long>(r.batches_replayed),
                r.log_torn_tail ? " (torn tail truncated)" : "",
                static_cast<unsigned long long>(r.snapshot_bytes),
                static_cast<unsigned long long>(r.log_bytes),
                r.modeled_seconds * 1e3);
  }
}

void maybe_write_recovery_csv(const Cli& cli,
                              const std::vector<persist::RecoveryReport>& recs) {
  const std::string path = cli.get_string("recovery-csv", "");
  if (path.empty()) return;
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  f << persist::RecoveryReport::csv_header() << "\n";
  for (const auto& r : recs) f << r.csv_row() << "\n";
  if (!f.good()) {
    std::fprintf(stderr, "error: short write of recovery CSV to %s\n",
                 path.c_str());
    std::exit(1);
  }
}

void maybe_write_fault_csv(const Cli& cli, const serve::ServerReport& rep) {
  const std::string path = cli.get_string("fault-csv", "");
  if (path.empty()) return;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "%s\n%s\n", fault::FaultReport::csv_header(),
               rep.faults.csv_row().c_str());
  std::fclose(f);
}

int cmd_open(int argc, const char* const* argv) {
  Cli cli;
  add_server_flags(cli);
  cli.flag("rate-mqs", "Poisson arrival rate (Mq/s)", "10.0")
      .flag("requests", "total requests", "50000")
      .flag("updates", "update fraction", "0.0")
      .flag("ranges", "range fraction", "0.0")
      .flag("range-span", "keys per range", "32")
      .flag("scan-frac", "online-scan fraction ([lo, n) scans)", "0.0")
      .flag("scan-n", "results each scan asks for", "16")
      .flag("tenants", "tenant population (>1 draws a tenant per request; "
                       "class = tenant % 3)", "0")
      .flag("dist", "query distribution", "uniform");
  if (!cli.parse(argc, argv)) return 2;
  const shard::TopologySpec topo = topology(cli);

  serve::OpenLoopSpec spec;
  spec.arrivals_per_second = cli.get_double("rate-mqs", 10.0) * 1e6;
  spec.count = cli.get_uint("requests", 50000);
  spec.update_fraction = cli.get_double("updates", 0.0);
  spec.range_fraction = cli.get_double("ranges", 0.0);
  spec.scan_fraction = cli.get_double("scan-frac", 0.0);
  if (spec.update_fraction < 0 || spec.range_fraction < 0 ||
      spec.scan_fraction < 0 ||
      spec.update_fraction + spec.range_fraction + spec.scan_fraction > 1.0) {
    std::fprintf(stderr,
                 "error: --updates + --ranges + --scan-frac must lie in [0, 1]\n");
    return 2;
  }
  spec.range_span = cli.get_uint("range-span", 32);
  spec.scan_n = static_cast<std::uint32_t>(cli.get_uint("scan-n", 16));
  spec.tenants = static_cast<std::uint32_t>(cli.get_uint("tenants", 0));
  spec.dist = queries::distribution_from_string(cli.get_string("dist", "uniform"));
  spec.seed = cli.get_uint("seed", 1) + 7;

  std::printf("open loop: %llu requests at %.1f Mq/s (%.1f%% updates, %.1f%% ranges, "
              "%.1f%% scans, %u tenant%s, %u device%s, %s epochs)\n\n",
              static_cast<unsigned long long>(spec.count),
              spec.arrivals_per_second / 1e6, spec.update_fraction * 100,
              spec.range_fraction * 100, spec.scan_fraction * 100,
              spec.tenants, spec.tenants == 1 ? "" : "s", topo.shards,
              topo.shards > 1 ? "s" : "",
              cli.get_string("epoch-mode", "quiesce").c_str());
  ObsSink sink(cli);
  serve::ServeOptions cfg = serve::ServeOptions::from_cli(cli);
  cfg.obs = sink.observer();
  std::optional<tune::Autotuner> tuner = maybe_autotune(cli, sink, cfg);

  // A plan with restart events runs through the crash-restart harness:
  // a backend cannot restart itself (ServeOptions::validate rejects the
  // events), so the harness serves each generation, seals the crash, and
  // cold-starts the next from disk.
  const bool has_restart = std::any_of(
      cfg.faults.events.begin(), cfg.faults.events.end(),
      [](const fault::FaultEvent& e) {
        return e.kind == fault::FaultKind::kProcessRestart;
      });
  if (has_restart) {
    const auto keys = queries::make_tree_keys(1ULL << topo.log2_keys, topo.seed);
    const auto stream = serve::make_open_loop(keys, spec);
    const shard::RestartReport rr = shard::run_with_restarts(topo, cfg, stream);
    std::vector<persist::RecoveryReport> all;
    for (std::size_t i = 0; i < rr.cycles.size(); ++i) {
      const shard::RestartCycle& c = rr.cycles[i];
      std::printf("restart %-2llu      : crash %.3f ms | down %.3f ms | "
                  "recovery %.3f ms | TTFR %.3f ms\n",
                  static_cast<unsigned long long>(i), c.crash_time * 1e3,
                  c.down_seconds * 1e3, c.recovery_seconds * 1e3,
                  c.ttfr_seconds() * 1e3);
      print_recoveries(c.recoveries);
      all.insert(all.end(), c.recoveries.begin(), c.recoveries.end());
    }
    for (std::size_t g = 0; g < rr.segments.size(); ++g) {
      std::printf("\n--- generation %llu ---\n",
                  static_cast<unsigned long long>(g));
      print_report(rr.segments[g]);
    }
    print_tune_summary(tuner, nullptr);
    maybe_write_recovery_csv(cli, all);
    sink.dump();
    return 0;
  }

  shard::ServingStack stack(topo, cfg);
  if (!stack.recoveries().empty()) {
    print_recoveries(stack.recoveries());
    std::printf("\n");
  }
  maybe_write_recovery_csv(cli, stack.recoveries());
  const auto stream = serve::make_open_loop(stack.keys(), spec);
  const auto rep = stack.backend().run(stream);
  print_report(rep);
  print_tune_summary(tuner, &stack.backend());
  maybe_write_fault_csv(cli, rep);
  sink.dump();
  return 0;
}

int cmd_closed(int argc, const char* const* argv) {
  Cli cli;
  add_server_flags(cli);
  cli.flag("clients", "concurrent clients", "256")
      .flag("think-us", "per-client think time (us)", "20")
      .flag("requests", "total requests", "20000")
      .flag("dist", "query distribution", "uniform");
  if (!cli.parse(argc, argv)) return 2;
  const shard::TopologySpec topo = topology(cli);

  serve::ClosedLoopSpec spec;
  spec.clients = static_cast<unsigned>(cli.get_uint("clients", 256));
  spec.think_seconds = static_cast<double>(cli.get_uint("think-us", 20)) * 1e-6;
  spec.total_requests = cli.get_uint("requests", 20000);
  spec.dist = queries::distribution_from_string(cli.get_string("dist", "uniform"));
  spec.seed = cli.get_uint("seed", 1) + 7;

  std::printf("closed loop: %u clients, think %.0f us, %llu requests, %u device%s\n\n",
              spec.clients, spec.think_seconds * 1e6,
              static_cast<unsigned long long>(spec.total_requests), topo.shards,
              topo.shards > 1 ? "s" : "");
  ObsSink sink(cli);
  serve::ServeOptions cfg = serve::ServeOptions::from_cli(cli);
  cfg.obs = sink.observer();
  std::optional<tune::Autotuner> tuner = maybe_autotune(cli, sink, cfg);
  shard::ServingStack stack(topo, cfg);
  if (!stack.recoveries().empty()) {
    print_recoveries(stack.recoveries());
    std::printf("\n");
  }
  maybe_write_recovery_csv(cli, stack.recoveries());
  serve::ClosedLoopSource source(stack.keys(), spec);
  const auto rep = stack.backend().run(source);
  print_report(rep);
  print_tune_summary(tuner, &stack.backend());
  maybe_write_fault_csv(cli, rep);
  sink.dump();
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (mode == "open") return cmd_open(sub_argc, sub_argv);
  if (mode == "closed") return cmd_closed(sub_argc, sub_argv);
  return usage();
} catch (const ContractViolation& e) {
  // e.g. an option combination ServeOptions::validate rejects (queue-cap
  // below max-batch, lose on a single-device topology, bad --epoch-mode)
  // or a malformed --faults plan.
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
