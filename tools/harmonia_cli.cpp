// harmonia_cli — build, persist, inspect, query, and update Harmonia
// indexes from the command line.
//
//   harmonia_cli build  --size=20 --fanout=64 --out=idx.bin
//   harmonia_cli info   --index=idx.bin
//   harmonia_cli query  --index=idx.bin --queries=16 --dist=zipfian
//   harmonia_cli range  --index=idx.bin --lo=<key> --hi=<key>
//   harmonia_cli update --index=idx.bin --batch=14 --inserts=0.05 --out=idx2.bin
//
// Workload keys are synthetic (seeded, reproducible); the index file is
// the versioned format of docs/persistence_format.md.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "harmonia/index.hpp"
#include "queries/workload.hpp"

using namespace harmonia;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: harmonia_cli <build|info|query|range|update> [flags]\n"
               "run a subcommand with --help for its flags\n");
  return 2;
}

HarmoniaTree load_index(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open index file: %s\n", path.c_str());
    std::exit(1);
  }
  return HarmoniaTree::load(in);
}

void save_index(const HarmoniaTree& tree, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write index file: %s\n", path.c_str());
    std::exit(1);
  }
  tree.save(out);
}

int cmd_build(int argc, const char* const* argv) {
  Cli cli;
  cli.flag("size", "log2 number of keys", "18")
      .flag("fanout", "tree fanout", "64")
      .flag("fill", "bulk-load fill factor", "0.69")
      .flag("seed", "key-generation seed", "1")
      .flag("out", "output index path", "harmonia_index.bin");
  if (!cli.parse(argc, argv)) return 2;

  const std::uint64_t n = 1ULL << cli.get_uint("size", 18);
  const auto fanout = static_cast<unsigned>(cli.get_uint("fanout", 64));
  const auto keys = queries::make_tree_keys(n, cli.get_uint("seed", 1));
  std::vector<btree::Entry> entries;
  entries.reserve(keys.size());
  for (Key k : keys) entries.push_back({k, btree::value_for_key(k)});

  btree::BTree builder(fanout);
  builder.bulk_load(entries, cli.get_double("fill", 0.69));
  const auto tree = HarmoniaTree::from_btree(builder);
  const auto out = cli.get_string("out", "harmonia_index.bin");
  save_index(tree, out);
  std::printf("built %llu keys (fanout %u, height %u, %u nodes) -> %s\n",
              static_cast<unsigned long long>(tree.num_keys()), fanout, tree.height(),
              tree.num_nodes(), out.c_str());
  return 0;
}

int cmd_info(int argc, const char* const* argv) {
  Cli cli;
  cli.flag("index", "index file", "harmonia_index.bin");
  if (!cli.parse(argc, argv)) return 2;
  const auto tree = load_index(cli.get_string("index", "harmonia_index.bin"));
  std::printf("keys          : %llu\n",
              static_cast<unsigned long long>(tree.num_keys()));
  std::printf("fanout        : %u\n", tree.fanout());
  std::printf("height        : %u\n", tree.height());
  std::printf("nodes         : %u (leaves %u)\n", tree.num_nodes(), tree.num_leaves());
  std::printf("key region    : %s\n",
              bytes_human(tree.key_region().size() * sizeof(Key)).c_str());
  std::printf("prefix-sum    : %s\n",
              bytes_human(tree.prefix_sum().size() * sizeof(std::uint32_t)).c_str());
  std::printf("value region  : %s\n",
              bytes_human(tree.value_region().size() * sizeof(Value)).c_str());
  const double occupancy =
      static_cast<double>(tree.num_keys()) /
      static_cast<double>(static_cast<std::uint64_t>(tree.num_leaves()) *
                          tree.keys_per_node());
  std::printf("leaf occupancy: %.1f%%\n", occupancy * 100.0);
  return 0;
}

int cmd_query(int argc, const char* const* argv) {
  Cli cli;
  cli.flag("index", "index file", "harmonia_index.bin")
      .flag("queries", "log2 batch size", "16")
      .flag("dist", "distribution (uniform/zipfian/gaussian/sorted)", "uniform")
      .flag("psa", "psa mode (none/full/partial)", "partial")
      .flag("group-size", "NTG group size (0 = model-chosen)", "0")
      .flag("seed", "query seed", "2");
  if (!cli.parse(argc, argv)) return 2;

  auto tree = load_index(cli.get_string("index", "harmonia_index.bin"));
  // Query targets sample the index's own keys via the leaf level.
  std::vector<Key> keys;
  keys.reserve(tree.num_keys());
  for (const auto& e : tree.range(0, ~std::uint64_t{0} - 1)) keys.push_back(e.key);

  gpusim::Device device(gpusim::titan_v());
  HarmoniaIndex index(device, std::move(tree));

  const auto dist = queries::distribution_from_string(cli.get_string("dist", "uniform"));
  const auto qs = queries::make_queries(keys, 1ULL << cli.get_uint("queries", 16), dist,
                                        cli.get_uint("seed", 2));

  QueryOptions qopts;
  const std::string psa = cli.get_string("psa", "partial");
  qopts.psa = psa == "none" ? PsaMode::kNone
                            : (psa == "full" ? PsaMode::kFull : PsaMode::kPartial);
  qopts.group_size = static_cast<unsigned>(cli.get_uint("group-size", 0));
  qopts.auto_ntg = qopts.group_size == 0;

  const auto r = index.search(qs, qopts);
  std::size_t hits = 0;
  for (Value v : r.values) hits += (v != kNotFound);
  std::printf("%zu/%zu hits | %s | group size %u | %u sorted bits\n", hits,
              r.values.size(), throughput_human(r.throughput()).c_str(),
              r.group_size_used, r.sorted_bits);
  std::printf("kernel %.1f us + sort %.1f us (simulated TITAN V)\n",
              r.kernel_seconds * 1e6, r.sort_seconds * 1e6);
  std::printf("global txns %llu | mem divergence %.3f | warp coherence %.3f\n",
              static_cast<unsigned long long>(r.search.metrics.global_transactions()),
              r.search.metrics.memory_divergence(), r.search.metrics.warp_coherence());
  return 0;
}

int cmd_range(int argc, const char* const* argv) {
  Cli cli;
  cli.flag("index", "index file", "harmonia_index.bin")
      .flag("lo", "range lower bound (inclusive)", "0")
      .flag("hi", "range upper bound (inclusive)", "1000000")
      .flag("limit", "max entries to print (0 = all)", "20");
  if (!cli.parse(argc, argv)) return 2;
  const auto tree = load_index(cli.get_string("index", "harmonia_index.bin"));
  const auto lo = cli.get_uint("lo", 0);
  const auto hi = cli.get_uint("hi", 1000000);
  const auto limit = cli.get_uint("limit", 20);
  const auto out = tree.range(lo, hi, limit);
  for (const auto& e : out) {
    std::printf("%llu -> %llu\n", static_cast<unsigned long long>(e.key),
                static_cast<unsigned long long>(e.value));
  }
  std::printf("(%zu entries%s)\n", out.size(),
              limit != 0 && out.size() >= limit ? ", truncated by --limit" : "");
  return 0;
}

int cmd_update(int argc, const char* const* argv) {
  Cli cli;
  cli.flag("index", "index file", "harmonia_index.bin")
      .flag("batch", "log2 batch size", "14")
      .flag("inserts", "insert fraction", "0.05")
      .flag("deletes", "delete fraction", "0.0")
      .flag("threads", "updater threads", "4")
      .flag("seed", "batch seed", "3")
      .flag("out", "output index path (default: overwrite input)", "(input)");
  if (!cli.parse(argc, argv)) return 2;

  const auto in_path = cli.get_string("index", "harmonia_index.bin");
  auto tree = load_index(in_path);
  std::vector<Key> keys;
  keys.reserve(tree.num_keys());
  for (const auto& e : tree.range(0, ~std::uint64_t{0} - 1)) keys.push_back(e.key);

  queries::BatchSpec spec;
  spec.size = 1ULL << cli.get_uint("batch", 14);
  spec.insert_fraction = cli.get_double("inserts", 0.05);
  spec.delete_fraction = cli.get_double("deletes", 0.0);
  spec.seed = cli.get_uint("seed", 3);
  const auto ops = queries::make_update_batch(keys, spec);

  BatchUpdater updater(std::move(tree));
  const auto stats =
      updater.apply(ops, static_cast<unsigned>(cli.get_uint("threads", 4)));
  updater.tree().validate();

  const auto out_path = cli.has("out") ? cli.get_string("out", in_path) : in_path;
  save_index(updater.tree(), out_path);
  std::printf("applied %llu ops (%llu updates, %llu inserts, %llu deletes; "
              "%llu failed) at %.2f Mops/s\n",
              static_cast<unsigned long long>(stats.total_ops()),
              static_cast<unsigned long long>(stats.updates),
              static_cast<unsigned long long>(stats.inserts),
              static_cast<unsigned long long>(stats.deletes),
              static_cast<unsigned long long>(stats.failed),
              stats.ops_per_second() / 1e6);
  std::printf("%s%llu aux nodes, %llu slots moved -> %s\n",
              stats.rebuilt ? "rebuilt: " : "no structural change: ",
              static_cast<unsigned long long>(stats.aux_nodes),
              static_cast<unsigned long long>(stats.moved_slots), out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // Shift argv so each subcommand's Cli sees its own flags.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (cmd == "build") return cmd_build(sub_argc, sub_argv);
  if (cmd == "info") return cmd_info(sub_argc, sub_argv);
  if (cmd == "query") return cmd_query(sub_argc, sub_argv);
  if (cmd == "range") return cmd_range(sub_argc, sub_argv);
  if (cmd == "update") return cmd_update(sub_argc, sub_argv);
  return usage();
}
