#!/usr/bin/env bash
# Paper-scale reproduction run (2^23..2^26-key trees, 2^20-query batches).
#
# The simulator is ~10^3x slower than silicon: expect minutes per
# harness at 2^23 and substantially longer at 2^26 (which also needs
# ~10 GB of host RAM for the pointer-tree build). Outputs land in
# results/ as both text and CSV.
set -euo pipefail

BUILD=${BUILD:-build}
OUT=${OUT:-results}
mkdir -p "$OUT"

run() {
  local name=$1
  shift
  echo "== $name $*"
  "$BUILD/bench/$name" "$@" --csv="$OUT/$name.csv" | tee "$OUT/$name.txt"
}

# Start with the sizes that complete quickly; extend the list as patience
# allows (2^26 is the paper's largest).
SIZES=${SIZES:-23,24}
QLOG=${QLOG:-20}

run fig08_psa_tradeoff          --sizes="$SIZES" --queries="$QLOG"
run fig11_overall_throughput    --sizes="$SIZES" --queries="$QLOG"
run fig12_profile_metrics       --sizes="$SIZES" --queries="$QLOG"
run fig13_ablation              --sizes="$SIZES" --queries="$QLOG"
run fig14_update_throughput     --sizes="$SIZES"
"$BUILD/bench/sec41_psa_bits_sweep" --full | tee "$OUT/sec41_psa_bits_sweep.txt"
"$BUILD/bench/fig02_mem_transactions" | tee "$OUT/fig02_mem_transactions.txt"
"$BUILD/bench/fig03_query_divergence" | tee "$OUT/fig03_query_divergence.txt"
run fig10_comparison_distribution --size=20
"$BUILD/bench/sec42_ntg_model_validation" --size=20 --queries=17 \
  | tee "$OUT/sec42_ntg_model_validation.txt"

# Opt-in online-serving sweep (E10): SERVING=1 scripts/run_paper_scale.sh
if [[ "${SERVING:-0}" == "1" ]]; then
  run ext_serving_sweep --size=23 --requests=200000 \
    --rates=1,2,4,8 --waits=25,50,100,200,400
fi

# Opt-in multi-device shard sweep (E11): SHARDS=1,2,4,8 scripts/run_paper_scale.sh
# (any comma list of device counts; off by default).
if [[ "${SHARDS:-}" != "" ]]; then
  run ext_shard_scaling --size=23 --queries="$QLOG" \
    --shards="$SHARDS" --dists=uniform,zipfian --mode=both --check=true
fi

echo "done; see $OUT/"
