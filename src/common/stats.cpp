#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace harmonia {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
}

void Summary::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Summary::min() const {
  HARMONIA_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  HARMONIA_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::mean() const {
  HARMONIA_CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double p) const {
  HARMONIA_CHECK(!samples_.empty());
  HARMONIA_CHECK(p >= 0.0 && p <= 100.0);
  // Sort an owned copy: the old lazy in-place sort mutated shared state
  // from a const method, a data race when several threads read the same
  // report concurrently.
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  HARMONIA_CHECK(buckets > 0);
  HARMONIA_CHECK(hi > lo);
}

void Histogram::add(double x) {
  ++total_;
  // Out-of-range samples get their own buckets: clamping them into the
  // edge buckets silently corrupted tail readings.
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  HARMONIA_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::fraction(std::size_t i) const {
  HARMONIA_CHECK(i < counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double Histogram::bucket_lo(std::size_t i) const {
  HARMONIA_CHECK(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  HARMONIA_CHECK(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace harmonia
