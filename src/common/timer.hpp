// Wall-clock timer for host-side measurements (sort cost, update batches).
#pragma once

#include <chrono>

namespace harmonia {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace harmonia
