#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "common/expect.hpp"

namespace harmonia {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HARMONIA_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  HARMONIA_CHECK_MSG(cells.size() == headers_.size(),
                     "row arity " << cells.size() << " != header arity " << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(double v) {
  char buf[64];
  if (v != 0.0 && (std::abs(v) >= 1e6 || std::abs(v) < 1e-3)) {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

std::string Table::format_cell(std::uint64_t v) { return std::to_string(v); }
std::string Table::format_cell(std::int64_t v) { return std::to_string(v); }

namespace {
void csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto row_out = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      csv_cell(os, row[c]);
    }
    os << '\n';
  };
  row_out(headers_);
  for (const auto& row : rows_) row_out(row);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto hline = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::right << row[c] << " |";
    }
    os << '\n';
  };

  hline();
  print_row(headers_);
  hline();
  for (const auto& row : rows_) print_row(row);
  hline();
}

}  // namespace harmonia
