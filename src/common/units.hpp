// Human-readable unit formatting for bench output ("3.60 Gq/s", "16.0 KiB").
#pragma once

#include <cstdint>
#include <string>

namespace harmonia {

/// 3600000000 -> "3.60 G"; appends no unit suffix of its own.
std::string si_prefix(double v, int precision = 2);

/// 16384 -> "16.0 KiB".
std::string bytes_human(std::uint64_t bytes, int precision = 1);

/// Queries/sec formatted like the paper's axes ("billion/s").
std::string throughput_human(double queries_per_sec);

}  // namespace harmonia
