#include "common/cli.hpp"

#include <cstdio>
#include <stdexcept>

#include "common/expect.hpp"

namespace harmonia {

Cli& Cli::flag(const std::string& name, const std::string& help,
               const std::string& default_repr) {
  decls_[name] = Decl{help, default_repr};
  return *this;
}

bool Cli::parse(int argc, const char* const* argv) {
  const std::string prog = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(prog);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      print_usage(prog);
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // bare boolean switch
    }
    if (!decls_.count(arg)) {
      std::fprintf(stderr, "unknown flag: --%s\n", arg.c_str());
      print_usage(prog);
      return false;
    }
    values_[arg] = value;
  }
  return true;
}

bool Cli::has(const std::string& name) const {
  queried_.insert(name);
  return values_.count(name) != 0;
}

std::string Cli::get_string(const std::string& name, const std::string& fallback) const {
  queried_.insert(name);
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  queried_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

std::uint64_t Cli::get_uint(const std::string& name, std::uint64_t fallback) const {
  queried_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoull(it->second);
}

double Cli::get_double(const std::string& name, double fallback) const {
  queried_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  queried_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("bad boolean for --" + name + ": " + v);
}

std::string Cli::get_choice(const std::string& name,
                            std::initializer_list<const char*> allowed,
                            const std::string& fallback) const {
  const std::string v = get_string(name, fallback);
  for (const char* a : allowed)
    if (v == a) return v;
  std::string choices;
  for (const char* a : allowed) {
    if (!choices.empty()) choices += "|";
    choices += a;
  }
  HARMONIA_CHECK_MSG(false, "bad --" << name << ": '" << v << "' (expected "
                                     << choices << ")");
  return v;  // unreachable
}

std::vector<std::string> Cli::flag_names() const {
  std::vector<std::string> names;
  names.reserve(decls_.size());
  for (const auto& [name, decl] : decls_) names.push_back(name);
  return names;
}

void Cli::print_usage(const std::string& prog) const {
  std::fprintf(stderr, "usage: %s [flags]\n", prog.c_str());
  for (const auto& [name, decl] : decls_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(), decl.help.c_str(),
                 decl.default_repr.c_str());
  }
}

}  // namespace harmonia
