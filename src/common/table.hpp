// ASCII table printer: the figure/table harnesses in bench/ use this to
// print the same rows/series the paper reports.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace harmonia {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header row.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each cell with to_string-like rules.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({format_cell(cells)...});
  }

  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines):
  /// the figure harnesses emit this behind --csv so plots can be
  /// regenerated programmatically.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

  static std::string format_cell(const std::string& s) { return s; }
  static std::string format_cell(const char* s) { return s; }
  static std::string format_cell(double v);
  static std::string format_cell(std::uint64_t v);
  static std::string format_cell(std::int64_t v);
  static std::string format_cell(int v) { return format_cell(static_cast<std::int64_t>(v)); }
  static std::string format_cell(unsigned v) { return format_cell(static_cast<std::uint64_t>(v)); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace harmonia
