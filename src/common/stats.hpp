// Small statistics helpers used by the benchmark harness and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace harmonia {

/// One-pass summary of a sample: count / min / max / mean / stddev.
/// Percentiles are computed from a retained copy of the sample.
class Summary {
 public:
  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket. Used for divergence distributions (Fig. 3, Fig. 10).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  /// Fraction of samples in bucket i (0 if empty histogram).
  double fraction(std::size_t i) const;
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace harmonia
