// Small statistics helpers used by the benchmark harness and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace harmonia {

/// One-pass summary of a sample: count / min / max / mean / stddev.
/// Percentiles are computed from a retained copy of the sample.
class Summary {
 public:
  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  /// Linear-interpolated percentile, p in [0, 100]. Sorts an owned copy
  /// of the sample, so concurrent reads of a const Summary are race-free
  /// (reports are read from multiple threads under TSan in CI).
  double percentile(double p) const;

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
};

/// Fixed-width histogram over [lo, hi). Out-of-range samples are counted
/// in explicit underflow/overflow buckets — never clamped into the edge
/// buckets, which would silently corrupt tail readings. Used for
/// divergence distributions (Fig. 3, Fig. 10) and as the semantic model
/// for the serving stack's obs::LatencyHistogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const;
  /// Samples below lo / at or above hi.
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  /// Every sample seen, in-range or not.
  std::uint64_t total() const { return total_; }
  /// Fraction of all samples landing in bucket i (0 if empty histogram).
  double fraction(std::size_t i) const;
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace harmonia
