// Runtime contract checks used across the Harmonia codebase.
//
// HARMONIA_CHECK is always on (cheap preconditions on public APIs);
// HARMONIA_DCHECK compiles out in NDEBUG builds (hot inner loops).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace harmonia {

/// Thrown when a HARMONIA_CHECK/DCHECK contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failed(const char* expr, const char* file, int line,
                                         const std::string& msg) {
  std::ostringstream os;
  os << "contract violated: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace harmonia

#define HARMONIA_CHECK(expr)                                                       \
  do {                                                                             \
    if (!(expr)) ::harmonia::detail::contract_failed(#expr, __FILE__, __LINE__, {}); \
  } while (0)

#define HARMONIA_CHECK_MSG(expr, msg)                                                \
  do {                                                                               \
    if (!(expr)) {                                                                   \
      std::ostringstream harmonia_os_;                                               \
      harmonia_os_ << msg;                                                           \
      ::harmonia::detail::contract_failed(#expr, __FILE__, __LINE__, harmonia_os_.str()); \
    }                                                                                \
  } while (0)

#ifdef NDEBUG
#define HARMONIA_DCHECK(expr) ((void)0)
#else
#define HARMONIA_DCHECK(expr) HARMONIA_CHECK(expr)
#endif
