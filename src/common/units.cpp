#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace harmonia {

std::string si_prefix(double v, int precision) {
  static constexpr const char* kPrefixes[] = {"", "K", "M", "G", "T", "P"};
  int idx = 0;
  double scaled = std::abs(v);
  while (scaled >= 1000.0 && idx < 5) {
    scaled /= 1000.0;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f %s", precision, v < 0 ? -scaled : scaled,
                kPrefixes[idx]);
  return buf;
}

std::string bytes_human(std::uint64_t bytes, int precision) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int idx = 0;
  auto scaled = static_cast<double>(bytes);
  while (scaled >= 1024.0 && idx < 4) {
    scaled /= 1024.0;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f %s", idx == 0 ? 0 : precision, scaled, kUnits[idx]);
  return buf;
}

std::string throughput_human(double queries_per_sec) {
  return si_prefix(queries_per_sec) + "q/s";
}

}  // namespace harmonia
