// Deterministic pseudo-random number generation.
//
// All workloads in the benchmark harness are seeded, so every figure is
// reproducible bit-for-bit across runs. SplitMix64 seeds Xoshiro256**,
// the main generator (fast, passes BigCrush, tiny state).
#pragma once

#include <array>
#include <cstdint>

namespace harmonia {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the repo-wide deterministic generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x185caa2fd4c8a7feULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace harmonia
