// Minimal command-line flag parser for the bench/example executables.
//
// Accepts `--name=value`, `--name value`, and bare boolean `--name`.
// Unknown flags are an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace harmonia {

class Cli {
 public:
  /// Declares a flag with a help string and a printable default.
  Cli& flag(const std::string& name, const std::string& help, const std::string& default_repr);

  /// Parses argv. Returns false (after printing usage) on --help or error.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_uint(const std::string& name, std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;
  /// An enum-valued flag: returns the value (or `fallback` when unset)
  /// after checking it against `allowed`; throws ContractViolation naming
  /// the choices otherwise. Lets option structs validate their flags in
  /// one place instead of every tool re-checking strings.
  std::string get_choice(const std::string& name,
                         std::initializer_list<const char*> allowed,
                         const std::string& fallback) const;

  void print_usage(const std::string& prog) const;

  /// Every declared flag name, sorted. Pairs with `queried()` so tests
  /// can prove a from_cli() round trip consumes every flag add_flags()
  /// registered (a flag that parses but is never read is dead config).
  std::vector<std::string> flag_names() const;
  /// Flag names read through any get_* accessor so far.
  const std::set<std::string>& queried() const { return queried_; }

 private:
  struct Decl {
    std::string help;
    std::string default_repr;
  };
  std::map<std::string, Decl> decls_;
  std::map<std::string, std::string> values_;
  /// Consumption ledger: get_* is conceptually const, so mutable.
  mutable std::set<std::string> queried_;
};

}  // namespace harmonia
