#include "common/rng.hpp"

#include "common/expect.hpp"

namespace harmonia {

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  HARMONIA_CHECK(bound > 0);
  // Lemire's unbiased bounded generation (rejection on the low word).
  unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<unsigned __int128>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace harmonia
