#include "sort/gpu_sort_model.hpp"

#include <bit>
#include <cmath>

#include "common/expect.hpp"
#include "sort/radix_sort.hpp"

namespace harmonia::sort {

unsigned psa_bits(unsigned key_bits, std::uint64_t tree_size, unsigned keys_per_line) {
  HARMONIA_CHECK(key_bits >= 1 && key_bits <= 64);
  HARMONIA_CHECK(tree_size > 0);
  HARMONIA_CHECK(keys_per_line > 0);
  // N = B - log2(2^B / T * K). With log2: N = log2(T) - log2(K), clamped
  // to [0, key_bits]. Using ceil(log2 T) keeps the conservative reading of
  // the paper's analysis ("the key value is full in its space").
  const double log_t = std::log2(static_cast<double>(tree_size));
  const double log_k = std::log2(static_cast<double>(keys_per_line));
  const double n = log_t - log_k;
  if (n <= 0.0) return 0;
  const auto bits = static_cast<unsigned>(std::lround(n));
  return bits > key_bits ? key_bits : bits;
}

double gpu_radix_sort_cycles(const gpusim::DeviceSpec& spec, std::uint64_t n,
                             unsigned num_bits, bool with_payload) {
  if (n == 0 || num_bits == 0) return 0.0;
  const unsigned passes = radix_passes(num_bits);
  // Per pass: scatter read + write of keys (and payloads), plus one
  // histogram read of the keys. All streams are sequential/coalesced.
  const double key_bytes = static_cast<double>(n) * 8.0;
  const double stream_bytes_per_pass =
      key_bytes * (with_payload ? 4.0 : 2.0)  // rd+wr keys (+ rd+wr payloads)
      + key_bytes;                            // histogram pre-pass
  const double bytes_per_cycle =
      static_cast<double>(spec.line_bytes) / spec.dram_cycles_per_txn;
  const double cycles_per_pass = stream_bytes_per_pass / bytes_per_cycle;
  return static_cast<double>(passes) * (cycles_per_pass + spec.launch_overhead_cycles);
}

double gpu_radix_sort_seconds(const gpusim::DeviceSpec& spec, std::uint64_t n,
                              unsigned num_bits, bool with_payload) {
  return gpu_radix_sort_cycles(spec, n, num_bits, with_payload) / (spec.clock_ghz * 1e9);
}

}  // namespace harmonia::sort
