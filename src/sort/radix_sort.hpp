// LSD radix sort over a configurable bit window.
//
// PSA (§4.1.2) sorts query batches on only their most significant N bits:
// for bit-wise sorts the run time is proportional to the number of sorted
// bits, so a partial sort costs N/64 of a full sort while still making
// warp-adjacent queries share tree-traversal prefixes. Sorting the window
// [lo_bit, lo_bit+num_bits) with a stable LSD pass sequence yields exactly
// the paper's partially-sorted order (ties keep input order).
#pragma once

#include <cstdint>
#include <span>

namespace harmonia::sort {

/// Full 64-bit LSD radix sort (8-bit digits).
void radix_sort(std::span<std::uint64_t> keys);

/// Stable sort of `keys` by the bit window [lo_bit, lo_bit + num_bits).
/// num_bits == 0 is a no-op. lo_bit + num_bits must be <= 64.
void radix_sort_bits(std::span<std::uint64_t> keys, unsigned lo_bit, unsigned num_bits);

/// As radix_sort_bits, but carries a parallel payload array (query ids,
/// values) through the same permutation.
void radix_sort_pairs_bits(std::span<std::uint64_t> keys, std::span<std::uint64_t> payload,
                           unsigned lo_bit, unsigned num_bits);

/// Number of 8-bit digit passes a bit-window sort needs (the quantity the
/// GPU sort cost model charges for).
unsigned radix_passes(unsigned num_bits);

}  // namespace harmonia::sort
