// Cost model for the on-GPU radix sort feeding PSA, plus Equation 2.
//
// The paper uses CUB's GPU radix sort; we do not have a GPU, so the sort
// itself runs on the host (sort/radix_sort.hpp) while its *simulated GPU
// cost* is charged by this model: a bit-wise radix sort moves every record
// once per digit pass, so its time is proportional to the number of sorted
// bits (§4.1.2) and bounded by DRAM bandwidth — which is exactly how a
// tuned GPU radix sort behaves.
#pragma once

#include <cstdint>

#include "gpusim/device_spec.hpp"

namespace harmonia::sort {

/// Equation 2: N = B - log2(2^B / T * K) = log2(T) - log2(K).
/// B = bits per key, T = tree size (keys), K = keys per cache line.
/// Returns the number of most-significant bits PSA should sort on
/// (0 if the line range already covers the whole key range).
unsigned psa_bits(unsigned key_bits, std::uint64_t tree_size, unsigned keys_per_line);

/// Simulated GPU cycles to radix-sort `n` (key, payload) pairs on
/// `num_bits` bits. Each 8-bit digit pass reads and writes all keys and
/// payloads (4 streams of 8 B per element) at DRAM bandwidth, plus a
/// histogram pass overhead.
double gpu_radix_sort_cycles(const gpusim::DeviceSpec& spec, std::uint64_t n,
                             unsigned num_bits, bool with_payload = true);

double gpu_radix_sort_seconds(const gpusim::DeviceSpec& spec, std::uint64_t n,
                              unsigned num_bits, bool with_payload = true);

}  // namespace harmonia::sort
