#include "sort/radix_sort.hpp"

#include <array>
#include <vector>

#include "common/expect.hpp"

namespace harmonia::sort {

namespace {

constexpr unsigned kDigitBits = 8;
constexpr std::size_t kBuckets = 1u << kDigitBits;

/// One stable counting pass on digit bits [shift, shift+width).
template <bool kWithPayload>
void counting_pass(std::vector<std::uint64_t>& keys, std::vector<std::uint64_t>& keys_tmp,
                   std::vector<std::uint64_t>& payload, std::vector<std::uint64_t>& payload_tmp,
                   unsigned shift, unsigned width) {
  const std::uint64_t mask = (width == 64) ? ~std::uint64_t{0} : ((1ULL << width) - 1);
  std::array<std::size_t, kBuckets> count{};
  for (std::uint64_t k : keys) ++count[(k >> shift) & mask];
  std::size_t sum = 0;
  for (auto& c : count) {
    const std::size_t next = sum + c;
    c = sum;
    sum = next;
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::size_t dst = count[(keys[i] >> shift) & mask]++;
    keys_tmp[dst] = keys[i];
    if constexpr (kWithPayload) payload_tmp[dst] = payload[i];
  }
  keys.swap(keys_tmp);
  if constexpr (kWithPayload) payload.swap(payload_tmp);
}

template <bool kWithPayload>
void sort_bits_impl(std::span<std::uint64_t> keys, std::span<std::uint64_t> payload,
                    unsigned lo_bit, unsigned num_bits) {
  HARMONIA_CHECK(lo_bit + num_bits <= 64);
  if constexpr (kWithPayload) HARMONIA_CHECK(payload.size() == keys.size());
  if (num_bits == 0 || keys.size() < 2) return;

  std::vector<std::uint64_t> k(keys.begin(), keys.end());
  std::vector<std::uint64_t> k_tmp(k.size());
  std::vector<std::uint64_t> p, p_tmp;
  if constexpr (kWithPayload) {
    p.assign(payload.begin(), payload.end());
    p_tmp.resize(p.size());
  }

  unsigned shift = lo_bit;
  unsigned remaining = num_bits;
  while (remaining > 0) {
    const unsigned width = remaining < kDigitBits ? remaining : kDigitBits;
    counting_pass<kWithPayload>(k, k_tmp, p, p_tmp, shift, width);
    shift += width;
    remaining -= width;
  }

  std::copy(k.begin(), k.end(), keys.begin());
  if constexpr (kWithPayload) std::copy(p.begin(), p.end(), payload.begin());
}

}  // namespace

void radix_sort(std::span<std::uint64_t> keys) { radix_sort_bits(keys, 0, 64); }

void radix_sort_bits(std::span<std::uint64_t> keys, unsigned lo_bit, unsigned num_bits) {
  std::span<std::uint64_t> no_payload;
  sort_bits_impl<false>(keys, no_payload, lo_bit, num_bits);
}

void radix_sort_pairs_bits(std::span<std::uint64_t> keys, std::span<std::uint64_t> payload,
                           unsigned lo_bit, unsigned num_bits) {
  sort_bits_impl<true>(keys, payload, lo_bit, num_bits);
}

unsigned radix_passes(unsigned num_bits) { return (num_bits + kDigitBits - 1) / kDigitBits; }

}  // namespace harmonia::sort
