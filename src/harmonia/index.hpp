// HarmoniaIndex — the library's public facade.
//
// Owns the host-side HarmoniaTree (the source of truth), its device image
// on a simulated GPU, and the batch-update machinery; wires together PSA,
// NTG selection, and the search kernel into the paper's phase-based
// usage model:
//
//   query phase  : index.search(batch)        — GPU-accelerated lookups
//   update phase : index.update_batch(ops)    — CPU, Algorithm 1 locking
//                  (the device image re-syncs automatically afterwards)
//
// The index assumes it owns its Device's memory: update_batch frees and
// re-uploads the whole image. Use one Device per index.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gpusim/device.hpp"
#include "harmonia/device_image.hpp"
#include "harmonia/psa.hpp"
#include "harmonia/search.hpp"
#include "harmonia/tree.hpp"
#include "harmonia/update.hpp"
#include "queries/batch.hpp"

namespace harmonia {

struct IndexOptions {
  unsigned fanout = 64;
  double fill_factor = 0.69;
  /// Cap on constant-memory use for the prefix-sum top levels.
  std::uint64_t const_budget_bytes = 60 << 10;
};

struct QueryOptions {
  PsaMode psa = PsaMode::kPartial;
  /// Pick the thread-group size with the NTG model (§4.2). When false,
  /// group_size (or the fanout-based default) is used as-is.
  bool auto_ntg = true;
  /// Explicit group size (power of two <= warp); 0 = fanout-based.
  unsigned group_size = 0;
  bool early_exit = true;
  /// Sample size for NTG static profiling (paper: "for example, 1000").
  unsigned ntg_profile_sample = 1000;
  /// Force a PSA bit count (0 = Equation 2).
  unsigned psa_override_bits = 0;
};

class HarmoniaIndex {
 public:
  using Options = IndexOptions;

  struct QueryResult {
    /// Values in arrival order; kNotFound for absent keys.
    std::vector<Value> values;
    SearchStats search;
    unsigned group_size_used = 0;
    unsigned sorted_bits = 0;
    double sort_cycles = 0.0;

    double kernel_seconds = 0.0;
    double sort_seconds = 0.0;
    double total_seconds() const { return kernel_seconds + sort_seconds; }
    double throughput() const {
      return total_seconds() > 0.0
                 ? static_cast<double>(values.size()) / total_seconds()
                 : 0.0;
    }
  };

  /// Builds from sorted, distinct entries (bulk load).
  static HarmoniaIndex build(gpusim::Device& device, std::span<const btree::Entry> entries,
                             const Options& options = Options{});

  /// Wraps an existing host tree.
  HarmoniaIndex(gpusim::Device& device, HarmoniaTree tree, const Options& options = Options{});

  const HarmoniaTree& tree() const { return updater_->tree(); }
  const HarmoniaDeviceImage& image() const { return image_; }
  gpusim::Device& device() { return device_; }
  const gpusim::Device& device() const { return device_; }
  const Options& options() const { return options_; }

  /// Query phase: batched point lookups on the (simulated) GPU.
  QueryResult search(std::span<const Key> batch, const QueryOptions& qopts = QueryOptions{});

  /// Host-side point lookup / range scan (used by tests and examples).
  std::optional<Value> search_host(Key key) const { return tree().search(key); }
  std::vector<btree::Entry> range_host(Key lo, Key hi, std::size_t limit = 0) const {
    return tree().range(lo, hi, limit);
  }

  struct RangeResult {
    /// values[i] holds up to max_results entries for query i, in order.
    std::vector<std::vector<Value>> values;
    gpusim::KernelMetrics metrics;
    double kernel_seconds = 0.0;
    std::uint64_t total_results = 0;
  };

  /// Batched range queries on the device kernel (§3.2.1): one warp per
  /// [los[i], his[i]] interval, up to max_results values each.
  RangeResult range_device(std::span<const Key> los, std::span<const Key> his,
                           unsigned max_results = 64);

  /// Batched online scans ([lo, n) semantics): the first ns[i] values
  /// with key >= los[i], in key order. Runs the range kernel with an
  /// open upper bound and the batch-max n as the uniform result cap,
  /// then truncates each query to its own n (total_results reflects the
  /// truncated counts — only requested values are downloaded).
  RangeResult scan_device(std::span<const Key> los,
                          std::span<const std::uint32_t> ns);

  /// Host-side scan oracle: first `n` entries with key >= lo.
  std::vector<btree::Entry> scan_host(Key lo, std::size_t n) const {
    return tree().range(lo, kPadKey, n);
  }

  /// Update phase: applies the batch on the CPU (Algorithm 1), then
  /// re-synchronizes the device image.
  UpdateStats update_batch(std::span<const queries::UpdateOp> ops, unsigned threads = 1);

  /// The build half of the double-buffered epoch pipeline
  /// (docs/serving.md): a batch applied to a *shadow copy* of the host
  /// tree. The live tree and device image are untouched, so queries keep
  /// serving snapshot N while image N+1 is built and uploaded in the
  /// background; commit_staged installs it atomically.
  struct StagedUpdate {
    UpdateStats stats;
    /// Owns the shadow tree (Algorithm-1 lock state and all).
    std::unique_ptr<BatchUpdater> updater;

    const HarmoniaTree& tree() const { return updater->tree(); }
  };

  /// Applies `ops` against a shadow of the current host tree and returns
  /// it without touching the live index. Thread-safe against concurrent
  /// host-side reads of the live tree (the shadow is a private copy).
  StagedUpdate stage_update(std::span<const queries::UpdateOp> ops, unsigned threads = 1);

  /// Atomic swap: the shadow tree becomes the host tree and the device
  /// image is rebuilt from it in one step. The modeled upload time was
  /// already charged while the old image served, so the caller adds no
  /// device time here beyond the swap instant it picked.
  void commit_staged(StagedUpdate&& staged);

  /// Wall seconds spent in the last device re-synchronization.
  double last_sync_seconds() const { return last_sync_seconds_; }

  /// Rebuilds the device image from the host tree (frees device memory,
  /// flushes caches, re-uploads). update_batch does this automatically;
  /// the fault layer calls it directly to repair a corrupted or freshly
  /// restored device image.
  void resync_device() { sync_device(); }

 private:
  void sync_device();

  gpusim::Device& device_;
  Options options_;
  /// Behind a unique_ptr (BatchUpdater owns mutexes, so it is neither
  /// movable nor assignable) so commit_staged can install a shadow
  /// updater wholesale.
  std::unique_ptr<BatchUpdater> updater_;
  HarmoniaDeviceImage image_;
  double last_sync_seconds_ = 0.0;
};

}  // namespace harmonia
