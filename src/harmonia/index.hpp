// HarmoniaIndex — the library's public facade.
//
// Owns the host-side HarmoniaTree (the source of truth), its device image
// on a simulated GPU, and the batch-update machinery; wires together PSA,
// NTG selection, and the search kernel into the paper's phase-based
// usage model:
//
//   query phase  : index.search(batch)        — GPU-accelerated lookups
//   update phase : index.update_batch(ops)    — CPU, Algorithm 1 locking
//                  (the device image re-syncs automatically afterwards)
//
// The index assumes it owns its Device's memory: update_batch frees and
// re-uploads the whole image. Use one Device per index.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "gpusim/device.hpp"
#include "harmonia/device_image.hpp"
#include "harmonia/psa.hpp"
#include "harmonia/search.hpp"
#include "harmonia/tree.hpp"
#include "harmonia/update.hpp"
#include "queries/batch.hpp"

namespace harmonia {

struct IndexOptions {
  unsigned fanout = 64;
  /// Bulk-load AND compaction-rebuild fill target: every leaf keeps
  /// (1 - fill_factor) of its slots as gaps for the incremental patch
  /// path to absorb later in-place inserts.
  double fill_factor = 0.69;
  /// Cap on constant-memory use for the prefix-sum top levels.
  std::uint64_t const_budget_bytes = 60 << 10;
  /// Device-side delta-overlay bound (entries). 0 = no overlay: every
  /// structural op forces a compaction epoch. set_overlay_capacity can
  /// raise it after construction (the serving layer does).
  std::size_t overlay_capacity = 0;
};

struct QueryOptions {
  PsaMode psa = PsaMode::kPartial;
  /// Pick the thread-group size with the NTG model (§4.2). When false,
  /// group_size (or the fanout-based default) is used as-is.
  bool auto_ntg = true;
  /// Explicit group size (power of two <= warp); 0 = fanout-based.
  unsigned group_size = 0;
  bool early_exit = true;
  /// Sample size for NTG static profiling (paper: "for example, 1000").
  unsigned ntg_profile_sample = 1000;
  /// Force a PSA bit count (0 = Equation 2).
  unsigned psa_override_bits = 0;
};

class HarmoniaIndex {
 public:
  using Options = IndexOptions;

  struct QueryResult {
    /// Values in arrival order; kNotFound for absent keys.
    std::vector<Value> values;
    SearchStats search;
    unsigned group_size_used = 0;
    unsigned sorted_bits = 0;
    double sort_cycles = 0.0;

    double kernel_seconds = 0.0;
    double sort_seconds = 0.0;
    double total_seconds() const { return kernel_seconds + sort_seconds; }
    double throughput() const {
      return total_seconds() > 0.0
                 ? static_cast<double>(values.size()) / total_seconds()
                 : 0.0;
    }
  };

  /// Builds from sorted, distinct entries (bulk load).
  static HarmoniaIndex build(gpusim::Device& device, std::span<const btree::Entry> entries,
                             const Options& options = Options{});

  /// Wraps an existing host tree.
  HarmoniaIndex(gpusim::Device& device, HarmoniaTree tree, const Options& options = Options{});

  const HarmoniaTree& tree() const { return updater_->tree(); }
  const HarmoniaDeviceImage& image() const { return image_; }
  gpusim::Device& device() { return device_; }
  const gpusim::Device& device() const { return device_; }
  const Options& options() const { return options_; }

  /// Query phase: batched point lookups on the (simulated) GPU.
  QueryResult search(std::span<const Key> batch, const QueryOptions& qopts = QueryOptions{});

  /// What a static re-profile of the *current* tree would pick: the NTG
  /// group size (Eq. 4 over a strided key sample) and the Equation-2 PSA
  /// sort-bit count. The serving layer re-runs this at epoch-swap
  /// boundaries so an online tuner can re-seed its image/PSA knobs after
  /// the tree shape changes. Deterministic for a given tree.
  struct RecommendedKnobs {
    unsigned group_size = 0;
    unsigned sort_bits = 0;
  };
  RecommendedKnobs recommend_query_knobs(unsigned sample_size = 1000) const;

  /// Host-side point lookup / range scan (used by tests and examples).
  /// Overlay-aware: patched keys and tombstones are merged over the base
  /// tree, mirroring what the device kernels serve after commit_patch.
  std::optional<Value> search_host(Key key) const;
  std::vector<btree::Entry> range_host(Key lo, Key hi, std::size_t limit = 0) const;

  struct RangeResult {
    /// values[i] holds up to max_results entries for query i, in order.
    std::vector<std::vector<Value>> values;
    gpusim::KernelMetrics metrics;
    double kernel_seconds = 0.0;
    std::uint64_t total_results = 0;
  };

  /// Batched range queries on the device kernel (§3.2.1): one warp per
  /// [los[i], his[i]] interval, up to max_results values each.
  RangeResult range_device(std::span<const Key> los, std::span<const Key> his,
                           unsigned max_results = 64);

  /// Batched online scans ([lo, n) semantics): the first ns[i] values
  /// with key >= los[i], in key order. Runs the range kernel with an
  /// open upper bound and the batch-max n as the uniform result cap,
  /// then truncates each query to its own n (total_results reflects the
  /// truncated counts — only requested values are downloaded).
  RangeResult scan_device(std::span<const Key> los,
                          std::span<const std::uint32_t> ns);

  /// Host-side scan oracle: first `n` entries with key >= lo
  /// (overlay-aware, like range_host).
  std::vector<btree::Entry> scan_host(Key lo, std::size_t n) const {
    return range_host(lo, kPadKey, n);
  }

  /// Update phase: applies the batch on the CPU (Algorithm 1), then
  /// re-synchronizes the device image. A non-empty delta overlay is
  /// folded into the batch first (replayed ahead of `ops`), so the full
  /// resync never loses patched keys.
  UpdateStats update_batch(std::span<const queries::UpdateOp> ops, unsigned threads = 1);

  // --- Incremental update path (docs/serving.md#epoch-pipeline):
  // non-structural ops patch the committed image in place through the
  // leaf gaps; structural ops are absorbed by the bounded delta overlay;
  // when neither can absorb, the caller falls back to a compaction epoch
  // via stage_update/commit_staged. ---

  struct PatchResult {
    /// Stats for the absorbed prefix ops[0 .. absorbed) only.
    UpdateStats stats;
    /// Ops absorbed (host tree + overlay mirror patched, device writes
    /// queued for commit_patch). On exhaustion, ops[absorbed ..] remain
    /// unapplied and must go through a compaction batch.
    std::size_t absorbed = 0;
    bool exhausted = false;
    /// Device bytes commit_patch will move for everything queued so far
    /// (dirty leaf records + the overlay arrays when dirty) — what the
    /// serving layer feeds the PCIe transfer model instead of a full
    /// image upload.
    std::uint64_t patch_bytes = 0;
  };

  /// Applies as long a prefix of `ops` as the gaps and overlay can
  /// absorb. The host tree and overlay mirror change immediately; the
  /// device image does NOT — queued leaf/overlay writes land atomically
  /// at commit_patch, so in-flight device queries keep the old epoch's
  /// view until the caller picks the swap instant.
  PatchResult patch_update(std::span<const queries::UpdateOp> ops);

  /// Flushes the queued patch writes into the live device image (dirty
  /// leaf key/value records + the overlay arrays). No image rebuild, no
  /// allocation churn; safe to call with nothing pending.
  void commit_patch();

  /// Drops queued device writes without touching the host tree or the
  /// overlay mirror — the exhaustion path: the absorbed prefix is already
  /// in the host tree, so the compaction's shadow copy (stage_update)
  /// carries it, and commit_staged's full resync supersedes the queued
  /// partial writes.
  void discard_patch();

  bool patch_pending() const {
    return !dirty_key_leaves_.empty() || !dirty_value_leaves_.empty() ||
           overlay_dirty_;
  }

  /// The overlay's contents as an op batch (tombstones -> deletes, live
  /// entries -> inserts, key order). A compaction batch prepends these so
  /// the rebuilt image subsumes the overlay; commit_staged then clears it.
  std::vector<queries::UpdateOp> overlay_as_ops() const;

  /// The v2 persistence sidecar for this index: fill target + current
  /// overlay contents. Paired with tree() it captures everything a cold
  /// start needs to resume serving this exact logical state.
  TreeSnapshotExtras snapshot_extras() const;

  std::size_t overlay_size() const { return overlay_.size(); }
  std::size_t overlay_live_count() const;
  std::size_t overlay_tombstone_count() const { return overlay_.size() - overlay_live_count(); }
  std::size_t overlay_capacity() const { return options_.overlay_capacity; }
  /// Sets the overlay bound and (re)allocates the device-side arrays.
  /// Shrinking below the current overlay size is a contract violation.
  void set_overlay_capacity(std::size_t capacity);

  /// The build half of the double-buffered epoch pipeline
  /// (docs/serving.md): a batch applied to a *shadow copy* of the host
  /// tree. The live tree and device image are untouched, so queries keep
  /// serving snapshot N while image N+1 is built and uploaded in the
  /// background; commit_staged installs it atomically.
  struct StagedUpdate {
    UpdateStats stats;
    /// Owns the shadow tree (Algorithm-1 lock state and all).
    std::unique_ptr<BatchUpdater> updater;

    const HarmoniaTree& tree() const { return updater->tree(); }

    // Moves are explicitly noexcept: commit_staged installs a staged
    // update at a serving batch boundary, and a throwing move there would
    // leave the image half-swapped.
    StagedUpdate() = default;
    StagedUpdate(StagedUpdate&&) noexcept = default;
    StagedUpdate& operator=(StagedUpdate&&) noexcept = default;
  };

  /// Applies `ops` against a shadow of the current host tree and returns
  /// it without touching the live index. Thread-safe against concurrent
  /// host-side reads of the live tree (the shadow is a private copy).
  StagedUpdate stage_update(std::span<const queries::UpdateOp> ops, unsigned threads = 1);

  /// Atomic swap: the shadow tree becomes the host tree and the device
  /// image is rebuilt from it in one step. The modeled upload time was
  /// already charged while the old image served, so the caller adds no
  /// device time here beyond the swap instant it picked.
  ///
  /// The install itself (pointer swap + overlay/patch-state clear) runs
  /// in a noexcept block — it cannot throw mid-swap. Contract: a staged
  /// batch committed while the overlay is non-empty must have included
  /// overlay_as_ops() (the serving layer's compaction epochs do); the
  /// commit clears the overlay.
  void commit_staged(StagedUpdate&& staged);

  /// Wall seconds spent in the last device re-synchronization.
  double last_sync_seconds() const { return last_sync_seconds_; }

  /// Rebuilds the device image from the host tree (frees device memory,
  /// flushes caches, re-uploads — including the overlay mirror, so a
  /// fault-repair resync never drops patched keys). update_batch does
  /// this automatically; the fault layer calls it directly to repair a
  /// corrupted or freshly restored device image. Queued patch writes are
  /// subsumed by the full re-upload and cleared.
  void resync_device() { sync_device(); }

 private:
  /// One overlay patch in the host mirror (sorted by key). A live entry
  /// shadows the base with `value`; a tombstone hides a key still
  /// physically present in the base key region.
  struct OverlayEntry {
    Key key;
    Value value;
    bool tombstone;
  };

  void sync_device();
  /// (Re)allocates the device overlay arrays and uploads the mirror.
  void upload_overlay();
  std::vector<OverlayEntry>::iterator overlay_find(Key key);
  std::uint64_t pending_patch_bytes() const;

  gpusim::Device& device_;
  Options options_;
  /// Behind a unique_ptr (BatchUpdater owns mutexes, so it is neither
  /// movable nor assignable) so commit_staged can install a shadow
  /// updater wholesale.
  std::unique_ptr<BatchUpdater> updater_;
  HarmoniaDeviceImage image_;
  double last_sync_seconds_ = 0.0;

  /// Host mirror of the delta overlay (authoritative; device arrays are
  /// rewritten from it when dirty).
  std::vector<OverlayEntry> overlay_;
  /// Deferred device writes queued by patch_update: leaves whose key
  /// region changed (keys + values re-upload) vs value-only updates, plus
  /// whether the overlay arrays need a rewrite. Flushed by commit_patch.
  std::set<std::uint32_t> dirty_key_leaves_;
  std::set<std::uint32_t> dirty_value_leaves_;
  bool overlay_dirty_ = false;
};

}  // namespace harmonia
