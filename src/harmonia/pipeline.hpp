// End-to-end query pipeline with host<->device transfers.
//
// The paper reports kernel throughput; a deployed index also pays PCIe:
// queries arrive on the host, results return to it. HB+Tree's paper (and
// §6 here) point at CPU-GPU pipelining / double buffering as the remedy —
// chunk the batch and overlap upload(i+1) / kernel(i) / download(i-1).
// This module models both schedules on the simulator's clock:
//   serial     : sum of every chunk's upload + sort + kernel + download
//   overlapped : pipeline fill + drain around the bottleneck stage
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "harmonia/index.hpp"

namespace harmonia {

/// Host-device link model (PCIe 3.0 x16 ~ 12 GB/s effective by default).
struct TransferModel {
  double gigabytes_per_second = 12.0;
  /// Fixed per-transfer cost (driver + DMA setup).
  double latency_seconds = 10e-6;

  double seconds(std::uint64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / (gigabytes_per_second * 1e9);
  }
};

struct PipelineOptions {
  std::uint64_t chunk_size = 1 << 16;
  /// false = strictly serial chunks (no double buffering).
  bool overlap = true;
  QueryOptions query_options;
};

/// Stage timings for one chunk pushed through upload -> (sort + kernel) ->
/// download. This is the reusable unit of pipeline accounting:
/// `pipelined_search` sums these per chunk, and the serving scheduler
/// (src/serve/) charges each dispatched batch with the same math.
struct ChunkTiming {
  double upload_seconds = 0.0;
  double sort_seconds = 0.0;
  double kernel_seconds = 0.0;
  double download_seconds = 0.0;

  double compute_seconds() const { return sort_seconds + kernel_seconds; }
  double serial_seconds() const {
    return upload_seconds + compute_seconds() + download_seconds;
  }
};

/// Runs one chunk through the index, writing values (arrival order) into
/// `out` (`out.size() == chunk.size()`). Results are identical to
/// `index.search(chunk, qopts)`; only the per-stage accounting is added.
ChunkTiming dispatch_chunk(HarmoniaIndex& index, std::span<const Key> chunk,
                           const TransferModel& link, const QueryOptions& qopts,
                           std::span<Value> out);

/// Bytes of a tree's whole device image (key region + prefix-sum array +
/// value region) — what one full re-upload moves over the link.
std::uint64_t image_bytes(const HarmoniaTree& tree);

/// Virtual seconds to re-upload a tree's whole device image over `link`:
/// the post-update-epoch resync cost (key region + prefix-sum array +
/// value region, one transfer each). In the double-buffered epoch
/// pipeline this same charge is the *background* upload of the staged
/// image N+1 while image N keeps serving (docs/serving.md).
double image_resync_seconds(const HarmoniaTree& tree, const TransferModel& link);

struct PipelineResult {
  std::vector<Value> values;  // arrival order, all chunks
  std::uint64_t chunks = 0;

  // Per-stage totals (summed over chunks).
  double upload_seconds = 0.0;
  double sort_seconds = 0.0;
  double kernel_seconds = 0.0;
  double download_seconds = 0.0;

  /// End-to-end time under the selected schedule.
  double total_seconds = 0.0;
  double throughput = 0.0;

  /// The stage that bounds the overlapped schedule.
  const char* bottleneck = "";
};

/// Runs `batch` through the index in chunks under the transfer model.
/// Results are identical to a single index.search(batch); only the time
/// accounting differs.
PipelineResult pipelined_search(HarmoniaIndex& index, std::span<const Key> batch,
                                const TransferModel& link,
                                const PipelineOptions& options = {});

}  // namespace harmonia
