#include "harmonia/range.hpp"

#include <array>

#include "common/expect.hpp"

namespace harmonia {

using gpusim::LaneMask;

RangeStats range_batch(gpusim::Device& device, const HarmoniaDeviceImage& image,
                       gpusim::DevPtr<Key> los, gpusim::DevPtr<Key> his, std::uint64_t n,
                       gpusim::DevPtr<Value> out_values,
                       gpusim::DevPtr<std::uint32_t> out_counts,
                       const RangeConfig& config) {
  HARMONIA_CHECK(n > 0);
  HARMONIA_CHECK(config.max_results > 0);
  const unsigned warp = device.spec().warp_size;
  const unsigned kpn = image.keys_per_node();
  std::uint64_t total_results = 0;

  auto kernel = [&](gpusim::WarpCtx& w) {
    const std::uint64_t q = w.warp_id();
    std::array<std::uint64_t, 32> addrs{};
    std::array<Key, 32> keys{};

    // Lane 0 loads the bounds; broadcast.
    addrs[0] = los.element_addr(q);
    w.gather<Key>(gpusim::lane_bit(0), std::span(addrs.data(), warp), keys);
    const Key lo = keys[0];
    addrs[0] = his.element_addr(q);
    w.gather<Key>(gpusim::lane_bit(0), std::span(addrs.data(), warp), keys);
    const Key hi = keys[0];
    w.compute(gpusim::lane_bit(0));

    // Phase 1: point traversal to the leaf containing lo (whole warp as
    // one thread group; a warp-wide chunk scan per level).
    std::uint32_t node = 0;
    for (unsigned level = 0; level + 1 < image.height; ++level) {
      unsigned sep_leq = 0;
      bool done = false;
      for (unsigned chunk = 0; !done && chunk * warp < kpn; ++chunk) {
        LaneMask mask = 0;
        for (unsigned j = 0; j < warp; ++j) {
          const unsigned slot = chunk * warp + j;
          if (slot >= kpn) break;
          mask |= gpusim::lane_bit(j);
          addrs[j] = image.node_key_addr(node, slot);
        }
        w.gather<Key>(mask, std::span(addrs.data(), warp), keys);
        w.compute(mask);
        for (unsigned j = 0; j < warp && chunk * warp + j < kpn; ++j) {
          if (keys[j] <= lo) {
            ++sep_leq;
          } else {
            done = true;
            break;
          }
        }
      }
      std::array<std::uint32_t, 32> ps{};
      addrs[0] = image.ps_addr(node);
      w.gather<std::uint32_t>(gpusim::lane_bit(0), std::span(addrs.data(), warp), ps);
      w.compute(gpusim::lane_bit(0));
      node = ps[0] + sep_leq;
    }

    // Delta-overlay cursor (incremental updates): lane 0 binary-searches
    // the sorted patch array for the first entry >= lo; during the leaf
    // scan the cursor merges inline — overlay keys interleave in order,
    // a live entry equal to a base key overrides its value, a tombstone
    // hides it.
    const DeltaOverlayImage& ov = image.overlay;
    std::uint32_t ocur = 0;
    const std::uint32_t oend = ov.count;
    Key okey = kPadKey;
    Value oval = 0;
    std::uint8_t otomb = 0;
    bool ohave = false;
    std::array<Key, 32> okeys{};
    if (oend > 0) {
      std::uint32_t blo = 0;
      std::uint32_t bhi = oend;
      while (blo < bhi) {
        const std::uint32_t mid = (blo + bhi) / 2;
        addrs[0] = ov.key_addr(mid);
        w.gather<Key>(gpusim::lane_bit(0), std::span(addrs.data(), warp), okeys);
        w.compute(gpusim::lane_bit(0));
        if (okeys[0] < lo) {
          blo = mid + 1;
        } else {
          bhi = mid;
        }
      }
      ocur = blo;
    }
    // Leader-lane read of the current patch entry (key gather charged;
    // value + tombstone ride the same access step).
    const auto peek_overlay = [&] {
      addrs[0] = ov.key_addr(ocur);
      w.gather<Key>(gpusim::lane_bit(0), std::span(addrs.data(), warp), okeys);
      okey = okeys[0];
      oval = device.memory().read<Value>(ov.value_addr(ocur));
      otomb = device.memory().read<std::uint8_t>(ov.tombstone_addr(ocur));
      w.compute(gpusim::lane_bit(0));
      ohave = true;
    };

    // Phase 2: warp-wide linear scan of the leaf level's key slots. The
    // key region is consecutive, so each step is a coalesced 32-key read.
    const std::uint64_t leaf_base = static_cast<std::uint64_t>(node) * kpn;
    const std::uint64_t region_end = static_cast<std::uint64_t>(image.num_nodes) * kpn;
    std::uint32_t count = 0;
    std::array<std::uint64_t, 32> val_addrs{};
    std::array<Value, 32> vals{};
    // Merged results stage in compact lanes and scatter a warp at a time
    // (output addresses are contiguous, so the writes stay coalesced).
    std::array<std::uint64_t, 32> out_addrs{};
    std::array<Value, 32> out_buf{};
    unsigned buffered = 0;
    const auto flush_out = [&] {
      if (buffered == 0) return;
      w.scatter<Value>(gpusim::full_mask(buffered), std::span(out_addrs.data(), warp),
                       std::span<const Value>(out_buf.data(), warp));
      buffered = 0;
    };
    const auto emit = [&](Value v) {
      out_addrs[buffered] = out_values.element_addr(q * config.max_results + count);
      out_buf[buffered] = v;
      ++buffered;
      ++count;
      ++total_results;
      if (buffered == warp) flush_out();
    };

    bool past_hi = false;
    for (std::uint64_t cursor = leaf_base;
         !past_hi && cursor < region_end && count < config.max_results;
         cursor += warp) {
      const auto step = static_cast<unsigned>(
          std::min<std::uint64_t>(warp, region_end - cursor));
      LaneMask mask = gpusim::full_mask(step);
      for (unsigned j = 0; j < step; ++j) addrs[j] = image.key_region.element_addr(cursor + j);
      w.gather<Key>(mask, std::span(addrs.data(), warp), keys);
      w.compute(mask);

      // In-range lanes prefetch their value-region slot (addresses
      // parallel to the key region, so this stays coalesced too).
      LaneMask hit = 0;
      for (unsigned j = 0; j < step; ++j) {
        const Key k = keys[j];
        if (k == kPadKey) continue;  // node tail pad
        if (k > hi) break;
        if (k >= lo) {
          hit |= gpusim::lane_bit(j);
          const std::uint64_t slot_node = (cursor + j) / kpn;
          const auto slot = static_cast<unsigned>((cursor + j) % kpn);
          val_addrs[j] = image.value_addr(static_cast<std::uint32_t>(slot_node), slot);
        }
      }
      if (hit != 0) w.gather<Value>(hit, std::span(val_addrs.data(), warp), vals);

      for (unsigned j = 0; j < step; ++j) {
        const Key k = keys[j];
        if (k == kPadKey) continue;
        if (k > hi) {
          past_hi = true;
          break;
        }
        if (k < lo) continue;
        // Overlay entries strictly below this base key go first.
        while (ocur < oend && count < config.max_results) {
          if (!ohave) peek_overlay();
          if (okey >= k) break;
          if (!otomb) emit(oval);
          ++ocur;
          ohave = false;
        }
        if (count >= config.max_results) break;
        if (ocur < oend) {
          if (!ohave) peek_overlay();
          if (okey == k) {  // patch shadows the base entry
            if (!otomb) emit(oval);
            ++ocur;
            ohave = false;
            continue;
          }
        }
        emit(vals[j]);
        if (count >= config.max_results) break;
      }
    }
    // Drain overlay entries past the last base key (or past hi's
    // predecessor when the base scan broke early).
    while (ocur < oend && count < config.max_results) {
      if (!ohave) peek_overlay();
      if (okey > hi) break;
      if (!otomb) emit(oval);
      ++ocur;
      ohave = false;
    }
    flush_out();

    // Lane 0 writes the count.
    std::array<std::uint64_t, 32> cnt_addr{};
    std::array<std::uint32_t, 32> cnt_val{};
    cnt_addr[0] = out_counts.element_addr(q);
    cnt_val[0] = count;
    w.scatter<std::uint32_t>(gpusim::lane_bit(0), std::span(cnt_addr.data(), warp),
                             std::span<const std::uint32_t>(cnt_val.data(), warp));
  };

  RangeStats stats;
  stats.metrics = device.launch(n, kernel);
  stats.queries = n;
  stats.results = total_results;
  return stats;
}

}  // namespace harmonia
