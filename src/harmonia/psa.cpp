#include "harmonia/psa.hpp"

#include <numeric>

#include "common/expect.hpp"
#include "sort/gpu_sort_model.hpp"
#include "sort/radix_sort.hpp"

namespace harmonia {

PsaPlan psa_prepare(std::span<const Key> batch, std::uint64_t tree_size,
                    const gpusim::DeviceSpec& spec, PsaMode mode, unsigned override_bits) {
  // Keys are 64-bit: a larger override would underflow `lo_bit` below and
  // hand radix_sort_pairs_bits a shift window past the word (the unsigned
  // wrap even defeats that function's own lo_bit + num_bits <= 64 check).
  HARMONIA_CHECK_MSG(override_bits <= 64,
                     "override_bits must lie in [0, 64], got " << override_bits);
  PsaPlan plan;
  plan.mode = mode;
  plan.queries.assign(batch.begin(), batch.end());
  plan.permutation.resize(batch.size());
  std::iota(plan.permutation.begin(), plan.permutation.end(), std::uint64_t{0});
  if (mode == PsaMode::kNone || batch.size() < 2) return plan;

  if (mode == PsaMode::kFull) {
    plan.sorted_bits = 64;
  } else {
    const unsigned keys_per_line = spec.line_bytes / static_cast<unsigned>(sizeof(Key));
    plan.sorted_bits =
        override_bits != 0 ? override_bits : sort::psa_bits(64, tree_size, keys_per_line);
    if (plan.sorted_bits == 0) return plan;  // one line covers the range
  }

  const unsigned lo_bit = 64 - plan.sorted_bits;
  sort::radix_sort_pairs_bits(plan.queries, plan.permutation, lo_bit, plan.sorted_bits);
  plan.sort_cycles =
      sort::gpu_radix_sort_cycles(spec, batch.size(), plan.sorted_bits, /*with_payload=*/true);
  return plan;
}

void psa_restore(const PsaPlan& plan, std::span<const Value> issue_order_results,
                 std::span<Value> arrival_order_out) {
  HARMONIA_CHECK(issue_order_results.size() == plan.permutation.size());
  HARMONIA_CHECK(arrival_order_out.size() == plan.permutation.size());
  for (std::size_t i = 0; i < plan.permutation.size(); ++i) {
    arrival_order_out[plan.permutation[i]] = issue_order_results[i];
  }
}

}  // namespace harmonia
