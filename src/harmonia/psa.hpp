// Partially-Sorted Aggregation (§4.1): pre-sort a query batch on its top
// N bits before launching the search kernel so warp-adjacent queries share
// traversal prefixes (coalesced loads, less warp divergence) — at a
// fraction of a full sort's cost.
//
// N comes from Equation 2: queries whose targets fall inside one cache
// line's key range need no mutual ordering, so only the bits above that
// range are worth sorting. The sort itself runs on the host; its simulated
// GPU cost (CUB radix sort, time ∝ sorted bits) is charged by
// sort::gpu_radix_sort_cycles and reported alongside the kernel time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "harmonia/tree.hpp"

namespace harmonia {

enum class PsaMode {
  kNone,     ///< issue queries in arrival order
  kFull,     ///< completely sorted (the strawman of §4.1.1)
  kPartial,  ///< top-N bits only (Equation 2) — the PSA of the paper
};

struct PsaPlan {
  PsaMode mode = PsaMode::kNone;
  /// Queries in issue order (sorted for kFull/kPartial).
  std::vector<Key> queries;
  /// permutation[i] = original index of queries[i]; used to restore result
  /// order after the kernel.
  std::vector<std::uint64_t> permutation;
  /// Bits actually sorted (64 for kFull, Equation 2's N for kPartial).
  unsigned sorted_bits = 0;
  /// Simulated GPU cycles spent sorting (0 for kNone).
  double sort_cycles = 0.0;

  double sort_seconds(const gpusim::DeviceSpec& spec) const {
    return sort_cycles / (spec.clock_ghz * 1e9);
  }
};

/// Builds the issue-order plan for a batch. `tree_size` is the number of
/// keys in the tree (T of Equation 2). `override_bits` forces a specific
/// N for kPartial (0 = use Equation 2) — the §4.1.2 bit-sweep uses this.
PsaPlan psa_prepare(std::span<const Key> batch, std::uint64_t tree_size,
                    const gpusim::DeviceSpec& spec, PsaMode mode,
                    unsigned override_bits = 0);

/// Scatters kernel results (in issue order) back to arrival order.
void psa_restore(const PsaPlan& plan, std::span<const Value> issue_order_results,
                 std::span<Value> arrival_order_out);

}  // namespace harmonia
