// CPU-side batch updates with the paper's two-grained locking protocol
// (§3.2.2, Algorithm 1) and deferred key-region movement.
//
// During a batch:
//  - updates and non-splitting inserts/deletes run on the *fine* path:
//    bump the global in-flight counter under the coarse lock, then mutate
//    the target leaf in place under that leaf's fine lock;
//  - splitting inserts and merging deletes run on the *coarse* path:
//    spin until the coarse lock is held while the in-flight counter is
//    zero, then move the leaf's contents to an *auxiliary node* (status =
//    split) and apply the operation there. Later ops targeting that leaf
//    consult the auxiliary node.
// Internal levels of the key region are never touched during a batch, so
// leaf routing needs no locks. After the batch, the deferred movement
// rebuilds the key region / prefix-sum array from the surviving leaves and
// the auxiliary nodes in one pass.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "harmonia/tree.hpp"
#include "queries/batch.hpp"

namespace harmonia {

struct UpdateStats {
  std::uint64_t updates = 0;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  /// Ops whose key was absent (update/delete of a missing key).
  std::uint64_t failed = 0;
  std::uint64_t fine_path_ops = 0;
  std::uint64_t coarse_path_ops = 0;
  /// Coarse-path retries while fine-path ops were in flight (Algorithm 1's
  /// RETRY loop).
  std::uint64_t coarse_retries = 0;
  std::uint64_t aux_nodes = 0;
  /// Key-region slots rewritten by the deferred movement.
  std::uint64_t moved_slots = 0;
  bool rebuilt = false;
  double apply_seconds = 0.0;
  double rebuild_seconds = 0.0;
  /// Filled by the serving epoch paths (src/serve/), not by apply():
  /// modeled PCIe seconds to upload the rebuilt device image, and how
  /// long a staged image waited at a batch boundary for its atomic swap
  /// (0 in quiesce mode, where the device is held through the upload).
  /// Kept separate from apply/rebuild so the E13 sweep can attribute
  /// epoch cost stage by stage: build | upload | swap.
  double upload_seconds = 0.0;
  double swap_wait_seconds = 0.0;

  std::uint64_t total_ops() const { return updates + inserts + deletes; }
  double ops_per_second() const {
    const double t = apply_seconds + rebuild_seconds;
    return t > 0.0 ? static_cast<double>(total_ops()) / t : 0.0;
  }
};

class BatchUpdater {
 public:
  /// `rebuild_fill` sets the target fill factor the deferred movement
  /// leaves in rebuilt leaves — i.e. how much gap each leaf keeps for the
  /// incremental patch path to absorb later in-place inserts (the paper's
  /// bulk-load fill, 0.69, by default).
  explicit BatchUpdater(HarmoniaTree tree, double rebuild_fill = 0.69);

  const HarmoniaTree& tree() const { return tree_; }

  /// Mutable tree access for the incremental patch path
  /// (HarmoniaIndex::patch_update): in-place leaf mutations between
  /// batches, under the same no-concurrent-batch contract as apply().
  HarmoniaTree& tree_for_patch() { return tree_; }

  /// Applies one batch with `threads` workers (ops are striped across
  /// workers), then performs the deferred movement. Returns statistics.
  UpdateStats apply(std::span<const queries::UpdateOp> ops, unsigned threads = 1);

 private:
  /// A leaf whose structure changed (split/merge pending); holds the
  /// leaf's full contents, sorted. Empty = every key deleted (merge).
  struct AuxNode {
    std::vector<btree::Entry> entries;
  };

  /// Applies one op, accumulating into a worker-local stats block (no
  /// shared-counter contention on the hot path).
  void apply_one(const queries::UpdateOp& op, UpdateStats& local);
  void fine_enter();
  void fine_exit();
  /// Runs `fn` under Algorithm 1's coarse-path protocol.
  template <typename Fn>
  void coarse_section(UpdateStats& local, Fn&& fn);
  void rebuild(UpdateStats& stats);

  HarmoniaTree tree_;
  double rebuild_fill_ = 0.69;
  std::vector<std::unique_ptr<AuxNode>> aux_;  // indexed by leaf ordinal
  std::unique_ptr<std::mutex[]> fine_;
  std::mutex coarse_;
  std::uint64_t global_count_ = 0;
  bool rebuild_needed_ = false;
};

}  // namespace harmonia
