#include "harmonia/pipeline.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace harmonia {

ChunkTiming dispatch_chunk(HarmoniaIndex& index, std::span<const Key> chunk,
                           const TransferModel& link, const QueryOptions& qopts,
                           std::span<Value> out) {
  HARMONIA_CHECK(!chunk.empty());
  HARMONIA_CHECK(out.size() == chunk.size());
  const auto r = index.search(chunk, qopts);
  std::copy(r.values.begin(), r.values.end(), out.begin());
  ChunkTiming t;
  t.upload_seconds = link.seconds(chunk.size() * sizeof(Key));
  // Sorting happens on-device after upload: it belongs to the compute
  // stage of the pipeline.
  t.sort_seconds = r.sort_seconds;
  t.kernel_seconds = r.kernel_seconds;
  t.download_seconds = link.seconds(chunk.size() * sizeof(Value));
  return t;
}

std::uint64_t image_bytes(const HarmoniaTree& tree) {
  return tree.key_region().size() * sizeof(Key) +
         tree.prefix_sum().size() * sizeof(std::uint32_t) +
         tree.value_region().size() * sizeof(Value);
}

double image_resync_seconds(const HarmoniaTree& tree, const TransferModel& link) {
  return link.seconds(tree.key_region().size() * sizeof(Key)) +
         link.seconds(tree.prefix_sum().size() * sizeof(std::uint32_t)) +
         link.seconds(tree.value_region().size() * sizeof(Value));
}

PipelineResult pipelined_search(HarmoniaIndex& index, std::span<const Key> batch,
                                const TransferModel& link,
                                const PipelineOptions& options) {
  HARMONIA_CHECK(!batch.empty());
  HARMONIA_CHECK(options.chunk_size > 0);

  PipelineResult result;
  result.values.resize(batch.size());

  // Per-chunk stage times; the schedule is computed afterwards.
  std::vector<double> up, proc, down;

  for (std::uint64_t base = 0; base < batch.size(); base += options.chunk_size) {
    const std::uint64_t n = std::min<std::uint64_t>(options.chunk_size,
                                                    batch.size() - base);
    const auto chunk = batch.subspan(base, n);
    const auto t = dispatch_chunk(
        index, chunk, link, options.query_options,
        std::span<Value>(result.values).subspan(base, n));

    up.push_back(t.upload_seconds);
    proc.push_back(t.compute_seconds());
    down.push_back(t.download_seconds);
    result.upload_seconds += t.upload_seconds;
    result.sort_seconds += t.sort_seconds;
    result.kernel_seconds += t.kernel_seconds;
    result.download_seconds += t.download_seconds;
    ++result.chunks;
  }

  if (!options.overlap || result.chunks == 1) {
    result.total_seconds =
        result.upload_seconds + result.sort_seconds + result.kernel_seconds +
        result.download_seconds;
    result.bottleneck = "serial";
  } else {
    // Three-stage pipeline with double buffering: each stage processes
    // chunk i only after the previous stage finished it and after its own
    // previous chunk. Classic dependency recurrence:
    std::vector<double> up_done(result.chunks), proc_done(result.chunks),
        down_done(result.chunks);
    for (std::size_t i = 0; i < result.chunks; ++i) {
      const double up_ready = i == 0 ? 0.0 : up_done[i - 1];
      up_done[i] = up_ready + up[i];
      const double proc_ready = std::max(up_done[i], i == 0 ? 0.0 : proc_done[i - 1]);
      proc_done[i] = proc_ready + proc[i];
      const double down_ready = std::max(proc_done[i], i == 0 ? 0.0 : down_done[i - 1]);
      down_done[i] = down_ready + down[i];
    }
    result.total_seconds = down_done.back();

    const double stages[3] = {result.upload_seconds,
                              result.sort_seconds + result.kernel_seconds,
                              result.download_seconds};
    const char* names[3] = {"upload", "compute", "download"};
    result.bottleneck =
        names[static_cast<std::size_t>(std::max_element(stages, stages + 3) - stages)];
  }

  result.throughput = static_cast<double>(batch.size()) / result.total_seconds;
  return result;
}

}  // namespace harmonia
