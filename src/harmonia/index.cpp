#include "harmonia/index.hpp"

#include <algorithm>
#include <type_traits>

#include "common/expect.hpp"
#include "common/timer.hpp"
#include "harmonia/ntg.hpp"
#include "harmonia/range.hpp"

namespace harmonia {

HarmoniaIndex::HarmoniaIndex(gpusim::Device& device, HarmoniaTree tree,
                             const Options& options)
    : device_(device),
      options_(options),
      updater_(std::make_unique<BatchUpdater>(std::move(tree), options.fill_factor)),
      image_(HarmoniaDeviceImage::upload(device, updater_->tree(),
                                         options.const_budget_bytes)) {
  if (options_.overlay_capacity > 0) upload_overlay();
}

HarmoniaIndex HarmoniaIndex::build(gpusim::Device& device,
                                   std::span<const btree::Entry> entries,
                                   const Options& options) {
  btree::BTree builder(options.fanout);
  builder.bulk_load(entries, options.fill_factor);
  return HarmoniaIndex(device, HarmoniaTree::from_btree(builder), options);
}

HarmoniaIndex::QueryResult HarmoniaIndex::search(std::span<const Key> batch,
                                                 const QueryOptions& qopts) {
  HARMONIA_CHECK(!batch.empty());
  QueryResult result;

  // PSA: decide issue order and the simulated sort cost (§4.1).
  PsaPlan plan = psa_prepare(batch, tree().num_keys(), device_.spec(), qopts.psa,
                             qopts.psa_override_bits);
  result.sorted_bits = plan.sorted_bits;
  result.sort_cycles = plan.sort_cycles;
  result.sort_seconds = plan.sort_seconds(device_.spec());

  // NTG: group size from the static-profiling model (§4.2).
  SearchConfig config;
  config.early_exit = qopts.early_exit;
  config.group_size = qopts.group_size;
  if (qopts.auto_ntg && qopts.group_size == 0) {
    const std::size_t sample =
        std::min<std::size_t>(qopts.ntg_profile_sample, plan.queries.size());
    const NtgChoice choice = choose_group_size(
        tree(), std::span<const Key>(plan.queries.data(), sample), device_.spec());
    config.group_size = choice.group_size;
  }
  result.group_size_used =
      resolve_group_size(device_.spec(), tree().fanout(), config.group_size);

  // Upload the batch, run the kernel, fetch results.
  auto& mem = device_.memory();
  auto d_queries = mem.malloc<Key>(plan.queries.size());
  mem.copy_to_device(d_queries, std::span<const Key>(plan.queries));
  auto d_out = mem.malloc<Value>(plan.queries.size());

  result.search = search_batch(device_, image_, d_queries, plan.queries.size(), d_out,
                               config);
  result.kernel_seconds = result.search.metrics.elapsed_seconds(device_.spec());

  std::vector<Value> issue_order(plan.queries.size());
  mem.copy_to_host(std::span<Value>(issue_order), d_out);
  result.values.resize(batch.size());
  psa_restore(plan, issue_order, result.values);
  return result;
}

HarmoniaIndex::RecommendedKnobs HarmoniaIndex::recommend_query_knobs(
    unsigned sample_size) const {
  RecommendedKnobs rec;
  if (sample_size == 0) return rec;
  // Deterministic strided sample of the live key region (pad slots are
  // the bulk-load gaps — skip them; they are not real keys).
  const std::span<const Key> keys = tree().key_region();
  std::vector<Key> sample;
  sample.reserve(sample_size);
  const std::size_t stride = std::max<std::size_t>(1, keys.size() / sample_size);
  for (std::size_t i = 0; i < keys.size() && sample.size() < sample_size;
       i += stride) {
    if (keys[i] != kPadKey) sample.push_back(keys[i]);
  }
  if (sample.empty()) return rec;
  rec.group_size =
      choose_group_size(tree(), std::span<const Key>(sample), device_.spec())
          .group_size;
  rec.sort_bits = psa_prepare(std::span<const Key>(sample), tree().num_keys(),
                              device_.spec(), PsaMode::kPartial, 0)
                      .sorted_bits;
  return rec;
}

HarmoniaIndex::RangeResult HarmoniaIndex::range_device(std::span<const Key> los,
                                                       std::span<const Key> his,
                                                       unsigned max_results) {
  HARMONIA_CHECK(!los.empty());
  HARMONIA_CHECK(los.size() == his.size());
  auto& mem = device_.memory();
  auto d_lo = mem.malloc<Key>(los.size());
  auto d_hi = mem.malloc<Key>(his.size());
  mem.copy_to_device(d_lo, los);
  mem.copy_to_device(d_hi, his);
  auto d_vals = mem.malloc<Value>(los.size() * max_results);
  auto d_counts = mem.malloc<std::uint32_t>(los.size());

  RangeConfig config;
  config.max_results = max_results;
  const auto stats =
      range_batch(device_, image_, d_lo, d_hi, los.size(), d_vals, d_counts, config);

  RangeResult result;
  result.metrics = stats.metrics;
  result.kernel_seconds = stats.metrics.elapsed_seconds(device_.spec());
  result.total_results = stats.results;

  std::vector<std::uint32_t> counts(los.size());
  mem.copy_to_host(std::span<std::uint32_t>(counts), d_counts);
  std::vector<Value> flat(los.size() * max_results);
  mem.copy_to_host(std::span<Value>(flat), d_vals);
  result.values.resize(los.size());
  for (std::size_t q = 0; q < los.size(); ++q) {
    result.values[q].assign(flat.begin() + static_cast<std::ptrdiff_t>(q * max_results),
                            flat.begin() + static_cast<std::ptrdiff_t>(q * max_results +
                                                                       counts[q]));
  }
  return result;
}

HarmoniaIndex::RangeResult HarmoniaIndex::scan_device(
    std::span<const Key> los, std::span<const std::uint32_t> ns) {
  HARMONIA_CHECK(!los.empty());
  HARMONIA_CHECK(los.size() == ns.size());
  unsigned maxn = 1;
  for (std::uint32_t n : ns) maxn = std::max(maxn, n);
  const std::vector<Key> his(los.size(), kPadKey);
  RangeResult result = range_device(los, his, maxn);
  // The kernel ran with the batch-max cap; each query keeps only its own
  // n and total_results is recomputed so the transfer model charges for
  // the values actually downloaded.
  result.total_results = 0;
  for (std::size_t q = 0; q < ns.size(); ++q) {
    std::vector<Value>& vals = result.values[q];
    if (vals.size() > ns[q]) vals.resize(ns[q]);
    result.total_results += vals.size();
  }
  return result;
}

UpdateStats HarmoniaIndex::update_batch(std::span<const queries::UpdateOp> ops,
                                        unsigned threads) {
  UpdateStats stats;
  if (!overlay_.empty()) {
    // Fold the overlay into the batch ahead of the caller's ops: the full
    // rebuild + resync below subsumes every patch, so the overlay empties.
    std::vector<queries::UpdateOp> fold = overlay_as_ops();
    fold.insert(fold.end(), ops.begin(), ops.end());
    overlay_.clear();
    stats = updater_->apply(fold, threads);
  } else {
    stats = updater_->apply(ops, threads);
  }
  discard_patch();  // superseded by the full resync
  sync_device();
  return stats;
}

HarmoniaIndex::StagedUpdate HarmoniaIndex::stage_update(
    std::span<const queries::UpdateOp> ops, unsigned threads) {
  StagedUpdate staged;
  staged.updater =
      std::make_unique<BatchUpdater>(updater_->tree(), options_.fill_factor);
  staged.stats = staged.updater->apply(ops, threads);
  return staged;
}

void HarmoniaIndex::commit_staged(StagedUpdate&& staged) {
  HARMONIA_CHECK(staged.updater != nullptr);
  static_assert(std::is_nothrow_move_assignable_v<StagedUpdate> &&
                    std::is_nothrow_move_constructible_v<StagedUpdate>,
                "StagedUpdate moves must not throw mid-install");
  // The install proper cannot throw: a failure between the tree swap and
  // the state clear would leave the serving image half-swapped.
  const auto install = [&]() noexcept {
    updater_ = std::move(staged.updater);
    overlay_.clear();
    dirty_key_leaves_.clear();
    dirty_value_leaves_.clear();
    overlay_dirty_ = false;
  };
  install();
  sync_device();
}

HarmoniaIndex::PatchResult HarmoniaIndex::patch_update(
    std::span<const queries::UpdateOp> ops) {
  using queries::OpKind;
  PatchResult result;
  HarmoniaTree& t = updater_->tree_for_patch();

  for (const queries::UpdateOp& op : ops) {
    const auto it = overlay_find(op.key);
    const bool shadowed = it != overlay_.end() && it->key == op.key;

    switch (op.kind) {
      case OpKind::kUpdate: {
        ++result.stats.updates;
        if (shadowed) {
          if (it->tombstone) {
            ++result.stats.failed;  // key is deleted
          } else {
            it->value = op.value;
            overlay_dirty_ = true;
          }
        } else {
          const std::uint32_t leaf = t.find_leaf(op.key);
          if (t.leaf_update_inplace(leaf, op.key, op.value)) {
            dirty_value_leaves_.insert(leaf);
          } else {
            ++result.stats.failed;
          }
        }
        break;
      }

      case OpKind::kInsert: {
        if (shadowed) {
          // Upsert of a patched key, or an un-delete flipping a tombstone
          // back to a live entry (the stale base slot stays shadowed).
          it->value = op.value;
          it->tombstone = false;
          overlay_dirty_ = true;
          ++result.stats.inserts;
        } else {
          const std::uint32_t leaf = t.find_leaf(op.key);
          if (t.leaf_insert_inplace(leaf, op.key, op.value)) {
            dirty_key_leaves_.insert(leaf);
            ++result.stats.inserts;
          } else if (overlay_.size() < options_.overlay_capacity) {
            // Leaf gaps exhausted: absorb into the overlay.
            overlay_.insert(it, OverlayEntry{op.key, op.value, false});
            overlay_dirty_ = true;
            ++result.stats.inserts;
          } else {
            result.exhausted = true;  // needs a compaction epoch
          }
        }
        break;
      }

      case OpKind::kDelete: {
        if (shadowed) {
          ++result.stats.deletes;
          if (it->tombstone) {
            ++result.stats.failed;  // already deleted
          } else if (t.search(op.key).has_value()) {
            // The key also sits (stale) in the base — e.g. after an
            // un-delete. Removing the entry would resurrect it, so
            // re-tombstone instead.
            it->value = Value{0};
            it->tombstone = true;
            overlay_dirty_ = true;
          } else {
            overlay_.erase(it);
            overlay_dirty_ = true;
          }
        } else {
          const std::uint32_t leaf = t.find_leaf(op.key);
          if (!t.search(op.key).has_value()) {
            ++result.stats.deletes;
            ++result.stats.failed;
          } else if (t.node_key_count(leaf) > 1) {
            t.leaf_erase_inplace(leaf, op.key);
            dirty_key_leaves_.insert(leaf);
            ++result.stats.deletes;
          } else if (overlay_.size() < options_.overlay_capacity) {
            // Erasing would empty the leaf (a merge): tombstone the key
            // instead — it stays in the base region but traversal hides it.
            overlay_.insert(it, OverlayEntry{op.key, Value{0}, true});
            overlay_dirty_ = true;
            ++result.stats.deletes;
          } else {
            result.exhausted = true;
          }
        }
        break;
      }
    }

    if (result.exhausted) break;
    ++result.absorbed;
  }

  result.patch_bytes = pending_patch_bytes();
  return result;
}

void HarmoniaIndex::commit_patch() {
  const HarmoniaTree& t = tree();
  const unsigned kpn = t.keys_per_node();
  auto& mem = device_.memory();

  for (const std::uint32_t leaf : dirty_key_leaves_) {
    const std::uint64_t key_base = static_cast<std::uint64_t>(leaf) * kpn;
    mem.write_bytes(image_.node_key_addr(leaf, 0),
                    t.key_region().data() + key_base, kpn * sizeof(Key));
    mem.write_bytes(image_.value_addr(leaf, 0),
                    t.value_region().data() + t.value_slot(leaf, 0),
                    kpn * sizeof(Value));
  }
  for (const std::uint32_t leaf : dirty_value_leaves_) {
    if (dirty_key_leaves_.count(leaf) != 0) continue;
    mem.write_bytes(image_.value_addr(leaf, 0),
                    t.value_region().data() + t.value_slot(leaf, 0),
                    kpn * sizeof(Value));
  }
  if (overlay_dirty_) {
    HARMONIA_CHECK_MSG(!image_.overlay.keys.is_null(),
                       "overlay patches queued without a device overlay "
                       "allocation (set_overlay_capacity was never called)");
    for (std::size_t i = 0; i < overlay_.size(); ++i) {
      mem.write<Key>(image_.overlay.key_addr(static_cast<std::uint32_t>(i)),
                     overlay_[i].key);
      mem.write<Value>(image_.overlay.value_addr(static_cast<std::uint32_t>(i)),
                       overlay_[i].value);
      mem.write<std::uint8_t>(
          image_.overlay.tombstone_addr(static_cast<std::uint32_t>(i)),
          overlay_[i].tombstone ? std::uint8_t{1} : std::uint8_t{0});
    }
    image_.overlay.count = static_cast<std::uint32_t>(overlay_.size());
  }
  // The patched regions bypass the simulated caches' coherence.
  if (patch_pending()) device_.flush_caches();
  dirty_key_leaves_.clear();
  dirty_value_leaves_.clear();
  overlay_dirty_ = false;
}

void HarmoniaIndex::discard_patch() {
  dirty_key_leaves_.clear();
  dirty_value_leaves_.clear();
  overlay_dirty_ = false;
}

std::vector<queries::UpdateOp> HarmoniaIndex::overlay_as_ops() const {
  std::vector<queries::UpdateOp> ops;
  ops.reserve(overlay_.size());
  for (const OverlayEntry& e : overlay_) {
    ops.push_back(e.tombstone
                      ? queries::UpdateOp{queries::OpKind::kDelete, e.key, Value{0}}
                      : queries::UpdateOp{queries::OpKind::kInsert, e.key, e.value});
  }
  return ops;
}

TreeSnapshotExtras HarmoniaIndex::snapshot_extras() const {
  TreeSnapshotExtras ex;
  ex.fill_factor = options_.fill_factor;
  ex.overlay.reserve(overlay_.size());
  for (const OverlayEntry& e : overlay_) {
    ex.overlay.push_back({e.key, e.value, static_cast<std::uint8_t>(e.tombstone ? 1 : 0)});
  }
  return ex;
}

std::size_t HarmoniaIndex::overlay_live_count() const {
  std::size_t live = 0;
  for (const OverlayEntry& e : overlay_) live += e.tombstone ? 0 : 1;
  return live;
}

void HarmoniaIndex::set_overlay_capacity(std::size_t capacity) {
  HARMONIA_CHECK_MSG(capacity >= overlay_.size(),
                     "overlay capacity " << capacity << " below current size "
                                         << overlay_.size());
  options_.overlay_capacity = capacity;
  upload_overlay();
}

std::optional<Value> HarmoniaIndex::search_host(Key key) const {
  const auto it = std::lower_bound(
      overlay_.begin(), overlay_.end(), key,
      [](const OverlayEntry& e, Key k) { return e.key < k; });
  if (it != overlay_.end() && it->key == key) {
    if (it->tombstone) return std::nullopt;
    return it->value;
  }
  return tree().search(key);
}

std::vector<btree::Entry> HarmoniaIndex::range_host(Key lo, Key hi,
                                                    std::size_t limit) const {
  if (overlay_.empty()) return tree().range(lo, hi, limit);
  // Tombstones can only remove overlay_size entries, so a base scan of
  // limit + overlay_size is always enough to fill `limit` merged results.
  const std::size_t base_limit = limit == 0 ? 0 : limit + overlay_.size();
  const std::vector<btree::Entry> base = tree().range(lo, hi, base_limit);

  std::vector<btree::Entry> merged;
  auto oit = std::lower_bound(
      overlay_.begin(), overlay_.end(), lo,
      [](const OverlayEntry& e, Key k) { return e.key < k; });
  const auto full = [&] { return limit != 0 && merged.size() >= limit; };
  for (const btree::Entry& e : base) {
    while (oit != overlay_.end() && oit->key < e.key && !full()) {
      if (!oit->tombstone) merged.push_back({oit->key, oit->value});
      ++oit;
    }
    if (full()) return merged;
    if (oit != overlay_.end() && oit->key == e.key) {
      if (!oit->tombstone) merged.push_back({e.key, oit->value});
      ++oit;  // tombstone: the base entry is hidden
    } else {
      merged.push_back(e);
    }
    if (full()) return merged;
  }
  while (oit != overlay_.end() && oit->key <= hi && !full()) {
    if (!oit->tombstone) merged.push_back({oit->key, oit->value});
    ++oit;
  }
  return merged;
}

void HarmoniaIndex::sync_device() {
  WallTimer timer;
  device_.memory().free_all();
  device_.flush_caches();
  image_ = HarmoniaDeviceImage::upload(device_, updater_->tree(), options_.const_budget_bytes);
  // A full re-upload subsumes any queued patch writes, and the overlay
  // mirror (kept by fault-repair resyncs, emptied by commits) re-uploads
  // so patched keys survive the rebuild.
  discard_patch();
  upload_overlay();
  last_sync_seconds_ = timer.elapsed_seconds();
}

void HarmoniaIndex::upload_overlay() {
  if (options_.overlay_capacity == 0) {
    image_.overlay = DeltaOverlayImage{};
    return;
  }
  auto& mem = device_.memory();
  DeltaOverlayImage ov;
  ov.capacity = static_cast<std::uint32_t>(options_.overlay_capacity);
  ov.keys = mem.malloc<Key>(ov.capacity);
  ov.values = mem.malloc<Value>(ov.capacity);
  ov.tombstones = mem.malloc<std::uint8_t>(ov.capacity);
  if (!overlay_.empty()) {
    std::vector<Key> keys(overlay_.size());
    std::vector<Value> values(overlay_.size());
    std::vector<std::uint8_t> tombs(overlay_.size());
    for (std::size_t i = 0; i < overlay_.size(); ++i) {
      keys[i] = overlay_[i].key;
      values[i] = overlay_[i].value;
      tombs[i] = overlay_[i].tombstone ? 1 : 0;
    }
    mem.copy_to_device(ov.keys, std::span<const Key>(keys));
    mem.copy_to_device(ov.values, std::span<const Value>(values));
    mem.copy_to_device(ov.tombstones, std::span<const std::uint8_t>(tombs));
  }
  ov.count = static_cast<std::uint32_t>(overlay_.size());
  image_.overlay = ov;
  overlay_dirty_ = false;
}

std::vector<HarmoniaIndex::OverlayEntry>::iterator HarmoniaIndex::overlay_find(
    Key key) {
  return std::lower_bound(overlay_.begin(), overlay_.end(), key,
                          [](const OverlayEntry& e, Key k) { return e.key < k; });
}

std::uint64_t HarmoniaIndex::pending_patch_bytes() const {
  const unsigned kpn = tree().keys_per_node();
  std::uint64_t value_only = 0;
  for (const std::uint32_t leaf : dirty_value_leaves_) {
    value_only += dirty_key_leaves_.count(leaf) == 0 ? 1u : 0u;
  }
  std::uint64_t bytes =
      static_cast<std::uint64_t>(dirty_key_leaves_.size()) * kpn *
          (sizeof(Key) + sizeof(Value)) +
      value_only * kpn * sizeof(Value);
  if (overlay_dirty_) {
    bytes += overlay_.size() * (sizeof(Key) + sizeof(Value) + 1) +
             sizeof(std::uint32_t);
  }
  return bytes;
}

}  // namespace harmonia
