#include "harmonia/index.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "common/timer.hpp"
#include "harmonia/ntg.hpp"
#include "harmonia/range.hpp"

namespace harmonia {

HarmoniaIndex::HarmoniaIndex(gpusim::Device& device, HarmoniaTree tree,
                             const Options& options)
    : device_(device),
      options_(options),
      updater_(std::make_unique<BatchUpdater>(std::move(tree))),
      image_(HarmoniaDeviceImage::upload(device, updater_->tree(),
                                         options.const_budget_bytes)) {}

HarmoniaIndex HarmoniaIndex::build(gpusim::Device& device,
                                   std::span<const btree::Entry> entries,
                                   const Options& options) {
  btree::BTree builder(options.fanout);
  builder.bulk_load(entries, options.fill_factor);
  return HarmoniaIndex(device, HarmoniaTree::from_btree(builder), options);
}

HarmoniaIndex::QueryResult HarmoniaIndex::search(std::span<const Key> batch,
                                                 const QueryOptions& qopts) {
  HARMONIA_CHECK(!batch.empty());
  QueryResult result;

  // PSA: decide issue order and the simulated sort cost (§4.1).
  PsaPlan plan = psa_prepare(batch, tree().num_keys(), device_.spec(), qopts.psa,
                             qopts.psa_override_bits);
  result.sorted_bits = plan.sorted_bits;
  result.sort_cycles = plan.sort_cycles;
  result.sort_seconds = plan.sort_seconds(device_.spec());

  // NTG: group size from the static-profiling model (§4.2).
  SearchConfig config;
  config.early_exit = qopts.early_exit;
  config.group_size = qopts.group_size;
  if (qopts.auto_ntg && qopts.group_size == 0) {
    const std::size_t sample =
        std::min<std::size_t>(qopts.ntg_profile_sample, plan.queries.size());
    const NtgChoice choice = choose_group_size(
        tree(), std::span<const Key>(plan.queries.data(), sample), device_.spec());
    config.group_size = choice.group_size;
  }
  result.group_size_used =
      resolve_group_size(device_.spec(), tree().fanout(), config.group_size);

  // Upload the batch, run the kernel, fetch results.
  auto& mem = device_.memory();
  auto d_queries = mem.malloc<Key>(plan.queries.size());
  mem.copy_to_device(d_queries, std::span<const Key>(plan.queries));
  auto d_out = mem.malloc<Value>(plan.queries.size());

  result.search = search_batch(device_, image_, d_queries, plan.queries.size(), d_out,
                               config);
  result.kernel_seconds = result.search.metrics.elapsed_seconds(device_.spec());

  std::vector<Value> issue_order(plan.queries.size());
  mem.copy_to_host(std::span<Value>(issue_order), d_out);
  result.values.resize(batch.size());
  psa_restore(plan, issue_order, result.values);
  return result;
}

HarmoniaIndex::RangeResult HarmoniaIndex::range_device(std::span<const Key> los,
                                                       std::span<const Key> his,
                                                       unsigned max_results) {
  HARMONIA_CHECK(!los.empty());
  HARMONIA_CHECK(los.size() == his.size());
  auto& mem = device_.memory();
  auto d_lo = mem.malloc<Key>(los.size());
  auto d_hi = mem.malloc<Key>(his.size());
  mem.copy_to_device(d_lo, los);
  mem.copy_to_device(d_hi, his);
  auto d_vals = mem.malloc<Value>(los.size() * max_results);
  auto d_counts = mem.malloc<std::uint32_t>(los.size());

  RangeConfig config;
  config.max_results = max_results;
  const auto stats =
      range_batch(device_, image_, d_lo, d_hi, los.size(), d_vals, d_counts, config);

  RangeResult result;
  result.metrics = stats.metrics;
  result.kernel_seconds = stats.metrics.elapsed_seconds(device_.spec());
  result.total_results = stats.results;

  std::vector<std::uint32_t> counts(los.size());
  mem.copy_to_host(std::span<std::uint32_t>(counts), d_counts);
  std::vector<Value> flat(los.size() * max_results);
  mem.copy_to_host(std::span<Value>(flat), d_vals);
  result.values.resize(los.size());
  for (std::size_t q = 0; q < los.size(); ++q) {
    result.values[q].assign(flat.begin() + static_cast<std::ptrdiff_t>(q * max_results),
                            flat.begin() + static_cast<std::ptrdiff_t>(q * max_results +
                                                                       counts[q]));
  }
  return result;
}

HarmoniaIndex::RangeResult HarmoniaIndex::scan_device(
    std::span<const Key> los, std::span<const std::uint32_t> ns) {
  HARMONIA_CHECK(!los.empty());
  HARMONIA_CHECK(los.size() == ns.size());
  unsigned maxn = 1;
  for (std::uint32_t n : ns) maxn = std::max(maxn, n);
  const std::vector<Key> his(los.size(), kPadKey);
  RangeResult result = range_device(los, his, maxn);
  // The kernel ran with the batch-max cap; each query keeps only its own
  // n and total_results is recomputed so the transfer model charges for
  // the values actually downloaded.
  result.total_results = 0;
  for (std::size_t q = 0; q < ns.size(); ++q) {
    std::vector<Value>& vals = result.values[q];
    if (vals.size() > ns[q]) vals.resize(ns[q]);
    result.total_results += vals.size();
  }
  return result;
}

UpdateStats HarmoniaIndex::update_batch(std::span<const queries::UpdateOp> ops,
                                        unsigned threads) {
  UpdateStats stats = updater_->apply(ops, threads);
  sync_device();
  return stats;
}

HarmoniaIndex::StagedUpdate HarmoniaIndex::stage_update(
    std::span<const queries::UpdateOp> ops, unsigned threads) {
  StagedUpdate staged;
  staged.updater = std::make_unique<BatchUpdater>(updater_->tree());
  staged.stats = staged.updater->apply(ops, threads);
  return staged;
}

void HarmoniaIndex::commit_staged(StagedUpdate&& staged) {
  HARMONIA_CHECK(staged.updater != nullptr);
  updater_ = std::move(staged.updater);
  sync_device();
}

void HarmoniaIndex::sync_device() {
  WallTimer timer;
  device_.memory().free_all();
  device_.flush_caches();
  image_ = HarmoniaDeviceImage::upload(device_, updater_->tree(), options_.const_budget_bytes);
  last_sync_seconds_ = timer.elapsed_seconds();
}

}  // namespace harmonia
