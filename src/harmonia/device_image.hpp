// Placement of a HarmoniaTree in simulated GPU memory (§3.1):
//  - key region and value region -> global memory (read through the
//    per-SM read-only cache during traversal),
//  - prefix-sum child region -> the top levels go to constant memory
//    (64 KB budget), the rest stays in global memory and streams through
//    the read-only cache.
#pragma once

#include <cstdint>

#include "gpusim/device.hpp"
#include "harmonia/tree.hpp"

namespace harmonia {

/// Bounded device-resident delta overlay (docs/serving.md#epoch-pipeline):
/// a small sorted array of (key, value, tombstone) patches consulted by
/// the search/range kernels before the base image. A live entry serves
/// `value` for a key absent from (or shadowing) the base key region; a
/// tombstone hides a key still physically present in the base. The host
/// keeps the authoritative mirror (HarmoniaIndex); the arrays here are
/// rewritten wholesale by commit_patch when the mirror is dirty.
struct DeltaOverlayImage {
  gpusim::DevPtr<Key> keys;
  gpusim::DevPtr<Value> values;
  gpusim::DevPtr<std::uint8_t> tombstones;
  std::uint32_t count = 0;
  std::uint32_t capacity = 0;

  std::uint64_t key_addr(std::uint32_t i) const { return keys.element_addr(i); }
  std::uint64_t value_addr(std::uint32_t i) const { return values.element_addr(i); }
  std::uint64_t tombstone_addr(std::uint32_t i) const {
    return tombstones.element_addr(i);
  }
};

struct HarmoniaDeviceImage {
  unsigned fanout = 0;
  unsigned height = 0;
  std::uint32_t num_nodes = 0;
  std::uint32_t first_leaf = 0;

  gpusim::DevPtr<Key> key_region;
  gpusim::DevPtr<Value> value_region;
  /// prefix_sum[0 .. ps_const_count) — complete top levels — in constant
  /// memory; the full array is mirrored in global memory for the rest.
  gpusim::DevPtr<std::uint32_t> ps_const;
  gpusim::DevPtr<std::uint32_t> ps_global;
  std::uint32_t ps_const_count = 0;

  /// Incremental-update patches layered over the base regions. Empty
  /// (count == 0) unless the owning index enabled an overlay capacity;
  /// kernels skip the probe entirely in that case.
  DeltaOverlayImage overlay;

  unsigned keys_per_node() const { return fanout - 1; }

  /// Address of prefix_sum[node], routed to the right memory space.
  std::uint64_t ps_addr(std::uint32_t node) const {
    return node < ps_const_count ? ps_const.element_addr(node)
                                 : ps_global.element_addr(node);
  }

  std::uint64_t node_key_addr(std::uint32_t node, unsigned slot) const {
    return key_region.element_addr(
        static_cast<std::uint64_t>(node) * keys_per_node() + slot);
  }

  std::uint64_t value_addr(std::uint32_t leaf_node, unsigned slot) const {
    return value_region.element_addr(
        static_cast<std::uint64_t>(leaf_node - first_leaf) * keys_per_node() + slot);
  }

  /// Uploads `tree` into `device` memory. `const_budget_bytes` caps how
  /// much of the prefix-sum array goes to constant memory (whole levels
  /// only); the default leaves headroom in the 64 KB segment.
  static HarmoniaDeviceImage upload(gpusim::Device& device, const HarmoniaTree& tree,
                                    std::uint64_t const_budget_bytes = 60 << 10);
};

}  // namespace harmonia
