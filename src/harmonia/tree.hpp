// The Harmonia tree structure (§3.1, Figure 4b): a breadth-first *key
// region* of fixed-size node records and a *prefix-sum child region*.
//
// Key region: node i occupies slots [i*(fanout-1), (i+1)*(fanout-1)) of a
// flat key array, padded with kPadKey beyond the node's real keys. Nodes
// are laid out level by level, left to right (BFS), so each level — and in
// particular the leaf level — is a consecutive, sorted array (which is what
// makes range scans a linear walk).
//
// Child region: prefix_sum[i] is the BFS index of node i's first child
// (Equation 1: child_idx = prefix_sum[node] + i - 1, with 1-based i; we use
// the 0-based form child = prefix_sum[node] + separators_leq_target).
// prefix_sum has num_nodes + 1 entries so a node's child count is
// prefix_sum[i+1] - prefix_sum[i]; leaves get prefix_sum[i] = num_nodes,
// keeping the difference property intact across the internal/leaf boundary.
//
// Values: a parallel value region for the leaf level, slot-aligned with the
// leaf keys.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "btree/btree.hpp"

namespace harmonia {

using Key = std::uint64_t;
using Value = std::uint64_t;

/// Pad for unused key slots; larger than any valid key, so padded slots
/// never count as "separator <= target" and never match an equality probe.
inline constexpr Key kPadKey = ~Key{0};

/// Serving-layer sidecar carried by a v2 tree image: everything beyond
/// the raw regions a cold start must restore to resume serving exactly
/// where the crashed process stopped — the bulk-load/compaction fill
/// target (the gapped key region's headroom) and the delta-overlay
/// contents (patched keys and tombstones not yet folded into the base).
/// v1 images decode with the defaults below (no overlay, default fill).
struct TreeSnapshotExtras {
  struct OverlayRecord {
    Key key = 0;
    Value value = 0;
    std::uint8_t tombstone = 0;  // 1 = key hidden, 0 = value shadows base
  };

  double fill_factor = 0.69;
  /// Strictly ascending by key; never contains kPadKey.
  std::vector<OverlayRecord> overlay;
};

class HarmoniaTree {
 public:
  /// Serializes a regular B+tree (Figure 4a -> 4b): same nodes, same key
  /// placement, child pointers replaced by the prefix-sum array.
  static HarmoniaTree from_btree(const btree::BTree& tree);

  /// Builds directly from leaf-level contents: `leaves[i]` holds one leaf's
  /// (key, value) entries (sorted, non-empty, globally ascending). Internal
  /// levels are derived. Used by the batch updater's post-batch rebuild.
  static HarmoniaTree from_leaves(std::vector<std::vector<btree::Entry>> leaves,
                                  unsigned fanout);

  unsigned fanout() const { return fanout_; }
  unsigned height() const { return static_cast<unsigned>(level_start_.size()); }
  std::uint32_t num_nodes() const { return num_nodes_; }
  std::uint32_t num_leaves() const { return num_nodes_ - first_leaf_; }
  std::uint32_t first_leaf_index() const { return first_leaf_; }
  std::uint64_t num_keys() const { return num_keys_; }
  unsigned keys_per_node() const { return fanout_ - 1; }

  /// BFS index of the first node of `level` (root = level 0).
  std::uint32_t level_start(unsigned level) const;

  std::span<const Key> key_region() const { return key_region_; }
  std::span<const std::uint32_t> prefix_sum() const { return prefix_sum_; }
  std::span<const Value> value_region() const { return value_region_; }

  /// Keys of node i (all fanout-1 slots, pads included).
  std::span<const Key> node_keys(std::uint32_t node) const;
  /// Real (non-pad) key count of node i.
  unsigned node_key_count(std::uint32_t node) const;
  std::uint32_t child_count(std::uint32_t node) const;
  bool is_leaf(std::uint32_t node) const { return node >= first_leaf_; }

  /// Value slot (index into value_region) for leaf `node`, key slot `slot`.
  std::uint64_t value_slot(std::uint32_t node, unsigned slot) const;

  /// Host-side point lookup via Equation 1 — the reference implementation
  /// the device kernels are tested against.
  std::optional<Value> search(Key key) const;

  /// Host-side range scan over the consecutive leaf level (§3.2.1):
  /// locate the first leaf slot >= lo, then walk the key region linearly.
  std::vector<btree::Entry> range(Key lo, Key hi, std::size_t limit = 0) const;

  /// Leaf BFS index whose key range contains `key`.
  std::uint32_t find_leaf(Key key) const;

  /// Structural invariant checker; throws ContractViolation on corruption.
  void validate() const;

  // --- In-place leaf mutation (the batch updater's fine-grained path:
  // §3.2.2 updates "without split or merge"; separators above the leaf
  // stay valid because routing bounds are unaffected). ---

  /// Overwrites the value of `key` in `leaf`; false if the key is absent.
  bool leaf_update_inplace(std::uint32_t leaf, Key key, Value value);
  /// Inserts (key, value) into `leaf`, shifting slots right; false if the
  /// leaf is full (caller must take the split path) or the key exists
  /// (overwritten, still returns true).
  bool leaf_insert_inplace(std::uint32_t leaf, Key key, Value value);
  /// Removes `key` from `leaf`, shifting slots left; false if absent.
  /// The caller must not empty a leaf (merge path handles that).
  bool leaf_erase_inplace(std::uint32_t leaf, Key key);

  /// Entries currently stored in `leaf` (sorted).
  std::vector<btree::Entry> leaf_entries(std::uint32_t leaf) const;

  // --- Persistence: versioned binary image with a checksum trailer.
  // A database/file-system index must survive restarts; the format stores
  // the regions verbatim, so load is one validate() away from use.
  // Format v2 (docs/persistence_format.md) appends a TreeSnapshotExtras
  // section under the same FNV checksum; v1 images still load (extras
  // take their defaults). Every header field and section length is
  // validated before use, so a truncated or bit-flipped image always
  // throws ContractViolation — load never partially constructs a tree. ---
  void save(std::ostream& os) const;
  void save(std::ostream& os, const TreeSnapshotExtras& extras) const;
  static HarmoniaTree load(std::istream& is, TreeSnapshotExtras* extras = nullptr);

 private:
  HarmoniaTree() = default;

  unsigned fanout_ = 0;
  std::uint32_t num_nodes_ = 0;
  std::uint32_t first_leaf_ = 0;
  std::uint64_t num_keys_ = 0;
  std::vector<std::uint32_t> level_start_;  // BFS index of each level's first node
  std::vector<Key> key_region_;
  std::vector<std::uint32_t> prefix_sum_;  // num_nodes_ + 1 entries
  std::vector<Value> value_region_;        // num_leaves * (fanout-1) slots
};

}  // namespace harmonia
