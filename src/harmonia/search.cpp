#include "harmonia/search.hpp"

#include <array>
#include <atomic>
#include <bit>

#include "common/expect.hpp"

namespace harmonia {

using gpusim::LaneMask;

unsigned resolve_group_size(const gpusim::DeviceSpec& spec, unsigned fanout,
                            unsigned requested) {
  if (requested == 0) {
    // Traditional fanout-based group: fanout threads per query, capped at
    // the warp (footnote 2 of the paper).
    requested = std::min(std::bit_ceil(fanout), spec.warp_size);
  }
  HARMONIA_CHECK_MSG(std::has_single_bit(requested), "group_size must be a power of two");
  HARMONIA_CHECK_MSG(requested <= spec.warp_size, "group_size exceeds warp size");
  return requested;
}

SearchStats search_batch(gpusim::Device& device, const HarmoniaDeviceImage& image,
                         gpusim::DevPtr<Key> queries, std::uint64_t n,
                         gpusim::DevPtr<Value> out_values, const SearchConfig& config) {
  HARMONIA_CHECK(n > 0);
  HARMONIA_CHECK(image.num_nodes > 0);
  const gpusim::DeviceSpec& spec = device.spec();
  const unsigned warp = spec.warp_size;
  const unsigned gs = resolve_group_size(spec, image.fanout, config.group_size);
  const unsigned qpw = warp / gs;
  const unsigned kpn = image.keys_per_node();
  const unsigned chunks_per_node = (kpn + gs - 1) / gs;
  const std::uint64_t num_warps = (n + qpw - 1) / qpw;

  std::uint64_t chunk_steps_total = 0;

  auto kernel = [&](gpusim::WarpCtx& w) {
    const std::uint64_t base = w.warp_id() * qpw;
    const unsigned nq = static_cast<unsigned>(std::min<std::uint64_t>(qpw, n - base));

    std::array<std::uint64_t, 32> addrs{};
    std::array<Key, 32> lane_keys{};
    std::array<Key, 32> target{};          // per group
    std::array<std::uint32_t, 32> node{};  // per group, BFS index
    std::array<std::uint32_t, 32> ps{};    // per group, prefix-sum value
    std::array<unsigned, 32> sep_leq{};    // per group, separators <= target
    std::array<bool, 32> group_done{};
    std::array<bool, 32> found{};
    std::array<unsigned, 32> found_slot{};

    // Load this warp's queries: the leader lane of each group issues the
    // read; the values then broadcast within the group (register shuffle).
    LaneMask leader_mask = 0;
    for (unsigned g = 0; g < nq; ++g) {
      leader_mask |= gpusim::lane_bit(g * gs);
      addrs[g * gs] = queries.element_addr(base + g);
    }
    {
      std::array<Key, 32> qvals{};
      if (config.account_query_load) {
        w.gather<Key>(leader_mask, std::span(addrs.data(), warp), qvals);
      } else {
        for (unsigned g = 0; g < nq; ++g) {
          qvals[g * gs] = device.memory().read<Key>(addrs[g * gs]);
        }
      }
      for (unsigned g = 0; g < nq; ++g) target[g] = qvals[g * gs];
      w.compute(leader_mask);  // broadcast/setup
    }

    for (unsigned g = 0; g < nq; ++g) node[g] = 0;

    // Delta-overlay probe (incremental updates): before traversal, each
    // group's leader binary-searches the small sorted patch array in
    // lockstep — one leader-lane gather per probe step, log2(count)
    // steps. A hit resolves the query right here (live entry -> its
    // value, tombstone -> not-found) and the group skips the tree walk.
    std::array<bool, 32> resolved{};
    std::array<Value, 32> res_val{};
    const DeltaOverlayImage& ov = image.overlay;
    if (ov.count > 0) {
      std::array<std::uint32_t, 32> olo{};
      std::array<std::uint32_t, 32> ohi{};
      for (unsigned g = 0; g < nq; ++g) {
        olo[g] = 0;
        ohi[g] = ov.count;
      }
      for (;;) {
        LaneMask mask = 0;
        for (unsigned g = 0; g < nq; ++g) {
          if (olo[g] >= ohi[g]) continue;
          mask |= gpusim::lane_bit(g * gs);
          addrs[g * gs] = ov.key_addr((olo[g] + ohi[g]) / 2);
        }
        if (mask == 0) break;
        w.gather<Key>(mask, std::span(addrs.data(), warp), lane_keys);
        w.compute(mask);
        for (unsigned g = 0; g < nq; ++g) {
          if (olo[g] >= ohi[g]) continue;
          const std::uint32_t mid = (olo[g] + ohi[g]) / 2;
          if (lane_keys[g * gs] < target[g]) {
            olo[g] = mid + 1;
          } else {
            ohi[g] = mid;
          }
        }
      }
      // Equality probe at the lower bound, then tombstone + value fetch
      // for the hit groups.
      LaneMask probe = 0;
      for (unsigned g = 0; g < nq; ++g) {
        if (olo[g] >= ov.count) continue;
        probe |= gpusim::lane_bit(g * gs);
        addrs[g * gs] = ov.key_addr(olo[g]);
      }
      if (probe != 0) {
        w.gather<Key>(probe, std::span(addrs.data(), warp), lane_keys);
        w.compute(probe);
        LaneMask hitm = 0;
        for (unsigned g = 0; g < nq; ++g) {
          if (olo[g] >= ov.count || lane_keys[g * gs] != target[g]) continue;
          hitm |= gpusim::lane_bit(g * gs);
          addrs[g * gs] = ov.tombstone_addr(olo[g]);
        }
        if (hitm != 0) {
          std::array<std::uint8_t, 32> tombs{};
          w.gather<std::uint8_t>(hitm, std::span(addrs.data(), warp), tombs);
          LaneMask livem = 0;
          for (unsigned g = 0; g < nq; ++g) {
            if (!gpusim::lane_active(hitm, g * gs) || tombs[g * gs] != 0) continue;
            livem |= gpusim::lane_bit(g * gs);
            addrs[g * gs] = ov.value_addr(olo[g]);
          }
          std::array<Value, 32> ovals{};
          if (livem != 0) {
            w.gather<Value>(livem, std::span(addrs.data(), warp), ovals);
          }
          w.compute(hitm);
          for (unsigned g = 0; g < nq; ++g) {
            if (!gpusim::lane_active(hitm, g * gs)) continue;
            resolved[g] = true;
            res_val[g] = tombs[g * gs] != 0 ? kNotFound : ovals[g * gs];
          }
        }
      }
    }

    for (unsigned level = 0; level < image.height; ++level) {
      const bool leaf_level = (level + 1 == image.height);
      for (unsigned g = 0; g < nq; ++g) {
        group_done[g] = false;
        sep_leq[g] = 0;
      }

      // Chunked key scan of each group's current node.
      for (unsigned chunk = 0; chunk < chunks_per_node; ++chunk) {
        LaneMask mask = 0;
        for (unsigned g = 0; g < nq; ++g) {
          if (resolved[g] || (config.early_exit && group_done[g])) continue;
          for (unsigned j = 0; j < gs; ++j) {
            const unsigned slot = chunk * gs + j;
            if (slot >= kpn) break;
            const unsigned lane = g * gs + j;
            mask |= gpusim::lane_bit(lane);
            addrs[lane] = image.node_key_addr(node[g], slot);
          }
        }
        if (mask == 0) break;
        w.gather<Key>(mask, std::span(addrs.data(), warp), lane_keys);
        w.compute(mask);  // the SIMT comparison step
        ++chunk_steps_total;

        for (unsigned g = 0; g < nq; ++g) {
          if (resolved[g] || (config.early_exit && group_done[g])) continue;
          for (unsigned j = 0; j < gs; ++j) {
            const unsigned slot = chunk * gs + j;
            if (slot >= kpn) {
              group_done[g] = true;
              break;
            }
            const Key k = lane_keys[g * gs + j];
            if (leaf_level) {
              if (k == target[g]) {
                found[g] = true;
                found_slot[g] = slot;
                group_done[g] = true;
                break;
              }
              if (k > target[g]) {  // sorted: target cannot appear later
                group_done[g] = true;
                break;
              }
            } else {
              if (k <= target[g]) {
                ++sep_leq[g];
              } else {  // boundary: first separator > target
                group_done[g] = true;
                break;
              }
            }
          }
          if (chunk + 1 == chunks_per_node) group_done[g] = true;
        }
      }

      if (!leaf_level) {
        // Equation 1: child = prefix_sum[node] + separators_leq. The
        // leader lane fetches the prefix-sum entry (constant memory for
        // top levels, read-only cache below).
        LaneMask mask = 0;
        for (unsigned g = 0; g < nq; ++g) {
          if (resolved[g]) continue;
          mask |= gpusim::lane_bit(g * gs);
          addrs[g * gs] = image.ps_addr(node[g]);
        }
        if (mask != 0) {
          std::array<std::uint32_t, 32> ps_vals{};
          w.gather<std::uint32_t>(mask, std::span(addrs.data(), warp), ps_vals);
          w.compute(mask);  // index arithmetic
          for (unsigned g = 0; g < nq; ++g) {
            if (resolved[g]) continue;
            ps[g] = ps_vals[g * gs];
            node[g] = ps[g] + sep_leq[g];
          }
        }
      }
    }

    // Fetch values for hits and write results.
    LaneMask hit_mask = 0;
    std::array<Value, 32> vals{};
    for (unsigned g = 0; g < nq; ++g) {
      if (found[g]) {
        hit_mask |= gpusim::lane_bit(g * gs);
        addrs[g * gs] = image.value_addr(node[g], found_slot[g]);
      }
    }
    if (hit_mask != 0) {
      w.gather<Value>(hit_mask, std::span(addrs.data(), warp), vals);
    }
    LaneMask out_mask = 0;
    std::array<Value, 32> out_vals{};
    for (unsigned g = 0; g < nq; ++g) {
      const unsigned lane = g * gs;
      out_mask |= gpusim::lane_bit(lane);
      addrs[lane] = out_values.element_addr(base + g);
      out_vals[lane] =
          resolved[g] ? res_val[g] : (found[g] ? vals[lane] : kNotFound);
    }
    w.scatter<Value>(out_mask, std::span(addrs.data(), warp),
                     std::span<const Value>(out_vals.data(), warp));
  };

  SearchStats stats;
  stats.metrics = device.launch(num_warps, kernel);
  stats.queries = n;
  stats.warps = num_warps;
  stats.chunk_steps = chunk_steps_total;
  return stats;
}

}  // namespace harmonia
