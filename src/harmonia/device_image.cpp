#include "harmonia/device_image.hpp"

#include "common/expect.hpp"

namespace harmonia {

HarmoniaDeviceImage HarmoniaDeviceImage::upload(gpusim::Device& device,
                                                const HarmoniaTree& tree,
                                                std::uint64_t const_budget_bytes) {
  HarmoniaDeviceImage img;
  img.fanout = tree.fanout();
  img.height = tree.height();
  img.num_nodes = tree.num_nodes();
  img.first_leaf = tree.first_leaf_index();

  auto& mem = device.memory();

  img.key_region = mem.malloc<Key>(tree.key_region().size());
  mem.copy_to_device(img.key_region, tree.key_region());

  if (!tree.value_region().empty()) {
    img.value_region = mem.malloc<Value>(tree.value_region().size());
    mem.copy_to_device(img.value_region, tree.value_region());
  }

  img.ps_global = mem.malloc<std::uint32_t>(tree.prefix_sum().size());
  mem.copy_to_device(img.ps_global, tree.prefix_sum());

  // Constant placement: as many complete top levels of the prefix-sum
  // array as fit the budget (and the device's constant segment).
  const std::uint64_t budget =
      std::min<std::uint64_t>(const_budget_bytes,
                              mem.const_capacity() - mem.const_used());
  std::uint32_t const_count = 0;
  for (unsigned level = 0; level + 1 <= tree.height(); ++level) {
    const std::uint32_t end = level + 1 < tree.height()
                                  ? tree.level_start(level + 1)
                                  : tree.num_nodes();
    if (static_cast<std::uint64_t>(end) * sizeof(std::uint32_t) > budget) break;
    const_count = end;
  }
  if (const_count > 0) {
    img.ps_const = mem.const_malloc<std::uint32_t>(const_count);
    mem.copy_to_device(img.ps_const, tree.prefix_sum().subspan(0, const_count));
    img.ps_const_count = const_count;
  }
  return img;
}

}  // namespace harmonia
