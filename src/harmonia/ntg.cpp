#include "harmonia/ntg.hpp"

#include <algorithm>
#include <bit>

#include "common/expect.hpp"
#include "harmonia/search.hpp"

namespace harmonia {

namespace {

/// Chunk-scan steps a group of `gs` lanes needs on `node` for `key`: the
/// boundary (first slot whose key > target, or the slot count) determines
/// how many gs-wide chunks the early-exit scan touches.
unsigned steps_for_node(const HarmoniaTree& tree, std::uint32_t node, Key key, unsigned gs) {
  const auto keys = tree.node_keys(node);
  const auto it = std::upper_bound(keys.begin(), keys.end(), key);
  const auto boundary = static_cast<unsigned>(it - keys.begin());
  const unsigned kpn = static_cast<unsigned>(keys.size());
  const unsigned max_chunks = (kpn + gs - 1) / gs;
  return std::min(boundary / gs + 1, max_chunks);
}

}  // namespace

double profile_avg_max_steps(const HarmoniaTree& tree, std::span<const Key> sample,
                             const gpusim::DeviceSpec& spec, unsigned group_size) {
  HARMONIA_CHECK(!sample.empty());
  HARMONIA_CHECK(std::has_single_bit(group_size) && group_size <= spec.warp_size);
  const unsigned qpw = spec.warp_size / group_size;
  const unsigned height = tree.height();

  std::uint64_t total_steps = 0;
  std::uint64_t warp_levels = 0;
  std::vector<std::uint32_t> node(qpw);
  for (std::size_t base = 0; base < sample.size(); base += qpw) {
    const auto nq =
        static_cast<unsigned>(std::min<std::size_t>(qpw, sample.size() - base));
    std::fill(node.begin(), node.end(), 0);
    for (unsigned level = 0; level < height; ++level) {
      unsigned warp_max = 0;
      for (unsigned g = 0; g < nq; ++g) {
        warp_max = std::max(warp_max,
                            steps_for_node(tree, node[g], sample[base + g], group_size));
        if (level + 1 < height) {
          const auto keys = tree.node_keys(node[g]);
          const auto it = std::upper_bound(keys.begin(), keys.end(), sample[base + g]);
          node[g] = tree.prefix_sum()[node[g]] +
                    static_cast<std::uint32_t>(it - keys.begin());
        }
      }
      total_steps += warp_max;
      ++warp_levels;
    }
  }
  return static_cast<double>(total_steps) / static_cast<double>(warp_levels);
}

NtgChoice choose_group_size(const HarmoniaTree& tree, std::span<const Key> sample,
                            const gpusim::DeviceSpec& spec) {
  NtgChoice choice;
  const unsigned widest = resolve_group_size(spec, tree.fanout(), 0);

  for (unsigned gs = widest; gs >= 1; gs /= 2) {
    NtgCandidate cand;
    cand.group_size = gs;
    cand.avg_max_steps = profile_avg_max_steps(tree, sample, spec, gs);
    choice.candidates.push_back(cand);
    if (gs == 1) break;
  }

  // predicted_speedup of candidate i relative to the widest group:
  // TP ∝ 1 / (S * GS)  (Equation 3 with T ∝ S).
  const double base_cost = choice.candidates.front().avg_max_steps *
                           static_cast<double>(choice.candidates.front().group_size);
  for (auto& cand : choice.candidates) {
    cand.predicted_speedup =
        base_cost / (cand.avg_max_steps * static_cast<double>(cand.group_size));
  }

  // Equation 4 narrowing rule: accept each halving while it still predicts
  // a gain ((Sb/Sa) * G > 1); stop at the first loss.
  choice.group_size = widest;
  for (std::size_t i = 1; i < choice.candidates.size(); ++i) {
    const double sb = choice.candidates[i - 1].avg_max_steps;
    const double sa = choice.candidates[i].avg_max_steps;
    const double g = static_cast<double>(choice.candidates[i - 1].group_size) /
                     static_cast<double>(choice.candidates[i].group_size);
    if ((sb / sa) * g > 1.0) {
      choice.group_size = choice.candidates[i].group_size;
    } else {
      break;
    }
  }
  return choice;
}

}  // namespace harmonia
