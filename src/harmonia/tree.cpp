#include "harmonia/tree.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/expect.hpp"

namespace harmonia {

namespace {

/// Number of separators <= key among the fanout-1 slots of a node record.
/// Pad slots hold kPadKey, which compares greater than every valid key, so
/// they never count — no per-node key count is needed during traversal,
/// exactly as in the device kernels.
unsigned separators_leq(std::span<const Key> slots, Key key) {
  const auto it = std::upper_bound(slots.begin(), slots.end(), key);
  return static_cast<unsigned>(it - slots.begin());
}

}  // namespace

std::uint32_t HarmoniaTree::level_start(unsigned level) const {
  HARMONIA_CHECK(level < level_start_.size());
  return level_start_[level];
}

std::span<const Key> HarmoniaTree::node_keys(std::uint32_t node) const {
  HARMONIA_CHECK(node < num_nodes_);
  return std::span<const Key>(key_region_).subspan(
      static_cast<std::size_t>(node) * keys_per_node(), keys_per_node());
}

unsigned HarmoniaTree::node_key_count(std::uint32_t node) const {
  const auto keys = node_keys(node);
  unsigned count = 0;
  while (count < keys.size() && keys[count] != kPadKey) ++count;
  return count;
}

std::uint32_t HarmoniaTree::child_count(std::uint32_t node) const {
  HARMONIA_CHECK(node < num_nodes_);
  return prefix_sum_[node + 1] - prefix_sum_[node];
}

std::uint64_t HarmoniaTree::value_slot(std::uint32_t node, unsigned slot) const {
  HARMONIA_CHECK(is_leaf(node));
  HARMONIA_CHECK(slot < keys_per_node());
  return static_cast<std::uint64_t>(node - first_leaf_) * keys_per_node() + slot;
}

std::uint32_t HarmoniaTree::find_leaf(Key key) const {
  HARMONIA_CHECK(num_nodes_ > 0);
  HARMONIA_CHECK_MSG(key != kPadKey, "kPadKey is reserved");
  std::uint32_t node = 0;
  for (unsigned level = 0; level + 1 < height(); ++level) {
    const unsigned i = separators_leq(node_keys(node), key);
    node = prefix_sum_[node] + i;
  }
  return node;
}

std::optional<Value> HarmoniaTree::search(Key key) const {
  if (num_nodes_ == 0 || key == kPadKey) return std::nullopt;
  const std::uint32_t leaf = find_leaf(key);
  const auto keys = node_keys(leaf);
  const auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return std::nullopt;
  const auto slot = static_cast<unsigned>(it - keys.begin());
  return value_region_[value_slot(leaf, slot)];
}

std::vector<btree::Entry> HarmoniaTree::range(Key lo, Key hi, std::size_t limit) const {
  std::vector<btree::Entry> out;
  if (num_nodes_ == 0 || lo > hi) return out;
  std::uint32_t leaf = find_leaf(lo);
  // Walk the consecutive leaf level of the key region (§3.2.1).
  for (; leaf < num_nodes_; ++leaf) {
    const auto keys = node_keys(leaf);
    for (unsigned s = 0; s < keys.size(); ++s) {
      if (keys[s] == kPadKey) break;  // node tail
      if (keys[s] < lo) continue;
      if (keys[s] > hi) return out;
      out.push_back({keys[s], value_region_[value_slot(leaf, s)]});
      if (limit != 0 && out.size() >= limit) return out;
    }
  }
  return out;
}

HarmoniaTree HarmoniaTree::from_btree(const btree::BTree& tree) {
  const auto levels = tree.levels();
  HARMONIA_CHECK_MSG(!levels.empty(), "cannot serialize an empty B+tree");

  HarmoniaTree out;
  out.fanout_ = tree.fanout();
  const unsigned kpn = out.fanout_ - 1;

  std::uint32_t total = 0;
  for (const auto& level : levels) {
    out.level_start_.push_back(total);
    total += static_cast<std::uint32_t>(level.size());
  }
  out.num_nodes_ = total;
  out.first_leaf_ = out.level_start_.back();
  out.num_keys_ = tree.size();

  out.key_region_.assign(static_cast<std::size_t>(total) * kpn, kPadKey);
  out.prefix_sum_.assign(total + 1, total);
  out.value_region_.assign(
      static_cast<std::size_t>(total - out.first_leaf_) * kpn, Value{0});

  std::uint32_t bfs = 0;
  std::uint32_t next_child = 1;
  for (const auto& level : levels) {
    for (const btree::Node* node : level) {
      Key* slots = out.key_region_.data() + static_cast<std::size_t>(bfs) * kpn;
      std::copy(node->keys.begin(), node->keys.end(), slots);
      if (node->leaf) {
        Value* vals =
            out.value_region_.data() + static_cast<std::size_t>(bfs - out.first_leaf_) * kpn;
        std::copy(node->values.begin(), node->values.end(), vals);
        out.prefix_sum_[bfs] = total;
      } else {
        out.prefix_sum_[bfs] = next_child;
        next_child += static_cast<std::uint32_t>(node->children.size());
      }
      ++bfs;
    }
  }
  HARMONIA_CHECK(next_child == total || levels.size() == 1);
  return out;
}

HarmoniaTree HarmoniaTree::from_leaves(std::vector<std::vector<btree::Entry>> leaves,
                                       unsigned fanout) {
  HARMONIA_CHECK(fanout >= 4);
  HARMONIA_CHECK(!leaves.empty());
  const unsigned kpn = fanout - 1;

  // Build the level structure bottom-up: per level, each node's min key
  // and child count. Level 0 of `shape` is the leaf level (reversed later).
  struct NodeShape {
    Key min_key;
    std::uint32_t children;  // 0 for leaves
  };
  std::vector<std::vector<NodeShape>> shape;  // bottom-up
  std::vector<NodeShape> current;
  current.reserve(leaves.size());
  std::uint64_t num_keys = 0;
  for (const auto& leaf : leaves) {
    HARMONIA_CHECK_MSG(!leaf.empty(), "empty leaf in from_leaves");
    HARMONIA_CHECK_MSG(leaf.size() <= kpn, "overfull leaf in from_leaves");
    current.push_back({leaf.front().key, 0});
    num_keys += leaf.size();
  }
  shape.push_back(current);

  // Group children into parents, target occupancy ~ the bulk-load default.
  const auto target_children =
      std::clamp<std::size_t>(static_cast<std::size_t>(std::lround(fanout * 0.69)), 2, fanout);
  while (shape.back().size() > 1) {
    const auto& child_level = shape.back();
    std::vector<NodeShape> parents;
    std::size_t i = 0;
    while (i < child_level.size()) {
      std::size_t take = std::min(target_children, child_level.size() - i);
      const std::size_t rest = child_level.size() - i - take;
      if (rest > 0 && rest < 2) {
        // No singleton tail node: absorb it if the node has room,
        // otherwise split the remainder evenly.
        if (take + rest <= fanout) {
          take += rest;
        } else {
          take = (take + rest + 1) / 2;
        }
      }
      parents.push_back({child_level[i].min_key, static_cast<std::uint32_t>(take)});
      i += take;
    }
    shape.push_back(std::move(parents));
  }
  std::reverse(shape.begin(), shape.end());  // now top-down

  HarmoniaTree out;
  out.fanout_ = fanout;
  out.num_keys_ = num_keys;
  std::uint32_t total = 0;
  for (const auto& level : shape) {
    out.level_start_.push_back(total);
    total += static_cast<std::uint32_t>(level.size());
  }
  out.num_nodes_ = total;
  out.first_leaf_ = out.level_start_.back();

  out.key_region_.assign(static_cast<std::size_t>(total) * kpn, kPadKey);
  out.prefix_sum_.assign(total + 1, total);
  out.value_region_.assign(static_cast<std::size_t>(leaves.size()) * kpn, Value{0});

  // Internal nodes: separators are the min keys of children 1..n-1.
  std::uint32_t bfs = 0;
  std::uint32_t next_child = 1;
  for (std::size_t lvl = 0; lvl + 1 < shape.size(); ++lvl) {
    // Track each node's first child position within the next level.
    std::size_t child_pos = 0;
    const auto& next_level = shape[lvl + 1];
    for (const NodeShape& node : shape[lvl]) {
      Key* slots = out.key_region_.data() + static_cast<std::size_t>(bfs) * kpn;
      for (std::uint32_t c = 1; c < node.children; ++c) {
        slots[c - 1] = next_level[child_pos + c].min_key;
      }
      out.prefix_sum_[bfs] = next_child;
      next_child += node.children;
      child_pos += node.children;
      ++bfs;
    }
    HARMONIA_CHECK(child_pos == next_level.size());
  }

  // Leaf level: copy keys and values.
  Key prev = 0;
  bool have_prev = false;
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    Key* slots = out.key_region_.data() + (static_cast<std::size_t>(out.first_leaf_) + l) * kpn;
    Value* vals = out.value_region_.data() + static_cast<std::size_t>(l) * kpn;
    for (std::size_t s = 0; s < leaves[l].size(); ++s) {
      HARMONIA_CHECK_MSG(!have_prev || leaves[l][s].key > prev,
                         "from_leaves input not globally ascending");
      prev = leaves[l][s].key;
      have_prev = true;
      slots[s] = leaves[l][s].key;
      vals[s] = leaves[l][s].value;
    }
  }
  HARMONIA_CHECK(next_child == total || shape.size() == 1);
  return out;
}

bool HarmoniaTree::leaf_update_inplace(std::uint32_t leaf, Key key, Value value) {
  HARMONIA_CHECK(is_leaf(leaf));
  const auto keys = node_keys(leaf);
  const auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return false;
  const auto slot = static_cast<unsigned>(it - keys.begin());
  value_region_[value_slot(leaf, slot)] = value;
  return true;
}

bool HarmoniaTree::leaf_insert_inplace(std::uint32_t leaf, Key key, Value value) {
  HARMONIA_CHECK(is_leaf(leaf));
  HARMONIA_CHECK(key != kPadKey);
  const unsigned kpn = keys_per_node();
  Key* slots = key_region_.data() + static_cast<std::size_t>(leaf) * kpn;
  Value* vals = value_region_.data() + value_slot(leaf, 0);
  const unsigned count = node_key_count(leaf);

  const auto it = std::lower_bound(slots, slots + count, key);
  const auto pos = static_cast<unsigned>(it - slots);
  if (pos < count && slots[pos] == key) {
    vals[pos] = value;  // existing key: plain overwrite
    return true;
  }
  if (count == kpn) return false;  // full: caller takes the split path

  for (unsigned s = count; s > pos; --s) {
    slots[s] = slots[s - 1];
    vals[s] = vals[s - 1];
  }
  slots[pos] = key;
  vals[pos] = value;
  // The updater's fine path holds only the target leaf's lock, so two
  // threads working different leaves mutate this tree-wide counter
  // concurrently; the relaxed atomic keeps the total exact without
  // serializing the leaves (commutative, so still deterministic).
  std::atomic_ref<std::uint64_t>(num_keys_).fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool HarmoniaTree::leaf_erase_inplace(std::uint32_t leaf, Key key) {
  HARMONIA_CHECK(is_leaf(leaf));
  const unsigned kpn = keys_per_node();
  Key* slots = key_region_.data() + static_cast<std::size_t>(leaf) * kpn;
  Value* vals = value_region_.data() + value_slot(leaf, 0);
  const unsigned count = node_key_count(leaf);

  const auto it = std::lower_bound(slots, slots + count, key);
  const auto pos = static_cast<unsigned>(it - slots);
  if (pos >= count || slots[pos] != key) return false;
  HARMONIA_CHECK_MSG(count > 1, "in-place erase would empty the leaf (merge path required)");

  for (unsigned s = pos; s + 1 < count; ++s) {
    slots[s] = slots[s + 1];
    vals[s] = vals[s + 1];
  }
  slots[count - 1] = kPadKey;
  vals[count - 1] = Value{0};
  // See leaf_insert_inplace: per-leaf locks don't cover this counter.
  std::atomic_ref<std::uint64_t>(num_keys_).fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::vector<btree::Entry> HarmoniaTree::leaf_entries(std::uint32_t leaf) const {
  HARMONIA_CHECK(is_leaf(leaf));
  const auto keys = node_keys(leaf);
  std::vector<btree::Entry> out;
  for (unsigned s = 0; s < node_key_count(leaf); ++s) {
    out.push_back({keys[s], value_region_[value_slot(leaf, s)]});
  }
  return out;
}

namespace {

constexpr std::uint32_t kMagic = 0x484D5254;  // "HMRT"
constexpr std::uint32_t kFormatVersion = 2;

/// FNV-1a over a byte range, accumulated into `h`.
void fnv1a(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
}

template <typename T>
void write_pod(std::ostream& os, std::uint64_t& h, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
  fnv1a(h, &v, sizeof v);
}

template <typename T>
void write_vec(std::ostream& os, std::uint64_t& h, const std::vector<T>& v) {
  write_pod(os, h, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
  fnv1a(h, v.data(), v.size() * sizeof(T));
}

template <typename T>
T read_pod(std::istream& is, std::uint64_t& h) {
  T v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  HARMONIA_CHECK_MSG(is.good(), "truncated Harmonia image");
  fnv1a(h, &v, sizeof v);
  return v;
}

/// Reads a vector whose length is already implied by validated header
/// fields. The stored count must match `expect` — an unguarded count
/// from a bit-flipped image would otherwise drive a huge allocation
/// instead of a clean ContractViolation.
template <typename T>
std::vector<T> read_vec_expect(std::istream& is, std::uint64_t& h, std::uint64_t expect,
                               const char* what) {
  const auto n = read_pod<std::uint64_t>(is, h);
  HARMONIA_CHECK_MSG(n == expect, "corrupt Harmonia image: " << what << " holds " << n
                                      << " entries, header implies " << expect);
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(T)));
  HARMONIA_CHECK_MSG(is.good(), "truncated Harmonia image");
  fnv1a(h, v.data(), v.size() * sizeof(T));
  return v;
}

}  // namespace

void HarmoniaTree::save(std::ostream& os) const { save(os, TreeSnapshotExtras{}); }

void HarmoniaTree::save(std::ostream& os, const TreeSnapshotExtras& extras) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  write_pod(os, h, kMagic);
  write_pod(os, h, kFormatVersion);
  write_pod(os, h, fanout_);
  write_pod(os, h, num_nodes_);
  write_pod(os, h, first_leaf_);
  write_pod(os, h, num_keys_);
  write_vec(os, h, level_start_);
  write_vec(os, h, key_region_);
  write_vec(os, h, prefix_sum_);
  write_vec(os, h, value_region_);
  // v2 extras section, under the same running checksum. Overlay records
  // are written field by field so the on-disk layout is packed (17 bytes
  // per record) and independent of struct padding.
  write_pod(os, h, extras.fill_factor);
  write_pod(os, h, static_cast<std::uint64_t>(extras.overlay.size()));
  for (const auto& rec : extras.overlay) {
    write_pod(os, h, rec.key);
    write_pod(os, h, rec.value);
    write_pod(os, h, rec.tombstone);
  }
  os.write(reinterpret_cast<const char*>(&h), sizeof h);  // checksum trailer
  HARMONIA_CHECK_MSG(os.good(), "write failure while saving Harmonia image");
}

HarmoniaTree HarmoniaTree::load(std::istream& is, TreeSnapshotExtras* extras) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  HARMONIA_CHECK_MSG(read_pod<std::uint32_t>(is, h) == kMagic,
                     "not a Harmonia tree image (bad magic)");
  const auto version = read_pod<std::uint32_t>(is, h);
  HARMONIA_CHECK_MSG(version == 1 || version == kFormatVersion,
                     "unsupported Harmonia image version " << version);
  HarmoniaTree out;
  out.fanout_ = read_pod<unsigned>(is, h);
  out.num_nodes_ = read_pod<std::uint32_t>(is, h);
  out.first_leaf_ = read_pod<std::uint32_t>(is, h);
  out.num_keys_ = read_pod<std::uint64_t>(is, h);
  // Validate the header before it sizes any allocation: a bit flip in a
  // count field must throw, not drive a multi-gigabyte vector resize.
  HARMONIA_CHECK_MSG(out.fanout_ >= 3 && out.fanout_ <= 4096,
                     "corrupt Harmonia image: fanout " << out.fanout_);
  HARMONIA_CHECK_MSG(out.num_nodes_ > 0, "corrupt Harmonia image: zero nodes");
  HARMONIA_CHECK_MSG(out.first_leaf_ < out.num_nodes_,
                     "corrupt Harmonia image: first_leaf " << out.first_leaf_
                                                           << " >= num_nodes " << out.num_nodes_);
  const auto kpn = static_cast<std::uint64_t>(out.fanout_ - 1);
  HARMONIA_CHECK_MSG(out.num_keys_ <= (out.num_nodes_ - out.first_leaf_) * kpn,
                     "corrupt Harmonia image: num_keys " << out.num_keys_
                                                         << " exceeds leaf capacity");
  const auto levels = read_pod<std::uint64_t>(is, h);
  HARMONIA_CHECK_MSG(levels >= 1 && levels <= 64,
                     "corrupt Harmonia image: " << levels << " levels");
  out.level_start_.resize(levels);
  is.read(reinterpret_cast<char*>(out.level_start_.data()),
          static_cast<std::streamsize>(levels * sizeof(std::uint32_t)));
  HARMONIA_CHECK_MSG(is.good(), "truncated Harmonia image");
  fnv1a(h, out.level_start_.data(), levels * sizeof(std::uint32_t));
  out.key_region_ = read_vec_expect<Key>(is, h, out.num_nodes_ * kpn, "key region");
  out.prefix_sum_ = read_vec_expect<std::uint32_t>(is, h, out.num_nodes_ + std::uint64_t{1},
                                                   "prefix-sum region");
  out.value_region_ = read_vec_expect<Value>(
      is, h, (out.num_nodes_ - out.first_leaf_) * kpn, "value region");

  TreeSnapshotExtras ex;
  if (version >= 2) {
    ex.fill_factor = read_pod<double>(is, h);
    HARMONIA_CHECK_MSG(ex.fill_factor > 0.0 && ex.fill_factor <= 1.0,
                       "corrupt Harmonia image: fill_factor " << ex.fill_factor);
    const auto overlay_count = read_pod<std::uint64_t>(is, h);
    HARMONIA_CHECK_MSG(overlay_count <= out.num_keys_ + (std::uint64_t{1} << 20),
                       "corrupt Harmonia image: overlay holds " << overlay_count << " records");
    ex.overlay.resize(overlay_count);
    for (std::uint64_t i = 0; i < overlay_count; ++i) {
      auto& rec = ex.overlay[i];
      rec.key = read_pod<Key>(is, h);
      rec.value = read_pod<Value>(is, h);
      rec.tombstone = read_pod<std::uint8_t>(is, h);
      HARMONIA_CHECK_MSG(rec.key != kPadKey, "corrupt Harmonia image: pad key in overlay");
      HARMONIA_CHECK_MSG(rec.tombstone <= 1,
                         "corrupt Harmonia image: overlay tombstone flag " << +rec.tombstone);
      HARMONIA_CHECK_MSG(i == 0 || ex.overlay[i - 1].key < rec.key,
                         "corrupt Harmonia image: overlay keys not strictly ascending");
    }
  }

  std::uint64_t stored = 0;
  is.read(reinterpret_cast<char*>(&stored), sizeof stored);
  HARMONIA_CHECK_MSG(is.good(), "truncated Harmonia image (missing checksum)");
  HARMONIA_CHECK_MSG(stored == h, "Harmonia image checksum mismatch");
  out.validate();  // never trust bytes from disk
  if (extras != nullptr) *extras = std::move(ex);
  return out;
}

void HarmoniaTree::validate() const {
  HARMONIA_CHECK(num_nodes_ > 0);
  const unsigned kpn = keys_per_node();
  HARMONIA_CHECK(key_region_.size() == static_cast<std::size_t>(num_nodes_) * kpn);
  HARMONIA_CHECK(prefix_sum_.size() == static_cast<std::size_t>(num_nodes_) + 1);
  HARMONIA_CHECK(prefix_sum_[num_nodes_] == num_nodes_);
  HARMONIA_CHECK(value_region_.size() ==
                 static_cast<std::size_t>(num_leaves()) * kpn);

  std::uint64_t leaf_keys = 0;
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    const auto keys = node_keys(n);
    // Real keys form a sorted, strictly increasing prefix; pads the tail.
    unsigned count = node_key_count(n);
    for (unsigned s = 0; s + 1 < count; ++s) {
      HARMONIA_CHECK_MSG(keys[s] < keys[s + 1], "node keys not strictly ascending");
    }
    for (unsigned s = count; s < kpn; ++s) {
      HARMONIA_CHECK_MSG(keys[s] == kPadKey, "pad slot before a real key");
    }

    if (is_leaf(n)) {
      HARMONIA_CHECK_MSG(child_count(n) == 0, "leaf with children");
      HARMONIA_CHECK_MSG(count > 0, "empty leaf node");
      leaf_keys += count;
    } else {
      HARMONIA_CHECK_MSG(child_count(n) == count + 1, "internal children != keys + 1");
      HARMONIA_CHECK_MSG(prefix_sum_[n] > n, "child index not after parent in BFS order");
      // Separator s bounds its neighbours: every key in child s's subtree
      // is < keys[s] and every key in child s+1's subtree is >= keys[s].
      // (Equality with the right subtree's min can drift after in-place
      // deletes; the bound is what routing correctness needs.)
      for (unsigned s = 0; s < count; ++s) {
        std::uint32_t right = prefix_sum_[n] + s + 1;
        while (!is_leaf(right)) right = prefix_sum_[right];
        HARMONIA_CHECK_MSG(node_keys(right)[0] >= keys[s],
                           "right child subtree min below separator");
        std::uint32_t left = prefix_sum_[n] + s;
        while (!is_leaf(left)) left = prefix_sum_[left] + child_count(left) - 1;
        const unsigned left_count = node_key_count(left);
        HARMONIA_CHECK_MSG(left_count > 0 && node_keys(left)[left_count - 1] < keys[s],
                           "left child subtree max not below separator");
      }
    }
  }
  HARMONIA_CHECK_MSG(leaf_keys == num_keys_, "leaf key total mismatch");

  // The leaf level's real keys ascend globally (consecutive sorted array).
  Key prev = 0;
  bool have_prev = false;
  for (std::uint32_t n = first_leaf_; n < num_nodes_; ++n) {
    const auto keys = node_keys(n);
    for (unsigned s = 0; s < node_key_count(n); ++s) {
      HARMONIA_CHECK_MSG(!have_prev || keys[s] > prev, "leaf level not globally sorted");
      prev = keys[s];
      have_prev = true;
    }
  }

  // Every level's start index is consistent with the prefix-sum array.
  for (unsigned lvl = 0; lvl + 1 < height(); ++lvl) {
    HARMONIA_CHECK(prefix_sum_[level_start_[lvl]] == level_start_[lvl + 1]);
  }
}

}  // namespace harmonia
