// Batched range-query kernel (§3.2.1): locate the first key >= lo with a
// point traversal, then scan the *consecutive* leaf level of the key
// region warp-wide — the layout property that makes Harmonia ranges fast
// (each 32-lane scan step reads 256 B of adjacent keys: fully coalesced).
#pragma once

#include <cstdint>

#include "gpusim/device.hpp"
#include "harmonia/device_image.hpp"

namespace harmonia {

struct RangeConfig {
  /// Result slots reserved per query in the output arrays.
  unsigned max_results = 64;
};

struct RangeStats {
  gpusim::KernelMetrics metrics;
  std::uint64_t queries = 0;
  std::uint64_t results = 0;
};

/// For each query i, collects values of keys in [los[i], his[i]] (up to
/// max_results) into out_values[i*max_results ...] and the match count into
/// out_counts[i]. One warp serves one range query.
RangeStats range_batch(gpusim::Device& device, const HarmoniaDeviceImage& image,
                       gpusim::DevPtr<Key> los, gpusim::DevPtr<Key> his, std::uint64_t n,
                       gpusim::DevPtr<Value> out_values,
                       gpusim::DevPtr<std::uint32_t> out_counts,
                       const RangeConfig& config = {});

}  // namespace harmonia
