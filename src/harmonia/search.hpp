// Batched point-lookup kernel for Harmonia on the simulated GPU (§3.2.1,
// §4.2).
//
// Each query is served by a *thread group* of `group_size` lanes; a warp
// packs warp_size/group_size queries. Per tree level a group scans its
// node's key slots chunk-by-chunk (group_size keys per SIMT step),
// counting separators <= target; the next node comes from Equation 1 via
// the prefix-sum child region (constant memory for the top levels) — no
// child-pointer indirection. At the leaf an equality probe fetches the
// value region slot.
//
// group_size == fanout-ish is the traditional fanout-based layout
// (Figure 9a, all chunks scanned); a narrowed group with early_exit is NTG
// (Figure 9b): fewer useless comparisons, more queries per warp, but the
// warp's per-level step count becomes the max over its groups (query
// divergence).
#pragma once

#include <cstdint>

#include "gpusim/device.hpp"
#include "harmonia/device_image.hpp"

namespace harmonia {

/// Sentinel stored in out_values for queries whose key is absent.
inline constexpr Value kNotFound = ~Value{0};

struct SearchConfig {
  /// Lanes per query; power of two dividing warp_size. 0 selects the
  /// fanout-based group of traditional designs: min(fanout, warp_size).
  unsigned group_size = 0;
  /// Stop scanning a node's chunks once the boundary (first key > target)
  /// is seen. Traditional fanout-based traversal compares every key
  /// (early_exit = false) — the "useless comparisons" of §4.2.
  bool early_exit = true;
  /// Charge the coalesced reads of the query array itself.
  bool account_query_load = true;
};

struct SearchStats {
  gpusim::KernelMetrics metrics;
  std::uint64_t queries = 0;
  std::uint64_t warps = 0;
  /// Total chunk-scan SIMT steps summed over warps and levels; divided by
  /// (warps * height) this is S, the max-comparison-step term of the NTG
  /// model (Equations 3/4).
  std::uint64_t chunk_steps = 0;

  double avg_steps_per_warp_level(unsigned height) const {
    if (warps == 0 || height == 0) return 0.0;
    return static_cast<double>(chunk_steps) / static_cast<double>(warps * height);
  }
};

/// Resolves SearchConfig::group_size (handles the 0 = fanout-based case).
unsigned resolve_group_size(const gpusim::DeviceSpec& spec, unsigned fanout,
                            unsigned requested);

/// Runs the lookup kernel over device arrays `queries`/`out_values` of
/// length n. out_values[i] receives the value or kNotFound.
SearchStats search_batch(gpusim::Device& device, const HarmoniaDeviceImage& image,
                         gpusim::DevPtr<Key> queries, std::uint64_t n,
                         gpusim::DevPtr<Value> out_values, const SearchConfig& config = {});

}  // namespace harmonia
