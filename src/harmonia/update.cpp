#include "harmonia/update.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/expect.hpp"
#include "common/timer.hpp"

namespace harmonia {

using queries::OpKind;
using queries::UpdateOp;

BatchUpdater::BatchUpdater(HarmoniaTree tree, double rebuild_fill)
    : tree_(std::move(tree)), rebuild_fill_(rebuild_fill) {
  HARMONIA_CHECK_MSG(rebuild_fill > 0.0 && rebuild_fill <= 1.0,
                     "rebuild fill factor must be in (0, 1]");
  aux_.resize(tree_.num_leaves());
  fine_ = std::make_unique<std::mutex[]>(tree_.num_leaves());
}

void BatchUpdater::fine_enter() {
  // Algorithm 1, lines 3-5: the global counter is protected by the
  // coarse lock.
  std::lock_guard<std::mutex> lk(coarse_);
  ++global_count_;
}

void BatchUpdater::fine_exit() {
  // Algorithm 1, lines 11-13.
  std::lock_guard<std::mutex> lk(coarse_);
  HARMONIA_DCHECK(global_count_ > 0);
  --global_count_;
}

template <typename Fn>
void BatchUpdater::coarse_section(UpdateStats& local, Fn&& fn) {
  // Algorithm 1, lines 16-24: hold the coarse lock only while no
  // fine-grained op is in flight; otherwise release and retry.
  for (;;) {
    coarse_.lock();
    if (global_count_ == 0) {
      fn();
      coarse_.unlock();
      return;
    }
    coarse_.unlock();
    ++local.coarse_retries;
    std::this_thread::yield();
  }
}

namespace {

/// Sorted-vector helpers for auxiliary nodes.
bool aux_upsert(std::vector<btree::Entry>& entries, Key key, Value value) {
  const auto it = std::lower_bound(entries.begin(), entries.end(), key,
                                   [](const btree::Entry& e, Key k) { return e.key < k; });
  if (it != entries.end() && it->key == key) {
    it->value = value;
    return false;  // existed
  }
  entries.insert(it, {key, value});
  return true;  // new key
}

bool aux_update(std::vector<btree::Entry>& entries, Key key, Value value) {
  const auto it = std::lower_bound(entries.begin(), entries.end(), key,
                                   [](const btree::Entry& e, Key k) { return e.key < k; });
  if (it == entries.end() || it->key != key) return false;
  it->value = value;
  return true;
}

bool aux_erase(std::vector<btree::Entry>& entries, Key key) {
  const auto it = std::lower_bound(entries.begin(), entries.end(), key,
                                   [](const btree::Entry& e, Key k) { return e.key < k; });
  if (it == entries.end() || it->key != key) return false;
  entries.erase(it);
  return true;
}

}  // namespace

void BatchUpdater::apply_one(const UpdateOp& op, UpdateStats& local) {
  // Routing reads only internal levels, which a batch never mutates, so
  // no lock is needed to locate the leaf.
  const std::uint32_t leaf = tree_.find_leaf(op.key);
  const std::uint32_t li = leaf - tree_.first_leaf_index();

  auto bump = [](std::uint64_t& counter) { ++counter; };

  switch (op.kind) {
    case OpKind::kUpdate: {
      fine_enter();
      bool ok;
      {
        std::lock_guard<std::mutex> lk(fine_[li]);
        ok = aux_[li] ? aux_update(aux_[li]->entries, op.key, op.value)
                      : tree_.leaf_update_inplace(leaf, op.key, op.value);
      }
      fine_exit();
      bump(local.updates);
      bump(local.fine_path_ops);
      if (!ok) bump(local.failed);
      return;
    }

    case OpKind::kInsert: {
      // Optimistically try the fine path: an in-place insert succeeds
      // whenever the leaf still has a free slot and is not split-marked.
      bool need_split = false;
      fine_enter();
      {
        std::lock_guard<std::mutex> lk(fine_[li]);
        if (aux_[li]) {
          need_split = true;  // leaf status is "split": use the aux node
        } else {
          need_split = !tree_.leaf_insert_inplace(leaf, op.key, op.value);
        }
      }
      fine_exit();
      if (!need_split) {
        bump(local.inserts);
        bump(local.fine_path_ops);
        return;
      }
      coarse_section(local, [&] {
        // Re-check under exclusivity: another coarse op may have already
        // split this leaf into an aux node.
        if (!aux_[li]) {
          aux_[li] = std::make_unique<AuxNode>();
          aux_[li]->entries = tree_.leaf_entries(leaf);
        }
        aux_upsert(aux_[li]->entries, op.key, op.value);
        rebuild_needed_ = true;
      });
      bump(local.inserts);
      bump(local.coarse_path_ops);
      return;
    }

    case OpKind::kDelete: {
      // Fine path while the leaf keeps at least one key; emptying a leaf
      // is a merge and takes the coarse path.
      bool done = false;
      bool ok = false;
      fine_enter();
      {
        std::lock_guard<std::mutex> lk(fine_[li]);
        if (aux_[li]) {
          if (aux_[li]->entries.size() > 1) {
            ok = aux_erase(aux_[li]->entries, op.key);
            done = true;
          }
        } else if (tree_.node_key_count(leaf) > 1) {
          ok = tree_.leaf_erase_inplace(leaf, op.key);
          done = true;
        }
      }
      fine_exit();
      if (!done) {
        coarse_section(local, [&] {
          if (!aux_[li]) {
            aux_[li] = std::make_unique<AuxNode>();
            aux_[li]->entries = tree_.leaf_entries(leaf);
          }
          ok = aux_erase(aux_[li]->entries, op.key);
          rebuild_needed_ = true;
        });
        bump(local.coarse_path_ops);
      } else {
        bump(local.fine_path_ops);
      }
      bump(local.deletes);
      if (!ok) bump(local.failed);
      return;
    }
  }
}

UpdateStats BatchUpdater::apply(std::span<const UpdateOp> ops, unsigned threads) {
  HARMONIA_CHECK(threads >= 1);
  UpdateStats stats;
  WallTimer timer;

  if (threads == 1) {
    for (const auto& op : ops) apply_one(op, stats);
  } else {
    std::vector<UpdateStats> locals(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([this, &ops, &locals, t, threads] {
        UpdateStats& local = locals[t];
        for (std::size_t i = t; i < ops.size(); i += threads) {
          apply_one(ops[i], local);
        }
      });
    }
    for (auto& w : workers) w.join();
    for (const auto& local : locals) {
      stats.updates += local.updates;
      stats.inserts += local.inserts;
      stats.deletes += local.deletes;
      stats.failed += local.failed;
      stats.fine_path_ops += local.fine_path_ops;
      stats.coarse_path_ops += local.coarse_path_ops;
      stats.coarse_retries += local.coarse_retries;
    }
  }
  stats.apply_seconds = timer.elapsed_seconds();

  timer.reset();
  if (rebuild_needed_) rebuild(stats);
  stats.rebuild_seconds = timer.elapsed_seconds();
  return stats;
}

void BatchUpdater::rebuild(UpdateStats& stats) {
  const unsigned kpn = tree_.keys_per_node();
  const auto target = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::lround(static_cast<double>(kpn) * rebuild_fill_)),
      1, kpn);

  std::vector<std::vector<btree::Entry>> leaves;
  leaves.reserve(tree_.num_leaves());
  std::uint32_t first_changed = tree_.num_leaves();
  for (std::uint32_t li = 0; li < tree_.num_leaves(); ++li) {
    if (aux_[li]) {
      first_changed = std::min(first_changed, li);
      ++stats.aux_nodes;
      // Chunk the auxiliary node into target-fill leaves (a split yields
      // two or more; a merged-away leaf yields none).
      const auto& entries = aux_[li]->entries;
      std::size_t i = 0;
      while (i < entries.size()) {
        const std::size_t take = std::min(target, entries.size() - i);
        leaves.emplace_back(entries.begin() + static_cast<std::ptrdiff_t>(i),
                            entries.begin() + static_cast<std::ptrdiff_t>(i + take));
        i += take;
      }
    } else {
      leaves.push_back(tree_.leaf_entries(tree_.first_leaf_index() + li));
    }
  }
  HARMONIA_CHECK_MSG(!leaves.empty(), "batch removed every key from the tree");

  HarmoniaTree rebuilt = HarmoniaTree::from_leaves(std::move(leaves), tree_.fanout());

  // Deferred-movement accounting: everything from the first structurally
  // changed leaf onward moves, plus all internal nodes (their prefix-sum
  // entries and separators are regenerated).
  const std::uint64_t unchanged =
      static_cast<std::uint64_t>(first_changed) * kpn;
  stats.moved_slots +=
      static_cast<std::uint64_t>(rebuilt.num_nodes()) * kpn - std::min<std::uint64_t>(
          unchanged, static_cast<std::uint64_t>(rebuilt.num_nodes()) * kpn);
  stats.rebuilt = true;

  tree_ = std::move(rebuilt);
  aux_.clear();
  aux_.resize(tree_.num_leaves());
  fine_ = std::make_unique<std::mutex[]>(tree_.num_leaves());
  rebuild_needed_ = false;
}

}  // namespace harmonia
