// Narrowed Thread-Group traversal sizing (§4.2, Equations 3/4).
//
// Narrowing the per-query thread group from GSb to GSa = GSb/G packs G×
// more queries into a warp but raises the warp's per-level step count from
// Sb to Sa (query divergence: a level costs the max steps over the warp's
// groups). Equation 4: TPa/TPb ∝ (Sb/Sa)·G — keep narrowing while that
// ratio exceeds 1.
//
// S is measured by the paper's *static profiling* method: a small sample
// of queries (default 1000) is walked through the tree on the CPU, and per
// level the chunk-scan step count of each group — and the max per warp —
// is computed directly from the key layout. No device run is needed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "harmonia/tree.hpp"

namespace harmonia {

struct NtgCandidate {
  unsigned group_size = 0;
  /// Average over warps and levels of the warp-max chunk-scan steps (S).
  double avg_max_steps = 0.0;
  /// Relative throughput ∝ 1 / (S * GS), normalized to the widest group.
  double predicted_speedup = 1.0;
};

struct NtgChoice {
  unsigned group_size = 0;
  std::vector<NtgCandidate> candidates;  // widest group first
};

/// Profiles S for `sample` (use queries in the order the kernel will see
/// them — i.e. after PSA) and applies the Equation 4 narrowing rule.
/// Candidates run from the fanout-based group down to 1 lane, halving.
NtgChoice choose_group_size(const HarmoniaTree& tree, std::span<const Key> sample,
                            const gpusim::DeviceSpec& spec);

/// The S-profiling primitive: average warp-max steps per level for one
/// group size (exposed for the §4.2 model-validation bench).
double profile_avg_max_steps(const HarmoniaTree& tree, std::span<const Key> sample,
                             const gpusim::DeviceSpec& spec, unsigned group_size);

}  // namespace harmonia
