#include "persist/durability.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/expect.hpp"

namespace harmonia::persist {

std::filesystem::path DurabilityConfig::shard_dir(unsigned shard) const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "shard-%04u", shard);
  return std::filesystem::path(dir) / buf;
}

ShardDurability::ShardDurability(const DurabilityConfig& config, unsigned shard,
                                 const CrashState* crash)
    : config_(config),
      shard_(shard),
      dir_(config.shard_dir(shard)),
      crash_(crash),
      store_(dir_),
      log_path_(dir_ / "update.log") {
  std::filesystem::create_directories(dir_);
  if (config.recover) {
    // Post-recovery restart: seed the retained list from the checkpoint
    // the RecoveryManager just wrote, so pruning and the manifest stay
    // accurate across generations.
    retained_ = store_.list();
    if (retained_.size() > config_.retain) retained_.resize(config_.retain);
  } else {
    // Fresh start (bulk build): stale on-disk state from an earlier run
    // does not describe this generation's base — wipe the shard's
    // artifacts so the log and snapshots always match the served state
    // (and a repeated run is bit-identical).
    std::filesystem::remove(log_path_);
    store_.prune(0);
    std::filesystem::remove(store_.manifest_path());
  }
}

bool ShardDurability::durable_write(const std::filesystem::path& path, const std::string& bytes,
                                    bool append, double at) {
  if (crash_ != nullptr && crash_->dead(at)) return false;  // process is gone
  std::uint64_t offset = 0;
  if (append) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec) offset = size;
  }
  std::ofstream os(path, std::ios::binary | (append ? std::ios::app : std::ios::trunc));
  HARMONIA_CHECK_MSG(os.good(), "cannot open " << path.string());
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  HARMONIA_CHECK_MSG(os.good(), "write failure on " << path.string());
  last_write_ = {path, offset, bytes.size()};
  return true;
}

void ShardDurability::log_batch(std::uint64_t epoch, std::span<const queries::UpdateOp> ops,
                                double at) {
  if (!durable_write(log_path_, UpdateLog::encode(epoch, ops), /*append=*/true, at)) return;
  ++log_batches_;
  log_ops_ += ops.size();
  ++logged_since_snapshot_;
}

bool ShardDurability::maybe_snapshot(std::uint64_t epoch, const HarmoniaIndex& index, bool force,
                                     double at) {
  const bool due =
      config_.snapshot_every > 0 && logged_since_snapshot_ >= config_.snapshot_every;
  if (!force && !due) return false;
  if (logged_since_snapshot_ == 0 && !retained_.empty()) return false;  // nothing new to capture
  const std::string image = SnapshotStore::encode(index.tree(), index.snapshot_extras());
  if (!durable_write(store_.path_for(epoch), image, /*append=*/false, at)) return false;
  ++snapshots_;
  logged_since_snapshot_ = 0;
  retained_.insert(retained_.begin(), epoch);
  if (retained_.size() > config_.retain) retained_.resize(config_.retain);
  // Manifest and prune ride the same crash filter: a crash right after
  // the image write leaves a stale manifest, which the recovery path's
  // directory-scan fallback covers. The manifest write comes first so
  // prune (which re-asserts the manifest-before-delete order itself)
  // never deletes an image a surviving manifest still names.
  if (crash_ == nullptr || !crash_->dead(at)) {
    durable_write(store_.manifest_path(), Manifest::encode({shard_, retained_}),
                  /*append=*/false, at);
    store_.prune(config_.retain);
  }
  return true;
}

void ShardDurability::apply_tear(std::uint64_t torn_bytes) {
  if (torn_bytes == 0 || last_write_.size == 0) return;
  const std::uint64_t chopped = std::min(torn_bytes, last_write_.size);
  std::error_code ec;
  std::filesystem::resize_file(last_write_.path, last_write_.offset + last_write_.size - chopped,
                               ec);
  HARMONIA_CHECK_MSG(!ec, "cannot tear " << last_write_.path.string() << ": " << ec.message());
}

DurabilityDomain::DurabilityDomain(DurabilityConfig config, unsigned num_shards)
    : config_(std::move(config)) {
  HARMONIA_CHECK_MSG(config_.enabled(), "durability domain needs a non-empty directory");
  HARMONIA_CHECK_MSG(num_shards > 0, "durability domain needs at least one shard");
  shards_.reserve(num_shards);
  for (unsigned s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<ShardDurability>(config_, s, &crash_));
  }
}

void DurabilityDomain::apply_crash(unsigned torn_shard, std::uint64_t torn_bytes) {
  HARMONIA_CHECK_MSG(torn_shard < shards_.size(),
                     "torn shard " << torn_shard << " out of range (" << shards_.size()
                                   << " shards)");
  shards_[torn_shard]->apply_tear(torn_bytes);
}

std::uint64_t DurabilityDomain::total_log_batches() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->log_batches();
  return total;
}

std::uint64_t DurabilityDomain::total_snapshots_written() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->snapshots_written();
  return total;
}

}  // namespace harmonia::persist
