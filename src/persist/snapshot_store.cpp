#include "persist/snapshot_store.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/expect.hpp"
#include "fault/checksum.hpp"

namespace harmonia::persist {

namespace {

constexpr char kSnapshotPrefix[] = "snap-";
constexpr char kSnapshotSuffix[] = ".img";

std::string snapshot_name(std::uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%012" PRIu64 "%s", kSnapshotPrefix, epoch, kSnapshotSuffix);
  return buf;
}

/// Parses "snap-<epoch>.img"; nullopt for anything else.
std::optional<std::uint64_t> epoch_of(const std::string& name) {
  const std::string prefix = kSnapshotPrefix;
  const std::string suffix = kSnapshotSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) return std::nullopt;
  const std::string digits = name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::uint64_t epoch = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return epoch;
}

}  // namespace

std::string Manifest::encode(const Manifest& m) {
  std::ostringstream body;
  body << "harmonia-shard-manifest v1\n";
  body << "shard " << m.shard << "\n";
  for (const std::uint64_t e : m.snapshots) body << "snapshot " << e << "\n";
  const std::string text = body.str();
  char crc_line[24];
  std::snprintf(crc_line, sizeof crc_line, "crc %08x\n",
                fault::crc32(text.data(), text.size()));
  return text + crc_line;
}

std::optional<Manifest> Manifest::parse_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  // Split off the final "crc <hex>\n" line and verify it seals the body.
  if (bytes.empty() || bytes.back() != '\n') return std::nullopt;
  const auto line_start = bytes.rfind('\n', bytes.size() - 2);
  const std::size_t crc_pos = line_start == std::string::npos ? 0 : line_start + 1;
  const std::string crc_line = bytes.substr(crc_pos, bytes.size() - crc_pos - 1);
  unsigned long crc = 0;
  if (std::sscanf(crc_line.c_str(), "crc %8lx", &crc) != 1) return std::nullopt;
  const std::string body = bytes.substr(0, crc_pos);
  if (fault::crc32(body.data(), body.size()) != static_cast<std::uint32_t>(crc))
    return std::nullopt;

  Manifest m;
  std::istringstream lines(body);
  std::string line;
  if (!std::getline(lines, line) || line != "harmonia-shard-manifest v1") return std::nullopt;
  if (!std::getline(lines, line) || std::sscanf(line.c_str(), "shard %u", &m.shard) != 1)
    return std::nullopt;
  while (std::getline(lines, line)) {
    std::uint64_t epoch = 0;
    if (std::sscanf(line.c_str(), "snapshot %" SCNu64, &epoch) != 1) return std::nullopt;
    m.snapshots.push_back(epoch);
  }
  return m;
}

std::filesystem::path SnapshotStore::path_for(std::uint64_t epoch) const {
  return dir_ / snapshot_name(epoch);
}

std::string SnapshotStore::encode(const HarmoniaTree& tree, const TreeSnapshotExtras& extras) {
  std::ostringstream os(std::ios::binary);
  tree.save(os, extras);
  return os.str();
}

void SnapshotStore::write(std::uint64_t epoch, const HarmoniaTree& tree,
                          const TreeSnapshotExtras& extras) {
  std::filesystem::create_directories(dir_);
  const std::string bytes = encode(tree, extras);
  std::ofstream os(path_for(epoch), std::ios::binary | std::ios::trunc);
  HARMONIA_CHECK_MSG(os.good(), "cannot open snapshot " << path_for(epoch).string());
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  HARMONIA_CHECK_MSG(os.good(), "write failure on snapshot " << path_for(epoch).string());
}

std::vector<std::uint64_t> SnapshotStore::list(bool* manifest_fallback) const {
  if (manifest_fallback != nullptr) *manifest_fallback = false;
  if (const auto m = Manifest::parse_file(manifest_path())) {
    auto epochs = m->snapshots;
    std::sort(epochs.rbegin(), epochs.rend());
    return epochs;
  }
  // Manifest missing or torn: trust the directory instead.
  std::vector<std::uint64_t> epochs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (const auto e = epoch_of(entry.path().filename().string())) epochs.push_back(*e);
  }
  if (manifest_fallback != nullptr) *manifest_fallback = !epochs.empty();
  std::sort(epochs.rbegin(), epochs.rend());
  return epochs;
}

std::optional<SnapshotStore::Loaded> SnapshotStore::load_newest() const {
  bool fallback = false;
  const auto epochs = list(&fallback);
  unsigned discarded = 0;
  for (const std::uint64_t epoch : epochs) {
    std::ifstream is(path_for(epoch), std::ios::binary);
    if (is.good()) {
      try {
        TreeSnapshotExtras extras;
        HarmoniaTree tree = HarmoniaTree::load(is, &extras);
        std::error_code ec;
        const auto bytes = std::filesystem::file_size(path_for(epoch), ec);
        return Loaded{std::move(tree), std::move(extras), epoch,
                      ec ? 0 : bytes, discarded, fallback};
      } catch (const ContractViolation&) {
        // Torn or corrupted image: fall back to the next-older epoch.
      }
    }
    ++discarded;
  }
  return std::nullopt;
}

void SnapshotStore::prune(std::size_t keep) {
  std::vector<std::uint64_t> epochs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (const auto e = epoch_of(entry.path().filename().string())) epochs.push_back(*e);
  }
  std::sort(epochs.rbegin(), epochs.rend());
  if (epochs.size() <= keep) return;
  // Rewrite the manifest to name only the survivors BEFORE deleting any
  // image: recovery prefers the manifest, so a crash mid-prune must never
  // leave it pinning an image that is already gone. (The converse order —
  // manifest naming survivors while pruned files linger — is harmless:
  // lingering files are ignored or re-pruned next time.)
  if (const auto m = Manifest::parse_file(manifest_path())) {
    write_manifest(m->shard,
                   {epochs.begin(),
                    epochs.begin() + static_cast<std::ptrdiff_t>(keep)});
  }
  for (std::size_t i = keep; i < epochs.size(); ++i) {
    std::filesystem::remove(path_for(epochs[i]), ec);
  }
}

void SnapshotStore::write_manifest(unsigned shard, std::vector<std::uint64_t> snapshots) {
  Manifest m;
  m.shard = shard;
  m.snapshots = std::move(snapshots);
  const std::string bytes = Manifest::encode(m);
  std::ofstream os(manifest_path(), std::ios::binary | std::ios::trunc);
  HARMONIA_CHECK_MSG(os.good(), "cannot open manifest " << manifest_path().string());
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  HARMONIA_CHECK_MSG(os.good(), "write failure on manifest " << manifest_path().string());
}

}  // namespace harmonia::persist
