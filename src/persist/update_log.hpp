// Append-only, replayable update log (the WAL half of durability).
//
// Every epoch's update batch is appended as one self-describing record
// *before* the batch is applied to the in-memory index, so the on-disk
// log is always ahead of (or equal to) the committed state. Each record
// carries its own magic and CRC32 (fault::crc32 — the same routine the
// image-audit layer uses), so replay can stop exactly at the first torn
// or corrupted byte: a crash mid-append loses at most the record being
// written, never an earlier one.
//
// Record layout (all fields little-endian, packed — no struct padding):
//
//   u32  magic   "HLOG" (0x484C4F47)
//   u32  crc     CRC32 over the body (epoch..ops)
//   u64  epoch   strictly increasing across records
//   u32  count   ops in this record
//   count x { u8 kind, u64 key, u64 value }
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "queries/batch.hpp"

namespace harmonia::persist {

struct LogBatch {
  std::uint64_t epoch = 0;
  std::vector<queries::UpdateOp> ops;
};

struct LogReplay {
  /// Decoded records in append order (epochs strictly increasing).
  std::vector<LogBatch> batches;
  std::uint64_t ops = 0;
  /// Bytes of the valid prefix; truncating the file here repairs it.
  std::uint64_t valid_bytes = 0;
  std::uint64_t total_bytes = 0;
  /// True when bytes past the valid prefix existed (torn append or
  /// corruption) — recovery discards them.
  bool torn_tail = false;
};

class UpdateLog {
 public:
  explicit UpdateLog(std::filesystem::path path) : path_(std::move(path)) {}

  const std::filesystem::path& path() const { return path_; }

  /// Framed record sizing (the layout above): magic+crc+epoch+count per
  /// record, kind+key+value per op. The replica catch-up path uses these
  /// to cost log-tail shipping over the transfer model.
  static constexpr std::uint64_t kRecordFixedBytes = 20;
  static constexpr std::uint64_t kOpBytes = 17;

  /// Serializes one record; what append() writes and replay() decodes.
  static std::string encode(std::uint64_t epoch, std::span<const queries::UpdateOp> ops);

  /// Appends one record and flushes. Direct-to-disk path for tests and
  /// benches; the serving layer writes encode()d records through its
  /// crash-aware ShardDurability instead.
  void append(std::uint64_t epoch, std::span<const queries::UpdateOp> ops);

  /// Decodes the longest valid prefix of the log. Missing file = empty
  /// replay (a fresh shard has no log yet).
  static LogReplay replay(const std::filesystem::path& path);

  /// Log-tail shipping: replay() restricted to records with
  /// epoch > `after_epoch` — what a rejoining replica that last applied
  /// `after_epoch` must catch up on. valid_bytes/total_bytes/torn_tail
  /// still describe the whole file; `ops` counts only the tail.
  static LogReplay replay_tail(const std::filesystem::path& path,
                               std::uint64_t after_epoch);

  /// Chops the file to its valid prefix (post-replay repair).
  static void truncate(const std::filesystem::path& path, std::uint64_t valid_bytes);

 private:
  std::filesystem::path path_;
};

}  // namespace harmonia::persist
