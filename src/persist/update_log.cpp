#include "persist/update_log.hpp"

#include <cstring>
#include <fstream>

#include "common/expect.hpp"
#include "fault/checksum.hpp"

namespace harmonia::persist {

namespace {

constexpr std::uint32_t kLogMagic = 0x484C4F47;  // "HLOG"
constexpr std::size_t kHeaderBytes = 8;          // magic + crc
constexpr std::size_t kBodyFixedBytes = 12;      // epoch + count
constexpr std::size_t kOpBytes = 17;             // kind + key + value
/// Decode-side sanity bound on a record's op count: a corrupted count
/// field must fail fast, not drive a huge read.
constexpr std::uint32_t kMaxOpsPerRecord = 1u << 24;

template <typename T>
void put(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

std::string UpdateLog::encode(std::uint64_t epoch, std::span<const queries::UpdateOp> ops) {
  std::string body;
  body.reserve(kBodyFixedBytes + ops.size() * kOpBytes);
  put(body, epoch);
  put(body, static_cast<std::uint32_t>(ops.size()));
  for (const auto& op : ops) {
    put(body, static_cast<std::uint8_t>(op.kind));
    put(body, op.key);
    put(body, op.value);
  }
  std::string record;
  record.reserve(kHeaderBytes + body.size());
  put(record, kLogMagic);
  put(record, fault::crc32(body.data(), body.size()));
  record += body;
  return record;
}

void UpdateLog::append(std::uint64_t epoch, std::span<const queries::UpdateOp> ops) {
  const std::string record = encode(epoch, ops);
  std::ofstream os(path_, std::ios::binary | std::ios::app);
  HARMONIA_CHECK_MSG(os.good(), "cannot open update log " << path_.string());
  os.write(record.data(), static_cast<std::streamsize>(record.size()));
  os.flush();
  HARMONIA_CHECK_MSG(os.good(), "write failure on update log " << path_.string());
}

LogReplay UpdateLog::replay(const std::filesystem::path& path) {
  LogReplay out;
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return out;  // no log yet: empty replay
  std::string bytes((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  out.total_bytes = bytes.size();

  std::size_t pos = 0;
  std::uint64_t prev_epoch = 0;
  bool have_prev = false;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kHeaderBytes + kBodyFixedBytes) break;
    const char* p = bytes.data() + pos;
    if (get<std::uint32_t>(p) != kLogMagic) break;
    const auto crc = get<std::uint32_t>(p + 4);
    const auto epoch = get<std::uint64_t>(p + 8);
    const auto count = get<std::uint32_t>(p + 16);
    if (count > kMaxOpsPerRecord) break;
    const std::size_t body_bytes = kBodyFixedBytes + std::size_t{count} * kOpBytes;
    if (bytes.size() - pos < kHeaderBytes + body_bytes) break;
    if (fault::crc32(p + kHeaderBytes, body_bytes) != crc) break;
    if (have_prev && epoch <= prev_epoch) break;

    LogBatch batch;
    batch.epoch = epoch;
    batch.ops.reserve(count);
    const char* op = p + kHeaderBytes + kBodyFixedBytes;
    for (std::uint32_t i = 0; i < count; ++i, op += kOpBytes) {
      const auto kind = get<std::uint8_t>(op);
      if (kind > static_cast<std::uint8_t>(queries::OpKind::kDelete)) break;
      batch.ops.push_back({static_cast<queries::OpKind>(kind), get<std::uint64_t>(op + 1),
                           get<std::uint64_t>(op + 9)});
    }
    if (batch.ops.size() != count) break;  // bad op kind: treat as torn

    out.ops += count;
    out.batches.push_back(std::move(batch));
    prev_epoch = epoch;
    have_prev = true;
    pos += kHeaderBytes + body_bytes;
  }
  out.valid_bytes = pos;
  out.torn_tail = pos < bytes.size();
  return out;
}

LogReplay UpdateLog::replay_tail(const std::filesystem::path& path,
                                 std::uint64_t after_epoch) {
  LogReplay out = replay(path);
  std::erase_if(out.batches,
                [after_epoch](const LogBatch& b) { return b.epoch <= after_epoch; });
  out.ops = 0;
  for (const LogBatch& b : out.batches) out.ops += b.ops.size();
  return out;
}

void UpdateLog::truncate(const std::filesystem::path& path, std::uint64_t valid_bytes) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return;
  std::filesystem::resize_file(path, valid_bytes, ec);
  HARMONIA_CHECK_MSG(!ec, "cannot truncate update log " << path.string() << ": " << ec.message());
}

}  // namespace harmonia::persist
