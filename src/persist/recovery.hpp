// RecoveryManager — cold-start a shard from disk.
//
// Per shard, the recovery flow is:
//
//   1. newest-valid snapshot: walk the retained images newest-first
//      (manifest order, directory scan when the manifest is torn) and
//      take the first one whose checksum + structural validate pass.
//   2. overlay fold: the snapshot's delta-overlay sidecar replays as
//      one op batch through the normal stage_update/commit_staged path,
//      so the recovered base subsumes it exactly like a fold-compaction
//      epoch would have.
//   3. log replay: every fully-logged batch with epoch > snapshot epoch
//      replays in order through the same stage/commit path; the torn
//      tail (a crash mid-append) is truncated away.
//   4. checkpoint: the recovered state is written back as a fresh
//      epoch-0 snapshot and the log is reset, so the next generation's
//      epoch numbering (restarting at 1) can never collide with stale
//      records.
//
// When no snapshot decodes at all, the caller's bulk-rebuilt tree is
// the base (rebuilt = true) and the full log replays over it.
//
// All recovery cost is *modeled* (RecoveryTiming + the PCIe link), in
// keeping with the repo's virtual-clock discipline: reports carry
// deterministic modeled seconds, never wall-clock.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "harmonia/index.hpp"
#include "harmonia/pipeline.hpp"
#include "persist/durability.hpp"
#include "persist/snapshot_store.hpp"
#include "persist/update_log.hpp"

namespace harmonia::persist {

struct RecoveryReport {
  unsigned shard = 0;
  bool from_snapshot = false;
  /// Epoch of the snapshot the recovery started from (0 when rebuilt).
  std::uint64_t snapshot_epoch = 0;
  /// Newer snapshots discarded because they failed checksum/validate.
  unsigned snapshots_discarded = 0;
  /// Manifest was missing/torn and the directory scan took over.
  bool manifest_fallback = false;
  /// Overlay records folded out of the snapshot sidecar.
  std::uint64_t overlay_replayed = 0;
  std::uint64_t batches_replayed = 0;
  std::uint64_t ops_replayed = 0;
  /// The log ended in a torn/corrupt record that was truncated away.
  bool log_torn_tail = false;
  /// No snapshot decoded; the bulk-rebuilt tree was the base.
  bool rebuilt = false;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t log_bytes = 0;
  /// Highest epoch the recovered state reflects (snapshot epoch when
  /// the log held nothing newer).
  std::uint64_t recovered_epoch = 0;
  /// Modeled cold-start cost: disk reads + replay CPU + image upload
  /// (+ the full rebuild cost on the fallback path).
  double modeled_seconds = 0.0;

  static std::string csv_header();
  std::string csv_row() const;
};

class RecoveryManager {
 public:
  explicit RecoveryManager(const DurabilityConfig& config) : config_(config) {}

  struct Materials {
    std::optional<SnapshotStore::Loaded> snapshot;
    LogReplay log;
    RecoveryReport report;  // snapshot/log fields filled; replay fields pending
  };

  /// Steps 1 + the log read. Cheap on a shard directory that does not
  /// exist (fresh start: empty materials, rebuilt = true).
  Materials load_shard(unsigned shard) const;

  /// Steps 2-4 against `index`, which must already wrap the recovered
  /// base tree (the snapshot tree, or the bulk rebuild when
  /// materials.report.rebuilt). Returns the completed report.
  RecoveryReport finish(Materials&& materials, HarmoniaIndex& index, const TransferModel& link,
                        std::uint64_t rebuild_keys) const;

  /// Modeled cost of the no-durability alternative: bulk rebuild from
  /// source data + full image upload. E15 plots recovery against this.
  static double modeled_rebuild_seconds(std::uint64_t num_keys, const HarmoniaTree& tree,
                                        const RecoveryTiming& timing, const TransferModel& link);

 private:
  DurabilityConfig config_;
};

}  // namespace harmonia::persist
