// SnapshotStore — committed epoch images on disk, newest-valid wins.
//
// A snapshot is one committed epoch's full state: the v2 HarmoniaTree
// image (FNV-checksummed, carrying the fill target and delta-overlay
// sidecar) written to `snap-<epoch>.img` inside a per-shard directory.
// Snapshots are written whole-file; a crash mid-write leaves a torn
// image that load() rejects via the tree format's own checksum, which
// is exactly what makes the newest-valid fallback chain safe: recovery
// walks epochs newest-first and discards every image that fails to
// decode, landing on the last snapshot that finished.
//
// A small text MANIFEST (CRC32-sealed) names the retained snapshots so
// recovery doesn't have to trust a directory listing; when the manifest
// itself is torn (it is rewritten on every snapshot) recovery falls
// back to scanning the directory.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "harmonia/tree.hpp"

namespace harmonia::persist {

struct Manifest {
  unsigned shard = 0;
  /// Retained snapshot epochs, newest first.
  std::vector<std::uint64_t> snapshots;

  /// Text encoding, sealed with a trailing "crc <hex>" line.
  static std::string encode(const Manifest& m);
  /// nullopt when the file is missing, unparsable, or fails its CRC.
  static std::optional<Manifest> parse_file(const std::filesystem::path& path);
};

class SnapshotStore {
 public:
  explicit SnapshotStore(std::filesystem::path dir) : dir_(std::move(dir)) {}

  const std::filesystem::path& dir() const { return dir_; }
  std::filesystem::path manifest_path() const { return dir_ / "MANIFEST"; }
  std::filesystem::path path_for(std::uint64_t epoch) const;

  /// The serialized v2 image (what a snapshot file holds).
  static std::string encode(const HarmoniaTree& tree, const TreeSnapshotExtras& extras);

  /// Writes `snap-<epoch>.img` directly (whole file, flushed). Direct
  /// path for tests/benches; the serving layer writes encode()d images
  /// through its crash-aware ShardDurability instead.
  void write(std::uint64_t epoch, const HarmoniaTree& tree, const TreeSnapshotExtras& extras);

  /// Snapshot epochs on disk, newest first. Prefers the manifest; falls
  /// back to a directory scan when it is missing or torn (sets
  /// *manifest_fallback when provided).
  std::vector<std::uint64_t> list(bool* manifest_fallback = nullptr) const;

  struct Loaded {
    HarmoniaTree tree;
    TreeSnapshotExtras extras;
    std::uint64_t epoch = 0;
    std::uint64_t bytes = 0;
    /// Newer snapshots discarded because they failed to decode.
    unsigned discarded = 0;
    bool manifest_fallback = false;
  };

  /// Newest snapshot that decodes cleanly, walking the fallback chain.
  /// nullopt when no valid snapshot exists at all.
  std::optional<Loaded> load_newest() const;

  /// Deletes the oldest snapshots until at most `keep` remain (by
  /// directory scan, so stale generations are pruned too). When a valid
  /// manifest exists it is rewritten to name only the survivors *before*
  /// any file is deleted: a crash mid-prune can leave extra files on
  /// disk, never a manifest pinning a deleted snapshot.
  void prune(std::size_t keep);

  /// Rewrites the manifest to name the given epochs (newest first).
  void write_manifest(unsigned shard, std::vector<std::uint64_t> snapshots);

 private:
  std::filesystem::path dir_;
};

}  // namespace harmonia::persist
