#include "persist/recovery.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/expect.hpp"

namespace harmonia::persist {

std::string RecoveryReport::csv_header() {
  return "shard,from_snapshot,snapshot_epoch,snapshots_discarded,manifest_fallback,"
         "overlay_replayed,batches_replayed,ops_replayed,log_torn_tail,rebuilt,"
         "snapshot_bytes,log_bytes,recovered_epoch,modeled_ms";
}

std::string RecoveryReport::csv_row() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%u,%d,%" PRIu64 ",%u,%d,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%d,%d,%" PRIu64
                ",%" PRIu64 ",%" PRIu64 ",%.6f",
                shard, from_snapshot ? 1 : 0, snapshot_epoch, snapshots_discarded,
                manifest_fallback ? 1 : 0, overlay_replayed, batches_replayed, ops_replayed,
                log_torn_tail ? 1 : 0, rebuilt ? 1 : 0, snapshot_bytes, log_bytes,
                recovered_epoch, modeled_seconds * 1e3);
  return buf;
}

RecoveryManager::Materials RecoveryManager::load_shard(unsigned shard) const {
  Materials m;
  m.report.shard = shard;
  const std::filesystem::path dir = config_.shard_dir(shard);
  SnapshotStore store(dir);
  m.snapshot = store.load_newest();
  if (m.snapshot.has_value()) {
    m.report.from_snapshot = true;
    m.report.snapshot_epoch = m.snapshot->epoch;
    m.report.snapshots_discarded = m.snapshot->discarded;
    m.report.manifest_fallback = m.snapshot->manifest_fallback;
    m.report.snapshot_bytes = m.snapshot->bytes;
  } else {
    m.report.rebuilt = true;
    bool fallback = false;
    m.report.snapshots_discarded = static_cast<unsigned>(store.list(&fallback).size());
    m.report.manifest_fallback = fallback;
  }
  m.log = UpdateLog::replay(dir / "update.log");
  m.report.log_torn_tail = m.log.torn_tail;
  // A cold start reads the whole log to find the valid tail.
  m.report.log_bytes = m.log.total_bytes;
  return m;
}

RecoveryReport RecoveryManager::finish(Materials&& materials, HarmoniaIndex& index,
                                       const TransferModel& link,
                                       std::uint64_t rebuild_keys) const {
  RecoveryReport report = std::move(materials.report);
  report.recovered_epoch = report.snapshot_epoch;

  // Step 2: fold the snapshot's overlay sidecar into the base, exactly
  // as a compaction epoch would, so patched keys and tombstones survive
  // the restart.
  if (materials.snapshot.has_value() && !materials.snapshot->extras.overlay.empty()) {
    std::vector<queries::UpdateOp> fold;
    fold.reserve(materials.snapshot->extras.overlay.size());
    for (const auto& rec : materials.snapshot->extras.overlay) {
      fold.push_back(rec.tombstone != 0
                         ? queries::UpdateOp{queries::OpKind::kDelete, rec.key, Value{0}}
                         : queries::UpdateOp{queries::OpKind::kInsert, rec.key, rec.value});
    }
    index.commit_staged(index.stage_update(fold));
    report.overlay_replayed = fold.size();
  }

  // Step 3: replay every fully-logged batch past the snapshot through
  // the normal stage/commit path.
  for (const LogBatch& batch : materials.log.batches) {
    if (batch.epoch <= report.snapshot_epoch) continue;
    index.commit_staged(index.stage_update(batch.ops));
    ++report.batches_replayed;
    report.ops_replayed += batch.ops.size();
    report.recovered_epoch = batch.epoch;
  }

  // Modeled cold-start cost (virtual clock — deterministic).
  const RecoveryTiming& t = config_.timing;
  const double disk_bytes =
      static_cast<double>(report.snapshot_bytes) + static_cast<double>(report.log_bytes);
  report.modeled_seconds = disk_bytes / (t.disk_gigabytes_per_second * 1e9) +
                           static_cast<double>(report.overlay_replayed + report.ops_replayed) *
                               t.seconds_per_replay_op +
                           image_resync_seconds(index.tree(), link);
  if (report.rebuilt) {
    report.modeled_seconds +=
        static_cast<double>(rebuild_keys) * t.seconds_per_rebuild_key;
  }

  // Step 4: checkpoint the recovered state as a new generation — a
  // fresh epoch-0 image, a reset log, older snapshots pruned — so the
  // restarted server's epoch numbering (which begins again at 1) can
  // never collide with stale on-disk records.
  const std::filesystem::path dir = config_.shard_dir(report.shard);
  SnapshotStore store(dir);
  std::filesystem::create_directories(dir);
  UpdateLog::truncate(dir / "update.log", 0);
  store.write(0, index.tree(), index.snapshot_extras());
  store.prune(1);
  store.write_manifest(report.shard, {0});
  return report;
}

double RecoveryManager::modeled_rebuild_seconds(std::uint64_t num_keys, const HarmoniaTree& tree,
                                                const RecoveryTiming& timing,
                                                const TransferModel& link) {
  return static_cast<double>(num_keys) * timing.seconds_per_rebuild_key +
         image_resync_seconds(tree, link);
}

}  // namespace harmonia::persist
