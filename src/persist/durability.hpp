// ShardDurability / DurabilityDomain — the serving stack's write path
// to disk, with deterministic crash injection built in.
//
// Each shard owns one directory (`<dir>/shard-0000/...`) holding its
// append-only update log, its retained snapshots, and a CRC-sealed
// manifest; shards never share files, so they recover independently.
//
// Crash injection rides the simulation's virtual clock: every durable
// write carries the virtual instant it happens at, and once the armed
// crash time is reached the write is silently dropped — the process is
// dead, nothing after the crash instant reaches disk. apply_crash()
// then models the torn write: it chops the configured number of bytes
// off the victim shard's *last surviving* write (log record, snapshot
// image, or manifest — whichever happened to be in flight), which is
// exactly the mid-log-append / mid-snapshot-write state the recovery
// path must survive.
#pragma once

#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "harmonia/index.hpp"
#include "persist/snapshot_store.hpp"
#include "persist/update_log.hpp"
#include "queries/batch.hpp"

namespace harmonia::persist {

/// Disk/CPU cost model for the recovery report's modeled seconds (the
/// virtual-clock analogue of the PCIe TransferModel).
struct RecoveryTiming {
  /// Sequential read bandwidth for snapshot + log bytes.
  double disk_gigabytes_per_second = 2.0;
  /// CPU cost per replayed log/overlay op (Algorithm-1 apply).
  double seconds_per_replay_op = 250e-9;
  /// CPU cost per key of a full bulk rebuild (the fallback path).
  double seconds_per_rebuild_key = 250e-9;
};

struct DurabilityConfig {
  /// Root directory for all shards. Empty = persistence disabled.
  std::string dir;
  /// Logged epochs between cadence snapshots; 0 = only forced
  /// (compaction-triggered) snapshots.
  std::uint64_t snapshot_every = 8;
  /// Snapshots retained per shard (the fallback chain's depth).
  std::size_t retain = 2;
  /// Cold-start from `dir` (newest-valid snapshot + log replay) instead
  /// of bulk building.
  bool recover = false;
  RecoveryTiming timing;

  bool enabled() const { return !dir.empty(); }
  std::filesystem::path shard_dir(unsigned shard) const;
};

/// Armed crash instant, shared by every shard of a domain.
struct CrashState {
  double at = std::numeric_limits<double>::infinity();
  bool dead(double t) const { return t >= at; }
};

class ShardDurability {
 public:
  ShardDurability(const DurabilityConfig& config, unsigned shard, const CrashState* crash);

  unsigned shard() const { return shard_; }
  const std::filesystem::path& dir() const { return dir_; }

  /// Appends one epoch's update batch to the log (write-ahead: called
  /// before the batch is applied to the in-memory index).
  void log_batch(std::uint64_t epoch, std::span<const queries::UpdateOp> ops, double at);

  /// Snapshot point after epoch `epoch` committed: writes an image when
  /// the cadence is due or `force` is set (delta-mode fold-compactions
  /// force — the freshly rebuilt image is the natural snapshot). Also
  /// rewrites the manifest and prunes beyond the retain bound. Returns
  /// true when an image was written.
  bool maybe_snapshot(std::uint64_t epoch, const HarmoniaIndex& index, bool force, double at);

  std::uint64_t log_batches() const { return log_batches_; }
  std::uint64_t log_ops() const { return log_ops_; }
  std::uint64_t snapshots_written() const { return snapshots_; }

  /// Log-tail shipping for replica catch-up: the batches with
  /// epoch > `after_epoch` that a rejoining group member must replay.
  LogReplay tail_since(std::uint64_t after_epoch) const {
    return UpdateLog::replay_tail(log_path_, after_epoch);
  }

  /// Models the torn write for this shard: chops `torn_bytes` off the
  /// last durable write (no-op if nothing was written).
  void apply_tear(std::uint64_t torn_bytes);

 private:
  /// Writes `bytes` to `path` (append or truncate), unless the crash
  /// instant has passed. Records the write for apply_tear.
  bool durable_write(const std::filesystem::path& path, const std::string& bytes, bool append,
                     double at);

  const DurabilityConfig& config_;
  unsigned shard_;
  std::filesystem::path dir_;
  const CrashState* crash_;
  SnapshotStore store_;
  std::filesystem::path log_path_;

  std::uint64_t log_batches_ = 0;
  std::uint64_t log_ops_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t logged_since_snapshot_ = 0;
  std::vector<std::uint64_t> retained_;  // newest first

  struct LastWrite {
    std::filesystem::path path;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
  };
  LastWrite last_write_;
};

/// One durability domain per serving stack: the per-shard writers plus
/// the shared crash state.
class DurabilityDomain {
 public:
  DurabilityDomain(DurabilityConfig config, unsigned num_shards);

  const DurabilityConfig& config() const { return config_; }
  unsigned num_shards() const { return static_cast<unsigned>(shards_.size()); }
  ShardDurability* shard(unsigned s) { return shards_[s].get(); }

  /// Arms the crash: durable writes at virtual time >= `at` are dropped.
  void set_crash_time(double at) { crash_.at = at; }

  /// Seals a crash after the run: tears `torn_bytes` off `torn_shard`'s
  /// last surviving write. The domain is dead afterwards — recovery
  /// builds a fresh one.
  void apply_crash(unsigned torn_shard, std::uint64_t torn_bytes);

  std::uint64_t total_log_batches() const;
  std::uint64_t total_snapshots_written() const;

 private:
  DurabilityConfig config_;
  CrashState crash_;
  std::vector<std::unique_ptr<ShardDurability>> shards_;
};

}  // namespace harmonia::persist
