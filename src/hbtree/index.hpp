// HBTreeIndex — baseline facade: a CPU B+tree (the HB+ host structure)
// plus its node-based device image. Search runs the fanout-group kernel;
// batch updates run on the CPU tree and re-synchronize the image
// (§3.2.2 / Figure 14 comparison).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "btree/btree.hpp"
#include "gpusim/device.hpp"
#include "hbtree/layout.hpp"
#include "hbtree/search.hpp"
#include "queries/batch.hpp"

namespace harmonia::hbtree {

struct HBQueryResult {
  std::vector<Value> values;
  HBSearchStats search;
  double kernel_seconds = 0.0;
  double throughput() const {
    return kernel_seconds > 0.0 ? static_cast<double>(values.size()) / kernel_seconds : 0.0;
  }
};

struct HBUpdateStats {
  std::uint64_t updates = 0;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t failed = 0;
  double apply_seconds = 0.0;
  double sync_seconds = 0.0;

  std::uint64_t total_ops() const { return updates + inserts + deletes; }
  double ops_per_second() const {
    const double t = apply_seconds + sync_seconds;
    return t > 0.0 ? static_cast<double>(total_ops()) / t : 0.0;
  }
};

class HBTreeIndex {
 public:
  HBTreeIndex(gpusim::Device& device, btree::BTree tree);

  static HBTreeIndex build(gpusim::Device& device, std::span<const btree::Entry> entries,
                           unsigned fanout, double fill_factor = 0.69);

  const btree::BTree& tree() const { return tree_; }
  const HBTreeDeviceImage& image() const { return image_; }

  HBQueryResult search(std::span<const Key> batch);

  /// CPU batch update on the pointer tree, then device re-sync.
  HBUpdateStats update_batch(std::span<const queries::UpdateOp> ops);

 private:
  void sync_device();

  gpusim::Device& device_;
  btree::BTree tree_;
  HBTreeDeviceImage image_;
};

}  // namespace harmonia::hbtree
