#include "hbtree/search.hpp"

#include <array>
#include <bit>

#include "common/expect.hpp"

namespace harmonia::hbtree {

using gpusim::LaneMask;

HBSearchStats hb_search_batch(gpusim::Device& device, const HBTreeDeviceImage& image,
                              gpusim::DevPtr<Key> queries, std::uint64_t n,
                              gpusim::DevPtr<Value> out_values) {
  HARMONIA_CHECK(n > 0);
  const gpusim::DeviceSpec& spec = device.spec();
  const unsigned warp = spec.warp_size;
  const unsigned gs = std::min(std::bit_ceil(image.fanout), warp);
  const unsigned qpw = warp / gs;
  const unsigned kpn = image.keys_per_node();
  const unsigned chunks_per_node = (kpn + gs - 1) / gs;
  const std::uint64_t num_warps = (n + qpw - 1) / qpw;

  auto kernel = [&](gpusim::WarpCtx& w) {
    const std::uint64_t base = w.warp_id() * qpw;
    const unsigned nq = static_cast<unsigned>(std::min<std::uint64_t>(qpw, n - base));

    std::array<std::uint64_t, 32> addrs{};
    std::array<Key, 32> lane_keys{};
    std::array<Key, 32> target{};
    std::array<std::uint32_t, 32> node{};
    std::array<unsigned, 32> sep_leq{};
    std::array<bool, 32> found{};
    std::array<unsigned, 32> found_slot{};

    LaneMask leader_mask = 0;
    for (unsigned g = 0; g < nq; ++g) {
      leader_mask |= gpusim::lane_bit(g * gs);
      addrs[g * gs] = queries.element_addr(base + g);
    }
    {
      std::array<Key, 32> qvals{};
      w.gather<Key>(leader_mask, std::span(addrs.data(), warp), qvals);
      for (unsigned g = 0; g < nq; ++g) target[g] = qvals[g * gs];
      w.compute(leader_mask);
    }

    for (unsigned level = 0; level < image.height; ++level) {
      const bool leaf_level = (level + 1 == image.height);
      for (unsigned g = 0; g < nq; ++g) sep_leq[g] = 0;

      // Full-node scan: every chunk, every key (traditional design).
      for (unsigned chunk = 0; chunk < chunks_per_node; ++chunk) {
        LaneMask mask = 0;
        for (unsigned g = 0; g < nq; ++g) {
          for (unsigned j = 0; j < gs; ++j) {
            const unsigned slot = chunk * gs + j;
            if (slot >= kpn) break;
            const unsigned lane = g * gs + j;
            mask |= gpusim::lane_bit(lane);
            addrs[lane] = image.node_key_addr(node[g], slot);
          }
        }
        if (mask == 0) break;
        w.gather<Key>(mask, std::span(addrs.data(), warp), lane_keys);
        w.compute(mask);

        for (unsigned g = 0; g < nq; ++g) {
          for (unsigned j = 0; j < gs; ++j) {
            const unsigned slot = chunk * gs + j;
            if (slot >= kpn) break;
            const Key k = lane_keys[g * gs + j];
            if (leaf_level) {
              if (k == target[g]) {
                found[g] = true;
                found_slot[g] = slot;
              }
            } else if (k <= target[g]) {
              ++sep_leq[g];
            }
          }
        }
      }

      if (!leaf_level) {
        // The child-reference indirection: a 4 B load from the node
        // record in global memory per query per level.
        LaneMask mask = 0;
        for (unsigned g = 0; g < nq; ++g) {
          mask |= gpusim::lane_bit(g * gs);
          addrs[g * gs] = image.child_ref_addr(node[g], sep_leq[g]);
        }
        std::array<std::uint32_t, 32> refs{};
        w.gather<std::uint32_t>(mask, std::span(addrs.data(), warp), refs);
        w.compute(mask);
        for (unsigned g = 0; g < nq; ++g) node[g] = refs[g * gs];
      }
    }

    LaneMask hit_mask = 0;
    std::array<Value, 32> vals{};
    for (unsigned g = 0; g < nq; ++g) {
      if (found[g]) {
        hit_mask |= gpusim::lane_bit(g * gs);
        addrs[g * gs] = image.value_addr(node[g], found_slot[g]);
      }
    }
    if (hit_mask != 0) {
      w.gather<Value>(hit_mask, std::span(addrs.data(), warp), vals);
    }
    LaneMask out_mask = 0;
    std::array<Value, 32> out_vals{};
    for (unsigned g = 0; g < nq; ++g) {
      const unsigned lane = g * gs;
      out_mask |= gpusim::lane_bit(lane);
      addrs[lane] = out_values.element_addr(base + g);
      out_vals[lane] = found[g] ? vals[lane] : kNotFound;
    }
    w.scatter<Value>(out_mask, std::span(addrs.data(), warp),
                     std::span<const Value>(out_vals.data(), warp));
  };

  HBSearchStats stats;
  stats.metrics = device.launch(num_warps, kernel);
  stats.queries = n;
  stats.warps = num_warps;
  return stats;
}

}  // namespace harmonia::hbtree
