#include "hbtree/layout.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace harmonia::hbtree {

HBTreeHost HBTreeHost::from_btree(const btree::BTree& tree) {
  const auto levels = tree.levels();
  HARMONIA_CHECK_MSG(!levels.empty(), "cannot serialize an empty B+tree");

  HBTreeHost out;
  out.fanout_ = tree.fanout();
  out.height_ = static_cast<unsigned>(levels.size());
  const unsigned kpn = out.fanout_ - 1;

  std::uint32_t total = 0;
  for (const auto& level : levels) total += static_cast<std::uint32_t>(level.size());
  out.num_nodes_ = total;
  out.first_leaf_ = total - static_cast<std::uint32_t>(levels.back().size());

  out.keys_.assign(static_cast<std::size_t>(total) * kpn, kPadKey);
  out.children_.assign(static_cast<std::size_t>(total) * out.fanout_, kNoChild);
  out.values_.assign(
      static_cast<std::size_t>(total - out.first_leaf_) * kpn, Value{0});

  std::uint32_t bfs = 0;
  std::uint32_t next_child = 1;
  for (const auto& level : levels) {
    for (const btree::Node* node : level) {
      Key* kslots = out.keys_.data() + static_cast<std::size_t>(bfs) * kpn;
      std::copy(node->keys.begin(), node->keys.end(), kslots);
      if (node->leaf) {
        Value* vals =
            out.values_.data() + static_cast<std::size_t>(bfs - out.first_leaf_) * kpn;
        std::copy(node->values.begin(), node->values.end(), vals);
      } else {
        std::uint32_t* cslots =
            out.children_.data() + static_cast<std::size_t>(bfs) * out.fanout_;
        for (std::size_t c = 0; c < node->children.size(); ++c) {
          cslots[c] = next_child + static_cast<std::uint32_t>(c);
        }
        next_child += static_cast<std::uint32_t>(node->children.size());
      }
      ++bfs;
    }
  }
  return out;
}

std::span<const Key> HBTreeHost::node_keys(std::uint32_t node) const {
  HARMONIA_CHECK(node < num_nodes_);
  return std::span<const Key>(keys_).subspan(
      static_cast<std::size_t>(node) * keys_per_node(), keys_per_node());
}

std::span<const std::uint32_t> HBTreeHost::node_children(std::uint32_t node) const {
  HARMONIA_CHECK(node < num_nodes_);
  return std::span<const std::uint32_t>(children_).subspan(
      static_cast<std::size_t>(node) * fanout_, fanout_);
}

std::optional<Value> HBTreeHost::search(Key key) const {
  if (num_nodes_ == 0 || key == kPadKey) return std::nullopt;
  std::uint32_t node = 0;
  for (unsigned level = 0; level + 1 < height_; ++level) {
    const auto keys = node_keys(node);
    const auto it = std::upper_bound(keys.begin(), keys.end(), key);
    const auto idx = static_cast<std::size_t>(it - keys.begin());
    node = node_children(node)[idx];
    HARMONIA_CHECK(node != kNoChild);
  }
  const auto keys = node_keys(node);
  const auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return std::nullopt;
  const auto slot = static_cast<std::size_t>(it - keys.begin());
  return values_[static_cast<std::size_t>(node - first_leaf_) * keys_per_node() + slot];
}

HBTreeDeviceImage HBTreeDeviceImage::upload(gpusim::Device& device, const HBTreeHost& host) {
  HBTreeDeviceImage img;
  img.fanout = host.fanout();
  img.height = host.height();
  img.num_nodes = host.num_nodes();
  img.first_leaf = host.first_leaf_index();
  const unsigned kpn = host.keys_per_node();

  // keys then child refs, padded to 8 B so records stay aligned.
  img.node_stride = (static_cast<std::uint64_t>(kpn) * sizeof(Key) +
                     static_cast<std::uint64_t>(img.fanout) * sizeof(std::uint32_t) + 7) /
                    8 * 8;

  auto& mem = device.memory();
  img.nodes = mem.malloc<std::uint8_t>(img.node_stride * img.num_nodes);
  for (std::uint32_t n = 0; n < img.num_nodes; ++n) {
    const auto keys = host.node_keys(n);
    mem.write_bytes(img.nodes.addr + n * img.node_stride, keys.data(), keys.size_bytes());
    const auto children = host.node_children(n);
    mem.write_bytes(img.nodes.addr + n * img.node_stride + kpn * sizeof(Key),
                    children.data(), children.size_bytes());
  }
  if (!host.value_region().empty()) {
    img.value_region = mem.malloc<Value>(host.value_region().size());
    mem.copy_to_device(img.value_region, host.value_region());
  }
  return img;
}

}  // namespace harmonia::hbtree
