// HB+Tree baseline search kernel: fanout-wide thread groups, full-node key
// comparisons (no early exit — the "useless comparisons" of §4.2), and a
// child-reference load from global memory at every level (the indirection
// of §2.2's "gap in memory access requirement").
#pragma once

#include <cstdint>

#include "gpusim/device.hpp"
#include "hbtree/layout.hpp"

namespace harmonia::hbtree {

inline constexpr Value kNotFound = ~Value{0};

struct HBSearchStats {
  gpusim::KernelMetrics metrics;
  std::uint64_t queries = 0;
  std::uint64_t warps = 0;
};

HBSearchStats hb_search_batch(gpusim::Device& device, const HBTreeDeviceImage& image,
                              gpusim::DevPtr<Key> queries, std::uint64_t n,
                              gpusim::DevPtr<Value> out_values);

}  // namespace harmonia::hbtree
