#include "hbtree/index.hpp"

#include "common/expect.hpp"
#include "common/timer.hpp"

namespace harmonia::hbtree {

using queries::OpKind;

HBTreeIndex::HBTreeIndex(gpusim::Device& device, btree::BTree tree)
    : device_(device),
      tree_(std::move(tree)),
      image_(HBTreeDeviceImage::upload(device, HBTreeHost::from_btree(tree_))) {}

HBTreeIndex HBTreeIndex::build(gpusim::Device& device, std::span<const btree::Entry> entries,
                               unsigned fanout, double fill_factor) {
  btree::BTree tree(fanout);
  tree.bulk_load(entries, fill_factor);
  return HBTreeIndex(device, std::move(tree));
}

HBQueryResult HBTreeIndex::search(std::span<const Key> batch) {
  HARMONIA_CHECK(!batch.empty());
  auto& mem = device_.memory();
  auto d_queries = mem.malloc<Key>(batch.size());
  mem.copy_to_device(d_queries, batch);
  auto d_out = mem.malloc<Value>(batch.size());

  HBQueryResult result;
  result.search = hb_search_batch(device_, image_, d_queries, batch.size(), d_out);
  result.kernel_seconds = result.search.metrics.elapsed_seconds(device_.spec());
  result.values.resize(batch.size());
  mem.copy_to_host(std::span<Value>(result.values), d_out);
  return result;
}

HBUpdateStats HBTreeIndex::update_batch(std::span<const queries::UpdateOp> ops) {
  HBUpdateStats stats;
  WallTimer timer;
  for (const auto& op : ops) {
    switch (op.kind) {
      case OpKind::kUpdate:
        ++stats.updates;
        if (!tree_.update(op.key, op.value)) ++stats.failed;
        break;
      case OpKind::kInsert:
        ++stats.inserts;
        tree_.insert(op.key, op.value);
        break;
      case OpKind::kDelete:
        ++stats.deletes;
        if (!tree_.erase(op.key)) ++stats.failed;
        break;
    }
  }
  stats.apply_seconds = timer.elapsed_seconds();

  timer.reset();
  sync_device();
  stats.sync_seconds = timer.elapsed_seconds();
  return stats;
}

void HBTreeIndex::sync_device() {
  device_.memory().free_all();
  device_.flush_caches();
  image_ = HBTreeDeviceImage::upload(device_, HBTreeHost::from_btree(tree_));
}

}  // namespace harmonia::hbtree
