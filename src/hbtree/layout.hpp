// HB+Tree baseline device layout (Shahvarani & Jacobsen, SIGMOD'16 — the
// GPU part, which the paper compares against in §5).
//
// Unlike Harmonia, each node record keeps its *child references* next to
// its keys (Figure 4a): traversal must load the child pointer from global
// memory at every level — the indirection Harmonia's prefix-sum region
// eliminates. Node records are large (~1 KB at fanout 64), nothing lives
// in constant memory, and the whole structure resides in global memory.
//
// Record layout (node stride, 8 B aligned):
//   [ keys: (fanout-1) x u64 | child refs: fanout x u32 (BFS indices) ]
// Leaf records reuse the child-ref area as a value-region base offset via
// the parallel leaf value array (same convention as Harmonia, so the two
// structures differ only in what the paper says they differ in).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "btree/btree.hpp"
#include "gpusim/device.hpp"

namespace harmonia::hbtree {

using Key = std::uint64_t;
using Value = std::uint64_t;

inline constexpr Key kPadKey = ~Key{0};
inline constexpr std::uint32_t kNoChild = ~std::uint32_t{0};

/// Host-side flattened HB+tree (BFS node order).
class HBTreeHost {
 public:
  static HBTreeHost from_btree(const btree::BTree& tree);

  unsigned fanout() const { return fanout_; }
  unsigned height() const { return height_; }
  std::uint32_t num_nodes() const { return num_nodes_; }
  std::uint32_t first_leaf_index() const { return first_leaf_; }
  unsigned keys_per_node() const { return fanout_ - 1; }

  std::span<const Key> node_keys(std::uint32_t node) const;
  std::span<const std::uint32_t> node_children(std::uint32_t node) const;
  bool is_leaf(std::uint32_t node) const { return node >= first_leaf_; }
  std::span<const Value> value_region() const { return values_; }

  /// Host reference search (tests).
  std::optional<Value> search(Key key) const;

 private:
  unsigned fanout_ = 0;
  unsigned height_ = 0;
  std::uint32_t num_nodes_ = 0;
  std::uint32_t first_leaf_ = 0;
  std::vector<Key> keys_;                 // num_nodes * (fanout-1), padded
  std::vector<std::uint32_t> children_;   // num_nodes * fanout, kNoChild pad
  std::vector<Value> values_;             // num_leaves * (fanout-1)
};

/// Device placement: one interleaved node-record array in global memory.
struct HBTreeDeviceImage {
  unsigned fanout = 0;
  unsigned height = 0;
  std::uint32_t num_nodes = 0;
  std::uint32_t first_leaf = 0;
  /// Node record stride in bytes.
  std::uint64_t node_stride = 0;
  gpusim::DevPtr<std::uint8_t> nodes;
  gpusim::DevPtr<Value> value_region;

  unsigned keys_per_node() const { return fanout - 1; }

  std::uint64_t node_key_addr(std::uint32_t node, unsigned slot) const {
    return nodes.addr + node * node_stride + slot * sizeof(Key);
  }
  std::uint64_t child_ref_addr(std::uint32_t node, unsigned child) const {
    return nodes.addr + node * node_stride + keys_per_node() * sizeof(Key) +
           child * sizeof(std::uint32_t);
  }
  std::uint64_t value_addr(std::uint32_t leaf_node, unsigned slot) const {
    return value_region.element_addr(
        static_cast<std::uint64_t>(leaf_node - first_leaf) * keys_per_node() + slot);
  }

  static HBTreeDeviceImage upload(gpusim::Device& device, const HBTreeHost& host);
};

}  // namespace harmonia::hbtree
