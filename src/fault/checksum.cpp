#include "fault/checksum.hpp"

#include <array>
#include <vector>

namespace harmonia::fault {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

template <typename T>
std::uint32_t crc_span(std::span<const T> data, std::uint32_t seed = 0) {
  return crc32(data.data(), data.size_bytes(), seed);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) c = crc_table()[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

ImageChecksums host_checksums(const HarmoniaTree& tree) {
  ImageChecksums sums;
  sums.keys = crc_span(tree.key_region());
  sums.prefix_sum = crc_span(tree.prefix_sum());
  sums.values = crc_span(tree.value_region());
  return sums;
}

ImageChecksums device_checksums(const HarmoniaIndex& index) {
  const auto& mem = index.device().memory();
  const auto& img = index.image();
  const auto& tree = index.tree();

  ImageChecksums sums;

  std::vector<std::uint8_t> buf(tree.key_region().size() * sizeof(Key));
  if (!buf.empty()) mem.read_bytes(img.key_region.addr, buf.data(), buf.size());
  sums.keys = crc32(buf.data(), buf.size());

  // Prefix sum as the kernel would read it: ps_addr routes the top
  // `ps_const_count` nodes to the constant segment, the rest to global.
  std::vector<std::uint32_t> ps(tree.prefix_sum().size());
  for (std::uint32_t node = 0; node < ps.size(); ++node) {
    ps[node] = mem.read<std::uint32_t>(img.ps_addr(node));
  }
  sums.prefix_sum = crc32(ps.data(), ps.size() * sizeof(std::uint32_t));

  buf.assign(tree.value_region().size() * sizeof(Value), 0);
  if (!buf.empty()) mem.read_bytes(img.value_region.addr, buf.data(), buf.size());
  sums.values = crc32(buf.data(), buf.size());

  return sums;
}

}  // namespace harmonia::fault
