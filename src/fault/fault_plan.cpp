#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace harmonia::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransferSlowdown: return "slow";
    case FaultKind::kDispatchFailure: return "fail";
    case FaultKind::kResyncCorruption: return "corrupt";
    case FaultKind::kShardLost: return "lose";
  }
  return "?";
}

void FaultPlan::validate() const {
  for (const FaultEvent& e : events) {
    HARMONIA_CHECK_MSG(e.at >= 0.0, "fault event time must be >= 0");
    HARMONIA_CHECK_MSG(e.duration >= 0.0, "fault duration must be >= 0");
    switch (e.kind) {
      case FaultKind::kTransferSlowdown:
        HARMONIA_CHECK_MSG(e.factor >= 1.0, "slowdown factor must be >= 1");
        HARMONIA_CHECK_MSG(e.duration > 0.0, "slowdown needs duration > 0");
        break;
      case FaultKind::kDispatchFailure:
        HARMONIA_CHECK_MSG(e.count > 0, "fail event needs count > 0");
        break;
      case FaultKind::kResyncCorruption:
        HARMONIA_CHECK_MSG(e.bytes > 0, "corrupt event needs bytes > 0");
        break;
      case FaultKind::kShardLost:
        HARMONIA_CHECK_MSG(e.duration > 0.0, "lose event needs repair > 0");
        break;
    }
  }
  HARMONIA_CHECK_MSG(
      std::is_sorted(events.begin(), events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; }),
      "fault events must be sorted by time");
}

namespace {

FaultKind kind_from(const std::string& name) {
  if (name == "slow") return FaultKind::kTransferSlowdown;
  if (name == "fail") return FaultKind::kDispatchFailure;
  if (name == "corrupt") return FaultKind::kResyncCorruption;
  if (name == "lose") return FaultKind::kShardLost;
  HARMONIA_CHECK_MSG(false, "unknown fault kind '" << name
                            << "' (want slow|fail|corrupt|lose)");
  return FaultKind::kTransferSlowdown;
}

double parse_double(const std::string& tok) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  HARMONIA_CHECK_MSG(used == tok.size() && !tok.empty(),
                     "bad number '" << tok << "' in fault spec");
  return v;
}

std::uint64_t parse_uint(const std::string& tok) {
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(tok, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  HARMONIA_CHECK_MSG(used == tok.size() && !tok.empty(),
                     "bad integer '" << tok << "' in fault spec");
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, sep)) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& item : split(spec, ';')) {
    const auto at_pos = item.find('@');
    HARMONIA_CHECK_MSG(at_pos != std::string::npos,
                       "fault event '" << item << "' lacks '@<seconds>'");
    FaultEvent e;
    e.kind = kind_from(item.substr(0, at_pos));
    const auto colon = item.find(':', at_pos);
    e.at = parse_double(item.substr(at_pos + 1, colon == std::string::npos
                                                    ? std::string::npos
                                                    : colon - at_pos - 1));
    if (colon != std::string::npos) {
      for (const std::string& kv : split(item.substr(colon + 1), ',')) {
        const auto eq = kv.find('=');
        HARMONIA_CHECK_MSG(eq != std::string::npos,
                           "fault option '" << kv << "' lacks '='");
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (key == "shard") {
          e.shard = static_cast<unsigned>(parse_uint(val));
        } else if (key == "factor") {
          e.factor = parse_double(val);
        } else if (key == "duration" || key == "repair") {
          e.duration = parse_double(val);
        } else if (key == "count") {
          e.count = static_cast<unsigned>(parse_uint(val));
        } else if (key == "bytes") {
          e.bytes = static_cast<unsigned>(parse_uint(val));
        } else {
          HARMONIA_CHECK_MSG(false, "unknown fault option '" << key << "'");
        }
      }
    }
    plan.events.push_back(e);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  plan.validate();
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  char buf[160];
  for (const FaultEvent& e : events) {
    if (!out.empty()) out += ';';
    switch (e.kind) {
      case FaultKind::kTransferSlowdown:
        std::snprintf(buf, sizeof buf, "slow@%g:shard=%u,factor=%g,duration=%g",
                      e.at, e.shard, e.factor, e.duration);
        break;
      case FaultKind::kDispatchFailure:
        std::snprintf(buf, sizeof buf, "fail@%g:shard=%u,count=%u", e.at, e.shard,
                      e.count);
        break;
      case FaultKind::kResyncCorruption:
        std::snprintf(buf, sizeof buf, "corrupt@%g:shard=%u,bytes=%u", e.at, e.shard,
                      e.bytes);
        break;
      case FaultKind::kShardLost:
        std::snprintf(buf, sizeof buf, "lose@%g:shard=%u,repair=%g", e.at, e.shard,
                      e.duration);
        break;
    }
    out += buf;
  }
  return out;
}

FaultPlan FaultPlan::random(const RandomSpec& spec, std::uint64_t seed) {
  HARMONIA_CHECK(spec.horizon > 0.0);
  HARMONIA_CHECK(spec.events_per_second >= 0.0);
  HARMONIA_CHECK(spec.num_shards > 0);
  FaultPlan plan;
  if (spec.events_per_second == 0.0) return plan;

  Xoshiro256 rng(seed);
  const double total_weight =
      spec.weights[0] + spec.weights[1] + spec.weights[2] + spec.weights[3];
  HARMONIA_CHECK_MSG(total_weight > 0.0, "all fault-kind weights are zero");

  double t = 0.0;
  while (true) {
    // Poisson arrivals: exponential inter-event gaps.
    t += -std::log(1.0 - rng.next_double()) / spec.events_per_second;
    if (t >= spec.horizon) break;
    FaultEvent e;
    e.at = t;
    e.shard = static_cast<unsigned>(rng.next_below(spec.num_shards));
    double pick = rng.next_double() * total_weight;
    unsigned kind = 0;
    while (kind < 3 && pick >= spec.weights[kind]) pick -= spec.weights[kind], ++kind;
    e.kind = static_cast<FaultKind>(kind);
    switch (e.kind) {
      case FaultKind::kTransferSlowdown:
        e.factor = spec.slowdown_factor;
        e.duration = spec.slowdown_duration;
        break;
      case FaultKind::kDispatchFailure:
        e.count = spec.fail_count;
        break;
      case FaultKind::kResyncCorruption:
        e.bytes = spec.corrupt_bytes;
        break;
      case FaultKind::kShardLost:
        e.duration = spec.repair_seconds;
        break;
    }
    plan.events.push_back(e);
  }
  plan.validate();
  return plan;
}

}  // namespace harmonia::fault
