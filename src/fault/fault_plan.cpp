#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace harmonia::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransferSlowdown: return "slow";
    case FaultKind::kDispatchFailure: return "fail";
    case FaultKind::kResyncCorruption: return "corrupt";
    case FaultKind::kShardLost: return "lose";
    case FaultKind::kProcessRestart: return "restart";
    case FaultKind::kReplicaLost: return "replica-lost";
  }
  return "?";
}

void FaultPlan::validate() const {
  // Every message names the offending event (index + kind) and the
  // offending field, so a 40-event generated plan is debuggable from
  // the exception alone.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    HARMONIA_CHECK_MSG(e.at >= 0.0, "fault event #" << i << " (" << ::harmonia::fault::to_string(e.kind)
                                                    << "): field 'at' must be >= 0, got " << e.at);
    HARMONIA_CHECK_MSG(e.duration >= 0.0,
                       "fault event #" << i << " (" << ::harmonia::fault::to_string(e.kind)
                                       << "): field 'duration' must be >= 0, got " << e.duration);
    switch (e.kind) {
      case FaultKind::kTransferSlowdown:
        HARMONIA_CHECK_MSG(e.factor >= 1.0, "fault event #" << i
                                                << " (slow): field 'factor' must be >= 1, got "
                                                << e.factor);
        HARMONIA_CHECK_MSG(e.duration > 0.0,
                           "fault event #" << i << " (slow): field 'duration' must be > 0");
        break;
      case FaultKind::kDispatchFailure:
        HARMONIA_CHECK_MSG(e.count > 0,
                           "fault event #" << i << " (fail): field 'count' must be > 0");
        break;
      case FaultKind::kResyncCorruption:
        HARMONIA_CHECK_MSG(e.bytes > 0,
                           "fault event #" << i << " (corrupt): field 'bytes' must be > 0");
        break;
      case FaultKind::kShardLost:
        HARMONIA_CHECK_MSG(e.duration > 0.0,
                           "fault event #" << i << " (lose): field 'repair' must be > 0");
        break;
      case FaultKind::kProcessRestart:
        // duration (downtime) may be 0 — an instant restart — and bytes
        // (torn) may be 0 — a crash that cut cleanly between writes.
        break;
      case FaultKind::kReplicaLost:
        HARMONIA_CHECK_MSG(e.duration > 0.0,
                           "fault event #" << i
                                           << " (replica-lost): field 'repair' must be > 0");
        break;
    }
  }
  for (std::size_t i = 1; i < events.size(); ++i) {
    HARMONIA_CHECK_MSG(events[i - 1].at <= events[i].at,
                       "fault event #" << i << " (" << ::harmonia::fault::to_string(events[i].kind)
                                       << "): field 'at' (" << events[i].at
                                       << ") precedes event #" << i - 1 << " ("
                                       << events[i - 1].at << ") — events must be sorted");
  }
}

namespace {

FaultKind kind_from(const std::string& name) {
  if (name == "slow") return FaultKind::kTransferSlowdown;
  if (name == "fail") return FaultKind::kDispatchFailure;
  if (name == "corrupt") return FaultKind::kResyncCorruption;
  if (name == "lose") return FaultKind::kShardLost;
  if (name == "restart") return FaultKind::kProcessRestart;
  if (name == "replica-lost") return FaultKind::kReplicaLost;
  HARMONIA_CHECK_MSG(false, "unknown fault kind '" << name
                            << "' (want slow|fail|corrupt|lose|restart|replica-lost)");
  return FaultKind::kTransferSlowdown;
}

double parse_double(const std::string& tok) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  HARMONIA_CHECK_MSG(used == tok.size() && !tok.empty(),
                     "bad number '" << tok << "' in fault spec");
  return v;
}

std::uint64_t parse_uint(const std::string& tok) {
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(tok, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  HARMONIA_CHECK_MSG(used == tok.size() && !tok.empty(),
                     "bad integer '" << tok << "' in fault spec");
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, sep)) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& item : split(spec, ';')) {
    const auto at_pos = item.find('@');
    HARMONIA_CHECK_MSG(at_pos != std::string::npos,
                       "fault event '" << item << "' lacks '@<seconds>'");
    FaultEvent e;
    e.kind = kind_from(item.substr(0, at_pos));
    const auto colon = item.find(':', at_pos);
    e.at = parse_double(item.substr(at_pos + 1, colon == std::string::npos
                                                    ? std::string::npos
                                                    : colon - at_pos - 1));
    if (colon != std::string::npos) {
      for (const std::string& kv : split(item.substr(colon + 1), ',')) {
        const auto eq = kv.find('=');
        HARMONIA_CHECK_MSG(eq != std::string::npos,
                           "fault option '" << kv << "' lacks '='");
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (key == "shard") {
          e.shard = static_cast<unsigned>(parse_uint(val));
        } else if (key == "replica") {
          e.replica = static_cast<unsigned>(parse_uint(val));
        } else if (key == "factor") {
          e.factor = parse_double(val);
        } else if (key == "duration" || key == "repair" || key == "down") {
          e.duration = parse_double(val);
        } else if (key == "count") {
          e.count = static_cast<unsigned>(parse_uint(val));
        } else if (key == "bytes" || key == "torn") {
          e.bytes = static_cast<unsigned>(parse_uint(val));
        } else {
          HARMONIA_CHECK_MSG(false, "unknown fault option '" << key << "'");
        }
      }
    }
    plan.events.push_back(e);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  plan.validate();
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  char buf[160];
  for (const FaultEvent& e : events) {
    if (!out.empty()) out += ';';
    switch (e.kind) {
      case FaultKind::kTransferSlowdown:
        std::snprintf(buf, sizeof buf, "slow@%g:shard=%u,factor=%g,duration=%g",
                      e.at, e.shard, e.factor, e.duration);
        break;
      case FaultKind::kDispatchFailure:
        std::snprintf(buf, sizeof buf, "fail@%g:shard=%u,count=%u", e.at, e.shard,
                      e.count);
        break;
      case FaultKind::kResyncCorruption:
        std::snprintf(buf, sizeof buf, "corrupt@%g:shard=%u,bytes=%u", e.at, e.shard,
                      e.bytes);
        break;
      case FaultKind::kShardLost:
        if (e.replica != 0) {
          std::snprintf(buf, sizeof buf, "lose@%g:shard=%u,replica=%u,repair=%g",
                        e.at, e.shard, e.replica, e.duration);
        } else {
          std::snprintf(buf, sizeof buf, "lose@%g:shard=%u,repair=%g", e.at,
                        e.shard, e.duration);
        }
        break;
      case FaultKind::kProcessRestart:
        std::snprintf(buf, sizeof buf, "restart@%g:shard=%u,down=%g,torn=%u", e.at,
                      e.shard, e.duration, e.bytes);
        break;
      case FaultKind::kReplicaLost:
        std::snprintf(buf, sizeof buf,
                      "replica-lost@%g:shard=%u,replica=%u,repair=%g", e.at,
                      e.shard, e.replica, e.duration);
        break;
    }
    out += buf;
  }
  return out;
}

FaultPlan FaultPlan::random(const RandomSpec& spec, std::uint64_t seed) {
  HARMONIA_CHECK(spec.horizon > 0.0);
  HARMONIA_CHECK(spec.events_per_second >= 0.0);
  HARMONIA_CHECK(spec.num_shards > 0);
  FaultPlan plan;
  if (spec.events_per_second == 0.0) return plan;

  Xoshiro256 rng(seed);
  double total_weight = 0.0;
  for (const double w : spec.weights) total_weight += w;
  HARMONIA_CHECK_MSG(total_weight > 0.0, "all fault-kind weights are zero");

  double t = 0.0;
  while (true) {
    // Poisson arrivals: exponential inter-event gaps.
    t += -std::log(1.0 - rng.next_double()) / spec.events_per_second;
    if (t >= spec.horizon) break;
    FaultEvent e;
    e.at = t;
    e.shard = static_cast<unsigned>(rng.next_below(spec.num_shards));
    double pick = rng.next_double() * total_weight;
    unsigned kind = 0;
    while (kind + 1 < kNumFaultKinds && pick >= spec.weights[kind])
      pick -= spec.weights[kind], ++kind;
    e.kind = static_cast<FaultKind>(kind);
    switch (e.kind) {
      case FaultKind::kTransferSlowdown:
        e.factor = spec.slowdown_factor;
        e.duration = spec.slowdown_duration;
        break;
      case FaultKind::kDispatchFailure:
        e.count = spec.fail_count;
        break;
      case FaultKind::kResyncCorruption:
        e.bytes = spec.corrupt_bytes;
        break;
      case FaultKind::kShardLost:
        e.duration = spec.repair_seconds;
        break;
      case FaultKind::kProcessRestart:
        e.duration = spec.restart_down_seconds;
        e.bytes = spec.restart_torn_bytes;
        break;
      case FaultKind::kReplicaLost:
        e.duration = spec.repair_seconds;
        e.replica = static_cast<unsigned>(
            rng.next_below(std::max(spec.num_replicas, 1u)));
        break;
    }
    plan.events.push_back(e);
  }
  plan.validate();
  return plan;
}

}  // namespace harmonia::fault
