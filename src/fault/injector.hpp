// FaultInjector — the run-time side of a FaultPlan, plus the knobs and
// counters of every mitigation the serving stack applies under it.
//
// One injector is owned per serving run (Server or ShardedServer) and
// threaded by pointer into the layers that pay fault costs:
//   BatchScheduler : transfer slowdown scaling + transient dispatch
//                    failures answered with bounded exponential-backoff
//                    retries (shed after the retry budget);
//   EpochUpdater / ShardedServer::run_epoch :
//                    resync corruption injection, CRC32 audit, re-image;
//   ShardedServer  : shard-lost fencing, CPU-oracle degraded serving,
//                    timed restore + re-image;
//   ShardedIndex   : straggler hedging in the scatter/gather batch path.
//
// Everything is deterministic: the plan decides *what* fails and *when*;
// the injector only tracks which events have been consumed and tallies a
// FaultReport. An inactive injector (empty plan) is never consulted, so
// fault-free runs are bit-identical to pre-fault behaviour.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "fault/fault_plan.hpp"
#include "qos/priority.hpp"
#include "harmonia/index.hpp"
#include "harmonia/pipeline.hpp"
#include "obs/observer.hpp"

namespace harmonia::fault {

/// Bounded retry with exponential backoff for failed batch dispatches.
/// Deadline-aware twice over: each backoff delay is capped, and the whole
/// budget is `max_attempts` tries — after that the batch is shed (its
/// requests answer `dropped`) rather than holding the lane forever.
struct RetryPolicy {
  unsigned max_attempts = 4;
  double backoff = 50e-6;
  double backoff_multiplier = 2.0;
  double max_backoff = 1e-3;
};

/// CPU-oracle serving for a fenced (lost) shard: correct but slow. The
/// modeled host costs are per-op charges on the virtual clock; admission
/// for the fenced range sheds once the CPU backlog exceeds max_backlog.
struct DegradedPolicy {
  double seconds_per_point = 2e-6;
  double seconds_per_range = 4e-6;
  double seconds_per_result = 100e-9;
  double max_backlog = 2e-3;
};

/// Hedged re-dispatch for the scatter/gather batch path: when one shard's
/// pipeline runs `multiplier`x slower than the median shard, the straggler
/// sub-batch is re-issued at that detection point on an unimpaired link
/// and the earlier finisher wins.
struct HedgePolicy {
  bool enabled = true;
  double multiplier = 3.0;
};

struct MitigationConfig {
  RetryPolicy retry;
  DegradedPolicy degraded;
  HedgePolicy hedge;
};

/// Typed counters of everything injected, detected, and mitigated.
/// Surfaced through serve::ServerReport and dumped as a
/// deterministic CSV row (the CI replay gate diffs these bytes).
struct FaultReport {
  // Injected.
  std::uint64_t slowdown_windows = 0;
  std::uint64_t dispatch_failures = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t shards_lost = 0;
  // Detected.
  std::uint64_t audits = 0;
  std::uint64_t checksum_mismatches = 0;
  // Mitigated.
  std::uint64_t retries = 0;
  std::uint64_t retry_shed_batches = 0;
  std::uint64_t retry_shed_requests = 0;
  /// retry_shed_requests split by the shed batch's priority class
  /// (single-class lanes: a shed batch charges exactly one class).
  std::array<std::uint64_t, qos::kNumClasses> retry_shed_by_class{};
  std::uint64_t reimages = 0;
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t degraded_points = 0;
  std::uint64_t degraded_ranges = 0;
  std::uint64_t degraded_shed = 0;
  std::uint64_t shards_restored = 0;
  // Replica groups (K > 1): losses absorbed by failover instead of
  // fencing, and log-shipped catch-up work on rejoin.
  std::uint64_t replicas_lost = 0;
  std::uint64_t replicas_rejoined = 0;
  std::uint64_t catchup_ops = 0;
  double catchup_seconds = 0.0;
  double backoff_seconds = 0.0;
  double reimage_seconds = 0.0;
  double degraded_seconds = 0.0;
  double fenced_seconds = 0.0;

  bool operator==(const FaultReport&) const = default;

  static const char* csv_header();
  std::string csv_row() const;
};

class FaultInjector {
 public:
  /// `num_shards` bounds the shard ids events may target (shard 0 for a
  /// single-device Server) and `num_replicas` the replica slots a
  /// lose/replica-lost event may name (1 for unreplicated topologies —
  /// `replica-lost` events then require num_replicas > 1). Throws on an
  /// out-of-range event.
  FaultInjector(FaultPlan plan, const MitigationConfig& mitigation,
                unsigned num_shards, unsigned num_replicas = 1);

  /// False for an empty plan: callers skip every fault branch, keeping
  /// fault-free runs bit-identical to pre-fault behaviour.
  bool active() const { return !events_.empty(); }

  const MitigationConfig& mitigation() const { return mitigation_; }
  FaultReport& report() { return report_; }
  const FaultReport& report() const { return report_; }

  /// Product of the factors of every slowdown window active on `shard`
  /// at `now` (1.0 when none). Counts each window once on first use.
  double transfer_factor(unsigned shard, double now);

  /// Consumes one pending dispatch failure armed for `shard` at `now`.
  bool take_dispatch_failure(unsigned shard, double now);

  /// Consumes a pending corruption event for `shard` (armed at <= now):
  /// flips the event's `bytes` deterministically chosen bytes in the
  /// index's device image (key / prefix-sum / value regions). Returns
  /// true when corruption was injected.
  bool maybe_corrupt_resync(unsigned shard, HarmoniaIndex& index, double now);

  /// CRC32 audit of the device image against the host tree; on mismatch
  /// re-uploads the image and returns the modeled re-image seconds the
  /// caller must charge on the device timeline (0.0 when clean). `now`
  /// only timestamps the trace annotation; it never changes the outcome.
  double audit_and_repair(unsigned shard, HarmoniaIndex& index,
                          const TransferModel& link, double now);

  /// Staged-image counterpart of maybe_corrupt_resync + audit_and_repair
  /// for the double-buffered epoch pipeline: the staging buffer is
  /// audited *before* the swap, so a corruption armed for `shard` (at or
  /// before `now`) never reaches serving — the old image keeps serving
  /// and the staged upload is simply redone. Consumes the event, tallies
  /// one audit (plus corruption/mismatch/re-image on a hit), and returns
  /// the extra seconds (`upload_seconds`, the re-upload) to add before
  /// the staged image is swap-ready; 0.0 when the audit comes back clean.
  double audit_staged(unsigned shard, double upload_seconds, double now);

  /// Earliest armed, unconsumed loss event (`lose` or `replica-lost`) at
  /// or before `now`. The caller reads `kind`/`replica` off the returned
  /// event to decide between replica failover and full-shard fencing;
  /// the injector only tallies the per-kind injected counter
  /// (shards_lost / replicas_lost).
  std::optional<FaultEvent> take_shard_lost(double now);

  /// Arm time of the next unconsumed loss event (+inf when none):
  /// the extra wakeup the sharded event loop schedules.
  double next_shard_lost_time() const;

  /// Attaches metrics + tracing: injected/detected events bump fault_*
  /// counters and land as stage=annotation trace events on the same
  /// virtual timeline as the request lifecycle stamps.
  void set_observer(const obs::Observer& obs);

 private:
  /// Bumps the cached counter (if observed) and records the annotation.
  void note_event(obs::Counter* counter, double at, unsigned shard,
                  std::string note);

  struct State {
    FaultEvent ev;
    unsigned remaining = 0;  // dispatch failures left / 1 for one-shot kinds
    bool counted = false;    // slowdown window already tallied
  };

  std::vector<State> events_;
  MitigationConfig mitigation_;
  unsigned num_shards_;
  unsigned num_replicas_;
  FaultReport report_;
  obs::Observer obs_;
  obs::Counter* slowdowns_ = nullptr;
  obs::Counter* failures_ = nullptr;
  obs::Counter* corruptions_ = nullptr;
  obs::Counter* audits_ = nullptr;
  obs::Counter* mismatches_ = nullptr;
  obs::Counter* reimages_ = nullptr;
  obs::Counter* losses_ = nullptr;
  obs::Counter* replica_losses_ = nullptr;
};

}  // namespace harmonia::fault
