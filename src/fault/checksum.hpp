// CRC32 integrity checks over a HarmoniaIndex's device image.
//
// Detection layer of the fault framework: the host tree is the source of
// truth, so the expected checksum of every image region (key region,
// prefix-sum array as served through its const/global routing, value
// region) can be computed host-side and compared against what actually
// sits in simulated device memory. A resync that was corrupted in flight
// (FaultKind::kResyncCorruption) is caught here — before any query is
// served from the damaged image — and answered with a re-image, never
// with a wrong result.
#pragma once

#include <cstddef>
#include <cstdint>

#include "harmonia/index.hpp"

namespace harmonia::fault {

/// Plain table-driven CRC32 (IEEE 802.3 polynomial, reflected).
/// `seed` chains incremental computations: crc32(b, crc32(a)) ==
/// crc32(a+b).
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

struct ImageChecksums {
  std::uint32_t keys = 0;
  /// Prefix-sum array as the kernel reads it: constant segment for the
  /// top `ps_const_count` nodes, global memory beyond.
  std::uint32_t prefix_sum = 0;
  std::uint32_t values = 0;

  bool operator==(const ImageChecksums&) const = default;
};

/// Checksums of the authoritative host-side tree regions.
ImageChecksums host_checksums(const HarmoniaTree& tree);

/// Checksums of what the simulated device actually holds for `index`'s
/// image (reads device memory; no cycle cost is charged — the audit
/// models a host-side DMA readback validation).
ImageChecksums device_checksums(const HarmoniaIndex& index);

/// True when the device image matches the host tree byte-for-byte.
inline bool verify_image(const HarmoniaIndex& index) {
  return host_checksums(index.tree()) == device_checksums(index);
}

}  // namespace harmonia::fault
