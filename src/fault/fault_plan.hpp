// Deterministic fault schedules for the serving/sharding simulator.
//
// A FaultPlan is a seed- or spec-driven list of FaultEvents pinned to the
// virtual clock. The simulator never rolls dice at serve time: every
// fault an injection run observes is decided before the run starts, so a
// (stream, config, plan) triple replays bit-identically — which is what
// lets CI diff two FaultReport CSVs as a regression gate.
//
// Event kinds (the fault model, see docs/fault_tolerance.md):
//   slow    : a per-shard PCIe degradation window — transfer costs scale
//             by `factor` for `duration` virtual seconds from `at`.
//   fail    : the next `count` batch dispatches on `shard` at/after `at`
//             return an error instead of results (transient chunk
//             failure; the batch's work is lost and must be retried).
//   corrupt : the next post-epoch image resync on `shard` at/after `at`
//             flips `bytes` bytes of the freshly uploaded device image.
//   lose    : `shard` drops off the bus at `at`; its device comes back
//             `duration` (repair) seconds later and must be re-imaged.
//             With K-way replica groups the event takes `replica` too:
//             only that group member is lost, and surviving replicas
//             keep serving the range (failover instead of degradation).
//   replica-lost : alias kind for a replica-targeted loss — identical
//             handling to `lose`, but requires a replicated topology
//             (K > 1), making the failover intent explicit in specs.
//   restart : the whole process dies at `at` and comes back `duration`
//             (down) seconds later; `bytes` (torn) bytes are chopped off
//             `shard`'s last durable write (torn log append / snapshot).
//             Consumed by the restart harness (shard/restart_harness),
//             never by a backend — a server cannot restart itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace harmonia::fault {

enum class FaultKind : std::uint8_t {
  kTransferSlowdown,
  kDispatchFailure,
  kResyncCorruption,
  kShardLost,
  kProcessRestart,
  kReplicaLost,
};

/// Number of FaultKind values (keep in sync with the enum; the
/// to_string exhaustiveness test walks [0, kNumFaultKinds)).
inline constexpr unsigned kNumFaultKinds = 6;

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kTransferSlowdown;
  /// Virtual second the event arms.
  double at = 0.0;
  unsigned shard = 0;
  /// Replica slot within `shard`'s group targeted by `lose` /
  /// `replica-lost` (ignored by the other kinds; must be < the
  /// topology's replication factor).
  unsigned replica = 0;
  /// Slowdown window length / shard repair time (seconds).
  double duration = 0.0;
  /// Transfer-cost multiplier while a slowdown window is active (>= 1).
  double factor = 1.0;
  /// Consecutive dispatch failures injected by a `fail` event.
  unsigned count = 1;
  /// Bytes flipped in the device image by a `corrupt` event, or bytes
  /// torn off the last durable write by a `restart` event (0 = the
  /// crash cut cleanly between writes).
  unsigned bytes = 1;
};

struct FaultPlan {
  /// Sorted by `at` (ties keep insertion order).
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Throws ContractViolation on nonsense (factor < 1, duration < 0, ...).
  void validate() const;

  /// Parses the `--faults` spec grammar: semicolon-separated events,
  ///   kind@seconds[:key=value,...]
  /// e.g. "slow@0.001:shard=1,factor=4,duration=0.002;
  ///       fail@0:shard=0,count=3;corrupt@0.004:shard=2,bytes=8;
  ///       lose@0.003:shard=1,repair=0.002;
  ///       restart@0.005:shard=0,down=0.001,torn=64"
  /// (`repair`/`down` alias duration; `torn` aliases bytes). Throws
  /// ContractViolation with a message naming the bad token.
  static FaultPlan parse(const std::string& spec);

  /// The inverse of parse(): a canonical spec string (round-trips).
  std::string to_string() const;

  struct RandomSpec {
    /// Virtual seconds covered by the schedule.
    double horizon = 10e-3;
    /// Mean fault events per virtual second (Poisson arrivals).
    double events_per_second = 500.0;
    unsigned num_shards = 1;
    /// Replicas per shard group; `replica-lost` events draw a slot
    /// uniformly from [0, num_replicas).
    unsigned num_replicas = 1;
    /// Relative weights of the kinds, in enum order. A zero weight
    /// disables that kind (e.g. shard-lost for single-device runs;
    /// restart defaults to 0 because only the restart harness — not a
    /// backend — can honor it, and replica-lost defaults to 0 because it
    /// needs a replicated topology).
    double weights[kNumFaultKinds] = {1.0, 1.0, 1.0, 0.25, 0.0, 0.0};
    double slowdown_factor = 4.0;
    double slowdown_duration = 200e-6;
    unsigned fail_count = 2;
    unsigned corrupt_bytes = 4;
    double repair_seconds = 1e-3;
    double restart_down_seconds = 1e-3;
    unsigned restart_torn_bytes = 64;
  };

  /// Seeded Poisson schedule over the horizon. Deterministic in
  /// (spec, seed); shards are drawn uniformly.
  static FaultPlan random(const RandomSpec& spec, std::uint64_t seed);
};

}  // namespace harmonia::fault
