#include "fault/injector.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "fault/checksum.hpp"

namespace harmonia::fault {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

std::string fmt_factor(double factor) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", factor);
  return buf;
}
}  // namespace

const char* FaultReport::csv_header() {
  return "slowdown_windows,dispatch_failures,corruptions,shards_lost,"
         "audits,checksum_mismatches,retries,retry_shed_batches,"
         "retry_shed_requests,reimages,hedges_issued,hedges_won,"
         "degraded_points,degraded_ranges,degraded_shed,shards_restored,"
         "replicas_lost,replicas_rejoined,catchup_ops,catchup_us,"
         "backoff_us,reimage_us,degraded_us,fenced_us,"
         "retry_shed_gold,retry_shed_silver,retry_shed_bronze";
}

std::string FaultReport::csv_row() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
      "%llu,%llu,%llu,%llu,%llu,%.3f,%.3f,%.3f,%.3f,%.3f,%llu,%llu,%llu",
      static_cast<unsigned long long>(slowdown_windows),
      static_cast<unsigned long long>(dispatch_failures),
      static_cast<unsigned long long>(corruptions),
      static_cast<unsigned long long>(shards_lost),
      static_cast<unsigned long long>(audits),
      static_cast<unsigned long long>(checksum_mismatches),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(retry_shed_batches),
      static_cast<unsigned long long>(retry_shed_requests),
      static_cast<unsigned long long>(reimages),
      static_cast<unsigned long long>(hedges_issued),
      static_cast<unsigned long long>(hedges_won),
      static_cast<unsigned long long>(degraded_points),
      static_cast<unsigned long long>(degraded_ranges),
      static_cast<unsigned long long>(degraded_shed),
      static_cast<unsigned long long>(shards_restored),
      static_cast<unsigned long long>(replicas_lost),
      static_cast<unsigned long long>(replicas_rejoined),
      static_cast<unsigned long long>(catchup_ops), catchup_seconds * 1e6,
      backoff_seconds * 1e6, reimage_seconds * 1e6, degraded_seconds * 1e6,
      fenced_seconds * 1e6,
      static_cast<unsigned long long>(retry_shed_by_class[0]),
      static_cast<unsigned long long>(retry_shed_by_class[1]),
      static_cast<unsigned long long>(retry_shed_by_class[2]));
  return buf;
}

FaultInjector::FaultInjector(FaultPlan plan, const MitigationConfig& mitigation,
                             unsigned num_shards, unsigned num_replicas)
    : mitigation_(mitigation),
      num_shards_(num_shards),
      num_replicas_(num_replicas) {
  plan.validate();
  HARMONIA_CHECK(num_shards_ > 0);
  HARMONIA_CHECK(num_replicas_ > 0);
  HARMONIA_CHECK(mitigation_.retry.max_attempts > 0);
  HARMONIA_CHECK(mitigation_.retry.backoff >= 0.0);
  HARMONIA_CHECK(mitigation_.hedge.multiplier > 1.0);
  events_.reserve(plan.events.size());
  for (const FaultEvent& e : plan.events) {
    HARMONIA_CHECK_MSG(e.shard < num_shards_,
                       "fault event targets shard " << e.shard << " but the run has "
                       << num_shards_ << " shard(s)");
    if (e.kind == FaultKind::kShardLost || e.kind == FaultKind::kReplicaLost) {
      HARMONIA_CHECK_MSG(e.replica < num_replicas_,
                         "fault event targets replica " << e.replica
                         << " but the run has " << num_replicas_
                         << " replica(s) per shard");
      HARMONIA_CHECK_MSG(
          e.kind != FaultKind::kReplicaLost || num_replicas_ > 1,
          "replica-lost event needs a replicated topology (replicas > 1); "
          "use 'lose' for unreplicated shards");
    }
    events_.push_back(
        {e, e.kind == FaultKind::kDispatchFailure ? e.count : 1u, false});
  }
}

void FaultInjector::set_observer(const obs::Observer& obs) {
  obs_ = obs;
  if (obs.metrics == nullptr) return;
  obs::MetricsRegistry& m = *obs.metrics;
  slowdowns_ = &m.counter("fault_slowdown_windows_total");
  failures_ = &m.counter("fault_dispatch_failures_total");
  corruptions_ = &m.counter("fault_corruptions_total");
  audits_ = &m.counter("fault_audits_total");
  mismatches_ = &m.counter("fault_checksum_mismatches_total");
  reimages_ = &m.counter("fault_reimages_total");
  losses_ = &m.counter("fault_shards_lost_total");
  replica_losses_ = &m.counter("fault_replicas_lost_total");
}

void FaultInjector::note_event(obs::Counter* counter, double at, unsigned shard,
                               std::string note) {
  if (counter != nullptr) counter->inc();
  if (obs_.trace != nullptr) obs_.trace->annotate(at, shard, std::move(note));
}

double FaultInjector::transfer_factor(unsigned shard, double now) {
  double factor = 1.0;
  for (State& s : events_) {
    if (s.ev.kind != FaultKind::kTransferSlowdown || s.ev.shard != shard) continue;
    if (now < s.ev.at || now >= s.ev.at + s.ev.duration) continue;
    factor *= s.ev.factor;
    if (!s.counted) {
      s.counted = true;
      ++report_.slowdown_windows;
      if (obs_.active()) {
        note_event(slowdowns_, now, shard,
                   "fault slowdown factor=" + fmt_factor(s.ev.factor));
      }
    }
  }
  return factor;
}

bool FaultInjector::take_dispatch_failure(unsigned shard, double now) {
  for (State& s : events_) {
    if (s.ev.kind != FaultKind::kDispatchFailure || s.ev.shard != shard) continue;
    if (s.ev.at > now || s.remaining == 0) continue;
    --s.remaining;
    ++report_.dispatch_failures;
    if (obs_.active()) note_event(failures_, now, shard, "fault dispatch failure");
    return true;
  }
  return false;
}

bool FaultInjector::maybe_corrupt_resync(unsigned shard, HarmoniaIndex& index,
                                         double now) {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    State& s = events_[i];
    if (s.ev.kind != FaultKind::kResyncCorruption || s.ev.shard != shard) continue;
    if (s.ev.at > now || s.remaining == 0) continue;
    s.remaining = 0;
    ++report_.corruptions;
    if (obs_.active()) {
      note_event(corruptions_, now, shard,
                 "fault resync corruption bytes=" + std::to_string(s.ev.bytes));
    }

    // Deterministic damage: byte positions and flip masks come from a
    // SplitMix64 stream seeded by the event's plan position, never from
    // run state — replays corrupt the same bytes.
    SplitMix64 sm(0x8badf00dULL ^ (static_cast<std::uint64_t>(i) << 20) ^ shard);
    auto& mem = index.device().memory();
    const auto& img = index.image();
    const auto& tree = index.tree();
    for (unsigned b = 0; b < s.ev.bytes; ++b) {
      const std::uint64_t pick = sm.next();
      std::uint64_t addr = 0;
      switch (pick % 3) {
        case 0:
          addr = img.key_region.addr +
                 sm.next() % (tree.key_region().size() * sizeof(Key));
          break;
        case 1: {
          // Route through ps_addr so the flip lands where the kernel (and
          // the audit) actually reads: const segment for top nodes.
          const std::uint32_t node =
              static_cast<std::uint32_t>(sm.next() % tree.prefix_sum().size());
          addr = img.ps_addr(node) + sm.next() % sizeof(std::uint32_t);
          break;
        }
        default:
          if (tree.value_region().empty()) {
            addr = img.key_region.addr +
                   sm.next() % (tree.key_region().size() * sizeof(Key));
          } else {
            addr = img.value_region.addr +
                   sm.next() % (tree.value_region().size() * sizeof(Value));
          }
          break;
      }
      std::uint8_t byte = 0;
      mem.read_bytes(addr, &byte, 1);
      byte ^= static_cast<std::uint8_t>(1 + sm.next() % 255);
      mem.write_bytes(addr, &byte, 1);
    }
    return true;
  }
  return false;
}

double FaultInjector::audit_and_repair(unsigned shard, HarmoniaIndex& index,
                                       const TransferModel& link, double now) {
  ++report_.audits;
  if (audits_ != nullptr) audits_->inc();
  if (verify_image(index)) return 0.0;
  ++report_.checksum_mismatches;
  ++report_.reimages;
  index.resync_device();
  HARMONIA_CHECK_MSG(verify_image(index), "device image corrupt after re-image");
  const double seconds = image_resync_seconds(index.tree(), link);
  report_.reimage_seconds += seconds;
  if (obs_.active()) {
    if (mismatches_ != nullptr) mismatches_->inc();
    note_event(reimages_, now, shard, "checksum mismatch: re-imaged device");
  }
  return seconds;
}

double FaultInjector::audit_staged(unsigned shard, double upload_seconds,
                                   double now) {
  ++report_.audits;
  if (audits_ != nullptr) audits_->inc();
  for (State& s : events_) {
    if (s.ev.kind != FaultKind::kResyncCorruption || s.ev.shard != shard) continue;
    if (s.ev.at > now || s.remaining == 0) continue;
    s.remaining = 0;
    ++report_.corruptions;
    ++report_.checksum_mismatches;
    ++report_.reimages;
    report_.reimage_seconds += upload_seconds;
    if (obs_.active()) {
      note_event(corruptions_, now, shard,
                 "fault staged-image corruption bytes=" + std::to_string(s.ev.bytes));
      if (mismatches_ != nullptr) mismatches_->inc();
      note_event(reimages_, now, shard,
                 "staged audit mismatch: re-uploading, old image keeps serving");
    }
    return upload_seconds;
  }
  return 0.0;
}

std::optional<FaultEvent> FaultInjector::take_shard_lost(double now) {
  for (State& s : events_) {
    if (s.ev.kind != FaultKind::kShardLost &&
        s.ev.kind != FaultKind::kReplicaLost)
      continue;
    if (s.remaining == 0 || s.ev.at > now) continue;
    s.remaining = 0;
    if (s.ev.kind == FaultKind::kReplicaLost) {
      ++report_.replicas_lost;
      if (obs_.active()) {
        note_event(replica_losses_, now, s.ev.shard,
                   "replica lost slot=" + std::to_string(s.ev.replica));
      }
    } else {
      ++report_.shards_lost;
      if (obs_.active()) note_event(losses_, now, s.ev.shard, "shard lost");
    }
    return s.ev;
  }
  return std::nullopt;
}

double FaultInjector::next_shard_lost_time() const {
  double t = kInf;
  for (const State& s : events_) {
    if (s.ev.kind != FaultKind::kShardLost &&
        s.ev.kind != FaultKind::kReplicaLost)
      continue;
    if (s.remaining == 0) continue;
    t = std::min(t, s.ev.at);
  }
  return t;
}

}  // namespace harmonia::fault
