#include "serve/epoch_updater.hpp"

#include <algorithm>
#include <string>

#include "common/expect.hpp"

namespace harmonia::serve {

EpochUpdater::EpochUpdater(HarmoniaIndex& index, const TransferModel& link,
                           const EpochConfig& config)
    : index_(index), link_(link), config_(config) {
  HARMONIA_CHECK(config_.max_buffered > 0);
  HARMONIA_CHECK(config_.apply_threads > 0);
}

void EpochUpdater::buffer(const Request& r) {
  HARMONIA_CHECK(r.kind == RequestKind::kUpdate);
  pending_.push_back(r);
  if (obs_.trace != nullptr)
    obs_.trace->stamp(r.id, obs::Stage::kQueueEnter, r.arrival, shard_, "update");
}

void EpochUpdater::set_observer(const obs::Observer& obs, unsigned shard) {
  obs_ = obs;
  shard_ = shard;
  if (obs.metrics == nullptr) return;
  obs::MetricsRegistry& m = *obs.metrics;
  const std::string sl = "{shard=\"" + std::to_string(shard) + "\"}";
  epochs_total_ = &m.counter("serve_epochs_total" + sl);
  ops_total_ = &m.counter("serve_epoch_ops_total" + sl);
  ops_failed_ = &m.counter("serve_epoch_ops_failed_total" + sl);
  apply_hist_ =
      &m.histogram("serve_epoch_apply_seconds" + sl,
                   obs::LatencyHistogram::exponential_edges(1e-7, 1.0, 28));
  resync_hist_ =
      &m.histogram("serve_epoch_resync_seconds" + sl,
                   obs::LatencyHistogram::exponential_edges(1e-7, 1.0, 28));
}

double EpochUpdater::next_deadline() const {
  if (pending_.empty()) return std::numeric_limits<double>::infinity();
  return pending_.front().arrival + config_.max_wait;
}

EpochUpdater::EpochResult EpochUpdater::apply(double at, double device_free) {
  HARMONIA_CHECK(!pending_.empty());

  std::vector<queries::UpdateOp> ops;
  ops.reserve(pending_.size());
  for (const Request& r : pending_) ops.push_back({r.op, r.key, r.value});

  EpochResult e;
  e.stats = index_.update_batch(ops, config_.apply_threads);
  e.epoch = ++epochs_;
  e.start = std::max(at, device_free);
  e.apply_seconds =
      static_cast<double>(ops.size()) * config_.seconds_per_op;
  e.resync_seconds = image_resync_seconds(index_.tree(), link_);
  if (injector_ != nullptr && injector_->active()) {
    // The resync is a PCIe transfer like any other: active slowdown
    // windows stretch it. Then any armed corruption event hits the fresh
    // image, and the audit catches it — the re-image cost (also under
    // the slowdown) lands on the device timeline before admission reopens.
    const double resync_end = e.start + e.apply_seconds + e.resync_seconds;
    const double factor = injector_->transfer_factor(shard_, resync_end);
    e.resync_seconds *= factor;
    if (injector_->maybe_corrupt_resync(shard_, index_, resync_end))
      e.resync_seconds +=
          factor * injector_->audit_and_repair(shard_, index_, link_, resync_end);
  }
  e.finish = e.start + e.apply_seconds + e.resync_seconds;

  if (obs_.metrics != nullptr) {
    epochs_total_->inc();
    ops_total_->inc(e.stats.total_ops());
    ops_failed_->inc(e.stats.failed);
    apply_hist_->observe(e.apply_seconds);
    resync_hist_->observe(e.resync_seconds);
  }
  e.responses.reserve(pending_.size());
  for (const Request& r : pending_) {
    Response resp;
    resp.id = r.id;
    resp.kind = RequestKind::kUpdate;
    resp.epoch = e.epoch;
    resp.arrival = r.arrival;
    resp.dispatch = e.start;
    resp.completion = e.finish;
    if (obs_.trace != nullptr) {
      obs_.trace->stamp(r.id, obs::Stage::kDispatch, e.start, shard_,
                        "epoch=" + std::to_string(e.epoch));
      obs_.trace->stamp(r.id, obs::Stage::kReply, e.finish, shard_);
    }
    e.responses.push_back(std::move(resp));
  }
  pending_.clear();
  return e;
}

}  // namespace harmonia::serve
