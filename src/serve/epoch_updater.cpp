#include "serve/epoch_updater.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace harmonia::serve {

EpochUpdater::EpochUpdater(HarmoniaIndex& index, const TransferModel& link,
                           const EpochConfig& config)
    : index_(index), link_(link), config_(config) {
  HARMONIA_CHECK(config_.max_buffered > 0);
  HARMONIA_CHECK(config_.apply_threads > 0);
}

void EpochUpdater::buffer(const Request& r) {
  HARMONIA_CHECK(r.kind == RequestKind::kUpdate);
  pending_.push_back(r);
}

double EpochUpdater::next_deadline() const {
  if (pending_.empty()) return std::numeric_limits<double>::infinity();
  return pending_.front().arrival + config_.max_wait;
}

EpochUpdater::EpochResult EpochUpdater::apply(double at, double device_free) {
  HARMONIA_CHECK(!pending_.empty());

  std::vector<queries::UpdateOp> ops;
  ops.reserve(pending_.size());
  for (const Request& r : pending_) ops.push_back({r.op, r.key, r.value});

  EpochResult e;
  e.stats = index_.update_batch(ops, config_.apply_threads);
  e.epoch = ++epochs_;
  e.start = std::max(at, device_free);
  e.apply_seconds =
      static_cast<double>(ops.size()) * config_.seconds_per_op;
  e.resync_seconds = image_resync_seconds(index_.tree(), link_);
  if (injector_ != nullptr && injector_->active()) {
    // The resync is a PCIe transfer like any other: active slowdown
    // windows stretch it. Then any armed corruption event hits the fresh
    // image, and the audit catches it — the re-image cost (also under
    // the slowdown) lands on the device timeline before admission reopens.
    const double resync_end = e.start + e.apply_seconds + e.resync_seconds;
    const double factor = injector_->transfer_factor(shard_, resync_end);
    e.resync_seconds *= factor;
    if (injector_->maybe_corrupt_resync(shard_, index_, resync_end))
      e.resync_seconds += factor * injector_->audit_and_repair(shard_, index_, link_);
  }
  e.finish = e.start + e.apply_seconds + e.resync_seconds;

  e.responses.reserve(pending_.size());
  for (const Request& r : pending_) {
    Response resp;
    resp.id = r.id;
    resp.kind = RequestKind::kUpdate;
    resp.epoch = e.epoch;
    resp.arrival = r.arrival;
    resp.dispatch = e.start;
    resp.completion = e.finish;
    e.responses.push_back(std::move(resp));
  }
  pending_.clear();
  return e;
}

}  // namespace harmonia::serve
