#include "serve/epoch_updater.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/expect.hpp"

namespace harmonia::serve {

EpochUpdater::EpochUpdater(HarmoniaIndex& index, const TransferModel& link,
                           const EpochConfig& config)
    : index_(index), link_(link), config_(config) {
  HARMONIA_CHECK(config_.max_buffered > 0);
  HARMONIA_CHECK(config_.apply_threads > 0);
  if (config_.mode == EpochMode::kIncremental &&
      index_.overlay_capacity() < config_.overlay_capacity) {
    index_.set_overlay_capacity(config_.overlay_capacity);
  }
}

void EpochUpdater::buffer(const Request& r) {
  HARMONIA_CHECK(r.kind == RequestKind::kUpdate);
  pending_.push_back(r);
  if (obs_.trace != nullptr)
    obs_.trace->stamp(r.id, obs::Stage::kQueueEnter, r.arrival, shard_, "update");
}

void EpochUpdater::set_observer(const obs::Observer& obs, unsigned shard) {
  obs_ = obs;
  shard_ = shard;
  if (obs.metrics == nullptr) return;
  obs::MetricsRegistry& m = *obs.metrics;
  const std::string sl = "{shard=\"" + std::to_string(shard) + "\"}";
  const auto edges = obs::LatencyHistogram::exponential_edges(1e-7, 1.0, 28);
  epochs_total_ = &m.counter("serve_epochs_total" + sl);
  ops_total_ = &m.counter("serve_epoch_ops_total" + sl);
  ops_failed_ = &m.counter("serve_epoch_ops_failed_total" + sl);
  apply_hist_ = &m.histogram("serve_epoch_apply_seconds" + sl, edges);
  resync_hist_ = &m.histogram("serve_epoch_resync_seconds" + sl, edges);
  swap_wait_hist_ = &m.histogram("serve_epoch_swap_wait_seconds" + sl, edges);
  stall_hist_ = &m.histogram("serve_epoch_stall_seconds" + sl, edges);
  patch_build_hist_ = &m.histogram("serve_epoch_patch_build_seconds" + sl, edges);
  patch_upload_hist_ = &m.histogram("serve_epoch_patch_upload_seconds" + sl, edges);
  compaction_build_hist_ =
      &m.histogram("serve_epoch_compaction_build_seconds" + sl, edges);
  compaction_upload_hist_ =
      &m.histogram("serve_epoch_compaction_upload_seconds" + sl, edges);
}

double EpochUpdater::next_deadline() const {
  if (pending_.empty()) return std::numeric_limits<double>::infinity();
  return pending_.front().arrival + config_.max_wait;
}

std::vector<queries::UpdateOp> EpochUpdater::drain_ops(
    const std::vector<Request>& from) const {
  std::vector<queries::UpdateOp> ops;
  ops.reserve(from.size());
  for (const Request& r : from) ops.push_back({r.op, r.key, r.value});
  return ops;
}

void EpochUpdater::observe_epoch(const EpochResult& e) {
  if (obs_.metrics == nullptr) return;
  epochs_total_->inc();
  ops_total_->inc(e.stats.total_ops());
  ops_failed_->inc(e.stats.failed);
  apply_hist_->observe(e.apply_seconds);
  resync_hist_->observe(e.resync_seconds);
  swap_wait_hist_->observe(e.swap_wait_seconds);
  stall_hist_->observe(e.stall_seconds);
  if (e.patch) {
    patch_build_hist_->observe(e.apply_seconds);
    patch_upload_hist_->observe(e.resync_seconds);
  } else {
    compaction_build_hist_->observe(e.apply_seconds);
    compaction_upload_hist_->observe(e.resync_seconds);
  }
}

Response EpochUpdater::make_update_response(const Request& r,
                                            const EpochResult& e) const {
  Response resp = response_to(r);
  resp.epoch = e.epoch;
  resp.dispatch = e.start;
  resp.completion = e.finish;
  return resp;
}

EpochUpdater::EpochResult EpochUpdater::apply(double at, double device_free) {
  HARMONIA_CHECK(!pending_.empty());
  HARMONIA_CHECK_MSG(!inflight(),
                     "quiesce apply with a staged epoch in flight — commit it first");

  const std::vector<queries::UpdateOp> ops = drain_ops(pending_);
  // Write-ahead: the batch reaches the log before it touches the index,
  // so a crash after this line replays it, and a crash during the append
  // loses at most this (unapplied, unacknowledged) batch's tail record.
  if (durability_ != nullptr) durability_->log_batch(epochs_ + 1, ops, at);

  // A live overlay (incremental-mode leftovers) folds into the batch:
  // update_batch replays it ahead of `ops`. The replays are real CPU work
  // (charged below) but not client ops — back them out of the stats so
  // updates_applied counts each request exactly once (replays never fail:
  // a live entry re-inserts, a tombstone deletes a key still in the base).
  const std::uint64_t replay_live = index_.overlay_live_count();
  const std::uint64_t replay_tomb = index_.overlay_tombstone_count();

  EpochResult e;
  e.stats = index_.update_batch(ops, config_.apply_threads);
  HARMONIA_CHECK(e.stats.inserts >= replay_live && e.stats.deletes >= replay_tomb);
  e.stats.inserts -= replay_live;
  e.stats.deletes -= replay_tomb;
  e.epoch = ++epochs_;
  e.start = std::max(at, device_free);
  e.apply_seconds =
      static_cast<double>(ops.size() + replay_live + replay_tomb) *
      config_.seconds_per_op;
  e.resync_seconds = image_resync_seconds(index_.tree(), link_);
  if (injector_ != nullptr && injector_->active()) {
    // The resync is a PCIe transfer like any other: active slowdown
    // windows stretch it. Then any armed corruption event hits the fresh
    // image, and the audit catches it — the re-image cost (also under
    // the slowdown) lands on the device timeline before admission reopens.
    const double resync_end = e.start + e.apply_seconds + e.resync_seconds;
    const double factor = injector_->transfer_factor(shard_, resync_end);
    e.resync_seconds *= factor;
    if (injector_->maybe_corrupt_resync(shard_, index_, resync_end))
      e.resync_seconds +=
          factor * injector_->audit_and_repair(shard_, index_, link_, resync_end);
  }
  e.finish = e.start + e.apply_seconds + e.resync_seconds;
  e.stall_seconds = e.finish - e.start;
  e.stats.upload_seconds = e.resync_seconds;

  observe_epoch(e);
  e.responses.reserve(pending_.size());
  for (const Request& r : pending_) {
    if (obs_.trace != nullptr) {
      obs_.trace->stamp(r.id, obs::Stage::kDispatch, e.start, shard_,
                        "epoch=" + std::to_string(e.epoch));
      obs_.trace->stamp(r.id, obs::Stage::kReply, e.finish, shard_);
    }
    e.responses.push_back(make_update_response(r, e));
  }
  pending_.clear();
  return e;
}

const EpochUpdater::Staged& EpochUpdater::stage(double at) {
  HARMONIA_CHECK(!inflight());
  HARMONIA_CHECK(!pending_.empty());

  const std::vector<queries::UpdateOp> ops = drain_ops(pending_);
  // Write-ahead, same contract as the quiesce path: log before stage.
  if (durability_ != nullptr) durability_->log_batch(epochs_ + 1, ops, at);

  Staged s;
  s.epoch = epochs_ + 1;
  s.trigger = at;

  double patch_attempt_seconds = 0.0;
  std::vector<queries::UpdateOp> fold;
  UpdateStats prefix_stats;
  std::uint64_t replay_live = 0;
  std::uint64_t replay_tomb = 0;
  if (config_.mode == EpochMode::kIncremental) {
    const auto pr = index_.patch_update(ops);
    if (!pr.exhausted) {
      // Patch epoch: the host tree + overlay mirror are already updated;
      // commit flushes only the queued leaf records and overlay arrays —
      // pr.patch_bytes on the link instead of a full image upload, and no
      // shadow-tree build at all.
      s.patch = true;
      s.build_seconds =
          static_cast<double>(ops.size()) * config_.seconds_per_patch_op;
      s.build_done = at + s.build_seconds;
      s.upload_seconds = link_.seconds(pr.patch_bytes);
      patch_stats_ = pr.stats;
    } else {
      // Gaps/overlay exhausted: compaction fallback. The absorbed prefix
      // is already in the host tree (the shadow copy carries it); the
      // overlay replays ahead of the unabsorbed tail so the rebuilt image
      // subsumes it. Replays are charged as build work but backed out of
      // the stats — they are not client ops and never fail.
      patch_attempt_seconds =
          static_cast<double>(pr.absorbed) * config_.seconds_per_patch_op;
      replay_live = index_.overlay_live_count();
      replay_tomb = index_.overlay_tombstone_count();
      fold = index_.overlay_as_ops();
      fold.insert(fold.end(), ops.begin() + static_cast<std::ptrdiff_t>(pr.absorbed),
                  ops.end());
      index_.discard_patch();
      prefix_stats = pr.stats;
    }
  } else {
    fold = ops;
  }

  if (!s.patch) {
    staged_update_ = index_.stage_update(fold, config_.apply_threads);
    HARMONIA_CHECK(staged_update_.stats.inserts >= replay_live &&
                   staged_update_.stats.deletes >= replay_tomb);
    staged_update_.stats.inserts -= replay_live;
    staged_update_.stats.deletes -= replay_tomb;
    staged_update_.stats.updates += prefix_stats.updates;
    staged_update_.stats.inserts += prefix_stats.inserts;
    staged_update_.stats.deletes += prefix_stats.deletes;
    staged_update_.stats.failed += prefix_stats.failed;
    s.build_seconds =
        patch_attempt_seconds +
        static_cast<double>(fold.size()) * config_.seconds_per_op;
    s.build_done = at + s.build_seconds;
    s.upload_seconds = image_resync_seconds(staged_update_.tree(), link_);
  }
  if (injector_ != nullptr && injector_->active()) {
    // The background upload is a PCIe transfer too: slowdown windows
    // stretch it, and the pre-swap CRC32 audit turns an armed corruption
    // into one extra (re-)upload — never a served corrupt image.
    const double upload_end = s.build_done + s.upload_seconds;
    const double factor = injector_->transfer_factor(shard_, upload_end);
    s.upload_seconds *= factor;
    s.upload_seconds +=
        injector_->audit_staged(shard_, s.upload_seconds, s.build_done + s.upload_seconds);
  }
  s.ready = s.build_done + s.upload_seconds;

  if (obs_.trace != nullptr) {
    const std::string tag =
        " epoch=" + std::to_string(s.epoch) + (s.patch ? " patch" : "");
    obs_.trace->annotate(s.trigger, shard_,
                         "epoch build start" + tag +
                             " ops=" + std::to_string(ops.size()));
    obs_.trace->annotate(s.build_done, shard_, "epoch upload start" + tag);
    obs_.trace->annotate(s.ready, shard_, "epoch staged ready" + tag);
  }

  staged_requests_ = std::move(pending_);
  pending_.clear();
  staged_meta_ = s;
  return *staged_meta_;
}

EpochUpdater::EpochResult EpochUpdater::commit(double swap_at) {
  HARMONIA_CHECK(inflight());
  const Staged s = *staged_meta_;
  HARMONIA_CHECK_MSG(swap_at >= s.ready,
                     "epoch swap at " << swap_at << " before the staged image is "
                                      << "ready at " << s.ready);

  EpochResult e;
  e.patch = s.patch;
  if (s.patch) {
    // Flush the queued leaf/overlay writes into the live image; like the
    // staged swap this lands whole at the boundary the caller picked.
    e.stats = patch_stats_;
    index_.commit_patch();
  } else {
    e.stats = staged_update_.stats;
    index_.commit_staged(std::move(staged_update_));
  }
  e.epoch = ++epochs_;
  HARMONIA_CHECK(e.epoch == s.epoch);
  e.start = s.trigger;
  e.finish = swap_at;
  e.apply_seconds = s.build_seconds;
  e.resync_seconds = s.upload_seconds;
  e.swap_wait_seconds = swap_at - s.ready;
  e.stall_seconds = 0.0;  // the device served straight through
  e.stats.upload_seconds = s.upload_seconds;
  e.stats.swap_wait_seconds = e.swap_wait_seconds;

  observe_epoch(e);
  if (obs_.trace != nullptr)
    obs_.trace->annotate(swap_at, shard_,
                         "epoch swap epoch=" + std::to_string(e.epoch) +
                             (e.patch ? " patch" : ""));
  e.responses.reserve(staged_requests_.size());
  for (const Request& r : staged_requests_) {
    if (obs_.trace != nullptr) {
      obs_.trace->stamp(r.id, obs::Stage::kDispatch, e.start, shard_,
                        "epoch=" + std::to_string(e.epoch) + " staged");
      obs_.trace->stamp(r.id, obs::Stage::kReply, e.finish, shard_);
    }
    e.responses.push_back(make_update_response(r, e));
  }
  staged_requests_.clear();
  staged_meta_.reset();
  return e;
}

}  // namespace harmonia::serve
