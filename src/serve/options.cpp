#include "serve/options.hpp"

#include <cstddef>
#include <string>

#include "common/expect.hpp"

namespace harmonia::serve {

namespace {

/// Parses a "g,s,b" comma triple (one value per priority class).
std::array<double, qos::kNumClasses> parse_class_triple(
    const std::string& spec, const char* flag) {
  std::array<double, qos::kNumClasses> out{};
  std::size_t pos = 0;
  for (std::size_t c = 0; c < qos::kNumClasses; ++c) {
    const std::size_t comma = spec.find(',', pos);
    const bool last = c + 1 == qos::kNumClasses;
    HARMONIA_CHECK_MSG(last == (comma == std::string::npos),
                       "--" << flag << " wants exactly " << qos::kNumClasses
                            << " comma-separated values (gold,silver,bronze), "
                               "got '" << spec << "'");
    const std::string field =
        spec.substr(pos, last ? std::string::npos : comma - pos);
    try {
      std::size_t used = 0;
      out[c] = std::stod(field, &used);
      HARMONIA_CHECK(used == field.size());
    } catch (const std::exception&) {
      HARMONIA_CHECK_MSG(false, "--" << flag << ": '" << field
                                     << "' is not a number in '" << spec << "'");
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace

void ServeOptions::validate(unsigned num_shards) const {
  HARMONIA_CHECK_MSG(num_shards >= 1, "a serving topology needs >= 1 shard");
  HARMONIA_CHECK_MSG(replicas >= 1 && replicas <= 8,
                     "replicas must be in [1, 8], got " << replicas);
  HARMONIA_CHECK_MSG(replicas == 1 || num_shards >= 2,
                     "replica groups ride the range-sharded serving path "
                     "(--shards >= 2); a single-device topology has no "
                     "scatter/gather to pick replicas in");
  if (reshard.split_hot) {
    HARMONIA_CHECK_MSG(reshard.detect_every > 0.0,
                       "reshard.detect_every must be positive");
    HARMONIA_CHECK_MSG(reshard.hot_factor > 1.0,
                       "reshard.hot_factor must exceed 1 (a shard at the mean "
                       "is not hot)");
    HARMONIA_CHECK_MSG(num_shards >= 2,
                       "hot-range splitting moves a partition boundary between "
                       "adjacent shards — it needs >= 2 shards");
  }

  HARMONIA_CHECK_MSG(batch.max_batch > 0, "batch.max_batch must be positive");
  HARMONIA_CHECK_MSG(batch.max_wait > 0.0, "batch.max_wait must be positive");
  HARMONIA_CHECK_MSG(
      batch.queue_capacity >= batch.max_batch,
      "batch.queue_capacity (" << batch.queue_capacity
                               << ") must cover the size trigger max_batch ("
                               << batch.max_batch << ")");
  HARMONIA_CHECK_MSG(batch.max_range_results > 0,
                     "batch.max_range_results must be positive");
  HARMONIA_CHECK_MSG(batch.pipeline.chunk_size > 0,
                     "batch.pipeline.chunk_size must be positive");

  HARMONIA_CHECK_MSG(epoch.max_buffered > 0, "epoch.max_buffered must be positive");
  HARMONIA_CHECK_MSG(epoch.max_wait > 0.0, "epoch.max_wait must be positive");
  HARMONIA_CHECK_MSG(epoch.apply_threads > 0, "epoch.apply_threads must be positive");
  HARMONIA_CHECK_MSG(epoch.seconds_per_op >= 0.0,
                     "epoch.seconds_per_op may not be negative");
  HARMONIA_CHECK_MSG(epoch.seconds_per_patch_op >= 0.0,
                     "epoch.seconds_per_patch_op may not be negative");
  HARMONIA_CHECK_MSG(epoch.mode != EpochMode::kIncremental ||
                         epoch.overlay_capacity > 0,
                     "incremental epoch mode needs a positive overlay capacity");

  HARMONIA_CHECK_MSG(link.gigabytes_per_second > 0.0,
                     "link.gigabytes_per_second must be positive");
  HARMONIA_CHECK_MSG(link.latency_seconds >= 0.0,
                     "link.latency_seconds may not be negative");

  HARMONIA_CHECK_MSG(mitigation.retry.max_attempts >= 1,
                     "mitigation.retry.max_attempts must be >= 1");
  HARMONIA_CHECK_MSG(mitigation.retry.backoff >= 0.0 &&
                         mitigation.retry.max_backoff >= 0.0,
                     "mitigation.retry backoffs may not be negative");
  HARMONIA_CHECK_MSG(mitigation.retry.backoff_multiplier >= 1.0,
                     "mitigation.retry.backoff_multiplier must be >= 1");
  HARMONIA_CHECK_MSG(!mitigation.hedge.enabled || mitigation.hedge.multiplier > 1.0,
                     "mitigation.hedge.multiplier must exceed 1 when hedging");
  HARMONIA_CHECK_MSG(mitigation.degraded.seconds_per_point >= 0.0 &&
                         mitigation.degraded.seconds_per_range >= 0.0 &&
                         mitigation.degraded.seconds_per_result >= 0.0 &&
                         mitigation.degraded.max_backlog >= 0.0,
                     "mitigation.degraded costs may not be negative");

  qos.validate();

  // The runtime-tunable knobs start from their configured values; the
  // initial snapshot must already pass the same bounds apply_tunables
  // enforces online (group-size/sort-bits ranges, batch within queue).
  Tunables::from(*this).validate(*this);

  HARMONIA_CHECK_MSG(!persist.recover || persist.enabled(),
                     "persist.recover needs persist.dir (--snapshot-dir) set");
  HARMONIA_CHECK_MSG(persist.retain >= 1, "persist.retain must be >= 1");

  for (std::size_t i = 0; i < faults.events.size(); ++i) {
    const fault::FaultEvent& e = faults.events[i];
    HARMONIA_CHECK_MSG(e.shard < num_shards,
                       "fault event #" << i << " (" << fault::to_string(e.kind)
                           << "): field 'shard' (" << e.shard << ") exceeds the "
                           << "topology's " << num_shards << " shard(s)");
    HARMONIA_CHECK_MSG(e.kind != fault::FaultKind::kShardLost ||
                           num_shards > 1 || replicas > 1,
                       "fault event #" << i << " (lose): shard-lost faults need a "
                       "sharded or replicated topology (there is nothing to "
                       "fail over to)");
    HARMONIA_CHECK_MSG(e.kind != fault::FaultKind::kReplicaLost || replicas > 1,
                       "fault event #" << i << " (replica-lost): replica faults "
                       "need a replica group (--replicas > 1); use 'lose' for "
                       "unreplicated shards");
    if (e.kind == fault::FaultKind::kShardLost ||
        e.kind == fault::FaultKind::kReplicaLost) {
      HARMONIA_CHECK_MSG(e.replica < replicas,
                         "fault event #" << i << " (" << fault::to_string(e.kind)
                             << "): field 'replica' (" << e.replica
                             << ") exceeds the group size " << replicas);
    }
    HARMONIA_CHECK_MSG(e.kind != fault::FaultKind::kProcessRestart,
                       "fault event #" << i << " (restart): process-restart faults "
                       "are consumed by the restart harness, never by a backend — "
                       "a server cannot restart itself (run through "
                       "shard::run_with_restarts)");
  }
}

void ServeOptions::add_flags(Cli& cli) {
  cli.flag("max-batch", "batch size trigger", "2048")
      .flag("max-wait-us", "batch deadline (us)", "200")
      .flag("queue-cap", "admission queue capacity per lane", "16384")
      .flag("epoch-updates", "updates buffered per epoch", "4096")
      .flag("epoch-mode", "epoch pipeline: quiesce (stall-the-world), "
                          "overlap (double-buffered image swap), or delta "
                          "(in-place patches + device overlay, compaction "
                          "fallback)", "quiesce")
      .flag("overlay-cap", "delta-mode device overlay bound in entries "
                           "(per shard)", "1024")
      .flag("apply-threads", "CPU workers for the Algorithm-1 batch apply", "1")
      .flag("group-size", "NTG thread-group size for dispatched batches "
                          "(power of two <= warp; 0 = fanout default)", "0")
      .flag("sort-bits", "PSA sort-bit count for dispatched batches "
                         "(0 = Equation 2)", "0")
      .flag("pcie", "link bandwidth in GB/s", "12.0")
      .flag("replicas", "replica group size K per shard (1 = unreplicated)",
            "1")
      .flag("split-hot", "enable hot-range splitting + live resharding",
            "false")
      .flag("hot-factor", "shard hotness threshold as a multiple of the "
                          "fleet-mean window load", "2.0")
      .flag("detect-every-us", "hot-range detection cadence (us)", "1000")
      .flag("max-migrations", "live migrations allowed per run", "4")
      .flag("min-window", "minimum routed queries in a detection window "
                          "before a shard may trigger a split", "256")
      .flag("faults", "fault spec, kind@sec:key=val,... joined by ';' "
                      "(see docs/fault_tolerance.md)", "")
      .flag("class-weights", "weighted-fair dispatch shares as "
                             "gold,silver,bronze (enables QoS)", "")
      .flag("class-deadlines", "batch-deadline stretch factors as "
                               "gold,silver,bronze (enables QoS)", "")
      .flag("tenant-rate", "per-tenant admission rate in requests per "
                           "virtual second, 0 = no throttling (enables QoS)",
            "0")
      .flag("tenant-burst", "per-tenant token-bucket burst capacity", "32")
      .flag("snapshot-dir", "durable snapshot + update-log directory "
                            "(empty = persistence off)", "")
      .flag("snapshot-every", "logged epochs between cadence snapshots "
                              "(0 = only compaction-forced snapshots)", "8")
      .flag("snapshot-retain", "snapshots retained per shard", "2")
      .flag("recover", "cold-start from --snapshot-dir (newest valid "
                       "snapshot + log replay) instead of bulk building",
            "false");
}

ServeOptions ServeOptions::from_cli(const Cli& cli) {
  ServeOptions opts;
  opts.batch.max_batch = cli.get_uint("max-batch", 2048);
  // Override only when set: scaling the default through us->seconds
  // arithmetic would drift a ulp off the struct default, breaking the
  // defaults-survive-the-round-trip property.
  if (cli.has("max-wait-us"))
    opts.batch.max_wait =
        static_cast<double>(cli.get_uint("max-wait-us", 200)) * 1e-6;
  opts.batch.queue_capacity = cli.get_uint("queue-cap", 16384);
  opts.epoch.max_buffered = cli.get_uint("epoch-updates", 4096);
  const std::string mode =
      cli.get_choice("epoch-mode", {"quiesce", "overlap", "delta"}, "quiesce");
  opts.epoch.mode = mode == "overlap"  ? EpochMode::kOverlap
                    : mode == "delta" ? EpochMode::kIncremental
                                      : EpochMode::kQuiesce;
  opts.epoch.overlay_capacity = cli.get_uint("overlay-cap", 1024);
  opts.epoch.apply_threads =
      static_cast<unsigned>(cli.get_uint("apply-threads", 1));
  opts.batch.pipeline.query_options.group_size =
      static_cast<unsigned>(cli.get_uint("group-size", 0));
  opts.batch.pipeline.query_options.psa_override_bits =
      static_cast<unsigned>(cli.get_uint("sort-bits", 0));
  opts.link.gigabytes_per_second = cli.get_double("pcie", 12.0);
  opts.replicas = static_cast<unsigned>(cli.get_uint("replicas", 1));
  opts.reshard.split_hot = cli.get_bool("split-hot", false);
  opts.reshard.hot_factor = cli.get_double("hot-factor", 2.0);
  opts.reshard.detect_every =
      static_cast<double>(cli.get_uint("detect-every-us", 1000)) * 1e-6;
  opts.reshard.max_migrations =
      static_cast<unsigned>(cli.get_uint("max-migrations", 4));
  opts.reshard.min_window_queries = cli.get_uint("min-window", 256);
  if (const std::string spec = cli.get_string("faults", ""); !spec.empty())
    opts.faults = fault::FaultPlan::parse(spec);
  if (const std::string spec = cli.get_string("class-weights", "");
      !spec.empty()) {
    const auto w = parse_class_triple(spec, "class-weights");
    for (std::size_t c = 0; c < qos::kNumClasses; ++c)
      opts.qos.classes[c].weight = w[c];
    opts.qos.enabled = true;
  }
  if (const std::string spec = cli.get_string("class-deadlines", "");
      !spec.empty()) {
    const auto f = parse_class_triple(spec, "class-deadlines");
    for (std::size_t c = 0; c < qos::kNumClasses; ++c)
      opts.qos.classes[c].deadline_factor = f[c];
    opts.qos.enabled = true;
  }
  opts.qos.tenant_rate = cli.get_double("tenant-rate", 0.0);
  opts.qos.tenant_burst = cli.get_double("tenant-burst", 32.0);
  if (opts.qos.tenant_rate > 0.0) opts.qos.enabled = true;
  opts.persist.dir = cli.get_string("snapshot-dir", "");
  opts.persist.snapshot_every = cli.get_uint("snapshot-every", 8);
  opts.persist.retain = cli.get_uint("snapshot-retain", 2);
  opts.persist.recover = cli.get_bool("recover", false);
  return opts;
}

}  // namespace harmonia::serve
