#include "serve/batch_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/expect.hpp"

namespace harmonia::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

std::string shard_label(unsigned shard) {
  return "shard=\"" + std::to_string(shard) + "\"";
}
}  // namespace

BatchScheduler::BatchScheduler(HarmoniaIndex& index, const TransferModel& link,
                               const BatchConfig& config)
    : index_(index),
      link_(link),
      config_(config),
      point_(config.queue_capacity),
      range_(config.queue_capacity) {
  HARMONIA_CHECK(config_.max_batch > 0);
  HARMONIA_CHECK(config_.max_wait >= 0.0);
  HARMONIA_CHECK(config_.queue_capacity >= config_.max_batch);
}

bool BatchScheduler::admit(const Request& r) {
  HARMONIA_CHECK(r.kind != RequestKind::kUpdate);
  const bool range = r.kind == RequestKind::kRange;
  const bool ok = (range ? range_ : point_).try_push(r);
  if (obs_.active()) {
    const LaneMetrics& m = range ? range_metrics_ : point_metrics_;
    if (ok) {
      if (m.admitted != nullptr) m.admitted->inc();
      if (obs_.trace != nullptr)
        obs_.trace->stamp(r.id, obs::Stage::kQueueEnter, r.arrival, shard_);
    } else if (m.rejected != nullptr) {
      m.rejected->inc();
    }
  }
  return ok;
}

void BatchScheduler::set_observer(const obs::Observer& obs, unsigned shard) {
  obs_ = obs;
  shard_ = shard;
  if (obs.metrics == nullptr) return;
  obs::MetricsRegistry& m = *obs.metrics;
  const std::string sl = shard_label(shard);
  for (const char* kind : {"point", "range"}) {
    LaneMetrics& lane =
        kind[0] == 'p' ? point_metrics_ : range_metrics_;
    const std::string labels = std::string{"{kind=\""} + kind + "\"," + sl + "}";
    lane.admitted = &m.counter("serve_admitted_total" + labels);
    lane.rejected = &m.counter("serve_rejected_total" + labels);
    lane.batches = &m.counter("serve_batches_total" + labels);
    lane.queries = &m.counter("serve_batched_queries_total" + labels);
  }
  batch_size_hist_ =
      &m.histogram("serve_batch_size{" + sl + "}",
                   obs::LatencyHistogram::exponential_edges(1.0, 65536.0, 16));
  service_hist_ =
      &m.histogram("serve_batch_service_seconds{" + sl + "}",
                   obs::LatencyHistogram::exponential_edges(1e-7, 1.0, 28));
  queue_wait_hist_ =
      &m.histogram("serve_queue_wait_seconds{" + sl + "}",
                   obs::LatencyHistogram::exponential_edges(1e-7, 1.0, 28));
}

void BatchScheduler::observe_dispatch(const Dispatch& d,
                                      std::span<const Request> members) {
  if (obs_.metrics != nullptr) {
    const LaneMetrics& m =
        d.kind == RequestKind::kRange ? range_metrics_ : point_metrics_;
    m.batches->inc();
    m.queries->inc(d.batch_size);
    batch_size_hist_->observe(static_cast<double>(d.batch_size));
    service_hist_->observe(d.service_seconds());
    for (const Request& r : members)
      queue_wait_hist_->observe(d.start - r.arrival);
  }
  if (obs_.trace != nullptr) {
    const std::string note =
        d.attempts > 1 ? "attempts=" + std::to_string(d.attempts) : std::string{};
    for (const Request& r : members) {
      obs_.trace->stamp(r.id, obs::Stage::kBatchForm, d.close, shard_);
      obs_.trace->stamp(r.id, obs::Stage::kDispatch, d.start, shard_, note);
    }
  }
}

std::size_t BatchScheduler::free_slots(RequestKind kind) const {
  const RequestQueue& q = kind == RequestKind::kRange ? range_ : point_;
  return q.capacity() - q.size();
}

double BatchScheduler::next_deadline() const {
  const double d =
      std::min(point_.oldest_arrival(), range_.oldest_arrival());
  return d == kInf ? kInf : d + config_.max_wait;
}

bool BatchScheduler::size_ready() const {
  return point_.size() >= config_.max_batch || range_.size() >= config_.max_batch;
}

BatchScheduler::Dispatch BatchScheduler::dispatch_ready(double close_time,
                                                        double device_free,
                                                        unsigned epoch) {
  HARMONIA_CHECK(!empty());
  // A size-full lane is overdue regardless of deadlines; otherwise serve
  // the lane whose oldest request has waited longest.
  if (point_.size() >= config_.max_batch)
    return dispatch_point(close_time, device_free, epoch);
  if (range_.size() >= config_.max_batch)
    return dispatch_range(close_time, device_free, epoch);
  if (point_.oldest_arrival() <= range_.oldest_arrival())
    return dispatch_point(close_time, device_free, epoch);
  return dispatch_range(close_time, device_free, epoch);
}

std::vector<Request> BatchScheduler::evict_all() {
  std::vector<Request> out;
  out.reserve(point_.size() + range_.size());
  while (!point_.empty()) out.push_back(point_.pop());
  while (!range_.empty()) out.push_back(range_.pop());
  std::stable_sort(out.begin(), out.end(), [](const Request& a, const Request& b) {
    return a.arrival != b.arrival ? a.arrival < b.arrival : a.id < b.id;
  });
  return out;
}

// Applies the fault model to one dispatch: any live slowdown window scales
// the transfer share of the service time, and each armed transient failure
// costs the failed attempt plus an exponential backoff before the retry.
// Exhausting the retry budget sheds the batch (its requests answer
// dropped) so a persistently failing device cannot hold the lane forever.
double BatchScheduler::faulted_finish(double start, double base_service,
                                      double transfer_seconds, Dispatch& d) {
  if (injector_ == nullptr || !injector_->active()) return start + base_service;
  const fault::RetryPolicy& retry = injector_->mitigation().retry;
  fault::FaultReport& rep = injector_->report();
  double t = start;
  double backoff = retry.backoff;
  for (;;) {
    const double factor = injector_->transfer_factor(shard_, t);
    const double service =
        base_service + (factor - 1.0) * transfer_seconds;
    if (!injector_->take_dispatch_failure(shard_, t)) return t + service;
    t += service;  // the failed attempt still occupied device and link
    if (d.attempts >= retry.max_attempts) {
      d.shed = true;
      ++rep.retry_shed_batches;
      rep.retry_shed_requests += d.batch_size;
      return t;
    }
    const double wait = std::min(backoff, retry.max_backoff);
    t += wait;
    backoff *= retry.backoff_multiplier;
    rep.backoff_seconds += wait;
    ++rep.retries;
    ++d.attempts;
  }
}

BatchScheduler::Dispatch BatchScheduler::dispatch_point(double close_time,
                                                        double device_free,
                                                        unsigned epoch) {
  const std::size_t n = std::min(point_.size(), config_.max_batch);
  std::vector<Request> members;
  members.reserve(n);
  std::vector<Key> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    members.push_back(point_.pop());
    keys.push_back(members.back().key);
  }

  const auto piped = pipelined_search(index_, keys, link_, config_.pipeline);

  Dispatch d;
  d.kind = RequestKind::kPoint;
  d.batch_size = n;
  d.close = close_time;
  d.start = std::max(close_time, device_free);
  d.finish = faulted_finish(d.start, piped.total_seconds,
                            piped.upload_seconds + piped.download_seconds, d);
  d.responses.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Response resp;
    resp.id = members[i].id;
    resp.kind = RequestKind::kPoint;
    resp.epoch = epoch;
    resp.arrival = members[i].arrival;
    resp.dispatch = d.start;
    resp.completion = d.finish;
    resp.dropped = d.shed;
    if (!d.shed) resp.value = piped.values[i];
    d.responses.push_back(std::move(resp));
  }
  if (obs_.active()) observe_dispatch(d, members);
  return d;
}

BatchScheduler::Dispatch BatchScheduler::dispatch_range(double close_time,
                                                        double device_free,
                                                        unsigned epoch) {
  const std::size_t n = std::min(range_.size(), config_.max_batch);
  std::vector<Request> members;
  members.reserve(n);
  std::vector<Key> los, his;
  los.reserve(n);
  his.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    members.push_back(range_.pop());
    los.push_back(members.back().key);
    his.push_back(members.back().hi);
  }

  const auto r = index_.range_device(los, his, config_.max_range_results);
  // Bounds up, result values down, kernel in between (no chunking: online
  // range batches are small next to the point-lookup stream).
  const double transfer = link_.seconds(2 * n * sizeof(Key)) +
                          link_.seconds(r.total_results * sizeof(Value));
  const double service = transfer + r.kernel_seconds;

  Dispatch d;
  d.kind = RequestKind::kRange;
  d.batch_size = n;
  d.close = close_time;
  d.start = std::max(close_time, device_free);
  d.finish = faulted_finish(d.start, service, transfer, d);
  d.responses.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Response resp;
    resp.id = members[i].id;
    resp.kind = RequestKind::kRange;
    resp.epoch = epoch;
    resp.arrival = members[i].arrival;
    resp.dispatch = d.start;
    resp.completion = d.finish;
    resp.dropped = d.shed;
    if (!d.shed) resp.range_values = r.values[i];
    d.responses.push_back(std::move(resp));
  }
  if (obs_.active()) observe_dispatch(d, members);
  return d;
}

}  // namespace harmonia::serve
